// Snapshot-serving benchmarks: what a reader pays when the world is
// republished under it. The old design guarded the service's graph and
// CH index with one RWMutex — every reader share-locked, and a traffic
// writer held the exclusive lock across its whole customization, so
// reader tail latency grew a full customization-length stall. The
// snapshot design publishes each new world through one atomic pointer:
// readers load it and never touch a lock, so a sustained mutation stream
// should leave reader p99 within 10% of the idle run.
//
// Both harnesses run the identical query kernel (one CH point-to-point
// query against the current index) so the only difference measured is
// the coordination discipline: RLock/RUnlock around the query plus
// mutate-and-customize under the writer lock, versus an atomic snapshot
// load plus clone-customize-publish off to the side. `make
// bench-snapshot` records both; see BENCH_PR10.json.
package repro_test

import (
	"context"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/ch"
	"repro/internal/graph"
	"repro/internal/gridgen"
	"repro/internal/route"
)

const snapBenchK = 30

// snapBenchPairs returns a fixed query mix so every variant prices the
// same work.
func snapBenchPairs(g *graph.Graph) []route.Pair {
	rng := rand.New(rand.NewSource(benchSeed))
	n := g.NumNodes()
	pairs := make([]route.Pair, 512)
	for i := range pairs {
		pairs[i] = route.Pair{
			From: graph.NodeID(rng.Intn(n)),
			To:   graph.NodeID(rng.Intn(n)),
		}
	}
	return pairs
}

// snapBenchBatch fills changes with a random re-pricing of base edges,
// 0.5×–3× free-flow, the same mix the traffic-stream simulator sends.
func snapBenchBatch(rng *rand.Rand, base []graph.Edge, changes []graph.EdgeCostChange) {
	for i := range changes {
		e := base[rng.Intn(len(base))]
		changes[i] = graph.EdgeCostChange{
			Tail: e.Tail, Head: e.Head,
			Cost: e.Cost * (0.5 + 2.5*rng.Float64()),
		}
	}
}

// measureReaders drives b.N queries through query from parallel readers,
// collecting per-query latency, and reports the p99 alongside ns/op.
func measureReaders(b *testing.B, pairs []route.Pair, query func(from, to graph.NodeID)) {
	var next atomic.Uint64
	var mu sync.Mutex
	var all []time.Duration
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		local := make([]time.Duration, 0, 4096)
		for pb.Next() {
			p := pairs[next.Add(1)%uint64(len(pairs))]
			t0 := time.Now()
			query(p.From, p.To)
			local = append(local, time.Since(t0))
		}
		mu.Lock()
		all = append(all, local...)
		mu.Unlock()
	})
	b.StopTimer()
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	if len(all) > 0 {
		b.ReportMetric(float64(all[len(all)*99/100].Nanoseconds()), "p99-ns")
	}
}

// BenchmarkSnapshotReadUnderMutation measures the real Service's
// lock-free read path: an atomic snapshot load and a CH query against
// that snapshot's index, idle and then under a sustained
// ApplyTrafficBatch stream republishing the world as fast as
// customization allows.
func BenchmarkSnapshotReadUnderMutation(b *testing.B) {
	g := gridgen.MustGenerate(gridgen.Config{K: snapBenchK, Model: gridgen.Variance, Seed: benchSeed})
	svc := route.NewService(g)
	if err := svc.EnableCH(); err != nil {
		b.Fatal(err)
	}
	pairs := snapBenchPairs(g)
	base := g.Edges()
	ctx := context.Background()

	query := func(from, to graph.NodeID) {
		sn := svc.Snapshot()
		if _, err := sn.CH().QueryCtx(ctx, from, to); err != nil {
			b.Error(err)
		}
	}

	b.Run("idle", func(b *testing.B) {
		measureReaders(b, pairs, query)
	})

	b.Run("mutating", func(b *testing.B) {
		stop := make(chan struct{})
		var wg sync.WaitGroup
		var published atomic.Uint64
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(benchSeed))
			changes := make([]graph.EdgeCostChange, 16)
			for {
				select {
				case <-stop:
					return
				default:
				}
				snapBenchBatch(rng, base, changes)
				if _, err := svc.ApplyTrafficBatch(changes); err != nil {
					b.Error(err)
					return
				}
				published.Add(1)
			}
		}()
		measureReaders(b, pairs, query)
		close(stop)
		wg.Wait()
		b.ReportMetric(float64(published.Load()), "publishes")
		if st := svc.CHStats(); st.StaleFallbacks != 0 {
			b.Fatalf("%d stale fallbacks under the mutation stream, want 0", st.StaleFallbacks)
		}
	})
}

// rwWorld reproduces the pre-snapshot coordination discipline for
// comparison: one RWMutex guards the graph and index; every reader
// share-locks around its query, and a traffic writer mutates the graph
// in place and re-customizes the metric while holding the exclusive
// lock — so readers queue behind the full customization.
type rwWorld struct {
	mu   sync.RWMutex
	g    *graph.Graph
	topo *ch.Topology
	ix   *ch.Index
}

func (w *rwWorld) query(ctx context.Context, from, to graph.NodeID) (ch.Result, error) {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return w.ix.QueryCtx(ctx, from, to)
}

func (w *rwWorld) apply(changes []graph.EdgeCostChange) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, err := w.g.ApplyBatch(changes); err != nil {
		return err
	}
	ix, err := w.topo.NewIndex(w.g)
	if err != nil {
		return err
	}
	w.ix = ix
	return nil
}

// BenchmarkRWMutexReadUnderMutation is the baseline the snapshot design
// replaces, on the identical query and mutation mix.
func BenchmarkRWMutexReadUnderMutation(b *testing.B) {
	g := gridgen.MustGenerate(gridgen.Config{K: snapBenchK, Model: gridgen.Variance, Seed: benchSeed})
	topo, err := ch.BuildTopology(g, ch.Options{})
	if err != nil {
		b.Fatal(err)
	}
	ix, err := topo.NewIndex(g)
	if err != nil {
		b.Fatal(err)
	}
	w := &rwWorld{g: g, topo: topo, ix: ix}
	pairs := snapBenchPairs(g)
	base := g.Edges()
	ctx := context.Background()

	query := func(from, to graph.NodeID) {
		if _, err := w.query(ctx, from, to); err != nil {
			b.Error(err)
		}
	}

	b.Run("idle", func(b *testing.B) {
		measureReaders(b, pairs, query)
	})

	b.Run("mutating", func(b *testing.B) {
		stop := make(chan struct{})
		var wg sync.WaitGroup
		var published atomic.Uint64
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(benchSeed))
			changes := make([]graph.EdgeCostChange, 16)
			for {
				select {
				case <-stop:
					return
				default:
				}
				snapBenchBatch(rng, base, changes)
				if err := w.apply(changes); err != nil {
					b.Error(err)
					return
				}
				published.Add(1)
			}
		}()
		measureReaders(b, pairs, query)
		close(stop)
		wg.Wait()
		b.ReportMetric(float64(published.Load()), "publishes")
	})
}
