// Command atis-server exposes the three ATIS facilities over HTTP — route
// computation, route evaluation and route display (paper Section 1.1) —
// plus dynamic traffic updates. See internal/httpapi for the endpoints.
//
//	atis-server -addr :8080 -map mpls
//	curl 'localhost:8080/route?from=G&to=D&algo=astar-euclidean'
//	curl -X POST localhost:8080/traffic -d '{"x":16,"y":16,"radius":4,"factor":2}'
package main

import (
	"flag"
	"log"
	"net/http"

	"repro/internal/graph"
	"repro/internal/gridgen"
	"repro/internal/httpapi"
	"repro/internal/mpls"
	"repro/internal/route"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		mapKind = flag.String("map", "mpls", "map to serve: mpls | grid")
		k       = flag.Int("k", 30, "grid side for -map grid")
		seed    = flag.Int64("seed", 1993, "map seed")
	)
	flag.Parse()

	var g *graph.Graph
	var err error
	switch *mapKind {
	case "mpls":
		g, err = mpls.Generate(mpls.Config{Seed: *seed})
	case "grid":
		g, err = gridgen.Generate(gridgen.Config{K: *k, Model: gridgen.Variance, Seed: *seed})
	default:
		log.Fatalf("atis-server: unknown map %q", *mapKind)
	}
	if err != nil {
		log.Fatalf("atis-server: %v", err)
	}

	srv := httpapi.NewServer(route.NewService(g))
	log.Printf("atis-server: serving %s map (%d nodes, %d edges) on %s",
		*mapKind, g.NumNodes(), g.NumEdges(), *addr)
	log.Fatal(http.ListenAndServe(*addr, srv.Handler()))
}
