// Command atis-server exposes the three ATIS facilities over HTTP — route
// computation, route evaluation and route display (paper Section 1.1) —
// plus dynamic traffic updates and the observability surface. See
// internal/httpapi for the endpoints.
//
//	atis-server -addr :8080 -map mpls
//	curl 'localhost:8080/v1/route?from=G&to=D&algo=astar-euclidean'
//	curl -X POST localhost:8080/v1/traffic -d '{"x":16,"y":16,"radius":4,"factor":2}'
//	curl localhost:8080/v1/snapshot      # which published world answers right now
//	curl localhost:8080/v1/metrics       # Prometheus text format
//	atis-server -pprof                   # also mounts /debug/pprof/
//	atis-server -max-inflight 8 -max-queue 32 -default-budget 2s -degrade
//	atis-server -ch -traffic-stream 20 -traffic-batch 16   # live-feed simulation
//	atis-server -trace-sample 0.1 -trace-slow-ms 250       # request tracing
//
// -trace-sample and -trace-slow-ms enable per-request span tracing (see
// internal/tracing): a sampled fraction of requests — plus every request
// over the slow threshold — is captured with a span tree covering
// admission, cache, and kernel phases, retrievable via GET
// /v1/debug/traces and linked from /metrics OpenMetrics exemplars.
//
// -traffic-stream drives the server with a synthetic traffic feed:
// batches of random edge-cost updates applied through the same
// ApplyTrafficBatch path as POST /v1/traffic/batch, each triggering a
// synchronous CH metric customization when -ch is on. It exists to
// demonstrate (and load-test) millisecond metric updates without a
// structural rebuild.
//
// The admission flags size the request-lifecycle layer: -max-inflight
// caps concurrent search work (weighted by algorithm class), -max-queue
// bounds the wait queue before requests shed with 503 + Retry-After,
// -default-budget/-max-budget set the server-side deadline policy, and
// -degrade answers shed route requests from the cache or CH index.
//
// The server installs the search-kernel telemetry recorder, logs
// structured lines via log/slog, and shuts down gracefully on SIGINT or
// SIGTERM, draining in-flight requests before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"log/slog"
	"math/rand"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/admission"
	"repro/internal/graph"
	"repro/internal/gridgen"
	"repro/internal/httpapi"
	"repro/internal/mpls"
	"repro/internal/route"
	"repro/internal/search"
	"repro/internal/tracing"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		mapKind     = flag.String("map", "mpls", "map to serve: mpls | grid")
		k           = flag.Int("k", 30, "grid side for -map grid")
		seed        = flag.Int64("seed", 1993, "map seed")
		enableCH    = flag.Bool("ch", false, "prebuild the contraction hierarchy so algo=ch is served from the index immediately")
		enablePprof = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
		jsonLogs    = flag.Bool("log-json", false, "emit logs as JSON instead of text")
		gracePeriod = flag.Duration("grace", 10*time.Second, "shutdown grace period for in-flight requests")

		maxInFlight = flag.Int("max-inflight", 0,
			"admission-gate capacity in weight units (0 = 2×GOMAXPROCS)")
		maxQueue = flag.Int("max-queue", 0,
			"admission wait-queue bound before requests shed with 503 (0 = 8×capacity, min 64)")
		defaultBudget = flag.Duration("default-budget", 0,
			"server-side deadline for requests without ?budget_ms= (0 = 10s)")
		maxBudget = flag.Duration("max-budget", 0,
			"hard cap on client-requested ?budget_ms= deadlines (0 = 60s)")
		degrade = flag.Bool("degrade", false,
			"answer shed /v1/route requests from the route cache or CH index instead of 503")

		trafficStream = flag.Float64("traffic-stream", 0,
			"simulate a live traffic feed: batches per second of random edge-cost updates (0 = off)")
		trafficBatch = flag.Int("traffic-batch", 16,
			"edges mutated per simulated traffic batch (with -traffic-stream)")

		traceSample = flag.Float64("trace-sample", 0,
			"head-sampling rate for request traces, 0..1 (0 = tracing off unless -trace-slow-ms is set)")
		traceSlowMS = flag.Int("trace-slow-ms", 0,
			"capture every request slower than this many milliseconds regardless of sampling (0 = off)")
	)
	flag.Parse()

	var h slog.Handler = slog.NewTextHandler(os.Stderr, nil)
	if *jsonLogs {
		h = slog.NewJSONHandler(os.Stderr, nil)
	}
	logger := slog.New(h)
	slog.SetDefault(logger)

	var g *graph.Graph
	var err error
	switch *mapKind {
	case "mpls":
		g, err = mpls.Generate(mpls.Config{Seed: *seed})
	case "grid":
		g, err = gridgen.Generate(gridgen.Config{K: *k, Model: gridgen.Variance, Seed: *seed})
	default:
		logger.Error("unknown map", "map", *mapKind)
		os.Exit(1)
	}
	if err != nil {
		logger.Error("map generation failed", "err", err)
		os.Exit(1)
	}

	svc := route.NewService(g)
	// Route the search kernels' per-algorithm counters (expansions, heap
	// ops, pool hits) into the same registry /metrics scrapes.
	search.EnableTelemetry(svc.Registry())
	if *enableCH {
		start := time.Now()
		if err := svc.EnableCH(); err != nil {
			logger.Error("contraction-hierarchy preprocessing failed", "err", err)
			os.Exit(1)
		}
		st := svc.CHStats()
		logger.Info("contraction hierarchy ready",
			"nodes", g.NumNodes(), "shortcuts", st.Shortcuts,
			"elapsed", time.Since(start))
	}

	serverOpts := []httpapi.Option{
		httpapi.WithLogger(logger),
		httpapi.WithAdmission(admission.Config{
			MaxInFlight:   *maxInFlight,
			MaxQueue:      *maxQueue,
			DefaultBudget: *defaultBudget,
			MaxBudget:     *maxBudget,
			Degrade:       *degrade,
		}),
	}
	if *traceSample > 0 || *traceSlowMS > 0 {
		serverOpts = append(serverOpts, httpapi.WithTracing(tracing.Config{
			SampleRate:    *traceSample,
			SlowThreshold: time.Duration(*traceSlowMS) * time.Millisecond,
		}))
		logger.Info("tracing enabled",
			"sample_rate", *traceSample, "slow_threshold_ms", *traceSlowMS,
			"endpoint", "/v1/debug/traces")
	}
	api := httpapi.NewServer(svc, serverOpts...)
	gateCfg := api.Admission().Config()
	logger.Info("admission gate ready",
		"capacity", gateCfg.MaxInFlight, "max_queue", gateCfg.MaxQueue,
		"default_budget", gateCfg.DefaultBudget, "max_budget", gateCfg.MaxBudget,
		"degraded_serving", gateCfg.Degrade)
	mux := http.NewServeMux()
	mux.Handle("/", api.Handler())
	if *enablePprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		logger.Info("pprof enabled", "path", "/debug/pprof/")
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       15 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       60 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *trafficStream > 0 {
		// The streamer only mutates; handing it the Mutator view keeps the
		// read/write split visible at the call site.
		go streamTraffic(ctx, logger, svc, svc.Graph().Edges(), *trafficStream, *trafficBatch, *seed)
		logger.Info("traffic stream enabled",
			"batches_per_sec", *trafficStream, "batch_size", *trafficBatch)
	}

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	logger.Info("serving", "map", *mapKind, "nodes", g.NumNodes(), "edges", g.NumEdges(),
		"addr", *addr, "snapshot", svc.Snapshot().Generation())

	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			logger.Error("server failed", "err", err)
			os.Exit(1)
		}
	case <-ctx.Done():
		stop() // restore default signal handling: a second signal kills hard
		logger.Info("shutting down", "grace", *gracePeriod)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *gracePeriod)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			logger.Error("shutdown incomplete", "err", err)
			os.Exit(1)
		}
		logger.Info("drained, bye")
	}
}

// streamTraffic simulates a live traffic feed: rate batches per second,
// each setting size random edges to an absolute cost drawn around the
// free-flow baseline (0.5×–3.5× base, so costs never drift or collapse to
// zero over a long run). Every batch is one Mutator.ApplyTrafficBatch —
// one snapshot publication: cost-version bump, route-cache invalidation,
// and a synchronous CH metric customization — which is exactly the load
// the customization path is built for; watch atis_ch_customize_seconds
// and atis_snapshot_generation under it.
//
// base is the free-flow edge set, captured before any mutation.
func streamTraffic(ctx context.Context, logger *slog.Logger, m route.Mutator, base []graph.Edge, rate float64, size int, seed int64) {
	if len(base) == 0 || size <= 0 {
		return
	}
	if size > len(base) {
		size = len(base)
	}
	rng := rand.New(rand.NewSource(seed))
	tick := time.NewTicker(time.Duration(float64(time.Second) / rate))
	defer tick.Stop()
	changes := make([]graph.EdgeCostChange, size)
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
		for i := range changes {
			e := base[rng.Intn(len(base))]
			changes[i] = graph.EdgeCostChange{
				Tail: e.Tail, Head: e.Head,
				Cost: e.Cost * (0.5 + 3*rng.Float64()),
			}
		}
		if _, err := m.ApplyTrafficBatch(changes); err != nil {
			logger.Error("traffic stream batch failed", "err", err)
			return
		}
	}
}
