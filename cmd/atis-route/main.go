// Command atis-route computes a single-pair route on a grid or on the
// synthetic Minneapolis map and prints the path, its evaluation, the
// algorithm's work trace, and optionally an ASCII map display.
//
//	atis-route -map mpls -from A -to B -algo astar-euclidean -display
//	atis-route -map grid -k 30 -model variance -from 0 -to 899 -algo dijkstra
//	atis-route -map mpls -from G -to D -compare
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"text/tabwriter"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/graphio"
	"repro/internal/gridgen"
	"repro/internal/mpls"
	"repro/internal/route"
)

func main() {
	var (
		mapKind    = flag.String("map", "mpls", "map to load: mpls | grid")
		k          = flag.Int("k", 30, "grid side for -map grid")
		model      = flag.String("model", "variance", "grid cost model: uniform | variance | skewed")
		seed       = flag.Int64("seed", 1993, "map seed")
		from       = flag.String("from", "A", "source: landmark name or node id")
		to         = flag.String("to", "B", "destination: landmark name or node id")
		algoName   = flag.String("algo", "astar-euclidean", "algorithm: astar-euclidean | astar-manhattan | dijkstra | iterative | bidirectional | ch")
		weight     = flag.Float64("weight", 1, "estimator weight (weighted A*)")
		display    = flag.Bool("display", false, "render an ASCII map with the route")
		directions = flag.Bool("directions", false, "print turn-by-turn guidance")
		compare    = flag.Bool("compare", false, "run every algorithm and compare work")
		loadPath   = flag.String("load", "", "load the map from a graphio file instead of generating it")
		savePath   = flag.String("save", "", "save the generated map to a graphio file and exit")
	)
	flag.Parse()

	var g *graph.Graph
	var err error
	if *loadPath != "" {
		f, err := os.Open(*loadPath)
		if err != nil {
			fatal(err)
		}
		g, err = graphio.Read(f)
		closeErr := f.Close()
		if err != nil {
			fatal(err)
		}
		if closeErr != nil {
			fatal(closeErr)
		}
	} else {
		g, err = loadMap(*mapKind, *k, *model, *seed)
		if err != nil {
			fatal(err)
		}
	}
	if *savePath != "" {
		f, err := os.Create(*savePath)
		if err != nil {
			fatal(err)
		}
		if err := graphio.Write(f, g); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("saved %d nodes, %d edges to %s\n", g.NumNodes(), g.NumEdges(), *savePath)
		return
	}
	svc := route.NewService(g)

	s, err := resolveNode(g, *from)
	if err != nil {
		fatal(err)
	}
	d, err := resolveNode(g, *to)
	if err != nil {
		fatal(err)
	}

	if *compare {
		// Prebuild the hierarchy so the ch row reports index queries, not
		// the Dijkstra fallback a cold service would serve.
		if err := svc.EnableCH(); err != nil {
			fatal(err)
		}
		tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "algorithm\tfound\tcost\titerations\trelaxations\tmax frontier")
		for _, a := range core.Algorithms() {
			r, err := svc.Compute(s, d, core.Options{Algorithm: a, Weight: *weight})
			if err != nil {
				fatal(err)
			}
			fmt.Fprintf(tw, "%v\t%v\t%.3f\t%d\t%d\t%d\n",
				a, r.Found, r.Cost, r.Trace.Iterations, r.Trace.Relaxations, r.Trace.MaxFrontier)
		}
		tw.Flush()
		return
	}

	algo, err := core.ParseAlgorithm(*algoName)
	if err != nil {
		fatal(err)
	}
	if algo == core.CH {
		// Build synchronously: a one-shot CLI run has no background
		// rebuild to wait for, and a cold service would fall back.
		if err := svc.EnableCH(); err != nil {
			fatal(err)
		}
	}
	r, err := svc.Compute(s, d, core.Options{Algorithm: algo, Weight: *weight})
	if err != nil {
		fatal(err)
	}
	if !r.Found {
		fmt.Printf("no route from %s to %s\n", *from, *to)
		os.Exit(1)
	}
	fmt.Printf("route %s -> %s via %v\n", *from, *to, r.Algorithm)
	fmt.Printf("  cost: %.3f over %d segments\n", r.Cost, r.Path.Len())
	fmt.Printf("  work: %d iterations, %d relaxations, max frontier %d\n",
		r.Trace.Iterations, r.Trace.Relaxations, r.Trace.MaxFrontier)
	ev, err := svc.Evaluate(r.Path)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("  evaluation: distance %.3f, travel cost %.3f, congestion ratio %.2f\n",
		ev.Distance, ev.CurrentCost, ev.CongestionRatio)
	fmt.Printf("  path: %s\n", r.Path)
	if *directions {
		ins, err := svc.Directions(r.Path)
		if err != nil {
			fatal(err)
		}
		fmt.Println()
		fmt.Print(route.FormatDirections(ins))
	}
	if *display {
		fmt.Println()
		fmt.Print(svc.Display(r.Path, 80, 40))
	}
}

func loadMap(kind string, k int, model string, seed int64) (*graph.Graph, error) {
	switch kind {
	case "mpls":
		return mpls.Generate(mpls.Config{Seed: seed})
	case "grid":
		var m gridgen.CostModel
		switch model {
		case "uniform":
			m = gridgen.Uniform
		case "variance":
			m = gridgen.Variance
		case "skewed":
			m = gridgen.Skewed
		default:
			return nil, fmt.Errorf("unknown cost model %q", model)
		}
		return gridgen.Generate(gridgen.Config{K: k, Model: m, Seed: seed})
	default:
		return nil, fmt.Errorf("unknown map %q (want mpls or grid)", kind)
	}
}

func resolveNode(g *graph.Graph, spec string) (graph.NodeID, error) {
	if id, ok := g.Lookup(spec); ok {
		return id, nil
	}
	n, err := strconv.Atoi(spec)
	if err != nil {
		return 0, fmt.Errorf("%q is neither a landmark nor a node id", spec)
	}
	if n < 0 || n >= g.NumNodes() {
		return 0, fmt.Errorf("node %d out of range [0,%d)", n, g.NumNodes())
	}
	return graph.NodeID(n), nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "atis-route: %v\n", err)
	os.Exit(1)
}
