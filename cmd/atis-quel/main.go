// Command atis-quel runs QUEL statements against a map database — the
// closest thing to the paper's INGRES terminal. The map loads as two
// relations, n (node master: id, x, y) and s (edges: begin, end, cost),
// exactly the physical design of Section 4.
//
//	echo 'RANGE OF e IS s
//	      RETRIEVE (e.end, e.cost) WHERE e.begin = 0' | atis-quel
//
//	atis-quel -e 'RANGE OF e IS s' -e 'RETRIEVE (e.all) WHERE e.cost > 1.15'
//
// Statements are one per line; lines starting with # are comments.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/dbsearch"
	"repro/internal/graph"
	"repro/internal/gridgen"
	"repro/internal/mpls"
	"repro/internal/quel"
)

// multiFlag collects repeated -e statements.
type multiFlag []string

func (m *multiFlag) String() string { return strings.Join(*m, "; ") }
func (m *multiFlag) Set(s string) error {
	*m = append(*m, s)
	return nil
}

func main() {
	var (
		mapKind = flag.String("map", "grid", "map to load: grid | mpls")
		k       = flag.Int("k", 10, "grid side for -map grid")
		seed    = flag.Int64("seed", 1993, "map seed")
		maxRows = flag.Int("maxrows", 20, "truncate RETRIEVE output after this many rows")
		stmts   multiFlag
	)
	flag.Var(&stmts, "e", "statement to execute (repeatable); default reads stdin")
	flag.Parse()

	var g *graph.Graph
	var err error
	switch *mapKind {
	case "grid":
		g, err = gridgen.Generate(gridgen.Config{K: *k, Model: gridgen.Variance, Seed: *seed})
	case "mpls":
		g, err = mpls.Generate(mpls.Config{Seed: *seed})
	default:
		err = fmt.Errorf("unknown map %q", *mapKind)
	}
	if err != nil {
		fatal(err)
	}

	// dbsearch.OpenMap loads n and s with their indexes; the REPL sees the
	// same physical design the experiments run against.
	m, err := dbsearch.OpenMap(g, dbsearch.Options{})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("loaded relations: n (%d node tuples), s (%d edge tuples)\n", g.NumNodes(), g.NumEdges())

	session := quel.NewSession(m.DB())
	execute := func(line string) {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			return
		}
		res, err := session.Execute(line)
		if err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
			return
		}
		if res.Plan != "" {
			fmt.Printf("plan: %s\n", res.Plan)
			return
		}
		if len(res.Columns) > 0 {
			fmt.Println(strings.Join(res.Columns, "\t"))
			for i, row := range res.Rows {
				if i >= *maxRows {
					fmt.Printf("... (%d more rows)\n", len(res.Rows)-i)
					break
				}
				parts := make([]string, len(row))
				for j, v := range row {
					parts[j] = v.String()
				}
				fmt.Println(strings.Join(parts, "\t"))
			}
		}
		fmt.Printf("(%d tuples)\n", res.Count)
	}

	if len(stmts) > 0 {
		for _, s := range stmts {
			fmt.Printf("> %s\n", s)
			execute(s)
		}
		return
	}
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		execute(sc.Text())
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "atis-quel: %v\n", err)
	os.Exit(1)
}
