// Command atis-experiments regenerates the paper's tables and figures.
//
//	atis-experiments -list
//	atis-experiments -run all
//	atis-experiments -run table5,table8 -reps 5
//	atis-experiments -run figure10 -skipdb=false -seed 1993
//
// Each experiment prints a paper-style table and/or ASCII figure with the
// paper's published numbers alongside where available.
//
// With -telemetry the run also installs the search-kernel recorder and
// dumps the aggregated Prometheus-format counters (expansions, heap ops,
// per-algorithm latency histograms) after the experiments — the same
// instrument the server exports on /metrics, aimed at the same quantities
// the paper's figures report.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
	"repro/internal/search"
	"repro/internal/telemetry"
)

func main() {
	var (
		run       = flag.String("run", "all", "comma-separated experiment ids, or 'all'")
		list      = flag.Bool("list", false, "list experiment ids and exit")
		reps      = flag.Int("reps", 3, "wall-clock repetitions per measurement")
		seed      = flag.Int64("seed", 1993, "workload seed")
		skipDB    = flag.Bool("skipdb", false, "skip the database-engine measurements (faster)")
		withTelem = flag.Bool("telemetry", false, "record search-kernel telemetry and dump it after the run")
	)
	flag.Parse()

	var reg *telemetry.Registry
	if *withTelem {
		reg = telemetry.NewRegistry()
		search.EnableTelemetry(reg)
		defer search.SetRecorder(nil)
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-24s %s\n", e.ID, e.Title)
		}
		return
	}

	cfg := experiments.RunConfig{Reps: *reps, Seed: *seed, SkipDB: *skipDB}
	var selected []experiments.Experiment
	if strings.EqualFold(*run, "all") {
		selected = experiments.All()
	} else {
		for _, id := range strings.Split(*run, ",") {
			id = strings.TrimSpace(id)
			e, ok := experiments.ByID(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "atis-experiments: unknown experiment %q; known: %v\n", id, experiments.IDs())
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	for _, e := range selected {
		fmt.Printf("\n##### %s — %s\n", e.ID, e.Title)
		if err := e.Run(os.Stdout, cfg); err != nil {
			fmt.Fprintf(os.Stderr, "atis-experiments: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
	}

	if reg != nil {
		fmt.Printf("\n##### search-kernel telemetry (Prometheus text format)\n")
		if err := reg.WriteText(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "atis-experiments: dumping telemetry: %v\n", err)
			os.Exit(1)
		}
	}
}
