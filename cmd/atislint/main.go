// Command atislint runs the project's static-analysis suite: the
// analyzers that mechanically enforce the engine's concurrency and
// hot-path invariants — lock scope, cost-version bumps, pool pairing,
// the telemetry fast-path guard, kernel context polling, span lifecycle,
// hot-path allocation freedom, and snapshot immutability (see
// internal/lint and the "Static analysis" section of the README;
// `atislint -list` prints the current set).
//
// Usage:
//
//	atislint [-analyzers lockscope,poolpair] [-format text|json|sarif] [-list] [module-root]
//
// The module root defaults to the current directory. Exit status is 0
// when clean, 1 when findings remain after //lint:ignore suppression, and
// 2 on usage or load errors. The default text format prints findings as
// file:line:col: analyzer: message, relative to the module root; -format
// json emits a machine-readable document and -format sarif emits SARIF
// 2.1.0 for GitHub code scanning.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

func main() {
	os.Exit(run())
}

func run() int {
	list := flag.Bool("list", false, "list the available analyzers and exit")
	only := flag.String("analyzers", "", "comma-separated subset of analyzers to run (default: all)")
	format := flag.String("format", "text", "output format: text, json, or sarif")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: atislint [flags] [module-root]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Runs the project invariant analyzers over every package of the module.\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name(), a.Doc())
		}
		return 0
	}
	if *only != "" {
		byName := make(map[string]lint.Analyzer, len(analyzers))
		for _, a := range analyzers {
			byName[a.Name()] = a
		}
		var selected []lint.Analyzer
		for _, name := range strings.Split(*only, ",") {
			name = strings.TrimSpace(name)
			a, ok := byName[name]
			if !ok {
				fmt.Fprintf(os.Stderr, "atislint: unknown analyzer %q (use -list)\n", name)
				return 2
			}
			selected = append(selected, a)
		}
		analyzers = selected
	}
	if *format != "text" && *format != "json" && *format != "sarif" {
		fmt.Fprintf(os.Stderr, "atislint: unknown format %q (want text, json, or sarif)\n", *format)
		return 2
	}

	root := "."
	switch flag.NArg() {
	case 0:
	case 1:
		root = flag.Arg(0)
	default:
		flag.Usage()
		return 2
	}

	loader, err := lint.NewLoader(root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "atislint: %v\n", err)
		return 2
	}
	units, err := loader.LoadAll()
	if err != nil {
		fmt.Fprintf(os.Stderr, "atislint: %v\n", err)
		return 2
	}

	diags := lint.Run(units, analyzers)
	absRoot, err := filepath.Abs(root)
	if err != nil {
		absRoot = root
	}
	for i := range diags {
		if rel, err := filepath.Rel(absRoot, diags[i].Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			diags[i].Pos.Filename = rel
		}
	}

	switch *format {
	case "json":
		if err := lint.WriteJSON(os.Stdout, diags); err != nil {
			fmt.Fprintf(os.Stderr, "atislint: %v\n", err)
			return 2
		}
	case "sarif":
		if err := lint.WriteSARIF(os.Stdout, diags, analyzers); err != nil {
			fmt.Fprintf(os.Stderr, "atislint: %v\n", err)
			return 2
		}
	default:
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "atislint: %d finding(s) across %d package(s)\n", len(diags), len(units))
		return 1
	}
	return 0
}
