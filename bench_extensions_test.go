package repro_test

import (
	"testing"

	"repro/internal/alt"
	"repro/internal/closure"
	"repro/internal/estimator"
	"repro/internal/graph"
	"repro/internal/gridgen"
	"repro/internal/mpls"
	"repro/internal/search"
)

// BenchmarkExtensionALT compares A* driven by the ALT landmark estimator
// against euclidean A* and Dijkstra on the road map.
func BenchmarkExtensionALT(b *testing.B) {
	g := mpls.MustGenerate(mpls.Config{Seed: benchSeed})
	landmarks, err := alt.SelectLandmarks(g, 4, benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	tables, err := alt.Preprocess(g, landmarks)
	if err != nil {
		b.Fatal(err)
	}
	s, _ := g.Lookup("C")
	d, _ := g.Lookup("D")

	runners := []struct {
		name string
		est  *estimator.Estimator
	}{
		{"dijkstra", estimator.Zero()},
		{"euclidean", estimator.Euclidean()},
		{"alt", tables.Estimator()},
	}
	for _, r := range runners {
		r := r
		b.Run(r.name, func(b *testing.B) {
			b.ReportAllocs()
			var iters int
			for i := 0; i < b.N; i++ {
				res, err := search.AStar(g, s, d, r.est)
				if err != nil {
					b.Fatal(err)
				}
				iters = res.Trace.Iterations
			}
			b.ReportMetric(float64(iters), "iterations")
		})
	}
	b.Run("preprocess", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := alt.Preprocess(g, landmarks); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkExtensionKShortest measures Yen's alternates on the road map.
func BenchmarkExtensionKShortest(b *testing.B) {
	g := mpls.MustGenerate(mpls.Config{Seed: benchSeed})
	s, _ := g.Lookup("G")
	d, _ := g.Lookup("D")
	for _, k := range []int{1, 3, 5} {
		k := k
		b.Run(byKName(k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				paths, err := search.KShortest(g, s, d, k)
				if err != nil || len(paths) == 0 {
					b.Fatalf("%v / %d paths", err, len(paths))
				}
			}
		})
	}
}

func byKName(k int) string {
	return "k=" + string(rune('0'+k))
}

// BenchmarkExtensionClosureVsSinglePair quantifies the paper's economics:
// answering one pair with a full transitive closure vs. one A* run.
func BenchmarkExtensionClosureVsSinglePair(b *testing.B) {
	g := gridgen.MustGenerate(gridgen.Config{K: 12, Model: gridgen.Variance, Seed: benchSeed})
	s, d := gridgen.Pair(12, gridgen.Horizontal, benchSeed)
	b.Run("warren-closure", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			closure.Warren(g)
		}
	})
	b.Run("floyd-warshall", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			closure.AllPairs(g)
		}
	})
	b.Run("single-pair-astar", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := search.AStar(g, s, d, estimator.Manhattan()); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkExtensionIsochrone measures the budget-bounded reachability
// query at growing budgets.
func BenchmarkExtensionIsochrone(b *testing.B) {
	g := mpls.MustGenerate(mpls.Config{Seed: benchSeed})
	origin, _ := g.Lookup("E")
	for _, budget := range []float64{2, 8, 32} {
		budget := budget
		b.Run(byBudgetName(budget), func(b *testing.B) {
			b.ReportAllocs()
			var size int
			for i := 0; i < b.N; i++ {
				reach, err := search.Within(g, origin, budget)
				if err != nil {
					b.Fatal(err)
				}
				size = len(reach)
			}
			b.ReportMetric(float64(size), "nodes")
		})
	}
}

func byBudgetName(budget float64) string {
	switch {
	case budget < 4:
		return "budget=small"
	case budget < 16:
		return "budget=medium"
	default:
		return "budget=large"
	}
}

// BenchmarkGraphReverse exercises the reverse-graph construction that
// bidirectional search and ALT preprocessing lean on.
func BenchmarkGraphReverse(b *testing.B) {
	g := mpls.MustGenerate(mpls.Config{Seed: benchSeed})
	b.ReportAllocs()
	var r *graph.Graph
	for i := 0; i < b.N; i++ {
		r = g.Reverse()
	}
	if r.NumEdges() != g.NumEdges() {
		b.Fatal("reverse lost edges")
	}
}
