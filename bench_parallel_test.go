// Concurrent-engine benchmarks: the workloads behind this repo's "millions
// of users" north star. Where bench_test.go reproduces the paper's
// single-query tables, this file measures what the pooled workspaces,
// parallel ALT preprocessing, and the generation-keyed route cache buy when
// the same graph serves a stream of queries — the paper's observation that
// storage management dominates single-pair cost, answered with amortisation.
//
// `go test -bench 'Parallel|Repeated|Preprocess|Batch' -benchmem .`
// regenerates the numbers recorded in BENCH_PR1.json.
package repro_test

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/alt"
	"repro/internal/core"
	"repro/internal/estimator"
	"repro/internal/graph"
	"repro/internal/gridgen"
	"repro/internal/mpls"
	"repro/internal/route"
	"repro/internal/search"
)

// BenchmarkRepeatedQueries is the alloc-amortisation exhibit: the same
// single-pair query over and over on one graph. With pooled, epoch-stamped
// workspaces the steady state allocates only the returned path, not the
// O(n) dist/prev/visited arrays of every classic implementation.
func BenchmarkRepeatedQueries(b *testing.B) {
	const k = 30
	g := gridgen.MustGenerate(gridgen.Config{K: k, Model: gridgen.Variance, Seed: benchSeed})
	s, d := gridgen.Pair(k, gridgen.Diagonal, benchSeed)
	for _, r := range memRunners() {
		b.Run(r.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := r.run(g, s, d); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	b.Run("bidirectional", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := search.Bidirectional(g, s, d); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSearchParallel drives the search engine from every core at once;
// the workspace pool hands each goroutine its own recycled state, so
// throughput scales with cores instead of serialising on allocation.
func BenchmarkSearchParallel(b *testing.B) {
	const k = 30
	g := gridgen.MustGenerate(gridgen.Config{K: k, Model: gridgen.Variance, Seed: benchSeed})
	s, d := gridgen.Pair(k, gridgen.Diagonal, benchSeed)
	b.Run("dijkstra", func(b *testing.B) {
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				if _, err := search.Dijkstra(g, s, d); err != nil {
					b.Fatal(err)
				}
			}
		})
	})
	b.Run("astar-euclidean", func(b *testing.B) {
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				if _, err := search.AStar(g, s, d, estimator.Euclidean()); err != nil {
					b.Fatal(err)
				}
			}
		})
	})
}

// BenchmarkRouteServiceParallel measures served queries/sec on the full
// route.Service stack under b.RunParallel. "hot" repeats one commute (pure
// generation-keyed cache hits); "cold" walks distinct pairs (cache misses,
// pooled search all the way down).
func BenchmarkRouteServiceParallel(b *testing.B) {
	g := mpls.MustGenerate(mpls.Config{Seed: benchSeed})
	svc := route.NewService(g)
	a, _ := g.Lookup("A")
	bNode, _ := g.Lookup("B")
	n := g.NumNodes()

	b.Run("hot-cache", func(b *testing.B) {
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				if _, err := svc.Compute(a, bNode, core.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	})
	b.Run("cold-cache", func(b *testing.B) {
		b.ReportAllocs()
		var ctr int64
		b.RunParallel(func(pb *testing.PB) {
			i := ctr // goroutine-local stride; approximate distinctness is enough
			ctr += 1_000_003
			for pb.Next() {
				// Enumerate the full n² pair space so an LRU far smaller than
				// the working set keeps every lookup a miss.
				from := graph.NodeID((i / int64(n)) % int64(n))
				to := graph.NodeID(i % int64(n))
				i++
				if _, err := svc.Compute(from, to, core.Options{Algorithm: core.Dijkstra}); err != nil {
					b.Fatal(err)
				}
			}
		})
	})
}

// BenchmarkBatchCompute measures the fan-out batch API end to end.
func BenchmarkBatchCompute(b *testing.B) {
	g := mpls.MustGenerate(mpls.Config{Seed: benchSeed})
	svc := route.NewService(g)
	n := g.NumNodes()
	pairs := make([]route.Pair, 64)
	for i := range pairs {
		pairs[i] = route.Pair{From: graph.NodeID((i * 13) % n), To: graph.NodeID((i*29 + 7) % n)}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, res := range svc.ComputeBatch(pairs, core.Options{Algorithm: core.Dijkstra}) {
			if res.Err != nil {
				b.Fatal(res.Err)
			}
		}
	}
}

// BenchmarkALTPreprocess measures landmark preprocessing, whose 2·k
// single-source sweeps now run on a GOMAXPROCS-bounded worker pool. The
// serial variant pins the pool to one worker for the before/after contrast.
func BenchmarkALTPreprocess(b *testing.B) {
	const k = 40
	g := gridgen.MustGenerate(gridgen.Config{K: k, Model: gridgen.Variance, Seed: benchSeed})
	landmarks, err := alt.SelectLandmarks(g, 8, benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	variants := []int{1}
	if max := runtime.GOMAXPROCS(0); max > 1 {
		variants = append(variants, max)
	}
	for _, procs := range variants {
		b.Run(fmt.Sprintf("procs=%d", procs), func(b *testing.B) {
			prev := runtime.GOMAXPROCS(procs)
			defer runtime.GOMAXPROCS(prev)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := alt.Preprocess(g, landmarks); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
