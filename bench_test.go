// Package repro's root benchmark harness: one testing.B benchmark per table
// and figure of the paper's evaluation, plus the ablations DESIGN.md calls
// out. `go test -bench=. -benchmem` regenerates the measurements behind
// every exhibit; `cmd/atis-experiments` renders the same data as
// paper-style tables and ASCII figures.
package repro_test

import (
	"fmt"
	"testing"

	"repro/internal/costmodel"
	"repro/internal/dbsearch"
	"repro/internal/estimator"
	"repro/internal/graph"
	"repro/internal/gridgen"
	"repro/internal/join"
	"repro/internal/mpls"
	"repro/internal/optimizer"
	"repro/internal/search"
)

const benchSeed = 1993

// memRunner names one in-memory algorithm.
type memRunner struct {
	name string
	run  func(g *graph.Graph, s, d graph.NodeID) (search.Result, error)
}

func memRunners() []memRunner {
	return []memRunner{
		{"dijkstra", func(g *graph.Graph, s, d graph.NodeID) (search.Result, error) {
			return search.Dijkstra(g, s, d)
		}},
		{"astar-v3", func(g *graph.Graph, s, d graph.NodeID) (search.Result, error) {
			return search.AStar(g, s, d, estimator.Manhattan())
		}},
		{"iterative", func(g *graph.Graph, s, d graph.NodeID) (search.Result, error) {
			return search.Iterative(g, s, d)
		}},
	}
}

func benchMem(b *testing.B, g *graph.Graph, s, d graph.NodeID, r memRunner) {
	b.Helper()
	b.ReportAllocs()
	var iters int
	for i := 0; i < b.N; i++ {
		res, err := r.run(g, s, d)
		if err != nil {
			b.Fatal(err)
		}
		iters = res.Trace.Iterations
	}
	b.ReportMetric(float64(iters), "iterations")
}

// BenchmarkTable5GraphSize: Table 5 / Figure 5 — diagonal path, 20% cost
// variance, grid sizes 10/20/30.
func BenchmarkTable5GraphSize(b *testing.B) {
	for _, k := range []int{10, 20, 30} {
		g := gridgen.MustGenerate(gridgen.Config{K: k, Model: gridgen.Variance, Seed: benchSeed})
		s, d := gridgen.Pair(k, gridgen.Diagonal, benchSeed)
		for _, r := range memRunners() {
			b.Run(fmt.Sprintf("k=%d/%s", k, r.name), func(b *testing.B) {
				benchMem(b, g, s, d, r)
			})
		}
	}
}

// BenchmarkTable6PathLength: Table 6 / Figure 6 — 30×30 grid, three path
// lengths.
func BenchmarkTable6PathLength(b *testing.B) {
	const k = 30
	g := gridgen.MustGenerate(gridgen.Config{K: k, Model: gridgen.Variance, Seed: benchSeed})
	for _, kind := range []gridgen.PairKind{gridgen.Horizontal, gridgen.SemiDiagonal, gridgen.Diagonal} {
		s, d := gridgen.Pair(k, kind, benchSeed)
		for _, r := range memRunners() {
			b.Run(fmt.Sprintf("%s/%s", kind, r.name), func(b *testing.B) {
				benchMem(b, g, s, d, r)
			})
		}
	}
}

// BenchmarkTable7CostModels: Table 7 / Figure 7 — 20×20 grid, diagonal,
// three edge-cost models.
func BenchmarkTable7CostModels(b *testing.B) {
	const k = 20
	for _, model := range []gridgen.CostModel{gridgen.Uniform, gridgen.Variance, gridgen.Skewed} {
		g := gridgen.MustGenerate(gridgen.Config{K: k, Model: model, Seed: benchSeed})
		s, d := gridgen.Pair(k, gridgen.Diagonal, benchSeed)
		for _, r := range memRunners() {
			b.Run(fmt.Sprintf("%s/%s", model, r.name), func(b *testing.B) {
				benchMem(b, g, s, d, r)
			})
		}
	}
}

// BenchmarkTable8Minneapolis: Table 8 / Figure 9 — the four road-map routes.
func BenchmarkTable8Minneapolis(b *testing.B) {
	g := mpls.MustGenerate(mpls.Config{Seed: benchSeed})
	for _, pp := range mpls.PaperPaths() {
		s, ok := g.Lookup(pp.From)
		if !ok {
			b.Fatalf("landmark %s missing", pp.From)
		}
		d, _ := g.Lookup(pp.To)
		for _, r := range memRunners() {
			b.Run(fmt.Sprintf("%s/%s", pp.Name, r.name), func(b *testing.B) {
				benchMem(b, g, s, d, r)
			})
		}
	}
}

// BenchmarkTable4BCostModel: Table 4B — evaluating the algebraic cost
// formulas themselves.
func BenchmarkTable4BCostModel(b *testing.B) {
	model := costmodel.New(optimizer.Params{}, costmodel.GridWorkload(30))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = model.DijkstraEstimate(899).Total
		_ = model.AStarV3Estimate(838).Total
		_ = model.IterativeEstimate(59).Total
	}
}

// benchDB runs one DB-resident configuration per b.N iteration and reports
// the cost-model time units of the final run.
func benchDB(b *testing.B, g *graph.Graph, s, d graph.NodeID, cfg dbsearch.Config, iterative bool) {
	b.Helper()
	m, err := dbsearch.OpenMap(g, dbsearch.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var units float64
	for i := 0; i < b.N; i++ {
		var res dbsearch.Result
		var err error
		if iterative {
			res, err = m.RunIterative(s, d, cfg)
		} else {
			res, err = m.RunBestFirst(s, d, cfg)
		}
		if err != nil {
			b.Fatal(err)
		}
		units = res.TimeUnits
	}
	b.ReportMetric(units, "units")
}

// BenchmarkFigure5DBEngine: Figure 5's execution-time series on the
// relational engine (diagonal, 20% variance).
func BenchmarkFigure5DBEngine(b *testing.B) {
	for _, k := range []int{10, 20} {
		g := gridgen.MustGenerate(gridgen.Config{K: k, Model: gridgen.Variance, Seed: benchSeed})
		s, d := gridgen.Pair(k, gridgen.Diagonal, benchSeed)
		b.Run(fmt.Sprintf("k=%d/dijkstra", k), func(b *testing.B) {
			benchDB(b, g, s, d, dbsearch.DijkstraConfig(), false)
		})
		b.Run(fmt.Sprintf("k=%d/astar-v3", k), func(b *testing.B) {
			benchDB(b, g, s, d, dbsearch.AStarV3Config(), false)
		})
		b.Run(fmt.Sprintf("k=%d/iterative", k), func(b *testing.B) {
			benchDB(b, g, s, d, dbsearch.Config{Name: "iterative"}, true)
		})
	}
}

// BenchmarkFigure10Versions: Figures 10–12's A* version comparison on the
// relational engine (one representative grid; the harness sweeps the rest).
func BenchmarkFigure10Versions(b *testing.B) {
	const k = 20
	g := gridgen.MustGenerate(gridgen.Config{K: k, Model: gridgen.Variance, Seed: benchSeed})
	s, d := gridgen.Pair(k, gridgen.Diagonal, benchSeed)
	for _, cfg := range []dbsearch.Config{
		dbsearch.AStarV1Config(),
		dbsearch.AStarV2Config(),
		dbsearch.AStarV3Config(),
	} {
		cfg := cfg
		b.Run(cfg.Name, func(b *testing.B) {
			benchDB(b, g, s, d, cfg, false)
		})
	}
}

// BenchmarkFigure12PathLengthVersions: Figure 12 — version crossover with
// path length.
func BenchmarkFigure12PathLengthVersions(b *testing.B) {
	const k = 20
	g := gridgen.MustGenerate(gridgen.Config{K: k, Model: gridgen.Variance, Seed: benchSeed})
	for _, kind := range []gridgen.PairKind{gridgen.Horizontal, gridgen.Diagonal} {
		s, d := gridgen.Pair(k, kind, benchSeed)
		for _, cfg := range []dbsearch.Config{dbsearch.AStarV1Config(), dbsearch.AStarV2Config()} {
			cfg := cfg
			b.Run(fmt.Sprintf("%s/%s", kind, cfg.Name), func(b *testing.B) {
				benchDB(b, g, s, d, cfg, false)
			})
		}
	}
}

// BenchmarkAblationFrontier: heap vs. scan vs. duplicate-tolerant frontier
// (Section 4's duplicate-management discussion).
func BenchmarkAblationFrontier(b *testing.B) {
	const k = 30
	g := gridgen.MustGenerate(gridgen.Config{K: k, Model: gridgen.Variance, Seed: benchSeed})
	s, d := gridgen.Pair(k, gridgen.Diagonal, benchSeed)
	for _, kind := range []search.FrontierKind{search.FrontierHeap, search.FrontierScan, search.FrontierDuplicates} {
		kind := kind
		b.Run(kind.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := search.BestFirst(g, s, d, search.Options{
					Estimator:   estimator.Manhattan(),
					Frontier:    kind,
					AllowReopen: true,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationJoinStrategies: the four join strategies forced on the
// DB engine's adjacency fetch.
func BenchmarkAblationJoinStrategies(b *testing.B) {
	const k = 10
	g := gridgen.MustGenerate(gridgen.Config{K: k, Model: gridgen.Variance, Seed: benchSeed})
	s, d := gridgen.Pair(k, gridgen.Diagonal, benchSeed)
	for _, strat := range join.Strategies() {
		st := strat
		cfg := dbsearch.DijkstraConfig()
		cfg.ForceJoin = &st
		b.Run(st.String(), func(b *testing.B) {
			benchDB(b, g, s, d, cfg, false)
		})
	}
}

// BenchmarkAblationWeightedAStar: the ε sweep of the optimality/speed
// tradeoff.
func BenchmarkAblationWeightedAStar(b *testing.B) {
	const k = 30
	g := gridgen.MustGenerate(gridgen.Config{K: k, Model: gridgen.Variance, Seed: benchSeed})
	s, d := gridgen.Pair(k, gridgen.Diagonal, benchSeed)
	for _, w := range []float64{1, 2, 5} {
		w := w
		b.Run(fmt.Sprintf("w=%g", w), func(b *testing.B) {
			b.ReportAllocs()
			var iters int
			for i := 0; i < b.N; i++ {
				res, err := search.AStar(g, s, d, estimator.Scaled(estimator.Manhattan(), w))
				if err != nil {
					b.Fatal(err)
				}
				iters = res.Trace.Iterations
			}
			b.ReportMetric(float64(iters), "iterations")
		})
	}
}

// BenchmarkAblationBidirectional: the future-work extension vs. plain
// Dijkstra.
func BenchmarkAblationBidirectional(b *testing.B) {
	const k = 30
	g := gridgen.MustGenerate(gridgen.Config{K: k, Model: gridgen.Variance, Seed: benchSeed})
	s, d := gridgen.Pair(k, gridgen.Diagonal, benchSeed)
	b.Run("dijkstra", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := search.Dijkstra(g, s, d); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("bidirectional", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := search.Bidirectional(g, s, d); err != nil {
				b.Fatal(err)
			}
		}
	})
}
