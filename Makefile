# Tiered verification for the ATIS reproduction.
#
#   make test   — tier 1: build + unit tests (the seed gate)
#   make check  — tier 2: vet + full suite under the race detector,
#                 exercising the concurrent query engine (pooled
#                 workspaces, route cache, batch fan-out)
#   make bench  — regenerate the concurrent-engine benchmarks behind
#                 BENCH_PR1.json
#   make bench-telemetry — search kernel with telemetry off vs on; the
#                 delta is the Recorder hook's cost (target < 2%), see
#                 BENCH_PR2.json

GO ?= go

.PHONY: build test vet race check bench bench-paper bench-telemetry

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

check: vet race

bench:
	$(GO) test -run xxx -bench 'RepeatedQueries|SearchParallel|RouteServiceParallel|BatchCompute|ALTPreprocess' -benchmem .

bench-paper:
	$(GO) test -run xxx -bench 'Table|Figure|Ablation' -benchmem .

bench-telemetry:
	$(GO) test -run xxx -bench 'TelemetryOverhead|PrometheusExport' -benchmem -benchtime 200x -count 3 .
