# Tiered verification for the ATIS reproduction.
#
#   make test   — tier 1: build + unit tests (the seed gate)
#   make lint   — atislint: eight project-specific analyzers enforcing
#                 the engine's concurrency and hot-path invariants
#                 (lockscope, costversion, poolpair, recorderguard,
#                 ctxcheck, spanend, hotpath, immutsnapshot); hotpath and
#                 immutsnapshot are interprocedural over the whole-program
#                 call graph. `-format json|sarif` for machine output.
#   make check  — tier 2: vet + lint + full suite under the race
#                 detector, exercising the concurrent query engine
#                 (pooled workspaces, route cache, batch fan-out)
#   make fuzz-short — 30-second bursts of every fuzz target (graphio
#                 reader, quel parser, pqueue heap invariant)
#   make bench  — regenerate the concurrent-engine benchmarks behind
#                 BENCH_PR1.json
#   make bench-telemetry — search kernel with telemetry off vs on; the
#                 delta is the Recorder hook's cost (target < 2%), see
#                 BENCH_PR2.json
#   make bench-ch — contraction-hierarchy suite: preprocessing cost,
#                 cached-index query vs dijkstra/astar/alt, and the
#                 mutate-then-rebuild cycle, see BENCH_PR4.json
#   make bench-admission — request-lifecycle suite: ctx-polling overhead
#                 per kernel (base vs ctx in one run, target < 2%) and
#                 the admission gate's grant/shed fast paths, see
#                 BENCH_PR5.json
#   make bench-customize — CCH metric-customization suite: re-pricing a
#                 cached topology vs full structural preprocessing at
#                 the same k, plus the sustained traffic-stream cycle,
#                 see BENCH_PR6.json
#   make bench-trace — span-tracing suite: instrumented kernels with
#                 tracing disabled vs fully sampled (target: 0 extra
#                 allocs and < 1% when disabled), see BENCH_PR7.json
#   make bench-lint — time the eight-analyzer atislint run over the
#                 module (type-check excluded); keeps the interprocedural
#                 hotpath/immutsnapshot passes honest as the graph grows
#   make bench-snapshot — reader latency under a sustained mutation
#                 stream: the lock-free snapshot read path vs the old
#                 RWMutex discipline (target: reader p99 within 10% of
#                 idle for the snapshot path), see BENCH_PR10.json

GO ?= go
FUZZTIME ?= 30s

.PHONY: build test vet lint race check fuzz-short bench bench-paper bench-telemetry bench-ch bench-admission bench-customize bench-trace bench-lint bench-snapshot

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

vet:
	$(GO) vet ./...

lint:
	$(GO) run ./cmd/atislint .

race:
	$(GO) test -race ./...

check: vet lint race

fuzz-short:
	$(GO) test -run '^$$' -fuzz FuzzRead -fuzztime $(FUZZTIME) ./internal/graphio
	$(GO) test -run '^$$' -fuzz FuzzParse -fuzztime $(FUZZTIME) ./internal/quel
	$(GO) test -run '^$$' -fuzz FuzzIndexed -fuzztime $(FUZZTIME) ./internal/pqueue

bench:
	$(GO) test -run xxx -bench 'RepeatedQueries|SearchParallel|RouteServiceParallel|BatchCompute|ALTPreprocess' -benchmem .

bench-paper:
	$(GO) test -run xxx -bench 'Table|Figure|Ablation' -benchmem .

bench-telemetry:
	$(GO) test -run xxx -bench 'TelemetryOverhead|PrometheusExport' -benchmem -benchtime 200x -count 3 .

# Preprocessing and rebuild iterate multi-second builds, so they get a
# small fixed iteration count; queries are microseconds and get 100x.
bench-ch:
	$(GO) test -run xxx -bench 'CHPreprocess|CHRebuildAfterMutation' -benchmem -benchtime 3x -count 3 -timeout 60m .
	$(GO) test -run xxx -bench 'CHQuery|CHServiceQuery' -benchmem -benchtime 100x -count 3 .

bench-admission:
	$(GO) test -run xxx -bench 'CtxOverhead' -benchmem -benchtime 100x -count 3 .
	$(GO) test -run xxx -bench 'AdmissionAcquire|AdmissionShed' -benchmem -count 3 .

# The structural pass iterates multi-second contractions (3x); metric
# customization and the stream cycle are milliseconds (50x).
bench-customize:
	$(GO) test -run xxx -bench 'CHPreprocess' -benchmem -benchtime 3x -count 3 -timeout 60m .
	$(GO) test -run xxx -bench 'CHCustomize|CHTrafficStream' -benchmem -benchtime 50x -count 3 -timeout 60m .

bench-trace:
	$(GO) test -run xxx -bench 'TraceOverhead|TraceRingCapture' -benchmem -benchtime 200x -count 3 .

bench-lint:
	$(GO) test -run xxx -bench 'LintModule' -benchmem -count 3 ./internal/lint

bench-snapshot:
	$(GO) test -run xxx -bench 'SnapshotReadUnderMutation|RWMutexReadUnderMutation' -benchtime 5000x -count 3 -timeout 30m .
