// Package-level scale tests: larger instances than the paper's, exercising
// the full stack at sizes a modern laptop handles trivially but which shake
// out quadratic accidents. Skipped under -short.
package repro_test

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/ch"
	"repro/internal/dbsearch"
	"repro/internal/estimator"
	"repro/internal/graph"
	"repro/internal/gridgen"
	"repro/internal/search"
)

func TestScaleGrid50(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test")
	}
	const k = 50 // 2500 nodes, 9800 directed edges
	g := gridgen.MustGenerate(gridgen.Config{K: k, Model: gridgen.Variance, Seed: benchSeed})
	s, d := gridgen.Pair(k, gridgen.Diagonal, benchSeed)

	dij, err := search.Dijkstra(g, s, d)
	if err != nil || !dij.Found {
		t.Fatalf("dijkstra: %v", err)
	}
	ast, err := search.AStar(g, s, d, estimator.Manhattan())
	if err != nil {
		t.Fatal(err)
	}
	it, err := search.Iterative(g, s, d)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(dij.Cost-ast.Cost) > 1e-9 || math.Abs(dij.Cost-it.Cost) > 1e-9 {
		t.Fatalf("costs disagree at scale: %v / %v / %v", dij.Cost, ast.Cost, it.Cost)
	}
	if it.Trace.Iterations != 2*(k-1)+1 {
		t.Errorf("iterative rounds = %d, want %d", it.Trace.Iterations, 2*(k-1)+1)
	}
	if dij.Trace.Iterations < k*k-10 {
		t.Errorf("dijkstra explored %d of %d", dij.Trace.Iterations, k*k)
	}

	// Alternates and landmarks still behave at this size.
	paths, err := search.KShortest(g, s, gridgen.NodeAt(k, 5, 5), 3)
	if err != nil || len(paths) != 3 {
		t.Fatalf("k-shortest at scale: %v, %d paths", err, len(paths))
	}
}

// TestScaleCH100 is the contraction-hierarchy scale gate: a 100×100 grid
// (10,000 nodes), preprocessing included. It checks the three properties
// the hierarchy is for — exact agreement with Dijkstra, an order-of-
// magnitude reduction in settled nodes on long queries, and query wall
// time that beats Dijkstra's — plus timing sanity on the preprocessing
// pass itself.
func TestScaleCH100(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test (CH preprocessing is seconds of work)")
	}
	const k = 100 // 10,000 nodes, 39,600 directed edges
	g := gridgen.MustGenerate(gridgen.Config{K: k, Model: gridgen.Variance, Seed: benchSeed})

	buildStart := time.Now()
	ix, err := ch.Build(g, ch.Options{})
	if err != nil {
		t.Fatal(err)
	}
	buildTime := time.Since(buildStart)
	if buildTime > 5*time.Minute {
		t.Errorf("preprocessing took %v; quadratic accident?", buildTime)
	}
	t.Logf("preprocessing: %v for %d nodes, %d shortcuts", buildTime, g.NumNodes(), ix.Shortcuts())

	// Long diagonal query plus random pairs: agreement and work ratio.
	rng := rand.New(rand.NewSource(benchSeed))
	s, d := gridgen.Pair(k, gridgen.Diagonal, benchSeed)
	var chTime, dijTime time.Duration
	var chSettled, dijSettled int
	for i := 0; i < 20; i++ {
		q0 := time.Now()
		res, err := ix.Query(s, d)
		chTime += time.Since(q0)
		if err != nil {
			t.Fatal(err)
		}
		q1 := time.Now()
		dij, err := search.Dijkstra(g, s, d)
		dijTime += time.Since(q1)
		if err != nil {
			t.Fatal(err)
		}
		if res.Found != dij.Found {
			t.Fatalf("%d→%d: ch found=%v, dijkstra found=%v", s, d, res.Found, dij.Found)
		}
		if math.Abs(res.Cost-dij.Cost) > 1e-9*(1+dij.Cost) {
			t.Fatalf("%d→%d: ch cost %v, dijkstra %v", s, d, res.Cost, dij.Cost)
		}
		if i == 0 {
			chSettled, dijSettled = res.Settled, dij.Trace.Iterations
		}
		s = graph.NodeID(rng.Intn(g.NumNodes()))
		d = graph.NodeID(rng.Intn(g.NumNodes()))
	}
	// The acceptance bar: ≥10× fewer settled nodes on the corner-to-corner
	// query, where Dijkstra must flood essentially the whole grid.
	if dijSettled < 10*chSettled {
		t.Errorf("diagonal query: ch settled %d, dijkstra %d — want ≥10x reduction", chSettled, dijSettled)
	}
	t.Logf("diagonal settled: ch %d vs dijkstra %d (%.1fx)", chSettled, dijSettled, float64(dijSettled)/float64(chSettled))
	t.Logf("20-query wall time: ch %v vs dijkstra %v", chTime, dijTime)
	// Timing sanity, not a benchmark: allow generous noise on a shared
	// vCPU, but CH taking longer than half of Dijkstra's total would mean
	// the hierarchy isn't actually pruning.
	if chTime > dijTime/2 {
		t.Errorf("ch total %v not clearly faster than dijkstra %v", chTime, dijTime)
	}
}

func TestScaleDBEngine30(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test")
	}
	const k = 30
	g := gridgen.MustGenerate(gridgen.Config{K: k, Model: gridgen.Variance, Seed: benchSeed})
	m, err := dbsearch.OpenMap(g, dbsearch.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, d := gridgen.Pair(k, gridgen.Diagonal, benchSeed)
	res, err := m.RunBestFirst(s, d, dbsearch.DijkstraConfig())
	if err != nil || !res.Found {
		t.Fatalf("db dijkstra at 30x30: %v", err)
	}
	if res.Iterations != 899 {
		t.Errorf("iterations = %d, want 899 (Table 5)", res.Iterations)
	}
	oracle, _ := search.Dijkstra(g, s, d)
	if math.Abs(res.Cost-oracle.Cost) > 1e-9 {
		t.Errorf("db cost %v != oracle %v", res.Cost, oracle.Cost)
	}
}
