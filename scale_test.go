// Package-level scale tests: larger instances than the paper's, exercising
// the full stack at sizes a modern laptop handles trivially but which shake
// out quadratic accidents. Skipped under -short.
package repro_test

import (
	"math"
	"testing"

	"repro/internal/dbsearch"
	"repro/internal/estimator"
	"repro/internal/gridgen"
	"repro/internal/search"
)

func TestScaleGrid50(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test")
	}
	const k = 50 // 2500 nodes, 9800 directed edges
	g := gridgen.MustGenerate(gridgen.Config{K: k, Model: gridgen.Variance, Seed: benchSeed})
	s, d := gridgen.Pair(k, gridgen.Diagonal, benchSeed)

	dij, err := search.Dijkstra(g, s, d)
	if err != nil || !dij.Found {
		t.Fatalf("dijkstra: %v", err)
	}
	ast, err := search.AStar(g, s, d, estimator.Manhattan())
	if err != nil {
		t.Fatal(err)
	}
	it, err := search.Iterative(g, s, d)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(dij.Cost-ast.Cost) > 1e-9 || math.Abs(dij.Cost-it.Cost) > 1e-9 {
		t.Fatalf("costs disagree at scale: %v / %v / %v", dij.Cost, ast.Cost, it.Cost)
	}
	if it.Trace.Iterations != 2*(k-1)+1 {
		t.Errorf("iterative rounds = %d, want %d", it.Trace.Iterations, 2*(k-1)+1)
	}
	if dij.Trace.Iterations < k*k-10 {
		t.Errorf("dijkstra explored %d of %d", dij.Trace.Iterations, k*k)
	}

	// Alternates and landmarks still behave at this size.
	paths, err := search.KShortest(g, s, gridgen.NodeAt(k, 5, 5), 3)
	if err != nil || len(paths) != 3 {
		t.Fatalf("k-shortest at scale: %v, %d paths", err, len(paths))
	}
}

func TestScaleDBEngine30(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test")
	}
	const k = 30
	g := gridgen.MustGenerate(gridgen.Config{K: k, Model: gridgen.Variance, Seed: benchSeed})
	m, err := dbsearch.OpenMap(g, dbsearch.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, d := gridgen.Pair(k, gridgen.Diagonal, benchSeed)
	res, err := m.RunBestFirst(s, d, dbsearch.DijkstraConfig())
	if err != nil || !res.Found {
		t.Fatalf("db dijkstra at 30x30: %v", err)
	}
	if res.Iterations != 899 {
		t.Errorf("iterations = %d, want 899 (Table 5)", res.Iterations)
	}
	oracle, _ := search.Dijkstra(g, s, d)
	if math.Abs(res.Cost-oracle.Cost) > 1e-9 {
		t.Errorf("db cost %v != oracle %v", res.Cost, oracle.Cost)
	}
}
