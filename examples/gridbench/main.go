// Gridbench: sweep the paper's synthetic grid workloads across all five
// algorithms and print a work comparison — a compact, in-memory rerun of
// the Section 5.1 study.
//
//	go run ./examples/gridbench
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"repro/internal/core"
	"repro/internal/gridgen"
)

func main() {
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "grid\tcost model\tpath\tL\talgorithm\titerations\tcost")

	for _, k := range []int{10, 20, 30} {
		for _, model := range []gridgen.CostModel{gridgen.Uniform, gridgen.Variance, gridgen.Skewed} {
			g, err := gridgen.Generate(gridgen.Config{K: k, Model: model, Seed: 1993})
			if err != nil {
				log.Fatal(err)
			}
			planner := core.MustNew(g)
			for _, kind := range []gridgen.PairKind{gridgen.Horizontal, gridgen.Diagonal} {
				s, d := gridgen.Pair(k, kind, 0)
				for _, algo := range core.Algorithms() {
					r, err := planner.Route(s, d, core.Options{Algorithm: algo})
					if err != nil {
						log.Fatal(err)
					}
					fmt.Fprintf(tw, "%dx%d\t%v\t%v\t%d\t%v\t%d\t%.2f\n",
						k, k, model, kind, gridgen.ManhattanEdges(k, kind),
						algo, r.Trace.Iterations, r.Cost)
				}
			}
		}
	}
	tw.Flush()

	fmt.Println("\nReading the table: iterative's iteration count ignores the destination;")
	fmt.Println("dijkstra's grows with path length; the A* variants exploit geometry and")
	fmt.Println("win by an order of magnitude on short paths — the paper's Section 5 story.")
}
