// Fastest: route by travel time instead of distance. The paper's
// Minneapolis records carried average speed and road type per segment; this
// example generates the map under the travel-time metric, routes with the
// ALT landmark estimator (admissible on any metric, unlike the geometric
// estimators), shows how the fastest route trades distance for freeway
// mileage, and lists alternate routes.
//
//	go run ./examples/fastest
package main

import (
	"fmt"
	"log"

	"repro/internal/alt"
	"repro/internal/mpls"
	"repro/internal/search"
)

func main() {
	// One map, two metrics: same roads, different edge costs.
	gDist, atlas, err := mpls.GenerateWithAtlas(mpls.Config{Metric: mpls.Distance})
	if err != nil {
		log.Fatal(err)
	}
	gTime, _, err := mpls.GenerateWithAtlas(mpls.Config{Metric: mpls.TravelTime})
	if err != nil {
		log.Fatal(err)
	}

	from, _ := gTime.Lookup("C")
	to, _ := gTime.Lookup("D")

	// ALT preprocessing: four landmarks, two Dijkstra runs each.
	landmarks, err := alt.SelectLandmarks(gTime, 4, 1)
	if err != nil {
		log.Fatal(err)
	}
	tables, err := alt.Preprocess(gTime, landmarks)
	if err != nil {
		log.Fatal(err)
	}

	fastest, err := search.AStar(gTime, from, to, tables.Estimator())
	if err != nil {
		log.Fatal(err)
	}
	shortest, err := search.Dijkstra(gDist, from, to)
	if err != nil {
		log.Fatal(err)
	}

	describe := func(name string, path search.Result) {
		var miles, minutes float64
		classMiles := map[mpls.RoadClass]float64{}
		for i := 0; i+1 < len(path.Path.Nodes); i++ {
			seg, ok := atlas.Segment(path.Path.Nodes[i], path.Path.Nodes[i+1])
			if !ok {
				log.Fatalf("route uses unknown segment")
			}
			miles += seg.Distance
			minutes += seg.TravelMinutes()
			classMiles[seg.Class] += seg.Distance
		}
		fmt.Printf("%s: %.1f miles, %.1f minutes free-flow\n", name, miles, minutes)
		for _, c := range []mpls.RoadClass{mpls.Freeway, mpls.Highway, mpls.Local} {
			fmt.Printf("   %-8s %5.1f miles\n", c, classMiles[c])
		}
	}

	fmt.Printf("commute C -> D (ALT with %d landmarks explored %d nodes)\n\n", len(landmarks), fastest.Trace.Iterations)
	describe("fastest route (travel-time metric)", fastest)
	fmt.Println()
	describe("shortest route (distance metric)  ", shortest)

	// Alternate fastest routes for the traveller to choose among.
	alts, err := search.KShortest(gTime, from, to, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nalternate routes by travel time:")
	for i, a := range alts {
		fmt.Printf("  #%d: %.1f minutes over %d segments\n", i+1, a.Cost, a.Path.Len())
	}
}
