// Quickstart: build a small road grid, plan a route with the default
// algorithm (A* with the euclidean estimator), and print it.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/gridgen"
)

func main() {
	// A 10×10 street grid with mildly varying travel times.
	g, err := gridgen.Generate(gridgen.Config{
		K:     10,
		Model: gridgen.Variance,
		Seed:  42,
	})
	if err != nil {
		log.Fatal(err)
	}

	planner := core.MustNew(g)

	// Route along the bottom of the map: a short path relative to the
	// graph's diameter, the regime where the paper shows estimator-based
	// search shines.
	from, to := gridgen.Pair(10, gridgen.Horizontal, 0)
	route, err := planner.Route(from, to, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	if !route.Found {
		log.Fatal("no route")
	}

	fmt.Printf("found a route with %d segments, cost %.2f\n", route.Path.Len(), route.Cost)
	fmt.Printf("explored %d nodes to find it (the grid has %d)\n",
		route.Trace.Iterations, g.NumNodes())
	fmt.Printf("path: %s\n", route.Path)

	// Dijkstra finds the same route but explores more of the graph — the
	// paper's core observation about estimator functions.
	dij, err := planner.Route(from, to, core.Options{Algorithm: core.Dijkstra})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dijkstra explored %d nodes for the same %.2f-cost route\n",
		dij.Trace.Iterations, dij.Cost)
}
