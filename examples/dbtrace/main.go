// Dbtrace: run the database-resident Dijkstra and A* (version 3) the way
// the paper ran them on INGRES, print the per-step block-I/O trace aligned
// with cost Tables 2 and 3, and compare the measured I/O against the
// algebraic cost model's prediction.
//
//	go run ./examples/dbtrace
package main

import (
	"fmt"
	"log"

	"repro/internal/costmodel"
	"repro/internal/dbms"
	"repro/internal/dbsearch"
	"repro/internal/gridgen"
	"repro/internal/optimizer"
)

func main() {
	const k = 20
	g, err := gridgen.Generate(gridgen.Config{K: k, Model: gridgen.Variance, Seed: 1993})
	if err != nil {
		log.Fatal(err)
	}
	m, err := dbsearch.OpenMap(g, dbsearch.Options{})
	if err != nil {
		log.Fatal(err)
	}
	s, d := gridgen.Pair(k, gridgen.Diagonal, 0)
	params := m.DB().Params()
	model := costmodel.New(optimizer.Params{}, costmodel.GridWorkload(k))

	run := func(name string, cfg dbsearch.Config) dbsearch.Result {
		res, err := m.RunBestFirst(s, d, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n=== %s: cost %.2f, %d iterations, %d reopens ===\n",
			name, res.Cost, res.Iterations, res.Reopens)
		fmt.Print(dbms.FormatTrace(res.Steps, params.TRead, params.TWrite))
		return res
	}

	dij := run("dijkstra (Figure 2 over relations)", dbsearch.DijkstraConfig())
	ast := run("astar v3 (Figure 3 over relations)", dbsearch.AStarV3Config())

	fmt.Println("\n=== measured vs. the algebraic cost model (Table 3 formulas) ===")
	for _, row := range []struct {
		name  string
		res   dbsearch.Result
		model costmodel.Breakdown
	}{
		{"dijkstra", dij, model.DijkstraEstimate(dij.Iterations)},
		{"astar-v3", ast, model.AStarV3Estimate(ast.Iterations)},
	} {
		fmt.Printf("%-10s measured %8.1f units (%d logical page reads)   model predicts %8.1f units\n",
			row.name, row.res.TimeUnits, row.res.PageRequests, row.model.Total)
	}

	fmt.Println("\nFull model breakdown for A* v3:")
	fmt.Print(model.AStarV3Estimate(ast.Iterations))
}
