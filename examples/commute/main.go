// Commute: the ATIS scenario from the paper's introduction — static route
// selection coupled with real-time traffic information. We plan a morning
// commute across the synthetic Minneapolis map, rush hour congests
// downtown, and the service re-routes around it and quantifies the saving.
//
//	go run ./examples/commute
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/mpls"
	"repro/internal/route"
)

func main() {
	g, err := mpls.Generate(mpls.Config{})
	if err != nil {
		log.Fatal(err)
	}
	svc := route.NewService(g)

	// The free-flow commute: C (southwest suburbs) to D (northeast, across
	// the river).
	morning, err := svc.ComputeByName("C", "D", core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	ev, err := svc.Evaluate(morning.Path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("free-flow commute C -> D: %d segments, travel cost %.2f (distance %.2f)\n",
		ev.Hops, ev.CurrentCost, ev.Distance)

	// Rush hour: downtown congests to 3× travel time.
	affected, err := svc.ApplyRegionCongestion(graph.Point{X: 16, Y: 16}, 5, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrush hour: %d downtown road segments congested to 3x\n", affected)

	// The old route is now painful…
	evOld, err := svc.Evaluate(morning.Path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("the morning route now costs %.2f (congestion ratio %.2f, %d congested segments)\n",
		evOld.CurrentCost, evOld.CongestionRatio, evOld.CongestedHops)

	// …so recompute with live costs.
	rerouted, err := svc.ComputeByName("C", "D", core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	evNew, err := svc.Evaluate(rerouted.Path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("re-routed: %d segments, travel cost %.2f — saves %.2f over sitting in traffic\n",
		evNew.Hops, evNew.CurrentCost, evOld.CurrentCost-evNew.CurrentCost)

	// Show the detour on the map.
	fmt.Println("\nre-routed commute (S = start, D = destination, o = route):")
	fmt.Print(svc.Display(rerouted.Path, 80, 40))

	// Turn-by-turn guidance for the detour.
	ins, err := svc.Directions(rerouted.Path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nguidance:")
	fmt.Print(route.FormatDirections(ins))

	// Evening: congestion clears.
	svc.ResetTraffic()
	evening, err := svc.ComputeByName("D", "C", core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nevening return D -> C at free flow: cost %.2f\n", evening.Cost)
}
