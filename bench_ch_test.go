// Contraction-hierarchy benchmarks: the preprocessing-based engine's
// query cost against the paper's three classes (represented by Dijkstra
// and A*) and PR 1's goal-directed ALT, across grid sizes. Where every
// other kernel's work grows with the searched region, a CH query climbs
// two rank-increasing cones whose size barely moves with k — the exhibit
// behind BENCH_PR4.json.
//
// The customization benchmarks (CHCustomize, CHTrafficStream) are the
// exhibit behind BENCH_PR6.json: with the topology/metric split, a cost
// change re-prices the hierarchy in milliseconds where it used to pay a
// full re-contraction.
//
// `make bench-ch` and `make bench-customize` regenerate the numbers.
package repro_test

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"

	"repro/internal/alt"
	"repro/internal/ch"
	"repro/internal/core"
	"repro/internal/estimator"
	"repro/internal/graph"
	"repro/internal/gridgen"
	"repro/internal/route"
	"repro/internal/search"
)

// odPair is one origin–destination benchmark pair.
type odPair struct{ s, d graph.NodeID }

// benchPairs returns a deterministic spread of origin–destination pairs on
// a k×k grid, long and short mixed, so service-level numbers aren't an
// artifact of one endpoint geometry.
func benchPairs(k, count int) []odPair {
	rng := rand.New(rand.NewSource(benchSeed))
	n := k * k
	pairs := make([]odPair, count)
	for i := range pairs {
		pairs[i] = odPair{graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n))}
	}
	return pairs
}

// BenchmarkCHPreprocess measures the full structural preprocessing pass
// (ordering, contraction, CSR freeze, initial customization) per grid
// size — since the CCH split this is the price of a topology change only;
// a cost change pays BenchmarkCHCustomize instead.
func BenchmarkCHPreprocess(b *testing.B) {
	for _, k := range []int{30, 64, 100} {
		g := gridgen.MustGenerate(gridgen.Config{K: k, Model: gridgen.Variance, Seed: benchSeed})
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := ch.Build(g, ch.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCHQuery compares the cached-index query against Dijkstra, A*,
// and ALT on the corner-to-corner pair, where region-proportional kernels
// do maximal work. Same pair, same graph, same allocation accounting.
func BenchmarkCHQuery(b *testing.B) {
	for _, k := range []int{30, 64, 100} {
		g := gridgen.MustGenerate(gridgen.Config{K: k, Model: gridgen.Variance, Seed: benchSeed})
		s, d := gridgen.Pair(k, gridgen.Diagonal, benchSeed)
		ix, err := ch.Build(g, ch.Options{})
		if err != nil {
			b.Fatal(err)
		}
		lms, err := alt.SelectLandmarks(g, 8, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		pre, err := alt.Preprocess(g, lms)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("k=%d/ch", k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := ix.Query(s, d)
				if err != nil || !res.Found {
					b.Fatalf("ch query: %v found=%v", err, res.Found)
				}
			}
		})
		b.Run(fmt.Sprintf("k=%d/dijkstra", k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := search.Dijkstra(g, s, d); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("k=%d/astar", k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := search.AStar(g, s, d, estimator.Euclidean()); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("k=%d/alt", k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := search.AStar(g, s, d, pre.Estimator()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCHRebuildAfterMutation measures the service-level cost of a
// traffic mutation under algo=ch. Since the CCH split, ApplyCongestion
// re-customizes the metric synchronously against the cached topology and
// the follow-up EnableCH finds a fresh index — so this now measures the
// steady-state mutate-and-refresh cycle (milliseconds), not a structural
// re-contraction (seconds). The name is kept so `make bench-ch` output
// stays comparable across PRs.
func BenchmarkCHRebuildAfterMutation(b *testing.B) {
	const k = 64
	g := gridgen.MustGenerate(gridgen.Config{K: k, Model: gridgen.Variance, Seed: benchSeed})
	svc := route.NewService(g)
	if err := svc.EnableCH(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := svc.ApplyCongestion(0, 1, 1.0+float64(i%3)); err != nil {
			b.Fatal(err)
		}
		if err := svc.EnableCH(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCHCustomize measures one metric-update cycle against a cached
// topology: apply a 16-edge cost batch, then re-customize the hierarchy
// (Topology.NewIndex). The ratio against BenchmarkCHPreprocess at the
// same k is the whole point of the CCH split — the structural pass runs
// once, cost changes pay only this.
func BenchmarkCHCustomize(b *testing.B) {
	for _, k := range []int{30, 64, 100} {
		g := gridgen.MustGenerate(gridgen.Config{K: k, Model: gridgen.Variance, Seed: benchSeed})
		topo, err := ch.BuildTopology(g, ch.Options{})
		if err != nil {
			b.Fatal(err)
		}
		base := g.Edges()
		rng := rand.New(rand.NewSource(benchSeed))
		changes := make([]graph.EdgeCostChange, 16)
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				// The mutation itself is untimed: the measured quantity is
				// re-pricing the hierarchy, the direct counterpart of the
				// full structural pass in BenchmarkCHPreprocess.
				b.StopTimer()
				for j := range changes {
					e := base[rng.Intn(len(base))]
					changes[j] = graph.EdgeCostChange{
						Tail: e.Tail, Head: e.Head,
						Cost: e.Cost * (0.5 + 3*rng.Float64()),
					}
				}
				if _, err := g.ApplyBatch(changes); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				if _, err := topo.NewIndex(g); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCHTrafficStream measures the sustained-update cycle end to end
// at the service layer: one ApplyTrafficBatch (16 edges — cost-version
// bump, cache invalidation, synchronous metric customization) plus one
// cache-bypassing CH route per iteration, the shape of a live feed with
// interleaved queries. The benchmark fails if any query fell back to
// Dijkstra: under synchronous customization the index is never stale.
func BenchmarkCHTrafficStream(b *testing.B) {
	const k = 64
	g := gridgen.MustGenerate(gridgen.Config{K: k, Model: gridgen.Variance, Seed: benchSeed})
	svc := route.NewService(g)
	if err := svc.EnableCH(); err != nil {
		b.Fatal(err)
	}
	base := g.Edges()
	rng := rand.New(rand.NewSource(benchSeed))
	changes := make([]graph.EdgeCostChange, 16)
	pairs := benchPairs(k, 1<<16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range changes {
			e := base[rng.Intn(len(base))]
			changes[j] = graph.EdgeCostChange{
				Tail: e.Tail, Head: e.Head,
				Cost: e.Cost * (0.5 + 3*rng.Float64()),
			}
		}
		if _, err := svc.ApplyTrafficBatch(changes); err != nil {
			b.Fatal(err)
		}
		p := pairs[benchPairCursor.Add(1)%uint64(len(pairs))]
		rt, err := svc.Compute(p.s, p.d, core.Options{Algorithm: core.CH})
		if err != nil || !rt.Found {
			b.Fatalf("ch route: %v found=%v", err, rt.Found)
		}
	}
	b.StopTimer()
	if st := svc.CHStats(); st.StaleFallbacks != 0 {
		b.Fatalf("%d queries fell back to Dijkstra during the stream", st.StaleFallbacks)
	}
}

// benchPairCursor advances monotonically across every service-benchmark
// run in the process, so repeated runs (-count) keep drawing fresh
// endpoint pairs instead of replaying ones the route cache already holds.
var benchPairCursor atomic.Uint64

// BenchmarkCHServiceQuery measures the full service path (cache lookup,
// version gate, index query, telemetry) for algo=ch against algo=dijkstra.
// The pair pool is far larger than the route cache and consumed through a
// process-global cursor, so every request is a cache miss and the search
// engine actually runs; a cached hit is ~250ns regardless of algorithm and
// would measure the LRU, not the hierarchy.
func BenchmarkCHServiceQuery(b *testing.B) {
	const k = 64
	g := gridgen.MustGenerate(gridgen.Config{K: k, Model: gridgen.Variance, Seed: benchSeed})
	svc := route.NewService(g)
	if err := svc.EnableCH(); err != nil {
		b.Fatal(err)
	}
	pairs := benchPairs(k, 1<<16)
	for _, algo := range []core.Algorithm{core.CH, core.Dijkstra} {
		b.Run(algo.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				p := pairs[benchPairCursor.Add(1)%uint64(len(pairs))]
				rt, err := svc.Compute(p.s, p.d, core.Options{Algorithm: algo})
				if err != nil || !rt.Found {
					b.Fatalf("%v: %v found=%v", algo, err, rt.Found)
				}
			}
		})
	}
}
