package ch

import (
	"context"
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/tracing"
)

// ctxCheckInterval is the number of settled nodes between ctx.Err()
// polls in QueryCtx, mirroring search.CheckInterval. CH queries settle
// a few hundred nodes even on the 100x100 grid, so most runs poll the
// context at most once beyond the entry check. Must be a power of two.
const ctxCheckInterval = 1024

// Result is the outcome of one CH query, mirroring the shape of
// search.Result plus the work counters the telemetry layer records.
type Result struct {
	Found bool
	Path  graph.Path
	Cost  float64
	// Settled counts nodes popped across both search directions — the
	// headline comparison against Dijkstra's settled count.
	Settled int
	// Relaxed counts arc relaxations attempted across both directions.
	Relaxed int
}

// Query computes the exact shortest path from s to d using bidirectional
// Dijkstra restricted to upward arcs, then unpacks shortcuts so the
// returned path walks only original arcs and validates like every other
// kernel's. It is safe for concurrent use; steady-state queries allocate
// only the returned path slice.
//
// Correctness note on stopping: unlike plain bidirectional Dijkstra, the
// first meeting of the two searches proves nothing in a hierarchy — a
// cheaper path may peak at a lower-ranked node still queued. A direction
// therefore keeps running until its queue minimum is at least the best
// meeting cost found so far; only then can no undiscovered meeting improve
// it.
func (ix *Index) Query(s, d graph.NodeID) (Result, error) {
	return ix.QueryCtx(context.Background(), s, d)
}

// QueryCtx is Query under a request lifecycle: the search loop polls
// ctx.Err() every ctxCheckInterval settled nodes and stops with the raw
// context error (context.Canceled or context.DeadlineExceeded) plus the
// work counters accumulated so far. This package deliberately returns
// context errors untranslated — it cannot import internal/search for
// the typed lifecycle errors without an import cycle through the
// differential test harness — and the planner (internal/core) maps them
// with search.FromContextErr so every layer above sees one vocabulary.
//
// Under an active trace the two phases of a query show up as separate
// spans — "ch.search" (the stall-on-demand bidirectional loop) and
// "ch.unpack" (shortcut expansion) — so a slow CH request says which
// half was at fault.
//
//atis:hotpath
func (ix *Index) QueryCtx(ctx context.Context, s, d graph.NodeID) (Result, error) {
	n := ix.topo.n
	if int(s) < 0 || int(s) >= n {
		//lint:ignore hotpath cold validation error path: a rejected request never reaches the loop
		return Result{}, fmt.Errorf("ch: source %d out of range [0,%d)", s, n)
	}
	if int(d) < 0 || int(d) >= n {
		//lint:ignore hotpath cold validation error path: a rejected request never reaches the loop
		return Result{}, fmt.Errorf("ch: destination %d out of range [0,%d)", d, n)
	}
	if s == d {
		//lint:ignore hotpath trivial same-node answer: one two-word slice on a path that does no search work
		return Result{Found: true, Path: graph.Path{Nodes: []graph.NodeID{s}}, Cost: 0}, nil
	}
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}

	ws := acquireWorkspace(n)
	defer releaseWorkspace(ws)

	best, meet, settled, relaxed, err := ix.searchCtx(ctx, ws, s, d)
	if err != nil {
		return Result{Cost: math.Inf(1), Settled: settled, Relaxed: relaxed}, err
	}

	if meet == graph.Invalid {
		// Cost +Inf on unreachable, matching search.Result semantics.
		return Result{Cost: math.Inf(1), Settled: settled, Relaxed: relaxed}, nil
	}

	nodes := ix.unpackPath(ctx, ws, meet)
	return Result{
		Found:   true,
		Path:    graph.Path{Nodes: nodes},
		Cost:    best,
		Settled: settled,
		Relaxed: relaxed,
	}, nil
}

// searchCtx runs the stall-on-demand bidirectional loop over a prepared
// workspace, returning the best meeting cost and node plus the work
// counters. The span attrs are set explicitly before each return rather
// than in a deferred closure — a closure capturing the counters would
// allocate even with tracing disabled.
func (ix *Index) searchCtx(ctx context.Context, ws *workspace, s, d graph.NodeID) (best float64, meet graph.NodeID, settled, relaxed int, err error) {
	_, sp := tracing.Start(ctx, "ch.search")
	defer sp.End()

	// Compose each search side from the topology's skeleton and the
	// metric's customized weights; positions align by construction.
	fwdSide := qside{
		offsets: ix.topo.fwd.offsets,
		heads:   ix.topo.fwd.heads,
		costs:   ix.metric.fwd.costs,
	}
	bwdSide := qside{
		offsets: ix.topo.bwd.offsets,
		heads:   ix.topo.bwd.heads,
		costs:   ix.metric.bwd.costs,
	}

	ws.fwd.set(s, 0, graph.Invalid)
	ws.hf.Push(int(s), 0)
	ws.bwd.set(d, 0, graph.Invalid)
	ws.hb.Push(int(d), 0)

	best = math.Inf(1)
	meet = graph.Invalid
	stalls := 0

	// Alternate directions, settling from whichever frontier is cheaper;
	// a direction is exhausted once empty or its minimum cannot improve
	// best.
	polls := 0
	for {
		if polls++; polls&(ctxCheckInterval-1) == 0 {
			if cerr := ctx.Err(); cerr != nil {
				sp.SetInt("settled", int64(settled))
				sp.SetInt("relaxed", int64(relaxed))
				sp.SetInt("stalls", int64(stalls))
				return best, meet, settled, relaxed, cerr
			}
		}
		fmin, bmin := math.Inf(1), math.Inf(1)
		if _, p, ok := ws.hf.Peek(); ok {
			fmin = p
		}
		if _, p, ok := ws.hb.Peek(); ok {
			bmin = p
		}
		if fmin >= best && bmin >= best {
			break
		}
		forward := fmin <= bmin
		var (
			heap  = ws.hf
			mine  = &ws.fwd
			their = &ws.bwd
			adj   = &fwdSide
			down  = &bwdSide
		)
		if !forward {
			heap, mine, their, adj, down = ws.hb, &ws.bwd, &ws.fwd, &bwdSide, &fwdSide
		}
		ui, du, _ := heap.PopMin()
		u := graph.NodeID(ui)
		if od := their.distAt(u); du+od < best {
			best = du + od
			meet = u
		}
		// Stall-on-demand: the opposite CSR holds this direction's downward
		// arcs into u (from higher-ranked x). If any labeled x reaches u
		// more cheaply through one, no shortest path continues upward
		// through u — skip its expansion. Labels are upper bounds on true
		// distance, so stalling on a queued (not yet settled) label is
		// still conservative.
		stalled := false
		for i, hi := down.offsets[u], down.offsets[u+1]; i < hi; i++ {
			if mine.distAt(down.heads[i])+down.costs[i] < du {
				stalled = true
				break
			}
		}
		if stalled {
			stalls++
			continue
		}
		settled++
		lo, hi := adj.offsets[u], adj.offsets[u+1]
		for i := lo; i < hi; i++ {
			relaxed++
			v := adj.heads[i]
			nd := du + adj.costs[i]
			if nd < mine.distAt(v) {
				mine.set(v, nd, u)
				heap.PushOrUpdate(int(v), nd)
			}
		}
	}
	sp.SetInt("settled", int64(settled))
	sp.SetInt("relaxed", int64(relaxed))
	sp.SetInt("stalls", int64(stalls))
	return best, meet, settled, relaxed, nil
}

// unpackPath reconstructs the packed meeting path from the search trees
// and expands its shortcuts into original arcs, returning the exact-size
// node slice — the only allocation of a warm query.
func (ix *Index) unpackPath(ctx context.Context, ws *workspace, meet graph.NodeID) []graph.NodeID {
	_, sp := tracing.Start(ctx, "ch.unpack")
	defer sp.End()

	// Reconstruct the packed meeting path: s → … → meet from the forward
	// tree (reversed in place), then meet → … → d from the backward tree,
	// where prev in the backward search names the next node toward d.
	packed := ws.packed[:0]
	for u := meet; u != graph.Invalid; u = ws.fwd.prev[u] {
		packed = append(packed, u)
	}
	for i, j := 0, len(packed)-1; i < j; i, j = i+1, j-1 {
		packed[i], packed[j] = packed[j], packed[i]
	}
	for u := ws.bwd.prev[meet]; u != graph.Invalid; u = ws.bwd.prev[u] {
		packed = append(packed, u)
	}
	ws.packed = packed // retain any growth for the next query

	// Unpack into the workspace scratch (shortcut expansion makes the final
	// length unknowable upfront), then copy once into an exact-size result.
	scratch := append(ws.nodes[:0], packed[0])
	for i := 0; i+1 < len(packed); i++ {
		scratch = ix.unpackInto(scratch, packed[i], packed[i+1])
	}
	ws.nodes = scratch // retain any growth for the next query
	//lint:ignore hotpath result materialisation: the exact-size path copy is the warm query's one allocation
	nodes := make([]graph.NodeID, len(scratch))
	copy(nodes, scratch)
	sp.SetInt("packed", int64(len(packed)))
	sp.SetInt("nodes", int64(len(nodes)))
	return nodes
}

// qside is one direction of the bidirectional search: skeleton structure
// from the Topology, weights from the Metric, zipped by arc position.
type qside struct {
	offsets []int32
	heads   []graph.NodeID
	costs   []float64
}

// unpackInto expands the (possibly shortcut) arc u→w into original arcs,
// appending every node after u to nodes. The arc's customized middle says
// which lower triangle realised its weight under the current metric;
// graph.Invalid means an original edge did, terminating the recursion.
// Depth is bounded by the hierarchy height because a triangle's middle is
// always ranked below both endpoints.
func (ix *Index) unpackInto(nodes []graph.NodeID, u, w graph.NodeID) []graph.NodeID {
	t := ix.topo
	var mid graph.NodeID
	if t.rank[w] > t.rank[u] {
		mid = ix.metric.fwd.mid[t.findFwd(u, w)]
	} else {
		mid = ix.metric.bwd.mid[t.findBwd(w, u)]
	}
	if mid == graph.Invalid {
		return append(nodes, w)
	}
	nodes = ix.unpackInto(nodes, u, mid)
	return ix.unpackInto(nodes, mid, w)
}
