package ch

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/graph"
	"repro/internal/gridgen"
)

// TestCustomizedMatchesRebuildAndDijkstra is the differential guarantee of
// the topology/metric split: after every batch of a random mutation
// stream, an index re-customized over the original topology must return
// exactly the same distances as an index rebuilt from scratch and as
// textbook Dijkstra, on every sampled pair. Runs under -race in CI.
func TestCustomizedMatchesRebuildAndDijkstra(t *testing.T) {
	g, err := gridgen.Generate(gridgen.Config{K: 9, Model: gridgen.Variance, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	topo, err := BuildTopology(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(31))
	n := g.NumNodes()
	edges := g.Edges() // base costs; mutations below set absolutes from these
	rounds, pairs := 8, 25
	if testing.Short() {
		rounds, pairs = 3, 8
	}
	for round := 0; round < rounds; round++ {
		// One random batch: a handful of edges jump to random multiples of
		// their base cost, applied with a single version bump.
		batch := make([]graph.EdgeCostChange, 0, 12)
		for i := 0; i < 12; i++ {
			e := edges[rng.Intn(len(edges))]
			batch = append(batch, graph.EdgeCostChange{
				Tail: e.Tail, Head: e.Head, Cost: e.Cost * (0.5 + 3*rng.Float64()),
			})
		}
		if _, err := g.ApplyBatch(batch); err != nil {
			t.Fatal(err)
		}

		customized, err := topo.NewIndex(g)
		if err != nil {
			t.Fatal(err)
		}
		rebuilt, err := Build(g, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if customized.CostVersion() != g.CostVersion() {
			t.Fatalf("round %d: customized version %d != graph %d",
				round, customized.CostVersion(), g.CostVersion())
		}
		for i := 0; i < pairs; i++ {
			s := graph.NodeID(rng.Intn(n))
			d := graph.NodeID(rng.Intn(n))
			cres, err := customized.Query(s, d)
			if err != nil {
				t.Fatal(err)
			}
			rres, err := rebuilt.Query(s, d)
			if err != nil {
				t.Fatal(err)
			}
			want, found := oracleDijkstra(g, s, d)
			if cres.Found != found || rres.Found != found {
				t.Fatalf("round %d %d→%d: customized found=%v rebuilt=%v dijkstra=%v",
					round, s, d, cres.Found, rres.Found, found)
			}
			if !found {
				continue
			}
			if math.Abs(cres.Cost-want) > tol*(1+math.Abs(want)) {
				t.Fatalf("round %d %d→%d: customized %v, dijkstra %v", round, s, d, cres.Cost, want)
			}
			if math.Abs(cres.Cost-rres.Cost) > tol*(1+math.Abs(want)) {
				t.Fatalf("round %d %d→%d: customized %v, rebuilt %v", round, s, d, cres.Cost, rres.Cost)
			}
			checkUnpacked(t, g, s, d, cres)
		}
	}
}

// TestRecustomizationSwitchesUnpackPath pins down that middle nodes are
// metric state, not topology state: congestion on one diamond side must
// flip both the reported cost and the unpacked path to the other side,
// with no structural rebuild.
func TestRecustomizationSwitchesUnpackPath(t *testing.T) {
	// 0→1→3 (cost 2), 0→2→3 (cost 10), plus pressure edges 4→0 and 3→5 so
	// the interior contracts before the terminals and a 0→3 shortcut with
	// triangles over both sides exists.
	b := builderWithNodes(6)
	b.AddEdge(4, 0, 1)
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 3, 1)
	b.AddEdge(0, 2, 5)
	b.AddEdge(2, 3, 5)
	b.AddEdge(3, 5, 1)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	topo, err := BuildTopology(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := topo.NewIndex(g)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ix.Query(4, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found || math.Abs(res.Cost-4) > tol {
		t.Fatalf("pre-congestion 4→5: found=%v cost=%v, want 4 via node 1", res.Found, res.Cost)
	}
	checkUnpacked(t, g, 4, 5, res)

	// Congest the 0→1→3 side past the alternative.
	if _, err := g.ApplyBatch([]graph.EdgeCostChange{
		{Tail: 0, Head: 1, Cost: 50},
		{Tail: 1, Head: 3, Cost: 50},
	}); err != nil {
		t.Fatal(err)
	}
	ix2, err := topo.NewIndex(g)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := ix2.Query(4, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Found || math.Abs(res2.Cost-12) > tol {
		t.Fatalf("post-congestion 4→5: found=%v cost=%v, want 12 via node 2", res2.Found, res2.Cost)
	}
	checkUnpacked(t, g, 4, 5, res2)
	via2 := false
	for _, u := range res2.Path.Nodes {
		if u == 2 {
			via2 = true
		}
	}
	if !via2 {
		t.Fatalf("post-congestion path %v does not reroute via node 2", res2.Path.Nodes)
	}
	// The old index still answers for its own version (immutability).
	resOld, err := ix.Query(4, 5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(resOld.Cost-4) > tol {
		t.Fatalf("pre-mutation index changed its answer to %v", resOld.Cost)
	}
}

// TestCustomizeRejectsStructuralMismatch: a topology only answers for the
// structure it was contracted from.
func TestCustomizeRejectsStructuralMismatch(t *testing.T) {
	g, err := gridgen.Generate(gridgen.Config{K: 4, Model: gridgen.Uniform, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	topo, err := BuildTopology(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	other, err := gridgen.Generate(gridgen.Config{K: 5, Model: gridgen.Uniform, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := topo.Customize(other); err == nil {
		t.Fatal("customizing against a structurally different graph did not error")
	}
}

// TestConcurrentQueriesDuringCustomization exercises the sharing contract
// under -race: many goroutines query a live index while others customize
// fresh metrics from the same topology. The topology is read-only for
// both; each customization owns its output.
func TestConcurrentQueriesDuringCustomization(t *testing.T) {
	g, err := gridgen.Generate(gridgen.Config{K: 8, Model: gridgen.Variance, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	topo, err := BuildTopology(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := topo.NewIndex(g)
	if err != nil {
		t.Fatal(err)
	}
	n := g.NumNodes()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 30; i++ {
				s := graph.NodeID(rng.Intn(n))
				d := graph.NodeID(rng.Intn(n))
				if _, err := ix.Query(s, d); err != nil {
					t.Errorf("query(%d,%d): %v", s, d, err)
					return
				}
			}
		}(int64(w + 1))
	}
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Customize against a private clone so cost reads cannot race
			// the mutations other tests might make — the same snapshot
			// discipline the route service uses.
			snap := g.Clone()
			for i := 0; i < 10; i++ {
				if _, err := topo.Customize(snap); err != nil {
					t.Errorf("customize: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
}
