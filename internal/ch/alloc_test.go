package ch

import (
	"context"
	"testing"

	"repro/internal/graph"
)

// TestQueryCtxUnreachableZeroAlloc is the gate test behind the
// //atis:hotpath annotation on QueryCtx: with a warm workspace pool, a
// query that finds no path — which still runs the full bidirectional
// stall-on-demand loop but skips the blessed exact-size result copy —
// performs zero allocations. TestSteadyStateAllocs covers the reachable
// case, where the result slice is the only allocation left.
func TestQueryCtxUnreachableZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("the race detector defeats sync.Pool caching, so allocs/op is not meaningful under -race")
	}
	// A two-way chain plus an isolated island node.
	b := graph.NewBuilder(9, 16)
	for i := 0; i < 9; i++ {
		b.AddNode(float64(i), 0)
	}
	for i := 0; i < 7; i++ {
		b.AddEdge(graph.NodeID(i), graph.NodeID(i+1), 1)
		b.AddEdge(graph.NodeID(i+1), graph.NodeID(i), 1)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	ix, err := Build(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	island := graph.NodeID(8)

	// Warm the pool and grow every scratch slice with reachable queries.
	for i := 0; i < 4; i++ {
		if _, err := ix.QueryCtx(ctx, 0, 7); err != nil {
			t.Fatal(err)
		}
	}

	allocs := testing.AllocsPerRun(100, func() {
		res, err := ix.QueryCtx(ctx, 0, island)
		if err != nil || res.Found {
			t.Errorf("unexpected outcome: found=%v err=%v", res.Found, err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm unreachable QueryCtx allocates %.1f times per run, want 0", allocs)
	}
}
