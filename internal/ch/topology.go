package ch

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/graph"
	"repro/internal/pqueue"
)

// skeleton is one upward half of the hierarchy in structural CSR form:
// arcs of node u occupy heads[offsets[u]:offsets[u+1]]. It carries no
// weights — those live in the Metric layer, one slice per half, indexed
// by the same positions.
type skeleton struct {
	offsets []int32
	heads   []graph.NodeID
}

// Topology is the metric-independent half of a contraction hierarchy: the
// contraction order, the shortcut skeleton (every arc any cost function
// could need), the lower-triangle lists that drive customization, and the
// mapping from original graph edges onto skeleton arcs. It is built once
// per graph structure and reused across arbitrarily many metrics — a cost
// mutation never invalidates it, only the Metric customized from it.
//
// Unlike the witness-pruned hierarchies of classic CH preprocessing, the
// skeleton keeps a shortcut arc for *every* in/out pair enumerated during
// contraction. A witness proof is only valid under the metric it was
// searched in; a skeleton meant to outlive the metric must keep every arc
// a future metric might make necessary (the customizable-CH observation
// of Dibbelt, Strasser & Wagner, the CH analogue of CRP's
// separator-based split). Contraction therefore needs no shortest-path
// searches at all — ordering and contraction are purely structural.
//
// A Topology is immutable after BuildTopology and safe for concurrent use
// (atislint's immutsnapshot analyzer enforces the freeze).
//
//atis:immutable
type Topology struct {
	n int // nodes of the source graph
	m int // directed edges of the source graph (structural fingerprint)

	rank  []int32        // contraction order; higher = more important
	order []graph.NodeID // order[r] = the node contracted r-th

	// fwd holds upward arcs of the original direction (tail rank < head
	// rank); bwd holds upward arcs of the reverse graph, i.e. the original
	// arc x→y with rank(x) > rank(y) sits in bwd at node y with head x.
	// Every skeleton arc lives in exactly one half, at its lower-ranked
	// endpoint — which is what lets customization finalize all arcs of a
	// node in one contraction-order sweep.
	fwd, bwd skeleton

	// Lower-triangle lists, CSR-indexed by global arc id (fwd arcs are
	// ids [0,F), bwd arcs [F,F+B)). Triangle ti of arc (u,w) names a
	// middle node v contracted before both endpoints, with triDown[ti]
	// the bwd-half position of arc u→v and triUp[ti] the fwd-half
	// position of arc v→w: customization relaxes
	// w(u,w) ← min(w(u,w), w(u→v) + w(v→w)) over these entries.
	triOff  []int32
	triMid  []graph.NodeID
	triDown []int32
	triUp   []int32

	// edgePos maps the i-th directed edge of the source graph (CSR
	// order, the order Neighbors visits) to its skeleton arc's global
	// id, -1 for self loops. Customization seeds base costs through it
	// in one O(m) pass without any adjacency lookups.
	edgePos []int32

	shortcuts int // skeleton arcs not backed by any original edge
}

// NumNodes returns the number of nodes the topology covers.
func (t *Topology) NumNodes() int { return t.n }

// Shortcuts returns the number of shortcut arcs in the skeleton on top of
// the original edge set.
func (t *Topology) Shortcuts() int { return t.shortcuts }

// Triangles returns the total number of lower-triangle entries —
// the work one customization pass performs.
func (t *Topology) Triangles() int { return len(t.triMid) }

// Arcs returns the total number of skeleton arcs across both halves.
func (t *Topology) Arcs() int { return len(t.fwd.heads) + len(t.bwd.heads) }

// Rank returns node u's contraction rank (0 = contracted first, least
// important). It panics on out-of-range nodes, mirroring slice indexing.
func (t *Topology) Rank(u graph.NodeID) int { return int(t.rank[u]) }

// Matches reports whether g has the node and edge counts the topology was
// built from. Graph structure is immutable in this codebase, so matching
// counts mean the topology's skeleton is valid for g; callers swapping in
// a structurally different graph with coincidentally equal counts violate
// the contract and must rebuild.
func (t *Topology) Matches(g *graph.Graph) bool {
	return g.NumNodes() == t.n && g.NumEdges() == t.m
}

// findFwd returns the fwd-half position of arc u→w (rank w above rank u).
// The arc exists for every consecutive pair of a packed query path; a miss
// means the caller broke that invariant.
func (t *Topology) findFwd(u, w graph.NodeID) int32 {
	for p := t.fwd.offsets[u]; p < t.fwd.offsets[u+1]; p++ {
		if t.fwd.heads[p] == w {
			return p
		}
	}
	panic(fmt.Sprintf("ch: no upward arc %d→%d in the skeleton", u, w))
}

// findBwd returns the bwd-half position of the original arc x→y with
// rank(x) above rank(y) — stored at y with head x.
func (t *Topology) findBwd(y, x graph.NodeID) int32 {
	for p := t.bwd.offsets[y]; p < t.bwd.offsets[y+1]; p++ {
		if t.bwd.heads[p] == x {
			return p
		}
	}
	panic(fmt.Sprintf("ch: no downward arc %d→%d in the skeleton", x, y))
}

// tbuilder is the mutable state of a structural contraction.
type tbuilder struct {
	n          int
	fwd        [][]graph.NodeID // live out-neighbours, shortcut targets included
	bwd        [][]graph.NodeID // live in-neighbours
	contracted []bool
	delNbrs    []int32 // contracted-neighbour counts (the spreading term)
	rank       []int32
	order      []graph.NodeID
	tris       []triple
}

// triple records one lower triangle as it is enumerated during
// contraction: contracting v connected in-neighbour u to out-neighbour w.
type triple struct{ v, u, w graph.NodeID }

// newTBuilder seeds the structural adjacency from g, dropping self loops
// and collapsing parallel edges to a single arc per directed pair.
func newTBuilder(g *graph.Graph) *tbuilder {
	n := g.NumNodes()
	b := &tbuilder{
		n:          n,
		fwd:        make([][]graph.NodeID, n),
		bwd:        make([][]graph.NodeID, n),
		contracted: make([]bool, n),
		delNbrs:    make([]int32, n),
		rank:       make([]int32, n),
		order:      make([]graph.NodeID, 0, n),
	}
	for u := graph.NodeID(0); int(u) < n; u++ {
		g.Neighbors(u, func(a graph.Arc) {
			if a.Head == u {
				return // self loops never lie on a shortest path
			}
			if !b.hasArc(u, a.Head) {
				b.addArc(u, a.Head)
			}
		})
	}
	return b
}

// hasArc reports whether the directed arc (u, w) is in the live skeleton.
func (b *tbuilder) hasArc(u, w graph.NodeID) bool {
	for _, x := range b.fwd[u] {
		if x == w {
			return true
		}
	}
	return false
}

// addArc inserts the directed arc (u, w) into both adjacency views.
func (b *tbuilder) addArc(u, w graph.NodeID) {
	b.fwd[u] = append(b.fwd[u], w)
	b.bwd[w] = append(b.bwd[w], u)
}

// priority is the contraction importance of v: edge difference (shortcut
// arcs the contraction would insert minus arcs it retires) plus the
// deleted-neighbour count, which delays nodes in already-thinned regions
// and keeps the hierarchy balanced. Purely structural — no metric, no
// shortest-path simulation — so a full re-evaluation is a pair scan.
func (b *tbuilder) priority(v graph.NodeID) float64 {
	added, inDeg, outDeg := 0, 0, 0
	for _, w := range b.fwd[v] {
		if !b.contracted[w] {
			outDeg++
		}
	}
	for _, u := range b.bwd[v] {
		if b.contracted[u] {
			continue
		}
		inDeg++
		for _, w := range b.fwd[v] {
			if w == u || b.contracted[w] {
				continue
			}
			if !b.hasArc(u, w) {
				added++
			}
		}
	}
	return float64(added-(inDeg+outDeg)) + float64(b.delNbrs[v])
}

// contract removes v from the live graph: every in/out pair (u, w)
// records a lower triangle through v, inserting the arc (u, w) if the
// skeleton lacks it, and v's survivors take a deleted-neighbour credit.
func (b *tbuilder) contract(v graph.NodeID) {
	for _, u := range b.bwd[v] {
		if b.contracted[u] {
			continue
		}
		for _, w := range b.fwd[v] {
			if w == u || b.contracted[w] {
				continue
			}
			b.tris = append(b.tris, triple{v: v, u: u, w: w})
			if !b.hasArc(u, w) {
				b.addArc(u, w)
			}
		}
	}
	b.contracted[v] = true
	for _, w := range b.fwd[v] {
		if !b.contracted[w] {
			b.delNbrs[w]++
		}
	}
	for _, u := range b.bwd[v] {
		if !b.contracted[u] {
			b.delNbrs[u]++
		}
	}
}

// BuildTopology contracts g structurally into a reusable topology. The
// graph is only read, and only its structure matters: two graphs with the
// same arcs but different costs produce the identical topology.
//
// Initial priorities — one independent pair count per node — are computed
// across a GOMAXPROCS-bounded worker pool; the contraction loop itself is
// sequential because each contraction reshapes the graph the next
// evaluates against, with the classic lazy-update rule re-queueing a
// popped candidate whose priority has deteriorated past the next key.
func BuildTopology(g *graph.Graph, opts Options) (*Topology, error) {
	n := g.NumNodes()
	if n == 0 {
		return nil, fmt.Errorf("ch: empty graph")
	}
	b := newTBuilder(g)

	prio := make([]float64, n)
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for v := lo; v < hi; v++ {
				prio[v] = b.priority(graph.NodeID(v))
			}
		}(lo, hi)
	}
	wg.Wait()

	queue := pqueue.NewIndexed(n)
	for v := 0; v < n; v++ {
		queue.Push(v, prio[v])
	}

	nextRank := int32(0)
	for queue.Len() > 0 {
		vi, _, _ := queue.PopMin()
		v := graph.NodeID(vi)
		np := b.priority(v)
		if _, nextP, ok := queue.Peek(); ok && np > nextP {
			queue.Push(vi, np)
			continue
		}
		b.rank[v] = nextRank
		b.order = append(b.order, v)
		nextRank++
		b.contract(v)
	}

	return b.freeze(g), nil
}

// freeze packs the contracted skeleton into the Topology's CSR halves,
// resolves every recorded triangle to arc positions, and maps the source
// graph's edges onto skeleton arcs.
func (b *tbuilder) freeze(g *graph.Graph) *Topology {
	t := &Topology{
		n:     b.n,
		m:     g.NumEdges(),
		rank:  b.rank,
		order: b.order,
	}
	// Forward half: arcs u→w with rank(w) > rank(u), at u. Backward half:
	// arcs x→y with rank(x) > rank(y), at y with head x.
	t.fwd = packSkeleton(b.n, func(u graph.NodeID, emit func(graph.NodeID)) {
		for _, w := range b.fwd[u] {
			if b.rank[w] > b.rank[u] {
				emit(w)
			}
		}
	})
	t.bwd = packSkeleton(b.n, func(y graph.NodeID, emit func(graph.NodeID)) {
		for _, x := range b.bwd[y] {
			if b.rank[x] > b.rank[y] {
				emit(x)
			}
		}
	})
	F := len(t.fwd.heads)
	numArcs := F + len(t.bwd.heads)

	// Global arc ids: fwd positions as-is, bwd positions offset by F. The
	// map exists only during freeze; queries and customization never
	// touch it.
	pos := make(map[uint64]int32, numArcs)
	for u := graph.NodeID(0); int(u) < b.n; u++ {
		for p := t.fwd.offsets[u]; p < t.fwd.offsets[u+1]; p++ {
			pos[arcKey(u, t.fwd.heads[p])] = p
		}
		for p := t.bwd.offsets[u]; p < t.bwd.offsets[u+1]; p++ {
			pos[arcKey(t.bwd.heads[p], u)] = int32(F) + p
		}
	}

	// Counting sort of the triangles by target arc id into CSR form.
	t.triOff = make([]int32, numArcs+1)
	for _, tr := range b.tris {
		t.triOff[pos[arcKey(tr.u, tr.w)]+1]++
	}
	for i := 0; i < numArcs; i++ {
		t.triOff[i+1] += t.triOff[i]
	}
	t.triMid = make([]graph.NodeID, len(b.tris))
	t.triDown = make([]int32, len(b.tris))
	t.triUp = make([]int32, len(b.tris))
	cursor := make([]int32, numArcs)
	for _, tr := range b.tris {
		id := pos[arcKey(tr.u, tr.w)]
		at := t.triOff[id] + cursor[id]
		cursor[id]++
		t.triMid[at] = tr.v
		t.triDown[at] = pos[arcKey(tr.u, tr.v)] - int32(F)
		t.triUp[at] = pos[arcKey(tr.v, tr.w)]
	}

	// Edge → arc mapping plus the base-backed arc census.
	t.edgePos = make([]int32, g.NumEdges())
	baseBacked := make([]bool, numArcs)
	base := 0
	ei := 0
	for u := graph.NodeID(0); int(u) < b.n; u++ {
		g.Neighbors(u, func(a graph.Arc) {
			if a.Head == u {
				t.edgePos[ei] = -1
				ei++
				return
			}
			id := pos[arcKey(u, a.Head)]
			t.edgePos[ei] = id
			ei++
			if !baseBacked[id] {
				baseBacked[id] = true
				base++
			}
		})
	}
	t.shortcuts = numArcs - base
	return t
}

// packSkeleton runs the standard two-pass CSR build over a per-node arc
// enumerator.
func packSkeleton(n int, arcs func(u graph.NodeID, emit func(graph.NodeID))) skeleton {
	offsets := make([]int32, n+1)
	total := int32(0)
	for u := graph.NodeID(0); int(u) < n; u++ {
		arcs(u, func(graph.NodeID) { total++ })
		offsets[u+1] = total
	}
	heads := make([]graph.NodeID, total)
	i := 0
	for u := graph.NodeID(0); int(u) < n; u++ {
		arcs(u, func(w graph.NodeID) {
			heads[i] = w
			i++
		})
	}
	return skeleton{offsets: offsets, heads: heads}
}
