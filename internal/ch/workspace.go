package ch

import (
	"math"
	"sync"

	"repro/internal/graph"
	"repro/internal/pqueue"
)

// labels is an epoch-stamped distance/parent label array, the same trick
// as internal/search's labelSet: bumping the epoch invalidates every label
// in O(1), so a pooled workspace never pays an O(n) clear between queries.
type labels struct {
	epoch uint64
	stamp []uint64
	dist  []float64
	prev  []graph.NodeID
}

// reset prepares the labels for a fresh query over n nodes.
func (l *labels) reset(n int) {
	if cap(l.stamp) < n {
		l.stamp = make([]uint64, n)
		l.dist = make([]float64, n)
		l.prev = make([]graph.NodeID, n)
		l.epoch = 0
	}
	l.stamp = l.stamp[:n]
	l.dist = l.dist[:n]
	l.prev = l.prev[:n]
	l.epoch++
}

// distAt reads u's distance label, +Inf when untouched this query.
func (l *labels) distAt(u graph.NodeID) float64 {
	if l.stamp[u] != l.epoch {
		return math.Inf(1)
	}
	return l.dist[u]
}

// set writes u's label in the current epoch.
func (l *labels) set(u graph.NodeID, d float64, p graph.NodeID) {
	l.stamp[u] = l.epoch
	l.dist[u] = d
	l.prev[u] = p
}

// workspace bundles the mutable per-query state of a CH query: forward and
// backward label arrays and heaps. Owned by exactly one query at a time and
// recycled through a sync.Pool, so steady-state queries allocate only the
// returned path slice.
type workspace struct {
	fwd, bwd labels
	hf, hb   *pqueue.Indexed
	packed   []graph.NodeID // scratch for the pre-unpack meeting path
	nodes    []graph.NodeID // scratch for shortcut unpacking
}

var workspacePool = sync.Pool{New: func() any { return &workspace{} }}

// acquireWorkspace returns a workspace ready for a query over n nodes.
func acquireWorkspace(n int) *workspace {
	ws := workspacePool.Get().(*workspace)
	//lint:ignore hotpath label storage reallocates only when the graph grows; steady state is an epoch bump
	ws.fwd.reset(n)
	//lint:ignore hotpath label storage reallocates only when the graph grows; steady state is an epoch bump
	ws.bwd.reset(n)
	if ws.hf == nil {
		//lint:ignore hotpath first acquisition builds the heaps; every later query reuses them from the pool
		ws.hf = pqueue.NewIndexed(n)
		//lint:ignore hotpath first acquisition builds the heaps; every later query reuses them from the pool
		ws.hb = pqueue.NewIndexed(n)
	} else {
		ws.hf.Grow(n)
		ws.hf.Reset()
		ws.hb.Grow(n)
		ws.hb.Reset()
	}
	return ws
}

// releaseWorkspace returns ws to the pool. Callers must not retain
// references into its arrays (results are built before release).
func releaseWorkspace(ws *workspace) { workspacePool.Put(ws) }
