package ch

import (
	"fmt"
	"math"

	"repro/internal/graph"
)

// metricHalf carries the customized weights of one skeleton half, indexed
// by the half's arc positions: costs[p] is the current weight of the arc
// at position p, mid[p] the middle node of the triangle that produced it
// (graph.Invalid when an original edge is the cheapest realisation, in
// which case unpacking terminates at a base arc).
//
// Middle nodes are metric-dependent — under one cost function a shortcut
// unpacks through one triangle, under another through a different one —
// which is why they live here and not in the Topology.
type metricHalf struct {
	costs []float64
	mid   []graph.NodeID
}

// Metric is the metric-dependent layer of a hierarchy: one customized
// weight and middle node per skeleton arc, stamped with the
// graph.CostVersion the weights were derived from. A Metric is immutable
// after Customize and safe for concurrent queries; a cost mutation is
// served by customizing a fresh Metric, never by editing one in place —
// the same frozen-slice discipline the costversion analyzer enforces
// (and atislint's immutsnapshot analyzer checks mechanically).
//
//atis:immutable
type Metric struct {
	fwd, bwd    metricHalf
	costVersion uint64
}

// Customize derives a fresh Metric for g's current costs in one bottom-up
// pass over the topology: seed every base-backed arc with its cheapest
// original edge cost, then sweep nodes in contraction order relaxing each
// arc through its lower triangles
//
//	w(u,w) ← min(w(u,w), w(u→v) + w(v→w))
//
// Both constituents of a triangle hang off the middle node v, which is
// ranked below u and w — so when the sweep reaches an arc's lower
// endpoint, every triangle constituent is already final, and one pass
// suffices. This is the whole trick: O(triangles) arithmetic instead of
// re-running ordering, witness searches and contraction.
//
// The Metric is stamped with g.CostVersion() as read when Customize
// starts; the same concurrent-mutation contract as Build applies (the
// route service serialises mutations behind its write lock).
func (t *Topology) Customize(g *graph.Graph) (*Metric, error) {
	if !t.Matches(g) {
		return nil, fmt.Errorf("ch: graph (%d nodes, %d edges) does not match topology (%d nodes, %d edges); structural rebuild required",
			g.NumNodes(), g.NumEdges(), t.n, t.m)
	}
	version := g.CostVersion()
	F := len(t.fwd.heads)
	B := len(t.bwd.heads)
	m := &Metric{
		fwd: metricHalf{costs: make([]float64, F), mid: make([]graph.NodeID, F)},
		bwd: metricHalf{costs: make([]float64, B), mid: make([]graph.NodeID, B)},
	}
	fc, bc := m.fwd.costs, m.bwd.costs
	fm, bm := m.fwd.mid, m.bwd.mid
	inf := math.Inf(1)
	for i := range fc {
		fc[i], fm[i] = inf, graph.Invalid
	}
	for i := range bc {
		bc[i], bm[i] = inf, graph.Invalid
	}

	// Seed base costs through the edge→arc map, min-collapsing parallel
	// edges exactly as any shortest-path computation would.
	ei := 0
	for u := graph.NodeID(0); int(u) < t.n; u++ {
		g.Neighbors(u, func(a graph.Arc) {
			p := t.edgePos[ei]
			ei++
			if p < 0 {
				return // self loop, not represented in the skeleton
			}
			if int(p) < F {
				if a.Cost < fc[p] {
					fc[p] = a.Cost
				}
			} else if q := p - int32(F); a.Cost < bc[q] {
				bc[q] = a.Cost
			}
		})
	}

	// Bottom-up triangle relaxation: nodes in contraction order, each
	// node's arcs (both halves) finalized before any arc that could use
	// them as a constituent.
	for r := 0; r < t.n; r++ {
		x := t.order[r]
		for p := t.fwd.offsets[x]; p < t.fwd.offsets[x+1]; p++ {
			best, mid := fc[p], fm[p]
			for ti := t.triOff[p]; ti < t.triOff[p+1]; ti++ {
				if c := bc[t.triDown[ti]] + fc[t.triUp[ti]]; c < best {
					best, mid = c, t.triMid[ti]
				}
			}
			fc[p], fm[p] = best, mid
		}
		for p := t.bwd.offsets[x]; p < t.bwd.offsets[x+1]; p++ {
			id := int32(F) + p
			best, mid := bc[p], bm[p]
			for ti := t.triOff[id]; ti < t.triOff[id+1]; ti++ {
				if c := bc[t.triDown[ti]] + fc[t.triUp[ti]]; c < best {
					best, mid = c, t.triMid[ti]
				}
			}
			bc[p], bm[p] = best, mid
		}
	}

	m.costVersion = version
	return m, nil
}

// NewIndex customizes g's current costs over the topology and assembles a
// queryable Index — the millisecond-scale replacement for a full Build
// whenever only costs changed.
func (t *Topology) NewIndex(g *graph.Graph) (*Index, error) {
	metric, err := t.Customize(g)
	if err != nil {
		return nil, err
	}
	return &Index{topo: t, metric: metric}, nil
}
