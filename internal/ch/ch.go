// Package ch implements Contraction Hierarchies (Geisberger et al. 2008),
// the preprocessing-based point-to-point engine the road-network literature
// (Wu et al.'s experimental evaluation; Chen & Gotsman's scalable
// fastest-path heuristic) identifies as the technique that makes repeated
// queries orders of magnitude cheaper than Dijkstra or A* on exactly the
// ATIS workload: many queries between arbitrary pairs, occasional cost
// updates.
//
// Preprocessing contracts nodes in importance order. Contracting node v
// removes it from the remaining graph and inserts a shortcut arc (u, w) for
// every in/out neighbour pair whose shortest u→w connection ran through v —
// unless a bounded witness search finds an equally cheap detour avoiding v,
// in which case the shortcut is provably unnecessary. Each shortcut
// remembers v as its middle node so queries can unpack it back into
// original arcs. Importance is the classic edge-difference heuristic
// (shortcuts added minus arcs removed) plus a deleted-neighbour term that
// spreads contractions evenly across the map, maintained with lazy updates:
// a popped candidate is re-evaluated and re-queued if its priority has
// deteriorated past the next candidate's.
//
// Queries run bidirectional Dijkstra over the *upward* graphs only — the
// forward search follows arcs toward more important nodes, the backward
// search does the same on the reverse graph — so both searches climb
// shallow cones of size roughly logarithmic in the map instead of flooding
// a cost disc. The best meeting node's distance sum is the exact
// shortest-path cost, and unpacking the meeting path's shortcuts yields a
// path that validates edge-by-edge against the original graph.
//
// An Index is immutable after Build and stamped with the graph's
// CostVersion at build time; see (*Index).CostVersion for the staleness
// contract the route service's version gate relies on.
package ch

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"repro/internal/graph"
	"repro/internal/pqueue"
)

// Options tunes preprocessing. The zero value is ready to use.
type Options struct {
	// WitnessSettleLimit bounds each witness search to that many settled
	// nodes. Smaller limits preprocess faster but may insert shortcuts a
	// longer search would have proven unnecessary — never incorrect, only
	// larger. 0 means the default.
	WitnessSettleLimit int
	// Workers bounds the worker pool computing initial contraction
	// priorities (the independent simulations). 0 means GOMAXPROCS.
	Workers int
}

// defaultWitnessSettleLimit is generous for road-like sparsity: local
// witness discs on degree-≤4 networks rarely need more.
const defaultWitnessSettleLimit = 64

// arc is one directed connection of the contraction-time graph: original
// edge or shortcut. mid is the skipped middle node, graph.Invalid for
// original arcs.
type arc struct {
	head graph.NodeID
	cost float64
	mid  graph.NodeID
}

// csr is one of the index's two upward adjacency halves in compressed
// sparse row form. Arcs of node u occupy heads[offsets[u]:offsets[u+1]]
// and costs[offsets[u]:offsets[u+1]].
type csr struct {
	offsets []int32
	heads   []graph.NodeID
	costs   []float64
}

// Index is a built contraction hierarchy: the node ordering, the upward
// forward/backward search graphs, and the shortcut-middle table for path
// unpacking. It is immutable after Build and safe for concurrent queries.
type Index struct {
	n    int
	rank []int32 // contraction order; higher = more important

	// fwd holds upward arcs of the original graph (tail rank < head rank);
	// bwd holds upward arcs of the reverse graph. Their costs slices are
	// frozen at build: any later in-place write would silently desynchronise
	// the hierarchy from costVersion, which is why the costversion analyzer
	// tracks them (see internal/lint).
	fwd, bwd csr

	// middle maps a shortcut arc (tail, head) to its skipped middle node.
	// Arcs absent from the map are original edges.
	middle map[uint64]graph.NodeID

	shortcuts   int
	costVersion uint64 // graph.CostVersion() the costs above were read at
}

// arcKey packs a directed (tail, head) pair into the middle-table key.
func arcKey(u, w graph.NodeID) uint64 {
	return uint64(uint32(u))<<32 | uint64(uint32(w))
}

// CostVersion returns the graph.CostVersion() the index was built under.
// An index answers for exactly that version: callers owning a mutable
// graph must compare against the live CostVersion() and rebuild (or fall
// back to a direct search) on mismatch — the same staleness contract as
// graph.ReverseView.
func (ix *Index) CostVersion() uint64 { return ix.costVersion }

// NumNodes returns the number of nodes the index covers.
func (ix *Index) NumNodes() int { return ix.n }

// Shortcuts returns the number of shortcut arcs the hierarchy added on top
// of the original edge set.
func (ix *Index) Shortcuts() int { return ix.shortcuts }

// Rank returns node u's contraction rank (0 = contracted first, least
// important). It panics on out-of-range nodes, mirroring slice indexing.
func (ix *Index) Rank(u graph.NodeID) int { return int(ix.rank[u]) }

// builder is the mutable preprocessing state.
type builder struct {
	n          int
	fwd        [][]arc // live out-arcs, shortcuts included as they appear
	bwd        [][]arc // live in-arcs (head field = the arc's tail node)
	contracted []bool
	delNbrs    []int32 // contracted-neighbour counts (the spreading term)
	rank       []int32
	middle     map[uint64]graph.NodeID
	shortcuts  int
	settleCap  int
}

// witness is the scratch state of one bounded witness search: an
// epoch-stamped distance label array (the workspace.go trick, so resets are
// O(1)) and a dedicated indexed heap.
type witness struct {
	epoch uint64
	stamp []uint64
	dist  []float64
	heap  *pqueue.Indexed
}

func newWitness(n int) *witness {
	return &witness{
		stamp: make([]uint64, n),
		dist:  make([]float64, n),
		heap:  pqueue.NewIndexed(n),
	}
}

// reset invalidates all labels and empties the heap (a truncated witness
// search leaves entries queued).
func (w *witness) reset() {
	w.epoch++
	w.heap.Reset()
}

func (w *witness) distAt(u graph.NodeID) float64 {
	if w.stamp[u] != w.epoch {
		return math.Inf(1)
	}
	return w.dist[u]
}

func (w *witness) label(u graph.NodeID, d float64) {
	w.stamp[u] = w.epoch
	w.dist[u] = d
}

// newBuilder seeds the contraction-time adjacency from g, collapsing
// parallel edges to their minimum cost (exactly what any shortest-path
// computation uses).
func newBuilder(g *graph.Graph, opts Options) *builder {
	n := g.NumNodes()
	b := &builder{
		n:          n,
		fwd:        make([][]arc, n),
		bwd:        make([][]arc, n),
		contracted: make([]bool, n),
		delNbrs:    make([]int32, n),
		rank:       make([]int32, n),
		middle:     make(map[uint64]graph.NodeID),
		settleCap:  opts.WitnessSettleLimit,
	}
	if b.settleCap <= 0 {
		b.settleCap = defaultWitnessSettleLimit
	}
	for u := graph.NodeID(0); int(u) < n; u++ {
		g.Neighbors(u, func(a graph.Arc) {
			if a.Head == u {
				return // self loops never lie on a shortest path
			}
			b.addMinArc(u, a.Head, a.Cost, graph.Invalid)
		})
	}
	return b
}

// addMinArc inserts the arc (u, w) or lowers an existing one to cost,
// keeping the (u, w) arc set deduplicated at the minimum. mid records the
// skipped middle for shortcuts; pass graph.Invalid for original edges.
func (b *builder) addMinArc(u, w graph.NodeID, cost float64, mid graph.NodeID) {
	for i := range b.fwd[u] {
		if b.fwd[u][i].head != w {
			continue
		}
		if b.fwd[u][i].cost <= cost {
			return // existing arc already at least as cheap
		}
		b.fwd[u][i].cost, b.fwd[u][i].mid = cost, mid
		for j := range b.bwd[w] {
			if b.bwd[w][j].head == u {
				b.bwd[w][j].cost, b.bwd[w][j].mid = cost, mid
				break
			}
		}
		b.recordMiddle(u, w, mid)
		return
	}
	b.fwd[u] = append(b.fwd[u], arc{head: w, cost: cost, mid: mid})
	b.bwd[w] = append(b.bwd[w], arc{head: u, cost: cost, mid: mid})
	b.recordMiddle(u, w, mid)
	if mid != graph.Invalid {
		b.shortcuts++
	}
}

// recordMiddle keeps the unpack table in sync with the cheapest (u, w) arc.
func (b *builder) recordMiddle(u, w, mid graph.NodeID) {
	if mid == graph.Invalid {
		delete(b.middle, arcKey(u, w))
	} else {
		b.middle[arcKey(u, w)] = mid
	}
}

// witnessFrom runs a bounded Dijkstra from u over the live graph with v
// excluded, stopping once the frontier passes bound or the settle cap.
// Afterwards wit.distAt(t) is an upper bound on the cheapest u→t detour
// avoiding v — "≤ shortcut cost" proves a witness exists.
func (b *builder) witnessFrom(wit *witness, u, v graph.NodeID, bound float64) {
	wit.reset()
	wit.label(u, 0)
	wit.heap.Push(int(u), 0)
	settled := 0
	for wit.heap.Len() > 0 {
		xi, dx, _ := wit.heap.PopMin()
		if dx > bound {
			return
		}
		settled++
		if settled > b.settleCap {
			return
		}
		x := graph.NodeID(xi)
		for _, a := range b.fwd[x] {
			if a.head == v || b.contracted[a.head] {
				continue
			}
			nd := dx + a.cost
			if nd < wit.distAt(a.head) {
				wit.label(a.head, nd)
				wit.heap.PushOrUpdate(int(a.head), nd)
			}
		}
	}
}

// shortcutsFor enumerates the shortcuts contracting v would require right
// now: for every live in-neighbour u one witness search decides, for every
// live out-neighbour w, whether u→v→w is the only cheapest connection.
// With emit == nil it only counts (the priority simulation); otherwise it
// calls emit for every needed shortcut.
func (b *builder) shortcutsFor(v graph.NodeID, wit *witness, emit func(u, w graph.NodeID, cost float64)) int {
	count := 0
	for _, in := range b.bwd[v] {
		u := in.head
		if b.contracted[u] {
			continue
		}
		// The witness bound is the most expensive u→v→w candidate.
		bound := math.Inf(-1)
		for _, out := range b.fwd[v] {
			w := out.head
			if w == u || b.contracted[w] {
				continue
			}
			if c := in.cost + out.cost; c > bound {
				bound = c
			}
		}
		if math.IsInf(bound, -1) {
			continue // no live pair through v from u
		}
		b.witnessFrom(wit, u, v, bound)
		for _, out := range b.fwd[v] {
			w := out.head
			if w == u || b.contracted[w] {
				continue
			}
			sc := in.cost + out.cost
			if wit.distAt(w) <= sc {
				continue // detour avoiding v is at least as cheap
			}
			count++
			if emit != nil {
				emit(u, w, sc)
			}
		}
	}
	return count
}

// priority is the contraction importance of v: edge difference (shortcuts
// the contraction inserts minus arcs it retires) plus the
// deleted-neighbour count, which delays nodes in already-thinned regions
// and keeps the hierarchy balanced.
func (b *builder) priority(v graph.NodeID, wit *witness) float64 {
	needed := b.shortcutsFor(v, wit, nil)
	deg := 0
	for _, a := range b.fwd[v] {
		if !b.contracted[a.head] {
			deg++
		}
	}
	for _, a := range b.bwd[v] {
		if !b.contracted[a.head] {
			deg++
		}
	}
	return float64(needed-deg) + float64(b.delNbrs[v])
}

// contract removes v from the remaining graph, inserting its shortcuts and
// crediting the deleted-neighbour term of its survivors.
func (b *builder) contract(v graph.NodeID, wit *witness) {
	b.shortcutsFor(v, wit, func(u, w graph.NodeID, cost float64) {
		b.addMinArc(u, w, cost, v)
	})
	b.contracted[v] = true
	for _, a := range b.fwd[v] {
		if !b.contracted[a.head] {
			b.delNbrs[a.head]++
		}
	}
	for _, a := range b.bwd[v] {
		if !b.contracted[a.head] {
			b.delNbrs[a.head]++
		}
	}
}

// Build preprocesses g into a queryable hierarchy. The graph is only read.
// Initial priorities — one independent contraction simulation per node —
// are computed across a GOMAXPROCS-bounded worker pool exactly like ALT's
// landmark sweeps; the contraction loop itself is sequential because each
// contraction reshapes the graph the next simulates against.
//
// The index is stamped with g.CostVersion() as read when Build starts. If
// costs mutate concurrently with Build the result may mix versions; callers
// who mutate must either serialise mutations against Build (the route
// service clones a stable snapshot instead) or discard the result.
func Build(g *graph.Graph, opts Options) (*Index, error) {
	n := g.NumNodes()
	if n == 0 {
		return nil, fmt.Errorf("ch: empty graph")
	}
	version := g.CostVersion()
	b := newBuilder(g, opts)

	// Parallel initial simulation: each worker owns a witness scratch and
	// writes disjoint priority slots; the builder is read-only here.
	prio := make([]float64, n)
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			wit := newWitness(n)
			for v := lo; v < hi; v++ {
				prio[v] = b.priority(graph.NodeID(v), wit)
			}
		}(lo, hi)
	}
	wg.Wait()

	queue := pqueue.NewIndexed(n)
	for v := 0; v < n; v++ {
		queue.Push(v, prio[v])
	}

	// Lazy-update contraction: re-evaluate the popped candidate against the
	// next key; contract only when it is still (weakly) the minimum.
	wit := newWitness(n)
	nextRank := int32(0)
	for queue.Len() > 0 {
		vi, _, _ := queue.PopMin()
		v := graph.NodeID(vi)
		np := b.priority(v, wit)
		if _, nextP, ok := queue.Peek(); ok && np > nextP {
			queue.Push(vi, np)
			continue
		}
		b.rank[v] = nextRank
		nextRank++
		b.contract(v, wit)
	}

	return b.finish(version), nil
}

// finish freezes the contracted graph into the two upward CSRs. Every arc
// lands in exactly one half: forward if its head outranks its tail,
// backward (as a reverse arc) otherwise.
func (b *builder) finish(version uint64) *Index {
	ix := &Index{
		n:           b.n,
		rank:        b.rank,
		middle:      b.middle,
		shortcuts:   b.shortcuts,
		costVersion: version,
	}
	ix.fwd = buildCSR(b.n, b.fwd, b.rank)
	ix.bwd = buildCSR(b.n, b.bwd, b.rank)
	return ix
}

// buildCSR packs the upward subset of adj (arcs whose head outranks their
// tail) into CSR form.
func buildCSR(n int, adj [][]arc, rank []int32) csr {
	offsets := make([]int32, n+1)
	total := 0
	for u := 0; u < n; u++ {
		for _, a := range adj[u] {
			if rank[a.head] > rank[u] {
				total++
			}
		}
		offsets[u+1] = int32(total)
	}
	heads := make([]graph.NodeID, total)
	costs := make([]float64, total)
	i := 0
	for u := 0; u < n; u++ {
		for _, a := range adj[u] {
			if rank[a.head] > rank[u] {
				heads[i] = a.head
				costs[i] = a.cost
				i++
			}
		}
	}
	return csr{offsets: offsets, heads: heads, costs: costs}
}
