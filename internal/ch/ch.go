// Package ch implements a customizable contraction hierarchy — the
// preprocessing-based point-to-point engine the road-network literature
// (Wu et al.'s experimental evaluation; Chen & Gotsman's scalable
// fastest-path heuristic) identifies as the technique that makes repeated
// queries orders of magnitude cheaper than Dijkstra or A* on exactly the
// ATIS workload: many queries between arbitrary pairs, frequent cost
// updates.
//
// The hierarchy is split into two layers with very different lifetimes,
// following the metric-independence idea of customizable route planning
// (CRP) and customizable contraction hierarchies:
//
//   - The Topology (topology.go) contracts nodes in importance order and
//     keeps a shortcut arc for every in/out pair, plus the lower-triangle
//     lists describing how each arc can be composed from cheaper ones. It
//     depends only on the graph's structure and is built once.
//   - The Metric (customize.go) assigns each skeleton arc a weight and an
//     unpack middle under one concrete cost function, derived by a single
//     bottom-up triangle-relaxation sweep. A traffic update re-customizes
//     a fresh Metric in milliseconds; the Topology is untouched.
//
// Classic CH prunes shortcuts with witness searches; those proofs are
// only valid under the metric they were searched in, so a skeleton meant
// to survive cost updates cannot use them. The structural skeleton is
// larger, but queries prune just as hard via ranks and stall-on-demand,
// and the payoff is that no cost mutation — however large — ever forces
// a re-contraction.
//
// Queries (query.go) run bidirectional Dijkstra over the *upward* halves
// only: the forward search follows arcs toward more important nodes, the
// backward search does the same on the reverse graph, both climbing
// shallow cones instead of flooding a cost disc. The best meeting node's
// distance sum is the exact shortest-path cost, and unpacking the meeting
// path's arcs through their customized middles yields a path that
// validates edge-by-edge against the original graph.
//
// An Index pairs one Topology with one Metric. It is immutable, safe for
// concurrent queries, and stamped with the graph's CostVersion at
// customization time; see (*Index).CostVersion for the staleness contract
// the route service's version gate relies on.
package ch

import (
	"repro/internal/graph"
)

// Options tunes preprocessing. The zero value is ready to use.
type Options struct {
	// Workers bounds the worker pool computing initial contraction
	// priorities (the independent per-node pair counts). 0 means
	// GOMAXPROCS.
	Workers int
}

// Index is a queryable hierarchy: a metric-independent Topology plus one
// customized Metric. It is immutable and safe for concurrent queries;
// applying new costs means customizing a new Index from the same
// Topology, not mutating this one.
type Index struct {
	topo   *Topology
	metric *Metric
}

// arcKey packs a directed (tail, head) pair into the freeze-time
// position-resolution key.
func arcKey(u, w graph.NodeID) uint64 {
	return uint64(uint32(u))<<32 | uint64(uint32(w))
}

// CostVersion returns the graph.CostVersion() the index's metric was
// customized under. An index answers for exactly that version: callers
// owning a mutable graph must compare against the live CostVersion() and
// re-customize (or fall back to a direct search) on mismatch — the same
// staleness contract as graph.ReverseView.
func (ix *Index) CostVersion() uint64 { return ix.metric.costVersion }

// NumNodes returns the number of nodes the index covers.
func (ix *Index) NumNodes() int { return ix.topo.n }

// Shortcuts returns the number of shortcut arcs the hierarchy added on top
// of the original edge set.
func (ix *Index) Shortcuts() int { return ix.topo.shortcuts }

// Rank returns node u's contraction rank (0 = contracted first, least
// important). It panics on out-of-range nodes, mirroring slice indexing.
func (ix *Index) Rank(u graph.NodeID) int { return int(ix.topo.rank[u]) }

// Topology returns the index's metric-independent layer, for callers that
// cache it across cost updates and re-customize instead of rebuilding.
func (ix *Index) Topology() *Topology { return ix.topo }

// Build preprocesses g into a queryable hierarchy: structural contraction
// (BuildTopology) followed by one customization pass for g's current
// costs. The graph is only read. Callers that keep the graph's structure
// and mutate only costs should retain ix.Topology() and re-customize with
// Topology.NewIndex instead of calling Build again — same result, a
// thousandth of the work.
func Build(g *graph.Graph, opts Options) (*Index, error) {
	topo, err := BuildTopology(g, opts)
	if err != nil {
		return nil, err
	}
	return topo.NewIndex(g)
}
