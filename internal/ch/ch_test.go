package ch

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/graph"
	"repro/internal/gridgen"
	"repro/internal/pqueue"
)

const tol = 1e-9

// oracleDijkstra is a plain textbook Dijkstra used as the ground truth for
// the tests here. internal/search cannot be imported (its differential
// test imports this package), so the oracle is self-contained.
func oracleDijkstra(g *graph.Graph, s, d graph.NodeID) (float64, bool) {
	n := g.NumNodes()
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[s] = 0
	h := pqueue.NewIndexed(n)
	h.Push(int(s), 0)
	for h.Len() > 0 {
		ui, du, _ := h.PopMin()
		u := graph.NodeID(ui)
		if u == d {
			return du, true
		}
		g.Neighbors(u, func(a graph.Arc) {
			if nd := du + a.Cost; nd < dist[a.Head] {
				dist[a.Head] = nd
				h.PushOrUpdate(int(a.Head), nd)
			}
		})
	}
	return 0, false
}

// checkUnpacked validates a query result against g: endpoints, original-arc
// existence, and cost consistency between the path sum and reported cost.
func checkUnpacked(t *testing.T, g *graph.Graph, s, d graph.NodeID, res Result) {
	t.Helper()
	nodes := res.Path.Nodes
	if len(nodes) == 0 || nodes[0] != s || nodes[len(nodes)-1] != d {
		t.Fatalf("path endpoints %v do not span %d→%d", nodes, s, d)
	}
	sum := 0.0
	for i := 0; i+1 < len(nodes); i++ {
		c, ok := g.ArcCost(nodes[i], nodes[i+1])
		if !ok {
			t.Fatalf("unpacked path uses nonexistent arc %d→%d", nodes[i], nodes[i+1])
		}
		sum += c
	}
	if math.Abs(sum-res.Cost) > tol*(1+math.Abs(res.Cost)) {
		t.Fatalf("unpacked path cost %v does not match reported %v", sum, res.Cost)
	}
}

// builderWithNodes returns a Builder pre-populated with n nodes laid out
// on a line (coordinates are irrelevant here; CH never consults geometry).
func builderWithNodes(n int) *graph.Builder {
	b := graph.NewBuilder(n, 2*n)
	for i := 0; i < n; i++ {
		b.AddNode(float64(i), 0)
	}
	return b
}

// lineGraph builds a directed path 0→1→…→n-1 with the given per-hop costs
// plus an expensive direct arc 0→n-1, so contracting the interior must
// chain shortcuts that unpack back to every intermediate node.
func lineGraph(t *testing.T, costs []float64, directCost float64) *graph.Graph {
	t.Helper()
	n := len(costs) + 1
	b := builderWithNodes(n)
	for i, c := range costs {
		b.AddEdge(graph.NodeID(i), graph.NodeID(i+1), c)
	}
	b.AddEdge(0, graph.NodeID(n-1), directCost)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestLineGraphShortcutsUnpack(t *testing.T) {
	costs := []float64{1, 2, 3, 4, 5}
	g := lineGraph(t, costs, 100)
	ix, err := Build(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := ix.Query(0, graph.NodeID(len(costs)))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatal("path not found on a connected line")
	}
	if want := 15.0; math.Abs(res.Cost-want) > tol {
		t.Fatalf("cost %v, want %v", res.Cost, want)
	}
	if want := len(costs) + 1; len(res.Path.Nodes) != want {
		t.Fatalf("unpacked path %v, want all %d line nodes", res.Path.Nodes, want)
	}
	checkUnpacked(t, g, 0, graph.NodeID(len(costs)), res)
}

func TestDiamondNeedsNoShortcut(t *testing.T) {
	// Diamond: 0→1→3 (cost 2) and 0→2→3 (cost 2). Structural contraction
	// has no witness searches, but the edge-difference ordering contracts
	// the source and sink (no in/out pairs) before the interior nodes, by
	// which time both neighbours of 1 and 2 are already below them — so no
	// pair survives and the skeleton stays at the original four arcs.
	b := builderWithNodes(4)
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 3, 1)
	b.AddEdge(0, 2, 1)
	b.AddEdge(2, 3, 1)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	ix, err := Build(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ix.Shortcuts() != 0 {
		t.Fatalf("diamond needed %d shortcuts, want 0 (degree-ordered contraction needs none)", ix.Shortcuts())
	}
	res, err := ix.Query(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found || math.Abs(res.Cost-2) > tol {
		t.Fatalf("0→3: found=%v cost=%v, want found at cost 2", res.Found, res.Cost)
	}
	checkUnpacked(t, g, 0, 3, res)
}

func TestAgreesWithDijkstraOnRandomGrids(t *testing.T) {
	cases := []struct {
		k     int
		model gridgen.CostModel
		seed  int64
	}{
		{5, gridgen.Uniform, 11},
		{9, gridgen.Variance, 12},
		{13, gridgen.Variance, 13},
	}
	pairs := 40
	if testing.Short() {
		pairs = 10
	}
	for _, tc := range cases {
		g, err := gridgen.Generate(gridgen.Config{K: tc.k, Model: tc.model, Seed: tc.seed})
		if err != nil {
			t.Fatal(err)
		}
		ix, err := Build(g, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if ix.CostVersion() != g.CostVersion() {
			t.Fatalf("fresh index version %d != graph version %d", ix.CostVersion(), g.CostVersion())
		}
		rng := rand.New(rand.NewSource(tc.seed))
		n := g.NumNodes()
		for i := 0; i < pairs; i++ {
			s := graph.NodeID(rng.Intn(n))
			d := graph.NodeID(rng.Intn(n))
			res, err := ix.Query(s, d)
			if err != nil {
				t.Fatal(err)
			}
			want, found := oracleDijkstra(g, s, d)
			if res.Found != found {
				t.Fatalf("k=%d %d→%d: ch found=%v, dijkstra found=%v", tc.k, s, d, res.Found, found)
			}
			if !found {
				continue
			}
			if math.Abs(res.Cost-want) > tol*(1+math.Abs(want)) {
				t.Fatalf("k=%d %d→%d: ch cost %v, dijkstra %v", tc.k, s, d, res.Cost, want)
			}
			checkUnpacked(t, g, s, d, res)
		}
	}
}

func TestSameSourceAndDestination(t *testing.T) {
	g, err := gridgen.Generate(gridgen.Config{K: 4, Model: gridgen.Uniform, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := Build(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := ix.Query(5, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found || res.Cost != 0 || len(res.Path.Nodes) != 1 || res.Path.Nodes[0] != 5 {
		t.Fatalf("5→5: got found=%v cost=%v path=%v", res.Found, res.Cost, res.Path.Nodes)
	}
}

func TestUnreachableAndOutOfRange(t *testing.T) {
	// Two disconnected arcs: 0→1 and 2→3.
	b := builderWithNodes(4)
	b.AddEdge(0, 1, 1)
	b.AddEdge(2, 3, 1)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	ix, err := Build(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := ix.Query(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Found {
		t.Fatalf("0→3 across components reported found, cost %v", res.Cost)
	}
	if _, err := ix.Query(0, 99); err == nil {
		t.Fatal("out-of-range destination did not error")
	}
	if _, err := ix.Query(-1, 0); err == nil {
		t.Fatal("negative source did not error")
	}
}

func TestCostVersionStampDetectsMutation(t *testing.T) {
	g, err := gridgen.Generate(gridgen.Config{K: 5, Model: gridgen.Variance, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := Build(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	e := g.Edges()[0]
	if _, err := g.SetArcCost(e.Tail, e.Head, e.Cost*2); err != nil {
		t.Fatal(err)
	}
	if ix.CostVersion() == g.CostVersion() {
		t.Fatal("SetArcCost did not change the version the index is stamped with")
	}
	// A rebuild restores agreement at the new version.
	ix2, err := Build(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ix2.CostVersion() != g.CostVersion() {
		t.Fatalf("rebuilt index version %d != graph version %d", ix2.CostVersion(), g.CostVersion())
	}
	res, err := ix2.Query(0, graph.NodeID(g.NumNodes()-1))
	if err != nil {
		t.Fatal(err)
	}
	want, _ := oracleDijkstra(g, 0, graph.NodeID(g.NumNodes()-1))
	if math.Abs(res.Cost-want) > tol*(1+math.Abs(want)) {
		t.Fatalf("rebuilt ch cost %v, dijkstra %v", res.Cost, want)
	}
}

func TestConcurrentQueries(t *testing.T) {
	g, err := gridgen.Generate(gridgen.Config{K: 9, Model: gridgen.Variance, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := Build(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	n := g.NumNodes()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 50; i++ {
				s := graph.NodeID(rng.Intn(n))
				d := graph.NodeID(rng.Intn(n))
				res, err := ix.Query(s, d)
				if err != nil {
					t.Errorf("query(%d,%d): %v", s, d, err)
					return
				}
				if !res.Found {
					t.Errorf("%d→%d unreachable on a connected grid", s, d)
					return
				}
			}
		}(int64(w + 1))
	}
	wg.Wait()
}

func TestSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("the race detector defeats sync.Pool caching, so allocs/op is not meaningful under -race")
	}
	g, err := gridgen.Generate(gridgen.Config{K: 12, Model: gridgen.Variance, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := Build(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, d := graph.NodeID(0), graph.NodeID(g.NumNodes()-1)
	// Warm the workspace pool and the packed-path scratch.
	for i := 0; i < 4; i++ {
		if _, err := ix.Query(s, d); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		res, err := ix.Query(s, d)
		if err != nil || !res.Found {
			t.Fatalf("query failed: found=%v err=%v", res.Found, err)
		}
	})
	// One allocation for the returned path slice; everything else is pooled.
	if allocs > 2 {
		t.Fatalf("steady-state query allocates %v times per op, want ≤ 2", allocs)
	}
}

func TestQuerySettlesFarFewerNodesThanDijkstra(t *testing.T) {
	g, err := gridgen.Generate(gridgen.Config{K: 13, Model: gridgen.Variance, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := Build(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Corner to corner: Dijkstra settles nearly the whole grid; CH climbs
	// two shallow cones.
	s, d := graph.NodeID(0), graph.NodeID(g.NumNodes()-1)
	res, err := ix.Query(s, d)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatal("corner pair unreachable")
	}
	if res.Settled >= g.NumNodes()/2 {
		t.Fatalf("ch settled %d of %d nodes; hierarchy is not pruning", res.Settled, g.NumNodes())
	}
}
