package telemetry

import (
	"bufio"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
)

// WriteText renders every registered metric in Prometheus text exposition
// format (version 0.0.4): one HELP/TYPE header per family, then the series
// in sorted label order. Output is deterministic for a given registry state,
// which the golden tests rely on.
func (r *Registry) WriteText(w io.Writer) error {
	// lookup() appends to f.order and writes f.series under the write lock
	// whenever a first-time series is created, so both must be copied into a
	// local snapshot before the read lock is released — rendering from the
	// live maps would be a concurrent map read/write against any scrape that
	// races a new label combination.
	type famSnapshot struct {
		name, help string
		kind       metricKind
		series     []*series
	}
	r.mu.RLock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	fams := make([]famSnapshot, 0, len(names))
	for _, name := range names {
		f := r.families[name]
		// Series order must not depend on registration order across runs.
		labelSets := append([]string(nil), f.order...)
		sort.Strings(labelSets)
		ss := make([]*series, len(labelSets))
		for i, ls := range labelSets {
			ss[i] = f.series[ls]
		}
		fams = append(fams, famSnapshot{name: f.name, help: f.help, kind: f.kind, series: ss})
	}
	r.mu.RUnlock()

	bw := bufio.NewWriter(w)
	for _, f := range fams {
		if f.help != "" {
			bw.WriteString("# HELP " + f.name + " " + f.help + "\n")
		}
		bw.WriteString("# TYPE " + f.name + " " + f.kind.String() + "\n")
		for _, s := range f.series {
			ls := s.labels
			switch f.kind {
			case kindCounter:
				writeSeries(bw, f.name, ls, formatUint(s.counter.Value()))
			case kindGauge:
				writeSeries(bw, f.name, ls, strconv.FormatInt(s.gauge.Value(), 10))
			case kindGaugeFunc:
				writeSeries(bw, f.name, ls, formatFloat(s.gaugeFn()))
			case kindHistogram:
				h := s.histogram
				cumulative, total := h.snapshot()
				for i, bound := range h.bounds {
					writeSeries(bw, f.name+"_bucket", joinLabels(ls, `le="`+formatFloat(bound)+`"`), formatUint(cumulative[i]))
				}
				writeSeries(bw, f.name+"_bucket", joinLabels(ls, `le="+Inf"`), formatUint(total))
				writeSeries(bw, f.name+"_sum", ls, formatFloat(h.Sum()))
				// _count is derived from the same bucket snapshot as +Inf so
				// the two can never disagree within one exposition.
				writeSeries(bw, f.name+"_count", ls, formatUint(total))
			}
		}
	}
	return bw.Flush()
}

// Handler returns an http.Handler serving the registry — the GET
// /metrics endpoint. Prometheus 0.0.4 text by default; a scraper whose
// Accept header names application/openmetrics-text gets the OpenMetrics
// exposition with trace exemplars on histogram buckets instead.
func (r *Registry) Handler() http.Handler {
	// Errors inside mean the client went away mid-scrape; nothing to do.
	return http.HandlerFunc(r.negotiatedHandler)
}

func writeSeries(w *bufio.Writer, name, labels, value string) {
	w.WriteString(name)
	if labels != "" {
		w.WriteString("{" + labels + "}")
	}
	w.WriteString(" " + value + "\n")
}

func joinLabels(a, b string) string {
	if a == "" {
		return b
	}
	return a + "," + b
}

func formatUint(v uint64) string { return strconv.FormatUint(v, 10) }

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
