package telemetry

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Label is one name="value" pair attached to a metric series.
type Label struct {
	Name, Value string
}

// L builds a Label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// metricKind discriminates the families a Registry can hold.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindHistogram:
		return "histogram"
	default:
		return "gauge"
	}
}

// series is one labelled instance of a family.
type series struct {
	labels    string // canonical rendered label set, "" for none
	counter   *Counter
	gauge     *Gauge
	gaugeFn   func() float64
	histogram *Histogram
}

// family groups every series sharing a metric name.
type family struct {
	name    string
	help    string
	kind    metricKind
	buckets []float64
	series  map[string]*series
	order   []string // label strings in first-registration order; sorted at export
}

// Registry is a set of named metric families. All methods are safe for
// concurrent use; the getter methods are idempotent, so callers may either
// pre-register their instruments or look them up on the fly — both return
// the same underlying metric for the same (name, labels).
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Counter returns the counter named name with the given labels, creating it
// on first use. It panics if name is already registered as a different kind
// — that is a programming error on par with redeclaring a variable.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	s := r.lookup(kindCounter, name, help, nil, nil, labels)
	return s.counter
}

// Gauge returns the gauge named name with the given labels.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	s := r.lookup(kindGauge, name, help, nil, nil, labels)
	return s.gauge
}

// GaugeFunc registers a gauge whose value is computed by fn at export time —
// for quantities that already live elsewhere (cache residency, cost
// generation) and must never disagree with their source of truth.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.lookup(kindGaugeFunc, name, help, nil, fn, labels)
}

// Histogram returns the histogram named name with the given labels. buckets
// are upper bounds in increasing order; nil means DefBuckets. Buckets are
// fixed by the first registration of the family.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	s := r.lookup(kindHistogram, name, help, buckets, nil, labels)
	return s.histogram
}

// lookup finds or creates the (family, series) pair.
func (r *Registry) lookup(kind metricKind, name, help string, buckets []float64, fn func() float64, labels []Label) *series {
	ls := renderLabels(labels)
	r.mu.RLock()
	if f, ok := r.families[name]; ok {
		if s, ok := f.series[ls]; ok && f.kind == kind {
			r.mu.RUnlock()
			return s
		}
	}
	r.mu.RUnlock()

	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, buckets: buckets, series: make(map[string]*series)}
		r.families[name] = f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("telemetry: metric %q registered as %v, requested as %v", name, f.kind, kind))
	}
	s, ok := f.series[ls]
	if !ok {
		s = &series{labels: ls}
		switch kind {
		case kindCounter:
			s.counter = &Counter{}
		case kindGauge:
			s.gauge = &Gauge{}
		case kindGaugeFunc:
			s.gaugeFn = fn
		case kindHistogram:
			s.histogram = newHistogram(f.buckets)
		}
		f.series[ls] = s
		f.order = append(f.order, ls)
	}
	return s
}

// renderLabels canonicalises a label set: sorted by name, values escaped.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	var b strings.Builder
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	return b.String()
}

// escapeLabelValue applies the Prometheus text-format escapes.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, c := range v {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}
