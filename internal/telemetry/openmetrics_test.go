package telemetry

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestWriteOpenMetricsGolden(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("om_requests_total", "Requests served.").Add(7)
	reg.Gauge("om_in_flight", "In-flight requests.").Set(3)
	h := reg.Histogram("om_seconds", "Latency.", []float64{0.01, 0.1})
	h.Observe(0.005)
	h.ObserveExemplar(0.05, "4bf92f3577b34da6a3ce929d0e0e4736", 1700000000)

	var b strings.Builder
	if err := reg.WriteOpenMetrics(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	want := `# HELP om_in_flight In-flight requests.
# TYPE om_in_flight gauge
om_in_flight 3
# HELP om_requests Requests served.
# TYPE om_requests counter
om_requests_total 7
# HELP om_seconds Latency.
# TYPE om_seconds histogram
om_seconds_bucket{le="0.01"} 1
om_seconds_bucket{le="0.1"} 2 # {trace_id="4bf92f3577b34da6a3ce929d0e0e4736"} 0.05 1700000000.000
om_seconds_bucket{le="+Inf"} 2
om_seconds_sum 0.055
om_seconds_count 2
# EOF
`
	if got != want {
		t.Errorf("OpenMetrics exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestExemplarLatestWins(t *testing.T) {
	h := newHistogram([]float64{1})
	h.ObserveExemplar(0.5, "first0000000000000000000000000000", 1)
	h.ObserveExemplar(0.7, "second000000000000000000000000000", 2)
	ex := h.exemplars[0].Load()
	if ex == nil || ex.TraceID != "second000000000000000000000000000" {
		t.Fatalf("bucket exemplar = %+v, want the latest observation", ex)
	}
	// Plain Observe must not disturb the pinned exemplar.
	h.Observe(0.9)
	if got := h.exemplars[0].Load(); got.TraceID != ex.TraceID {
		t.Fatalf("Observe overwrote the exemplar: %+v", got)
	}
	if h.Count() != 3 {
		t.Fatalf("count = %d, want 3", h.Count())
	}
}

func TestHandlerContentNegotiation(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("neg_total", "Negotiated.").Inc()
	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()

	// Default: Prometheus 0.0.4 text, no EOF terminator.
	res, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	body := readBody(t, res)
	if ct := res.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("default content type = %q", ct)
	}
	if strings.Contains(body, "# EOF") || !strings.Contains(body, "# TYPE neg_total counter") {
		t.Fatalf("default exposition wrong:\n%s", body)
	}

	// OpenMetrics when asked.
	req, _ := http.NewRequest(http.MethodGet, srv.URL, nil)
	req.Header.Set("Accept", "application/openmetrics-text; version=1.0.0")
	res, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body = readBody(t, res)
	if ct := res.Header.Get("Content-Type"); !strings.HasPrefix(ct, ContentTypeOpenMetrics) {
		t.Fatalf("negotiated content type = %q", ct)
	}
	if !strings.HasSuffix(body, "# EOF\n") || !strings.Contains(body, "# TYPE neg counter") ||
		!strings.Contains(body, "neg_total 1") {
		t.Fatalf("OpenMetrics exposition wrong:\n%s", body)
	}
}

func TestRuntimeMetrics(t *testing.T) {
	reg := NewRegistry()
	RegisterRuntimeMetrics(reg)
	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, name := range []string{
		"atis_go_goroutines", "atis_go_gomaxprocs",
		"atis_go_heap_inuse_bytes", "atis_go_gc_pause_seconds_total",
	} {
		if !strings.Contains(out, name+" ") {
			t.Errorf("runtime gauge %s missing from exposition", name)
		}
	}
	// Sanity: goroutines and GOMAXPROCS are at least 1, heap nonzero.
	for _, line := range strings.Split(out, "\n") {
		f := strings.Fields(line)
		if len(f) != 2 || strings.HasPrefix(line, "#") {
			continue
		}
		switch f[0] {
		case "atis_go_goroutines", "atis_go_gomaxprocs", "atis_go_heap_inuse_bytes":
			if f[1] == "0" {
				t.Errorf("%s = 0, want nonzero", f[0])
			}
		}
	}
}

func readBody(t *testing.T, res *http.Response) string {
	t.Helper()
	defer res.Body.Close()
	var b strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := res.Body.Read(buf)
		b.Write(buf[:n])
		if err != nil {
			return b.String()
		}
	}
}
