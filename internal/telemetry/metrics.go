// Package telemetry is the zero-dependency metrics core behind the serving
// stack's observability: atomic counters, gauges, and fixed-bucket latency
// histograms, collected in a Registry and exported in Prometheus text
// format (see prometheus.go).
//
// The package exists because the paper's evaluation is built on observable
// work counters — nodes expanded, iterations, tuples touched (Figures 5–8) —
// and a serving stack that cannot report the same quantities per deployment
// cannot be compared against it. Everything here is hand-rolled on
// sync/atomic so the instruments are cheap enough to live on the query path:
// a Counter.Add is one uncontended atomic add, a Histogram.Observe is one
// atomic add per bucket boundary crossed plus a CAS for the sum.
package telemetry

import (
	"math"
	"sync/atomic"
)

// Counter is a monotonically increasing metric (events since process start).
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an instantaneous integer value (in-flight requests, resident
// entries, high-water marks).
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds delta (negative deltas decrease).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// SetMax raises the gauge to v if v exceeds the current value — the
// high-water-mark operation (peak frontier size, peak in-flight).
func (g *Gauge) SetMax(v int64) {
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// DefBuckets are the default latency buckets in seconds, spanning the
// microsecond-scale search kernels through second-scale HTTP tails.
var DefBuckets = []float64{
	5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1, 2.5,
}

// Histogram is a fixed-bucket distribution. Buckets are cumulative at
// export time (Prometheus `le` semantics) but stored per-interval so
// Observe touches exactly one bucket counter.
type Histogram struct {
	bounds    []float64       // upper bounds, strictly increasing
	counts    []atomic.Uint64 // len(bounds)+1; last is the +Inf overflow
	count     atomic.Uint64
	sum       atomic.Uint64              // float64 bits, CAS-updated
	exemplars []atomic.Pointer[Exemplar] // len(bounds)+1, latest per bucket
}

// Exemplar links one observation in a bucket to the trace that produced
// it — the OpenMetrics bridge from "this bucket is filling up" to "here
// is a captured trace of one such request" (/v1/debug/traces/{id}).
type Exemplar struct {
	TraceID string
	Value   float64
	Unix    float64 // observation time, unix seconds
}

func newHistogram(buckets []float64) *Histogram {
	if len(buckets) == 0 {
		buckets = DefBuckets
	}
	bounds := append([]float64(nil), buckets...)
	return &Histogram{
		bounds:    bounds,
		counts:    make([]atomic.Uint64, len(bounds)+1),
		exemplars: make([]atomic.Pointer[Exemplar], len(bounds)+1),
	}
}

// bucketIndex returns the index of the interval bucket v falls in;
// len(bounds) is the +Inf overflow.
func (h *Histogram) bucketIndex(v float64) int {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	return i
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.counts[h.bucketIndex(v)].Add(1)
	h.count.Add(1)
	h.addSum(v)
}

// ObserveExemplar records one value and pins it as the bucket's
// exemplar. Callers pass only trace IDs that were actually captured
// (sampled or slow), so every exemplar on /metrics resolves via the
// debug endpoint. unix is the observation time in unix seconds.
func (h *Histogram) ObserveExemplar(v float64, traceID string, unix float64) {
	i := h.bucketIndex(v)
	h.counts[i].Add(1)
	h.count.Add(1)
	h.addSum(v)
	h.exemplars[i].Store(&Exemplar{TraceID: traceID, Value: v, Unix: unix})
}

func (h *Histogram) addSum(v float64) {
	for {
		old := h.sum.Load()
		nv := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// snapshot returns cumulative bucket counts aligned with bounds, plus the
// total (the +Inf bucket).
func (h *Histogram) snapshot() (cumulative []uint64, total uint64) {
	cumulative = make([]uint64, len(h.bounds))
	var run uint64
	for i := range h.bounds {
		run += h.counts[i].Load()
		cumulative[i] = run
	}
	total = run + h.counts[len(h.bounds)].Load()
	return cumulative, total
}
