package telemetry

import (
	"runtime"
	"sync"
	"time"
)

// RegisterRuntimeMetrics adds Go runtime health gauges to the registry,
// collected lazily at scrape time via GaugeFunc — the process pays
// nothing between scrapes. The four cover the questions an operator
// asks first when a replica misbehaves: is it leaking goroutines, is
// the heap growing, is GC eating the latency budget, and how much CPU
// was it actually given.
func RegisterRuntimeMetrics(r *Registry) {
	ms := &memSampler{}
	r.GaugeFunc("atis_go_goroutines",
		"Number of live goroutines.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	r.GaugeFunc("atis_go_gomaxprocs",
		"Value of GOMAXPROCS (schedulable OS threads).",
		func() float64 { return float64(runtime.GOMAXPROCS(0)) })
	r.GaugeFunc("atis_go_heap_inuse_bytes",
		"Bytes in in-use heap spans.",
		func() float64 { return float64(ms.sample().HeapInuse) })
	r.GaugeFunc("atis_go_gc_pause_seconds_total",
		"Cumulative stop-the-world GC pause time since process start.",
		func() float64 { return float64(ms.sample().PauseTotalNs) / 1e9 })
}

// memSampler caches one runtime.ReadMemStats result briefly so a single
// scrape rendering several memory gauges performs one stats read, not
// one per gauge. ReadMemStats stops the world; once per scrape is
// acceptable, several times is waste.
type memSampler struct {
	mu    sync.Mutex
	at    time.Time
	stats runtime.MemStats
}

const memSampleTTL = 100 * time.Millisecond

// sample returns a copy (never a pointer into the cache — a later
// refresh would race callers still reading it).
func (m *memSampler) sample() runtime.MemStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	if now := time.Now(); now.Sub(m.at) > memSampleTTL {
		runtime.ReadMemStats(&m.stats)
		m.at = now
	}
	return m.stats
}
