package telemetry

import (
	"bufio"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// ContentTypeOpenMetrics is the media type a scraper sends in Accept to
// opt into the OpenMetrics exposition (and receives back).
const ContentTypeOpenMetrics = "application/openmetrics-text"

// WriteOpenMetrics renders every registered metric in OpenMetrics text
// format (version 1.0.0). It differs from the Prometheus 0.0.4 writer in
// exactly the ways a scraper cares about: counter families drop their
// `_total` suffix in the TYPE/HELP header while samples keep it,
// histogram bucket lines carry exemplars linking to captured traces,
// and the exposition terminates with `# EOF`.
func (r *Registry) WriteOpenMetrics(w io.Writer) error {
	// Same snapshot discipline as WriteText: copy family order and series
	// pointers under the read lock before rendering (see the race note
	// there).
	type famSnapshot struct {
		name, help string
		kind       metricKind
		series     []*series
	}
	r.mu.RLock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	fams := make([]famSnapshot, 0, len(names))
	for _, name := range names {
		f := r.families[name]
		labelSets := append([]string(nil), f.order...)
		sort.Strings(labelSets)
		ss := make([]*series, len(labelSets))
		for i, ls := range labelSets {
			ss[i] = f.series[ls]
		}
		fams = append(fams, famSnapshot{name: f.name, help: f.help, kind: f.kind, series: ss})
	}
	r.mu.RUnlock()

	bw := bufio.NewWriter(w)
	for _, f := range fams {
		// OpenMetrics names the counter family without the _total sample
		// suffix: `# TYPE x counter` then `x_total 5`.
		famName := f.name
		if f.kind == kindCounter {
			famName = strings.TrimSuffix(famName, "_total")
		}
		if f.help != "" {
			bw.WriteString("# HELP " + famName + " " + f.help + "\n")
		}
		bw.WriteString("# TYPE " + famName + " " + f.kind.String() + "\n")
		for _, s := range f.series {
			ls := s.labels
			switch f.kind {
			case kindCounter:
				writeSeries(bw, famName+"_total", ls, formatUint(s.counter.Value()))
			case kindGauge:
				writeSeries(bw, f.name, ls, strconv.FormatInt(s.gauge.Value(), 10))
			case kindGaugeFunc:
				writeSeries(bw, f.name, ls, formatFloat(s.gaugeFn()))
			case kindHistogram:
				h := s.histogram
				cumulative, total := h.snapshot()
				for i, bound := range h.bounds {
					writeBucket(bw, f.name, joinLabels(ls, `le="`+formatFloat(bound)+`"`),
						formatUint(cumulative[i]), h.exemplars[i].Load())
				}
				writeBucket(bw, f.name, joinLabels(ls, `le="+Inf"`),
					formatUint(total), h.exemplars[len(h.bounds)].Load())
				writeSeries(bw, f.name+"_sum", ls, formatFloat(h.Sum()))
				writeSeries(bw, f.name+"_count", ls, formatUint(total))
			}
		}
	}
	bw.WriteString("# EOF\n")
	return bw.Flush()
}

// writeBucket renders one histogram bucket line, appending the
// OpenMetrics exemplar clause when the bucket has one:
//
//	name_bucket{le="0.005"} 4 # {trace_id="abc..."} 0.0032 1712000000.0
func writeBucket(w *bufio.Writer, name, labels, value string, ex *Exemplar) {
	w.WriteString(name + "_bucket")
	if labels != "" {
		w.WriteString("{" + labels + "}")
	}
	w.WriteString(" " + value)
	if ex != nil && ex.TraceID != "" {
		w.WriteString(` # {trace_id="` + escapeLabelValue(ex.TraceID) + `"} ` +
			formatFloat(ex.Value) + " " + strconv.FormatFloat(ex.Unix, 'f', 3, 64))
	}
	w.WriteString("\n")
}

// acceptsOpenMetrics reports whether an Accept header opts into the
// OpenMetrics exposition. A full q-value parse is not warranted for a
// two-format endpoint: any mention of the media type counts.
func acceptsOpenMetrics(accept string) bool {
	return strings.Contains(accept, ContentTypeOpenMetrics)
}

// negotiatedHandler serves Prometheus 0.0.4 text by default and
// OpenMetrics (with exemplars) when the scraper asks for it.
func (r *Registry) negotiatedHandler(w http.ResponseWriter, req *http.Request) {
	if acceptsOpenMetrics(req.Header.Get("Accept")) {
		w.Header().Set("Content-Type", ContentTypeOpenMetrics+"; version=1.0.0; charset=utf-8")
		_ = r.WriteOpenMetrics(w)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = r.WriteText(w)
}
