package telemetry

import (
	"io"
	"strconv"
	"strings"
	"sync"
	"testing"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("Value() = %d, want 42", got)
	}
}

func TestGaugeSetMax(t *testing.T) {
	var g Gauge
	g.Set(10)
	g.SetMax(5)
	if got := g.Value(); got != 10 {
		t.Fatalf("SetMax lowered the gauge: %d", got)
	}
	g.SetMax(25)
	if got := g.Value(); got != 25 {
		t.Fatalf("SetMax(25) → %d", got)
	}
	g.Dec()
	if got := g.Value(); got != 24 {
		t.Fatalf("Dec → %d", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	cum, total := h.snapshot()
	// ≤1: 0.5 and 1; ≤2: +1.5; ≤4: +3; +Inf: +100.
	want := []uint64{2, 3, 4}
	for i := range want {
		if cum[i] != want[i] {
			t.Errorf("bucket %d = %d, want %d", i, cum[i], want[i])
		}
	}
	if total != 5 {
		t.Errorf("total = %d, want 5", total)
	}
	if h.Count() != 5 {
		t.Errorf("Count() = %d, want 5", h.Count())
	}
	if got, want := h.Sum(), 0.5+1+1.5+3+100; got != want {
		t.Errorf("Sum() = %v, want %v", got, want)
	}
}

func TestRegistryIdempotentLookup(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("x_total", "help", L("k", "v"))
	b := reg.Counter("x_total", "help", L("k", "v"))
	if a != b {
		t.Fatal("same (name, labels) returned distinct counters")
	}
	c := reg.Counter("x_total", "help", L("k", "w"))
	if a == c {
		t.Fatal("distinct labels returned the same counter")
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("x_total", "help")
	defer func() {
		if recover() == nil {
			t.Fatal("registering x_total as a gauge should panic")
		}
	}()
	reg.Gauge("x_total", "help")
}

// TestWriteTextGolden pins the exact Prometheus text rendering: family
// ordering, HELP/TYPE headers, label escaping, and histogram expansion.
func TestWriteTextGolden(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("atis_requests_total", "Requests served.", L("path", "/route"), L("code", "200")).Add(3)
	reg.Counter("atis_requests_total", "Requests served.", L("path", "/route"), L("code", "400")).Inc()
	reg.Gauge("atis_in_flight", "In-flight requests.").Set(2)
	reg.GaugeFunc("atis_generation", "Cost generation.", func() float64 { return 7 })
	h := reg.Histogram("atis_seconds", "Latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(30)
	reg.Counter("atis_weird_total", "Escapes.", L("q", "a\"b\\c\nd")).Inc()

	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP atis_generation Cost generation.
# TYPE atis_generation gauge
atis_generation 7
# HELP atis_in_flight In-flight requests.
# TYPE atis_in_flight gauge
atis_in_flight 2
# HELP atis_requests_total Requests served.
# TYPE atis_requests_total counter
atis_requests_total{code="200",path="/route"} 3
atis_requests_total{code="400",path="/route"} 1
# HELP atis_seconds Latency.
# TYPE atis_seconds histogram
atis_seconds_bucket{le="0.1"} 1
atis_seconds_bucket{le="1"} 2
atis_seconds_bucket{le="+Inf"} 3
atis_seconds_sum 30.55
atis_seconds_count 3
# HELP atis_weird_total Escapes.
# TYPE atis_weird_total counter
atis_weird_total{q="a\"b\\c\nd"} 1
`
	if got := b.String(); got != want {
		t.Errorf("WriteText mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestConcurrentSeriesCreationDuringScrape races first-time series creation
// (which appends to family.order and writes family.series under the write
// lock) against WriteText scrapes. Before the exporter snapshotted those
// structures under the read lock, this was a fatal concurrent map
// read/write; under -race it is the regression gate for that bug.
func TestConcurrentSeriesCreationDuringScrape(t *testing.T) {
	reg := NewRegistry()
	const goroutines, iters = 8, 100
	var writers sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		i := i
		writers.Add(1)
		go func() {
			defer writers.Done()
			for j := 0; j < iters; j++ {
				// Fresh label value every iteration → every lookup creates
				// a new series while scrapes are mid-flight.
				code := strconv.Itoa(i*iters + j)
				reg.Counter("fresh_total", "h", L("code", code)).Inc()
				reg.Histogram("fresh_seconds", "h", nil, L("code", code)).Observe(1e-6)
			}
		}()
	}
	done := make(chan struct{})
	var scrapers sync.WaitGroup
	for i := 0; i < 4; i++ {
		scrapers.Add(1)
		go func() {
			defer scrapers.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				if err := reg.WriteText(io.Discard); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	writers.Wait()
	close(done)
	scrapers.Wait()
	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(b.String(), "fresh_total{"); got != goroutines*iters {
		t.Fatalf("fresh_total series = %d, want %d", got, goroutines*iters)
	}
}

// TestConcurrentInstruments hammers one registry from many goroutines; run
// under -race this is the data-race gate for the metrics core.
func TestConcurrentInstruments(t *testing.T) {
	reg := NewRegistry()
	const goroutines, iters = 8, 1000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < iters; j++ {
				reg.Counter("c_total", "h").Inc()
				reg.Gauge("g", "h").SetMax(int64(j))
				reg.Histogram("h_seconds", "h", nil).Observe(float64(j) * 1e-6)
			}
		}()
	}
	// Concurrent scrapes while writers run.
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var b strings.Builder
			if err := reg.WriteText(&b); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if got := reg.Counter("c_total", "h").Value(); got != goroutines*iters {
		t.Fatalf("c_total = %d, want %d", got, goroutines*iters)
	}
	if got := reg.Histogram("h_seconds", "h", nil).Count(); got != goroutines*iters {
		t.Fatalf("h_seconds count = %d, want %d", got, goroutines*iters)
	}
}
