package tuple

import (
	"math"
	"testing"
	"testing/quick"
)

func edgeSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewSchema(
		Field{"begin", Int32},
		Field{"end", Int32},
		Field{"cost", Float64},
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSchemaLayout(t *testing.T) {
	s := edgeSchema(t)
	if s.Size() != 16 {
		t.Errorf("Size = %d, want 16 (4+4+8)", s.Size())
	}
	if s.NumFields() != 3 {
		t.Errorf("NumFields = %d", s.NumFields())
	}
	if f := s.Field(2); f.Name != "cost" || f.Kind != Float64 {
		t.Errorf("Field(2) = %+v", f)
	}
	if i, err := s.Index("end"); err != nil || i != 1 {
		t.Errorf("Index(end) = %d, %v", i, err)
	}
	if _, err := s.Index("ghost"); err == nil {
		t.Error("Index of unknown field succeeded")
	}
	if s.MustIndex("begin") != 0 {
		t.Error("MustIndex(begin) != 0")
	}
	if s.String() != "(begin int32, end int32, cost float64)" {
		t.Errorf("String = %q", s.String())
	}
}

func TestSchemaValidation(t *testing.T) {
	if _, err := NewSchema(Field{"", Int32}); err == nil {
		t.Error("empty field name accepted")
	}
	if _, err := NewSchema(Field{"a", Int32}, Field{"a", Float64}); err == nil {
		t.Error("duplicate field name accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustSchema did not panic on bad schema")
		}
	}()
	MustSchema(Field{"", Int32})
}

func TestBlockingFactor(t *testing.T) {
	s := edgeSchema(t) // 16 bytes
	if bf := s.BlockingFactor(4096); bf != 256 {
		t.Errorf("BlockingFactor(4096) = %d, want 256", bf)
	}
	empty := MustSchema()
	if bf := empty.BlockingFactor(4096); bf != 0 {
		t.Errorf("empty schema blocking factor = %d", bf)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	s := edgeSchema(t)
	buf := make([]byte, s.Size())
	in := []Value{I32(7), I32(-9), F64(3.25)}
	if err := s.Encode(buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := s.Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range in {
		if !in[i].Equal(out[i]) {
			t.Errorf("field %d: %v != %v", i, in[i], out[i])
		}
	}
}

func TestEncodeErrors(t *testing.T) {
	s := edgeSchema(t)
	buf := make([]byte, s.Size())
	if err := s.Encode(buf, []Value{I32(1)}); err == nil {
		t.Error("arity mismatch accepted")
	}
	if err := s.Encode(buf, []Value{F64(1), I32(2), F64(3)}); err == nil {
		t.Error("kind mismatch accepted")
	}
	if err := s.Encode(make([]byte, 3), []Value{I32(1), I32(2), F64(3)}); err == nil {
		t.Error("short buffer accepted")
	}
}

func TestDecodeErrors(t *testing.T) {
	s := edgeSchema(t)
	if _, err := s.Decode(make([]byte, 3)); err == nil {
		t.Error("short buffer accepted")
	}
	vals := make([]Value, 1)
	if err := s.DecodeInto(make([]byte, s.Size()), vals); err == nil {
		t.Error("arity mismatch accepted")
	}
}

func TestDecodeField(t *testing.T) {
	s := edgeSchema(t)
	buf := make([]byte, s.Size())
	if err := s.Encode(buf, []Value{I32(5), I32(6), F64(-0.5)}); err != nil {
		t.Fatal(err)
	}
	v, err := s.DecodeField(buf, 2)
	if err != nil || v.Float() != -0.5 {
		t.Errorf("DecodeField(2) = %v, %v", v, err)
	}
	v, err = s.DecodeField(buf, 0)
	if err != nil || v.Int() != 5 {
		t.Errorf("DecodeField(0) = %v, %v", v, err)
	}
	if _, err := s.DecodeField(buf, 9); err == nil {
		t.Error("out-of-range field accepted")
	}
	if _, err := s.DecodeField(make([]byte, 2), 0); err == nil {
		t.Error("short buffer accepted")
	}
}

func TestValueAccessorsAndPanics(t *testing.T) {
	if I32(3).Int() != 3 {
		t.Error("Int round trip")
	}
	if F64(2.5).Float() != 2.5 {
		t.Error("Float round trip")
	}
	assertPanics := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	assertPanics("Int on float", func() { F64(1).Int() })
	assertPanics("Float on int", func() { I32(1).Float() })
	assertPanics("Less across kinds", func() { I32(1).Less(F64(2)) })
}

func TestValueCompare(t *testing.T) {
	if !I32(1).Less(I32(2)) || I32(2).Less(I32(1)) {
		t.Error("int Less broken")
	}
	if !F64(1.5).Less(F64(2)) {
		t.Error("float Less broken")
	}
	if I32(1).Equal(F64(1)) {
		t.Error("cross-kind Equal true")
	}
	if !I32(4).Equal(I32(4)) || !F64(0.5).Equal(F64(0.5)) {
		t.Error("Equal broken")
	}
	if I32(4).String() != "4" || F64(2.5).String() != "2.5" {
		t.Error("String broken")
	}
}

func TestKindString(t *testing.T) {
	if Int32.String() != "int32" || Float64.String() != "float64" {
		t.Error("kind names wrong")
	}
	if Kind(9).String() != "Kind(9)" {
		t.Errorf("unknown kind = %q", Kind(9).String())
	}
}

// Property: encode/decode round-trips arbitrary values, including
// special floats (NaN is excluded: NaN != NaN by design).
func TestRoundTripProperty(t *testing.T) {
	s := MustSchema(Field{"a", Int32}, Field{"b", Float64}, Field{"c", Int32})
	f := func(a int32, bf float64, c int32) bool {
		if math.IsNaN(bf) {
			return true
		}
		buf := make([]byte, s.Size())
		in := []Value{I32(a), F64(bf), I32(c)}
		if err := s.Encode(buf, in); err != nil {
			return false
		}
		out, err := s.Decode(buf)
		if err != nil {
			return false
		}
		return out[0].Int() == a && out[1].Float() == bf && out[2].Int() == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
