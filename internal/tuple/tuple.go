// Package tuple defines fixed-width tuple schemas and their binary
// encoding, the record format of the relational engine. Section 4 of the
// paper stores graphs in two relations with fixed-layout tuples:
//
//	S (edge relation):  Begin-node, End-node, Edge-cost
//	R (node relation):  node-id, x, y, status, path, path-cost
//
// Fixed-width records keep the blocking factors (Bf_s, Bf_r of Table 4A)
// exact, which the cost model depends on.
package tuple

import (
	"encoding/binary"
	"fmt"
	"math"
	"strings"
)

// Kind is a field type.
type Kind uint8

const (
	// Int32 is a 4-byte signed integer (node ids, status codes, links).
	Int32 Kind = iota
	// Float64 is an 8-byte IEEE 754 double (costs, coordinates).
	Float64
)

// width returns the encoded size of the kind in bytes.
func (k Kind) width() int {
	switch k {
	case Int32:
		return 4
	case Float64:
		return 8
	default:
		panic(fmt.Sprintf("tuple: unknown kind %d", k))
	}
}

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Int32:
		return "int32"
	case Float64:
		return "float64"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Field is a named, typed column.
type Field struct {
	Name string
	Kind Kind
}

// Value is one field value: a tagged union over the supported kinds. The
// zero Value is an Int32 zero.
type Value struct {
	Kind Kind
	I    int32
	F    float64
}

// I32 wraps an int32 as a Value.
func I32(v int32) Value { return Value{Kind: Int32, I: v} }

// F64 wraps a float64 as a Value.
func F64(v float64) Value { return Value{Kind: Float64, F: v} }

// Int returns the int32 payload; it panics on kind mismatch, which marks a
// schema bug at the call site.
func (v Value) Int() int32 {
	if v.Kind != Int32 {
		panic(fmt.Sprintf("tuple: Int() on %s value", v.Kind))
	}
	return v.I
}

// Float returns the float64 payload; it panics on kind mismatch.
func (v Value) Float() float64 {
	if v.Kind != Float64 {
		panic(fmt.Sprintf("tuple: Float() on %s value", v.Kind))
	}
	return v.F
}

// Equal compares two values; values of different kinds are never equal.
// Float comparison is exact (the engine stores what it was given).
func (v Value) Equal(o Value) bool {
	if v.Kind != o.Kind {
		return false
	}
	switch v.Kind {
	case Int32:
		return v.I == o.I
	default:
		return v.F == o.F
	}
}

// Less orders two values of the same kind; it panics on kind mismatch.
func (v Value) Less(o Value) bool {
	if v.Kind != o.Kind {
		panic(fmt.Sprintf("tuple: Less between %s and %s", v.Kind, o.Kind))
	}
	switch v.Kind {
	case Int32:
		return v.I < o.I
	default:
		return v.F < o.F
	}
}

// String formats the value for debug output.
func (v Value) String() string {
	switch v.Kind {
	case Int32:
		return fmt.Sprintf("%d", v.I)
	default:
		return fmt.Sprintf("%g", v.F)
	}
}

// Schema is an ordered list of fields with a fixed binary layout: fields are
// encoded back to back in declaration order, little-endian.
type Schema struct {
	fields  []Field
	offsets []int
	size    int
	byName  map[string]int
}

// NewSchema builds a schema from fields. Field names must be unique and
// non-empty.
func NewSchema(fields ...Field) (*Schema, error) {
	s := &Schema{
		fields:  append([]Field(nil), fields...),
		offsets: make([]int, len(fields)),
		byName:  make(map[string]int, len(fields)),
	}
	for i, f := range fields {
		if f.Name == "" {
			return nil, fmt.Errorf("tuple: field %d has empty name", i)
		}
		if _, dup := s.byName[f.Name]; dup {
			return nil, fmt.Errorf("tuple: duplicate field %q", f.Name)
		}
		s.byName[f.Name] = i
		s.offsets[i] = s.size
		s.size += f.Kind.width()
	}
	return s, nil
}

// MustSchema is NewSchema that panics on error, for fixed literal schemas.
func MustSchema(fields ...Field) *Schema {
	s, err := NewSchema(fields...)
	if err != nil {
		panic(err)
	}
	return s
}

// Size returns the encoded tuple size in bytes.
func (s *Schema) Size() int { return s.size }

// NumFields returns the column count.
func (s *Schema) NumFields() int { return len(s.fields) }

// Field returns column i.
func (s *Schema) Field(i int) Field { return s.fields[i] }

// Index returns the position of the named column, or an error.
func (s *Schema) Index(name string) (int, error) {
	i, ok := s.byName[name]
	if !ok {
		return 0, fmt.Errorf("tuple: no field %q in schema %s", name, s)
	}
	return i, nil
}

// MustIndex is Index that panics, for columns known at compile time.
func (s *Schema) MustIndex(name string) int {
	i, err := s.Index(name)
	if err != nil {
		panic(err)
	}
	return i
}

// BlockingFactor returns how many tuples fit in a block of the given size —
// the Bf quantities of Table 4A.
func (s *Schema) BlockingFactor(blockSize int) int {
	if s.size == 0 {
		return 0
	}
	return blockSize / s.size
}

// Encode writes vals into buf (which must hold Size() bytes) after checking
// arity and kinds.
func (s *Schema) Encode(buf []byte, vals []Value) error {
	if len(vals) != len(s.fields) {
		return fmt.Errorf("tuple: %d values for %d fields", len(vals), len(s.fields))
	}
	if len(buf) < s.size {
		return fmt.Errorf("tuple: buffer %d bytes < tuple size %d", len(buf), s.size)
	}
	for i, v := range vals {
		f := s.fields[i]
		if v.Kind != f.Kind {
			return fmt.Errorf("tuple: field %q wants %s, got %s", f.Name, f.Kind, v.Kind)
		}
		off := s.offsets[i]
		switch f.Kind {
		case Int32:
			binary.LittleEndian.PutUint32(buf[off:], uint32(v.I))
		case Float64:
			binary.LittleEndian.PutUint64(buf[off:], math.Float64bits(v.F))
		}
	}
	return nil
}

// Decode reads a tuple from buf into a fresh value slice.
func (s *Schema) Decode(buf []byte) ([]Value, error) {
	vals := make([]Value, len(s.fields))
	return vals, s.DecodeInto(buf, vals)
}

// DecodeInto reads a tuple from buf into vals, which must have the schema's
// arity; it avoids the allocation of Decode on scan hot paths.
func (s *Schema) DecodeInto(buf []byte, vals []Value) error {
	if len(buf) < s.size {
		return fmt.Errorf("tuple: buffer %d bytes < tuple size %d", len(buf), s.size)
	}
	if len(vals) != len(s.fields) {
		return fmt.Errorf("tuple: %d value slots for %d fields", len(vals), len(s.fields))
	}
	for i, f := range s.fields {
		off := s.offsets[i]
		switch f.Kind {
		case Int32:
			vals[i] = I32(int32(binary.LittleEndian.Uint32(buf[off:])))
		case Float64:
			vals[i] = F64(math.Float64frombits(binary.LittleEndian.Uint64(buf[off:])))
		}
	}
	return nil
}

// DecodeField reads only column i from buf, skipping the rest.
func (s *Schema) DecodeField(buf []byte, i int) (Value, error) {
	if i < 0 || i >= len(s.fields) {
		return Value{}, fmt.Errorf("tuple: field index %d out of range", i)
	}
	if len(buf) < s.size {
		return Value{}, fmt.Errorf("tuple: buffer %d bytes < tuple size %d", len(buf), s.size)
	}
	off := s.offsets[i]
	switch s.fields[i].Kind {
	case Int32:
		return I32(int32(binary.LittleEndian.Uint32(buf[off:]))), nil
	default:
		return F64(math.Float64frombits(binary.LittleEndian.Uint64(buf[off:]))), nil
	}
}

// String renders the schema as "(name kind, ...)".
func (s *Schema) String() string {
	var sb strings.Builder
	sb.WriteByte('(')
	for i, f := range s.fields {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "%s %s", f.Name, f.Kind)
	}
	sb.WriteByte(')')
	return sb.String()
}
