package join

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/index"
	"repro/internal/relation"
	"repro/internal/storage"
	"repro/internal/tuple"
)

// fixture builds a node relation R(id, w) and an edge relation S(begin, end)
// over one pool, plus indexes on S.begin (hash) and R.id (ISAM).
type fixture struct {
	pool    *storage.BufferPool
	r, s    *relation.Relation
	sHash   *index.Hash
	rISAM   *index.ISAM
	nodeIDs []int32
	edges   [][2]int32
}

func newFixture(t *testing.T, numNodes, numEdges int, seed int64) *fixture {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	f := &fixture{
		pool: storage.NewBufferPool(storage.NewDisk(512), 32),
	}
	var err error
	f.r, err = relation.New("r", tuple.MustSchema(
		tuple.Field{Name: "id", Kind: tuple.Int32},
		tuple.Field{Name: "w", Kind: tuple.Float64},
	), f.pool)
	if err != nil {
		t.Fatal(err)
	}
	f.s, err = relation.New("s", tuple.MustSchema(
		tuple.Field{Name: "begin", Kind: tuple.Int32},
		tuple.Field{Name: "end", Kind: tuple.Int32},
	), f.pool)
	if err != nil {
		t.Fatal(err)
	}
	f.sHash, err = index.NewHash("s_begin", f.pool, 8)
	if err != nil {
		t.Fatal(err)
	}
	var postings []index.Entry
	for i := 0; i < numNodes; i++ {
		id := int32(i)
		rid, err := f.r.Insert([]tuple.Value{tuple.I32(id), tuple.F64(float64(i) / 2)})
		if err != nil {
			t.Fatal(err)
		}
		postings = append(postings, index.Entry{Key: id, RID: rid})
		f.nodeIDs = append(f.nodeIDs, id)
	}
	f.rISAM, err = index.BuildISAM("r_id", f.pool, postings)
	if err != nil {
		t.Fatal(err)
	}
	for e := 0; e < numEdges; e++ {
		begin := int32(rng.Intn(numNodes))
		end := int32(rng.Intn(numNodes))
		rid, err := f.s.Insert([]tuple.Value{tuple.I32(begin), tuple.I32(end)})
		if err != nil {
			t.Fatal(err)
		}
		if err := f.sHash.Insert(begin, rid); err != nil {
			t.Fatal(err)
		}
		f.edges = append(f.edges, [2]int32{begin, end})
	}
	return f
}

// expectedPairs computes R ⋈ S on r.id = s.begin by brute force.
func (f *fixture) expectedPairs(filter func(id int32) bool) []string {
	var out []string
	for _, id := range f.nodeIDs {
		if filter != nil && !filter(id) {
			continue
		}
		for _, e := range f.edges {
			if e[0] == id {
				out = append(out, fmt.Sprintf("%d-%d>%d", id, e[0], e[1]))
			}
		}
	}
	sort.Strings(out)
	return out
}

func runJoin(t *testing.T, strat Strategy, f *fixture, filter func(id int32) bool) []string {
	t.Helper()
	sp := Spec{
		Left: f.r, Right: f.s,
		LeftKey:    0,
		RightKey:   0,
		RightIndex: HashProber{Index: f.sHash},
	}
	if filter != nil {
		sp.LeftFilter = func(vals []tuple.Value) bool { return filter(vals[0].Int()) }
	}
	var got []string
	err := Execute(strat, sp, func(l, r []tuple.Value) (bool, error) {
		got = append(got, fmt.Sprintf("%d-%d>%d", l[0].Int(), r[0].Int(), r[1].Int()))
		return true, nil
	})
	if err != nil {
		t.Fatalf("%v: %v", strat, err)
	}
	sort.Strings(got)
	return got
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// All four strategies must produce the identical result multiset.
func TestStrategiesAgree(t *testing.T) {
	f := newFixture(t, 30, 120, 7)
	want := f.expectedPairs(nil)
	if len(want) == 0 {
		t.Fatal("fixture produced no join results")
	}
	for _, strat := range Strategies() {
		got := runJoin(t, strat, f, nil)
		if !equalStrings(got, want) {
			t.Errorf("%v: %d pairs, want %d", strat, len(got), len(want))
		}
	}
}

func TestStrategiesAgreeWithFilter(t *testing.T) {
	f := newFixture(t, 30, 120, 8)
	filter := func(id int32) bool { return id%3 == 0 }
	want := f.expectedPairs(filter)
	for _, strat := range Strategies() {
		got := runJoin(t, strat, f, filter)
		if !equalStrings(got, want) {
			t.Errorf("%v with filter: %d pairs, want %d", strat, len(got), len(want))
		}
	}
}

func TestEmptyInputs(t *testing.T) {
	f := newFixture(t, 10, 0, 1) // no edges
	for _, strat := range Strategies() {
		got := runJoin(t, strat, f, nil)
		if len(got) != 0 {
			t.Errorf("%v: %d pairs from empty S", strat, len(got))
		}
	}
}

func TestEarlyStop(t *testing.T) {
	f := newFixture(t, 20, 100, 3)
	sp := Spec{Left: f.r, Right: f.s, LeftKey: 0, RightKey: 0, RightIndex: HashProber{Index: f.sHash}}
	for _, strat := range Strategies() {
		count := 0
		err := Execute(strat, sp, func(_, _ []tuple.Value) (bool, error) {
			count++
			return count < 3, nil
		})
		if err != nil {
			t.Fatalf("%v: %v", strat, err)
		}
		if count != 3 {
			t.Errorf("%v: emitted %d pairs after stop at 3", strat, count)
		}
	}
}

func TestEmitErrorPropagates(t *testing.T) {
	f := newFixture(t, 20, 100, 3)
	sp := Spec{Left: f.r, Right: f.s, LeftKey: 0, RightKey: 0, RightIndex: HashProber{Index: f.sHash}}
	boom := fmt.Errorf("boom")
	for _, strat := range Strategies() {
		err := Execute(strat, sp, func(_, _ []tuple.Value) (bool, error) {
			return false, boom
		})
		if err != boom {
			t.Errorf("%v: err = %v, want boom", strat, err)
		}
	}
}

func TestSpecValidation(t *testing.T) {
	f := newFixture(t, 5, 5, 1)
	emit := func(_, _ []tuple.Value) (bool, error) { return true, nil }
	if err := Execute(NestedLoop, Spec{Left: nil, Right: f.s}, emit); err == nil {
		t.Error("nil left accepted")
	}
	if err := Execute(NestedLoop, Spec{Left: f.r, Right: f.s, LeftKey: 9}, emit); err == nil {
		t.Error("bad left key accepted")
	}
	if err := Execute(NestedLoop, Spec{Left: f.r, Right: f.s, LeftKey: 1, RightKey: 0}, emit); err == nil {
		t.Error("float key accepted")
	}
	if err := Execute(PrimaryKey, Spec{Left: f.r, Right: f.s, LeftKey: 0, RightKey: 0}, emit); err == nil {
		t.Error("primary-key join without index accepted")
	}
	if err := Execute(Strategy(42), Spec{Left: f.r, Right: f.s, LeftKey: 0, RightKey: 0}, emit); err == nil {
		t.Error("unknown strategy accepted")
	}
}

func TestISAMProber(t *testing.T) {
	// Join S (outer) with R (inner, unique id) via ISAM: the reverse
	// direction of the fixture's usual join.
	f := newFixture(t, 25, 80, 5)
	sp := Spec{
		Left: f.s, Right: f.r,
		LeftKey:    0, // s.begin
		RightKey:   0, // r.id
		RightIndex: ISAMProber{Index: f.rISAM},
	}
	count := 0
	err := Execute(PrimaryKey, sp, func(l, r []tuple.Value) (bool, error) {
		if l[0].Int() != r[0].Int() {
			return false, fmt.Errorf("key mismatch %d vs %d", l[0].Int(), r[0].Int())
		}
		count++
		return true, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Every edge joins exactly one node tuple.
	if count != len(f.edges) {
		t.Errorf("joined %d pairs, want %d", count, len(f.edges))
	}
}

func TestStrategyString(t *testing.T) {
	names := map[Strategy]string{
		NestedLoop: "nested-loop",
		Hash:       "hash",
		SortMerge:  "sort-merge",
		PrimaryKey: "primary-key",
	}
	for s, want := range names {
		if s.String() != want {
			t.Errorf("%d: %q", int(s), s.String())
		}
	}
	if Strategy(9).String() != "Strategy(9)" {
		t.Error("unknown strategy name")
	}
}

// I/O shape: the hash join reads each relation about once; the nested loop
// rereads the inner relation per outer tuple (modulo buffer pool caching —
// use a tiny pool to expose it).
func TestIOShapes(t *testing.T) {
	f := newFixture(t, 60, 300, 11)
	// Shrink effective caching by building a fresh tiny pool? The fixture
	// pool has 32 frames over ~10 pages, so everything caches. Measure pool
	// accesses instead of disk transfers: hits+misses count page requests.
	measure := func(strat Strategy) int64 {
		before := f.pool.Stats()
		sp := Spec{Left: f.r, Right: f.s, LeftKey: 0, RightKey: 0, RightIndex: HashProber{Index: f.sHash}}
		if err := Execute(strat, sp, func(_, _ []tuple.Value) (bool, error) { return true, nil }); err != nil {
			t.Fatal(err)
		}
		after := f.pool.Stats()
		return (after.Hits + after.Misses) - (before.Hits + before.Misses)
	}
	nl := measure(NestedLoop)
	hj := measure(Hash)
	if nl <= hj {
		t.Errorf("nested loop page requests (%d) not above hash join (%d)", nl, hj)
	}
}
