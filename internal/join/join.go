// Package join implements the four join strategies the paper's query
// optimizer simulation chooses among (Section 4): (1) hash join,
// (2) nested-loop join, (3) sort-merge join, and (4) primary-key (index)
// join. Every strategy produces the same multiset of result pairs; they
// differ only in the block I/O they generate, which is what the cost
// function F(B1, B2, B3) models.
//
// The join the algorithms actually compute is "adjacency fetch": current
// node tuples from the node relation R joined with the edge relation S on
// R.id = S.begin. The specs here are general equi-joins on int32 columns so
// the strategies can be tested and benchmarked independently of the search
// algorithms.
package join

import (
	"fmt"
	"sort"

	"repro/internal/relation"
	"repro/internal/storage"
	"repro/internal/tuple"
)

// Strategy selects a join algorithm.
type Strategy int

const (
	// NestedLoop scans the inner relation once per outer tuple.
	NestedLoop Strategy = iota
	// Hash builds an in-memory hash table on the inner relation's key and
	// probes it with the outer tuples.
	Hash
	// SortMerge sorts both inputs by key and merges, pairing equal-key runs.
	SortMerge
	// PrimaryKey probes the inner relation's primary index once per outer
	// tuple — the paper's fourth strategy, "Primary Key Join".
	PrimaryKey
)

// String names the strategy as the optimizer reports it.
func (s Strategy) String() string {
	switch s {
	case NestedLoop:
		return "nested-loop"
	case Hash:
		return "hash"
	case SortMerge:
		return "sort-merge"
	case PrimaryKey:
		return "primary-key"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Strategies lists all four, for sweeps and the optimizer's argmin.
func Strategies() []Strategy {
	return []Strategy{NestedLoop, Hash, SortMerge, PrimaryKey}
}

// Prober abstracts an index probe on the inner relation for the PrimaryKey
// strategy: it visits the rid of every inner tuple whose key equals key.
type Prober interface {
	Probe(key int32, fn func(relation.RID) (bool, error)) error
}

// Spec describes an equi-join Left ⋈ Right on int32 key columns. An
// optional filter restricts the outer (left) input — the engine uses it to
// join only the "current" node tuples, per the algorithms' step 6/7.
type Spec struct {
	Left, Right *relation.Relation
	// LeftKey and RightKey are column indexes of the join keys (Int32).
	LeftKey, RightKey int
	// LeftFilter, when non-nil, keeps only outer tuples it returns true for.
	LeftFilter func(vals []tuple.Value) bool
	// RightIndex must be set for the PrimaryKey strategy.
	RightIndex Prober
}

func (sp Spec) validate() error {
	if sp.Left == nil || sp.Right == nil {
		return fmt.Errorf("join: nil relation")
	}
	check := func(r *relation.Relation, col int, side string) error {
		if col < 0 || col >= r.Schema().NumFields() {
			return fmt.Errorf("join: %s key column %d out of range", side, col)
		}
		if r.Schema().Field(col).Kind != tuple.Int32 {
			return fmt.Errorf("join: %s key column %q is not int32", side, r.Schema().Field(col).Name)
		}
		return nil
	}
	if err := check(sp.Left, sp.LeftKey, "left"); err != nil {
		return err
	}
	return check(sp.Right, sp.RightKey, "right")
}

// EmitFunc receives one joined pair. The slices are only valid during the
// call; copy what you keep. Returning false stops the join early.
type EmitFunc func(left, right []tuple.Value) (bool, error)

// Execute runs the join with the chosen strategy.
func Execute(strategy Strategy, sp Spec, emit EmitFunc) error {
	if err := sp.validate(); err != nil {
		return err
	}
	switch strategy {
	case NestedLoop:
		return nestedLoop(sp, emit)
	case Hash:
		return hashJoin(sp, emit)
	case SortMerge:
		return sortMerge(sp, emit)
	case PrimaryKey:
		return primaryKey(sp, emit)
	default:
		return fmt.Errorf("join: unknown strategy %d", int(strategy))
	}
}

// stopScan is the sentinel used to unwind an early stop requested by emit.
var stopScan = fmt.Errorf("join: stop")

// nestedLoop is a block nested loop: buffer the (filtered) outer tuples of
// one page, then scan the inner relation once for the whole page — the
// B1 + B1·B2 read pattern the optimizer's formula models. Pages whose
// tuples are all filtered out skip their inner scan.
func nestedLoop(sp Spec, emit EmitFunc) error {
	var (
		page    storage.PageID = -1
		started bool
		block   [][]tuple.Value
	)
	flush := func() error {
		if len(block) == 0 {
			return nil
		}
		err := sp.Right.Scan(func(_ relation.RID, rvals []tuple.Value) (bool, error) {
			k := rvals[sp.RightKey].Int()
			for _, l := range block {
				if l[sp.LeftKey].Int() != k {
					continue
				}
				cont, err := emit(l, rvals)
				if err == nil && !cont {
					err = stopScan
				}
				if err != nil {
					return false, err
				}
			}
			return true, nil
		})
		block = block[:0]
		return err
	}
	err := sp.Left.Scan(func(rid relation.RID, lvals []tuple.Value) (bool, error) {
		if started && rid.Page != page {
			if err := flush(); err != nil {
				return false, err
			}
		}
		started = true
		page = rid.Page
		if sp.LeftFilter == nil || sp.LeftFilter(lvals) {
			block = append(block, append([]tuple.Value(nil), lvals...))
		}
		return true, nil
	})
	if err == nil {
		err = flush()
	}
	if err == stopScan {
		return nil
	}
	return err
}

// hashJoin: build on the inner (right) side, probe with the outer.
func hashJoin(sp Spec, emit EmitFunc) error {
	table := make(map[int32][][]tuple.Value)
	err := sp.Right.Scan(func(_ relation.RID, rvals []tuple.Value) (bool, error) {
		cp := append([]tuple.Value(nil), rvals...)
		k := cp[sp.RightKey].Int()
		table[k] = append(table[k], cp)
		return true, nil
	})
	if err != nil {
		return err
	}
	err = sp.Left.Scan(func(_ relation.RID, lvals []tuple.Value) (bool, error) {
		if sp.LeftFilter != nil && !sp.LeftFilter(lvals) {
			return true, nil
		}
		for _, rvals := range table[lvals[sp.LeftKey].Int()] {
			cont, err := emit(lvals, rvals)
			if err != nil || !cont {
				if err == nil {
					err = stopScan
				}
				return false, err
			}
		}
		return true, nil
	})
	if err == stopScan {
		return nil
	}
	return err
}

// sortMerge: materialize both sides sorted by key and merge equal-key runs.
func sortMerge(sp Spec, emit EmitFunc) error {
	load := func(r *relation.Relation, keyCol int, filter func([]tuple.Value) bool) ([][]tuple.Value, error) {
		var out [][]tuple.Value
		err := r.Scan(func(_ relation.RID, vals []tuple.Value) (bool, error) {
			if filter != nil && !filter(vals) {
				return true, nil
			}
			out = append(out, append([]tuple.Value(nil), vals...))
			return true, nil
		})
		if err != nil {
			return nil, err
		}
		sort.SliceStable(out, func(i, j int) bool {
			return out[i][keyCol].Int() < out[j][keyCol].Int()
		})
		return out, nil
	}
	left, err := load(sp.Left, sp.LeftKey, sp.LeftFilter)
	if err != nil {
		return err
	}
	right, err := load(sp.Right, sp.RightKey, nil)
	if err != nil {
		return err
	}
	i, j := 0, 0
	for i < len(left) && j < len(right) {
		lk := left[i][sp.LeftKey].Int()
		rk := right[j][sp.RightKey].Int()
		switch {
		case lk < rk:
			i++
		case lk > rk:
			j++
		default:
			// Pair the full equal-key runs.
			jEnd := j
			for jEnd < len(right) && right[jEnd][sp.RightKey].Int() == rk {
				jEnd++
			}
			for ; i < len(left) && left[i][sp.LeftKey].Int() == lk; i++ {
				for jj := j; jj < jEnd; jj++ {
					cont, err := emit(left[i], right[jj])
					if err != nil || !cont {
						return err
					}
				}
			}
			j = jEnd
		}
	}
	return nil
}

// primaryKey: probe the inner index per outer tuple and fetch matches.
func primaryKey(sp Spec, emit EmitFunc) error {
	if sp.RightIndex == nil {
		return fmt.Errorf("join: primary-key strategy requires Spec.RightIndex")
	}
	err := sp.Left.Scan(func(_ relation.RID, lvals []tuple.Value) (bool, error) {
		if sp.LeftFilter != nil && !sp.LeftFilter(lvals) {
			return true, nil
		}
		l := append([]tuple.Value(nil), lvals...)
		err := sp.RightIndex.Probe(l[sp.LeftKey].Int(), func(rid relation.RID) (bool, error) {
			rvals, err := sp.Right.Get(rid)
			if err != nil {
				return false, err
			}
			cont, err := emit(l, rvals)
			if err == nil && !cont {
				err = stopScan
			}
			return cont, err
		})
		if err != nil {
			return false, err
		}
		return true, nil
	})
	if err == stopScan {
		return nil
	}
	return err
}
