package join

import (
	"repro/internal/index"
	"repro/internal/relation"
)

// HashProber adapts a hash index to the Prober interface.
type HashProber struct {
	Index *index.Hash
}

// Probe visits the rid of every posting with the given key.
func (p HashProber) Probe(key int32, fn func(relation.RID) (bool, error)) error {
	return p.Index.Lookup(key, fn)
}

// ISAMProber adapts an ISAM index (unique keys) to the Prober interface.
type ISAMProber struct {
	Index *index.ISAM
}

// Probe visits the single rid for key, if present.
func (p ISAMProber) Probe(key int32, fn func(relation.RID) (bool, error)) error {
	rid, ok, err := p.Index.Lookup(key)
	if err != nil || !ok {
		return err
	}
	_, err = fn(rid)
	return err
}
