package dbms

import (
	"fmt"
	"sync"

	"repro/internal/relation"
	"repro/internal/tuple"
)

// Journal is a logical redo log: every cataloged mutation (create, append,
// replace, delete) appends one record, and Replay rebuilds an equivalent
// database from scratch. It stands in for the durable log device a
// production engine writes through — the simulated disk's contents are
// volatile between sessions, so the journal is what survives a "crash".
//
// Journaling is opt-in (Options.Journal); the paper's experiments run
// without it so their I/O accounting stays calibrated to Tables 2–3.
//
// A Journal is safe for concurrent appends, though the engines writing to
// it are single-threaded.
type Journal struct {
	mu      sync.Mutex
	records []JournalRecord
}

// JournalOp is the record type tag.
type JournalOp uint8

const (
	// OpCreate records a relation's creation, carrying its schema.
	OpCreate JournalOp = iota
	// OpInsert records an APPEND with its tuple image.
	OpInsert
	// OpUpdate records a REPLACE with the rid and the after-image.
	OpUpdate
	// OpDelete records a DELETE with the rid.
	OpDelete
	// OpDrop records a relation being dropped.
	OpDrop
)

// String names the op.
func (op JournalOp) String() string {
	switch op {
	case OpCreate:
		return "create"
	case OpInsert:
		return "insert"
	case OpUpdate:
		return "update"
	case OpDelete:
		return "delete"
	case OpDrop:
		return "drop"
	default:
		return fmt.Sprintf("JournalOp(%d)", uint8(op))
	}
}

// JournalRecord is one logged mutation. For OpCreate, Fields carries the
// schema; for OpInsert/OpUpdate, Vals carries the tuple after-image; for
// OpUpdate/OpDelete, RID identifies the tuple in the *original* database
// (Replay maps it to the rebuilt one).
type JournalRecord struct {
	Op       JournalOp
	Relation string
	Fields   []tuple.Field
	Vals     []tuple.Value
	RID      relation.RID
}

// append logs one record.
func (j *Journal) append(rec JournalRecord) {
	j.mu.Lock()
	defer j.mu.Unlock()
	// Copy the value slice: callers reuse their buffers.
	rec.Vals = append([]tuple.Value(nil), rec.Vals...)
	rec.Fields = append([]tuple.Field(nil), rec.Fields...)
	j.records = append(j.records, rec)
}

// Len returns the number of logged records.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.records)
}

// Records returns a snapshot of the log.
func (j *Journal) Records() []JournalRecord {
	j.mu.Lock()
	defer j.mu.Unlock()
	return append([]JournalRecord(nil), j.records...)
}

// Replay rebuilds the journaled state into a fresh database (typically
// dbms.New with a clean disk) and returns it. Tuple rids differ between the
// original and the rebuilt database; the replay keeps the old→new mapping
// internally so updates and deletes land on the right tuples. Indexes are
// not journaled: rebuild them after replay, exactly as the engine's owner
// built them the first time.
func Replay(j *Journal, opts Options) (*Database, error) {
	db := New(opts)
	// ridMap maps original rids to rebuilt rids, per relation.
	ridMap := make(map[string]map[relation.RID]relation.RID)
	for i, rec := range j.Records() {
		switch rec.Op {
		case OpCreate:
			schema, err := tuple.NewSchema(rec.Fields...)
			if err != nil {
				return nil, fmt.Errorf("dbms: replay record %d: %w", i, err)
			}
			if _, err := db.CreateRelation(rec.Relation, schema); err != nil {
				return nil, fmt.Errorf("dbms: replay record %d: %w", i, err)
			}
			ridMap[rec.Relation] = make(map[relation.RID]relation.RID)
		case OpInsert:
			m, ok := ridMap[rec.Relation]
			if !ok {
				return nil, fmt.Errorf("dbms: replay record %d: insert into unjournaled relation %q", i, rec.Relation)
			}
			newRID, err := db.Insert(rec.Relation, rec.Vals)
			if err != nil {
				return nil, fmt.Errorf("dbms: replay record %d: %w", i, err)
			}
			m[rec.RID] = newRID
		case OpUpdate:
			m, ok := ridMap[rec.Relation]
			if !ok {
				return nil, fmt.Errorf("dbms: replay record %d: update of unjournaled relation %q", i, rec.Relation)
			}
			newRID, ok := m[rec.RID]
			if !ok {
				return nil, fmt.Errorf("dbms: replay record %d: update of unknown rid %v", i, rec.RID)
			}
			if err := db.Update(rec.Relation, newRID, rec.Vals); err != nil {
				return nil, fmt.Errorf("dbms: replay record %d: %w", i, err)
			}
		case OpDelete:
			m, ok := ridMap[rec.Relation]
			if !ok {
				return nil, fmt.Errorf("dbms: replay record %d: delete from unjournaled relation %q", i, rec.Relation)
			}
			newRID, ok := m[rec.RID]
			if !ok {
				return nil, fmt.Errorf("dbms: replay record %d: delete of unknown rid %v", i, rec.RID)
			}
			if err := db.Delete(rec.Relation, newRID); err != nil {
				return nil, fmt.Errorf("dbms: replay record %d: %w", i, err)
			}
			delete(m, rec.RID)
		case OpDrop:
			if err := db.DropRelation(rec.Relation); err != nil {
				return nil, fmt.Errorf("dbms: replay record %d: %w", i, err)
			}
			delete(ridMap, rec.Relation)
		default:
			return nil, fmt.Errorf("dbms: replay record %d: unknown op %v", i, rec.Op)
		}
	}
	return db, nil
}
