// Package dbms ties the storage, relation, index, join and optimizer
// packages into a small single-user relational engine — the stand-in for
// the INGRES instance the paper ran its EQUEL programs against. A Database
// owns a simulated disk, a buffer pool, a catalog of relations and their
// indexes, maintains hash indexes across mutations, can execute
// optimizer-chosen joins, and records per-step I/O traces that the cost
// model consumes.
package dbms

import (
	"fmt"
	"strings"

	"repro/internal/index"
	"repro/internal/join"
	"repro/internal/optimizer"
	"repro/internal/relation"
	"repro/internal/storage"
	"repro/internal/tuple"
)

// Options configures a Database.
type Options struct {
	// PageSize in bytes; 0 selects storage.PageSize (4096, Table 4A's B).
	PageSize int
	// PoolFrames is the buffer pool capacity; 0 selects a small default.
	PoolFrames int
	// Params are the cost-model constants; the zero value selects
	// optimizer.DefaultParams (Table 4A).
	Params optimizer.Params
	// Journal, when non-nil, receives a logical redo record for every
	// catalog and tuple mutation; dbms.Replay rebuilds the state from it.
	Journal *Journal
}

// Database is a single-user engine instance. It is not safe for concurrent
// use (the paper ran INGRES in single-user mode; callers wanting parallelism
// open one Database per goroutine).
type Database struct {
	disk   *storage.Disk
	pool   *storage.BufferPool
	params optimizer.Params

	relations map[string]*relation.Relation
	hashes    map[string]*index.Hash // key: "relation.field"
	isams     map[string]*index.ISAM

	journal *Journal
	trace   []StepTrace
}

// New creates an empty database.
func New(opts Options) *Database {
	params := opts.Params
	if params == (optimizer.Params{}) {
		params = optimizer.DefaultParams()
	}
	disk := storage.NewDisk(opts.PageSize)
	return &Database{
		disk:      disk,
		pool:      storage.NewBufferPool(disk, opts.PoolFrames),
		params:    params,
		relations: make(map[string]*relation.Relation),
		hashes:    make(map[string]*index.Hash),
		isams:     make(map[string]*index.ISAM),
		journal:   opts.Journal,
	}
}

// Params returns the cost-model constants the engine plans with.
func (db *Database) Params() optimizer.Params { return db.params }

// Pool exposes the buffer pool (for stats in experiments).
func (db *Database) Pool() *storage.BufferPool { return db.pool }

// IOStats returns the physical transfer counters.
func (db *Database) IOStats() storage.DiskStats { return db.disk.Stats() }

// CreateRelation adds an empty relation to the catalog.
func (db *Database) CreateRelation(name string, schema *tuple.Schema) (*relation.Relation, error) {
	if _, exists := db.relations[name]; exists {
		return nil, fmt.Errorf("dbms: relation %q already exists", name)
	}
	r, err := relation.New(name, schema, db.pool)
	if err != nil {
		return nil, err
	}
	db.relations[name] = r
	if db.journal != nil {
		fields := make([]tuple.Field, schema.NumFields())
		for i := range fields {
			fields[i] = schema.Field(i)
		}
		db.journal.append(JournalRecord{Op: OpCreate, Relation: name, Fields: fields})
	}
	return r, nil
}

// Relation resolves a catalog name.
func (db *Database) Relation(name string) (*relation.Relation, error) {
	r, ok := db.relations[name]
	if !ok {
		return nil, fmt.Errorf("dbms: no relation %q", name)
	}
	return r, nil
}

// Relations lists catalog names (unordered).
func (db *Database) Relations() []string {
	out := make([]string, 0, len(db.relations))
	for name := range db.relations {
		out = append(out, name)
	}
	return out
}

// DropRelation removes a relation and every index built on it from the
// catalog and returns their pages to the disk's free list. The paper's
// algorithms create a temporary node relation per query (cost step C1 and
// the D_t delete cost of Table 1); dropping it afterwards is what keeps a
// long-lived engine from growing without bound.
func (db *Database) DropRelation(name string) error {
	r, err := db.Relation(name)
	if err != nil {
		return err
	}
	freePages := func(pages []storage.PageID) error {
		for _, id := range pages {
			if err := db.pool.Discard(id); err != nil {
				return err
			}
			if err := db.disk.Free(id); err != nil {
				return err
			}
		}
		return nil
	}
	if err := freePages(r.Pages()); err != nil {
		return err
	}
	prefix := name + "."
	for key, h := range db.hashes {
		if strings.HasPrefix(key, prefix) {
			if err := freePages(h.Pages()); err != nil {
				return err
			}
			delete(db.hashes, key)
		}
	}
	for key, ix := range db.isams {
		if strings.HasPrefix(key, prefix) {
			if err := freePages(ix.Pages()); err != nil {
				return err
			}
			delete(db.isams, key)
		}
	}
	delete(db.relations, name)
	if db.journal != nil {
		db.journal.append(JournalRecord{Op: OpDrop, Relation: name})
	}
	return nil
}

func indexKey(rel, field string) string { return rel + "." + field }

// CreateHashIndex registers a hash index on an int32 column. Existing
// tuples are indexed immediately; subsequent mutations through the
// Database's Insert/Update/Delete keep it current.
func (db *Database) CreateHashIndex(rel, field string, buckets int) (*index.Hash, error) {
	r, err := db.Relation(rel)
	if err != nil {
		return nil, err
	}
	col, err := r.Schema().Index(field)
	if err != nil {
		return nil, err
	}
	if r.Schema().Field(col).Kind != tuple.Int32 {
		return nil, fmt.Errorf("dbms: hash index on non-int32 column %s.%s", rel, field)
	}
	key := indexKey(rel, field)
	if _, exists := db.hashes[key]; exists {
		return nil, fmt.Errorf("dbms: index %s already exists", key)
	}
	h, err := index.NewHash(key, db.pool, buckets)
	if err != nil {
		return nil, err
	}
	err = r.Scan(func(rid relation.RID, vals []tuple.Value) (bool, error) {
		return true, h.Insert(vals[col].Int(), rid)
	})
	if err != nil {
		return nil, err
	}
	db.hashes[key] = h
	return h, nil
}

// BuildISAM builds the static primary ISAM index on an int32 column from
// the relation's current contents. The column's values must be unique.
// Later in-place updates keep rids stable, so the index stays valid as long
// as the caller does not insert or delete (ISAM is static by definition;
// rebuild it if the relation's extent changes).
func (db *Database) BuildISAM(rel, field string) (*index.ISAM, error) {
	r, err := db.Relation(rel)
	if err != nil {
		return nil, err
	}
	col, err := r.Schema().Index(field)
	if err != nil {
		return nil, err
	}
	if r.Schema().Field(col).Kind != tuple.Int32 {
		return nil, fmt.Errorf("dbms: ISAM on non-int32 column %s.%s", rel, field)
	}
	var postings []index.Entry
	err = r.Scan(func(rid relation.RID, vals []tuple.Value) (bool, error) {
		postings = append(postings, index.Entry{Key: vals[col].Int(), RID: rid})
		return true, nil
	})
	if err != nil {
		return nil, err
	}
	key := indexKey(rel, field)
	ix, err := index.BuildISAM(key, db.pool, postings)
	if err != nil {
		return nil, err
	}
	db.isams[key] = ix
	return ix, nil
}

// HashIndex resolves a registered hash index.
func (db *Database) HashIndex(rel, field string) (*index.Hash, error) {
	h, ok := db.hashes[indexKey(rel, field)]
	if !ok {
		return nil, fmt.Errorf("dbms: no hash index on %s.%s", rel, field)
	}
	return h, nil
}

// ISAM resolves a built ISAM index.
func (db *Database) ISAM(rel, field string) (*index.ISAM, error) {
	ix, ok := db.isams[indexKey(rel, field)]
	if !ok {
		return nil, fmt.Errorf("dbms: no ISAM index on %s.%s", rel, field)
	}
	return ix, nil
}

// Insert appends a tuple and maintains the relation's hash indexes — the
// QUEL APPEND.
func (db *Database) Insert(rel string, vals []tuple.Value) (relation.RID, error) {
	r, err := db.Relation(rel)
	if err != nil {
		return relation.RID{}, err
	}
	rid, err := r.Insert(vals)
	if err != nil {
		return relation.RID{}, err
	}
	if db.journal != nil {
		db.journal.append(JournalRecord{Op: OpInsert, Relation: rel, Vals: vals, RID: rid})
	}
	for field, h := range db.hashes {
		relName, col, ok := db.splitIndexKey(field, rel)
		if !ok {
			continue
		}
		_ = relName
		if err := h.Insert(vals[col].Int(), rid); err != nil {
			return relation.RID{}, err
		}
	}
	return rid, nil
}

// Update rewrites a tuple in place and maintains hash indexes whose key
// changed — the QUEL REPLACE.
func (db *Database) Update(rel string, rid relation.RID, vals []tuple.Value) error {
	r, err := db.Relation(rel)
	if err != nil {
		return err
	}
	old, err := r.Get(rid)
	if err != nil {
		return err
	}
	if err := r.Update(rid, vals); err != nil {
		return err
	}
	if db.journal != nil {
		db.journal.append(JournalRecord{Op: OpUpdate, Relation: rel, Vals: vals, RID: rid})
	}
	for field, h := range db.hashes {
		_, col, ok := db.splitIndexKey(field, rel)
		if !ok {
			continue
		}
		if old[col].Int() != vals[col].Int() {
			if _, err := h.Delete(old[col].Int(), rid); err != nil {
				return err
			}
			if err := h.Insert(vals[col].Int(), rid); err != nil {
				return err
			}
		}
	}
	return nil
}

// Delete removes a tuple and its hash-index postings — the QUEL DELETE.
func (db *Database) Delete(rel string, rid relation.RID) error {
	r, err := db.Relation(rel)
	if err != nil {
		return err
	}
	old, err := r.Get(rid)
	if err != nil {
		return err
	}
	if err := r.Delete(rid); err != nil {
		return err
	}
	if db.journal != nil {
		db.journal.append(JournalRecord{Op: OpDelete, Relation: rel, RID: rid})
	}
	for field, h := range db.hashes {
		_, col, ok := db.splitIndexKey(field, rel)
		if !ok {
			continue
		}
		if _, err := h.Delete(old[col].Int(), rid); err != nil {
			return err
		}
	}
	return nil
}

// splitIndexKey checks whether an index catalog key belongs to rel and
// returns the indexed column.
func (db *Database) splitIndexKey(key, rel string) (string, int, bool) {
	prefix := rel + "."
	if len(key) <= len(prefix) || key[:len(prefix)] != prefix {
		return "", 0, false
	}
	field := key[len(prefix):]
	r := db.relations[rel]
	col, err := r.Schema().Index(field)
	if err != nil {
		return "", 0, false
	}
	return rel, col, true
}

// PlanJoin sizes a join between two catalog relations and asks the
// optimizer for the cheapest strategy — the engine-side use of F(B1,B2,B3).
// resultTuples is the caller's estimate of the join cardinality (JS·|L|·|R|
// in the paper's notation).
func (db *Database) PlanJoin(left, right string, outerTuples, resultTuples int) (optimizer.Choice, error) {
	l, err := db.Relation(left)
	if err != nil {
		return optimizer.Choice{}, err
	}
	r, err := db.Relation(right)
	if err != nil {
		return optimizer.Choice{}, err
	}
	in := optimizer.JoinInput{
		B1:          l.Blocks(),
		B2:          r.Blocks(),
		B3:          optimizer.Blocks(resultTuples, db.params.BfRS),
		OuterTuples: outerTuples,
	}
	return optimizer.Choose(db.params, in)
}

// ExecuteJoin runs an equi-join between catalog relations with the given
// strategy, resolving the right side's index automatically for the
// primary-key strategy (hash index first, then ISAM).
func (db *Database) ExecuteJoin(strategy join.Strategy, left, right string, leftField, rightField string, leftFilter func([]tuple.Value) bool, emit join.EmitFunc) error {
	l, err := db.Relation(left)
	if err != nil {
		return err
	}
	r, err := db.Relation(right)
	if err != nil {
		return err
	}
	lcol, err := l.Schema().Index(leftField)
	if err != nil {
		return err
	}
	rcol, err := r.Schema().Index(rightField)
	if err != nil {
		return err
	}
	sp := join.Spec{
		Left: l, Right: r,
		LeftKey: lcol, RightKey: rcol,
		LeftFilter: leftFilter,
	}
	if strategy == join.PrimaryKey {
		if h, err := db.HashIndex(right, rightField); err == nil {
			sp.RightIndex = join.HashProber{Index: h}
		} else if ix, err := db.ISAM(right, rightField); err == nil {
			sp.RightIndex = join.ISAMProber{Index: ix}
		} else {
			return fmt.Errorf("dbms: primary-key join needs an index on %s.%s", right, rightField)
		}
	}
	return join.Execute(strategy, sp, emit)
}
