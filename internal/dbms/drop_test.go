package dbms

import (
	"testing"

	"repro/internal/relation"
	"repro/internal/tuple"
)

func TestDropRelationReclaimsPages(t *testing.T) {
	db := New(Options{PageSize: 256, PoolFrames: 8})
	schema := tuple.MustSchema(
		tuple.Field{Name: "id", Kind: tuple.Int32},
		tuple.Field{Name: "v", Kind: tuple.Float64},
	)
	if _, err := db.CreateRelation("t", schema); err != nil {
		t.Fatal(err)
	}
	db.CreateHashIndex("t", "id", 4)
	for i := int32(0); i < 200; i++ {
		if _, err := db.Insert("t", []tuple.Value{tuple.I32(i), tuple.F64(1)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := db.BuildISAM("t", "id"); err != nil {
		t.Fatal(err)
	}

	disk := db.Pool().Disk()
	allocated := disk.NumPages()
	if allocated == 0 {
		t.Fatal("nothing allocated")
	}
	if err := db.DropRelation("t"); err != nil {
		t.Fatal(err)
	}
	if disk.FreePages() != allocated {
		t.Errorf("free pages = %d, want all %d back", disk.FreePages(), allocated)
	}
	if _, err := db.Relation("t"); err == nil {
		t.Error("dropped relation still resolves")
	}
	if _, err := db.HashIndex("t", "id"); err == nil {
		t.Error("dropped relation's hash index still resolves")
	}
	if _, err := db.ISAM("t", "id"); err == nil {
		t.Error("dropped relation's ISAM still resolves")
	}
	if err := db.DropRelation("t"); err == nil {
		t.Error("double drop succeeded")
	}

	// Re-creating reuses the freed pages: the device must not grow.
	if _, err := db.CreateRelation("t2", schema); err != nil {
		t.Fatal(err)
	}
	for i := int32(0); i < 200; i++ {
		if _, err := db.Insert("t2", []tuple.Value{tuple.I32(i), tuple.F64(1)}); err != nil {
			t.Fatal(err)
		}
	}
	if disk.NumPages() > allocated {
		t.Errorf("device grew to %d pages; reuse failed (had %d)", disk.NumPages(), allocated)
	}
	// And the new relation's data is intact.
	r, _ := db.Relation("t2")
	if r.NumTuples() != 200 {
		t.Errorf("tuples = %d", r.NumTuples())
	}
}

func TestDropDoesNotTouchOtherRelations(t *testing.T) {
	db := New(Options{PageSize: 256, PoolFrames: 8})
	schema := tuple.MustSchema(tuple.Field{Name: "id", Kind: tuple.Int32})
	db.CreateRelation("keep", schema)
	db.CreateRelation("drop", schema)
	// Interleave inserts so the two relations' pages interleave on disk.
	for i := int32(0); i < 100; i++ {
		db.Insert("keep", []tuple.Value{tuple.I32(i)})
		db.Insert("drop", []tuple.Value{tuple.I32(i)})
	}
	if err := db.DropRelation("drop"); err != nil {
		t.Fatal(err)
	}
	// The surviving relation is complete and uncorrupted.
	r, _ := db.Relation("keep")
	var sum int64
	count := 0
	err := r.Scan(func(_ relation.RID, vals []tuple.Value) (bool, error) {
		sum += int64(vals[0].Int())
		count++
		return true, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 100 || sum != 99*100/2 {
		t.Errorf("survivor: %d tuples, sum %d", count, sum)
	}
	// New allocations may land on the dropped relation's pages without
	// corrupting the survivor.
	db.CreateRelation("new", schema)
	for i := int32(0); i < 100; i++ {
		db.Insert("new", []tuple.Value{tuple.I32(i + 1000)})
	}
	count = 0
	if err := r.Scan(func(_ relation.RID, _ []tuple.Value) (bool, error) {
		count++
		return true, nil
	}); err != nil {
		t.Fatal(err)
	}
	if count != 100 {
		t.Errorf("survivor changed to %d tuples after reuse", count)
	}
}
