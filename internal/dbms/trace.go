package dbms

import (
	"fmt"
	"strings"
)

// StepTrace records the I/O one named step of an algorithm performed — the
// engine-side counterpart of the C_j step costs in the paper's Tables 2
// and 3. Reads and Writes are physical block transfers; PageRequests counts
// buffer-pool accesses (hits + misses), the logical I/O a cost model without
// caching would charge.
type StepTrace struct {
	Name         string
	Reads        int64
	Writes       int64
	PageRequests int64
}

// TimeUnits converts the step's physical transfers into cost-model time
// units.
func (st StepTrace) TimeUnits(tRead, tWrite float64) float64 {
	return float64(st.Reads)*tRead + float64(st.Writes)*tWrite
}

// Step runs fn, measuring its I/O, and appends a StepTrace under name.
// Steps with the same name accumulate, so per-iteration steps aggregate
// naturally across a run.
func (db *Database) Step(name string, fn func() error) error {
	d0 := db.disk.Stats()
	p0 := db.pool.Stats()
	err := fn()
	d1 := db.disk.Stats()
	p1 := db.pool.Stats()
	delta := StepTrace{
		Name:         name,
		Reads:        d1.Reads - d0.Reads,
		Writes:       d1.Writes - d0.Writes,
		PageRequests: (p1.Hits + p1.Misses) - (p0.Hits + p0.Misses),
	}
	for i := range db.trace {
		if db.trace[i].Name == name {
			db.trace[i].Reads += delta.Reads
			db.trace[i].Writes += delta.Writes
			db.trace[i].PageRequests += delta.PageRequests
			return err
		}
	}
	db.trace = append(db.trace, delta)
	return err
}

// Trace returns the accumulated step traces in first-seen order.
func (db *Database) Trace() []StepTrace {
	return append([]StepTrace(nil), db.trace...)
}

// ResetTrace clears the accumulated steps (between experiment phases).
func (db *Database) ResetTrace() { db.trace = nil }

// FormatTrace renders the trace as an aligned table for reports.
func FormatTrace(steps []StepTrace, tRead, tWrite float64) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-28s %10s %10s %12s %10s\n", "step", "reads", "writes", "page reqs", "units")
	var totR, totW, totP int64
	var totU float64
	for _, st := range steps {
		u := st.TimeUnits(tRead, tWrite)
		fmt.Fprintf(&sb, "%-28s %10d %10d %12d %10.2f\n", st.Name, st.Reads, st.Writes, st.PageRequests, u)
		totR += st.Reads
		totW += st.Writes
		totP += st.PageRequests
		totU += u
	}
	fmt.Fprintf(&sb, "%-28s %10d %10d %12d %10.2f\n", "total", totR, totW, totP, totU)
	return sb.String()
}
