package dbms

import (
	"fmt"
	"testing"

	"repro/internal/join"
	"repro/internal/relation"
	"repro/internal/tuple"
)

func edgeSchema() *tuple.Schema {
	return tuple.MustSchema(
		tuple.Field{Name: "begin", Kind: tuple.Int32},
		tuple.Field{Name: "end", Kind: tuple.Int32},
		tuple.Field{Name: "cost", Kind: tuple.Float64},
	)
}

func nodeSchema() *tuple.Schema {
	return tuple.MustSchema(
		tuple.Field{Name: "id", Kind: tuple.Int32},
		tuple.Field{Name: "status", Kind: tuple.Int32},
	)
}

func TestCatalog(t *testing.T) {
	db := New(Options{})
	if _, err := db.CreateRelation("s", edgeSchema()); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateRelation("s", edgeSchema()); err == nil {
		t.Error("duplicate relation accepted")
	}
	if _, err := db.Relation("s"); err != nil {
		t.Errorf("lookup failed: %v", err)
	}
	if _, err := db.Relation("ghost"); err == nil {
		t.Error("ghost relation resolved")
	}
	if names := db.Relations(); len(names) != 1 || names[0] != "s" {
		t.Errorf("Relations = %v", names)
	}
	if db.Params().TRead != 0.035 {
		t.Error("default params not Table 4A")
	}
}

func TestInsertMaintainsHashIndex(t *testing.T) {
	db := New(Options{})
	db.CreateRelation("s", edgeSchema())
	if _, err := db.CreateHashIndex("s", "begin", 8); err != nil {
		t.Fatal(err)
	}
	for i := int32(0); i < 20; i++ {
		if _, err := db.Insert("s", []tuple.Value{tuple.I32(i % 4), tuple.I32(i), tuple.F64(1)}); err != nil {
			t.Fatal(err)
		}
	}
	h, err := db.HashIndex("s", "begin")
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	h.Lookup(2, func(relation.RID) (bool, error) { count++; return true, nil })
	if count != 5 {
		t.Errorf("lookup(2) found %d postings, want 5", count)
	}
}

func TestCreateHashIndexOverExistingTuples(t *testing.T) {
	db := New(Options{})
	db.CreateRelation("s", edgeSchema())
	for i := int32(0); i < 10; i++ {
		db.Insert("s", []tuple.Value{tuple.I32(i), tuple.I32(0), tuple.F64(0)})
	}
	h, err := db.CreateHashIndex("s", "begin", 4)
	if err != nil {
		t.Fatal(err)
	}
	if h.NumEntries() != 10 {
		t.Errorf("backfill indexed %d entries", h.NumEntries())
	}
	if _, err := db.CreateHashIndex("s", "begin", 4); err == nil {
		t.Error("duplicate index accepted")
	}
	if _, err := db.CreateHashIndex("s", "cost", 4); err == nil {
		t.Error("index on float column accepted")
	}
	if _, err := db.CreateHashIndex("ghost", "x", 4); err == nil {
		t.Error("index on ghost relation accepted")
	}
}

func TestUpdateMaintainsHashIndex(t *testing.T) {
	db := New(Options{})
	db.CreateRelation("n", nodeSchema())
	db.CreateHashIndex("n", "status", 4)
	rid, _ := db.Insert("n", []tuple.Value{tuple.I32(1), tuple.I32(0)})
	if err := db.Update("n", rid, []tuple.Value{tuple.I32(1), tuple.I32(2)}); err != nil {
		t.Fatal(err)
	}
	h, _ := db.HashIndex("n", "status")
	old, cur := 0, 0
	h.Lookup(0, func(relation.RID) (bool, error) { old++; return true, nil })
	h.Lookup(2, func(relation.RID) (bool, error) { cur++; return true, nil })
	if old != 0 || cur != 1 {
		t.Errorf("postings after update: status0=%d status2=%d", old, cur)
	}
}

func TestDeleteMaintainsHashIndex(t *testing.T) {
	db := New(Options{})
	db.CreateRelation("n", nodeSchema())
	db.CreateHashIndex("n", "id", 4)
	rid, _ := db.Insert("n", []tuple.Value{tuple.I32(7), tuple.I32(0)})
	if err := db.Delete("n", rid); err != nil {
		t.Fatal(err)
	}
	h, _ := db.HashIndex("n", "id")
	if h.NumEntries() != 0 {
		t.Errorf("entries after delete = %d", h.NumEntries())
	}
	r, _ := db.Relation("n")
	if r.NumTuples() != 0 {
		t.Errorf("tuples after delete = %d", r.NumTuples())
	}
}

func TestBuildISAMAndLookup(t *testing.T) {
	db := New(Options{})
	db.CreateRelation("n", nodeSchema())
	rids := map[int32]relation.RID{}
	for i := int32(0); i < 50; i++ {
		rid, _ := db.Insert("n", []tuple.Value{tuple.I32(i), tuple.I32(0)})
		rids[i] = rid
	}
	ix, err := db.BuildISAM("n", "id")
	if err != nil {
		t.Fatal(err)
	}
	for i := int32(0); i < 50; i++ {
		rid, ok, err := ix.Lookup(i)
		if err != nil || !ok || rid != rids[i] {
			t.Fatalf("lookup(%d) = %v,%v,%v", i, rid, ok, err)
		}
	}
	if _, err := db.ISAM("n", "id"); err != nil {
		t.Errorf("catalog lookup: %v", err)
	}
	if _, err := db.ISAM("n", "status"); err == nil {
		t.Error("ghost ISAM resolved")
	}
	if _, err := db.BuildISAM("n", "ghost"); err == nil {
		t.Error("ISAM on ghost column accepted")
	}
}

func TestPlanAndExecuteJoin(t *testing.T) {
	db := New(Options{})
	db.CreateRelation("n", nodeSchema())
	db.CreateRelation("s", edgeSchema())
	db.CreateHashIndex("s", "begin", 8)
	for i := int32(0); i < 10; i++ {
		db.Insert("n", []tuple.Value{tuple.I32(i), tuple.I32(0)})
	}
	for i := int32(0); i < 30; i++ {
		db.Insert("s", []tuple.Value{tuple.I32(i % 10), tuple.I32((i + 1) % 10), tuple.F64(1)})
	}
	choice, err := db.PlanJoin("n", "s", 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if choice.Cost <= 0 {
		t.Errorf("plan cost = %v", choice.Cost)
	}
	for _, strat := range join.Strategies() {
		count := 0
		err := db.ExecuteJoin(strat, "n", "s", "id", "begin",
			func(vals []tuple.Value) bool { return vals[0].Int() == 3 },
			func(l, r []tuple.Value) (bool, error) {
				if l[0].Int() != r[0].Int() {
					return false, fmt.Errorf("bad pair")
				}
				count++
				return true, nil
			})
		if err != nil {
			t.Fatalf("%v: %v", strat, err)
		}
		if count != 3 {
			t.Errorf("%v: %d pairs, want 3", strat, count)
		}
	}
	// Primary-key join without any index on the right side must fail.
	db2 := New(Options{})
	db2.CreateRelation("n", nodeSchema())
	db2.CreateRelation("s", edgeSchema())
	err = db2.ExecuteJoin(join.PrimaryKey, "n", "s", "id", "begin", nil,
		func(_, _ []tuple.Value) (bool, error) { return true, nil })
	if err == nil {
		t.Error("primary-key join without index accepted")
	}
}

func TestExecuteJoinViaISAM(t *testing.T) {
	db := New(Options{})
	db.CreateRelation("n", nodeSchema())
	db.CreateRelation("s", edgeSchema())
	for i := int32(0); i < 5; i++ {
		db.Insert("n", []tuple.Value{tuple.I32(i), tuple.I32(0)})
	}
	for i := int32(0); i < 10; i++ {
		db.Insert("s", []tuple.Value{tuple.I32(i % 5), tuple.I32(0), tuple.F64(1)})
	}
	if _, err := db.BuildISAM("n", "id"); err != nil {
		t.Fatal(err)
	}
	count := 0
	err := db.ExecuteJoin(join.PrimaryKey, "s", "n", "begin", "id", nil,
		func(_, _ []tuple.Value) (bool, error) { count++; return true, nil })
	if err != nil {
		t.Fatal(err)
	}
	if count != 10 {
		t.Errorf("ISAM-backed join produced %d pairs, want 10", count)
	}
}

func TestStepTracing(t *testing.T) {
	db := New(Options{PageSize: 256, PoolFrames: 2})
	db.CreateRelation("n", nodeSchema())
	err := db.Step("load", func() error {
		for i := int32(0); i < 100; i++ {
			if _, err := db.Insert("n", []tuple.Value{tuple.I32(i), tuple.I32(0)}); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	err = db.Step("scan", func() error {
		r, _ := db.Relation("n")
		return r.Scan(func(relation.RID, []tuple.Value) (bool, error) { return true, nil })
	})
	if err != nil {
		t.Fatal(err)
	}
	steps := db.Trace()
	if len(steps) != 2 {
		t.Fatalf("trace has %d steps", len(steps))
	}
	if steps[0].Name != "load" || steps[1].Name != "scan" {
		t.Errorf("step order: %v, %v", steps[0].Name, steps[1].Name)
	}
	if steps[0].Writes == 0 {
		t.Error("load step recorded no writes (tiny pool must spill)")
	}
	if steps[1].PageRequests == 0 {
		t.Error("scan step recorded no page requests")
	}
	// Accumulation: a second step with the same name merges.
	db.Step("scan", func() error { return nil })
	if got := len(db.Trace()); got != 2 {
		t.Errorf("after repeat step: %d entries", got)
	}
	out := FormatTrace(db.Trace(), 0.035, 0.05)
	if out == "" || len(out) < 20 {
		t.Error("FormatTrace produced nothing")
	}
	db.ResetTrace()
	if len(db.Trace()) != 0 {
		t.Error("ResetTrace did not clear")
	}
}

func TestStepPropagatesError(t *testing.T) {
	db := New(Options{})
	boom := fmt.Errorf("boom")
	if err := db.Step("x", func() error { return boom }); err != boom {
		t.Errorf("err = %v", err)
	}
}
