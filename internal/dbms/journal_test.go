package dbms

import (
	"math/rand"
	"testing"

	"repro/internal/relation"
	"repro/internal/tuple"
)

func journalSchema() *tuple.Schema {
	return tuple.MustSchema(
		tuple.Field{Name: "id", Kind: tuple.Int32},
		tuple.Field{Name: "v", Kind: tuple.Float64},
	)
}

// snapshot collects a relation's tuples as id→v for comparison.
func snapshot(t *testing.T, db *Database, rel string) map[int32]float64 {
	t.Helper()
	r, err := db.Relation(rel)
	if err != nil {
		t.Fatal(err)
	}
	out := map[int32]float64{}
	err = r.Scan(func(_ relation.RID, vals []tuple.Value) (bool, error) {
		out[vals[0].Int()] = vals[1].Float()
		return true, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestJournalReplayBasic(t *testing.T) {
	j := &Journal{}
	db := New(Options{Journal: j})
	db.CreateRelation("t", journalSchema())
	ridA, _ := db.Insert("t", []tuple.Value{tuple.I32(1), tuple.F64(1.5)})
	ridB, _ := db.Insert("t", []tuple.Value{tuple.I32(2), tuple.F64(2.5)})
	db.Update("t", ridA, []tuple.Value{tuple.I32(1), tuple.F64(9)})
	db.Delete("t", ridB)

	if j.Len() != 5 { // create + 2 inserts + update + delete
		t.Fatalf("journal has %d records", j.Len())
	}

	// "Crash": abandon db; rebuild from the journal alone.
	rebuilt, err := Replay(j, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := snapshot(t, rebuilt, "t")
	if len(got) != 1 || got[1] != 9 {
		t.Errorf("rebuilt state = %v, want {1:9}", got)
	}
}

func TestJournalReplayDrop(t *testing.T) {
	j := &Journal{}
	db := New(Options{Journal: j})
	db.CreateRelation("temp", journalSchema())
	db.Insert("temp", []tuple.Value{tuple.I32(1), tuple.F64(1)})
	db.CreateRelation("keep", journalSchema())
	db.Insert("keep", []tuple.Value{tuple.I32(7), tuple.F64(7)})
	db.DropRelation("temp")

	rebuilt, err := Replay(j, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rebuilt.Relation("temp"); err == nil {
		t.Error("dropped relation resurrected")
	}
	if got := snapshot(t, rebuilt, "keep"); len(got) != 1 || got[7] != 7 {
		t.Errorf("keep = %v", got)
	}
}

func TestJournalOpNames(t *testing.T) {
	names := map[JournalOp]string{
		OpCreate: "create", OpInsert: "insert", OpUpdate: "update",
		OpDelete: "delete", OpDrop: "drop",
	}
	for op, want := range names {
		if op.String() != want {
			t.Errorf("%d: %q", op, op.String())
		}
	}
	if JournalOp(99).String() != "JournalOp(99)" {
		t.Error("unknown op name")
	}
}

func TestJournalReplayErrors(t *testing.T) {
	// A record referencing an uncreated relation must fail cleanly.
	j := &Journal{}
	j.append(JournalRecord{Op: OpInsert, Relation: "ghost"})
	if _, err := Replay(j, Options{}); err == nil {
		t.Error("insert into ghost relation replayed")
	}
	j2 := &Journal{}
	j2.append(JournalRecord{Op: OpCreate, Relation: "t", Fields: []tuple.Field{{Name: "id", Kind: tuple.Int32}}})
	j2.append(JournalRecord{Op: OpUpdate, Relation: "t", RID: relation.RID{Page: 9, Slot: 9}, Vals: []tuple.Value{tuple.I32(1)}})
	if _, err := Replay(j2, Options{}); err == nil {
		t.Error("update of unknown rid replayed")
	}
	j3 := &Journal{}
	j3.append(JournalRecord{Op: JournalOp(42)})
	if _, err := Replay(j3, Options{}); err == nil {
		t.Error("unknown op replayed")
	}
}

// Property: a random mutation workload replays to exactly the same logical
// state, across several relations with interleaved drops.
func TestJournalReplayRandomWorkload(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 10; trial++ {
		j := &Journal{}
		db := New(Options{PageSize: 256, PoolFrames: 8, Journal: j})
		type live struct {
			rid relation.RID
			id  int32
		}
		tuplesByRel := map[string][]live{}
		rels := []string{"a", "b", "c"}
		for _, rel := range rels {
			if _, err := db.CreateRelation(rel, journalSchema()); err != nil {
				t.Fatal(err)
			}
			tuplesByRel[rel] = nil
		}
		nextID := int32(0)
		for op := 0; op < 500; op++ {
			rel := rels[rng.Intn(len(rels))]
			lives := tuplesByRel[rel]
			switch {
			case len(lives) == 0 || rng.Intn(3) == 0:
				nextID++
				rid, err := db.Insert(rel, []tuple.Value{tuple.I32(nextID), tuple.F64(rng.Float64())})
				if err != nil {
					t.Fatal(err)
				}
				tuplesByRel[rel] = append(lives, live{rid, nextID})
			case rng.Intn(2) == 0:
				i := rng.Intn(len(lives))
				err := db.Update(rel, lives[i].rid, []tuple.Value{tuple.I32(lives[i].id), tuple.F64(rng.Float64())})
				if err != nil {
					t.Fatal(err)
				}
			default:
				i := rng.Intn(len(lives))
				if err := db.Delete(rel, lives[i].rid); err != nil {
					t.Fatal(err)
				}
				lives[i] = lives[len(lives)-1]
				tuplesByRel[rel] = lives[:len(lives)-1]
			}
		}

		rebuilt, err := Replay(j, Options{PageSize: 256, PoolFrames: 8})
		if err != nil {
			t.Fatal(err)
		}
		for _, rel := range rels {
			want := snapshot(t, db, rel)
			got := snapshot(t, rebuilt, rel)
			if len(want) != len(got) {
				t.Fatalf("trial %d %s: %d tuples rebuilt, want %d", trial, rel, len(got), len(want))
			}
			for id, v := range want {
				if got[id] != v {
					t.Fatalf("trial %d %s id %d: %v vs %v", trial, rel, id, got[id], v)
				}
			}
		}
	}
}

// The crash story end to end: the device starts failing mid-workload, the
// engine surfaces errors (no silent corruption), and the journal — the
// durable side of the system — replays everything that succeeded into a
// healthy engine.
func TestJournalSurvivesDeviceCrash(t *testing.T) {
	j := &Journal{}
	db := New(Options{PageSize: 256, PoolFrames: 4, Journal: j})
	if _, err := db.CreateRelation("t", journalSchema()); err != nil {
		t.Fatal(err)
	}
	applied := map[int32]float64{}
	i := int32(0)
	for ; i < 200; i++ {
		if _, err := db.Insert("t", []tuple.Value{tuple.I32(i), tuple.F64(float64(i))}); err != nil {
			t.Fatal(err)
		}
		applied[i] = float64(i)
	}
	// The device dies: every further write fails.
	db.Pool().Disk().InjectFaults(-1, 0)
	crashed := false
	for ; i < 400; i++ {
		if _, err := db.Insert("t", []tuple.Value{tuple.I32(i), tuple.F64(float64(i))}); err != nil {
			crashed = true
			break
		}
		applied[i] = float64(i)
	}
	if !crashed {
		t.Fatal("tiny pool never hit the faulted device: test is vacuous")
	}
	// The failed insert may have journaled before the device fault surfaced;
	// trim the journal to the successful prefix the way a write-ahead commit
	// point would. (The insert path journals after the tuple lands, so the
	// failed op is NOT in the journal — assert that.)
	if got := j.Len(); got != len(applied)+1 { // +1 for the create record
		t.Fatalf("journal has %d records for %d successful ops", got, len(applied))
	}

	// Recovery: replay into a fresh, healthy engine.
	rebuilt, err := Replay(j, Options{PageSize: 256, PoolFrames: 8})
	if err != nil {
		t.Fatal(err)
	}
	got := snapshot(t, rebuilt, "t")
	if len(got) != len(applied) {
		t.Fatalf("recovered %d tuples, want %d", len(got), len(applied))
	}
	for id, v := range applied {
		if got[id] != v {
			t.Fatalf("recovered t[%d] = %v, want %v", id, got[id], v)
		}
	}
}

func TestJournalDisabledByDefault(t *testing.T) {
	db := New(Options{})
	db.CreateRelation("t", journalSchema())
	db.Insert("t", []tuple.Value{tuple.I32(1), tuple.F64(1)})
	// No journal: nothing to assert beyond "does not crash"; the zero
	// Options must not record anywhere.
	if db.journal != nil {
		t.Error("journal unexpectedly attached")
	}
}
