package relation

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/storage"
	"repro/internal/tuple"
)

func newTestRelation(t *testing.T, pageSize, poolFrames int) *Relation {
	t.Helper()
	disk := storage.NewDisk(pageSize)
	pool := storage.NewBufferPool(disk, poolFrames)
	s := tuple.MustSchema(
		tuple.Field{Name: "id", Kind: tuple.Int32},
		tuple.Field{Name: "cost", Kind: tuple.Float64},
	)
	r, err := New("test", s, pool)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func row(id int32, cost float64) []tuple.Value {
	return []tuple.Value{tuple.I32(id), tuple.F64(cost)}
}

func TestNewValidation(t *testing.T) {
	disk := storage.NewDisk(64)
	pool := storage.NewBufferPool(disk, 4)
	if _, err := New("empty", tuple.MustSchema(), pool); err == nil {
		t.Error("zero-width schema accepted")
	}
	big := tuple.MustSchema(
		tuple.Field{Name: "a", Kind: tuple.Float64},
		tuple.Field{Name: "b", Kind: tuple.Float64},
		tuple.Field{Name: "c", Kind: tuple.Float64},
		tuple.Field{Name: "d", Kind: tuple.Float64},
		tuple.Field{Name: "e", Kind: tuple.Float64},
		tuple.Field{Name: "f", Kind: tuple.Float64},
		tuple.Field{Name: "g", Kind: tuple.Float64},
		tuple.Field{Name: "h", Kind: tuple.Float64},
	)
	if _, err := New("big", big, pool); err == nil {
		t.Error("tuple larger than page accepted")
	}
}

func TestInsertGet(t *testing.T) {
	r := newTestRelation(t, 256, 8)
	rid, err := r.Insert(row(7, 2.5))
	if err != nil {
		t.Fatal(err)
	}
	vals, err := r.Get(rid)
	if err != nil {
		t.Fatal(err)
	}
	if vals[0].Int() != 7 || vals[1].Float() != 2.5 {
		t.Errorf("Get = %v", vals)
	}
	if r.NumTuples() != 1 || r.Blocks() != 1 {
		t.Errorf("tuples=%d blocks=%d", r.NumTuples(), r.Blocks())
	}
	if r.Name() != "test" {
		t.Errorf("Name = %q", r.Name())
	}
}

func TestMultiPageGrowth(t *testing.T) {
	r := newTestRelation(t, 128, 16)
	per := r.SlotsPerPage()
	n := per*3 + 1
	for i := 0; i < n; i++ {
		if _, err := r.Insert(row(int32(i), float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if r.Blocks() != 4 {
		t.Errorf("blocks = %d, want 4 (slots/page = %d)", r.Blocks(), per)
	}
	if r.NumTuples() != n {
		t.Errorf("tuples = %d, want %d", r.NumTuples(), n)
	}
}

func TestScanVisitsAll(t *testing.T) {
	r := newTestRelation(t, 128, 16)
	want := map[int32]float64{}
	for i := int32(0); i < 50; i++ {
		want[i] = float64(i) * 1.5
		if _, err := r.Insert(row(i, float64(i)*1.5)); err != nil {
			t.Fatal(err)
		}
	}
	got := map[int32]float64{}
	err := r.Scan(func(_ RID, vals []tuple.Value) (bool, error) {
		got[vals[0].Int()] = vals[1].Float()
		return true, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("scan saw %d tuples, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("id %d: %v != %v", k, got[k], v)
		}
	}
}

func TestScanEarlyStop(t *testing.T) {
	r := newTestRelation(t, 128, 16)
	for i := int32(0); i < 20; i++ {
		r.Insert(row(i, 0))
	}
	count := 0
	err := r.Scan(func(_ RID, _ []tuple.Value) (bool, error) {
		count++
		return count < 5, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 5 {
		t.Errorf("visited %d, want 5", count)
	}
}

func TestScanPropagatesError(t *testing.T) {
	r := newTestRelation(t, 128, 16)
	r.Insert(row(1, 1))
	wantErr := fmt.Errorf("boom")
	err := r.Scan(func(_ RID, _ []tuple.Value) (bool, error) {
		return false, wantErr
	})
	if err != wantErr {
		t.Errorf("err = %v", err)
	}
}

func TestUpdateInPlace(t *testing.T) {
	r := newTestRelation(t, 128, 16)
	rid, _ := r.Insert(row(1, 1))
	blocksBefore := r.Blocks()
	if err := r.Update(rid, row(1, 9.5)); err != nil {
		t.Fatal(err)
	}
	vals, _ := r.Get(rid)
	if vals[1].Float() != 9.5 {
		t.Errorf("after update: %v", vals)
	}
	if r.Blocks() != blocksBefore || r.NumTuples() != 1 {
		t.Error("REPLACE changed relation shape")
	}
}

func TestUpdateField(t *testing.T) {
	r := newTestRelation(t, 128, 16)
	rid, _ := r.Insert(row(3, 1.5))
	if err := r.UpdateField(rid, 1, tuple.F64(7.25)); err != nil {
		t.Fatal(err)
	}
	vals, _ := r.Get(rid)
	if vals[0].Int() != 3 || vals[1].Float() != 7.25 {
		t.Errorf("after UpdateField: %v", vals)
	}
	if err := r.UpdateField(rid, 1, tuple.I32(1)); err == nil {
		t.Error("kind mismatch accepted")
	}
	if err := r.UpdateField(rid, 5, tuple.I32(1)); err == nil {
		t.Error("column out of range accepted")
	}
}

func TestDeleteAndReuse(t *testing.T) {
	r := newTestRelation(t, 128, 16)
	var rids []RID
	per := r.SlotsPerPage()
	for i := 0; i < per; i++ { // fill exactly one page
		rid, _ := r.Insert(row(int32(i), 0))
		rids = append(rids, rid)
	}
	if r.Blocks() != 1 {
		t.Fatalf("blocks = %d", r.Blocks())
	}
	if err := r.Delete(rids[2]); err != nil {
		t.Fatal(err)
	}
	if r.NumTuples() != per-1 {
		t.Errorf("tuples = %d", r.NumTuples())
	}
	if _, err := r.Get(rids[2]); err == nil {
		t.Error("Get of deleted tuple succeeded")
	}
	if err := r.Delete(rids[2]); err == nil {
		t.Error("double delete succeeded")
	}
	// Next insert reuses the hole instead of growing the file.
	rid, err := r.Insert(row(99, 9))
	if err != nil {
		t.Fatal(err)
	}
	if r.Blocks() != 1 {
		t.Errorf("insert after delete grew file to %d blocks", r.Blocks())
	}
	if rid != rids[2] {
		t.Errorf("hole not reused: got %v want %v", rid, rids[2])
	}
}

func TestBadRIDs(t *testing.T) {
	r := newTestRelation(t, 128, 16)
	rid, _ := r.Insert(row(1, 1))
	if _, err := r.Get(RID{Page: 99, Slot: 0}); err == nil {
		t.Error("foreign page accepted")
	}
	if _, err := r.Get(RID{Page: rid.Page, Slot: 999}); err == nil {
		t.Error("slot out of range accepted")
	}
	if err := r.Update(RID{Page: 99, Slot: 0}, row(1, 1)); err == nil {
		t.Error("update of foreign page accepted")
	}
	if err := r.Delete(RID{Page: 99, Slot: 0}); err == nil {
		t.Error("delete of foreign page accepted")
	}
}

func TestScanField(t *testing.T) {
	r := newTestRelation(t, 128, 16)
	for i := int32(0); i < 30; i++ {
		r.Insert(row(i, float64(i)))
	}
	var sum int32
	err := r.ScanField(0, func(_ RID, v tuple.Value) (bool, error) {
		sum += v.Int()
		return true, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum != 29*30/2 {
		t.Errorf("sum = %d", sum)
	}
}

func TestSurvivesPoolPressure(t *testing.T) {
	// Pool with 2 frames forces constant eviction; data must survive.
	r := newTestRelation(t, 128, 2)
	const n = 100
	rids := make([]RID, n)
	for i := 0; i < n; i++ {
		rid, err := r.Insert(row(int32(i), float64(i)*0.5))
		if err != nil {
			t.Fatal(err)
		}
		rids[i] = rid
	}
	for i, rid := range rids {
		vals, err := r.Get(rid)
		if err != nil {
			t.Fatal(err)
		}
		if vals[0].Int() != int32(i) || vals[1].Float() != float64(i)*0.5 {
			t.Fatalf("tuple %d corrupted: %v", i, vals)
		}
	}
}

// Property-style: random interleavings of insert/update/delete tracked
// against a map oracle.
func TestRandomOpsAgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	r := newTestRelation(t, 256, 4)
	oracle := map[RID][2]float64{} // rid -> (id, cost)
	var live []RID
	for op := 0; op < 2000; op++ {
		switch {
		case len(live) == 0 || rng.Intn(3) == 0: // insert
			id := rng.Int31n(1000)
			cost := rng.Float64()
			rid, err := r.Insert(row(id, cost))
			if err != nil {
				t.Fatal(err)
			}
			if _, exists := oracle[rid]; exists {
				t.Fatalf("op %d: rid %v handed out twice", op, rid)
			}
			oracle[rid] = [2]float64{float64(id), cost}
			live = append(live, rid)
		case rng.Intn(2) == 0: // update
			i := rng.Intn(len(live))
			rid := live[i]
			id := rng.Int31n(1000)
			cost := rng.Float64()
			if err := r.Update(rid, row(id, cost)); err != nil {
				t.Fatal(err)
			}
			oracle[rid] = [2]float64{float64(id), cost}
		default: // delete
			i := rng.Intn(len(live))
			rid := live[i]
			if err := r.Delete(rid); err != nil {
				t.Fatal(err)
			}
			delete(oracle, rid)
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
		}
	}
	if r.NumTuples() != len(oracle) {
		t.Fatalf("NumTuples = %d, oracle %d", r.NumTuples(), len(oracle))
	}
	seen := 0
	err := r.Scan(func(rid RID, vals []tuple.Value) (bool, error) {
		want, ok := oracle[rid]
		if !ok {
			return false, fmt.Errorf("scan produced unknown rid %v", rid)
		}
		if float64(vals[0].Int()) != want[0] || vals[1].Float() != want[1] {
			return false, fmt.Errorf("rid %v: got %v want %v", rid, vals, want)
		}
		seen++
		return true, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if seen != len(oracle) {
		t.Errorf("scan saw %d, oracle %d", seen, len(oracle))
	}
}
