// Package relation implements heap-file relations over the buffer pool:
// fixed-width tuples in slotted pages with an occupancy bitmap, supporting
// scan, append, delete and in-place update.
//
// The in-place update is the engine's REPLACE — the QUEL operation the paper
// identifies as the cost-effective way to manage the frontierSet (Section
// 5.3: "the REPLACE operation costs less than APPEND and DELETE in
// Ingres"). The experiments compare frontier management via REPLACE on a
// status attribute against APPEND/DELETE on a separate relation, so both
// must be real operations with real I/O.
//
// Relation metadata (the page directory and free list) is memory-resident;
// only tuple pages live on the simulated disk. This matches what the cost
// model charges: it accounts tuple-page I/O, not catalog I/O.
package relation

import (
	"fmt"

	"repro/internal/storage"
	"repro/internal/tuple"
)

// RID addresses one tuple: a page and a slot within it.
type RID struct {
	Page storage.PageID
	Slot uint16
}

// String formats the rid for diagnostics.
func (r RID) String() string { return fmt.Sprintf("%d:%d", r.Page, r.Slot) }

// pageHeaderSize is the per-page fixed header: a uint16 live-slot count.
const pageHeaderSize = 2

// Relation is a heap file of fixed-width tuples.
type Relation struct {
	name   string
	schema *tuple.Schema
	pool   *storage.BufferPool

	slotsPerPage int
	bitmapBytes  int

	pages     []storage.PageID
	freePages map[storage.PageID]bool // pages with at least one free slot
	tuples    int
}

// New creates an empty relation with the given name and schema over pool.
func New(name string, schema *tuple.Schema, pool *storage.BufferPool) (*Relation, error) {
	if schema.Size() == 0 {
		return nil, fmt.Errorf("relation %s: zero-width schema", name)
	}
	pageSize := pool.Disk().PageSize()
	// Solve slots*size + ceil(slots/8) + header <= pageSize.
	slots := (pageSize - pageHeaderSize) / schema.Size()
	for slots > 0 && pageHeaderSize+(slots+7)/8+slots*schema.Size() > pageSize {
		slots--
	}
	if slots == 0 {
		return nil, fmt.Errorf("relation %s: tuple size %d does not fit page size %d", name, schema.Size(), pageSize)
	}
	return &Relation{
		name:         name,
		schema:       schema,
		pool:         pool,
		slotsPerPage: slots,
		bitmapBytes:  (slots + 7) / 8,
		freePages:    make(map[storage.PageID]bool),
	}, nil
}

// Name returns the relation name.
func (r *Relation) Name() string { return r.name }

// Schema returns the tuple schema.
func (r *Relation) Schema() *tuple.Schema { return r.schema }

// NumTuples returns the live tuple count.
func (r *Relation) NumTuples() int { return r.tuples }

// Blocks returns the number of pages the relation occupies — the B_s / B_r
// quantities of the cost model.
func (r *Relation) Blocks() int { return len(r.pages) }

// SlotsPerPage returns the page capacity in tuples (the effective blocking
// factor after the occupancy bitmap).
func (r *Relation) SlotsPerPage() int { return r.slotsPerPage }

// Pages returns the ids of the pages the relation occupies, for storage
// reclamation when the relation is dropped.
func (r *Relation) Pages() []storage.PageID {
	return append([]storage.PageID(nil), r.pages...)
}

// slotOffset returns the byte offset of slot i within a page.
func (r *Relation) slotOffset(slot int) int {
	return pageHeaderSize + r.bitmapBytes + slot*r.schema.Size()
}

func bitSet(bm []byte, i int) bool { return bm[i/8]&(1<<(i%8)) != 0 }
func setBit(bm []byte, i int)      { bm[i/8] |= 1 << (i % 8) }
func clearBit(bm []byte, i int)    { bm[i/8] &^= 1 << (i % 8) }

// pageLive reads the live-count header.
func pageLive(data []byte) int { return int(data[0]) | int(data[1])<<8 }

// setPageLive writes the live-count header.
func setPageLive(data []byte, n int) { data[0] = byte(n); data[1] = byte(n >> 8) }

// Insert appends vals and returns the new tuple's rid. It fills holes left
// by deletions before extending the file.
func (r *Relation) Insert(vals []tuple.Value) (RID, error) {
	var pageID storage.PageID
	var frame *storage.Frame
	var err error

	// Prefer a page with a known free slot.
	found := false
	for id := range r.freePages {
		pageID = id
		found = true
		break
	}
	if found {
		frame, err = r.pool.Get(pageID)
		if err != nil {
			return RID{}, err
		}
	} else {
		frame, err = r.pool.NewPage()
		if err != nil {
			return RID{}, err
		}
		pageID = frame.ID()
		r.pages = append(r.pages, pageID)
		r.freePages[pageID] = true
	}
	defer r.pool.Unpin(frame)

	data := frame.Data()
	bm := data[pageHeaderSize : pageHeaderSize+r.bitmapBytes]
	slot := -1
	for i := 0; i < r.slotsPerPage; i++ {
		if !bitSet(bm, i) {
			slot = i
			break
		}
	}
	if slot < 0 {
		// Free-list bookkeeping was stale; repair and retry once.
		delete(r.freePages, pageID)
		return r.Insert(vals)
	}
	if err := r.schema.Encode(data[r.slotOffset(slot):], vals); err != nil {
		return RID{}, fmt.Errorf("relation %s: %w", r.name, err)
	}
	setBit(bm, slot)
	live := pageLive(data) + 1
	setPageLive(data, live)
	if live == r.slotsPerPage {
		delete(r.freePages, pageID)
	}
	frame.MarkDirty()
	r.tuples++
	return RID{Page: pageID, Slot: uint16(slot)}, nil
}

// validate checks that rid names a live slot of this relation; it returns
// the pinned frame on success (caller unpins).
func (r *Relation) validate(rid RID) (*storage.Frame, error) {
	if int(rid.Slot) >= r.slotsPerPage {
		return nil, fmt.Errorf("relation %s: slot %d out of range", r.name, rid.Slot)
	}
	owns := false
	for _, p := range r.pages {
		if p == rid.Page {
			owns = true
			break
		}
	}
	if !owns {
		return nil, fmt.Errorf("relation %s: page %d not in relation", r.name, rid.Page)
	}
	frame, err := r.pool.Get(rid.Page)
	if err != nil {
		return nil, err
	}
	bm := frame.Data()[pageHeaderSize : pageHeaderSize+r.bitmapBytes]
	if !bitSet(bm, int(rid.Slot)) {
		r.pool.Unpin(frame)
		return nil, fmt.Errorf("relation %s: rid %s is not a live tuple", r.name, rid)
	}
	return frame, nil
}

// Get reads the tuple at rid.
func (r *Relation) Get(rid RID) ([]tuple.Value, error) {
	frame, err := r.validate(rid)
	if err != nil {
		return nil, err
	}
	defer r.pool.Unpin(frame)
	return r.schema.Decode(frame.Data()[r.slotOffset(int(rid.Slot)):])
}

// Update overwrites the tuple at rid in place — the REPLACE operation.
func (r *Relation) Update(rid RID, vals []tuple.Value) error {
	frame, err := r.validate(rid)
	if err != nil {
		return err
	}
	defer r.pool.Unpin(frame)
	if err := r.schema.Encode(frame.Data()[r.slotOffset(int(rid.Slot)):], vals); err != nil {
		return fmt.Errorf("relation %s: %w", r.name, err)
	}
	frame.MarkDirty()
	return nil
}

// Delete removes the tuple at rid, leaving a hole later inserts may fill.
func (r *Relation) Delete(rid RID) error {
	frame, err := r.validate(rid)
	if err != nil {
		return err
	}
	defer r.pool.Unpin(frame)
	data := frame.Data()
	bm := data[pageHeaderSize : pageHeaderSize+r.bitmapBytes]
	clearBit(bm, int(rid.Slot))
	setPageLive(data, pageLive(data)-1)
	frame.MarkDirty()
	r.freePages[rid.Page] = true
	r.tuples--
	return nil
}

// Scan calls fn for every live tuple in file order. fn returns false to stop
// early. The value slice passed to fn is reused between calls; copy it to
// retain it.
func (r *Relation) Scan(fn func(rid RID, vals []tuple.Value) (bool, error)) error {
	vals := make([]tuple.Value, r.schema.NumFields())
	for _, pageID := range r.pages {
		frame, err := r.pool.Get(pageID)
		if err != nil {
			return err
		}
		data := frame.Data()
		bm := data[pageHeaderSize : pageHeaderSize+r.bitmapBytes]
		for slot := 0; slot < r.slotsPerPage; slot++ {
			if !bitSet(bm, slot) {
				continue
			}
			if err := r.schema.DecodeInto(data[r.slotOffset(slot):], vals); err != nil {
				r.pool.Unpin(frame)
				return err
			}
			cont, err := fn(RID{Page: pageID, Slot: uint16(slot)}, vals)
			if err != nil || !cont {
				r.pool.Unpin(frame)
				return err
			}
		}
		r.pool.Unpin(frame)
	}
	return nil
}

// ScanField is a projection scan: it decodes only the given column,
// visiting every live tuple.
func (r *Relation) ScanField(col int, fn func(rid RID, v tuple.Value) (bool, error)) error {
	for _, pageID := range r.pages {
		frame, err := r.pool.Get(pageID)
		if err != nil {
			return err
		}
		data := frame.Data()
		bm := data[pageHeaderSize : pageHeaderSize+r.bitmapBytes]
		for slot := 0; slot < r.slotsPerPage; slot++ {
			if !bitSet(bm, slot) {
				continue
			}
			v, err := r.schema.DecodeField(data[r.slotOffset(slot):], col)
			if err != nil {
				r.pool.Unpin(frame)
				return err
			}
			cont, err := fn(RID{Page: pageID, Slot: uint16(slot)}, v)
			if err != nil || !cont {
				r.pool.Unpin(frame)
				return err
			}
		}
		r.pool.Unpin(frame)
	}
	return nil
}

// UpdateField rewrites a single column of the tuple at rid in place,
// reading the old tuple and re-encoding only that field's bytes.
func (r *Relation) UpdateField(rid RID, col int, v tuple.Value) error {
	vals, err := r.Get(rid)
	if err != nil {
		return err
	}
	if col < 0 || col >= len(vals) {
		return fmt.Errorf("relation %s: column %d out of range", r.name, col)
	}
	if vals[col].Kind != v.Kind {
		return fmt.Errorf("relation %s: column %d wants %s, got %s", r.name, col, vals[col].Kind, v.Kind)
	}
	vals[col] = v
	return r.Update(rid, vals)
}
