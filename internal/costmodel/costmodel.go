// Package costmodel implements the algebraic cost model of Section 4 of the
// paper: the per-step cost formulas of Table 2 (iterative algorithm) and
// Table 3 (Dijkstra and A* version 3), evaluated with the Table 4A
// parameters. As in the paper, the model does not predict iteration counts
// algebraically — "since it is difficult to algebraically predict the number
// of iterations, we extract it from the trace of the actual execution" — so
// Estimate takes the iteration count from a run's trace and returns the
// predicted cost in abstract time units, regenerating Table 4B.
package costmodel

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/join"
	"repro/internal/optimizer"
)

// Workload sizes the relations for one model evaluation.
type Workload struct {
	// Nodes is |R|, the node count (900 for the 30×30 grid).
	Nodes int
	// Edges is |S|, the directed edge count (3480 for the 30×30 grid).
	Edges int
	// AvgDegree is |A|, the average adjacency-list length (4 on grids).
	AvgDegree int
}

// GridWorkload returns the workload of a k×k grid benchmark.
func GridWorkload(k int) Workload {
	return Workload{Nodes: k * k, Edges: 4 * k * (k - 1), AvgDegree: 4}
}

// Breakdown itemises a prediction: the setup steps C1..C4 once, the
// per-iteration cost Γ, and the total T = setup + iterations·Γ.
type Breakdown struct {
	Algorithm    string
	Setup        []Step
	PerIteration []Step
	Iterations   int
	SetupCost    float64
	IterCost     float64 // Γ_average
	Total        float64
}

// Step is one named cost term.
type Step struct {
	Name string
	Cost float64
}

// String renders the breakdown for reports.
func (b Breakdown) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s: total %.1f units = setup %.2f + %d iterations × Γ %.4f\n",
		b.Algorithm, b.Total, b.SetupCost, b.Iterations, b.IterCost)
	for _, s := range b.Setup {
		fmt.Fprintf(&sb, "  setup %-34s %8.3f\n", s.Name, s.Cost)
	}
	for _, s := range b.PerIteration {
		fmt.Fprintf(&sb, "  per-iter %-31s %8.4f\n", s.Name, s.Cost)
	}
	return sb.String()
}

// Model couples parameters with a workload.
type Model struct {
	P optimizer.Params
	W Workload
	// NestedJoinOnly applies the paper's Section 4.3 illustration
	// assumption — "all the algorithms choose the nested-join approach for
	// Step 7" — instead of letting F pick the cheapest strategy. The two
	// settings bracket the paper's published per-iteration cost.
	NestedJoinOnly bool
}

// New builds a model; zero params select Table 4A.
func New(p optimizer.Params, w Workload) Model {
	if p == (optimizer.Params{}) {
		p = optimizer.DefaultParams()
	}
	return Model{P: p, W: w}
}

// joinCost prices the adjacency join under the model's join policy.
func (m Model) joinCost(in optimizer.JoinInput) float64 {
	if m.NestedJoinOnly {
		c, err := optimizer.JoinCost(join.NestedLoop, m.P, in)
		if err != nil {
			panic(err) // inputs are non-negative by construction
		}
		return c
	}
	return optimizer.F(m.P, in)
}

// blocksR returns B_r = ⌈|R| / Bf_r⌉.
func (m Model) blocksR() int { return optimizer.Blocks(m.W.Nodes, m.P.BfR) }

// blocksS returns B_s = ⌈|S| / Bf_s⌉.
func (m Model) blocksS() int { return optimizer.Blocks(m.W.Edges, m.P.BfS) }

// setupSteps is C1..C4 shared by all three algorithms: create R, initialise
// it with all nodes, index and sort it, and mark the start node.
func (m Model) setupSteps() []Step {
	br := float64(m.blocksR())
	bs := float64(m.blocksS())
	return []Step{
		// C1: creating the resultant relation R.
		{"C1 create R", m.P.CreateCost},
		// C2: initialising R with all nodes: read S once, write R.
		{"C2 init R", bs*m.P.TRead + br*m.P.TWrite},
		// C3: indexing and sorting the node relation.
		{"C3 index+sort R", 2 * (br*math.Log2(math.Max(br, 2)) + br) * m.P.TUpdate},
		// C4: mark the start node current and count current nodes.
		{"C4 mark source", float64(m.P.ISAMLevels+1)*m.P.TUpdate + br*m.P.TRead},
	}
}

// IterativeEstimate evaluates Table 2 for the given iteration count B(L).
// The per-iteration current-set size is estimated as |R| / B(L) with join
// selectivity 1/|R|, as in the paper's Section 4.3 example.
func (m Model) IterativeEstimate(iterations int) Breakdown {
	br := float64(m.blocksR())
	bs := m.blocksS()
	if iterations < 1 {
		iterations = 1
	}
	// Average current-set size per iteration and the resulting join output.
	currentTuples := m.W.Nodes / iterations
	if currentTuples < 1 {
		currentTuples = 1
	}
	bc := optimizer.Blocks(currentTuples, m.P.BfR)
	// B_join = (JS · |C| · |S|) / Bf_rs with JS = 1/|R|.
	joinTuples := int(float64(currentTuples) * float64(m.W.Edges) / float64(m.W.Nodes))
	bjoin := optimizer.Blocks(joinTuples, m.P.BfRS)

	joinCost := m.joinCost(optimizer.JoinInput{
		B1: bc, B2: bs, B3: bjoin, OuterTuples: currentTuples,
	})
	perIter := []Step{
		// C5: fetch all current nodes from R.
		{"C5 fetch current", br * m.P.TRead},
		// C6: join to get the neighbours of all current nodes.
		{"C6 join F(Bc,Bs,Bjoin)", joinCost},
		// C7: update status and path of nodes in R.
		{"C7 update R", 2 * br * m.P.TUpdate},
		// C8: scan R to count current nodes.
		{"C8 count current", br * m.P.TRead},
	}
	return m.assemble("iterative", iterations, perIter)
}

// BestFirstEstimate evaluates Table 3 for Dijkstra or A* version 3 — the
// per-iteration shape is identical; only the iteration count (extracted
// from the trace) differs between the two algorithms.
func (m Model) BestFirstEstimate(algorithm string, iterations int) Breakdown {
	br := float64(m.blocksR())
	bs := m.blocksS()
	// One current node per iteration: B_join = |A| / Bf_rs.
	bjoin := optimizer.Blocks(m.W.AvgDegree, m.P.BfRS)
	joinCost := m.joinCost(optimizer.JoinInput{
		B1: 1, B2: bs, B3: bjoin, OuterTuples: 1,
	})
	perIter := []Step{
		// C5: select the minimum-cost open node — a scan of R.
		{"C5 select min (scan R)", br * m.P.TRead},
		// C6: mark it current via the primary index.
		{"C6 mark current", float64(m.P.ISAMLevels+1) * m.P.TUpdate},
		// C7: join the current node with S for its adjacency list.
		{"C7 join F(1,Bs,Bjoin)", joinCost},
		// C8: relax |A| neighbours — index descent plus REPLACE each.
		{"C8 relax neighbors", float64(m.W.AvgDegree) * (float64(m.P.ISAMLevels)*m.P.TRead + m.P.TUpdate)},
		// C9: close the current node.
		{"C9 close current", float64(m.P.ISAMLevels+1) * m.P.TUpdate},
	}
	return m.assemble(algorithm, iterations, perIter)
}

// DijkstraEstimate evaluates Table 3 with Dijkstra's trace count Z(n, L).
func (m Model) DijkstraEstimate(iterations int) Breakdown {
	return m.BestFirstEstimate("dijkstra", iterations)
}

// AStarV3Estimate evaluates Table 3 with A* version 3's trace count.
func (m Model) AStarV3Estimate(iterations int) Breakdown {
	return m.BestFirstEstimate("astar-v3", iterations)
}

func (m Model) assemble(algorithm string, iterations int, perIter []Step) Breakdown {
	b := Breakdown{
		Algorithm:    algorithm,
		Setup:        m.setupSteps(),
		PerIteration: perIter,
		Iterations:   iterations,
	}
	for _, s := range b.Setup {
		b.SetupCost += s.Cost
	}
	for _, s := range perIter {
		b.IterCost += s.Cost
	}
	b.Total = b.SetupCost + float64(iterations)*b.IterCost
	return b
}
