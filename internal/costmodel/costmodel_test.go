package costmodel

import (
	"math"
	"strings"
	"testing"

	"repro/internal/optimizer"
)

func model30() Model {
	return New(optimizer.Params{}, GridWorkload(30))
}

func TestGridWorkload(t *testing.T) {
	w := GridWorkload(30)
	if w.Nodes != 900 || w.Edges != 3480 || w.AvgDegree != 4 {
		t.Errorf("30×30 workload = %+v (Table 4A says 900 nodes, 3480 edges)", w)
	}
}

func TestBlockCounts(t *testing.T) {
	m := model30()
	if m.blocksR() != 4 { // 900 / 256
		t.Errorf("B_r = %d, want 4", m.blocksR())
	}
	if m.blocksS() != 28 { // 3480 / 128
		t.Errorf("B_s = %d, want 28", m.blocksS())
	}
}

func TestSetupStepsShape(t *testing.T) {
	m := model30()
	steps := m.setupSteps()
	if len(steps) != 4 {
		t.Fatalf("setup has %d steps, want 4 (C1..C4)", len(steps))
	}
	if steps[0].Cost != 0.5 {
		t.Errorf("C1 = %v, want I = 0.5", steps[0].Cost)
	}
	for _, s := range steps {
		if s.Cost <= 0 || math.IsNaN(s.Cost) {
			t.Errorf("step %s cost %v", s.Name, s.Cost)
		}
	}
}

// Table 4B reproduction: with iteration counts near the paper's Table 6
// values, the model's estimates must preserve the paper's ordering —
// Dijkstra most expensive on every path, A* v3 cheapest on the horizontal
// path, iterative flat across paths — and per-iteration cost Γ for the
// best-first algorithms in the same ballpark as the paper's implied
// ≈ 2.16 units/iteration.
func TestTable4BShape(t *testing.T) {
	m := model30()
	// Paper Table 6 iteration counts (30×30, 20% variance).
	dijkstra := map[string]int{"horizontal": 488, "semi": 767, "diag": 899}
	astar := map[string]int{"horizontal": 29, "semi": 407, "diag": 838}
	const iterativeIters = 59

	it := m.IterativeEstimate(iterativeIters)
	for path := range dijkstra {
		d := m.DijkstraEstimate(dijkstra[path])
		a := m.AStarV3Estimate(astar[path])
		if a.Total >= d.Total {
			t.Errorf("%s: A* %v not below Dijkstra %v", path, a.Total, d.Total)
		}
		if path == "horizontal" && a.Total >= it.Total {
			t.Errorf("horizontal: A* %v not below iterative %v (paper: 66.7 vs 176.9)", a.Total, it.Total)
		}
		if path == "diag" && d.Total <= it.Total {
			t.Errorf("diag: Dijkstra %v not above iterative %v (paper: 1941.2 vs 176.9)", d.Total, it.Total)
		}
	}
	// Γ for best-first should be within 2× of the paper's ≈ 2.16.
	gamma := m.DijkstraEstimate(1).IterCost
	if gamma < 1 || gamma > 4.5 {
		t.Errorf("best-first Γ = %v units/iteration; paper implies ≈ 2.16", gamma)
	}
}

func TestNestedJoinOnlyBracketsPaperGamma(t *testing.T) {
	// The paper's example (Section 4.3) assumes nested-loop joins; its
	// implied Γ ≈ 2.16 units/iteration. Our F-optimised Γ undershoots and
	// the forced nested-loop Γ overshoots — the two must bracket 2.16.
	free := model30()
	forced := model30()
	forced.NestedJoinOnly = true
	gFree := free.DijkstraEstimate(1).IterCost
	gForced := forced.DijkstraEstimate(1).IterCost
	if gForced <= gFree {
		t.Fatalf("forced nested-loop Γ %v not above optimised Γ %v", gForced, gFree)
	}
	const paperGamma = 2.16
	if !(gFree <= paperGamma && paperGamma <= gForced) {
		t.Errorf("paper Γ %.2f not bracketed by [%v, %v]", paperGamma, gFree, gForced)
	}
}

func TestEstimatesScaleLinearlyInIterations(t *testing.T) {
	m := model30()
	d100 := m.DijkstraEstimate(100)
	d200 := m.DijkstraEstimate(200)
	extra := d200.Total - d100.Total
	if math.Abs(extra-100*d100.IterCost) > 1e-9 {
		t.Errorf("non-linear scaling: +%v for +100 iterations at Γ=%v", extra, d100.IterCost)
	}
	if d100.SetupCost != d200.SetupCost {
		t.Error("setup cost varies with iterations")
	}
}

func TestIterativeCurrentSetSizing(t *testing.T) {
	m := model30()
	// More iterations → smaller average current set → cheaper join per
	// iteration (or equal once block-rounded).
	few := m.IterativeEstimate(10)
	many := m.IterativeEstimate(100)
	if many.IterCost > few.IterCost+1e-9 {
		t.Errorf("Γ grew with iterations: %v → %v", few.IterCost, many.IterCost)
	}
	// Degenerate iteration counts are clamped rather than dividing by zero.
	zero := m.IterativeEstimate(0)
	if math.IsNaN(zero.Total) || zero.Total <= 0 {
		t.Errorf("zero-iteration estimate = %v", zero.Total)
	}
}

func TestBreakdownString(t *testing.T) {
	m := model30()
	s := m.AStarV3Estimate(838).String()
	for _, want := range []string{"astar-v3", "C5", "C9", "838 iterations"} {
		if !strings.Contains(s, want) {
			t.Errorf("breakdown string missing %q:\n%s", want, s)
		}
	}
}

func TestGraphSizeScaling(t *testing.T) {
	// Table 5's trend: diagonal-path cost grows with grid size for the
	// best-first algorithms (iterations ≈ n−1).
	prev := 0.0
	for _, k := range []int{10, 20, 30} {
		m := New(optimizer.Params{}, GridWorkload(k))
		est := m.DijkstraEstimate(k*k - 1)
		if est.Total <= prev {
			t.Errorf("k=%d: total %v not above smaller grid's %v", k, est.Total, prev)
		}
		prev = est.Total
	}
}

func TestDefaultParamsApplied(t *testing.T) {
	m := New(optimizer.Params{}, GridWorkload(10))
	if m.P.TRead != 0.035 {
		t.Error("zero params did not default to Table 4A")
	}
	custom := optimizer.DefaultParams()
	custom.TRead = 1
	m2 := New(custom, GridWorkload(10))
	if m2.P.TRead != 1 {
		t.Error("explicit params ignored")
	}
}
