package dbsearch

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/search"
)

// Property: on random digraphs — including disconnected ones and nodes with
// no outgoing edges — every DB-resident algorithm agrees with the in-memory
// oracle on reachability and optimal cost (the A* variants use admissible
// estimators here because edge costs dominate the coordinate geometry).
func TestDBAlgorithmsOnRandomGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(404))
	for trial := 0; trial < 8; trial++ {
		n := 5 + rng.Intn(30)
		b := graph.NewBuilder(n, 4*n)
		for i := 0; i < n; i++ {
			// Coordinates in a small box with costs well above euclidean
			// distances: both geometric estimators stay admissible.
			b.AddNode(rng.Float64(), rng.Float64())
		}
		for e := 0; e < 3*n; e++ {
			u := graph.NodeID(rng.Intn(n))
			v := graph.NodeID(rng.Intn(n))
			if u == v {
				continue
			}
			b.AddEdge(u, v, 2+rng.Float64()*5)
		}
		g := b.MustBuild()
		m, err := OpenMap(g, Options{})
		if err != nil {
			t.Fatal(err)
		}

		for probe := 0; probe < 4; probe++ {
			s := graph.NodeID(rng.Intn(n))
			d := graph.NodeID(rng.Intn(n))
			oracle, err := search.Dijkstra(g, s, d)
			if err != nil {
				t.Fatal(err)
			}
			configs := []struct {
				name      string
				iterative bool
				cfg       Config
			}{
				{"iterative", true, Config{}},
				{"dijkstra", false, DijkstraConfig()},
				{"astar-v1", false, AStarV1Config()},
				{"astar-v2", false, AStarV2Config()},
				{"astar-v3", false, AStarV3Config()},
			}
			for _, c := range configs {
				var res Result
				if c.iterative {
					res, err = m.RunIterative(s, d, c.cfg)
				} else {
					res, err = m.RunBestFirst(s, d, c.cfg)
				}
				if err != nil {
					t.Fatalf("trial %d %s (%d→%d): %v", trial, c.name, s, d, err)
				}
				if res.Found != oracle.Found {
					t.Fatalf("trial %d %s (%d→%d): found=%v oracle=%v", trial, c.name, s, d, res.Found, oracle.Found)
				}
				if !res.Found {
					continue
				}
				// Manhattan can overestimate here (|dx|+|dy| ≤ 2 < min cost
				// 2? No: coordinates in [0,1], so manhattan ≤ 2 ≤ min edge
				// cost — admissible). All must be optimal.
				if math.Abs(res.Cost-oracle.Cost) > 1e-9 {
					t.Fatalf("trial %d %s (%d→%d): cost %v, oracle %v", trial, c.name, s, d, res.Cost, oracle.Cost)
				}
				if !res.Path.ValidIn(g) {
					t.Fatalf("trial %d %s: invalid path", trial, c.name)
				}
			}
		}
	}
}
