package dbsearch

import (
	"math"
	"testing"

	"repro/internal/estimator"
	"repro/internal/graph"
	"repro/internal/gridgen"
	"repro/internal/join"
	"repro/internal/search"
)

// openGrid loads a grid into a MapDB.
func openGrid(t *testing.T, k int, model gridgen.CostModel, seed int64) *MapDB {
	t.Helper()
	g := gridgen.MustGenerate(gridgen.Config{K: k, Model: model, Seed: seed})
	m, err := OpenMap(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestOpenMapLoadsRelations(t *testing.T) {
	m := openGrid(t, 5, gridgen.Uniform, 0)
	n, err := m.DB().Relation("n")
	if err != nil {
		t.Fatal(err)
	}
	if n.NumTuples() != 25 {
		t.Errorf("node master has %d tuples", n.NumTuples())
	}
	s, err := m.DB().Relation("s")
	if err != nil {
		t.Fatal(err)
	}
	if s.NumTuples() != m.Graph().NumEdges() {
		t.Errorf("edge relation has %d tuples, want %d", s.NumTuples(), m.Graph().NumEdges())
	}
	if _, err := m.DB().ISAM("n", "id"); err != nil {
		t.Error("node master not ISAM-indexed")
	}
	if _, err := m.DB().HashIndex("s", "begin"); err != nil {
		t.Error("edge relation not hash-indexed")
	}
}

// Every DB algorithm must agree with the in-memory oracle on cost.
func TestDBAlgorithmsMatchInMemory(t *testing.T) {
	const k = 8
	m := openGrid(t, k, gridgen.Variance, 42)
	g := m.Graph()

	pairs := []struct {
		name string
		kind gridgen.PairKind
	}{
		{"horizontal", gridgen.Horizontal},
		{"semi-diagonal", gridgen.SemiDiagonal},
		{"diagonal", gridgen.Diagonal},
	}
	for _, pair := range pairs {
		s, d := gridgen.Pair(k, pair.kind, 0)
		oracle, err := search.Dijkstra(g, s, d)
		if err != nil {
			t.Fatal(err)
		}

		runs := []struct {
			name string
			run  func() (Result, error)
		}{
			{"iterative", func() (Result, error) { return m.RunIterative(s, d, Config{Name: "iterative"}) }},
			{"dijkstra", func() (Result, error) { return m.RunBestFirst(s, d, DijkstraConfig()) }},
			{"astar-v1", func() (Result, error) { return m.RunBestFirst(s, d, AStarV1Config()) }},
			{"astar-v2", func() (Result, error) { return m.RunBestFirst(s, d, AStarV2Config()) }},
			{"astar-v3", func() (Result, error) { return m.RunBestFirst(s, d, AStarV3Config()) }},
		}
		for _, rn := range runs {
			res, err := rn.run()
			if err != nil {
				t.Fatalf("%s/%s: %v", pair.name, rn.name, err)
			}
			if !res.Found {
				t.Fatalf("%s/%s: no path", pair.name, rn.name)
			}
			// Euclidean underestimates on a ≥1-cost grid, manhattan is
			// admissible too (cost ≥ 1 per unit step): all must be optimal.
			if math.Abs(res.Cost-oracle.Cost) > 1e-9 {
				t.Errorf("%s/%s: cost %v, oracle %v", pair.name, rn.name, res.Cost, oracle.Cost)
			}
			if !res.Path.ValidIn(g) {
				t.Errorf("%s/%s: invalid path", pair.name, rn.name)
			}
			if c, err := res.Path.CostIn(g); err != nil || math.Abs(c-res.Cost) > 1e-9 {
				t.Errorf("%s/%s: path costs %v (%v), reported %v", pair.name, rn.name, c, err, res.Cost)
			}
			if res.PageRequests == 0 || res.TimeUnits <= 0 {
				t.Errorf("%s/%s: no I/O recorded (%d requests, %v units)", pair.name, rn.name, res.PageRequests, res.TimeUnits)
			}
			if len(res.Steps) == 0 {
				t.Errorf("%s/%s: no step trace", pair.name, rn.name)
			}
		}
	}
}

// DB iteration counts must match the in-memory engine's: same selection
// rule, same tie-breaks.
func TestDBIterationCountsMatchInMemory(t *testing.T) {
	const k = 10
	m := openGrid(t, k, gridgen.Variance, 1993)
	g := m.Graph()
	s, d := gridgen.Pair(k, gridgen.Diagonal, 0)

	dijMem, _ := search.Dijkstra(g, s, d)
	dijDB, err := m.RunBestFirst(s, d, DijkstraConfig())
	if err != nil {
		t.Fatal(err)
	}
	if dijDB.Iterations != dijMem.Trace.Iterations {
		t.Errorf("dijkstra: DB %d iterations, in-memory %d", dijDB.Iterations, dijMem.Trace.Iterations)
	}

	astMem, _ := search.AStar(g, s, d, estimator.Manhattan())
	astDB, err := m.RunBestFirst(s, d, AStarV3Config())
	if err != nil {
		t.Fatal(err)
	}
	if astDB.Iterations != astMem.Trace.Iterations {
		t.Errorf("astar-v3: DB %d iterations, in-memory %d", astDB.Iterations, astMem.Trace.Iterations)
	}

	itMem, _ := search.Iterative(g, s, d)
	itDB, err := m.RunIterative(s, d, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if itDB.Iterations != itMem.Trace.Iterations {
		t.Errorf("iterative: DB %d rounds, in-memory %d", itDB.Iterations, itMem.Trace.Iterations)
	}
}

func TestDBNoPath(t *testing.T) {
	// Two disconnected segments.
	b := graph.NewBuilder(4, 2)
	for i := 0; i < 4; i++ {
		b.AddNode(float64(i), 0)
	}
	b.AddEdge(0, 1, 1)
	b.AddEdge(2, 3, 1)
	g := b.MustBuild()
	m, err := OpenMap(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range []Config{DijkstraConfig(), AStarV1Config(), AStarV2Config(), AStarV3Config()} {
		res, err := m.RunBestFirst(0, 3, cfg)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		if res.Found || !math.IsInf(res.Cost, 1) {
			t.Errorf("%s: found=%v cost=%v across components", cfg.Name, res.Found, res.Cost)
		}
	}
	res, err := m.RunIterative(0, 3, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Found {
		t.Error("iterative found a path across components")
	}
}

func TestDBSourceEqualsDest(t *testing.T) {
	m := openGrid(t, 4, gridgen.Uniform, 0)
	res, err := m.RunBestFirst(5, 5, DijkstraConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found || res.Cost != 0 || res.Path.Len() != 0 {
		t.Errorf("s==d: %+v", res)
	}
	res, err = m.RunIterative(5, 5, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found || res.Cost != 0 {
		t.Errorf("iterative s==d: cost %v", res.Cost)
	}
}

func TestDBInvalidEndpoints(t *testing.T) {
	m := openGrid(t, 4, gridgen.Uniform, 0)
	if _, err := m.RunBestFirst(-1, 3, DijkstraConfig()); err == nil {
		t.Error("negative source accepted")
	}
	if _, err := m.RunIterative(0, 99, Config{}); err == nil {
		t.Error("out-of-range destination accepted")
	}
}

// The paper's core claim, reproduced on the relational engine: for short
// paths the estimator-based algorithms do far less I/O than iterative; for
// the worst-case diagonal the iterative algorithm is competitive.
func TestDBEarlyTerminationIOContrast(t *testing.T) {
	const k = 12
	m := openGrid(t, k, gridgen.Variance, 7)
	// Short hop in the middle of the grid.
	s := gridgen.NodeAt(k, 6, 6)
	d := gridgen.NodeAt(k, 6, 7)
	ast, err := m.RunBestFirst(s, d, AStarV3Config())
	if err != nil {
		t.Fatal(err)
	}
	it, err := m.RunIterative(s, d, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if ast.TimeUnits*2 > it.TimeUnits {
		t.Errorf("short path: A* units %.1f not ≪ iterative %.1f", ast.TimeUnits, it.TimeUnits)
	}
	if ast.Iterations != 1 {
		t.Errorf("adjacent pair took %d expansions", ast.Iterations)
	}
}

// Version 1 (separate frontier relation, incremental R) beats version 2 on
// short paths (no init of the full R) and loses on long ones — Figure 12's
// crossover.
func TestV1VersusV2Crossover(t *testing.T) {
	const k = 12
	m := openGrid(t, k, gridgen.Uniform, 0)
	// Short path: v1 should win (no full-R initialization).
	s, d := gridgen.NodeAt(k, 0, 0), gridgen.NodeAt(k, 0, 2)
	v1, err := m.RunBestFirst(s, d, AStarV1Config())
	if err != nil {
		t.Fatal(err)
	}
	v2, err := m.RunBestFirst(s, d, AStarV2Config())
	if err != nil {
		t.Fatal(err)
	}
	if v1.TimeUnits >= v2.TimeUnits {
		t.Errorf("short path: v1 units %.1f not below v2 %.1f", v1.TimeUnits, v2.TimeUnits)
	}
	// Long diagonal: v1's frontier churn should cost more.
	s, d = gridgen.Pair(k, gridgen.Diagonal, 0)
	v1, err = m.RunBestFirst(s, d, AStarV1Config())
	if err != nil {
		t.Fatal(err)
	}
	v2, err = m.RunBestFirst(s, d, AStarV2Config())
	if err != nil {
		t.Fatal(err)
	}
	if v1.TimeUnits <= v2.TimeUnits {
		t.Errorf("diagonal: v1 units %.1f not above v2 %.1f", v1.TimeUnits, v2.TimeUnits)
	}
}

// Forcing each join strategy must not change the answer, only the I/O.
func TestForcedJoinStrategiesAgree(t *testing.T) {
	const k = 6
	m := openGrid(t, k, gridgen.Variance, 3)
	s, d := gridgen.Pair(k, gridgen.SemiDiagonal, 0)
	var baseline Result
	for i, strat := range join.Strategies() {
		st := strat
		cfg := DijkstraConfig()
		cfg.ForceJoin = &st
		res, err := m.RunBestFirst(s, d, cfg)
		if err != nil {
			t.Fatalf("%v: %v", strat, err)
		}
		if i == 0 {
			baseline = res
			continue
		}
		if math.Abs(res.Cost-baseline.Cost) > 1e-9 || res.Iterations != baseline.Iterations {
			t.Errorf("%v: cost %v / %d iters, baseline %v / %d",
				strat, res.Cost, res.Iterations, baseline.Cost, baseline.Iterations)
		}
	}
}

func TestReopensUnderInadmissibleEstimator(t *testing.T) {
	// Weighted manhattan is inadmissible; on a variance grid A* may reopen
	// closed nodes but must still return a valid (possibly suboptimal)
	// path no better than optimal.
	const k = 8
	m := openGrid(t, k, gridgen.Variance, 11)
	s, d := gridgen.Pair(k, gridgen.Diagonal, 0)
	opt, _ := search.Dijkstra(m.Graph(), s, d)
	cfg := AStarV3Config()
	cfg.Weight = 3
	res, err := m.RunBestFirst(s, d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found || !res.Path.ValidIn(m.Graph()) {
		t.Fatal("weighted A* failed to produce a valid path")
	}
	if res.Cost < opt.Cost-1e-9 {
		t.Errorf("cost %v below optimum %v", res.Cost, opt.Cost)
	}
	if res.Cost > 3*opt.Cost+1e-9 {
		t.Errorf("cost %v above weight bound %v", res.Cost, 3*opt.Cost)
	}
}

func TestStepTraceShape(t *testing.T) {
	m := openGrid(t, 6, gridgen.Uniform, 0)
	s, d := gridgen.Pair(6, gridgen.Diagonal, 0)
	res, err := m.RunBestFirst(s, d, DijkstraConfig())
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, st := range res.Steps {
		names[st.Name] = true
	}
	for _, want := range []string{"1-2 create+init R", "3 index R", "4 mark source", "5 select min (scan R)", "7 join adjacency", "8 relax neighbors", "9 close current", "10 build path"} {
		if !names[want] {
			t.Errorf("missing step %q in trace (have %v)", want, names)
		}
	}
	// Per-iteration steps must account for real I/O, and the selection
	// scans must cost at least one page request per iteration.
	var sel, total int64
	for _, st := range res.Steps {
		total += st.PageRequests
		if st.Name == "5 select min (scan R)" {
			sel = st.PageRequests
		}
	}
	if sel < int64(res.Iterations) {
		t.Errorf("selection scans %d page requests over %d iterations", sel, res.Iterations)
	}
	if total <= sel {
		t.Errorf("total page requests %d not above selection's %d", total, sel)
	}
}

func TestMultipleRunsShareOneMap(t *testing.T) {
	m := openGrid(t, 6, gridgen.Uniform, 0)
	s, d := gridgen.Pair(6, gridgen.Diagonal, 0)
	first, err := m.RunBestFirst(s, d, AStarV3Config())
	if err != nil {
		t.Fatal(err)
	}
	second, err := m.RunBestFirst(s, d, AStarV3Config())
	if err != nil {
		t.Fatal(err)
	}
	if first.Cost != second.Cost || first.Iterations != second.Iterations {
		t.Errorf("repeat run diverged: %v/%d vs %v/%d",
			first.Cost, first.Iterations, second.Cost, second.Iterations)
	}
}
