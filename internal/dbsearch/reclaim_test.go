package dbsearch

import (
	"testing"

	"repro/internal/gridgen"
)

// Repeated runs against one MapDB must not grow the simulated disk: each
// run's temporary relations are dropped and their pages reused.
func TestRunsReclaimTemporaryPages(t *testing.T) {
	m := openGrid(t, 10, gridgen.Variance, 5)
	s, d := gridgen.Pair(10, gridgen.SemiDiagonal, 0)

	// Warm up one run of each flavour so steady-state allocation is
	// established (the first run high-waters the device).
	if _, err := m.RunBestFirst(s, d, DijkstraConfig()); err != nil {
		t.Fatal(err)
	}
	if _, err := m.RunBestFirst(s, d, AStarV1Config()); err != nil {
		t.Fatal(err)
	}
	if _, err := m.RunIterative(s, d, Config{}); err != nil {
		t.Fatal(err)
	}
	disk := m.DB().Pool().Disk()
	highWater := disk.NumPages()

	for i := 0; i < 5; i++ {
		if _, err := m.RunBestFirst(s, d, AStarV3Config()); err != nil {
			t.Fatal(err)
		}
		if _, err := m.RunBestFirst(s, d, AStarV1Config()); err != nil {
			t.Fatal(err)
		}
		if _, err := m.RunIterative(s, d, Config{}); err != nil {
			t.Fatal(err)
		}
	}
	if grown := disk.NumPages() - highWater; grown > 0 {
		t.Errorf("device grew by %d pages over repeated runs; temporaries leak", grown)
	}
	// Only the map relations (and their indexes) remain in the catalog.
	for _, name := range m.DB().Relations() {
		if name != "n" && name != "s" {
			t.Errorf("leftover temporary relation %q", name)
		}
	}
}
