package dbsearch

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/index"
	"repro/internal/relation"
	"repro/internal/tuple"
)

// RunIterative executes the breadth-first iterative algorithm (Figure 1)
// against the map database, decomposed into the cost steps of Table 2:
// each round fetches every "current" tuple, joins the whole current set
// with S, updates improved neighbours to open, closes the expanded
// tuples, promotes open to current, and counts the survivors.
//
// Unlike the best-first runs, the iterative algorithm cannot terminate at
// the destination: it loops until the current set is empty (Lemma 1), so
// its work is insensitive to path length — the paper's core observation.
func (m *MapDB) RunIterative(s, d graph.NodeID, cfg Config) (Result, error) {
	if err := m.validatePair(s, d); err != nil {
		return Result{}, err
	}
	m.runs++
	rName := fmt.Sprintf("r_run%d", m.runs)
	m.db.ResetTrace()
	io0 := m.db.IOStats()
	var res Result

	// Steps 1–2 (Table 2, C1–C2): create R and load every node.
	// The working relation is per-run; reclaim its pages when done.
	defer func() {
		if _, lookErr := m.db.Relation(rName); lookErr == nil {
			if dropErr := m.db.DropRelation(rName); dropErr != nil {
				panic(fmt.Sprintf("dbsearch: dropping %s: %v", rName, dropErr))
			}
		}
	}()
	var r *relation.Relation
	err := m.db.Step("1-2 create+init R", func() error {
		var err error
		r, err = m.db.CreateRelation(rName, rSchema())
		if err != nil {
			return err
		}
		nodes, err := m.db.Relation(relNodes)
		if err != nil {
			return err
		}
		return nodes.Scan(func(_ relation.RID, vals []tuple.Value) (bool, error) {
			_, err := r.Insert([]tuple.Value{
				vals[0], vals[1], vals[2],
				tuple.I32(statusNull), tuple.I32(-1), tuple.F64(math.Inf(1)),
			})
			return true, err
		})
	})
	if err != nil {
		return Result{}, err
	}

	// Step 3 (C3): index R by node id.
	var ix *index.ISAM
	err = m.db.Step("3 index R", func() error {
		var err error
		ix, err = m.db.BuildISAM(rName, "id")
		return err
	})
	if err != nil {
		return Result{}, err
	}
	reader := isamReader{r: r, ix: ix}

	// Step 4 (C4): mark the start node current with zero cost.
	err = m.db.Step("4 mark source current", func() error {
		rid, ok, err := ix.Lookup(int32(s))
		if err != nil || !ok {
			return fmt.Errorf("dbsearch: source %d missing (%v)", s, err)
		}
		vals, err := r.Get(rid)
		if err != nil {
			return err
		}
		vals[rStatus] = tuple.I32(statusCurrent)
		vals[rCost] = tuple.F64(0)
		return r.Update(rid, vals)
	})
	if err != nil {
		return Result{}, err
	}

	currentCount := 1
	for currentCount > 0 {
		res.Iterations++

		// Step 5 (C5): fetch all current tuples. The join's left filter
		// performs this scan; here we only need the count, already known
		// from the previous round's step 8.

		// Step 6 (C6): join the current set with S — the optimizer picks
		// the strategy from the current-set size, exactly the F(B_c, B_s,
		// B_join) choice of the cost model.
		strategy, err := m.planAdjacencyJoin(rName, currentCount, &cfg)
		if err != nil {
			return Result{}, err
		}
		var edges []edgeOut
		err = m.db.Step("6 join adjacency", func() error {
			var err error
			edges, err = m.fetchAdjacency(strategy, rName, func(vals []tuple.Value) bool {
				return vals[rStatus].Int() == statusCurrent
			})
			return err
		})
		if err != nil {
			return Result{}, err
		}

		// Step 7 (C7): relax — improved neighbours become open and record
		// their new path. tailCost was captured at join time, so all
		// relaxations in a round use the round-start labels (true BFS
		// semantics).
		err = m.db.Step("7 update neighbors", func() error {
			for _, e := range edges {
				rid, ok, err := ix.Lookup(e.head)
				if err != nil || !ok {
					return fmt.Errorf("dbsearch: neighbor %d missing (%v)", e.head, err)
				}
				vals, err := r.Get(rid)
				if err != nil {
					return err
				}
				nd := e.tailCost + e.cost
				if nd >= vals[rCost].Float() {
					continue
				}
				if vals[rStatus].Int() == statusClosed {
					res.Reopens++
				}
				vals[rStatus] = tuple.I32(statusOpen)
				vals[rPath] = tuple.I32(e.tail)
				vals[rCost] = tuple.F64(nd)
				if err := r.Update(rid, vals); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return Result{}, err
		}

		// Step 8 (C8): close the expanded tuples, promote open to current,
		// and count the new current set (the termination test).
		newCount := 0
		err = m.db.Step("8 flip status + count", func() error {
			type flip struct {
				rid relation.RID
				to  int32
			}
			var flips []flip
			err := r.Scan(func(rid relation.RID, vals []tuple.Value) (bool, error) {
				switch vals[rStatus].Int() {
				case statusCurrent:
					flips = append(flips, flip{rid, statusClosed})
				case statusOpen:
					flips = append(flips, flip{rid, statusCurrent})
					newCount++
				}
				return true, nil
			})
			if err != nil {
				return err
			}
			for _, fl := range flips {
				if err := r.UpdateField(fl.rid, rStatus, tuple.I32(fl.to)); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return Result{}, err
		}
		currentCount = newCount
	}

	// Read off the destination's label.
	var destVals []tuple.Value
	err = m.db.Step("9 read destination", func() error {
		var err error
		destVals, err = reader.lookup(int32(d))
		return err
	})
	if err != nil {
		return Result{}, err
	}
	res.Cost = destVals[rCost].Float()
	res.Found = !math.IsInf(res.Cost, 1)
	if res.Found {
		err = m.db.Step("10 build path", func() error {
			p, err := buildPath(reader, s, d, m.g.NumNodes()+1)
			res.Path = p
			return err
		})
		if err != nil {
			return Result{}, err
		}
	} else {
		res.Cost = math.Inf(1)
	}
	res.IO = m.db.IOStats().Sub(io0)
	res.Steps = m.db.Trace()
	m.finishResult(&res)
	return res, nil
}
