package dbsearch

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/index"
	"repro/internal/relation"
	"repro/internal/tuple"
)

// isamReader fetches R tuples by node id through the primary ISAM index.
type isamReader struct {
	r  *relation.Relation
	ix *index.ISAM
}

func (ir isamReader) lookup(id int32) ([]tuple.Value, error) {
	rid, ok, err := ir.ix.Lookup(id)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("dbsearch: node %d not in working relation", id)
	}
	return ir.r.Get(rid)
}

// scanReader fetches R tuples by node id with a relation scan — the access
// path of A* version 1's dynamically-built (hence unindexed) working
// relation. This scan is exactly the "adjustment of the index on the part
// of relation R" penalty Section 5.3 attributes to version 1: as the
// explored set grows, every neighbour lookup rereads the whole relation.
type scanReader struct {
	r *relation.Relation
}

// find returns the rid and tuple for node id, or (nil, nil, nil) if absent.
func (sr scanReader) find(id int32) (*relation.RID, []tuple.Value, error) {
	var foundRID *relation.RID
	var foundVals []tuple.Value
	err := sr.r.Scan(func(rid relation.RID, vals []tuple.Value) (bool, error) {
		if vals[rID].Int() == id {
			foundRID = &rid
			foundVals = append([]tuple.Value(nil), vals...)
			return false, nil
		}
		return true, nil
	})
	return foundRID, foundVals, err
}

func (sr scanReader) lookup(id int32) ([]tuple.Value, error) {
	rid, vals, err := sr.find(id)
	if err != nil {
		return nil, err
	}
	if rid == nil {
		return nil, fmt.Errorf("dbsearch: node %d not in working relation", id)
	}
	return vals, nil
}

// RunBestFirst executes Dijkstra or an A* version (per cfg) against the map
// database, following the paper's Figures 2 and 3 decomposed into the cost
// steps of Table 3.
func (m *MapDB) RunBestFirst(s, d graph.NodeID, cfg Config) (Result, error) {
	if err := m.validatePair(s, d); err != nil {
		return Result{}, err
	}
	if cfg.Frontier == SeparateRelation {
		return m.runDynamic(s, d, cfg)
	}
	return m.runStatus(s, d, cfg)
}

// runStatus is the status-attribute implementation (Dijkstra, A* v2, v3):
// R is preloaded with every node, indexed with ISAM, and all frontier
// bookkeeping happens through REPLACE on the status field.
func (m *MapDB) runStatus(s, d graph.NodeID, cfg Config) (Result, error) {
	m.runs++
	rName := fmt.Sprintf("r_run%d", m.runs)
	m.db.ResetTrace()
	io0 := m.db.IOStats()
	var res Result

	// Steps 1–2 (Table 3 / C1, C2): create the working relation and load
	// every node from the master with status null and infinite path cost.
	// The working relation is per-run; reclaim its pages when done.
	defer func() {
		if _, lookErr := m.db.Relation(rName); lookErr == nil {
			if dropErr := m.db.DropRelation(rName); dropErr != nil {
				panic(fmt.Sprintf("dbsearch: dropping %s: %v", rName, dropErr))
			}
		}
	}()
	var r *relation.Relation
	err := m.db.Step("1-2 create+init R", func() error {
		var err error
		r, err = m.db.CreateRelation(rName, rSchema())
		if err != nil {
			return err
		}
		nodes, err := m.db.Relation(relNodes)
		if err != nil {
			return err
		}
		return nodes.Scan(func(_ relation.RID, vals []tuple.Value) (bool, error) {
			_, err := r.Insert([]tuple.Value{
				vals[0], vals[1], vals[2],
				tuple.I32(statusNull), tuple.I32(-1), tuple.F64(math.Inf(1)),
			})
			return true, err
		})
	})
	if err != nil {
		return Result{}, err
	}

	// Step 3 (C3): index the working relation by node id.
	var ix *index.ISAM
	err = m.db.Step("3 index R", func() error {
		var err error
		ix, err = m.db.BuildISAM(rName, "id")
		return err
	})
	if err != nil {
		return Result{}, err
	}
	reader := isamReader{r: r, ix: ix}

	// Step 4 (C4): mark the source open with zero cost.
	err = m.db.Step("4 mark source", func() error {
		rid, ok, err := ix.Lookup(int32(s))
		if err != nil || !ok {
			return fmt.Errorf("dbsearch: source %d missing (%v)", s, err)
		}
		vals, err := r.Get(rid)
		if err != nil {
			return err
		}
		vals[rStatus] = tuple.I32(statusOpen)
		vals[rCost] = tuple.F64(0)
		return r.Update(rid, vals)
	})
	if err != nil {
		return Result{}, err
	}

	dx, dy, err := m.destCoords(d)
	if err != nil {
		return Result{}, err
	}

	found := false
	var finalCost float64
	for {
		// Step 5 (C5): select the open node minimising pathcost + estimate
		// by scanning R — the relational frontier selection of Section 5.3.
		// Ties prefer the deeper node, then the smaller id, matching the
		// in-memory engine so iteration counts line up.
		var (
			bestRID  relation.RID
			bestID   int32
			bestDist float64
			bestF    = math.Inf(1)
			any      bool
		)
		err = m.db.Step("5 select min (scan R)", func() error {
			return r.Scan(func(rid relation.RID, vals []tuple.Value) (bool, error) {
				if vals[rStatus].Int() != statusOpen {
					return true, nil
				}
				dist := vals[rCost].Float()
				f := dist + estimate(cfg.Estimator, cfg.Weight, vals[rX].Float(), vals[rY].Float(), dx, dy)
				better := !any || f < bestF ||
					(f == bestF && dist > bestDist) ||
					(f == bestF && dist == bestDist && vals[rID].Int() < bestID)
				if better {
					any = true
					bestRID, bestID, bestDist, bestF = rid, vals[rID].Int(), dist, f
				}
				return true, nil
			})
		})
		if err != nil {
			return Result{}, err
		}
		if !any {
			break // frontier empty: no path
		}

		// Step 6 (C6): mark the selected node current (REPLACE).
		err = m.db.Step("6 mark current", func() error {
			return r.UpdateField(bestRID, rStatus, tuple.I32(statusCurrent))
		})
		if err != nil {
			return Result{}, err
		}

		if bestID == int32(d) {
			// Termination (Lemmas 2 and 3): the destination was selected.
			err = m.db.Step("9 close current", func() error {
				return r.UpdateField(bestRID, rStatus, tuple.I32(statusClosed))
			})
			if err != nil {
				return Result{}, err
			}
			found = true
			finalCost = bestDist
			break
		}
		res.Iterations++

		// Step 7 (C7): fetch the adjacency list via the optimizer-chosen
		// join of the current tuple with S.
		strategy, err := m.planAdjacencyJoin(rName, 1, &cfg)
		if err != nil {
			return Result{}, err
		}
		var edges []edgeOut
		err = m.db.Step("7 join adjacency", func() error {
			var err error
			edges, err = m.fetchAdjacency(strategy, rName, func(vals []tuple.Value) bool {
				return vals[rStatus].Int() == statusCurrent
			})
			return err
		})
		if err != nil {
			return Result{}, err
		}

		// Step 8 (C8): relax each out-edge — index lookup plus REPLACE when
		// the path improves.
		err = m.db.Step("8 relax neighbors", func() error {
			for _, e := range edges {
				rid, ok, err := ix.Lookup(e.head)
				if err != nil || !ok {
					return fmt.Errorf("dbsearch: neighbor %d missing (%v)", e.head, err)
				}
				vals, err := r.Get(rid)
				if err != nil {
					return err
				}
				nd := e.tailCost + e.cost
				if nd >= vals[rCost].Float() {
					continue
				}
				status := vals[rStatus].Int()
				if status == statusClosed {
					if !cfg.AllowReopen {
						continue // Figure 2: explored nodes stay settled
					}
					res.Reopens++
				}
				vals[rStatus] = tuple.I32(statusOpen)
				vals[rPath] = tuple.I32(e.tail)
				vals[rCost] = tuple.F64(nd)
				if err := r.Update(rid, vals); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return Result{}, err
		}

		// Step 9 (C9): close the expanded node.
		err = m.db.Step("9 close current", func() error {
			return r.UpdateField(bestRID, rStatus, tuple.I32(statusClosed))
		})
		if err != nil {
			return Result{}, err
		}
	}

	res.Found = found
	res.Cost = math.Inf(1)
	if found {
		res.Cost = finalCost
		// Step 10: reconstruct the path by chasing path pointers.
		err = m.db.Step("10 build path", func() error {
			p, err := buildPath(reader, s, d, m.g.NumNodes()+1)
			res.Path = p
			return err
		})
		if err != nil {
			return Result{}, err
		}
	}
	res.IO = m.db.IOStats().Sub(io0)
	res.Steps = m.db.Trace()
	m.finishResult(&res)
	return res, nil
}

// runDynamic is A* version 1: the frontier lives in a separate relation F
// maintained by APPEND and DELETE, and the working relation R is built
// incrementally (no up-front load, hash index instead of static ISAM).
func (m *MapDB) runDynamic(s, d graph.NodeID, cfg Config) (Result, error) {
	m.runs++
	rName := fmt.Sprintf("r_run%d", m.runs)
	fName := fmt.Sprintf("f_run%d", m.runs)
	m.db.ResetTrace()
	io0 := m.db.IOStats()
	var res Result

	// Version 1 builds R incrementally, so R has no primary index: every
	// lookup is a scan. That is the version's defining cost structure —
	// cheap to start (no full-R initialisation, no index build), expensive
	// as the explored set grows.
	// The working and frontier relations are per-run; reclaim their pages.
	defer func() {
		for _, name := range []string{rName, fName} {
			if _, lookErr := m.db.Relation(name); lookErr == nil {
				if dropErr := m.db.DropRelation(name); dropErr != nil {
					panic(fmt.Sprintf("dbsearch: dropping %s: %v", name, dropErr))
				}
			}
		}
	}()
	var r, f *relation.Relation
	err := m.db.Step("1 create R+F", func() error {
		var err error
		if r, err = m.db.CreateRelation(rName, rSchema()); err != nil {
			return err
		}
		f, err = m.db.CreateRelation(fName, fSchema())
		return err
	})
	if err != nil {
		return Result{}, err
	}
	reader := scanReader{r: r}

	dx, dy, err := m.destCoords(d)
	if err != nil {
		return Result{}, err
	}
	nodeIx, err := m.db.ISAM(relNodes, "id")
	if err != nil {
		return Result{}, err
	}
	nodes, err := m.db.Relation(relNodes)
	if err != nil {
		return Result{}, err
	}
	// masterCoords fetches a node's coordinates from the node master when
	// the node is first discovered.
	masterCoords := func(id int32) (float64, float64, error) {
		rid, ok, err := nodeIx.Lookup(id)
		if err != nil || !ok {
			return 0, 0, fmt.Errorf("dbsearch: node %d not in master (%v)", id, err)
		}
		vals, err := nodes.Get(rid)
		if err != nil {
			return 0, 0, err
		}
		return vals[1].Float(), vals[2].Float(), nil
	}

	// Append the source to R and F.
	err = m.db.Step("2 append source", func() error {
		x, y, err := masterCoords(int32(s))
		if err != nil {
			return err
		}
		if _, err := m.db.Insert(rName, []tuple.Value{
			tuple.I32(int32(s)), tuple.F64(x), tuple.F64(y),
			tuple.I32(statusOpen), tuple.I32(-1), tuple.F64(0),
		}); err != nil {
			return err
		}
		_, err = m.db.Insert(fName, []tuple.Value{
			tuple.I32(int32(s)), tuple.F64(estimate(cfg.Estimator, cfg.Weight, x, y, dx, dy)),
		})
		return err
	})
	if err != nil {
		return Result{}, err
	}

	// replaceFrontier updates node id's F entry to fv: DELETE the old entry
	// if present, APPEND the new one — the index-maintenance churn that
	// makes version 1 lose on long paths (Section 5.3.1).
	replaceFrontier := func(id int32, fv float64) error {
		var old *relation.RID
		err := f.Scan(func(rid relation.RID, vals []tuple.Value) (bool, error) {
			if vals[0].Int() == id {
				old = &rid
				return false, nil
			}
			return true, nil
		})
		if err != nil {
			return err
		}
		if old != nil {
			if err := m.db.Delete(fName, *old); err != nil {
				return err
			}
		}
		_, err = m.db.Insert(fName, []tuple.Value{tuple.I32(id), tuple.F64(fv)})
		return err
	}

	found := false
	var finalCost float64
	for {
		// Select the minimum-f frontier entry by scanning F.
		var (
			bestRID relation.RID
			bestID  int32
			bestF   = math.Inf(1)
			any     bool
		)
		err = m.db.Step("3 select min (scan F)", func() error {
			return f.Scan(func(rid relation.RID, vals []tuple.Value) (bool, error) {
				fv := vals[1].Float()
				if !any || fv < bestF || (fv == bestF && vals[0].Int() < bestID) {
					any = true
					bestRID, bestID, bestF = rid, vals[0].Int(), fv
				}
				return true, nil
			})
		})
		if err != nil {
			return Result{}, err
		}
		if !any {
			break
		}

		// Remove the selection from F (DELETE) and mark it current in R.
		var uVals []tuple.Value
		err = m.db.Step("4 delete from F + mark current", func() error {
			if err := m.db.Delete(fName, bestRID); err != nil {
				return err
			}
			urid, vals, err := reader.find(bestID)
			if err != nil {
				return err
			}
			if urid == nil {
				return fmt.Errorf("dbsearch: frontier node %d missing from R", bestID)
			}
			uVals = vals
			uVals[rStatus] = tuple.I32(statusCurrent)
			return r.Update(*urid, uVals)
		})
		if err != nil {
			return Result{}, err
		}
		uDist := uVals[rCost].Float()

		if bestID == int32(d) {
			err = m.db.Step("8 close current", func() error {
				uVals[rStatus] = tuple.I32(statusClosed)
				return updateByScan(reader, bestID, uVals)
			})
			if err != nil {
				return Result{}, err
			}
			found = true
			finalCost = uDist
			break
		}
		res.Iterations++

		// Adjacency join: the single current tuple of R with S.
		strategy, err := m.planAdjacencyJoin(rName, 1, &cfg)
		if err != nil {
			return Result{}, err
		}
		var edges []edgeOut
		err = m.db.Step("5 join adjacency", func() error {
			var err error
			edges, err = m.fetchAdjacency(strategy, rName, func(vals []tuple.Value) bool {
				return vals[rStatus].Int() == statusCurrent
			})
			return err
		})
		if err != nil {
			return Result{}, err
		}

		err = m.db.Step("6 relax neighbors", func() error {
			for _, e := range edges {
				nd := uDist + e.cost
				vrid, vals, err := reader.find(e.head)
				if err != nil {
					return err
				}
				if vrid == nil {
					// First discovery: APPEND to R and F.
					x, y, err := masterCoords(e.head)
					if err != nil {
						return err
					}
					if _, err := m.db.Insert(rName, []tuple.Value{
						tuple.I32(e.head), tuple.F64(x), tuple.F64(y),
						tuple.I32(statusOpen), tuple.I32(e.tail), tuple.F64(nd),
					}); err != nil {
						return err
					}
					fv := nd + estimate(cfg.Estimator, cfg.Weight, x, y, dx, dy)
					if _, err := m.db.Insert(fName, []tuple.Value{tuple.I32(e.head), tuple.F64(fv)}); err != nil {
						return err
					}
					continue
				}
				if nd >= vals[rCost].Float() {
					continue
				}
				status := vals[rStatus].Int()
				if status == statusClosed {
					if !cfg.AllowReopen {
						continue
					}
					res.Reopens++
				}
				vals[rStatus] = tuple.I32(statusOpen)
				vals[rPath] = tuple.I32(e.tail)
				vals[rCost] = tuple.F64(nd)
				if err := r.Update(*vrid, vals); err != nil {
					return err
				}
				fv := nd + estimate(cfg.Estimator, cfg.Weight, vals[rX].Float(), vals[rY].Float(), dx, dy)
				if err := replaceFrontier(e.head, fv); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return Result{}, err
		}

		err = m.db.Step("8 close current", func() error {
			// Reload: the relax step may have improved the current node
			// itself through a self-loop; closing must keep latest values.
			vals, err := reader.lookup(bestID)
			if err != nil {
				return err
			}
			if vals[rStatus].Int() == statusCurrent {
				vals[rStatus] = tuple.I32(statusClosed)
				return updateByScan(reader, bestID, vals)
			}
			return nil
		})
		if err != nil {
			return Result{}, err
		}
	}

	res.Found = found
	res.Cost = math.Inf(1)
	if found {
		res.Cost = finalCost
		err = m.db.Step("9 build path", func() error {
			p, err := buildPath(reader, s, d, m.g.NumNodes()+1)
			res.Path = p
			return err
		})
		if err != nil {
			return Result{}, err
		}
	}
	res.IO = m.db.IOStats().Sub(io0)
	res.Steps = m.db.Trace()
	m.finishResult(&res)
	return res, nil
}

// updateByScan rewrites the R tuple for node id located by scanning the
// unindexed working relation.
func updateByScan(sr scanReader, id int32, vals []tuple.Value) error {
	rid, _, err := sr.find(id)
	if err != nil {
		return err
	}
	if rid == nil {
		return fmt.Errorf("dbsearch: node %d missing from R", id)
	}
	return sr.r.Update(*rid, vals)
}
