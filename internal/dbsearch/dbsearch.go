// Package dbsearch implements the paper's path-computation algorithms the
// way the paper actually ran them: as database programs against relations,
// not as main-memory graph algorithms. It is the Go counterpart of the
// EQUEL/INGRES implementations of Section 5, built on the internal/dbms
// engine, and it reports the same quantities the paper measures — iteration
// counts and block I/O per algorithm step (cost Tables 2 and 3).
//
// Physical design (Section 4):
//
//	N (node master): id, x, y                      — read-only map data
//	S (edge relation): begin, end, cost            — read-only, hash index on begin
//	R (working node relation): id, x, y, status, path, pathcost
//	F (frontier relation, A* version 1 only): id, fvalue
//
// The frontierSet and exploredSet are represented by R.status ∈ {null,
// open, closed, current}, or by the separate relation F for A* version 1.
// Updates use in-place REPLACE; version 1 additionally pays APPEND/DELETE
// maintenance on F — the design decision Section 5.3 evaluates.
package dbsearch

import (
	"fmt"
	"math"

	"repro/internal/dbms"
	"repro/internal/graph"
	"repro/internal/join"
	"repro/internal/optimizer"
	"repro/internal/storage"
	"repro/internal/tuple"
)

// Node status codes stored in R.status.
const (
	statusNull    int32 = 0 // never reached
	statusOpen    int32 = 1 // in the frontierSet
	statusClosed  int32 = 2 // in the exploredSet
	statusCurrent int32 = 3 // being expanded this iteration
)

// Column indexes of the working relation R.
const (
	rID = iota
	rX
	rY
	rStatus
	rPath
	rCost
)

// Column indexes of the edge relation S.
const (
	sBegin = iota
	sEnd
	sCost
)

// EstimatorKind selects the estimator function used by the best-first
// algorithms, computed from the coordinates stored in R (Section 5.3).
type EstimatorKind int

const (
	// EstimatorZero disables the estimator: pure Dijkstra.
	EstimatorZero EstimatorKind = iota
	// EstimatorEuclidean is straight-line distance (A* versions 1 and 2).
	EstimatorEuclidean
	// EstimatorManhattan is L1 distance (A* version 3).
	EstimatorManhattan
)

// String names the estimator for reports.
func (e EstimatorKind) String() string {
	switch e {
	case EstimatorZero:
		return "zero"
	case EstimatorEuclidean:
		return "euclidean"
	case EstimatorManhattan:
		return "manhattan"
	default:
		return fmt.Sprintf("EstimatorKind(%d)", int(e))
	}
}

// FrontierStyle selects how the frontierSet is represented (Section 5.3).
type FrontierStyle int

const (
	// StatusAttribute stores the frontier as R.status = open and selects by
	// scanning R — the REPLACE-based design of A* versions 2 and 3.
	StatusAttribute FrontierStyle = iota
	// SeparateRelation keeps an explicit frontier relation F maintained
	// with APPEND and DELETE, and builds R incrementally instead of
	// preloading it — A* version 1.
	SeparateRelation
)

// String names the style for reports.
func (f FrontierStyle) String() string {
	switch f {
	case StatusAttribute:
		return "status-attribute"
	case SeparateRelation:
		return "separate-relation"
	default:
		return fmt.Sprintf("FrontierStyle(%d)", int(f))
	}
}

// Config selects an algorithm variant for RunBestFirst.
type Config struct {
	Name      string
	Frontier  FrontierStyle
	Estimator EstimatorKind
	// Weight scales the estimate (weighted A*); 0 means 1.
	Weight float64
	// AllowReopen applies the paper's Figure 3 semantics: an improved
	// closed node re-enters the frontier. Dijkstra (Figure 2) keeps false.
	AllowReopen bool
	// ForceJoin, when non-nil, bypasses the optimizer and always uses the
	// given strategy for the adjacency join (ablation).
	ForceJoin *join.Strategy
}

// DijkstraConfig is the Figure 2 algorithm: no estimator, no reopening.
func DijkstraConfig() Config {
	return Config{Name: "dijkstra", Estimator: EstimatorZero}
}

// AStarV1Config is A* version 1: frontier as a separate relation, euclidean
// estimator, R built incrementally.
func AStarV1Config() Config {
	return Config{Name: "astar-v1", Frontier: SeparateRelation, Estimator: EstimatorEuclidean, AllowReopen: true}
}

// AStarV2Config is A* version 2: status-attribute frontier, euclidean
// estimator.
func AStarV2Config() Config {
	return Config{Name: "astar-v2", Estimator: EstimatorEuclidean, AllowReopen: true}
}

// AStarV3Config is A* version 3: status-attribute frontier, manhattan
// estimator — the paper's headline A*.
func AStarV3Config() Config {
	return Config{Name: "astar-v3", Estimator: EstimatorManhattan, AllowReopen: true}
}

// Result reports one database-resident run.
type Result struct {
	// Found, Cost, Path: as in the in-memory search package.
	Found bool
	Cost  float64
	Path  graph.Path
	// Iterations counts frontier selections that expanded a node
	// (Dijkstra/A*) or frontier rounds (Iterative), the paper's tables'
	// quantity.
	Iterations int
	// Reopens counts closed nodes that re-entered the frontier.
	Reopens int
	// IO is the physical block traffic of the run (setup of the temporary
	// relations plus all iterations; the shared map data is excluded).
	IO storage.DiskStats
	// PageRequests is logical page I/O: buffer-pool requests regardless of
	// caching — the quantity the paper's cost model charges t_read for.
	PageRequests int64
	// Steps is the per-step breakdown, aligned with cost Tables 2 and 3.
	Steps []dbms.StepTrace
	// TimeUnits converts PageRequests and physical writes into the cost
	// model's units (reads at t_read, writes at t_write).
	TimeUnits float64
}

// Options configures the engine a MapDB runs on.
type Options struct {
	// PageSize in bytes; 0 → 4096 (Table 4A).
	PageSize int
	// PoolFrames; 0 → 16, deliberately small so the paper-scale relations
	// do not fit entirely in memory and block I/O stays observable.
	PoolFrames int
}

// MapDB is a loaded map database: the read-only node master N and edge
// relation S with their indexes, ready to run algorithms against. One MapDB
// serves many runs; each run creates and abandons its own temporary
// relations.
type MapDB struct {
	db   *dbms.Database
	g    *graph.Graph
	runs int
}

const (
	relNodes = "n"
	relEdges = "s"
)

// OpenMap loads graph g into a fresh engine.
func OpenMap(g *graph.Graph, opts Options) (*MapDB, error) {
	frames := opts.PoolFrames
	if frames == 0 {
		frames = 16
	}
	db := dbms.New(dbms.Options{PageSize: opts.PageSize, PoolFrames: frames})

	nodeSchema := tuple.MustSchema(
		tuple.Field{Name: "id", Kind: tuple.Int32},
		tuple.Field{Name: "x", Kind: tuple.Float64},
		tuple.Field{Name: "y", Kind: tuple.Float64},
	)
	if _, err := db.CreateRelation(relNodes, nodeSchema); err != nil {
		return nil, err
	}
	edgeSchema := tuple.MustSchema(
		tuple.Field{Name: "begin", Kind: tuple.Int32},
		tuple.Field{Name: "end", Kind: tuple.Int32},
		tuple.Field{Name: "cost", Kind: tuple.Float64},
	)
	if _, err := db.CreateRelation(relEdges, edgeSchema); err != nil {
		return nil, err
	}
	for u := graph.NodeID(0); int(u) < g.NumNodes(); u++ {
		p := g.Point(u)
		if _, err := db.Insert(relNodes, []tuple.Value{tuple.I32(int32(u)), tuple.F64(p.X), tuple.F64(p.Y)}); err != nil {
			return nil, err
		}
	}
	if _, err := db.BuildISAM(relNodes, "id"); err != nil {
		return nil, err
	}
	// Bucket count ~ one bucket per page of postings keeps chains short.
	buckets := g.NumNodes()/8 + 1
	if _, err := db.CreateHashIndex(relEdges, "begin", buckets); err != nil {
		return nil, err
	}
	for _, e := range g.Edges() {
		if _, err := db.Insert(relEdges, []tuple.Value{
			tuple.I32(int32(e.Tail)), tuple.I32(int32(e.Head)), tuple.F64(e.Cost),
		}); err != nil {
			return nil, err
		}
	}
	return &MapDB{db: db, g: g}, nil
}

// DB exposes the underlying engine (stats, traces).
func (m *MapDB) DB() *dbms.Database { return m.db }

// Graph returns the loaded graph.
func (m *MapDB) Graph() *graph.Graph { return m.g }

// rSchema is the working relation's schema.
func rSchema() *tuple.Schema {
	return tuple.MustSchema(
		tuple.Field{Name: "id", Kind: tuple.Int32},
		tuple.Field{Name: "x", Kind: tuple.Float64},
		tuple.Field{Name: "y", Kind: tuple.Float64},
		tuple.Field{Name: "status", Kind: tuple.Int32},
		tuple.Field{Name: "path", Kind: tuple.Int32},
		tuple.Field{Name: "pathcost", Kind: tuple.Float64},
	)
}

// fSchema is A* version 1's frontier relation schema.
func fSchema() *tuple.Schema {
	return tuple.MustSchema(
		tuple.Field{Name: "id", Kind: tuple.Int32},
		tuple.Field{Name: "fvalue", Kind: tuple.Float64},
	)
}

// estimate computes the configured estimator from R-tuple coordinates.
func estimate(kind EstimatorKind, weight, x, y, dx, dy float64) float64 {
	if weight == 0 {
		weight = 1
	}
	switch kind {
	case EstimatorEuclidean:
		ddx, ddy := x-dx, y-dy
		return weight * math.Sqrt(ddx*ddx+ddy*ddy)
	case EstimatorManhattan:
		return weight * (math.Abs(x-dx) + math.Abs(y-dy))
	default:
		return 0
	}
}

// validatePair checks endpoints against the loaded graph.
func (m *MapDB) validatePair(s, d graph.NodeID) error {
	n := graph.NodeID(m.g.NumNodes())
	if s < 0 || s >= n {
		return fmt.Errorf("dbsearch: source %d out of range [0,%d)", s, n)
	}
	if d < 0 || d >= n {
		return fmt.Errorf("dbsearch: destination %d out of range [0,%d)", d, n)
	}
	return nil
}

// destCoords reads the destination's coordinates from the node master — the
// estimator's fixed reference point.
func (m *MapDB) destCoords(d graph.NodeID) (float64, float64, error) {
	ix, err := m.db.ISAM(relNodes, "id")
	if err != nil {
		return 0, 0, err
	}
	rid, ok, err := ix.Lookup(int32(d))
	if err != nil || !ok {
		return 0, 0, fmt.Errorf("dbsearch: destination %d not in node master (%v)", d, err)
	}
	n, err := m.db.Relation(relNodes)
	if err != nil {
		return 0, 0, err
	}
	vals, err := n.Get(rid)
	if err != nil {
		return 0, 0, err
	}
	return vals[1].Float(), vals[2].Float(), nil
}

// finishResult converts raw runtime measurements into a Result, charging
// logical reads at t_read and physical writes at t_write.
func (m *MapDB) finishResult(res *Result) {
	p := m.db.Params()
	var reqs, writes int64
	for _, st := range res.Steps {
		reqs += st.PageRequests
		writes += st.Writes
	}
	res.PageRequests = reqs
	res.TimeUnits = float64(reqs)*p.TRead + float64(writes)*p.TWrite
}

// buildPath reconstructs the path from the working relation's path
// pointers: repeated primary-index lookups from the destination back to the
// source, exactly the pointer traversal Section 4 describes.
func buildPath(r pathReader, s, d graph.NodeID, maxLen int) (graph.Path, error) {
	if s == d {
		return graph.Path{Nodes: []graph.NodeID{s}}, nil
	}
	rev := []graph.NodeID{d}
	at := d
	for at != s {
		vals, err := r.lookup(int32(at))
		if err != nil {
			return graph.Path{}, err
		}
		prev := graph.NodeID(vals[rPath].Int())
		if prev == graph.NodeID(-1) {
			return graph.Path{}, fmt.Errorf("dbsearch: broken path chain at node %d", at)
		}
		rev = append(rev, prev)
		if len(rev) > maxLen {
			return graph.Path{}, fmt.Errorf("dbsearch: path chain longer than %d nodes", maxLen)
		}
		at = prev
	}
	nodes := make([]graph.NodeID, len(rev))
	for i, u := range rev {
		nodes[len(rev)-1-i] = u
	}
	return graph.Path{Nodes: nodes}, nil
}

// pathReader abstracts "fetch R tuple by node id" over the two R designs
// (ISAM for preloaded R, hash index for dynamic R).
type pathReader interface {
	lookup(id int32) ([]tuple.Value, error)
}

// planAdjacencyJoin asks the optimizer for the adjacency-fetch strategy:
// outer = the current node tuples of R, inner = S, result ≈ |current|·|A|
// tuples (JS·|C|·|S| in the paper's notation).
func (m *MapDB) planAdjacencyJoin(rName string, currentTuples int, cfg *Config) (join.Strategy, error) {
	if cfg != nil && cfg.ForceJoin != nil {
		return *cfg.ForceJoin, nil
	}
	avgDegree := 0
	if m.g.NumNodes() > 0 {
		avgDegree = m.g.NumEdges() / m.g.NumNodes()
	}
	choice, err := m.db.PlanJoin(rName, relEdges, currentTuples, currentTuples*(avgDegree+1))
	if err != nil {
		return 0, err
	}
	return choice.Strategy, nil
}

// edgeOut is one adjacency-join output row: the expanding node, its path
// cost at join time, and the out-edge's head and cost.
type edgeOut struct {
	tail     int32
	tailCost float64
	head     int32
	cost     float64
}

// fetchAdjacency joins the current tuples of rName with S and collects the
// out-edges. curFilter selects the outer tuples (status = current, or id
// match for the dynamic variant).
func (m *MapDB) fetchAdjacency(strategy join.Strategy, rName string, curFilter func([]tuple.Value) bool) ([]edgeOut, error) {
	var out []edgeOut
	err := m.db.ExecuteJoin(strategy, rName, relEdges, "id", "begin", curFilter,
		func(left, right []tuple.Value) (bool, error) {
			out = append(out, edgeOut{
				tail:     left[rID].Int(),
				tailCost: left[rCost].Float(),
				head:     right[sEnd].Int(),
				cost:     right[sCost].Float(),
			})
			return true, nil
		})
	return out, err
}

// params convenience.
func (m *MapDB) params() optimizer.Params { return m.db.Params() }
