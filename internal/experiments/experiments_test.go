package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// fastCfg keeps the suite quick: one repetition; DB runs stay on because
// they are what the figures measure.
var fastCfg = RunConfig{Reps: 1}

func runExperiment(t *testing.T, id string, cfg RunConfig) string {
	t.Helper()
	e, ok := ByID(id)
	if !ok {
		t.Fatalf("experiment %q not registered", id)
	}
	var buf bytes.Buffer
	if err := e.Run(&buf, cfg); err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	return buf.String()
}

func TestRegistry(t *testing.T) {
	all := All()
	if len(all) < 14 {
		t.Errorf("only %d experiments registered", len(all))
	}
	seen := map[string]bool{}
	for _, e := range all {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Errorf("experiment %+v incomplete", e.ID)
		}
		if seen[e.ID] {
			t.Errorf("duplicate id %q", e.ID)
		}
		seen[e.ID] = true
	}
	if _, ok := ByID("TABLE5"); !ok {
		t.Error("ByID not case-insensitive")
	}
	if _, ok := ByID("ghost"); ok {
		t.Error("ghost experiment resolved")
	}
	if len(IDs()) != len(all) {
		t.Error("IDs() incomplete")
	}
}

func TestFigure4(t *testing.T) {
	out := runExperiment(t, "figure4", fastCfg)
	for _, want := range []string{"Figure 4", "S", "1", "2", "3", "Cost models"} {
		if !strings.Contains(out, want) {
			t.Errorf("figure4 missing %q", want)
		}
	}
}

func TestTable5(t *testing.T) {
	out := runExperiment(t, "table5", fastCfg)
	for _, want := range []string{"Table 5", "dijkstra", "astar-v3", "iterative", "paper 899", "Figure 5", "wall-clock"} {
		if !strings.Contains(out, want) {
			t.Errorf("table5 missing %q", want)
		}
	}
}

func TestTable6(t *testing.T) {
	out := runExperiment(t, "table6", fastCfg)
	for _, want := range []string{"Table 6", "horizontal", "semi-diagonal", "diagonal", "paper 488", "Figure 6"} {
		if !strings.Contains(out, want) {
			t.Errorf("table6 missing %q", want)
		}
	}
}

func TestTable7(t *testing.T) {
	out := runExperiment(t, "table7", fastCfg)
	for _, want := range []string{"Table 7", "uniform", "20% variance", "skewed", "Figure 7"} {
		if !strings.Contains(out, want) {
			t.Errorf("table7 missing %q", want)
		}
	}
}

func TestTable4B(t *testing.T) {
	out := runExperiment(t, "table4b", fastCfg)
	for _, want := range []string{"Table 4B", "paper 1941.2", "engine", "C5", "setup"} {
		if !strings.Contains(out, want) {
			t.Errorf("table4b missing %q", want)
		}
	}
}

func TestFigure8(t *testing.T) {
	out := runExperiment(t, "figure8", fastCfg)
	for _, want := range []string{"Figure 8", "1089 nodes", "Landmarks"} {
		if !strings.Contains(out, want) {
			t.Errorf("figure8 missing %q", want)
		}
	}
}

func TestTable8(t *testing.T) {
	out := runExperiment(t, "table8", fastCfg)
	for _, want := range []string{"Table 8", "A to B", "G to D", "paper 1058", "Figure 9", "drift"} {
		if !strings.Contains(out, want) {
			t.Errorf("table8 missing %q", want)
		}
	}
}

func TestVersionFigures(t *testing.T) {
	out := runExperiment(t, "figure10", fastCfg)
	for _, want := range []string{"Figure 10", "astar-v1", "astar-v2", "astar-v3"} {
		if !strings.Contains(out, want) {
			t.Errorf("figure10 missing %q", want)
		}
	}
	out = runExperiment(t, "figure11", fastCfg)
	if !strings.Contains(out, "Figure 11") || !strings.Contains(out, "skewed") {
		t.Error("figure11 output incomplete")
	}
	out = runExperiment(t, "figure12", fastCfg)
	if !strings.Contains(out, "Figure 12") || !strings.Contains(out, "horizontal") {
		t.Error("figure12 output incomplete")
	}
}

func TestAblations(t *testing.T) {
	cases := map[string][]string{
		"ablation-frontier":      {"heap", "scan", "duplicates"},
		"ablation-join":          {"nested-loop", "hash", "sort-merge", "primary-key", "optimizer pick"},
		"ablation-buffer":        {"frames", "physical reads"},
		"ablation-weighted":      {"weight", "suboptimality", "0.00%"},
		"ablation-bidirectional": {"bidirectional", "dijkstra"},
		"ablation-estimators":    {"alt-4", "manhattan", "travel-time", "+0.0%"},
		"ablation-kpaths":        {"best", "2nd", "3rd", "A to B"},
		"ablation-economics":     {"floyd-warshall", "single-pair", "pairs answered", "144"},
	}
	for id, wants := range cases {
		out := runExperiment(t, id, fastCfg)
		for _, want := range wants {
			if !strings.Contains(out, want) {
				t.Errorf("%s missing %q", id, want)
			}
		}
	}
}

func TestSkipDBMode(t *testing.T) {
	out := runExperiment(t, "table5", RunConfig{Reps: 1, SkipDB: true})
	if strings.Contains(out, "Figure 5") {
		t.Error("SkipDB still produced the DB-engine figure")
	}
	if !strings.Contains(out, "Table 5") {
		t.Error("SkipDB dropped the iteration table")
	}
}
