package experiments

import (
	"fmt"
	"io"

	"repro/internal/alt"
	"repro/internal/estimator"
	"repro/internal/mpls"
	"repro/internal/search"
)

// runAblationEstimators compares estimator quality on the road map under
// both cost metrics: the paper's zero/euclidean/manhattan, plus the ALT
// landmark estimator extension. Columns report A* expansions and the cost
// drift against the optimum — "choosing a good estimator is of the utmost
// importance" (Section 5.3), quantified.
func runAblationEstimators(w io.Writer, cfg RunConfig) error {
	for _, metric := range []mpls.Metric{mpls.Distance, mpls.TravelTime} {
		g, _, err := mpls.GenerateWithAtlas(mpls.Config{Seed: cfg.seed(), Metric: metric})
		if err != nil {
			return err
		}
		landmarks, err := alt.SelectLandmarks(g, 4, cfg.seed())
		if err != nil {
			return err
		}
		tables, err := alt.Preprocess(g, landmarks)
		if err != nil {
			return err
		}
		// On travel time, euclidean must be rescaled to minutes-per-mile at
		// the top speed to stay admissible.
		euclid := estimator.Euclidean()
		if metric == mpls.TravelTime {
			euclid = estimator.Scaled(estimator.Euclidean(), 60/mpls.Freeway.SpeedMPH())
		}
		ests := []struct {
			name string
			est  *estimator.Estimator
		}{
			{"zero (dijkstra)", estimator.Zero()},
			{"euclidean", euclid},
			{"manhattan", estimator.Manhattan()},
			{fmt.Sprintf("alt-%d", len(landmarks)), tables.Estimator()},
		}

		var rows [][]string
		for _, pp := range mpls.PaperPaths() {
			s, _ := g.Lookup(pp.From)
			d, _ := g.Lookup(pp.To)
			opt, err := search.Dijkstra(g, s, d)
			if err != nil {
				return err
			}
			row := []string{pp.Name}
			for _, e := range ests {
				res, err := search.AStar(g, s, d, e.est)
				if err != nil {
					return err
				}
				drift := 0.0
				if opt.Cost > 0 {
					drift = (res.Cost/opt.Cost - 1) * 100
				}
				row = append(row, fmt.Sprintf("%d it %+.1f%%", res.Trace.Iterations, drift))
			}
			rows = append(rows, row)
		}
		head := []string{"route"}
		for _, e := range ests {
			head = append(head, e.name)
		}
		table(w, fmt.Sprintf("Ablation: estimator quality on the road map (%s metric; expansions and cost drift)", metric), head, rows)
	}
	fmt.Fprintf(w, "\nALT stays admissible (0.0%% drift) on both metrics and focuses the search\n"+
		"hardest; manhattan is fast but inadmissible; raw geometry carries little\n"+
		"information once costs are travel times.\n")
	return nil
}

// runAblationKPaths shows loopless alternate routes (Yen's algorithm) for
// the Table 8 pairs: the ATIS alternate-route feature built on the paper's
// single-pair machinery.
func runAblationKPaths(w io.Writer, cfg RunConfig) error {
	g := mpls.MustGenerate(mpls.Config{Seed: cfg.seed()})
	var rows [][]string
	for _, pp := range mpls.PaperPaths() {
		s, _ := g.Lookup(pp.From)
		d, _ := g.Lookup(pp.To)
		paths, err := search.KShortest(g, s, d, 3)
		if err != nil {
			return err
		}
		row := []string{pp.Name}
		for _, p := range paths {
			row = append(row, fmt.Sprintf("%.2f (%d segs)", p.Cost, p.Path.Len()))
		}
		for len(row) < 4 {
			row = append(row, "-")
		}
		rows = append(rows, row)
	}
	table(w, "Ablation: three best loopless alternates per route (Yen over Dijkstra)",
		[]string{"route", "best", "2nd", "3rd"}, rows)
	return nil
}
