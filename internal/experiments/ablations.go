package experiments

import (
	"fmt"
	"io"

	"repro/internal/dbsearch"
	"repro/internal/estimator"
	"repro/internal/gridgen"
	"repro/internal/join"
	"repro/internal/search"
)

// runAblationFrontier compares the in-memory frontier structures of
// Section 4's design discussion: indexed heap (decrease-key), linear scan
// (the relational analogue), and duplicate-tolerant heap.
func runAblationFrontier(w io.Writer, cfg RunConfig) error {
	const k = 30
	g := gridgen.MustGenerate(gridgen.Config{K: k, Model: gridgen.Variance, Seed: cfg.seed()})
	s, d := gridgen.Pair(k, gridgen.Diagonal, cfg.seed())
	kinds := []search.FrontierKind{search.FrontierHeap, search.FrontierScan, search.FrontierDuplicates}

	var rows [][]string
	for _, kind := range kinds {
		mm, err := measureInMemory(cfg.reps(), func() (search.Result, error) {
			return search.BestFirst(g, s, d, search.Options{
				Estimator:   estimator.Manhattan(),
				Frontier:    kind,
				AllowReopen: true,
			})
		})
		if err != nil {
			return err
		}
		rows = append(rows, []string{kind.String(), fmt.Sprintf("%d", mm.iterations), f1(mm.cost), ms(mm.wall)})
	}
	table(w, "Ablation: frontier management for A*-manhattan (30x30, diagonal, 20% variance)",
		[]string{"frontier", "iterations", "cost", "wall"}, rows)
	fmt.Fprintf(w, "\nAll variants return the same optimal cost; duplicates add redundant\n"+
		"iterations (Section 4) and the scan pays O(frontier) per selection.\n")
	return nil
}

// runAblationJoin forces each join strategy for the adjacency fetch on the
// DB engine and reports the resulting I/O, next to the optimizer's pick.
func runAblationJoin(w io.Writer, cfg RunConfig) error {
	const k = 12
	g := gridgen.MustGenerate(gridgen.Config{K: k, Model: gridgen.Variance, Seed: cfg.seed()})
	s, d := gridgen.Pair(k, gridgen.Diagonal, cfg.seed())
	m, err := dbsearch.OpenMap(g, dbsearch.Options{})
	if err != nil {
		return err
	}

	var rows [][]string
	auto, err := m.RunBestFirst(s, d, dbsearch.DijkstraConfig())
	if err != nil {
		return err
	}
	rows = append(rows, []string{"optimizer pick", fmt.Sprintf("%d", auto.Iterations), f1(auto.TimeUnits)})
	for _, strat := range join.Strategies() {
		st := strat
		c := dbsearch.DijkstraConfig()
		c.ForceJoin = &st
		res, err := m.RunBestFirst(s, d, c)
		if err != nil {
			return fmt.Errorf("%v: %w", strat, err)
		}
		rows = append(rows, []string{strat.String(), fmt.Sprintf("%d", res.Iterations), f1(res.TimeUnits)})
	}
	table(w, "Ablation: forced adjacency-join strategy (DB Dijkstra, 12x12 diagonal)",
		[]string{"strategy", "iterations", "time units"}, rows)
	return nil
}

// runAblationBuffer sweeps the buffer-pool size: the same algorithm on the
// same data, from thrashing to fully cached.
func runAblationBuffer(w io.Writer, cfg RunConfig) error {
	const k = 20
	g := gridgen.MustGenerate(gridgen.Config{K: k, Model: gridgen.Variance, Seed: cfg.seed()})
	s, d := gridgen.Pair(k, gridgen.Diagonal, cfg.seed())

	var rows [][]string
	for _, frames := range []int{4, 8, 16, 32, 64, 128} {
		m, err := dbsearch.OpenMap(g, dbsearch.Options{PoolFrames: frames})
		if err != nil {
			return err
		}
		res, err := m.RunBestFirst(s, d, dbsearch.AStarV3Config())
		if err != nil {
			return err
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", frames),
			fmt.Sprintf("%d", res.IO.Reads),
			fmt.Sprintf("%d", res.IO.Writes),
			fmt.Sprintf("%d", res.PageRequests),
		})
	}
	table(w, "Ablation: buffer-pool size (DB A*-v3, 20x20 diagonal; physical reads fall as frames grow)",
		[]string{"frames", "physical reads", "physical writes", "page requests"}, rows)
	return nil
}

// runAblationWeighted sweeps weighted A*'s ε: the speed/optimality tradeoff
// the paper's conclusion proposes to characterise.
func runAblationWeighted(w io.Writer, cfg RunConfig) error {
	const k = 30
	g := gridgen.MustGenerate(gridgen.Config{K: k, Model: gridgen.Variance, Seed: cfg.seed()})
	s, d := gridgen.Pair(k, gridgen.Diagonal, cfg.seed())
	opt, err := search.Dijkstra(g, s, d)
	if err != nil {
		return err
	}

	var rows [][]string
	for _, weight := range []float64{1, 1.2, 1.5, 2, 3, 5} {
		mm, err := measureInMemory(cfg.reps(), func() (search.Result, error) {
			return search.AStar(g, s, d, estimator.Scaled(estimator.Manhattan(), weight))
		})
		if err != nil {
			return err
		}
		drift := (mm.cost/opt.Cost - 1) * 100
		rows = append(rows, []string{
			fmt.Sprintf("%.1f", weight),
			fmt.Sprintf("%d", mm.iterations),
			f1(mm.cost),
			fmt.Sprintf("%.2f%%", drift),
		})
	}
	table(w, fmt.Sprintf("Ablation: weighted A* (30x30 diagonal; optimal cost %.1f, Dijkstra %d iterations)",
		opt.Cost, opt.Trace.Iterations),
		[]string{"weight ε", "iterations", "cost", "suboptimality"}, rows)
	return nil
}

// runAblationBidirectional compares bidirectional Dijkstra against the
// paper's three algorithms on long paths.
func runAblationBidirectional(w io.Writer, cfg RunConfig) error {
	const k = 30
	g := gridgen.MustGenerate(gridgen.Config{K: k, Model: gridgen.Variance, Seed: cfg.seed()})
	s, d := gridgen.Pair(k, gridgen.Diagonal, cfg.seed())

	runs := map[string]func() (search.Result, error){
		"dijkstra":      func() (search.Result, error) { return search.Dijkstra(g, s, d) },
		"astar-v3":      func() (search.Result, error) { return search.AStar(g, s, d, estimator.Manhattan()) },
		"bidirectional": func() (search.Result, error) { return search.Bidirectional(g, s, d) },
		"iterative":     func() (search.Result, error) { return search.Iterative(g, s, d) },
	}
	var rows [][]string
	for _, name := range []string{"dijkstra", "astar-v3", "bidirectional", "iterative"} {
		mm, err := measureInMemory(cfg.reps(), runs[name])
		if err != nil {
			return err
		}
		rows = append(rows, []string{name, fmt.Sprintf("%d", mm.iterations), f1(mm.cost), ms(mm.wall)})
	}
	table(w, "Ablation: bidirectional search (30x30 diagonal, 20% variance)",
		[]string{"algorithm", "iterations", "cost", "wall"}, rows)
	return nil
}
