package experiments

import (
	"fmt"
	"io"

	"repro/internal/asciichart"
	"repro/internal/dbsearch"
	"repro/internal/graph"
	"repro/internal/gridgen"
)

// versionConfigs returns the three A* implementations of Section 5.3.
func versionConfigs() []dbsearch.Config {
	return []dbsearch.Config{
		dbsearch.AStarV1Config(),
		dbsearch.AStarV2Config(),
		dbsearch.AStarV3Config(),
	}
}

// measureVersions runs the three versions on one instance, returning time
// units per version name.
func measureVersions(g *graph.Graph, s, d graph.NodeID) (map[string]float64, map[string]int, error) {
	m, err := dbsearch.OpenMap(g, dbsearch.Options{})
	if err != nil {
		return nil, nil, err
	}
	units := map[string]float64{}
	iters := map[string]int{}
	for _, cfg := range versionConfigs() {
		res, err := m.RunBestFirst(s, d, cfg)
		if err != nil {
			return nil, nil, fmt.Errorf("%s: %w", cfg.Name, err)
		}
		if !res.Found {
			return nil, nil, fmt.Errorf("%s: no path", cfg.Name)
		}
		units[cfg.Name] = res.TimeUnits
		iters[cfg.Name] = res.Iterations
	}
	return units, iters, nil
}

// versionChart renders the three-version comparison.
func versionChart(w io.Writer, title, xlabel string, xs []float64, byVersion map[string][]float64) {
	var series []asciichart.Series
	for _, cfg := range versionConfigs() {
		series = append(series, asciichart.Series{Name: cfg.Name, Xs: xs, Ys: byVersion[cfg.Name]})
	}
	fmt.Fprint(w, asciichart.Line(series, asciichart.Options{
		Title: title, Width: 54, Height: 16, XLabel: xlabel, YLabel: "time units",
	}))
}

// runFigure10 compares the A* versions across grid sizes (diagonal path,
// 20% variance): version 1's APPEND/DELETE churn loses ground as the graph
// grows, and version 3's estimator wins overall.
func runFigure10(w io.Writer, cfg RunConfig) error {
	sizes := []int{10, 20, 30}
	byVersion := map[string][]float64{}
	var rows [][]string
	for _, k := range sizes {
		g := gridgen.MustGenerate(gridgen.Config{K: k, Model: gridgen.Variance, Seed: cfg.seed()})
		s, d := gridgen.Pair(k, gridgen.Diagonal, cfg.seed())
		units, iters, err := measureVersions(g, s, d)
		if err != nil {
			return fmt.Errorf("k=%d: %w", k, err)
		}
		for _, vc := range versionConfigs() {
			byVersion[vc.Name] = append(byVersion[vc.Name], units[vc.Name])
		}
		rows = append(rows, []string{
			fmt.Sprintf("%dx%d", k, k),
			fmt.Sprintf("%.1f (%d it)", units["astar-v1"], iters["astar-v1"]),
			fmt.Sprintf("%.1f (%d it)", units["astar-v2"], iters["astar-v2"]),
			fmt.Sprintf("%.1f (%d it)", units["astar-v3"], iters["astar-v3"]),
		})
	}
	table(w, "A* versions vs. graph size (time units, diagonal, 20% variance)",
		[]string{"grid", "v1 (relation+euclid)", "v2 (status+euclid)", "v3 (status+manhattan)"}, rows)
	fmt.Fprintln(w)
	versionChart(w, "Figure 10: Effect of graph size on execution time of A* versions",
		"grid side k", []float64{10, 20, 30}, byVersion)
	return nil
}

// runFigure11 compares the versions across edge-cost models on the 20×20
// grid: version 1 is competitive on the skewed model (tiny explored set, no
// full-R initialisation) and worst under variance.
func runFigure11(w io.Writer, cfg RunConfig) error {
	const k = 20
	models := []gridgen.CostModel{gridgen.Uniform, gridgen.Variance, gridgen.Skewed}
	byVersion := map[string][]float64{}
	var rows [][]string
	for _, model := range models {
		g := gridgen.MustGenerate(gridgen.Config{K: k, Model: model, Seed: cfg.seed()})
		s, d := gridgen.Pair(k, gridgen.Diagonal, cfg.seed())
		units, _, err := measureVersions(g, s, d)
		if err != nil {
			return fmt.Errorf("%v: %w", model, err)
		}
		for _, vc := range versionConfigs() {
			byVersion[vc.Name] = append(byVersion[vc.Name], units[vc.Name])
		}
		rows = append(rows, []string{
			model.String(), f1(units["astar-v1"]), f1(units["astar-v2"]), f1(units["astar-v3"]),
		})
	}
	table(w, "A* versions vs. edge-cost model (time units, 20x20 grid, diagonal)",
		[]string{"cost model", "v1", "v2", "v3"}, rows)
	fmt.Fprintln(w)
	versionChart(w, "Figure 11: Effect of edge-cost model on A* versions (0=uniform, 1=variance, 2=skewed)",
		"cost model", []float64{0, 1, 2}, byVersion)
	return nil
}

// runFigure12 compares the versions across path lengths on the 30×30 grid:
// version 1 starts ahead on short paths and falls behind on long ones
// (Section 5.3.1's crossover).
func runFigure12(w io.Writer, cfg RunConfig) error {
	const k = 30
	kinds := []gridgen.PairKind{gridgen.Horizontal, gridgen.SemiDiagonal, gridgen.Diagonal}
	g := gridgen.MustGenerate(gridgen.Config{K: k, Model: gridgen.Variance, Seed: cfg.seed()})
	byVersion := map[string][]float64{}
	var xs []float64
	var rows [][]string
	for _, kind := range kinds {
		s, d := gridgen.Pair(k, kind, cfg.seed())
		units, _, err := measureVersions(g, s, d)
		if err != nil {
			return fmt.Errorf("%v: %w", kind, err)
		}
		for _, vc := range versionConfigs() {
			byVersion[vc.Name] = append(byVersion[vc.Name], units[vc.Name])
		}
		xs = append(xs, float64(gridgen.ManhattanEdges(k, kind)))
		rows = append(rows, []string{
			kind.String(), f1(units["astar-v1"]), f1(units["astar-v2"]), f1(units["astar-v3"]),
		})
	}
	table(w, "A* versions vs. path length (time units, 30x30 grid, 20% variance)",
		[]string{"path", "v1", "v2", "v3"}, rows)
	fmt.Fprintln(w)
	versionChart(w, "Figure 12: Effect of path length on A* versions", "path length L (edges)", xs, byVersion)
	return nil
}
