package experiments

import (
	"fmt"
	"io"

	"repro/internal/asciichart"
	"repro/internal/dbsearch"
	"repro/internal/graph"
	"repro/internal/gridgen"
)

// paper-reported iteration counts, for side-by-side comparison.
var (
	paperTable5 = map[string]map[int]int{ // 20% variance, diagonal
		"dijkstra":  {10: 99, 20: 399, 30: 899},
		"astar-v3":  {10: 85, 20: 360, 30: 838},
		"iterative": {10: 19, 20: 39, 30: 59},
	}
	paperTable6 = map[string]map[gridgen.PairKind]int{ // 30×30, 20% variance
		"dijkstra":  {gridgen.Horizontal: 488, gridgen.SemiDiagonal: 767, gridgen.Diagonal: 899},
		"astar-v3":  {gridgen.Horizontal: 29, gridgen.SemiDiagonal: 407, gridgen.Diagonal: 838},
		"iterative": {gridgen.Horizontal: 59, gridgen.SemiDiagonal: 59, gridgen.Diagonal: 59},
	}
	paperTable7 = map[string]map[gridgen.CostModel]int{ // 20×20, diagonal
		"dijkstra":  {gridgen.Uniform: 399, gridgen.Variance: 399, gridgen.Skewed: 48},
		"astar-v3":  {gridgen.Uniform: 189, gridgen.Variance: 360, gridgen.Skewed: 38},
		"iterative": {gridgen.Uniform: 39, gridgen.Variance: 39, gridgen.Skewed: 56},
	}
)

// algoOrder is the presentation order used by the paper's tables.
var algoOrder = []string{"dijkstra", "astar-v3", "iterative"}

// dbConfigFor maps an algorithm name onto its DB-resident configuration.
func dbConfigFor(name string) (dbsearch.Config, bool) {
	switch name {
	case "dijkstra":
		return dbsearch.DijkstraConfig(), false
	case "astar-v3":
		return dbsearch.AStarV3Config(), false
	case "iterative":
		return dbsearch.Config{Name: "iterative"}, true
	default:
		panic("experiments: unknown algorithm " + name)
	}
}

// gridCase measures the three candidate algorithms on one (graph, pair)
// instance, in memory and (unless skipped) on the DB engine.
type gridCase struct {
	iterations map[string]int
	units      map[string]float64
	wall       map[string]string
}

func measureGridCase(g *graph.Graph, s, d graph.NodeID, cfg RunConfig) (gridCase, error) {
	out := gridCase{
		iterations: map[string]int{},
		units:      map[string]float64{},
		wall:       map[string]string{},
	}
	for name, fn := range memAlgorithms(g, s, d) {
		mm, err := measureInMemory(cfg.reps(), fn)
		if err != nil {
			return out, fmt.Errorf("%s: %w", name, err)
		}
		out.iterations[name] = mm.iterations
		out.wall[name] = ms(mm.wall)
	}
	if cfg.SkipDB {
		return out, nil
	}
	m, err := dbsearch.OpenMap(g, dbsearch.Options{})
	if err != nil {
		return out, err
	}
	for _, name := range algoOrder {
		dcfg, iterative := dbConfigFor(name)
		iters, units, err := dbMeasure(m, s, d, dcfg, iterative)
		if err != nil {
			return out, fmt.Errorf("db %s: %w", name, err)
		}
		out.units[name] = units
		// Cross-check: the DB engine must agree with the in-memory counts,
		// within the tolerance of tie-breaking on equal float keys.
		if diff := iters - out.iterations[name]; diff > 3 || diff < -3 {
			return out, fmt.Errorf("%s: DB iterations %d diverge from in-memory %d", name, iters, out.iterations[name])
		}
	}
	return out, nil
}

// runFigure4 sketches the benchmark workload: the grid and its node pairs.
func runFigure4(w io.Writer, cfg RunConfig) error {
	const k = 10
	g := gridgen.MustGenerate(gridgen.Config{K: k, Model: gridgen.Uniform})
	var pts []asciichart.Point
	for u := graph.NodeID(0); int(u) < g.NumNodes(); u++ {
		p := g.Point(u)
		pts = append(pts, asciichart.Point{X: p.X, Y: p.Y, Glyph: '.'})
	}
	mark := func(kind gridgen.PairKind, sg, dg byte) {
		s, d := gridgen.Pair(k, kind, cfg.seed())
		ps, pd := g.Point(s), g.Point(d)
		pts = append(pts,
			asciichart.Point{X: ps.X, Y: ps.Y, Glyph: sg},
			asciichart.Point{X: pd.X, Y: pd.Y, Glyph: dg})
	}
	mark(gridgen.Diagonal, 'S', '1')
	mark(gridgen.Horizontal, 'S', '2')
	mark(gridgen.SemiDiagonal, 'S', '3')
	fmt.Fprint(w, asciichart.Map(pts, asciichart.Options{
		Title:  "Figure 4: 10×10 grid; S = source corner, 1 = diagonal, 2 = horizontal, 3 = semi-diagonal destinations",
		Width:  42,
		Height: 21,
	}))
	fmt.Fprintf(w, "\nGrids used: 10×10, 20×20, 30×30 with 4-neighbour connectivity.\n")
	fmt.Fprintf(w, "Cost models: uniform (1), 20%% variance (1 + 0.2·U[0,1]), skewed (cheap bottom+right rim).\n")
	return nil
}

// runTable5 reproduces Table 5 and Figure 5: effect of graph size.
func runTable5(w io.Writer, cfg RunConfig) error {
	sizes := []int{10, 20, 30}
	cases := map[int]gridCase{}
	for _, k := range sizes {
		g := gridgen.MustGenerate(gridgen.Config{K: k, Model: gridgen.Variance, Seed: cfg.seed()})
		s, d := gridgen.Pair(k, gridgen.Diagonal, cfg.seed())
		c, err := measureGridCase(g, s, d, cfg)
		if err != nil {
			return fmt.Errorf("k=%d: %w", k, err)
		}
		cases[k] = c
	}

	var rows [][]string
	for _, name := range algoOrder {
		row := []string{name}
		for _, k := range sizes {
			row = append(row, fmt.Sprintf("%d (paper %d)", cases[k].iterations[name], paperTable5[name][k]))
		}
		rows = append(rows, row)
	}
	table(w, "Table 5: Effect of Graph Size on Iterations (20% variance, diagonal path)",
		[]string{"algorithm", "10x10", "20x20", "30x30"}, rows)

	if !cfg.SkipDB {
		var series []asciichart.Series
		for _, name := range algoOrder {
			s := asciichart.Series{Name: name}
			for _, k := range sizes {
				s.Xs = append(s.Xs, float64(k))
				s.Ys = append(s.Ys, cases[k].units[name])
			}
			series = append(series, s)
		}
		fmt.Fprintln(w)
		fmt.Fprint(w, asciichart.Line(series, asciichart.Options{
			Title: "Figure 5: Effect of graph size on execution time (DB engine, cost-model units)",
			Width: 54, Height: 16, XLabel: "grid side k", YLabel: "time units",
		}))
	}
	var wallRows [][]string
	for _, name := range algoOrder {
		row := []string{name}
		for _, k := range sizes {
			row = append(row, cases[k].wall[name])
		}
		wallRows = append(wallRows, row)
	}
	table(w, "In-memory wall-clock (median of repetitions)",
		[]string{"algorithm", "10x10", "20x20", "30x30"}, wallRows)
	return nil
}

// runTable6 reproduces Table 6 and Figure 6: effect of path length.
func runTable6(w io.Writer, cfg RunConfig) error {
	const k = 30
	kinds := []gridgen.PairKind{gridgen.Horizontal, gridgen.SemiDiagonal, gridgen.Diagonal}
	g := gridgen.MustGenerate(gridgen.Config{K: k, Model: gridgen.Variance, Seed: cfg.seed()})
	cases := map[gridgen.PairKind]gridCase{}
	for _, kind := range kinds {
		s, d := gridgen.Pair(k, kind, cfg.seed())
		c, err := measureGridCase(g, s, d, cfg)
		if err != nil {
			return fmt.Errorf("%v: %w", kind, err)
		}
		cases[kind] = c
	}

	var rows [][]string
	for _, name := range algoOrder {
		row := []string{name}
		for _, kind := range kinds {
			row = append(row, fmt.Sprintf("%d (paper %d)", cases[kind].iterations[name], paperTable6[name][kind]))
		}
		rows = append(rows, row)
	}
	table(w, "Table 6: Effect of Path Length on Iterations (20% variance, 30x30 grid)",
		[]string{"algorithm", "horizontal", "semi-diagonal", "diagonal"}, rows)

	if !cfg.SkipDB {
		var series []asciichart.Series
		for _, name := range algoOrder {
			s := asciichart.Series{Name: name}
			for _, kind := range kinds {
				s.Xs = append(s.Xs, float64(gridgen.ManhattanEdges(k, kind)))
				s.Ys = append(s.Ys, cases[kind].units[name])
			}
			series = append(series, s)
		}
		fmt.Fprintln(w)
		fmt.Fprint(w, asciichart.Line(series, asciichart.Options{
			Title: "Figure 6: Effect of path length on execution time (DB engine, cost-model units)",
			Width: 54, Height: 16, XLabel: "path length L (edges)", YLabel: "time units",
		}))
	}
	return nil
}

// runTable7 reproduces Table 7 and Figure 7: effect of the edge-cost model.
func runTable7(w io.Writer, cfg RunConfig) error {
	const k = 20
	models := []gridgen.CostModel{gridgen.Uniform, gridgen.Variance, gridgen.Skewed}
	cases := map[gridgen.CostModel]gridCase{}
	for _, model := range models {
		g := gridgen.MustGenerate(gridgen.Config{K: k, Model: model, Seed: cfg.seed()})
		s, d := gridgen.Pair(k, gridgen.Diagonal, cfg.seed())
		c, err := measureGridCase(g, s, d, cfg)
		if err != nil {
			return fmt.Errorf("%v: %w", model, err)
		}
		cases[model] = c
	}

	var rows [][]string
	for _, name := range algoOrder {
		row := []string{name}
		for _, model := range models {
			row = append(row, fmt.Sprintf("%d (paper %d)", cases[model].iterations[name], paperTable7[name][model]))
		}
		rows = append(rows, row)
	}
	table(w, "Table 7: Effect of Edge Cost Models on Iterations (20x20 grid, diagonal path)",
		[]string{"algorithm", "uniform", "20% variance", "skewed"}, rows)

	if !cfg.SkipDB {
		var series []asciichart.Series
		for _, name := range algoOrder {
			s := asciichart.Series{Name: name}
			for i, model := range models {
				s.Xs = append(s.Xs, float64(i))
				s.Ys = append(s.Ys, cases[model].units[name])
			}
			series = append(series, s)
		}
		fmt.Fprintln(w)
		fmt.Fprint(w, asciichart.Line(series, asciichart.Options{
			Title: "Figure 7: Effect of edge-cost model on execution time (0=uniform, 1=20% variance, 2=skewed)",
			Width: 54, Height: 16, XLabel: "cost model", YLabel: "time units",
		}))
	}
	return nil
}
