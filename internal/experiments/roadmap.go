package experiments

import (
	"fmt"
	"io"

	"repro/internal/asciichart"
	"repro/internal/core"
	"repro/internal/dbsearch"
	"repro/internal/graph"
	"repro/internal/mpls"
	"repro/internal/route"
)

// paperTable8 holds the paper's Minneapolis iteration counts. Note the
// paper's Table 8 header lists iterative first; the row values make clear
// that iterative's 55/51/55/41 are *rounds* while the best-first rows are
// node expansions.
var paperTable8 = map[string]map[string]int{
	"iterative": {"A to B": 55, "C to D": 51, "G to D": 55, "E to F": 41},
	"astar-v3":  {"A to B": 453, "C to D": 266, "G to D": 17, "E to F": 64},
	"dijkstra":  {"A to B": 1058, "C to D": 1006, "G to D": 105, "E to F": 307},
}

// runFigure8 renders the synthetic Minneapolis map with its landmarks.
func runFigure8(w io.Writer, cfg RunConfig) error {
	g := mpls.MustGenerate(mpls.Config{Seed: cfg.seed()})
	svc := route.NewService(g)
	fmt.Fprint(w, svc.Display(graph.Path{}, 80, 40))
	fmt.Fprintf(w, "\nFigure 8: synthetic Minneapolis road map — %d nodes, %d directed edges.\n",
		g.NumNodes(), g.NumEdges())
	fmt.Fprintf(w, "Landmarks A–G mark the Table 8 routes; blank regions are the lakes (lower left)\n")
	fmt.Fprintf(w, "and the river (upper right). The centre grid is the rotated downtown core.\n")
	return nil
}

// runTable8 reproduces Table 8 and Figure 9: the four Minneapolis routes.
func runTable8(w io.Writer, cfg RunConfig) error {
	g := mpls.MustGenerate(mpls.Config{Seed: cfg.seed()})
	paths := mpls.PaperPaths()

	type measured struct {
		iterations map[string]int
		units      map[string]float64
		wall       map[string]string
	}
	results := map[string]measured{}

	var m *dbsearch.MapDB
	if !cfg.SkipDB {
		var err error
		m, err = dbsearch.OpenMap(g, dbsearch.Options{})
		if err != nil {
			return err
		}
	}

	for _, pp := range paths {
		s, ok := g.Lookup(pp.From)
		if !ok {
			return fmt.Errorf("landmark %q missing", pp.From)
		}
		d, ok := g.Lookup(pp.To)
		if !ok {
			return fmt.Errorf("landmark %q missing", pp.To)
		}
		mr := measured{iterations: map[string]int{}, units: map[string]float64{}, wall: map[string]string{}}
		for name, fn := range memAlgorithms(g, s, d) {
			mm, err := measureInMemory(cfg.reps(), fn)
			if err != nil {
				return fmt.Errorf("%s %s: %w", pp.Name, name, err)
			}
			mr.iterations[name] = mm.iterations
			mr.wall[name] = ms(mm.wall)
		}
		if m != nil {
			for _, name := range algoOrder {
				dcfg, iterative := dbConfigFor(name)
				_, units, err := dbMeasure(m, s, d, dcfg, iterative)
				if err != nil {
					return fmt.Errorf("db %s %s: %w", pp.Name, name, err)
				}
				mr.units[name] = units
			}
		}
		results[pp.Name] = mr
	}

	var rows [][]string
	for _, name := range []string{"iterative", "astar-v3", "dijkstra"} {
		row := []string{name}
		for _, pp := range paths {
			row = append(row, fmt.Sprintf("%d (paper %d)", results[pp.Name].iterations[name], paperTable8[name][pp.Name]))
		}
		rows = append(rows, row)
	}
	head := []string{"algorithm"}
	for _, pp := range paths {
		head = append(head, pp.Name)
	}
	table(w, "Table 8: Effect of path length and orientation on iterations (synthetic Minneapolis)", head, rows)
	fmt.Fprintf(w, "\nNote: A* here uses the manhattan estimator (version 3), which is inadmissible on\n"+
		"this map (Section 5.3), so its routes may be slightly suboptimal — as in the paper.\n")

	if m != nil {
		var series []asciichart.Series
		for _, name := range algoOrder {
			s := asciichart.Series{Name: name}
			for i, pp := range paths {
				s.Xs = append(s.Xs, float64(i))
				s.Ys = append(s.Ys, results[pp.Name].units[name])
			}
			series = append(series, s)
		}
		fmt.Fprintln(w)
		fmt.Fprint(w, asciichart.Line(series, asciichart.Options{
			Title: "Figure 9: Minneapolis results (DB engine; 0=A-B, 1=C-D, 2=G-D, 3=E-F)",
			Width: 54, Height: 16, XLabel: "route", YLabel: "time units",
		}))
	}

	// A* optimality drift on the road map: quantify the suboptimality the
	// paper accepts for speed.
	var driftRows [][]string
	for _, pp := range paths {
		s, _ := g.Lookup(pp.From)
		d, _ := g.Lookup(pp.To)
		planner := core.MustNew(g)
		opt, err := planner.Route(s, d, core.Options{Algorithm: core.Dijkstra})
		if err != nil {
			return err
		}
		man, err := planner.Route(s, d, core.Options{Algorithm: core.AStarManhattan})
		if err != nil {
			return err
		}
		drift := 0.0
		if opt.Cost > 0 {
			drift = (man.Cost/opt.Cost - 1) * 100
		}
		driftRows = append(driftRows, []string{
			pp.Name, f1(opt.Cost), f1(man.Cost), fmt.Sprintf("%.2f%%", drift),
		})
	}
	table(w, "Manhattan-estimator optimality drift (road map)",
		[]string{"route", "optimal cost", "A*-manhattan cost", "drift"}, driftRows)
	return nil
}
