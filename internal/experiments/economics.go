package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/closure"
	"repro/internal/estimator"
	"repro/internal/gridgen"
	"repro/internal/search"
)

// runAblationEconomics quantifies the paper's framing argument (Section
// 1.2): traditional transitive-closure and all-pairs methods "compute many
// more paths beyond the single pair path that is of interest to ATIS". For
// one query, it runs the closure family against a single A* and reports
// wall time and the number of questions each answer covers.
func runAblationEconomics(w io.Writer, cfg RunConfig) error {
	const k = 12
	g := gridgen.MustGenerate(gridgen.Config{K: k, Model: gridgen.Variance, Seed: cfg.seed()})
	s, d := gridgen.Pair(k, gridgen.Horizontal, cfg.seed())
	n := g.NumNodes()

	timeIt := func(fn func()) time.Duration {
		best := time.Duration(1<<62 - 1)
		for i := 0; i < cfg.reps(); i++ {
			start := time.Now()
			fn()
			if e := time.Since(start); e < best {
				best = e
			}
		}
		return best
	}

	var rows [][]string
	add := func(name string, answers int, d time.Duration) {
		rows = append(rows, []string{name, fmt.Sprintf("%d", answers), ms(d)})
	}

	add("iterative closure", n*n, timeIt(func() { closure.Iterative(g) }))
	add("logarithmic closure", n*n, timeIt(func() { closure.Logarithmic(g) }))
	add("warren closure", n*n, timeIt(func() { closure.Warren(g) }))
	add("dfs closure", n*n, timeIt(func() { closure.DFS(g) }))
	add("floyd-warshall (costs)", n*n, timeIt(func() { closure.AllPairs(g) }))
	add("single-source dijkstra", n, timeIt(func() { search.SingleSource(g, s) }))
	add("single-pair A* (manhattan)", 1, timeIt(func() {
		if _, err := search.AStar(g, s, d, estimator.Manhattan()); err != nil {
			panic(err)
		}
	}))

	table(w, fmt.Sprintf("Ablation: the single-pair economics (one %d-node grid, horizontal query)", n),
		[]string{"method", "pairs answered", "wall (best of reps)"}, rows)
	fmt.Fprintf(w, "\nThe ATIS question is one pair. All-pairs methods answer %d questions to\n"+
		"serve one; single-source answers %d; A* answers exactly the one asked —\n"+
		"Section 1.2's argument, measured.\n", n*n, n)
	return nil
}
