// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 5), plus the ablation studies DESIGN.md calls out.
// Each experiment measures the in-memory algorithms (iteration counts,
// wall-clock) and the database-resident implementations (block I/O in the
// cost model's time units), prints a paper-style table or ASCII figure, and
// where the paper published numbers, prints them alongside for comparison.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"text/tabwriter"
	"time"

	"repro/internal/dbsearch"
	"repro/internal/estimator"
	"repro/internal/graph"
	"repro/internal/search"
)

// RunConfig tunes a harness run.
type RunConfig struct {
	// Reps is the number of repetitions for wall-clock averaging; 0 → 3.
	// Iteration counts and I/O units are deterministic and measured once.
	Reps int
	// Seed drives the stochastic cost models; 0 → 1993.
	Seed int64
	// SkipDB skips the database-resident measurements (fast mode for the
	// biggest sweeps; iteration counts still measured in memory).
	SkipDB bool
}

func (c RunConfig) reps() int {
	if c.Reps <= 0 {
		return 3
	}
	return c.Reps
}

func (c RunConfig) seed() int64 {
	if c.Seed == 0 {
		return 1993
	}
	return c.Seed
}

// Experiment regenerates one table or figure.
type Experiment struct {
	// ID is the handle used by `atis-experiments -run <id>`, e.g. "table5".
	ID string
	// Title describes what the experiment reproduces.
	Title string
	// Run executes it, writing the table/figure to w.
	Run func(w io.Writer, cfg RunConfig) error
}

// All returns every experiment in presentation order.
func All() []Experiment {
	return []Experiment{
		{"figure4", "Synthetic grid workload and benchmark node pairs (Figure 4)", runFigure4},
		{"table5", "Effect of graph size on iterations (Table 5) and execution time (Figure 5)", runTable5},
		{"table6", "Effect of path length on iterations (Table 6) and execution time (Figure 6)", runTable6},
		{"table7", "Effect of edge-cost model on iterations (Table 7) and execution time (Figure 7)", runTable7},
		{"table4b", "Algebraic cost-model estimates (Table 4B)", runTable4B},
		{"figure8", "Minneapolis road map (Figure 8)", runFigure8},
		{"table8", "Minneapolis iterations (Table 8) and execution time (Figure 9)", runTable8},
		{"figure10", "A* versions vs. graph size (Figure 10)", runFigure10},
		{"figure11", "A* versions vs. edge-cost model (Figure 11)", runFigure11},
		{"figure12", "A* versions vs. path length (Figure 12)", runFigure12},
		{"ablation-frontier", "Frontier management: heap vs. scan vs. duplicates (Section 4 design decision)", runAblationFrontier},
		{"ablation-join", "Forced join strategies on the DB engine (Section 4's F choices)", runAblationJoin},
		{"ablation-buffer", "Buffer-pool size sweep on the DB engine", runAblationBuffer},
		{"ablation-weighted", "Weighted A* ε sweep (the paper's optimality/speed tradeoff)", runAblationWeighted},
		{"ablation-bidirectional", "Bidirectional Dijkstra vs. the paper's algorithms", runAblationBidirectional},
		{"ablation-estimators", "Estimator quality on the road map: zero/euclidean/manhattan/ALT", runAblationEstimators},
		{"ablation-kpaths", "Loopless alternate routes via Yen's algorithm", runAblationKPaths},
		{"ablation-economics", "Single-pair vs. closure/all-pairs work (Section 1.2's argument)", runAblationEconomics},
	}
}

// ByID resolves an experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if strings.EqualFold(e.ID, id) {
			return e, true
		}
	}
	return Experiment{}, false
}

// IDs lists the experiment handles.
func IDs() []string {
	var out []string
	for _, e := range All() {
		out = append(out, e.ID)
	}
	sort.Strings(out)
	return out
}

// memMeasure is one in-memory algorithm measurement.
type memMeasure struct {
	iterations int
	cost       float64
	wall       time.Duration
}

// measureInMemory runs fn reps times, returning its trace and median wall
// time.
func measureInMemory(reps int, fn func() (search.Result, error)) (memMeasure, error) {
	var res search.Result
	var err error
	best := time.Duration(1<<62 - 1)
	for i := 0; i < reps; i++ {
		start := time.Now()
		res, err = fn()
		if err != nil {
			return memMeasure{}, err
		}
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return memMeasure{iterations: res.Trace.Iterations, cost: res.Cost, wall: best}, nil
}

// memAlgorithms is the paper's candidate set against the in-memory engine.
func memAlgorithms(g *graph.Graph, s, d graph.NodeID) map[string]func() (search.Result, error) {
	return map[string]func() (search.Result, error){
		"iterative": func() (search.Result, error) { return search.Iterative(g, s, d) },
		"dijkstra":  func() (search.Result, error) { return search.Dijkstra(g, s, d) },
		"astar-v3":  func() (search.Result, error) { return search.AStar(g, s, d, estimator.Manhattan()) },
	}
}

// dbMeasure runs one DB-resident algorithm and returns (iterations, time
// units).
func dbMeasure(m *dbsearch.MapDB, s, d graph.NodeID, cfg dbsearch.Config, iterative bool) (int, float64, error) {
	var res dbsearch.Result
	var err error
	if iterative {
		res, err = m.RunIterative(s, d, cfg)
	} else {
		res, err = m.RunBestFirst(s, d, cfg)
	}
	if err != nil {
		return 0, 0, err
	}
	return res.Iterations, res.TimeUnits, nil
}

// table renders rows with aligned columns.
func table(w io.Writer, title string, head []string, rows [][]string) {
	fmt.Fprintf(w, "\n%s\n%s\n", title, strings.Repeat("=", len(title)))
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, strings.Join(head, "\t"))
	for _, r := range rows {
		fmt.Fprintln(tw, strings.Join(r, "\t"))
	}
	tw.Flush()
}

// f1 formats a float with one decimal.
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }

// ms formats a duration in milliseconds with two decimals.
func ms(d time.Duration) string { return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000) }
