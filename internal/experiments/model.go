package experiments

import (
	"fmt"
	"io"

	"repro/internal/costmodel"
	"repro/internal/dbsearch"
	"repro/internal/gridgen"
	"repro/internal/optimizer"
)

// paperTable4B holds the paper's cost estimates (30×30 grid, 20% variance).
var paperTable4B = map[string]map[gridgen.PairKind]float64{
	"dijkstra":  {gridgen.Horizontal: 1055.6, gridgen.SemiDiagonal: 1656.8, gridgen.Diagonal: 1941.2},
	"astar-v3":  {gridgen.Horizontal: 66.7, gridgen.SemiDiagonal: 881.2, gridgen.Diagonal: 1809.8},
	"iterative": {gridgen.Horizontal: 176.9, gridgen.SemiDiagonal: 176.9, gridgen.Diagonal: 176.9},
}

// runTable4B evaluates the algebraic cost model with iteration counts
// extracted from execution traces — exactly the paper's procedure — and
// prints the estimates next to the paper's Table 4B, plus the measured DB
// engine units so predicted and observed can be compared.
func runTable4B(w io.Writer, cfg RunConfig) error {
	const k = 30
	kinds := []gridgen.PairKind{gridgen.Horizontal, gridgen.SemiDiagonal, gridgen.Diagonal}
	g := gridgen.MustGenerate(gridgen.Config{K: k, Model: gridgen.Variance, Seed: cfg.seed()})
	model := costmodel.New(optimizer.Params{}, costmodel.GridWorkload(k))

	var m *dbsearch.MapDB
	if !cfg.SkipDB {
		var err error
		m, err = dbsearch.OpenMap(g, dbsearch.Options{})
		if err != nil {
			return err
		}
	}

	estimate := func(name string, iters int) costmodel.Breakdown {
		switch name {
		case "iterative":
			return model.IterativeEstimate(iters)
		case "dijkstra":
			return model.DijkstraEstimate(iters)
		default:
			return model.AStarV3Estimate(iters)
		}
	}

	var rows [][]string
	for _, name := range algoOrder {
		row := []string{name}
		for _, kind := range kinds {
			s, d := gridgen.Pair(k, kind, cfg.seed())
			mm, err := measureInMemory(1, memAlgorithms(g, s, d)[name])
			if err != nil {
				return err
			}
			est := estimate(name, mm.iterations)
			cell := fmt.Sprintf("%.1f (paper %.1f)", est.Total, paperTable4B[name][kind])
			if m != nil {
				dcfg, iterative := dbConfigFor(name)
				_, units, err := dbMeasure(m, s, d, dcfg, iterative)
				if err != nil {
					return err
				}
				cell += fmt.Sprintf(" [engine %.1f]", units)
			}
			row = append(row, cell)
		}
		rows = append(rows, row)
	}
	table(w, "Table 4B: Estimated costs, 30x30 grid, 20% variance — model (paper) [measured engine units]",
		[]string{"algorithm", "horizontal", "semi-diagonal", "diagonal"}, rows)

	// Show one full breakdown so the C_j structure of Tables 2 and 3 is
	// visible in the output.
	s, d := gridgen.Pair(k, gridgen.Diagonal, cfg.seed())
	mm, err := measureInMemory(1, memAlgorithms(g, s, d)["dijkstra"])
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\n%s\n", model.DijkstraEstimate(mm.iterations))

	// The paper's Section 4.3 example forces nested-loop joins; with that
	// assumption the model overshoots where the optimised form undershoots,
	// bracketing the published Γ ≈ 2.16.
	forced := model
	forced.NestedJoinOnly = true
	fmt.Fprintf(w, "Join policy sensitivity (diagonal Dijkstra): optimised Γ %.3f → total %.1f; "+
		"nested-loop-only Γ %.3f → total %.1f; paper 1941.2.\n",
		model.DijkstraEstimate(mm.iterations).IterCost, model.DijkstraEstimate(mm.iterations).Total,
		forced.DijkstraEstimate(mm.iterations).IterCost, forced.DijkstraEstimate(mm.iterations).Total)
	return nil
}
