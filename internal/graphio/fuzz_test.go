package graphio

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzRead exercises the reader on arbitrary input: errors are fine, panics
// are not, and anything that parses must survive a write/read round trip.
func FuzzRead(f *testing.F) {
	seeds := []string{
		"graph 2\nedge 0 1 1\n",
		"graph 0\n",
		"# comment only\n",
		"graph 3\nnode 0 1.5 -2\nnode 2 0 0\nedge 0 2 0.5\nname 0 home\n",
		"graph 1\nnode 0 nan 0\n",
		"graph 2\nedge 0 1 -1\n",
		"graph x\n",
		"edge 0 1 1\n",
		"graph 2\ngraph 2\n",
		"graph 1\nvertex 0\n",
		"graph 9999\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		g, err := Read(strings.NewReader(src))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := Write(&buf, g); err != nil {
			// Whitespace labels cannot occur (the reader splits on
			// whitespace), so a parsed graph must always write.
			t.Fatalf("Write of parsed graph failed: %v", err)
		}
		back, err := Read(&buf)
		if err != nil {
			t.Fatalf("round trip Read failed: %v\ninput: %q\nencoded: %q", err, src, buf.String())
		}
		if back.NumNodes() != g.NumNodes() || back.NumEdges() != g.NumEdges() {
			t.Fatalf("round trip changed shape: %v vs %v", g, back)
		}
	})
}
