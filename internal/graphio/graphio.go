// Package graphio reads and writes graphs in a plain text interchange
// format, so maps can be saved, versioned and shared between the CLI tools
// — the role the digitised map files played for the paper's group.
//
// The format is line-oriented UTF-8:
//
//	# comment
//	graph <numNodes>
//	node <id> <x> <y>
//	edge <tail> <head> <cost>
//	name <id> <label>
//
// `graph` must come first; the other sections may interleave. Node lines
// are optional (missing nodes sit at the origin). Writers emit nodes in id
// order and edges in tail-major order, so the encoding of a given graph is
// canonical and diffable.
package graphio

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/graph"
)

// Write encodes g to w in the canonical text form.
func Write(w io.Writer, g *graph.Graph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# atis-paths graph: %d nodes, %d directed edges\n", g.NumNodes(), g.NumEdges())
	fmt.Fprintf(bw, "graph %d\n", g.NumNodes())
	for u := graph.NodeID(0); int(u) < g.NumNodes(); u++ {
		p := g.Point(u)
		fmt.Fprintf(bw, "node %d %s %s\n", u, formatFloat(p.X), formatFloat(p.Y))
	}
	for _, e := range g.Edges() {
		fmt.Fprintf(bw, "edge %d %d %s\n", e.Tail, e.Head, formatFloat(e.Cost))
	}
	names := g.NamedNodes()
	labels := make([]string, 0, len(names))
	for label := range names {
		labels = append(labels, label)
	}
	sort.Strings(labels)
	for _, label := range labels {
		if strings.ContainsAny(label, " \t\n") {
			return fmt.Errorf("graphio: landmark label %q contains whitespace", label)
		}
		fmt.Fprintf(bw, "name %d %s\n", names[label], label)
	}
	return bw.Flush()
}

// formatFloat renders coordinates and costs compactly but losslessly.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Read decodes a graph from r, validating ids and costs.
func Read(r io.Reader) (*graph.Graph, error) {
	var (
		numNodes = -1
		coords   []graph.Point
		edges    []graph.Edge
		names    = map[string]graph.NodeID{}
	)
	parseID := func(s string, lineNo int) (graph.NodeID, error) {
		id, err := strconv.Atoi(s)
		if err != nil || id < 0 || id >= numNodes {
			return 0, fmt.Errorf("graphio: line %d: node id %q out of range [0,%d)", lineNo, s, numNodes)
		}
		return graph.NodeID(id), nil
	}
	parseF := func(s string, lineNo int) (float64, error) {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return 0, fmt.Errorf("graphio: line %d: bad number %q", lineNo, s)
		}
		return v, nil
	}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "graph":
			if numNodes >= 0 {
				return nil, fmt.Errorf("graphio: line %d: duplicate graph header", lineNo)
			}
			if len(fields) != 2 {
				return nil, fmt.Errorf("graphio: line %d: graph header wants one argument", lineNo)
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("graphio: line %d: bad node count %q", lineNo, fields[1])
			}
			numNodes = n
			coords = make([]graph.Point, n)
		case "node":
			if numNodes < 0 {
				return nil, fmt.Errorf("graphio: line %d: node before graph header", lineNo)
			}
			if len(fields) != 4 {
				return nil, fmt.Errorf("graphio: line %d: node wants: node <id> <x> <y>", lineNo)
			}
			id, err := parseID(fields[1], lineNo)
			if err != nil {
				return nil, err
			}
			x, err := parseF(fields[2], lineNo)
			if err != nil {
				return nil, err
			}
			y, err := parseF(fields[3], lineNo)
			if err != nil {
				return nil, err
			}
			coords[id] = graph.Point{X: x, Y: y}
		case "edge":
			if numNodes < 0 {
				return nil, fmt.Errorf("graphio: line %d: edge before graph header", lineNo)
			}
			if len(fields) != 4 {
				return nil, fmt.Errorf("graphio: line %d: edge wants: edge <tail> <head> <cost>", lineNo)
			}
			tail, err := parseID(fields[1], lineNo)
			if err != nil {
				return nil, err
			}
			head, err := parseID(fields[2], lineNo)
			if err != nil {
				return nil, err
			}
			cost, err := parseF(fields[3], lineNo)
			if err != nil {
				return nil, err
			}
			edges = append(edges, graph.Edge{Tail: tail, Head: head, Cost: cost})
		case "name":
			if numNodes < 0 {
				return nil, fmt.Errorf("graphio: line %d: name before graph header", lineNo)
			}
			if len(fields) != 3 {
				return nil, fmt.Errorf("graphio: line %d: name wants: name <id> <label>", lineNo)
			}
			id, err := parseID(fields[1], lineNo)
			if err != nil {
				return nil, err
			}
			names[fields[2]] = id
		default:
			return nil, fmt.Errorf("graphio: line %d: unknown directive %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graphio: %w", err)
	}
	if numNodes < 0 {
		return nil, fmt.Errorf("graphio: missing graph header")
	}

	b := graph.NewBuilder(numNodes, len(edges))
	for _, p := range coords {
		b.AddNode(p.X, p.Y)
	}
	for _, e := range edges {
		b.AddEdge(e.Tail, e.Head, e.Cost)
	}
	for label, id := range names {
		b.Name(id, label)
	}
	return b.Build()
}
