package graphio

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/gridgen"
	"repro/internal/mpls"
)

// roundTrip writes g and reads it back.
func roundTrip(t *testing.T, g *graph.Graph) *graph.Graph {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	return got
}

// assertEqualGraphs compares structure, coordinates, costs and names.
func assertEqualGraphs(t *testing.T, want, got *graph.Graph) {
	t.Helper()
	if want.NumNodes() != got.NumNodes() || want.NumEdges() != got.NumEdges() {
		t.Fatalf("shape: %v vs %v", want, got)
	}
	for u := graph.NodeID(0); int(u) < want.NumNodes(); u++ {
		if want.Point(u) != got.Point(u) {
			t.Fatalf("node %d coords %v vs %v", u, want.Point(u), got.Point(u))
		}
	}
	we, ge := want.Edges(), got.Edges()
	for i := range we {
		if we[i] != ge[i] {
			t.Fatalf("edge %d: %+v vs %+v", i, we[i], ge[i])
		}
	}
	wn, gn := want.NamedNodes(), got.NamedNodes()
	if len(wn) != len(gn) {
		t.Fatalf("names: %v vs %v", wn, gn)
	}
	for k, v := range wn {
		if gn[k] != v {
			t.Fatalf("name %q: %d vs %d", k, v, gn[k])
		}
	}
}

func TestRoundTripGrid(t *testing.T) {
	g := gridgen.MustGenerate(gridgen.Config{K: 8, Model: gridgen.Variance, Seed: 3})
	assertEqualGraphs(t, g, roundTrip(t, g))
}

func TestRoundTripMinneapolis(t *testing.T) {
	g := mpls.MustGenerate(mpls.Config{})
	assertEqualGraphs(t, g, roundTrip(t, g))
}

func TestRoundTripEmptyGraph(t *testing.T) {
	g := graph.NewBuilder(0, 0).MustBuild()
	got := roundTrip(t, g)
	if got.NumNodes() != 0 || got.NumEdges() != 0 {
		t.Errorf("empty round trip: %v", got)
	}
}

func TestRoundTripSpecialFloats(t *testing.T) {
	b := graph.NewBuilder(2, 1)
	b.AddNode(0.1+0.2, -1e-300) // values that lose precision under %f
	b.AddNode(math.MaxFloat64/2, 3)
	b.AddEdge(0, 1, 1e-9)
	g := b.MustBuild()
	assertEqualGraphs(t, g, roundTrip(t, g))
}

func TestWriteIsCanonical(t *testing.T) {
	g := mpls.MustGenerate(mpls.Config{})
	var a, b bytes.Buffer
	if err := Write(&a, g); err != nil {
		t.Fatal(err)
	}
	if err := Write(&b, g); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("two writes of the same graph differ")
	}
}

func TestWriteRejectsWhitespaceLabels(t *testing.T) {
	b := graph.NewBuilder(1, 0)
	b.AddNode(0, 0)
	b.Name(0, "down town")
	g := b.MustBuild()
	if err := Write(&bytes.Buffer{}, g); err == nil {
		t.Error("whitespace label accepted")
	}
}

func TestReadToleratesCommentsAndBlanks(t *testing.T) {
	src := `
# a map
graph 2

node 0 0 0
# midway comment
node 1 1 0
edge 0 1 2.5
name 0 home
`
	g, err := Read(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 2 || g.NumEdges() != 1 {
		t.Errorf("parsed %v", g)
	}
	if id, ok := g.Lookup("home"); !ok || id != 0 {
		t.Errorf("name: %v %v", id, ok)
	}
	if c, ok := g.ArcCost(0, 1); !ok || c != 2.5 {
		t.Errorf("cost: %v %v", c, ok)
	}
}

func TestReadDefaultsMissingNodesToOrigin(t *testing.T) {
	g, err := Read(strings.NewReader("graph 3\nedge 0 2 1\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.Point(1) != (graph.Point{}) {
		t.Errorf("missing node at %v", g.Point(1))
	}
}

func TestReadErrors(t *testing.T) {
	cases := []struct {
		name, src string
	}{
		{"no header", "node 0 0 0\n"},
		{"edge before header", "edge 0 1 1\n"},
		{"name before header", "name 0 x\n"},
		{"duplicate header", "graph 1\ngraph 1\n"},
		{"bad node count", "graph x\n"},
		{"negative node count", "graph -3\n"},
		{"node id out of range", "graph 1\nnode 5 0 0\n"},
		{"edge id out of range", "graph 1\nedge 0 7 1\n"},
		{"name id out of range", "graph 1\nname 9 x\n"},
		{"node arity", "graph 1\nnode 0 1\n"},
		{"edge arity", "graph 1\nedge 0 0\n"},
		{"name arity", "graph 1\nname 0\n"},
		{"graph arity", "graph 1 2\n"},
		{"bad float", "graph 1\nnode 0 zero 0\n"},
		{"bad edge cost", "graph 2\nedge 0 1 cheap\n"},
		{"negative edge cost", "graph 2\nedge 0 1 -1\n"},
		{"unknown directive", "graph 1\nvertex 0\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Read(strings.NewReader(tc.src)); err == nil {
				t.Errorf("accepted %q", tc.src)
			}
		})
	}
}
