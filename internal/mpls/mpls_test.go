package mpls

import (
	"math"
	"testing"

	"repro/internal/estimator"
	"repro/internal/graph"
	"repro/internal/search"
)

func defaultMap(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := Generate(Config{})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestPaperStatistics(t *testing.T) {
	g := defaultMap(t)
	if g.NumNodes() != 1089 {
		t.Errorf("nodes = %d, want 1089", g.NumNodes())
	}
	// The paper reports 3300 edges; the generator lands within a few
	// percent (the spanning forest floor and one-way conversions quantise
	// the exact count).
	if e := g.NumEdges(); e < 3150 || e > 3450 {
		t.Errorf("edges = %d, want ≈3300", e)
	}
}

func TestDeterminism(t *testing.T) {
	a := MustGenerate(Config{})
	b := MustGenerate(Config{})
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("same seed produced different edge counts")
	}
	ea, eb := a.Edges(), b.Edges()
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("edge %d differs: %+v vs %+v", i, ea[i], eb[i])
		}
	}
	c := MustGenerate(Config{Seed: 7})
	if c.NumEdges() == a.NumEdges() {
		// Edge counts may coincide; compare a sample of coordinates too.
		same := true
		for u := graph.NodeID(0); u < 50; u++ {
			if a.Point(u) != c.Point(u) {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical maps")
		}
	}
}

func TestLandmarksExistAndConnected(t *testing.T) {
	g := defaultMap(t)
	labels := []string{"A", "B", "C", "D", "E", "F", "G"}
	ids := map[string]graph.NodeID{}
	for _, l := range labels {
		id, ok := g.Lookup(l)
		if !ok {
			t.Fatalf("landmark %s missing", l)
		}
		ids[l] = id
	}
	// Every Table 8 route must exist in both directions (the network is
	// usable even with one-way freeways).
	for _, pp := range PaperPaths() {
		r, err := search.Dijkstra(g, ids[pp.From], ids[pp.To])
		if err != nil {
			t.Fatal(err)
		}
		if !r.Found {
			t.Errorf("%s: no route", pp.Name)
		}
		back, err := search.Dijkstra(g, ids[pp.To], ids[pp.From])
		if err != nil {
			t.Fatal(err)
		}
		if !back.Found {
			t.Errorf("%s reversed: no route", pp.Name)
		}
	}
}

func TestCostsAreEuclideanDistances(t *testing.T) {
	g := defaultMap(t)
	for _, e := range g.Edges() {
		want := g.Point(e.Tail).EuclideanDistance(g.Point(e.Head))
		if math.Abs(e.Cost-want) > 1e-9 {
			t.Fatalf("edge (%d,%d): cost %v, distance %v", e.Tail, e.Head, e.Cost, want)
		}
	}
}

func TestOneWayFreewayExists(t *testing.T) {
	g := defaultMap(t)
	oneWay := 0
	for _, e := range g.Edges() {
		if _, back := g.ArcCost(e.Head, e.Tail); !back {
			oneWay++
		}
	}
	if oneWay < 30 {
		t.Errorf("only %d one-way edges; the freeway pair should contribute ≈64", oneWay)
	}
}

func TestLakesHaveNoRoads(t *testing.T) {
	g := defaultMap(t)
	for row := 0; row < Side; row++ {
		for col := 0; col < Side; col++ {
			if !inLake(float64(col), float64(row)) {
				continue
			}
			u := graph.NodeID(row*Side + col)
			if g.OutDegree(u) != 0 {
				t.Fatalf("lake node (%d,%d) has %d roads", row, col, g.OutDegree(u))
			}
		}
	}
}

func TestRiverCrossedOnlyAtBridges(t *testing.T) {
	g := defaultMap(t)
	crossings := map[int]bool{}
	for _, e := range g.Edges() {
		cr, cc := int(e.Tail)/Side, int(e.Tail)%Side
		hr, hc := int(e.Head)/Side, int(e.Head)%Side
		s1 := riverSide(float64(cc), float64(cr))
		s2 := riverSide(float64(hc), float64(hr))
		if s1 != 0 && s2 != 0 && s1 != s2 {
			if !bridges[cc] && !bridges[hc] {
				t.Fatalf("edge (%d,%d)-(%d,%d) crosses the river off-bridge", cr, cc, hr, hc)
			}
			crossings[cc] = true
		}
	}
	if len(crossings) == 0 {
		t.Error("no bridges cross the river: D would be unreachable")
	}
}

// The paper's Section 5.3 observation: manhattan distance is NOT an
// underestimate on the Minneapolis map, so A* v3 loses its optimality
// guarantee there.
func TestManhattanInadmissibleOnRoadMap(t *testing.T) {
	g := defaultMap(t)
	d, _ := g.Lookup("D")
	violations := search.VerifyAdmissible(g, estimator.Manhattan(), d, 1e-9)
	if len(violations) == 0 {
		t.Error("manhattan admissible on the road map; the paper says it must not be")
	}
	// Euclidean remains admissible: costs are euclidean distances.
	if v := search.VerifyAdmissible(g, estimator.Euclidean(), d, 1e-9); len(v) != 0 {
		t.Errorf("euclidean inadmissible: %v", v[0])
	}
}

// The downtown core is rotated: some edges in the centre are far from
// axis-parallel.
func TestDowntownRotation(t *testing.T) {
	g := defaultMap(t)
	rotated := 0
	for _, e := range g.Edges() {
		p, q := g.Point(e.Tail), g.Point(e.Head)
		dx, dy := math.Abs(p.X-q.X), math.Abs(p.Y-q.Y)
		// Axis-parallel edges have one component near zero; rotated
		// downtown edges have both clearly nonzero.
		if dx > 0.3 && dy > 0.3 {
			rotated++
		}
	}
	if rotated < 50 {
		t.Errorf("only %d clearly-diagonal edges; downtown rotation missing", rotated)
	}
}

// Table 8's qualitative structure: the two diagonals are long (hundreds of
// Dijkstra iterations), the two short pairs small, and A* beats Dijkstra
// everywhere with the gap largest on short paths.
func TestTable8Regimes(t *testing.T) {
	g := defaultMap(t)
	iters := map[string]int{}
	for _, pp := range PaperPaths() {
		from, _ := g.Lookup(pp.From)
		to, _ := g.Lookup(pp.To)
		r, err := search.Dijkstra(g, from, to)
		if err != nil || !r.Found {
			t.Fatalf("%s: %v found=%v", pp.Name, err, r.Found)
		}
		iters[pp.Name] = r.Trace.Iterations

		ast, err := search.AStar(g, from, to, estimator.Euclidean())
		if err != nil {
			t.Fatal(err)
		}
		if ast.Trace.Iterations > r.Trace.Iterations {
			t.Errorf("%s: A* %d > Dijkstra %d", pp.Name, ast.Trace.Iterations, r.Trace.Iterations)
		}
	}
	if iters["A to B"] < 400 || iters["C to D"] < 400 {
		t.Errorf("diagonals too easy: %v (paper: ≈1058 and 1006)", iters)
	}
	if iters["G to D"] > 400 {
		t.Errorf("G to D explored %d nodes; should be a short-path regime (paper: 105)", iters["G to D"])
	}
}

func TestNearestDryAvoidsLakes(t *testing.T) {
	// Request a node in the middle of a lake: the helper must return a dry
	// neighbour.
	u := nearestDry(6, 6)
	r, c := int(u)/Side, int(u)%Side
	if inLake(float64(c), float64(r)) {
		t.Errorf("nearestDry(6,6) returned lake node (%d,%d)", r, c)
	}
}

func TestTargetEdgesHonored(t *testing.T) {
	small := MustGenerate(Config{TargetEdges: 2800})
	if e := small.NumEdges(); e > 2900 {
		t.Errorf("TargetEdges 2800 produced %d edges", e)
	}
	// The spanning forest sets a floor; asking for too few clamps there.
	floor := MustGenerate(Config{TargetEdges: 100})
	if e := floor.NumEdges(); e < 1000 {
		t.Errorf("sparsification broke the spanning forest: %d edges", e)
	}
}
