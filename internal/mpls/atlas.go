package mpls

import (
	"fmt"

	"repro/internal/graph"
)

// The paper's Minneapolis records carried more than geometry: "the data
// about each segment includes x and y position of the two nodes, average
// speed for the segment, average occupancy, and road type". This file adds
// those attributes. The preliminary experiments of Section 5.2 used only
// distance as the edge cost; the TravelTime metric below is the natural
// next step the data was collected for, and the route package's dynamic
// congestion builds on it.

// RoadClass is the segment's road type.
type RoadClass int

const (
	// Local streets: the default.
	Local RoadClass = iota
	// Highway arterials: the periodic through-streets of the lattice.
	Highway
	// Freeway: the one-way pair through the centre.
	Freeway
)

// String names the class.
func (c RoadClass) String() string {
	switch c {
	case Local:
		return "local"
	case Highway:
		return "highway"
	case Freeway:
		return "freeway"
	default:
		return fmt.Sprintf("RoadClass(%d)", int(c))
	}
}

// SpeedMPH returns the class's free-flow average speed.
func (c RoadClass) SpeedMPH() float64 {
	switch c {
	case Freeway:
		return 55
	case Highway:
		return 40
	default:
		return 25
	}
}

// Metric selects what the generated edge costs mean.
type Metric int

const (
	// Distance costs are euclidean segment lengths (the paper's
	// preliminary experiments).
	Distance Metric = iota
	// TravelTime costs are free-flow traversal minutes:
	// distance / speed × 60, with the map's unit taken as one mile.
	TravelTime
)

// String names the metric.
func (m Metric) String() string {
	switch m {
	case Distance:
		return "distance"
	case TravelTime:
		return "travel-time"
	default:
		return fmt.Sprintf("Metric(%d)", int(m))
	}
}

// Segment is one undirected road segment's attribute record.
type Segment struct {
	From, To  graph.NodeID
	Class     RoadClass
	Distance  float64 // euclidean length in map units (miles)
	SpeedMPH  float64 // free-flow average speed
	Occupancy float64 // average occupancy in [0, 1): reported data
}

// TravelMinutes returns the segment's free-flow traversal time.
func (s Segment) TravelMinutes() float64 {
	return s.Distance / s.SpeedMPH * 60
}

// Atlas carries per-segment attributes keyed by either direction.
type Atlas struct {
	segments map[[2]graph.NodeID]Segment
}

// Segment returns the attribute record for the directed edge (u, v), if it
// exists. Both directions of a two-way segment share one record.
func (a *Atlas) Segment(u, v graph.NodeID) (Segment, bool) {
	s, ok := a.segments[[2]graph.NodeID{u, v}]
	return s, ok
}

// NumSegments returns the number of directed edges with attributes.
func (a *Atlas) NumSegments() int { return len(a.segments) }

// ClassCounts tallies directed edges per road class.
func (a *Atlas) ClassCounts() map[RoadClass]int {
	out := map[RoadClass]int{}
	for _, s := range a.segments {
		out[s.Class]++
	}
	return out
}

// classify returns the road class of the lattice segment (by endpoint
// lattice coordinates). Rows 16/17 are the freeway pair; every eighth row
// and column is a highway arterial.
func classify(r1, c1, r2, c2 int) RoadClass {
	if r1 == r2 && (r1 == 16 || r1 == 17) {
		return Freeway
	}
	if r1 == r2 && r1%8 == 0 {
		return Highway
	}
	if c1 == c2 && c1%8 == 0 {
		return Highway
	}
	return Local
}
