// Package mpls synthesises a road network with the published statistics of
// the paper's Minneapolis data set (Section 5.2): 1089 nodes and ≈3300
// directed edges of highway and freeway segments covering a 20-square-mile
// area, with
//
//   - a dense downtown core whose street grid is rotated against the map
//     axes ("the highways and freeways are not parallel to the x or y
//     axis"),
//   - lakes interrupting the lower-left corner,
//   - the Mississippi river flowing north to southeast through the
//     upper-right quadrant, crossed only by a few bridges,
//   - one-way freeway pairs ("edges that connected freeway segments were
//     one-way, making the resulting graph directed"), and
//   - euclidean distance as the edge cost ("we used only the distance
//     between edges as the edge cost").
//
// The original digitised map is not available; this generator is the
// substitution documented in DESIGN.md. It preserves the properties the
// paper's experiments exercise: the manhattan estimator is inadmissible on
// the rotated downtown geometry, the two long diagonals interact differently
// with the downtown slope (A→B against it, C→D along it), and the short
// pairs (G→D, E→F) sit in the regime where estimator-based search wins.
//
// Everything is deterministic for a given Config.
package mpls

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/graph"
)

// Side is the base lattice side: 33×33 = 1089 nodes, the paper's node count.
const Side = 33

// Config parameterises generation.
type Config struct {
	// Seed drives coordinate jitter and sparsification; the default 1993
	// (the paper's year) is used when zero.
	Seed int64
	// TargetEdges is the directed-edge budget; 0 means the paper's 3300.
	TargetEdges int
	// Metric selects the edge-cost semantics: Distance (the paper's
	// preliminary experiments, the default) or TravelTime (free-flow
	// minutes from each segment's road class and speed).
	Metric Metric
}

// PaperPath is one of the four measured routes of Table 8.
type PaperPath struct {
	Name     string
	From, To string
}

// PaperPaths lists Table 8's routes: two long diagonals and two short hops.
func PaperPaths() []PaperPath {
	return []PaperPath{
		{Name: "A to B", From: "A", To: "B"},
		{Name: "C to D", From: "C", To: "D"},
		{Name: "G to D", From: "G", To: "D"},
		{Name: "E to F", From: "E", To: "F"},
	}
}

// segment is an undirected lattice road segment between two node ids.
type segment struct{ a, b int }

// center of the map and of the rotated downtown core.
const (
	centerX, centerY = 16.0, 16.0
	downtownRadius   = 5.5
	downtownAngle    = math.Pi / 6 // 30°: the downtown slope
)

// lake blobs in the lower-left corner: (x, y, radius).
var lakes = [][3]float64{
	{6, 6, 2.3},
	{10, 3.5, 1.7},
}

// inLake reports whether lattice point (x, y) is under water.
func inLake(x, y float64) bool {
	for _, l := range lakes {
		dx, dy := x-l[0], y-l[1]
		if dx*dx+dy*dy <= l[2]*l[2] {
			return true
		}
	}
	return false
}

// riverSide classifies a point against the river, a band around the curve
// running from the north edge (x≈22, y=32) southeast to the east edge
// (x=32, y≈20): the line x + y = 54 restricted to the upper-right quadrant.
// Returns -1 below/left of the river, +1 above/right, 0 when the point is
// outside the river's quadrant (no river there).
func riverSide(x, y float64) int {
	if x < 18 || y < 18 {
		return 0
	}
	if x+y < 54 {
		return -1
	}
	return 1
}

// bridges are the column positions (by lattice x of the southwest endpoint)
// where edges may cross the river.
var bridges = map[int]bool{20: true, 25: true, 30: true}

// crossesRiver reports whether the lattice segment (r1,c1)-(r2,c2) crosses
// the river away from a bridge.
func crossesRiver(c1, r1, c2, r2 int) bool {
	s1 := riverSide(float64(c1), float64(r1))
	s2 := riverSide(float64(c2), float64(r2))
	if s1 == 0 || s2 == 0 || s1 == s2 {
		return false
	}
	// A bridge carries the crossing if either endpoint column is a bridge
	// column; bridges are vertical-ish crossings.
	return !bridges[c1] || !bridges[c2]
}

// Generate builds the synthetic Minneapolis graph.
func Generate(cfg Config) (*graph.Graph, error) {
	g, _, err := GenerateWithAtlas(cfg)
	return g, err
}

// GenerateWithAtlas builds the graph together with the per-segment
// attribute records (road class, speed, occupancy) of Section 5.2's data
// description.
func GenerateWithAtlas(cfg Config) (*graph.Graph, *Atlas, error) {
	seed := cfg.Seed
	if seed == 0 {
		seed = 1993
	}
	target := cfg.TargetEdges
	if target == 0 {
		target = 3300
	}
	if cfg.Metric != Distance && cfg.Metric != TravelTime {
		return nil, nil, fmt.Errorf("mpls: unknown metric %v", cfg.Metric)
	}
	rng := rand.New(rand.NewSource(seed))

	// 1. Node coordinates: jittered lattice, rotated+condensed downtown.
	coords := make([]graph.Point, Side*Side)
	nodeAt := func(row, col int) int { return row*Side + col }
	for row := 0; row < Side; row++ {
		for col := 0; col < Side; col++ {
			x := float64(col)
			y := float64(row)
			dx, dy := x-centerX, y-centerY
			dist := math.Hypot(dx, dy)
			if dist <= downtownRadius {
				// Downtown: rotate around the centre. The inner core is
				// fully rotated; the rotation fades over the outer two
				// rings so streets connect smoothly to the outlying grid.
				// Lengths are preserved (no condensation): the geometry is
				// skewed against the axes without granting cheap shortcuts,
				// which is precisely what makes the manhattan estimator
				// inadmissible without letting it collapse.
				blend := (downtownRadius - dist) / 2
				if blend > 1 {
					blend = 1
				}
				angle := downtownAngle * blend
				cosA, sinA := math.Cos(angle), math.Sin(angle)
				rx := dx*cosA - dy*sinA
				ry := dx*sinA + dy*cosA
				x = centerX + rx
				y = centerY + ry
			} else {
				// Outlying areas: mild jitter so roads are not ruler-drawn.
				x += (rng.Float64() - 0.5) * 0.3
				y += (rng.Float64() - 0.5) * 0.3
			}
			coords[nodeAt(row, col)] = graph.Point{X: x, Y: y}
		}
	}

	// 2. Candidate undirected segments: the lattice, minus water.
	var segs []segment
	addIfDry := func(r1, c1, r2, c2 int) {
		if inLake(float64(c1), float64(r1)) || inLake(float64(c2), float64(r2)) {
			return
		}
		if crossesRiver(c1, r1, c2, r2) {
			return
		}
		segs = append(segs, segment{nodeAt(r1, c1), nodeAt(r2, c2)})
	}
	for row := 0; row < Side; row++ {
		for col := 0; col < Side; col++ {
			if col+1 < Side {
				addIfDry(row, col, row, col+1)
			}
			if row+1 < Side {
				addIfDry(row, col, row+1, col)
			}
		}
	}

	// 3. Freeway one-way pair: row 16 eastbound, row 17 westbound. Collect
	// the segment set once; direction is applied when emitting edges.
	oneWayEast := make(map[segment]bool)
	oneWayWest := make(map[segment]bool)
	for _, s := range segs {
		ra, ca := s.a/Side, s.a%Side
		rb, cb := s.b/Side, s.b%Side
		if ra == rb && ra == 16 && cb == ca+1 {
			oneWayEast[s] = true
		}
		if ra == rb && ra == 17 && cb == ca+1 {
			oneWayWest[s] = true
		}
	}

	// 4. Sparsify toward the target edge budget while preserving
	// connectivity: a randomised spanning forest of the dry lattice is
	// protected; other segments are removed at random.
	protected := spanningForest(Side*Side, segs, rng)
	directedCount := func() int {
		n := 0
		for _, s := range segs {
			switch {
			case oneWayEast[s], oneWayWest[s]:
				n++
			default:
				n += 2
			}
		}
		return n
	}
	// Removal order over non-protected segments. Segments in the A→B
	// anti-diagonal corridor (away from downtown) are removed first: the
	// sparser road network there forces detours, which is what makes the
	// A→B diagonal backtrack more than C→D in the paper's Table 8 ("the
	// path from point A to point B is against the slope of the downtown
	// area, resulting in more backtracking").
	inABCorridor := func(s segment) bool {
		ra, ca := s.a/Side, s.a%Side
		antiDiag := math.Abs(float64(ra+ca) - float64(Side-1))
		mainDiag := math.Abs(float64(ra - ca))
		return antiDiag <= 4 && mainDiag > 8
	}
	var corridor, rest []int
	for i, s := range segs {
		if protected[s] || oneWayEast[s] || oneWayWest[s] {
			continue
		}
		if inABCorridor(s) {
			corridor = append(corridor, i)
		} else {
			rest = append(rest, i)
		}
	}
	rng.Shuffle(len(corridor), func(i, j int) { corridor[i], corridor[j] = corridor[j], corridor[i] })
	rng.Shuffle(len(rest), func(i, j int) { rest[i], rest[j] = rest[j], rest[i] })
	removable := append(corridor, rest...)
	removed := make([]bool, len(segs))
	have := directedCount()
	for _, i := range removable {
		if have <= target {
			break
		}
		removed[i] = true
		have -= 2
	}

	// 5. Emit the graph under the configured metric, recording each
	// segment's attribute record (road class, speed, occupancy) on the way.
	b := graph.NewBuilder(Side*Side, have)
	for _, p := range coords {
		b.AddNode(p.X, p.Y)
	}
	atlas := &Atlas{segments: make(map[[2]graph.NodeID]Segment, have)}
	for i, s := range segs {
		if removed[i] {
			continue
		}
		u, v := graph.NodeID(s.a), graph.NodeID(s.b)
		seg := Segment{
			From:      u,
			To:        v,
			Class:     classify(s.a/Side, s.a%Side, s.b/Side, s.b%Side),
			Distance:  coords[s.a].EuclideanDistance(coords[s.b]),
			Occupancy: rng.Float64() * 0.8,
		}
		seg.SpeedMPH = seg.Class.SpeedMPH()
		cost := seg.Distance
		if cfg.Metric == TravelTime {
			cost = seg.TravelMinutes()
		}
		switch {
		case oneWayEast[s]:
			b.AddEdge(u, v, cost)
			atlas.segments[[2]graph.NodeID{u, v}] = seg
		case oneWayWest[s]:
			b.AddEdge(v, u, cost)
			atlas.segments[[2]graph.NodeID{v, u}] = seg
		default:
			b.AddUndirectedEdge(u, v, cost)
			atlas.segments[[2]graph.NodeID{u, v}] = seg
			atlas.segments[[2]graph.NodeID{v, u}] = seg
		}
	}

	// 6. Landmarks (Table 8). A→B runs against the downtown slope,
	// C→D along it; G→D and E→F are the short pairs.
	name := func(label string, row, col int) {
		b.Name(nearestDry(row, col), label)
	}
	name("A", 2, 30)  // southeast corner area
	name("B", 30, 2)  // northwest corner area
	name("C", 2, 2)   // southwest (beyond the lakes)
	name("D", 30, 30) // northeast, across the river
	name("G", 28, 27) // near D
	name("E", 8, 19)  // mid-map short hop …
	name("F", 12, 23) // … to here
	g, err := b.Build()
	if err != nil {
		return nil, nil, err
	}
	return g, atlas, nil
}

// MustGenerate is Generate that panics on error.
func MustGenerate(cfg Config) *graph.Graph {
	g, err := Generate(cfg)
	if err != nil {
		panic(err)
	}
	return g
}

// nearestDry returns the lattice node closest to (row, col) that is not in
// a lake, searching outward ring by ring.
func nearestDry(row, col int) graph.NodeID {
	for radius := 0; radius < Side; radius++ {
		for dr := -radius; dr <= radius; dr++ {
			for dc := -radius; dc <= radius; dc++ {
				r, c := row+dr, col+dc
				if r < 0 || r >= Side || c < 0 || c >= Side {
					continue
				}
				if !inLake(float64(c), float64(r)) {
					return graph.NodeID(r*Side + c)
				}
			}
		}
	}
	panic(fmt.Sprintf("mpls: no dry node near (%d,%d)", row, col))
}

// spanningForest returns a protected-segment set forming a spanning forest
// of the dry lattice, chosen in random order so sparsification is unbiased.
func spanningForest(n int, segs []segment, rng *rand.Rand) map[segment]bool {
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	order := make([]int, len(segs))
	for i := range order {
		order[i] = i
	}
	rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
	protected := make(map[segment]bool, n)
	for _, i := range order {
		s := segs[i]
		ra, rb := find(s.a), find(s.b)
		if ra != rb {
			parent[ra] = rb
			protected[s] = true
		}
	}
	return protected
}
