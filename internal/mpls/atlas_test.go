package mpls

import (
	"math"
	"testing"

	"repro/internal/estimator"
	"repro/internal/search"
)

func TestAtlasCoversEveryEdge(t *testing.T) {
	g, atlas, err := GenerateWithAtlas(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if atlas.NumSegments() != g.NumEdges() {
		t.Errorf("atlas has %d records for %d edges", atlas.NumSegments(), g.NumEdges())
	}
	for _, e := range g.Edges() {
		seg, ok := atlas.Segment(e.Tail, e.Head)
		if !ok {
			t.Fatalf("edge (%d,%d) has no attribute record", e.Tail, e.Head)
		}
		if seg.Distance <= 0 || seg.SpeedMPH <= 0 {
			t.Fatalf("degenerate segment %+v", seg)
		}
		if seg.Occupancy < 0 || seg.Occupancy >= 1 {
			t.Fatalf("occupancy %v out of [0,1)", seg.Occupancy)
		}
		if seg.SpeedMPH != seg.Class.SpeedMPH() {
			t.Fatalf("segment speed %v disagrees with class %v", seg.SpeedMPH, seg.Class)
		}
	}
}

func TestAtlasClassMix(t *testing.T) {
	_, atlas, err := GenerateWithAtlas(Config{})
	if err != nil {
		t.Fatal(err)
	}
	counts := atlas.ClassCounts()
	if counts[Freeway] < 30 {
		t.Errorf("only %d freeway edges", counts[Freeway])
	}
	if counts[Highway] < 200 {
		t.Errorf("only %d highway edges", counts[Highway])
	}
	if counts[Local] < 1000 {
		t.Errorf("only %d local edges", counts[Local])
	}
}

func TestDistanceMetricUnchangedByAtlas(t *testing.T) {
	// Distance-metric generation must be identical to what Generate always
	// produced (Config zero value).
	g1 := MustGenerate(Config{})
	g2, _, err := GenerateWithAtlas(Config{Metric: Distance})
	if err != nil {
		t.Fatal(err)
	}
	e1, e2 := g1.Edges(), g2.Edges()
	if len(e1) != len(e2) {
		t.Fatal("edge counts differ")
	}
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatalf("edge %d differs: %+v vs %+v", i, e1[i], e2[i])
		}
	}
}

func TestTravelTimeCosts(t *testing.T) {
	g, atlas, err := GenerateWithAtlas(Config{Metric: TravelTime})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range g.Edges() {
		seg, ok := atlas.Segment(e.Tail, e.Head)
		if !ok {
			t.Fatal("missing segment")
		}
		want := seg.Distance / seg.SpeedMPH * 60
		if math.Abs(e.Cost-want) > 1e-9 {
			t.Fatalf("edge (%d,%d): cost %v, want %v minutes", e.Tail, e.Head, e.Cost, want)
		}
	}
}

func TestTravelTimeRoutePrefersFastRoads(t *testing.T) {
	gd, atlasD, err := GenerateWithAtlas(Config{Metric: Distance})
	if err != nil {
		t.Fatal(err)
	}
	gt, atlasT, err := GenerateWithAtlas(Config{Metric: TravelTime})
	if err != nil {
		t.Fatal(err)
	}

	share := func(res search.Result, atlas *Atlas) float64 {
		fast, total := 0, 0
		for i := 0; i+1 < len(res.Path.Nodes); i++ {
			seg, ok := atlas.Segment(res.Path.Nodes[i], res.Path.Nodes[i+1])
			if !ok {
				t.Fatal("route uses unknown segment")
			}
			total++
			if seg.Class != Local {
				fast++
			}
		}
		if total == 0 {
			return 0
		}
		return float64(fast) / float64(total)
	}

	a, _ := gd.Lookup("C")
	bNode, _ := gd.Lookup("D")
	distRoute, err := search.Dijkstra(gd, a, bNode)
	if err != nil || !distRoute.Found {
		t.Fatalf("distance route: %v", err)
	}
	timeRoute, err := search.Dijkstra(gt, a, bNode)
	if err != nil || !timeRoute.Found {
		t.Fatalf("time route: %v", err)
	}
	if share(timeRoute, atlasT) <= share(distRoute, atlasD) {
		t.Errorf("travel-time route uses %.0f%% fast roads, distance route %.0f%%: fast roads should attract the time metric",
			share(timeRoute, atlasT)*100, share(distRoute, atlasD)*100)
	}
}

// On the travel-time metric, euclidean distance scaled by the top speed
// (minutes per mile at 55 mph) is an admissible estimator; raw euclidean
// (implicitly assuming 60 minutes per mile) would overestimate on freeways.
func TestTravelTimeAdmissibleEstimator(t *testing.T) {
	g, _, err := GenerateWithAtlas(Config{Metric: TravelTime})
	if err != nil {
		t.Fatal(err)
	}
	d, _ := g.Lookup("D")
	minutesPerMile := 60.0 / Freeway.SpeedMPH()
	est := estimator.Scaled(estimator.Euclidean(), minutesPerMile)
	if v := search.VerifyAdmissible(g, est, d, 1e-9); len(v) != 0 {
		t.Errorf("speed-scaled euclidean inadmissible on travel time: %v", v[0])
	}
	// And A* with it is optimal.
	s, _ := g.Lookup("C")
	dij, _ := search.Dijkstra(g, s, d)
	ast, err := search.AStar(g, s, d, est)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ast.Cost-dij.Cost) > 1e-9 {
		t.Errorf("A* %v != optimal %v", ast.Cost, dij.Cost)
	}
}

func TestMetricAndClassStrings(t *testing.T) {
	if Distance.String() != "distance" || TravelTime.String() != "travel-time" {
		t.Error("metric names")
	}
	if Metric(9).String() != "Metric(9)" {
		t.Error("unknown metric name")
	}
	if Local.String() != "local" || Highway.String() != "highway" || Freeway.String() != "freeway" {
		t.Error("class names")
	}
	if RoadClass(9).String() != "RoadClass(9)" {
		t.Error("unknown class name")
	}
	if _, _, err := GenerateWithAtlas(Config{Metric: Metric(9)}); err == nil {
		t.Error("unknown metric accepted")
	}
}
