package graph

import (
	"fmt"
	"math"
	"sort"
)

// Builder accumulates nodes and edges and produces an immutable Graph in
// compressed sparse row form. The zero value is ready to use.
//
//	var b graph.Builder
//	a := b.AddNode(0, 0)
//	c := b.AddNode(1, 0)
//	b.AddEdge(a, c, 1.0)
//	g, err := b.Build()
type Builder struct {
	points []Point
	edges  []Edge
	names  map[string]NodeID
}

// NewBuilder returns a Builder with capacity hints for nodes and edges.
func NewBuilder(nodeHint, edgeHint int) *Builder {
	return &Builder{
		points: make([]Point, 0, nodeHint),
		edges:  make([]Edge, 0, edgeHint),
	}
}

// NumNodes returns the number of nodes added so far.
func (b *Builder) NumNodes() int { return len(b.points) }

// NumEdges returns the number of directed edges added so far.
func (b *Builder) NumEdges() int { return len(b.edges) }

// AddNode adds a node at (x, y) and returns its id. IDs are assigned
// densely in insertion order.
func (b *Builder) AddNode(x, y float64) NodeID {
	b.points = append(b.points, Point{X: x, Y: y})
	return NodeID(len(b.points) - 1)
}

// Name attaches a landmark name to node u. Re-using a name moves it to the
// new node. Naming an out-of-range node is reported at Build time.
func (b *Builder) Name(u NodeID, name string) {
	if b.names == nil {
		b.names = make(map[string]NodeID)
	}
	b.names[name] = u
}

// AddEdge adds the directed edge (u, v) with cost c. Validation (range
// checks, non-negative finite cost) is deferred to Build so call sites stay
// clean; the Builder records everything it is given.
func (b *Builder) AddEdge(u, v NodeID, c float64) {
	b.edges = append(b.edges, Edge{Tail: u, Head: v, Cost: c})
}

// AddUndirectedEdge adds both directed edges (u, v) and (v, u) with cost c.
// The paper represents each undirected road segment as two directed-edge
// tuples in the edge relation (Section 4); this mirrors that convention.
func (b *Builder) AddUndirectedEdge(u, v NodeID, c float64) {
	b.AddEdge(u, v, c)
	b.AddEdge(v, u, c)
}

// Build validates the accumulated nodes and edges and returns the graph.
func (b *Builder) Build() (*Graph, error) {
	n := len(b.points)
	for _, e := range b.edges {
		if e.Tail < 0 || int(e.Tail) >= n || e.Head < 0 || int(e.Head) >= n {
			return nil, fmt.Errorf("graph: edge (%d,%d) references unknown node (have %d nodes)", e.Tail, e.Head, n)
		}
		if e.Cost < 0 || math.IsNaN(e.Cost) || math.IsInf(e.Cost, 0) {
			return nil, fmt.Errorf("graph: edge (%d,%d) has invalid cost %v", e.Tail, e.Head, e.Cost)
		}
	}
	for name, u := range b.names {
		if u < 0 || int(u) >= n {
			return nil, fmt.Errorf("graph: name %q attached to unknown node %d", name, u)
		}
	}

	// Counting sort by tail node gives CSR layout while preserving the
	// insertion order of each node's arcs (stable bucket fill).
	offsets := make([]int32, n+1)
	for _, e := range b.edges {
		offsets[e.Tail+1]++
	}
	for i := 1; i <= n; i++ {
		offsets[i] += offsets[i-1]
	}
	heads := make([]NodeID, len(b.edges))
	costs := make([]float64, len(b.edges))
	next := append([]int32(nil), offsets[:n]...)
	for _, e := range b.edges {
		i := next[e.Tail]
		next[e.Tail]++
		heads[i] = e.Head
		costs[i] = e.Cost
	}

	g := &Graph{
		offsets: offsets,
		heads:   heads,
		costs:   costs,
		points:  append([]Point(nil), b.points...),
		labels:  make([]string, n),
	}
	if len(b.names) > 0 {
		g.names = make(map[string]NodeID, len(b.names))
		// Deterministic iteration keeps later-name-wins semantics stable
		// when two names land on one node label slot.
		keys := make([]string, 0, len(b.names))
		for k := range b.names {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			u := b.names[k]
			g.names[k] = u
			g.labels[u] = k
		}
	}
	return g, nil
}

// MustBuild is Build that panics on error, for tests and generators whose
// inputs are known valid by construction.
func (b *Builder) MustBuild() *Graph {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}
