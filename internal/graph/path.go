package graph

import (
	"fmt"
	"strings"
)

// Path is a sequence of nodes (v0, v1, …, vk) as defined in Section 2 of the
// paper: consecutive nodes must be joined by edges of the graph. A Path with
// fewer than one node is empty; a single-node path has zero edges and zero
// cost.
type Path struct {
	Nodes []NodeID
}

// Len returns the number of edges in the path (the paper's path length L).
func (p Path) Len() int {
	if len(p.Nodes) == 0 {
		return 0
	}
	return len(p.Nodes) - 1
}

// Source returns the first node, or Invalid for an empty path.
func (p Path) Source() NodeID {
	if len(p.Nodes) == 0 {
		return Invalid
	}
	return p.Nodes[0]
}

// Destination returns the last node, or Invalid for an empty path.
func (p Path) Destination() NodeID {
	if len(p.Nodes) == 0 {
		return Invalid
	}
	return p.Nodes[len(p.Nodes)-1]
}

// CostIn returns the total cost of the path in g: the sum of the costs of
// its edges (Section 2). It fails if any consecutive pair is not an edge.
func (p Path) CostIn(g *Graph) (float64, error) {
	var sum float64
	for i := 0; i+1 < len(p.Nodes); i++ {
		c, ok := g.ArcCost(p.Nodes[i], p.Nodes[i+1])
		if !ok {
			return 0, fmt.Errorf("graph: path step %d: no edge (%d,%d)", i, p.Nodes[i], p.Nodes[i+1])
		}
		sum += c
	}
	return sum, nil
}

// ValidIn reports whether p is a path of g: every consecutive node pair is
// an edge. Empty and single-node paths are valid.
func (p Path) ValidIn(g *Graph) bool {
	for i := 0; i+1 < len(p.Nodes); i++ {
		if _, ok := g.ArcCost(p.Nodes[i], p.Nodes[i+1]); !ok {
			return false
		}
	}
	return true
}

// String renders the path as "3 -> 7 -> 12". Landmark names are not
// resolved here; use the route package's display facilities for that.
func (p Path) String() string {
	if len(p.Nodes) == 0 {
		return "(empty path)"
	}
	var sb strings.Builder
	for i, u := range p.Nodes {
		if i > 0 {
			sb.WriteString(" -> ")
		}
		fmt.Fprintf(&sb, "%d", u)
	}
	return sb.String()
}

// BuildPath reconstructs the path from source to dest by following the
// predecessor array prev (prev[u] is the node before u on the best known
// path, Invalid at the source and at unreached nodes). It returns an empty
// path when dest is unreached. This is the pointer-chasing construction the
// paper describes for the node relation's path attribute (Section 4).
func BuildPath(prev []NodeID, source, dest NodeID) Path {
	if dest < 0 || int(dest) >= len(prev) {
		return Path{}
	}
	if source == dest {
		return Path{Nodes: []NodeID{source}}
	}
	if prev[dest] == Invalid {
		return Path{}
	}
	// Walk backwards bounding the walk by len(prev) to stay safe against a
	// corrupted predecessor array with cycles.
	rev := make([]NodeID, 0, 16)
	for at := dest; at != Invalid; at = prev[at] {
		rev = append(rev, at)
		if at == source {
			break
		}
		if len(rev) > len(prev) {
			return Path{} // cycle: not a valid tree
		}
	}
	if rev[len(rev)-1] != source {
		return Path{}
	}
	nodes := make([]NodeID, len(rev))
	for i, u := range rev {
		nodes[len(rev)-1-i] = u
	}
	return Path{Nodes: nodes}
}
