// Package graph provides the directed-graph model used throughout the
// repository: nodes with planar coordinates, directed edges with real-valued
// costs, and compact adjacency storage.
//
// The model follows Section 2 of Shekhar, Kohli and Coyle (ICDE 1993): a
// graph G = (N, E, C) with a node set N, an edge set E ⊆ N×N and a cost
// C(u,v) ∈ ℝ for every edge. Nodes additionally carry (x, y) coordinates
// because the paper's estimator functions (euclidean and manhattan distance)
// are defined over node positions.
//
// Graphs are built with a Builder and are immutable in structure afterwards;
// edge costs may be updated in place to model real-time travel-time feeds
// (the ATIS motivation of the paper's introduction).
package graph

import (
	"fmt"
	"math"
	"sync/atomic"
)

// NodeID identifies a node. IDs are dense integers in [0, NumNodes).
type NodeID int32

// Invalid is the sentinel NodeID used where "no node" must be represented
// (for example, the predecessor of the source in a shortest-path tree).
const Invalid NodeID = -1

// Arc is one directed edge as seen from its tail node: the head node and the
// traversal cost. Neighbors returns a node's outgoing arcs as []Arc.
type Arc struct {
	Head NodeID
	Cost float64
}

// Edge is a fully-specified directed edge, used when enumerating the edge
// set independent of any particular tail node.
type Edge struct {
	Tail NodeID
	Head NodeID
	Cost float64
}

// Point is a planar coordinate. The paper's maps use arbitrary map units;
// nothing in the library assumes a particular scale.
type Point struct {
	X, Y float64
}

// EuclideanDistance returns the straight-line distance between p and q.
func (p Point) EuclideanDistance(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// ManhattanDistance returns the L1 distance between p and q.
func (p Point) ManhattanDistance(q Point) float64 {
	return math.Abs(p.X-q.X) + math.Abs(p.Y-q.Y)
}

// Graph is a directed graph in compressed sparse row (CSR) form. The
// structure (node and edge sets) is immutable once built; edge costs may be
// updated through SetArcCost and UpdateEdgeCost to model dynamic travel
// times.
type Graph struct {
	// offsets has length NumNodes()+1; the outgoing arcs of node u occupy
	// heads[offsets[u]:offsets[u+1]] and costs[offsets[u]:offsets[u+1]].
	offsets []int32
	heads   []NodeID
	costs   []float64
	points  []Point
	names   map[string]NodeID // optional landmark names; may be nil
	labels  []string          // reverse of names; empty strings where unnamed

	// costVersion counts cost mutations; ReverseView uses it to decide
	// whether its cached reverse graph still reflects the current costs.
	costVersion atomic.Uint64
	rev         atomic.Pointer[reverseSnapshot]
}

// reverseSnapshot pairs a built reverse graph with the cost version it was
// built under. Once stored in g.rev it is shared by every concurrent
// reader, so it is never edited in place — a cost change publishes a whole
// new snapshot.
//
//atis:immutable
type reverseSnapshot struct {
	version uint64
	g       *Graph
}

// NumNodes returns the number of nodes in the graph.
func (g *Graph) NumNodes() int { return len(g.offsets) - 1 }

// NumEdges returns the number of directed edges in the graph. An undirected
// road segment stored as two directed edges counts as two.
func (g *Graph) NumEdges() int { return len(g.heads) }

// valid reports whether u names a node of g.
func (g *Graph) valid(u NodeID) bool { return u >= 0 && int(u) < g.NumNodes() }

// Point returns the coordinates of node u. It panics if u is out of range,
// mirroring slice indexing; callers hold NodeIDs produced by this package.
func (g *Graph) Point(u NodeID) Point { return g.points[u] }

// OutDegree returns the number of outgoing arcs of node u.
func (g *Graph) OutDegree(u NodeID) int {
	return int(g.offsets[u+1] - g.offsets[u])
}

// Neighbors calls fn for every outgoing arc of u, in insertion order. It is
// allocation-free; the search algorithms call it on their hot path.
func (g *Graph) Neighbors(u NodeID, fn func(Arc)) {
	lo, hi := g.offsets[u], g.offsets[u+1]
	for i := lo; i < hi; i++ {
		fn(Arc{Head: g.heads[i], Cost: g.costs[i]})
	}
}

// Arcs returns the outgoing arcs of u as a freshly allocated slice. Prefer
// Neighbors in performance-sensitive code.
func (g *Graph) Arcs(u NodeID) []Arc {
	lo, hi := g.offsets[u], g.offsets[u+1]
	arcs := make([]Arc, 0, hi-lo)
	for i := lo; i < hi; i++ {
		arcs = append(arcs, Arc{Head: g.heads[i], Cost: g.costs[i]})
	}
	return arcs
}

// Edges returns every directed edge of the graph in tail-major order.
func (g *Graph) Edges() []Edge {
	edges := make([]Edge, 0, g.NumEdges())
	for u := NodeID(0); int(u) < g.NumNodes(); u++ {
		lo, hi := g.offsets[u], g.offsets[u+1]
		for i := lo; i < hi; i++ {
			edges = append(edges, Edge{Tail: u, Head: g.heads[i], Cost: g.costs[i]})
		}
	}
	return edges
}

// ArcCost returns the cost of the directed edge (u, v) and whether such an
// edge exists. With parallel edges the cheapest one is reported, matching
// what any shortest-path computation would use.
func (g *Graph) ArcCost(u, v NodeID) (float64, bool) {
	if !g.valid(u) || !g.valid(v) {
		return 0, false
	}
	best, found := math.Inf(1), false
	lo, hi := g.offsets[u], g.offsets[u+1]
	for i := lo; i < hi; i++ {
		if g.heads[i] == v && g.costs[i] < best {
			best, found = g.costs[i], true
		}
	}
	if !found {
		return 0, false
	}
	return best, true
}

// SetArcCost sets the cost of every parallel directed edge (u, v) to c and
// reports whether at least one such edge exists. Costs must be non-negative;
// the search algorithms' optimality lemmas (paper Lemmas 1–3) require it.
func (g *Graph) SetArcCost(u, v NodeID, c float64) (bool, error) {
	if c < 0 || math.IsNaN(c) {
		return false, fmt.Errorf("graph: cost %v for edge (%d,%d) must be non-negative", c, u, v)
	}
	if !g.valid(u) || !g.valid(v) {
		return false, fmt.Errorf("graph: edge (%d,%d) references unknown node", u, v)
	}
	found := false
	lo, hi := g.offsets[u], g.offsets[u+1]
	for i := lo; i < hi; i++ {
		if g.heads[i] == v {
			g.costs[i] = c
			found = true
		}
	}
	if found {
		g.costVersion.Add(1)
	}
	return found, nil
}

// CostVersion returns the number of cost mutations applied to the graph
// since construction. Two reads returning the same version bracket a window
// in which every edge cost was stable.
func (g *Graph) CostVersion() uint64 { return g.costVersion.Load() }

// EdgeCostChange is one entry of an ApplyBatch traffic update: the directed
// edge (Tail, Head) either has its cost set to Cost (Scale false) or
// multiplied by Cost (Scale true). Either way the change covers every
// parallel edge of the pair, matching SetArcCost and ScaleArcCost.
type EdgeCostChange struct {
	Tail  NodeID
	Head  NodeID
	Cost  float64
	Scale bool
}

// ApplyBatch applies a burst of edge-cost changes atomically with respect
// to version accounting: the whole batch is validated up front (no partial
// application on a bad entry), every change is applied, and costVersion is
// bumped exactly once if anything changed — so version-keyed consumers
// (ReverseView, a ch.Metric, the route cache) invalidate once per batch
// instead of once per edge. It returns the number of changes that matched
// at least one edge.
//
// Entries are applied in order; later entries targeting the same pair win
// (for Scale entries, compound). Like all cost mutators, ApplyBatch must
// be serialised against readers by the caller.
func (g *Graph) ApplyBatch(changes []EdgeCostChange) (int, error) {
	for _, ch := range changes {
		if ch.Cost < 0 || math.IsNaN(ch.Cost) {
			what := "cost"
			if ch.Scale {
				what = "scale factor"
			}
			return 0, fmt.Errorf("graph: %s %v for edge (%d,%d) must be non-negative", what, ch.Cost, ch.Tail, ch.Head)
		}
		if !g.valid(ch.Tail) || !g.valid(ch.Head) {
			return 0, fmt.Errorf("graph: edge (%d,%d) references unknown node", ch.Tail, ch.Head)
		}
	}
	applied := 0
	for _, ch := range changes {
		found := false
		lo, hi := g.offsets[ch.Tail], g.offsets[ch.Tail+1]
		for i := lo; i < hi; i++ {
			if g.heads[i] != ch.Head {
				continue
			}
			if ch.Scale {
				g.costs[i] *= ch.Cost
			} else {
				g.costs[i] = ch.Cost
			}
			found = true
		}
		if found {
			applied++
		}
	}
	if applied > 0 {
		g.costVersion.Add(1)
	}
	return applied, nil
}

// ScaleArcCost multiplies the cost of every parallel directed edge (u, v) by
// factor and reports whether such an edge exists. This is the primitive
// behind traffic-congestion updates.
func (g *Graph) ScaleArcCost(u, v NodeID, factor float64) (bool, error) {
	if factor < 0 || math.IsNaN(factor) {
		return false, fmt.Errorf("graph: scale factor %v for edge (%d,%d) must be non-negative", factor, u, v)
	}
	if !g.valid(u) || !g.valid(v) {
		return false, fmt.Errorf("graph: edge (%d,%d) references unknown node", u, v)
	}
	found := false
	lo, hi := g.offsets[u], g.offsets[u+1]
	for i := lo; i < hi; i++ {
		if g.heads[i] == v {
			g.costs[i] *= factor
			found = true
		}
	}
	if found {
		g.costVersion.Add(1)
	}
	return found, nil
}

// MinArcCost returns the smallest edge cost in the graph, or +Inf for a
// graph with no edges. Estimator scaling (converting a distance estimate to
// a travel-time lower bound) uses it.
func (g *Graph) MinArcCost() float64 {
	best := math.Inf(1)
	for _, c := range g.costs {
		if c < best {
			best = c
		}
	}
	return best
}

// TotalCost returns the sum of all edge costs.
func (g *Graph) TotalCost() float64 {
	var sum float64
	for _, c := range g.costs {
		sum += c
	}
	return sum
}

// Name returns the landmark name of node u, or "" if the node is unnamed.
func (g *Graph) Name(u NodeID) string {
	if int(u) >= len(g.labels) {
		return ""
	}
	return g.labels[u]
}

// Lookup resolves a landmark name to its node, reporting whether the name
// exists.
func (g *Graph) Lookup(name string) (NodeID, bool) {
	id, ok := g.names[name]
	return id, ok
}

// NamedNodes returns the map from landmark name to node. The returned map is
// a copy; mutating it does not affect the graph.
func (g *Graph) NamedNodes() map[string]NodeID {
	out := make(map[string]NodeID, len(g.names))
	for k, v := range g.names {
		out[k] = v
	}
	return out
}

// Bounds returns the bounding box of all node coordinates. For an empty
// graph both corners are the origin.
func (g *Graph) Bounds() (min, max Point) {
	if len(g.points) == 0 {
		return Point{}, Point{}
	}
	min = g.points[0]
	max = g.points[0]
	for _, p := range g.points[1:] {
		if p.X < min.X {
			min.X = p.X
		}
		if p.Y < min.Y {
			min.Y = p.Y
		}
		if p.X > max.X {
			max.X = p.X
		}
		if p.Y > max.Y {
			max.Y = p.Y
		}
	}
	return min, max
}

// Clone returns a deep copy of the graph. Cost mutations on the copy do not
// affect the original; the route service uses this to apply traffic updates
// on a private snapshot.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		offsets: append([]int32(nil), g.offsets...),
		heads:   append([]NodeID(nil), g.heads...),
		costs:   append([]float64(nil), g.costs...),
		points:  append([]Point(nil), g.points...),
		labels:  append([]string(nil), g.labels...),
	}
	if g.names != nil {
		c.names = make(map[string]NodeID, len(g.names))
		for k, v := range g.names {
			c.names[k] = v
		}
	}
	// The clone carries the source's cost version (though not its reverse
	// cache): version-stamped artifacts such as a ch.Index built from a
	// clone remain valid for the original at the same version, which is how
	// the route service rebuilds hierarchies off-lock from a snapshot.
	c.costVersion.Store(g.costVersion.Load())
	return c
}

// Reverse returns a new graph with every edge direction flipped and costs
// preserved. Shortest paths to a fixed destination in g are shortest paths
// from that node in the reverse graph; admissibility checking and
// bidirectional search build on this.
func (g *Graph) Reverse() *Graph {
	n := g.NumNodes()
	b := NewBuilder(n, g.NumEdges())
	for _, p := range g.points {
		b.AddNode(p.X, p.Y)
	}
	for u := NodeID(0); int(u) < n; u++ {
		lo, hi := g.offsets[u], g.offsets[u+1]
		for i := lo; i < hi; i++ {
			b.AddEdge(g.heads[i], u, g.costs[i])
		}
	}
	for name, u := range g.names {
		b.Name(u, name)
	}
	// The inputs came from a valid graph; Build cannot fail.
	rg := b.MustBuild()
	return rg
}

// ReverseView returns the reverse graph, rebuilding it only when edge costs
// have changed since the last call — the cost-generation-aware cache that
// closes the last per-query O(m) allocation in bidirectional search.
//
// Concurrent readers may race to build the first snapshot after a mutation;
// both builds are correct and one simply wins the store. Callers must
// uphold the package-wide contract that costs are not mutated concurrently
// with reads (the route service serialises mutations behind its write
// lock), and must treat the returned graph as read-only.
func (g *Graph) ReverseView() *Graph {
	v := g.costVersion.Load()
	if snap := g.rev.Load(); snap != nil && snap.version == v {
		return snap.g
	}
	rg := g.Reverse()
	g.rev.Store(&reverseSnapshot{version: v, g: rg})
	return rg
}

// String summarises the graph for logs and debugging.
func (g *Graph) String() string {
	return fmt.Sprintf("graph(%d nodes, %d edges)", g.NumNodes(), g.NumEdges())
}
