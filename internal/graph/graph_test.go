package graph

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// line builds the path graph 0-1-2-…-(n-1) with unit directed edges both
// ways, returning the graph.
func line(t *testing.T, n int) *Graph {
	t.Helper()
	b := NewBuilder(n, 2*(n-1))
	for i := 0; i < n; i++ {
		b.AddNode(float64(i), 0)
	}
	for i := 0; i+1 < n; i++ {
		b.AddUndirectedEdge(NodeID(i), NodeID(i+1), 1)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return g
}

func TestBuilderEmptyGraph(t *testing.T) {
	g, err := NewBuilder(0, 0).Build()
	if err != nil {
		t.Fatalf("Build empty: %v", err)
	}
	if g.NumNodes() != 0 || g.NumEdges() != 0 {
		t.Errorf("empty graph has %d nodes, %d edges", g.NumNodes(), g.NumEdges())
	}
	min, max := g.Bounds()
	if min != (Point{}) || max != (Point{}) {
		t.Errorf("empty bounds = %v, %v", min, max)
	}
}

func TestBuilderCounts(t *testing.T) {
	g := line(t, 5)
	if got := g.NumNodes(); got != 5 {
		t.Errorf("NumNodes = %d, want 5", got)
	}
	if got := g.NumEdges(); got != 8 {
		t.Errorf("NumEdges = %d, want 8 (4 undirected segments)", got)
	}
}

func TestBuilderRejectsBadEdges(t *testing.T) {
	cases := []struct {
		name string
		u, v NodeID
		c    float64
	}{
		{"negative cost", 0, 1, -1},
		{"nan cost", 0, 1, math.NaN()},
		{"inf cost", 0, 1, math.Inf(1)},
		{"tail out of range", 9, 1, 1},
		{"head out of range", 0, 9, 1},
		{"negative tail", -1, 0, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := NewBuilder(2, 1)
			b.AddNode(0, 0)
			b.AddNode(1, 1)
			b.AddEdge(tc.u, tc.v, tc.c)
			if _, err := b.Build(); err == nil {
				t.Errorf("Build accepted %s", tc.name)
			}
		})
	}
}

func TestBuilderRejectsBadName(t *testing.T) {
	b := NewBuilder(1, 0)
	b.AddNode(0, 0)
	b.Name(5, "ghost")
	if _, err := b.Build(); err == nil {
		t.Error("Build accepted name on unknown node")
	}
}

func TestNeighborsOrderAndDegree(t *testing.T) {
	b := NewBuilder(4, 3)
	for i := 0; i < 4; i++ {
		b.AddNode(float64(i), 0)
	}
	b.AddEdge(0, 3, 3)
	b.AddEdge(0, 1, 1)
	b.AddEdge(0, 2, 2)
	g := b.MustBuild()

	if d := g.OutDegree(0); d != 3 {
		t.Fatalf("OutDegree(0) = %d, want 3", d)
	}
	var got []Arc
	g.Neighbors(0, func(a Arc) { got = append(got, a) })
	want := []Arc{{3, 3}, {1, 1}, {2, 2}}
	if len(got) != len(want) {
		t.Fatalf("Neighbors returned %d arcs, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("arc %d = %v, want %v (insertion order must be preserved)", i, got[i], want[i])
		}
	}
	if d := g.OutDegree(2); d != 0 {
		t.Errorf("OutDegree(2) = %d, want 0", d)
	}
}

func TestArcsMatchesNeighbors(t *testing.T) {
	g := line(t, 6)
	for u := NodeID(0); int(u) < g.NumNodes(); u++ {
		var viaCB []Arc
		g.Neighbors(u, func(a Arc) { viaCB = append(viaCB, a) })
		viaSlice := g.Arcs(u)
		if len(viaCB) != len(viaSlice) {
			t.Fatalf("node %d: Neighbors %d arcs, Arcs %d", u, len(viaCB), len(viaSlice))
		}
		for i := range viaCB {
			if viaCB[i] != viaSlice[i] {
				t.Errorf("node %d arc %d: %v vs %v", u, i, viaCB[i], viaSlice[i])
			}
		}
	}
}

func TestArcCostParallelEdgesPicksCheapest(t *testing.T) {
	b := NewBuilder(2, 2)
	b.AddNode(0, 0)
	b.AddNode(1, 0)
	b.AddEdge(0, 1, 5)
	b.AddEdge(0, 1, 2)
	g := b.MustBuild()
	c, ok := g.ArcCost(0, 1)
	if !ok || c != 2 {
		t.Errorf("ArcCost = %v,%v, want 2,true", c, ok)
	}
	if _, ok := g.ArcCost(1, 0); ok {
		t.Error("ArcCost(1,0) reported an edge that does not exist")
	}
	if _, ok := g.ArcCost(-1, 0); ok {
		t.Error("ArcCost(-1,0) reported an edge for an invalid node")
	}
}

func TestSetArcCost(t *testing.T) {
	g := line(t, 3)
	ok, err := g.SetArcCost(0, 1, 7)
	if err != nil || !ok {
		t.Fatalf("SetArcCost = %v, %v", ok, err)
	}
	if c, _ := g.ArcCost(0, 1); c != 7 {
		t.Errorf("cost after set = %v, want 7", c)
	}
	// The reverse directed edge is independent.
	if c, _ := g.ArcCost(1, 0); c != 1 {
		t.Errorf("reverse cost = %v, want 1 (must be untouched)", c)
	}
	if ok, err := g.SetArcCost(0, 2, 1); err != nil || ok {
		t.Errorf("SetArcCost on missing edge = %v, %v; want false, nil", ok, err)
	}
	if _, err := g.SetArcCost(0, 1, -3); err == nil {
		t.Error("SetArcCost accepted negative cost")
	}
	if _, err := g.SetArcCost(99, 1, 3); err == nil {
		t.Error("SetArcCost accepted unknown node")
	}
}

func TestScaleArcCost(t *testing.T) {
	g := line(t, 3)
	if ok, err := g.ScaleArcCost(1, 2, 2.5); err != nil || !ok {
		t.Fatalf("ScaleArcCost = %v, %v", ok, err)
	}
	if c, _ := g.ArcCost(1, 2); c != 2.5 {
		t.Errorf("scaled cost = %v, want 2.5", c)
	}
	if _, err := g.ScaleArcCost(1, 2, -1); err == nil {
		t.Error("ScaleArcCost accepted negative factor")
	}
}

func TestApplyBatchBumpsVersionOnce(t *testing.T) {
	g := line(t, 4)
	v0 := g.CostVersion()
	n, err := g.ApplyBatch([]EdgeCostChange{
		{Tail: 0, Head: 1, Cost: 7},
		{Tail: 1, Head: 2, Cost: 2, Scale: true},
		{Tail: 2, Head: 3, Cost: 0.5},
	})
	if err != nil || n != 3 {
		t.Fatalf("ApplyBatch = %d, %v; want 3 applied", n, err)
	}
	if got := g.CostVersion(); got != v0+1 {
		t.Errorf("version after 3-edge batch = %d, want %d (one bump per batch)", got, v0+1)
	}
	if c, _ := g.ArcCost(0, 1); c != 7 {
		t.Errorf("set cost = %v, want 7", c)
	}
	if c, _ := g.ArcCost(1, 2); c != 2 {
		t.Errorf("scaled cost = %v, want 2", c)
	}
	if c, _ := g.ArcCost(1, 0); c != 1 {
		t.Errorf("untargeted reverse edge = %v, want 1", c)
	}
}

func TestApplyBatchValidatesBeforeApplying(t *testing.T) {
	g := line(t, 3)
	v0 := g.CostVersion()
	// The second entry is invalid: nothing from the batch may land.
	if _, err := g.ApplyBatch([]EdgeCostChange{
		{Tail: 0, Head: 1, Cost: 9},
		{Tail: 0, Head: 1, Cost: -1},
	}); err == nil {
		t.Fatal("ApplyBatch accepted a negative cost")
	}
	if c, _ := g.ArcCost(0, 1); c != 1 {
		t.Errorf("cost after rejected batch = %v, want untouched 1", c)
	}
	if g.CostVersion() != v0 {
		t.Errorf("version bumped by a rejected batch")
	}
	if _, err := g.ApplyBatch([]EdgeCostChange{{Tail: 0, Head: 99, Cost: 1}}); err == nil {
		t.Fatal("ApplyBatch accepted an unknown node")
	}
	// Entries that match no edge are not an error, just not counted; a
	// batch applying nothing leaves the version alone.
	n, err := g.ApplyBatch([]EdgeCostChange{{Tail: 0, Head: 2, Cost: 1}})
	if err != nil || n != 0 {
		t.Fatalf("no-match batch = %d, %v; want 0, nil", n, err)
	}
	if g.CostVersion() != v0 {
		t.Errorf("no-op batch bumped the version")
	}
}

func TestApplyBatchInvalidatesReverseViewOnce(t *testing.T) {
	g := line(t, 4)
	r0 := g.ReverseView()
	if _, err := g.ApplyBatch([]EdgeCostChange{
		{Tail: 0, Head: 1, Cost: 4},
		{Tail: 1, Head: 2, Cost: 5},
	}); err != nil {
		t.Fatal(err)
	}
	r1 := g.ReverseView()
	if r1 == r0 {
		t.Fatal("ReverseView not invalidated by ApplyBatch")
	}
	if c, _ := r1.ArcCost(1, 0); c != 4 {
		t.Errorf("reverse view cost = %v, want 4", c)
	}
	if g.ReverseView() != r1 {
		t.Error("ReverseView rebuilt again without an intervening mutation")
	}
}

func TestMinAndTotalCost(t *testing.T) {
	b := NewBuilder(3, 2)
	b.AddNode(0, 0)
	b.AddNode(1, 0)
	b.AddNode(2, 0)
	b.AddEdge(0, 1, 3)
	b.AddEdge(1, 2, 0.5)
	g := b.MustBuild()
	if m := g.MinArcCost(); m != 0.5 {
		t.Errorf("MinArcCost = %v, want 0.5", m)
	}
	if s := g.TotalCost(); s != 3.5 {
		t.Errorf("TotalCost = %v, want 3.5", s)
	}
	empty := NewBuilder(0, 0).MustBuild()
	if m := empty.MinArcCost(); !math.IsInf(m, 1) {
		t.Errorf("MinArcCost of empty graph = %v, want +Inf", m)
	}
}

func TestNamesAndLookup(t *testing.T) {
	b := NewBuilder(2, 0)
	a := b.AddNode(0, 0)
	c := b.AddNode(5, 5)
	b.Name(a, "A")
	b.Name(c, "C")
	g := b.MustBuild()

	if id, ok := g.Lookup("A"); !ok || id != a {
		t.Errorf("Lookup(A) = %v,%v", id, ok)
	}
	if _, ok := g.Lookup("Z"); ok {
		t.Error("Lookup(Z) found a ghost")
	}
	if n := g.Name(c); n != "C" {
		t.Errorf("Name(c) = %q, want C", n)
	}
	m := g.NamedNodes()
	if len(m) != 2 {
		t.Fatalf("NamedNodes has %d entries, want 2", len(m))
	}
	m["A"] = 99 // mutating the copy must not affect the graph
	if id, _ := g.Lookup("A"); id != a {
		t.Error("NamedNodes returned a live reference")
	}
}

func TestBounds(t *testing.T) {
	b := NewBuilder(3, 0)
	b.AddNode(-2, 7)
	b.AddNode(4, -1)
	b.AddNode(0, 0)
	g := b.MustBuild()
	min, max := g.Bounds()
	if min != (Point{X: -2, Y: -1}) || max != (Point{X: 4, Y: 7}) {
		t.Errorf("Bounds = %v, %v", min, max)
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := line(t, 4)
	c := g.Clone()
	if _, err := c.SetArcCost(0, 1, 42); err != nil {
		t.Fatal(err)
	}
	if cost, _ := g.ArcCost(0, 1); cost != 1 {
		t.Errorf("original cost changed to %v after mutating clone", cost)
	}
	if cost, _ := c.ArcCost(0, 1); cost != 42 {
		t.Errorf("clone cost = %v, want 42", cost)
	}
}

func TestEdgesEnumeration(t *testing.T) {
	g := line(t, 3)
	edges := g.Edges()
	if len(edges) != g.NumEdges() {
		t.Fatalf("Edges returned %d, want %d", len(edges), g.NumEdges())
	}
	// Every enumerated edge must be queryable.
	for _, e := range edges {
		if _, ok := g.ArcCost(e.Tail, e.Head); !ok {
			t.Errorf("enumerated edge (%d,%d) not found by ArcCost", e.Tail, e.Head)
		}
	}
}

func TestPointDistances(t *testing.T) {
	p := Point{0, 0}
	q := Point{3, 4}
	if d := p.EuclideanDistance(q); math.Abs(d-5) > 1e-12 {
		t.Errorf("euclidean = %v, want 5", d)
	}
	if d := p.ManhattanDistance(q); d != 7 {
		t.Errorf("manhattan = %v, want 7", d)
	}
	// Symmetry.
	if p.EuclideanDistance(q) != q.EuclideanDistance(p) {
		t.Error("euclidean distance not symmetric")
	}
	if p.ManhattanDistance(q) != q.ManhattanDistance(p) {
		t.Error("manhattan distance not symmetric")
	}
}

// Property: manhattan ≥ euclidean ≥ 0 for all coordinate pairs, and both are
// zero iff the points coincide (up to float representability).
func TestDistanceProperty(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		if math.IsNaN(ax) || math.IsNaN(ay) || math.IsNaN(bx) || math.IsNaN(by) ||
			math.IsInf(ax, 0) || math.IsInf(ay, 0) || math.IsInf(bx, 0) || math.IsInf(by, 0) {
			return true // out of scope
		}
		p, q := Point{ax, ay}, Point{bx, by}
		e, m := p.EuclideanDistance(q), p.ManhattanDistance(q)
		if math.IsInf(m, 1) || math.IsInf(e, 1) {
			return true // overflow territory, out of scope
		}
		return e >= 0 && m >= e-1e-9*math.Abs(m)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPathBasics(t *testing.T) {
	g := line(t, 5)
	p := Path{Nodes: []NodeID{0, 1, 2, 3}}
	if p.Len() != 3 {
		t.Errorf("Len = %d, want 3", p.Len())
	}
	if p.Source() != 0 || p.Destination() != 3 {
		t.Errorf("endpoints = %d,%d", p.Source(), p.Destination())
	}
	if !p.ValidIn(g) {
		t.Error("valid path reported invalid")
	}
	c, err := p.CostIn(g)
	if err != nil || c != 3 {
		t.Errorf("CostIn = %v, %v; want 3, nil", c, err)
	}

	bad := Path{Nodes: []NodeID{0, 2}}
	if bad.ValidIn(g) {
		t.Error("0->2 reported valid on a line graph")
	}
	if _, err := bad.CostIn(g); err == nil {
		t.Error("CostIn accepted a non-path")
	}

	var empty Path
	if empty.Len() != 0 || empty.Source() != Invalid || empty.Destination() != Invalid {
		t.Error("empty path invariants violated")
	}
	if !empty.ValidIn(g) {
		t.Error("empty path must be valid")
	}
	if empty.String() != "(empty path)" {
		t.Errorf("empty String = %q", empty.String())
	}
	if s := (Path{Nodes: []NodeID{4, 2}}).String(); s != "4 -> 2" {
		t.Errorf("String = %q", s)
	}
}

func TestBuildPath(t *testing.T) {
	// Tree: 0 -> 1 -> 2, 0 -> 3.
	prev := []NodeID{Invalid, 0, 1, 0}
	p := BuildPath(prev, 0, 2)
	want := []NodeID{0, 1, 2}
	if len(p.Nodes) != len(want) {
		t.Fatalf("BuildPath = %v, want %v", p.Nodes, want)
	}
	for i := range want {
		if p.Nodes[i] != want[i] {
			t.Fatalf("BuildPath = %v, want %v", p.Nodes, want)
		}
	}
	if p := BuildPath(prev, 0, 0); p.Len() != 0 || p.Source() != 0 {
		t.Errorf("self path = %v", p.Nodes)
	}
	// Unreached destination.
	prev2 := []NodeID{Invalid, Invalid}
	if p := BuildPath(prev2, 0, 1); len(p.Nodes) != 0 {
		t.Errorf("unreached BuildPath = %v, want empty", p.Nodes)
	}
	// Out-of-range destination.
	if p := BuildPath(prev2, 0, 10); len(p.Nodes) != 0 {
		t.Errorf("out-of-range BuildPath = %v, want empty", p.Nodes)
	}
	// Corrupted predecessor array with a cycle (not through the source)
	// must not loop forever.
	cyc := []NodeID{Invalid, 2, 1}
	if p := BuildPath(cyc, 0, 2); len(p.Nodes) != 0 {
		t.Errorf("cyclic BuildPath = %v, want empty", p.Nodes)
	}
	// Destination whose chain does not reach the requested source.
	orphan := []NodeID{Invalid, Invalid, 1}
	if p := BuildPath(orphan, 0, 2); len(p.Nodes) != 0 {
		t.Errorf("orphan BuildPath = %v, want empty", p.Nodes)
	}
}

// Property: for random trees, BuildPath returns a path whose first node is
// the source, last node is the destination, and every hop follows prev.
func TestBuildPathProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(40)
		prev := make([]NodeID, n)
		prev[0] = Invalid
		for i := 1; i < n; i++ {
			prev[i] = NodeID(rng.Intn(i)) // parent strictly earlier: a tree rooted at 0
		}
		dest := NodeID(rng.Intn(n))
		p := BuildPath(prev, 0, dest)
		if p.Source() != 0 || p.Destination() != dest {
			t.Fatalf("trial %d: endpoints %d..%d, want 0..%d", trial, p.Source(), p.Destination(), dest)
		}
		for i := 1; i < len(p.Nodes); i++ {
			if prev[p.Nodes[i]] != p.Nodes[i-1] {
				t.Fatalf("trial %d: hop %d->%d contradicts prev", trial, p.Nodes[i-1], p.Nodes[i])
			}
		}
	}
}

func TestGraphString(t *testing.T) {
	g := line(t, 3)
	if s := g.String(); s != "graph(3 nodes, 4 edges)" {
		t.Errorf("String = %q", s)
	}
}
