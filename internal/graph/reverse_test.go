package graph

import "testing"

// buildTriangle returns a small directed graph for reverse-cache tests.
func buildTriangle(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder(3, 3)
	b.AddNode(0, 0)
	b.AddNode(1, 0)
	b.AddNode(0, 1)
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 2)
	b.AddEdge(2, 0, 3)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestReverseViewCachesUntilCostChange(t *testing.T) {
	g := buildTriangle(t)

	r1 := g.ReverseView()
	r2 := g.ReverseView()
	if r1 != r2 {
		t.Fatal("ReverseView rebuilt despite unchanged costs")
	}
	if c, ok := r1.ArcCost(1, 0); !ok || c != 1 {
		t.Fatalf("reverse edge (1,0) cost = %v, %v; want 1, true", c, ok)
	}

	if _, err := g.SetArcCost(0, 1, 5); err != nil {
		t.Fatal(err)
	}
	r3 := g.ReverseView()
	if r3 == r1 {
		t.Fatal("ReverseView served a stale reverse after a cost mutation")
	}
	if c, ok := r3.ArcCost(1, 0); !ok || c != 5 {
		t.Fatalf("post-mutation reverse edge (1,0) cost = %v, %v; want 5, true", c, ok)
	}
	if r4 := g.ReverseView(); r4 != r3 {
		t.Fatal("ReverseView rebuilt again without a mutation")
	}
}

func TestCostVersionBumpsOnMutation(t *testing.T) {
	g := buildTriangle(t)
	v0 := g.CostVersion()
	if _, err := g.ScaleArcCost(0, 1, 2); err != nil {
		t.Fatal(err)
	}
	if g.CostVersion() != v0+1 {
		t.Fatalf("ScaleArcCost did not bump the cost version: %d → %d", v0, g.CostVersion())
	}
	// A miss (no such edge) must not bump.
	v1 := g.CostVersion()
	if found, err := g.SetArcCost(0, 2, 9); err != nil || found {
		t.Fatalf("SetArcCost(0,2) = %v, %v; want false, nil", found, err)
	}
	if g.CostVersion() != v1 {
		t.Fatal("cost version bumped on a no-op mutation")
	}
}

func TestCloneDoesNotShareReverseCache(t *testing.T) {
	g := buildTriangle(t)
	r := g.ReverseView()
	c := g.Clone()
	if cr := c.ReverseView(); cr == r {
		t.Fatal("clone shares the original's cached reverse")
	}
	// Mutating the clone must not disturb the original's cache.
	if _, err := c.SetArcCost(0, 1, 7); err != nil {
		t.Fatal(err)
	}
	if g.ReverseView() != r {
		t.Fatal("mutating a clone invalidated the original's reverse cache")
	}
}
