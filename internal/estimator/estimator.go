// Package estimator provides the estimator (heuristic) functions studied in
// Section 5.3 of the paper: euclidean distance, manhattan distance, the zero
// estimator (which degenerates A* to Dijkstra), and weighted variants used
// by the optimality/speed-tradeoff extension the paper's conclusion calls
// for.
//
// An estimator f(u, d) approximates the cost of the cheapest path from u to
// the destination d. A* is guaranteed optimal when the estimator never
// overestimates (Lemma 3); such estimators are called admissible. Euclidean
// distance is admissible whenever edge costs are at least the euclidean
// length of the edge; manhattan distance is a perfect estimator on uniform
// 4-neighbour grids but overestimates — and therefore forfeits optimality —
// on road maps whose segments are not axis-parallel (paper Section 5.3).
package estimator

import (
	"fmt"

	"repro/internal/graph"
)

// Func estimates the remaining cost from node u to node d in g.
type Func func(g *graph.Graph, u, d graph.NodeID) float64

// Estimator couples an estimator function with a name for reports and a
// priori knowledge about admissibility on uniform grids. Admissibility on an
// arbitrary graph is checked empirically by the search package's
// VerifyAdmissible, which compares estimates against true shortest-path
// costs and reports Violations.
type Estimator struct {
	Name string
	F    Func
}

// Estimate applies the estimator. A nil receiver or nil function behaves as
// the zero estimator, so callers may treat "no estimator" uniformly.
func (e *Estimator) Estimate(g *graph.Graph, u, d graph.NodeID) float64 {
	if e == nil || e.F == nil {
		return 0
	}
	return e.F(g, u, d)
}

// String returns the estimator's name.
func (e *Estimator) String() string {
	if e == nil {
		return "zero"
	}
	return e.Name
}

// Zero returns the zero estimator: f(u,d) = 0 for all pairs. Best-first
// search with the zero estimator is exactly Dijkstra's algorithm (paper
// Section 3.3: "Best-first search without estimator functions is not very
// different from Dijkstra's algorithm").
func Zero() *Estimator {
	return &Estimator{
		Name: "zero",
		F:    func(*graph.Graph, graph.NodeID, graph.NodeID) float64 { return 0 },
	}
}

// Euclidean returns the straight-line-distance estimator of paper
// Section 5.3. It always underestimates the length of a shortest path when
// edge costs are euclidean edge lengths, so A* with it is optimal on
// distance-costed maps (used by A* versions 1 and 2).
func Euclidean() *Estimator {
	return &Estimator{
		Name: "euclidean",
		F: func(g *graph.Graph, u, d graph.NodeID) float64 {
			return g.Point(u).EuclideanDistance(g.Point(d))
		},
	}
}

// Manhattan returns the L1-distance estimator of paper Section 5.3. It is a
// perfect estimate on uniform-cost grid graphs (used by A* version 3), but
// is not guaranteed to underestimate on road maps: the paper notes that on
// the Minneapolis data set manhattan distance can overestimate, so A* with
// it does not guarantee an optimal route there.
func Manhattan() *Estimator {
	return &Estimator{
		Name: "manhattan",
		F: func(g *graph.Graph, u, d graph.NodeID) float64 {
			return g.Point(u).ManhattanDistance(g.Point(d))
		},
	}
}

// Scaled wraps an estimator, multiplying its estimate by factor. Scaling by
// the minimum cost-per-distance ratio converts a geometric estimator into an
// admissible travel-time estimator; scaling by ε > 1 yields weighted A*, the
// classic speed-versus-optimality knob (the tradeoff the paper's conclusion
// proposes to characterise).
func Scaled(base *Estimator, factor float64) *Estimator {
	return &Estimator{
		Name: fmt.Sprintf("%s×%g", base.String(), factor),
		F: func(g *graph.Graph, u, d graph.NodeID) float64 {
			return factor * base.Estimate(g, u, d)
		},
	}
}

// Max combines estimators by taking the pointwise maximum. The maximum of
// admissible estimators is admissible and at least as informed as each.
func Max(a, b *Estimator) *Estimator {
	return &Estimator{
		Name: fmt.Sprintf("max(%s,%s)", a.String(), b.String()),
		F: func(g *graph.Graph, u, d graph.NodeID) float64 {
			x, y := a.Estimate(g, u, d), b.Estimate(g, u, d)
			if x >= y {
				return x
			}
			return y
		},
	}
}

// Violation records one witnessed inadmissibility: the estimate from U
// exceeded the true remaining cost.
type Violation struct {
	U, D     graph.NodeID
	Estimate float64
	TrueCost float64
}

// String formats the violation for reports.
func (v Violation) String() string {
	return fmt.Sprintf("f(%d,%d)=%.4f > true %.4f", v.U, v.D, v.Estimate, v.TrueCost)
}
