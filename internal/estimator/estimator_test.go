package estimator

import (
	"math"
	"testing"

	"repro/internal/graph"
)

// twoNodes builds a graph with nodes at the given coordinates and no edges;
// estimators only consult coordinates.
func twoNodes(t *testing.T, ax, ay, bx, by float64) (*graph.Graph, graph.NodeID, graph.NodeID) {
	t.Helper()
	b := graph.NewBuilder(2, 0)
	u := b.AddNode(ax, ay)
	v := b.AddNode(bx, by)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g, u, v
}

func TestZero(t *testing.T) {
	g, u, v := twoNodes(t, 0, 0, 10, 10)
	if e := Zero().Estimate(g, u, v); e != 0 {
		t.Errorf("zero estimate = %v", e)
	}
	if Zero().String() != "zero" {
		t.Errorf("name = %q", Zero().String())
	}
}

func TestNilBehavesAsZero(t *testing.T) {
	g, u, v := twoNodes(t, 0, 0, 3, 4)
	var e *Estimator
	if got := e.Estimate(g, u, v); got != 0 {
		t.Errorf("nil estimator estimate = %v", got)
	}
	if e.String() != "zero" {
		t.Errorf("nil estimator name = %q", e.String())
	}
	empty := &Estimator{Name: "noop"}
	if got := empty.Estimate(g, u, v); got != 0 {
		t.Errorf("nil-func estimator estimate = %v", got)
	}
}

func TestEuclidean(t *testing.T) {
	g, u, v := twoNodes(t, 0, 0, 3, 4)
	if e := Euclidean().Estimate(g, u, v); math.Abs(e-5) > 1e-12 {
		t.Errorf("euclidean = %v, want 5", e)
	}
	if e := Euclidean().Estimate(g, u, u); e != 0 {
		t.Errorf("euclidean self = %v, want 0 (f(d,d)=0 per Lemma 3)", e)
	}
}

func TestManhattan(t *testing.T) {
	g, u, v := twoNodes(t, 1, 2, 4, 6)
	if e := Manhattan().Estimate(g, u, v); e != 7 {
		t.Errorf("manhattan = %v, want 7", e)
	}
	if e := Manhattan().Estimate(g, v, v); e != 0 {
		t.Errorf("manhattan self = %v, want 0", e)
	}
}

func TestManhattanDominatesEuclidean(t *testing.T) {
	// On any pair, manhattan >= euclidean: the reason manhattan is the
	// sharper (paper: "perfect") estimator on unit grids.
	coords := [][4]float64{{0, 0, 3, 4}, {1, 1, 1, 9}, {-2, 5, 7, -3}, {0, 0, 0, 0}}
	for _, c := range coords {
		g, u, v := twoNodes(t, c[0], c[1], c[2], c[3])
		m := Manhattan().Estimate(g, u, v)
		e := Euclidean().Estimate(g, u, v)
		if m < e-1e-12 {
			t.Errorf("coords %v: manhattan %v < euclidean %v", c, m, e)
		}
	}
}

func TestScaled(t *testing.T) {
	g, u, v := twoNodes(t, 0, 0, 3, 4)
	s := Scaled(Euclidean(), 2)
	if e := s.Estimate(g, u, v); math.Abs(e-10) > 1e-12 {
		t.Errorf("scaled = %v, want 10", e)
	}
	if s.String() != "euclidean×2" {
		t.Errorf("name = %q", s.String())
	}
	if e := Scaled(Manhattan(), 0).Estimate(g, u, v); e != 0 {
		t.Errorf("zero-scaled = %v", e)
	}
}

func TestMax(t *testing.T) {
	g, u, v := twoNodes(t, 0, 0, 3, 4)
	m := Max(Euclidean(), Manhattan())
	if e := m.Estimate(g, u, v); e != 7 {
		t.Errorf("max = %v, want 7 (manhattan wins)", e)
	}
	m2 := Max(Manhattan(), Zero())
	if e := m2.Estimate(g, u, v); e != 7 {
		t.Errorf("max(manhattan,zero) = %v, want 7", e)
	}
	if m.String() != "max(euclidean,manhattan)" {
		t.Errorf("name = %q", m.String())
	}
}

func TestViolationString(t *testing.T) {
	v := Violation{U: 3, D: 9, Estimate: 2.5, TrueCost: 2.0}
	want := "f(3,9)=2.5000 > true 2.0000"
	if v.String() != want {
		t.Errorf("String = %q, want %q", v.String(), want)
	}
}
