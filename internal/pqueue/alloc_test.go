package pqueue

import "testing"

// TestIndexedHotOpsZeroAlloc is the gate test behind the //atis:hotpath
// annotations on the Indexed heap's query-loop operations: once the
// backing slices have grown to the working size (AllocsPerRun's warm-up
// call does that), a full push/update/peek/pop/reset cycle allocates
// nothing.
func TestIndexedHotOpsZeroAlloc(t *testing.T) {
	h := NewIndexed(64)
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 32; i++ {
			h.PushTie(i, float64(63-i), float64(i))
		}
		h.UpdateTie(10, 1.5, 0)
		h.PushOrUpdateTie(10, 0.5, 0) // present: update path
		h.PushOrUpdateTie(40, 7, 0)   // absent: push path
		if _, _, ok := h.Peek(); !ok {
			t.Error("Peek on a non-empty heap reported empty")
		}
		for {
			if _, _, ok := h.PopMin(); !ok {
				break
			}
		}
		h.Reset()
	})
	if allocs != 0 {
		t.Fatalf("hot heap ops allocate %.1f times per cycle, want 0", allocs)
	}
}
