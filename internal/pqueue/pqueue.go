// Package pqueue provides the priority queues used by the in-memory search
// algorithms: an indexed binary min-heap with decrease-key (the standard
// frontier-set structure for Dijkstra and A*), and a plain binary min-heap
// without indexing (used by the "allow duplicates" frontier-management
// ablation, one of the design decisions Section 4 of the paper discusses).
//
// Items are dense non-negative integer keys — node ids in practice — with
// float64 priorities. Ties are broken by the smaller key so that runs are
// fully deterministic, which the experiment harness relies on when matching
// the paper's iteration counts.
package pqueue

import "fmt"

// Indexed is a binary min-heap over dense integer items in [0, capacity)
// supporting O(log n) push, pop-min and update (decrease- or increase-key).
// Each item may appear at most once.
type Indexed struct {
	items []int     // heap of item keys
	prio  []float64 // parallel priorities
	tie   []float64 // secondary priorities, compared when prio ties
	pos   []int     // pos[item] = index in items, or -1 if absent
	ops   OpStats   // since the last Reset (or construction)
}

// OpStats counts heap operations since the last Reset. The search kernels
// read it once per query to report heap work through the telemetry layer;
// the fields are plain integers because a heap is owned by exactly one
// query at a time.
type OpStats struct {
	Pushes  uint64 // successful Push/PushTie insertions
	Pops    uint64 // successful PopMin removals
	Updates uint64 // Update/UpdateTie priority changes (decrease- or increase-key)
}

// OpStats returns the operation counts accumulated since the last Reset.
func (h *Indexed) OpStats() OpStats { return h.ops }

// NewIndexed returns an indexed heap able to hold items 0..capacity-1.
func NewIndexed(capacity int) *Indexed {
	pos := make([]int, capacity)
	for i := range pos {
		pos[i] = -1
	}
	return &Indexed{pos: pos}
}

// Len returns the number of items currently queued.
func (h *Indexed) Len() int { return len(h.items) }

// Reset empties the heap while retaining all backing storage, so a pooled
// workspace can reuse it across queries without reallocation. Cost is
// O(queued items), not O(capacity): only the position entries of items
// still queued need clearing.
//
//atis:hotpath
func (h *Indexed) Reset() {
	for _, item := range h.items {
		h.pos[item] = -1
	}
	h.items = h.items[:0]
	h.prio = h.prio[:0]
	h.tie = h.tie[:0]
	h.ops = OpStats{}
}

// Grow extends the heap's item range to at least [0, capacity), retaining
// queued entries and backing storage. It is a no-op when the heap already
// covers the range.
func (h *Indexed) Grow(capacity int) {
	if capacity <= len(h.pos) {
		return
	}
	if capacity <= cap(h.pos) {
		old := len(h.pos)
		h.pos = h.pos[:capacity]
		for i := old; i < capacity; i++ {
			h.pos[i] = -1
		}
		return
	}
	//lint:ignore hotpath growth reallocates once per larger graph; steady traffic over one graph never takes this branch
	pos := make([]int, capacity)
	copy(pos, h.pos)
	for i := len(h.pos); i < capacity; i++ {
		pos[i] = -1
	}
	h.pos = pos
}

// Capacity returns the item range [0, capacity) the heap accepts.
func (h *Indexed) Capacity() int { return len(h.pos) }

// Contains reports whether item is currently queued.
func (h *Indexed) Contains(item int) bool {
	return item >= 0 && item < len(h.pos) && h.pos[item] >= 0
}

// Priority returns the queued priority of item; ok is false if the item is
// not queued.
func (h *Indexed) Priority(item int) (p float64, ok bool) {
	if !h.Contains(item) {
		return 0, false
	}
	return h.prio[h.pos[item]], true
}

// Push inserts item with the given priority and a zero tie-break key. It
// panics if the item is out of range or already queued: both indicate a
// logic error in the caller, the same class of bug as indexing a slice out
// of bounds.
func (h *Indexed) Push(item int, priority float64) { h.PushTie(item, priority, 0) }

// PushTie inserts item with a priority and a secondary tie-break key: among
// equal priorities, smaller tie wins (and equal ties fall back to the
// smaller item key). A* uses tie = −g to prefer the deeper node when f
// values tie, the standard way to avoid plateau flooding on uniform grids.
//
//atis:hotpath
func (h *Indexed) PushTie(item int, priority, tie float64) {
	if item < 0 || item >= len(h.pos) {
		panic(fmt.Sprintf("pqueue: item %d out of range [0,%d)", item, len(h.pos)))
	}
	if h.pos[item] >= 0 {
		panic(fmt.Sprintf("pqueue: item %d pushed twice; use Update", item))
	}
	h.items = append(h.items, item)
	h.prio = append(h.prio, priority)
	h.tie = append(h.tie, tie)
	h.pos[item] = len(h.items) - 1
	h.up(len(h.items) - 1)
	h.ops.Pushes++
}

// Update changes the priority of a queued item (zero tie-break key),
// restoring heap order whether the priority decreased or increased.
func (h *Indexed) Update(item int, priority float64) { h.UpdateTie(item, priority, 0) }

// UpdateTie changes the priority and tie-break key of a queued item.
//
//atis:hotpath
func (h *Indexed) UpdateTie(item int, priority, tie float64) {
	if !h.Contains(item) {
		panic(fmt.Sprintf("pqueue: Update of item %d which is not queued", item))
	}
	i := h.pos[item]
	h.prio[i] = priority
	h.tie[i] = tie
	h.up(i)
	h.down(h.pos[item])
	h.ops.Updates++
}

// PushOrUpdate inserts the item if absent, otherwise updates its priority.
func (h *Indexed) PushOrUpdate(item int, priority float64) {
	h.PushOrUpdateTie(item, priority, 0)
}

// PushOrUpdateTie inserts the item if absent, otherwise updates its priority
// and tie-break key.
//
//atis:hotpath
func (h *Indexed) PushOrUpdateTie(item int, priority, tie float64) {
	if h.Contains(item) {
		h.UpdateTie(item, priority, tie)
	} else {
		h.PushTie(item, priority, tie)
	}
}

// Peek returns the minimum item and its priority without removing it. ok is
// false when the heap is empty.
//
//atis:hotpath
func (h *Indexed) Peek() (item int, priority float64, ok bool) {
	if len(h.items) == 0 {
		return 0, 0, false
	}
	return h.items[0], h.prio[0], true
}

// PopMin removes and returns the item with the smallest priority (smallest
// key among ties). ok is false when the heap is empty.
//
//atis:hotpath
func (h *Indexed) PopMin() (item int, priority float64, ok bool) {
	if len(h.items) == 0 {
		return 0, 0, false
	}
	item, priority = h.items[0], h.prio[0]
	last := len(h.items) - 1
	h.swap(0, last)
	h.pos[item] = -1
	h.items = h.items[:last]
	h.prio = h.prio[:last]
	h.tie = h.tie[:last]
	if last > 0 {
		h.down(0)
	}
	h.ops.Pops++
	return item, priority, true
}

// Remove deletes a queued item regardless of its position, reporting whether
// it was present.
func (h *Indexed) Remove(item int) bool {
	if !h.Contains(item) {
		return false
	}
	i := h.pos[item]
	last := len(h.items) - 1
	h.swap(i, last)
	h.pos[item] = -1
	h.items = h.items[:last]
	h.prio = h.prio[:last]
	h.tie = h.tie[:last]
	if i < last {
		h.down(i)
		h.up(i)
	}
	return true
}

// less orders heap slots by (priority, tie, item key) for determinism.
func (h *Indexed) less(i, j int) bool {
	if h.prio[i] != h.prio[j] {
		return h.prio[i] < h.prio[j]
	}
	if h.tie[i] != h.tie[j] {
		return h.tie[i] < h.tie[j]
	}
	return h.items[i] < h.items[j]
}

func (h *Indexed) swap(i, j int) {
	h.items[i], h.items[j] = h.items[j], h.items[i]
	h.prio[i], h.prio[j] = h.prio[j], h.prio[i]
	h.tie[i], h.tie[j] = h.tie[j], h.tie[i]
	h.pos[h.items[i]] = i
	h.pos[h.items[j]] = j
}

func (h *Indexed) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			return
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *Indexed) down(i int) {
	n := len(h.items)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && h.less(l, smallest) {
			smallest = l
		}
		if r < n && h.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		h.swap(i, smallest)
		i = smallest
	}
}

// Entry is one queued (item, priority, tie) triple of a plain heap.
type Entry struct {
	Item     int
	Priority float64
	Tie      float64
}

// Plain is a binary min-heap that permits duplicate items. It backs the
// "allow duplicates in the frontierSet" strategy from Section 4 of the
// paper, where stale entries are skipped at pop time by the caller.
type Plain struct {
	entries []Entry
}

// NewPlain returns an empty plain heap with the given capacity hint.
func NewPlain(capacityHint int) *Plain {
	return &Plain{entries: make([]Entry, 0, capacityHint)}
}

// Len returns the number of queued entries, counting duplicates.
func (h *Plain) Len() int { return len(h.entries) }

// Reset empties the heap while retaining the backing slice.
func (h *Plain) Reset() { h.entries = h.entries[:0] }

// Push inserts an entry; duplicates of the same item are allowed.
func (h *Plain) Push(item int, priority float64) { h.PushTie(item, priority, 0) }

// PushTie inserts an entry with a secondary tie-break key.
func (h *Plain) PushTie(item int, priority, tie float64) {
	h.entries = append(h.entries, Entry{Item: item, Priority: priority, Tie: tie})
	i := len(h.entries) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.lessEntry(i, parent) {
			break
		}
		h.entries[i], h.entries[parent] = h.entries[parent], h.entries[i]
		i = parent
	}
}

// PopMin removes and returns the minimum entry; ok is false when empty.
func (h *Plain) PopMin() (e Entry, ok bool) {
	if len(h.entries) == 0 {
		return Entry{}, false
	}
	e = h.entries[0]
	last := len(h.entries) - 1
	h.entries[0] = h.entries[last]
	h.entries = h.entries[:last]
	i := 0
	n := len(h.entries)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && h.lessEntry(l, smallest) {
			smallest = l
		}
		if r < n && h.lessEntry(r, smallest) {
			smallest = r
		}
		if smallest == i {
			break
		}
		h.entries[i], h.entries[smallest] = h.entries[smallest], h.entries[i]
		i = smallest
	}
	return e, true
}

func (h *Plain) lessEntry(i, j int) bool {
	a, b := h.entries[i], h.entries[j]
	if a.Priority != b.Priority {
		return a.Priority < b.Priority
	}
	if a.Tie != b.Tie {
		return a.Tie < b.Tie
	}
	return a.Item < b.Item
}
