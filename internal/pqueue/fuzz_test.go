package pqueue

import (
	"math"
	"testing"
)

// fuzzModel is the reference implementation FuzzIndexed checks the heap
// against: a plain map from item to (priority, tie), with minimum
// selection by linear scan under the heap's (priority, tie, item)
// ordering.
type fuzzModel map[int][2]float64

// min returns the item the heap must pop next, or ok=false when empty.
func (m fuzzModel) min() (item int, prio float64, ok bool) {
	best := -1
	var bp, bt float64
	for it, pt := range m {
		p, t := pt[0], pt[1]
		if best < 0 || p < bp || (p == bp && (t < bt || (t == bt && it < best))) {
			best, bp, bt = it, p, t
		}
	}
	if best < 0 {
		return 0, 0, false
	}
	return best, bp, true
}

// FuzzIndexed drives an Indexed heap with an arbitrary operation sequence
// — push, update, pop, remove, reset, grow — decoded from the fuzz input,
// and asserts the heap invariant through the public API: every PopMin
// must return exactly the item the reference model says is minimal under
// the deterministic (priority, tie, item) order, Len/Contains/Priority
// must agree with the model throughout, and draining at the end must
// empty both in lockstep. The search kernels' correctness (and their
// telemetry's heap-op accounting) sits on exactly these properties.
func FuzzIndexed(f *testing.F) {
	f.Add([]byte{8, 0, 1, 10, 0, 2, 20, 1, 1})
	f.Add([]byte{4, 0, 0, 5, 0, 1, 5, 0, 2, 5, 1, 1, 1})
	f.Add([]byte{16, 0, 3, 200, 2, 3, 3, 4, 5})
	f.Add([]byte{2, 0, 0, 9, 5, 40, 0, 1, 9, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		capacity := int(data[0])%64 + 1
		h := NewIndexed(capacity)
		model := make(fuzzModel)

		check := func(op string) {
			if h.Len() != len(model) {
				t.Fatalf("%s: Len=%d, model=%d", op, h.Len(), len(model))
			}
			for it, pt := range model {
				if !h.Contains(it) {
					t.Fatalf("%s: model holds %d but Contains is false", op, it)
				}
				p, ok := h.Priority(it)
				if !ok || p != pt[0] {
					t.Fatalf("%s: Priority(%d)=(%v,%v), model %v", op, it, p, ok, pt[0])
				}
			}
		}

		i := 1
		nextByte := func() (byte, bool) {
			if i >= len(data) {
				return 0, false
			}
			b := data[i]
			i++
			return b, true
		}
		for {
			opByte, ok := nextByte()
			if !ok {
				break
			}
			switch opByte % 5 {
			case 0: // PushOrUpdateTie(item, prio, tie)
				ib, ok1 := nextByte()
				pb, ok2 := nextByte()
				tb, ok3 := nextByte()
				if !ok1 || !ok2 || !ok3 {
					break
				}
				item := int(ib) % capacity
				prio := float64(pb) / 4
				tie := float64(int8(tb))
				h.PushOrUpdateTie(item, prio, tie)
				model[item] = [2]float64{prio, tie}
				check("push")
			case 1: // PopMin
				wantItem, wantPrio, wantOK := model.min()
				item, prio, ok := h.PopMin()
				if ok != wantOK {
					t.Fatalf("PopMin ok=%v, model ok=%v", ok, wantOK)
				}
				if ok {
					if item != wantItem || prio != wantPrio {
						t.Fatalf("PopMin=(%d,%v), model=(%d,%v)", item, prio, wantItem, wantPrio)
					}
					delete(model, item)
				}
				check("pop")
			case 2: // Remove(item)
				ib, ok := nextByte()
				if !ok {
					break
				}
				item := int(ib) % capacity
				_, inModel := model[item]
				if removed := h.Remove(item); removed != inModel {
					t.Fatalf("Remove(%d)=%v, model membership %v", item, removed, inModel)
				}
				delete(model, item)
				check("remove")
			case 3: // Peek must agree with the model's minimum
				wantItem, wantPrio, wantOK := model.min()
				item, prio, ok := h.Peek()
				if ok != wantOK || (ok && (item != wantItem || prio != wantPrio)) {
					t.Fatalf("Peek=(%d,%v,%v), model=(%d,%v,%v)", item, prio, ok, wantItem, wantPrio, wantOK)
				}
			case 4: // Grow (occasionally) or Reset (rarely)
				b, ok := nextByte()
				if !ok {
					break
				}
				if b%8 == 0 {
					h.Reset()
					model = make(fuzzModel)
				} else {
					capacity += int(b % 8)
					h.Grow(capacity)
				}
				check("grow/reset")
			}
		}

		// Drain: the remaining items must come out in exact model order,
		// and OpStats pops must tick in lockstep.
		for len(model) > 0 {
			wantItem, wantPrio, _ := model.min()
			item, prio, ok := h.PopMin()
			if !ok {
				t.Fatalf("drain: heap empty with %d items left in model", len(model))
			}
			if item != wantItem || prio != wantPrio || math.IsNaN(prio) {
				t.Fatalf("drain: PopMin=(%d,%v), model=(%d,%v)", item, prio, wantItem, wantPrio)
			}
			delete(model, item)
		}
		if _, _, ok := h.PopMin(); ok {
			t.Fatal("drain: heap still non-empty after model emptied")
		}
	})
}
