package pqueue

import "testing"

func TestIndexedResetRetainsStorage(t *testing.T) {
	h := NewIndexed(8)
	for i := 0; i < 8; i++ {
		h.Push(i, float64(8-i))
	}
	// Pop a few so Reset must clear both popped (-1 already) and live slots.
	h.PopMin()
	h.PopMin()
	h.Reset()
	if h.Len() != 0 {
		t.Fatalf("Len after Reset = %d, want 0", h.Len())
	}
	if h.Capacity() != 8 {
		t.Fatalf("Capacity after Reset = %d, want 8", h.Capacity())
	}
	// Every item must be pushable again (stale pos entries would panic).
	for i := 0; i < 8; i++ {
		if h.Contains(i) {
			t.Fatalf("Contains(%d) true after Reset", i)
		}
		h.Push(i, float64(i))
	}
	for i := 0; i < 8; i++ {
		item, _, ok := h.PopMin()
		if !ok || item != i {
			t.Fatalf("PopMin = %d,%v, want %d,true", item, ok, i)
		}
	}
}

func TestIndexedGrow(t *testing.T) {
	h := NewIndexed(2)
	h.Push(0, 5)
	h.Grow(6)
	if h.Capacity() != 6 {
		t.Fatalf("Capacity = %d, want 6", h.Capacity())
	}
	h.Push(5, 1) // previously out of range
	if item, _, _ := h.PopMin(); item != 5 {
		t.Fatalf("PopMin = %d, want 5", item)
	}
	if item, _, _ := h.PopMin(); item != 0 {
		t.Fatalf("PopMin = %d, want 0", item)
	}
	h.Grow(3) // shrinking request is a no-op
	if h.Capacity() != 6 {
		t.Fatalf("Capacity after no-op Grow = %d, want 6", h.Capacity())
	}
}

func TestPlainReset(t *testing.T) {
	h := NewPlain(4)
	h.Push(1, 1)
	h.Push(2, 2)
	h.Reset()
	if h.Len() != 0 {
		t.Fatalf("Len after Reset = %d, want 0", h.Len())
	}
	h.Push(3, 3)
	if e, ok := h.PopMin(); !ok || e.Item != 3 {
		t.Fatalf("PopMin after Reset = %+v,%v", e, ok)
	}
}
