package pqueue

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestIndexedEmpty(t *testing.T) {
	h := NewIndexed(4)
	if h.Len() != 0 {
		t.Errorf("Len = %d", h.Len())
	}
	if _, _, ok := h.PopMin(); ok {
		t.Error("PopMin on empty reported ok")
	}
	if _, _, ok := h.Peek(); ok {
		t.Error("Peek on empty reported ok")
	}
	if h.Contains(0) {
		t.Error("empty heap Contains(0)")
	}
	if h.Contains(-1) || h.Contains(99) {
		t.Error("Contains out of range must be false")
	}
	if _, ok := h.Priority(0); ok {
		t.Error("Priority of absent item reported ok")
	}
}

func TestIndexedPushPopOrder(t *testing.T) {
	h := NewIndexed(10)
	input := map[int]float64{3: 2.5, 1: 0.5, 7: 9, 2: 0.5, 5: 1}
	for item, p := range input {
		h.Push(item, p)
	}
	// Expected order: priority asc, item asc among ties: 1(0.5), 2(0.5), 5(1), 3(2.5), 7(9).
	want := []int{1, 2, 5, 3, 7}
	for i, w := range want {
		item, _, ok := h.PopMin()
		if !ok || item != w {
			t.Fatalf("pop %d = %d,%v; want %d", i, item, ok, w)
		}
	}
	if h.Len() != 0 {
		t.Errorf("Len after drain = %d", h.Len())
	}
}

func TestIndexedUpdateDecreaseAndIncrease(t *testing.T) {
	h := NewIndexed(5)
	for i := 0; i < 5; i++ {
		h.Push(i, float64(10+i))
	}
	h.Update(4, 1) // decrease-key: 4 jumps to the front
	if item, p, _ := h.Peek(); item != 4 || p != 1 {
		t.Fatalf("after decrease Peek = %d,%v", item, p)
	}
	h.Update(4, 100) // increase-key: 4 drops to the back
	item, _, _ := h.PopMin()
	if item != 0 {
		t.Fatalf("after increase PopMin = %d, want 0", item)
	}
	// Drain; 4 must come out last.
	var lastItem int
	for {
		it, _, ok := h.PopMin()
		if !ok {
			break
		}
		lastItem = it
	}
	if lastItem != 4 {
		t.Errorf("last popped = %d, want 4", lastItem)
	}
}

func TestIndexedPushOrUpdate(t *testing.T) {
	h := NewIndexed(3)
	h.PushOrUpdate(1, 5)
	h.PushOrUpdate(1, 2)
	if p, ok := h.Priority(1); !ok || p != 2 {
		t.Errorf("Priority(1) = %v,%v; want 2,true", p, ok)
	}
	if h.Len() != 1 {
		t.Errorf("Len = %d, want 1", h.Len())
	}
}

func TestIndexedRemove(t *testing.T) {
	h := NewIndexed(6)
	for i := 0; i < 6; i++ {
		h.Push(i, float64(i))
	}
	if !h.Remove(3) {
		t.Fatal("Remove(3) = false")
	}
	if h.Remove(3) {
		t.Error("second Remove(3) = true")
	}
	var got []int
	for {
		it, _, ok := h.PopMin()
		if !ok {
			break
		}
		got = append(got, it)
	}
	want := []int{0, 1, 2, 4, 5}
	if len(got) != len(want) {
		t.Fatalf("drained %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("drained %v, want %v", got, want)
		}
	}
}

func TestIndexedPanics(t *testing.T) {
	assertPanics := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	h := NewIndexed(2)
	h.Push(0, 1)
	assertPanics("double push", func() { h.Push(0, 2) })
	assertPanics("push out of range", func() { h.Push(5, 1) })
	assertPanics("push negative", func() { h.Push(-1, 1) })
	assertPanics("update absent", func() { h.Update(1, 1) })
}

// Property: draining the indexed heap yields priorities in sorted order and
// returns exactly the pushed items.
func TestIndexedHeapSortProperty(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) > 300 {
			raw = raw[:300]
		}
		h := NewIndexed(len(raw))
		for i, p := range raw {
			h.Push(i, p)
		}
		var prios []float64
		seen := make(map[int]bool)
		for {
			item, p, ok := h.PopMin()
			if !ok {
				break
			}
			if seen[item] {
				return false
			}
			seen[item] = true
			prios = append(prios, p)
		}
		if len(prios) != len(raw) {
			return false
		}
		return sort.Float64sAreSorted(prios)
	}
	cfg := &quick.Config{MaxCount: 50}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: after a random interleaving of pushes, updates and removes the
// heap drains in non-decreasing priority order and pos bookkeeping holds.
func TestIndexedRandomOpsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(100)
		h := NewIndexed(n)
		inHeap := make(map[int]bool)
		for op := 0; op < 400; op++ {
			item := rng.Intn(n)
			switch {
			case !inHeap[item]:
				h.Push(item, rng.Float64())
				inHeap[item] = true
			case rng.Intn(2) == 0:
				h.Update(item, rng.Float64())
			default:
				h.Remove(item)
				delete(inHeap, item)
			}
			if h.Len() != len(inHeap) {
				t.Fatalf("trial %d: Len %d != tracked %d", trial, h.Len(), len(inHeap))
			}
		}
		last := -1.0
		for {
			_, p, ok := h.PopMin()
			if !ok {
				break
			}
			if p < last {
				t.Fatalf("trial %d: pops out of order: %v after %v", trial, p, last)
			}
			last = p
		}
	}
}

func TestPlainDuplicates(t *testing.T) {
	h := NewPlain(4)
	h.Push(1, 5)
	h.Push(1, 2)
	h.Push(1, 9)
	if h.Len() != 3 {
		t.Fatalf("Len = %d, want 3 (duplicates allowed)", h.Len())
	}
	e, ok := h.PopMin()
	if !ok || e.Item != 1 || e.Priority != 2 {
		t.Errorf("PopMin = %+v,%v", e, ok)
	}
}

func TestPlainEmpty(t *testing.T) {
	h := NewPlain(0)
	if _, ok := h.PopMin(); ok {
		t.Error("PopMin on empty plain heap reported ok")
	}
}

// Property: plain heap drains in sorted order.
func TestPlainHeapSortProperty(t *testing.T) {
	f := func(raw []float64) bool {
		h := NewPlain(len(raw))
		for i, p := range raw {
			h.Push(i%7, p) // deliberately collide items
		}
		var prios []float64
		for {
			e, ok := h.PopMin()
			if !ok {
				break
			}
			prios = append(prios, e.Priority)
		}
		return len(prios) == len(raw) && sort.Float64sAreSorted(prios)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkIndexedPushPop(b *testing.B) {
	const n = 1024
	rng := rand.New(rand.NewSource(1))
	prios := make([]float64, n)
	for i := range prios {
		prios[i] = rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := NewIndexed(n)
		for j := 0; j < n; j++ {
			h.Push(j, prios[j])
		}
		for h.Len() > 0 {
			h.PopMin()
		}
	}
}
