package lint

import (
	"bytes"
	"encoding/json"
	"go/token"
	"strings"
	"testing"
)

func sampleDiags() []Diagnostic {
	return []Diagnostic{
		{
			Pos:      token.Position{Filename: "internal/search/search.go", Line: 42, Column: 7},
			Analyzer: "hotpath",
			Message:  "make allocates in search.helper, on the hot path of //atis:hotpath search.IterativeCtx",
		},
		{
			Pos:      token.Position{Filename: "internal/ch/topology.go", Line: 9, Column: 2},
			Analyzer: "immutsnapshot",
			Message:  "write to t.rank mutates //atis:immutable Topology outside its build phase",
		},
	}
}

// TestWriteJSON round-trips the JSON rendering and checks the shape the
// scripting consumers depend on: a version field plus a findings array
// with file/line/column/analyzer/message per entry, and an empty (not
// null) findings array when the run is clean.
func TestWriteJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, sampleDiags()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Version  int `json:"version"`
		Findings []struct {
			File     string `json:"file"`
			Line     int    `json:"line"`
			Column   int    `json:"column"`
			Analyzer string `json:"analyzer"`
			Message  string `json:"message"`
		} `json:"findings"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if doc.Version != 1 {
		t.Errorf("version = %d, want 1", doc.Version)
	}
	if len(doc.Findings) != 2 {
		t.Fatalf("findings = %d, want 2", len(doc.Findings))
	}
	f := doc.Findings[0]
	if f.File != "internal/search/search.go" || f.Line != 42 || f.Column != 7 || f.Analyzer != "hotpath" {
		t.Errorf("first finding mangled: %+v", f)
	}
	if !strings.Contains(f.Message, "make allocates") {
		t.Errorf("message lost: %q", f.Message)
	}

	// A clean run must emit an empty array, not null — consumers index
	// .findings without a nil check.
	buf.Reset()
	if err := WriteJSON(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"findings": []`) {
		t.Errorf("clean run must render findings as [], got:\n%s", buf.String())
	}
}

// TestWriteSARIF checks the SARIF 2.1.0 skeleton GitHub code scanning
// requires: schema/version headers, one rule per analyzer plus the
// synthetic "ignore" rule, and results carrying %SRCROOT%-based URIs.
func TestWriteSARIF(t *testing.T) {
	analyzers := Analyzers()
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, sampleDiags(), analyzers); err != nil {
		t.Fatal(err)
	}
	var log struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				Level     string `json:"level"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI       string `json:"uri"`
							URIBaseID string `json:"uriBaseId"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if log.Version != "2.1.0" || !strings.Contains(log.Schema, "sarif-schema-2.1.0") {
		t.Errorf("SARIF headers wrong: version=%q schema=%q", log.Version, log.Schema)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("runs = %d, want 1", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "atislint" {
		t.Errorf("driver name = %q", run.Tool.Driver.Name)
	}
	if want := len(analyzers) + 1; len(run.Tool.Driver.Rules) != want {
		t.Errorf("rules = %d, want %d (one per analyzer plus the ignore rule)", len(run.Tool.Driver.Rules), want)
	}
	ruleIDs := make(map[string]bool)
	for _, r := range run.Tool.Driver.Rules {
		ruleIDs[r.ID] = true
	}
	for _, a := range analyzers {
		if !ruleIDs[a.Name()] {
			t.Errorf("rule metadata missing for analyzer %q", a.Name())
		}
	}
	if !ruleIDs["ignore"] {
		t.Error("synthetic ignore rule missing")
	}
	if len(run.Results) != 2 {
		t.Fatalf("results = %d, want 2", len(run.Results))
	}
	res := run.Results[0]
	if res.RuleID != "hotpath" || res.Level != "error" {
		t.Errorf("first result mangled: %+v", res)
	}
	loc := res.Locations[0].PhysicalLocation
	if loc.ArtifactLocation.URI != "internal/search/search.go" || loc.ArtifactLocation.URIBaseID != "%SRCROOT%" {
		t.Errorf("artifact location = %+v", loc.ArtifactLocation)
	}
	if loc.Region.StartLine != 42 {
		t.Errorf("start line = %d, want 42", loc.Region.StartLine)
	}

	// Every result's ruleId must resolve against the rule table — code
	// scanning rejects logs with dangling rule references.
	for _, r := range run.Results {
		if !ruleIDs[r.RuleID] {
			t.Errorf("result ruleId %q has no matching rule entry", r.RuleID)
		}
	}
}
