package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// CtxCheck flags exported context-taking entry points whose loops never
// consult the context. The request-lifecycle layer (PR 5) only works if
// every kernel's main loop polls its context — directly (ctx.Err(),
// select on ctx.Done()) or through a binding derived from it (the
// search package's lifecycle poller). A FooCtx entry point that accepts
// a context and then runs its search loop without ever polling is the
// exact bug the layer exists to prevent: the handler times out, the
// goroutine burns a core to completion anyway, and the admission gate's
// capacity accounting is fiction.
//
// The rule: for every exported function or method whose first parameter
// is a context.Context, if the body contains at least one working loop —
// a for/range statement that performs non-builtin calls, i.e. does real
// work per iteration — then at least one loop in the body must mention
// the context or a value derived from it (any variable assigned from an
// expression involving the context, transitively). Loops that only
// shuffle already-computed results (append, len, index arithmetic) are
// bounded post-processing and exempt: delegating the context to a
// sub-search and then assembling its output is a correct shape.
//
// Wrappers without loops are not the analyzer's business, and unexported
// helpers are the entry point's implementation detail — the contract
// sits on the exported surface.
type CtxCheck struct{}

// NewCtxCheck returns the analyzer.
func NewCtxCheck() *CtxCheck { return &CtxCheck{} }

// Name implements Analyzer.
func (*CtxCheck) Name() string { return "ctxcheck" }

// Doc implements Analyzer.
func (*CtxCheck) Doc() string {
	return "exported ctx-taking entry points must poll the context from their working loops"
}

// Run implements Analyzer.
func (a *CtxCheck) Run(u *Unit) []Diagnostic {
	var diags []Diagnostic
	for _, f := range u.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			ctxObj := contextParam(u, fd)
			if ctxObj == nil {
				continue
			}
			if d, bad := a.checkFunc(u, fd, ctxObj); bad {
				diags = append(diags, d)
			}
		}
	}
	return diags
}

// contextParam returns the object of fd's first parameter when it is a
// named context.Context, nil otherwise (including the blank identifier —
// a function that discards its context has made that explicit).
func contextParam(u *Unit, fd *ast.FuncDecl) types.Object {
	params := fd.Type.Params
	if params == nil || len(params.List) == 0 {
		return nil
	}
	first := params.List[0]
	if len(first.Names) == 0 || first.Names[0].Name == "_" {
		return nil
	}
	obj := objectOf(u.Info, first.Names[0])
	if obj == nil || !isContextType(obj.Type()) {
		return nil
	}
	return obj
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// checkFunc applies the invariant to one entry point: collect the
// context-tainted objects, then classify the body's loops.
func (a *CtxCheck) checkFunc(u *Unit, fd *ast.FuncDecl, ctxObj types.Object) (Diagnostic, bool) {
	tainted := taintedObjects(u, fd.Body, ctxObj)

	var (
		firstWorking *ast.Stmt // first working loop, for the diagnostic
		anyPolls     bool      // some loop mentions a tainted object
	)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		var body *ast.BlockStmt
		var stmt ast.Stmt
		switch x := n.(type) {
		case *ast.ForStmt:
			body, stmt = x.Body, x
		case *ast.RangeStmt:
			body, stmt = x.Body, x
		default:
			return true
		}
		if loopMentions(u, body, tainted) {
			anyPolls = true
		} else if firstWorking == nil && loopWorks(u, body) {
			firstWorking = &stmt
		}
		return true
	})
	if anyPolls || firstWorking == nil {
		return Diagnostic{}, false
	}
	return Diagnostic{
		Pos:      u.Position((*firstWorking).Pos()),
		Analyzer: "ctxcheck",
		Message: fmt.Sprintf("%s takes a context but this loop never polls it (directly or via a derived poller); a canceled or expired request would run to completion",
			fd.Name.Name),
	}, true
}

// taintedObjects returns the context parameter plus every variable
// (transitively) assigned from an expression that mentions a tainted
// object — the search kernels poll through `lc, err :=
// newLifecycle(ctx)`, and the loop evidence is `lc.poll(...)`, not ctx
// itself. Iterates to a fixpoint so declaration order does not matter.
func taintedObjects(u *Unit, body *ast.BlockStmt, ctxObj types.Object) map[types.Object]bool {
	tainted := map[types.Object]bool{ctxObj: true}
	for changed := true; changed; {
		changed = false
		ast.Inspect(body, func(n ast.Node) bool {
			asg, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			rhsTainted := false
			for _, rhs := range asg.Rhs {
				if exprMentions(u, rhs, tainted) {
					rhsTainted = true
					break
				}
			}
			if !rhsTainted {
				return true
			}
			for _, lhs := range asg.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				obj := objectOf(u.Info, id)
				if obj != nil && !tainted[obj] {
					tainted[obj] = true
					changed = true
				}
			}
			return true
		})
	}
	return tainted
}

// exprMentions reports whether any identifier in e resolves to a tainted
// object.
func exprMentions(u *Unit, e ast.Expr, tainted map[types.Object]bool) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := objectOf(u.Info, id); obj != nil && tainted[obj] {
				found = true
			}
		}
		return !found
	})
	return found
}

// loopMentions reports whether the loop body (including nested function
// literals — batch workers poll from inside goroutines spawned by the
// loop) uses a tainted object.
func loopMentions(u *Unit, body *ast.BlockStmt, tainted map[types.Object]bool) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := objectOf(u.Info, id); obj != nil && tainted[obj] {
				found = true
			}
		}
		return !found
	})
	return found
}

// loopWorks reports whether the loop body performs a non-builtin,
// non-conversion call — the marker separating per-iteration work
// (neighbor expansion, heap operations, sub-searches) from bounded
// result shuffling (append/len/index arithmetic over an
// already-computed slice).
func loopWorks(u *Unit, body *ast.BlockStmt) bool {
	works := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return !works
		}
		// Conversions parse as calls; a type expression is not work.
		if tv, ok := u.Info.Types[call.Fun]; ok && tv.IsType() {
			return !works
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if _, isBuiltin := objectOf(u.Info, id).(*types.Builtin); isBuiltin {
				return !works
			}
		}
		works = true
		return false
	})
	return works
}
