package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Loader type-checks the packages of one module without invoking the build
// system: module-internal imports resolve straight to directories under the
// module root, and standard-library imports go through the source importer.
// This keeps the tool on the standard library alone — no go/packages, no
// external driver.
type Loader struct {
	fset    *token.FileSet
	root    string // absolute module root
	modPath string // module path from go.mod

	std   types.Importer    // stdlib fallback
	units map[string]*Unit  // by module-relative dir ("." for root)
	order []string          // load order for deterministic output
	seen  map[string]string // import path → dir, for cycle messages
}

// NewLoader prepares a loader for the module rooted at root (the directory
// holding go.mod).
func NewLoader(root string) (*Loader, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := readModulePath(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		fset:    fset,
		root:    abs,
		modPath: modPath,
		std:     importer.ForCompiler(fset, "source", nil),
		units:   make(map[string]*Unit),
		seen:    make(map[string]string),
	}, nil
}

// readModulePath extracts the module path from a go.mod file.
func readModulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("lint: reading %s: %w", gomod, err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// LoadAll walks the module and type-checks every package found. Directories
// named testdata or vendor, hidden directories, and nested modules (a
// subdirectory with its own go.mod, like tools/) are skipped.
func (l *Loader) LoadAll() ([]*Unit, error) {
	var dirs []string
	err := filepath.WalkDir(l.root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.root {
			if strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor" {
				return filepath.SkipDir
			}
			if _, err := os.Stat(filepath.Join(path, "go.mod")); err == nil {
				return filepath.SkipDir // nested module (tools/)
			}
		}
		if hasGoFiles(path) {
			rel, err := filepath.Rel(l.root, path)
			if err != nil {
				return err
			}
			dirs = append(dirs, rel)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	for _, dir := range dirs {
		if _, err := l.LoadDir(dir); err != nil {
			return nil, err
		}
	}
	units := make([]*Unit, 0, len(l.order))
	for _, dir := range l.order {
		units = append(units, l.units[dir])
	}
	return units, nil
}

// hasGoFiles reports whether dir directly contains at least one
// non-test .go file.
func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}

// LoadDir type-checks the package in the module-relative directory dir
// ("." for the module root), loading its module-internal dependencies
// first. Results are memoized.
func (l *Loader) LoadDir(dir string) (*Unit, error) {
	dir = filepath.ToSlash(filepath.Clean(dir))
	if u, ok := l.units[dir]; ok {
		return u, nil
	}

	abs := filepath.Join(l.root, filepath.FromSlash(dir))
	entries, err := os.ReadDir(abs)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(abs, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: parsing %s: %w", name, err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no buildable Go files in %s", abs)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{
		Importer: importerFunc(func(path string) (*types.Package, error) { return l.importPath(path) }),
	}
	pkgPath := l.modPath
	if dir != "." {
		pkgPath = l.modPath + "/" + dir
	}
	pkg, err := conf.Check(pkgPath, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", pkgPath, err)
	}
	u := &Unit{Fset: l.fset, Files: files, Pkg: pkg, Info: info, Dir: dir}
	l.units[dir] = u
	l.order = append(l.order, dir)
	return u, nil
}

// importPath resolves one import: module-internal paths load from disk,
// everything else (the standard library) goes through the source importer.
func (l *Loader) importPath(path string) (*types.Package, error) {
	if path == l.modPath {
		u, err := l.LoadDir(".")
		if err != nil {
			return nil, err
		}
		return u.Pkg, nil
	}
	if rest, ok := strings.CutPrefix(path, l.modPath+"/"); ok {
		u, err := l.LoadDir(rest)
		if err != nil {
			return nil, err
		}
		return u.Pkg, nil
	}
	return l.std.Import(path)
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
