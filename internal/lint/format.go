package lint

import (
	"encoding/json"
	"io"
	"path/filepath"
)

// Machine-readable renderings of a diagnostic list for cmd/atislint's
// -format flag: a compact JSON shape for scripting, and SARIF 2.1.0 for
// GitHub code scanning (findings annotate PR diffs when the CI job uploads
// the file).

// jsonFinding is one diagnostic in the JSON output.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// WriteJSON renders the diagnostics as a single JSON document.
func WriteJSON(w io.Writer, diags []Diagnostic) error {
	findings := make([]jsonFinding, 0, len(diags))
	for _, d := range diags {
		findings = append(findings, jsonFinding{
			File:     filepath.ToSlash(d.Pos.Filename),
			Line:     d.Pos.Line,
			Column:   d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Version  int           `json:"version"`
		Findings []jsonFinding `json:"findings"`
	}{Version: 1, Findings: findings})
}

// --- SARIF 2.1.0 ---------------------------------------------------------

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId,omitempty"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// WriteSARIF renders the diagnostics as a SARIF 2.1.0 log. File paths
// should already be relative to the module root; they become %SRCROOT%-
// based artifact URIs. The analyzer set provides the rule metadata, plus
// the synthetic "ignore" rule for unknown-suppression warnings.
func WriteSARIF(w io.Writer, diags []Diagnostic, analyzers []Analyzer) error {
	rules := make([]sarifRule, 0, len(analyzers)+1)
	for _, a := range analyzers {
		rules = append(rules, sarifRule{ID: a.Name(), ShortDescription: sarifMessage{Text: a.Doc()}})
	}
	rules = append(rules, sarifRule{ID: "ignore", ShortDescription: sarifMessage{Text: "//lint:ignore directives must name known analyzers"}})

	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		results = append(results, sarifResult{
			RuleID:  d.Analyzer,
			Level:   "error",
			Message: sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{
						URI:       filepath.ToSlash(d.Pos.Filename),
						URIBaseID: "%SRCROOT%",
					},
					Region: sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column},
				},
			}},
		})
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(sarifLog{
		Schema:  "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "atislint", Rules: rules}},
			Results: results,
		}},
	})
}
