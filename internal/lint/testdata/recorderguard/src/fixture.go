// Package fixture reproduces the recorderguard bug class: consuming the
// package recorder without the nil-checked fast-path guard, which both
// panics with telemetry disabled and erodes the zero-cost-when-disabled
// contract of the search kernels.
package fixture

type recorder interface{ observe(string) }

var installed recorder

func activeRecorder() recorder { return installed }

// goodKernel uses the canonical if-init guard.
func goodKernel() {
	if rec := activeRecorder(); rec != nil {
		rec.observe("good")
	}
}

// goodAdjacent binds first and nil-checks in the next statement.
func goodAdjacent() {
	rec := activeRecorder()
	if rec != nil {
		rec.observe("adjacent")
	}
}

// badDirect chains a method call straight off the provider: panics when
// telemetry is disabled.
func badDirect() {
	activeRecorder().observe("boom")
}

// badUnchecked binds but never nil-checks.
func badUnchecked() {
	rec := activeRecorder()
	rec.observe("boom")
}

// badWrongCheck guards on an unrelated condition.
func badWrongCheck(x int) {
	if rec := activeRecorder(); x > 0 {
		rec.observe("boom")
	}
}

// blessed records why the guard is skipped (a test hook that is always
// installed).
func blessed() {
	//lint:ignore recorderguard the bench harness installs a recorder before every run
	rec := activeRecorder()
	rec.observe("ok")
}
