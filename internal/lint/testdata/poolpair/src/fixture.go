// Package fixture reproduces the poolpair bug class: a workspace
// acquired from the pool but not released on every return path, which
// silently degrades the pool to per-query allocation.
package fixture

import "sync"

type workspace struct{ buf []int }

var pool = sync.Pool{New: func() any { return new(workspace) }}

// acquireWorkspace transfers ownership to its caller: the returned value
// exempts the Get inside.
func acquireWorkspace() *workspace {
	ws := pool.Get().(*workspace)
	return ws
}

func releaseWorkspace(ws *workspace) { pool.Put(ws) }

// good is the blessed shape: acquire, defer release.
func good(n int) int {
	ws := acquireWorkspace()
	defer releaseWorkspace(ws)
	return len(ws.buf) + n
}

// goodClosure releases inside a deferred closure.
func goodClosure() int {
	ws := acquireWorkspace()
	defer func() { releaseWorkspace(ws) }()
	return len(ws.buf)
}

// leaky releases on only one path: the early return leaks ws.
func leaky(n int) int {
	ws := acquireWorkspace()
	if n < 0 {
		return -1
	}
	releaseWorkspace(ws)
	return len(ws.buf)
}

// genericLeak takes straight from the sync.Pool with no deferred Put.
func genericLeak() int {
	v := pool.Get().(*workspace)
	return len(v.buf)
}

// genericGood pairs Get with a deferred Put.
func genericGood() int {
	v := pool.Get().(*workspace)
	defer pool.Put(v)
	return len(v.buf)
}

// discarded never binds the value, so it can never be released.
func discarded() {
	pool.Get()
}

// blessed hands the workspace to a long-lived owner; the directive
// records why no release happens here.
func blessed() {
	//lint:ignore poolpair ownership transfers to the package-level sink
	ws := acquireWorkspace()
	sink = ws
}

var sink *workspace
