// Package fixture reproduces the ctxcheck bug class: a context-taking
// search entry point whose main loop never polls the context, so a
// canceled or deadline-expired request burns a core to completion while
// the handler has long since given up on it.
package fixture

import "context"

type node int

type network struct{ arcs map[node][]node }

func (g *network) neighbors(u node) []node { return g.arcs[u] }

// poller mirrors the search package's lifecycle: the context lookup
// happens once, and loops poll through the derived binding.
type poller struct{ ctx context.Context }

func newPoller(ctx context.Context) poller { return poller{ctx: ctx} }

func (p *poller) poll() error { return p.ctx.Err() }

// GoodDirectCtx polls the context from its working loop: no finding.
func GoodDirectCtx(ctx context.Context, g *network, s node) error {
	frontier := []node{s}
	for len(frontier) > 0 {
		if err := ctx.Err(); err != nil {
			return err
		}
		u := frontier[len(frontier)-1]
		frontier = append(frontier[:len(frontier)-1], g.neighbors(u)...)
	}
	return nil
}

// GoodDerivedCtx polls through a binding derived from the context — the
// kernels' lifecycle shape: no finding.
func GoodDerivedCtx(ctx context.Context, g *network, s node) error {
	lc := newPoller(ctx)
	frontier := []node{s}
	for len(frontier) > 0 {
		if err := lc.poll(); err != nil {
			return err
		}
		u := frontier[len(frontier)-1]
		frontier = append(frontier[:len(frontier)-1], g.neighbors(u)...)
	}
	return nil
}

// BadKernelCtx accepts a context and then runs its search loop without
// ever consulting it: the finding this analyzer exists for.
func BadKernelCtx(ctx context.Context, g *network, s node) int {
	visited := 0
	frontier := []node{s}
	for len(frontier) > 0 {
		u := frontier[len(frontier)-1]
		frontier = append(frontier[:len(frontier)-1], g.neighbors(u)...)
		visited++
	}
	return visited
}

// BadDerivedCtx derives a poller from the context but forgets to call it
// from the loop — deriving is not polling.
func BadDerivedCtx(ctx context.Context, g *network, s node) int {
	lc := newPoller(ctx)
	_ = lc
	visited := 0
	frontier := []node{s}
	for len(frontier) > 0 {
		u := frontier[len(frontier)-1]
		frontier = append(frontier[:len(frontier)-1], g.neighbors(u)...)
		visited++
	}
	return visited
}

// GoodPostProcessCtx delegates the context to a sub-search and then only
// assembles the result: the loop does no per-iteration work (append and
// index arithmetic), so it is exempt — the Alternates shape.
func GoodPostProcessCtx(ctx context.Context, g *network, s node) ([]node, error) {
	if err := GoodDirectCtx(ctx, g, s); err != nil {
		return nil, err
	}
	results := g.neighbors(s)
	out := make([]node, 0, len(results))
	for _, r := range results {
		out = append(out, r+1)
	}
	return out, nil
}

// GoodSpawnCtx polls from a goroutine spawned by the loop — the batch
// worker shape: no finding.
func GoodSpawnCtx(ctx context.Context, g *network, s node) {
	for i := 0; i < 4; i++ {
		go func() {
			_ = GoodDirectCtx(ctx, g, s)
		}()
	}
}

// GoodNoLoopCtx is a loop-free wrapper: delegation is the whole job.
func GoodNoLoopCtx(ctx context.Context, g *network, s node) error {
	return GoodDirectCtx(ctx, g, s)
}

// BlessedReplayCtx is the escape hatch: a bounded replay loop whose
// iteration count the caller fixed in advance, blessed by a reviewed
// directive.
func BlessedReplayCtx(ctx context.Context, g *network, s node) int {
	if err := ctx.Err(); err != nil {
		return 0
	}
	total := 0
	//lint:ignore ctxcheck three fixed iterations, bounded well under any deadline
	for i := 0; i < 3; i++ {
		total += len(g.neighbors(s))
	}
	return total
}

// badUnexportedCtx is not an entry point — the contract sits on the
// exported surface: no finding.
func badUnexportedCtx(ctx context.Context, g *network, s node) int {
	visited := 0
	for u := s; u < 100; u++ {
		visited += len(g.neighbors(u))
	}
	return visited
}

// NotFirstParam takes its context in second position — not the module's
// entry-point convention, so not this analyzer's business.
func NotFirstParam(g *network, ctx context.Context, s node) int {
	visited := 0
	for u := s; u < 100; u++ {
		visited += len(g.neighbors(u))
	}
	return visited
}
