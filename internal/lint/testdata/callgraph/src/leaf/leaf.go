// Package leaf is the cross-package callee.
package leaf

// Incr is reached from fixture.Worker.Step.
func Incr(n int) int { return n + 1 }
