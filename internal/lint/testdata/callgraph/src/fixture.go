// Package fixture exercises call-graph resolution: direct calls, method
// calls through concrete receivers, conservative interface and func-value
// treatment, and the builtin/conversion exclusions.
package fixture

import "fixture/leaf"

// Worker is a concrete receiver type.
type Worker struct{ n int }

// Step is resolved statically at w.Step() call sites and carries a
// cross-package edge of its own.
func (w *Worker) Step() int { return leaf.Incr(w.n) }

// Stepper makes the same method dynamic when called through the interface.
type Stepper interface{ Step() int }

// Direct has one static edge.
func Direct() int { return helperFn() }

func helperFn() int { return 1 }

// Method resolves the receiver concretely: a static edge to Worker.Step.
func Method(w *Worker) int { return w.Step() }

// Dynamic shows the conservative cases: an interface method call and a
// func-value call produce no static edges.
func Dynamic(s Stepper, f func() int) int { return s.Step() + f() }

// Quiet has no edges: builtins and conversions are not calls.
func Quiet(xs []int) int64 { return int64(len(xs)) }
