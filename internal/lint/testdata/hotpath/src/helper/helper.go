// Package helper is the cross-package callee of the interprocedural case:
// nothing here is annotated, but fixture.BadKernel pulls Scratch onto a
// hot path through a static call edge.
package helper

// Scratch allocates a temporary. The finding names the annotated root
// that reached it.
func Scratch(n int) int {
	tmp := make([]int, n)
	return len(tmp)
}
