// Package fixture exercises the hotpath analyzer: allocation sources in
// annotated kernels, interprocedural propagation into another package, the
// non-escape closure proofs, the panic exemption, and the two escape
// hatches (finding suppression and edge pruning).
package fixture

import (
	"fmt"

	"fixture/helper"
)

// sink consumes a boxed value.
func sink(v any) { _ = v }

// each invokes fn on every element; fn is only ever called, never stored,
// so closure arguments do not escape through it.
func each(xs []int, fn func(int)) {
	for _, x := range xs {
		fn(x)
	}
}

// variadicSum materialises its argument slice at non-spread call sites.
func variadicSum(xs ...int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}

// GoodKernel allocates nothing: parameter-backed appends, non-escaping
// closures, deferred in-frame execution, and a panic-only Sprintf.
//
//atis:hotpath
func GoodKernel(buf []int) int {
	buf = append(buf, 1) // parameter-backed: capacity is the caller's business
	total := 0
	each(buf, func(x int) { total += x }) // callback never escapes each
	add := func(x int) { total += x }     // local closure, only ever called
	add(3)
	defer func() { total++ }() // deferred in-frame execution
	if total < 0 {
		panic(fmt.Sprintf("impossible total %d", total)) // crash path is exempt
	}
	return total
}

// BadKernel trips every allocation class the analyzer knows.
//
//atis:hotpath
func BadKernel(n int, s string) int {
	xs := make([]int, n)
	ys := []int{1, 2}
	ys = append(ys, 3)
	m := map[string]int{}
	m[s] = 1
	msg := s + "!"
	bs := []byte(msg)
	sink(n)
	p := new(int)
	_ = variadicSum(1, 2)
	go func() { xs[0] = n }()
	return helper.Scratch(n) + len(bs) + *p + len(ys)
}

// BlessedSuppression shows the per-site escape hatch: the reviewed reason
// keeps the one deliberate allocation out of the findings.
//
//atis:hotpath
func BlessedSuppression(n int) []int {
	//lint:ignore hotpath result materialisation: the query's one allowed allocation
	out := make([]int, 0, n)
	return out
}

// coldRefill allocates, but is only reachable over a pruned edge.
func coldRefill(n int) []int {
	return make([]int, n)
}

// BlessedEdge prunes propagation: the ignore on the call line asserts
// coldRefill runs cold (pool refill), so its body is not held to the
// hot-path standard.
//
//atis:hotpath
func BlessedEdge(n int) int {
	//lint:ignore hotpath pool refill runs once at startup, off the warm path
	xs := coldRefill(n)
	return len(xs)
}
