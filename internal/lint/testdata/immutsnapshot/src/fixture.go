// Package fixture exercises the immutsnapshot analyzer: nascent-value
// writes, the interprocedural build-only classification of helpers, writes
// through aliases, mutating-method calls, and the suppression hatch.
package fixture

// Snapshot is frozen after construction and shared by reference with
// concurrent readers.
//
//atis:immutable
type Snapshot struct {
	data    []int
	index   map[string]int
	version int
}

// NewSnapshot is the build phase: writes to the nascent value and calls
// into build-only helpers are legal.
func NewSnapshot(n int) *Snapshot {
	s := &Snapshot{data: make([]int, n), index: make(map[string]int)}
	s.version = 1 // nascent value: allowed
	costs := s.data
	costs[0] = 42 // alias derived from the nascent value: allowed
	fill(s)
	rescale(s, 2)
	return s
}

// fill is reachable only from NewSnapshot, so the call graph proves it
// build-only; its receiver-rooted writes pass.
func fill(s *Snapshot) {
	for i := range s.data {
		s.data[i] = i
	}
}

// rescale is reachable from NewSnapshot AND Handle, so it is not
// build-only: its writes are flagged even though a constructor uses it.
func rescale(s *Snapshot, k int) {
	for i := range s.data {
		s.data[i] *= k
	}
}

// Bump is a mutating method: flagged at its write, and its call sites
// outside the build phase are flagged too.
func (s *Snapshot) Bump() {
	s.version++
}

// Rebuild derives a successor snapshot. Writes to the fresh value are
// nascent and pass; the write-back into the published predecessor is the
// violation.
func Rebuild(old *Snapshot) *Snapshot {
	next := &Snapshot{data: make([]int, len(old.data)), index: make(map[string]int)}
	next.version = old.version + 1 // nascent: allowed
	copy(next.data, old.data)
	old.version = 0 // published value: flagged
	return next
}

// Handle is a request path: every mutation here is a violation.
func Handle(s *Snapshot, key string) {
	s.data[0] = 99
	s.index[key] = 1
	view := s.data
	view[1] = 7 // write through an alias of a published value
	rescale(s, 3)
	s.Bump()
}

// BlessedSwap shows the reviewed escape hatch.
func BlessedSwap(s *Snapshot) {
	//lint:ignore immutsnapshot version reset happens under the registry write lock before publication
	s.version = 0
}
