// Package fixture reproduces the lockscope bug classes. The registry
// struct mirrors telemetry.Registry, and exportRacy is modeled on the
// PR 2 Prometheus exporter race: family names snapshotted under RLock,
// but the guarded map iterated after RUnlock.
package fixture

import "sync"

type registry struct {
	mu       sync.RWMutex
	families map[string]int
	order    []string

	// extra sits in its own field group: by the layout convention it is
	// not guarded by mu, so unlocked access to it is fine.
	extra map[string]int
}

// exportRacy is the PR 2 exporter race: the map is iterated after the
// read lock is dropped, a fatal concurrent map read/write under racing
// scrapes.
func (r *registry) exportRacy() []string {
	r.mu.RLock()
	names := make([]string, 0, len(r.families))
	r.mu.RUnlock()
	for name := range r.families {
		names = append(names, name)
	}
	return names
}

// exportSafe snapshots under the read lock, held to function exit.
func (r *registry) exportSafe() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	return names
}

// writeUnderRead mutates guarded containers while holding only RLock.
func (r *registry) writeUnderRead(name string) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	r.families[name] = 1
	r.order = append(r.order, name)
}

// writeSafe takes the exclusive lock for its writes.
func (r *registry) writeSafe(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.families[name] = 1
	delete(r.families, name)
}

// unguardedHelper reads a guarded field with no locking at all.
func (r *registry) unguardedHelper() int {
	return len(r.families)
}

// blessedHelper is the documented escape hatch: the caller holds r.mu.
func (r *registry) blessedHelper() int {
	//lint:ignore lockscope caller holds r.mu
	return len(r.families)
}

// unguardedExtra touches the unguarded field group: no finding.
func (r *registry) unguardedExtra() int {
	return len(r.extra)
}

// newRegistry initialises a fresh, unpublished value: no lock needed.
func newRegistry() *registry {
	r := &registry{}
	r.families = make(map[string]int)
	return r
}
