// Package fixture reproduces the spanend bug class: a span opened by
// tracing.Start that is never ended stays open in its trace forever —
// its duration is garbage and late attribute writes race the capture.
package fixture

import (
	"context"

	"fixture/tracing"
)

func work(ctx context.Context) int { _ = ctx; return 1 }

// GoodDeferEnd is the canonical form: bind and defer. No finding.
func GoodDeferEnd(ctx context.Context) int {
	ctx, sp := tracing.Start(ctx, "good.defer")
	defer sp.End()
	return work(ctx)
}

// GoodAllPathsEnd ends the span explicitly before every return — the
// hot-path form used when a deferred closure would allocate. No finding.
func GoodAllPathsEnd(ctx context.Context, fast bool) int {
	ctx, sp := tracing.Start(ctx, "good.allpaths")
	if fast {
		sp.SetInt("fast", 1)
		sp.End()
		return 0
	}
	n := work(ctx)
	sp.End()
	return n
}

// GoodDeferClosureEnd discharges the obligation from a deferred closure
// (attribute writes plus End at frame exit). No finding.
func GoodDeferClosureEnd(ctx context.Context) int {
	ctx, sp := tracing.Start(ctx, "good.closure")
	n := 0
	defer func() {
		sp.SetInt("n", int64(n))
		sp.End()
	}()
	n = work(ctx)
	return n
}

// GoodVoidTailEnd is a void function whose fall-off-the-end path is
// closed by a trailing End. No finding.
func GoodVoidTailEnd(ctx context.Context) {
	ctx, sp := tracing.Start(ctx, "good.tail")
	work(ctx)
	sp.End()
}

// BadDiscarded throws the span away: nothing can ever end it.
func BadDiscarded(ctx context.Context) int {
	tracing.Start(ctx, "bad.discarded")
	return work(ctx)
}

// BadBlankSpan binds the context but blanks the span — the same leak
// with an assignment for camouflage.
func BadBlankSpan(ctx context.Context) int {
	ctx, _ = tracing.Start(ctx, "bad.blank")
	return work(ctx)
}

// BadNeverEnded binds the span and forgets it.
func BadNeverEnded(ctx context.Context) int {
	ctx, sp := tracing.Start(ctx, "bad.never")
	sp.SetInt("bound", 1)
	return work(ctx)
}

// BadMissedPath ends the span on the slow path but leaks it on the
// early return — the exact bug the defer form exists to prevent.
func BadMissedPath(ctx context.Context, fast bool) int {
	ctx, sp := tracing.Start(ctx, "bad.missed")
	if fast {
		return 0
	}
	n := work(ctx)
	sp.End()
	return n
}

// BadClosureLeak starts a span inside a goroutine closure and ends a
// different frame's obligation never: the closure outlives the caller,
// so the End must live inside it.
func BadClosureLeak(ctx context.Context) {
	go func() {
		_, sp := tracing.Start(ctx, "bad.closure")
		sp.SetInt("leaked", 1)
	}()
}

// BlessedManualLifecycle hands the span to a collaborator that ends it
// later — an ownership transfer the lexical check cannot see, blessed by
// a reviewed directive.
func BlessedManualLifecycle(ctx context.Context, sink chan<- *tracing.Span) int {
	//lint:ignore spanend span ownership transfers to the sink, which ends it
	ctx, sp := tracing.Start(ctx, "blessed.transfer")
	sink <- sp
	return work(ctx)
}
