// Package tracing is a structural stand-in for the real span tracer:
// the spanend analyzer matches any Start returning (context.Context,
// *Span) from a package whose import path ends in "tracing", so the
// fixture carries the same shape without the ring buffers behind it.
package tracing

import "context"

// Span is one timed phase; End freezes it.
type Span struct{ ended bool }

// End marks the span complete. Nil-safe, like the real one.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.ended = true
}

// SetInt records an attribute (a no-op stand-in).
func (s *Span) SetInt(key string, v int64) {
	if s == nil {
		return
	}
	_ = key
	_ = v
}

// Start opens a child span under ctx's current span.
func Start(ctx context.Context, name string) (context.Context, *Span) {
	_ = name
	return ctx, &Span{}
}
