// Package fixture reproduces the costversion bug class: mutating a
// versioned cost store without bumping the version, which would make the
// engine's ReverseView cache and generation-keyed route cache serve
// results priced under stale traffic.
package fixture

import "sync/atomic"

type costGraph struct {
	costs       []float64
	costVersion atomic.Uint64
}

// setGood is the blessed mutator shape: write, then bump.
func (g *costGraph) setGood(i int, c float64) {
	g.costs[i] = c
	g.costVersion.Add(1)
}

// setBad forgets the bump.
func (g *costGraph) setBad(i int, c float64) {
	g.costs[i] = c
}

// scaleBad compound-assigns in a loop without bumping.
func (g *costGraph) scaleBad(f float64) {
	for i := range g.costs {
		g.costs[i] *= f
	}
}

// resetBad clears the storage without bumping.
func (g *costGraph) resetBad() {
	clear(g.costs)
}

// restoreBlessed is the escape hatch: the batch caller owns the bump.
func (g *costGraph) restoreBlessed(saved []float64) {
	//lint:ignore costversion caller bumps the version once after the batch
	copy(g.costs, saved)
}

// newCostGraph constructs through a literal — initialisation, not
// mutation: no finding.
func newCostGraph(n int) *costGraph {
	return &costGraph{costs: make([]float64, n)}
}

// plainStore has no costVersion field, so its costs are not versioned and
// writes to them are nobody's business.
type plainStore struct {
	costs []float64
}

func (p *plainStore) set(i int, c float64) {
	p.costs[i] = c
}
