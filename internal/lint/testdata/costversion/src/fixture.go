// Package fixture reproduces the costversion bug class: mutating a
// versioned cost store without bumping the version, which would make the
// engine's ReverseView cache and generation-keyed route cache serve
// results priced under stale traffic.
package fixture

import "sync/atomic"

type costGraph struct {
	costs       []float64
	costVersion atomic.Uint64
}

// setGood is the blessed mutator shape: write, then bump.
func (g *costGraph) setGood(i int, c float64) {
	g.costs[i] = c
	g.costVersion.Add(1)
}

// setBad forgets the bump.
func (g *costGraph) setBad(i int, c float64) {
	g.costs[i] = c
}

// scaleBad compound-assigns in a loop without bumping.
func (g *costGraph) scaleBad(f float64) {
	for i := range g.costs {
		g.costs[i] *= f
	}
}

// resetBad clears the storage without bumping.
func (g *costGraph) resetBad() {
	clear(g.costs)
}

// restoreBlessed is the escape hatch: the batch caller owns the bump.
func (g *costGraph) restoreBlessed(saved []float64) {
	//lint:ignore costversion caller bumps the version once after the batch
	copy(g.costs, saved)
}

// newCostGraph constructs through a literal — initialisation, not
// mutation: no finding.
func newCostGraph(n int) *costGraph {
	return &costGraph{costs: make([]float64, n)}
}

// plainStore has no costVersion field, so its costs are not versioned and
// writes to them are nobody's business.
type plainStore struct {
	costs []float64
}

func (p *plainStore) set(i int, c float64) {
	p.costs[i] = c
}

// hierarchy mirrors the contraction-hierarchy index shape: a plain-counter
// version stamp on the owner, with the priced arrays frozen inside nested
// CSR halves. A write through a half must bump the owner's counter — the
// stale-index write the route service's version gate cannot see.
type hierarchy struct {
	fwd, bwd    csrHalf
	costVersion uint64
}

// csrHalf is one adjacency half: no version of its own, so it is paired
// through whoever embeds it next to a costVersion.
type csrHalf struct {
	offsets []int32
	costs   []float64
}

// retimeBad rewrites an arc cost inside a frozen half without moving the
// owner's stamp: the index silently answers with mixed-version costs.
func (h *hierarchy) retimeBad(i int, c float64) {
	h.fwd.costs[i] = c
}

// retimeGood pairs the nested write with a plain-counter bump on the owner.
func (h *hierarchy) retimeGood(i int, c float64) {
	h.bwd.costs[i] = c
	h.costVersion++
}

// restampGood bumps by assignment rather than increment.
func (h *hierarchy) restampGood(i int, c float64, v uint64) {
	h.fwd.costs[i] = c
	h.costVersion = v
}

// buildHalf constructs a half from locals and a composite literal —
// initialisation, not mutation: no finding.
func buildHalf(n int) csrHalf {
	costs := make([]float64, n)
	for i := range costs {
		costs[i] = 1
	}
	return csrHalf{offsets: make([]int32, n+1), costs: costs}
}

// aliasBad hoists the slice header into a local — the customization-kernel
// idiom — and writes through it without bumping: the same backing array the
// store serves from, so the same finding, attributed to the owner.
func (g *costGraph) aliasBad(i int, c float64) {
	cs := g.costs
	cs[i] = c
}

// aliasGood pairs the aliased write with the owner's bump.
func (g *costGraph) aliasGood(i int, c float64) {
	cs := g.costs
	cs[i] = c
	g.costVersion.Add(1)
}

// aliasNestedBad hoists a frozen half's costs — the bump still belongs to
// the embedding owner, one level up.
func (h *hierarchy) aliasNestedBad(i int, c float64) {
	cs := h.fwd.costs
	cs[i] = c
}

// aliasRebound rebinds the alias to a fresh slice before writing: the
// write lands in the local copy, not the store. No finding.
func (g *costGraph) aliasRebound(i int, c float64) []float64 {
	cs := g.costs
	cs = make([]float64, len(cs))
	cs[i] = c
	return cs
}
