package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ImmutSnapshot guards the snapshot-swap discipline: a type annotated
//
//	//atis:immutable
//
// is published by pointer to concurrent readers (CH topology and metric,
// the cached reverse view, route-cache entries), so after its build phase
// every byte must stay frozen. The analyzer flags field stores, element
// stores through fields (slice/map backing arrays), and calls to mutating
// methods — interprocedurally, through the static call graph.
//
// The build phase is recognised two ways:
//
//   - A write rooted at a *nascent* value — a local freshly created in the
//     same function with &T{}, T{}, or new(T), or an alias derived from
//     one — is always allowed: nothing else can see the value yet.
//   - Otherwise the enclosing function must be *build-only* for the type:
//     it is a build root (constructor-named in the type's package —
//     New*/Build*/Make*/Customize*/Freeze*/Init*), or every static caller
//     chain leads exclusively to build roots. A helper called from both a
//     constructor and a request path is not build-only, and its writes are
//     flagged — that is the interprocedural case the call graph exists
//     for.
//
// Suppression: `//lint:ignore immutsnapshot <reason>` on the write's line.
type ImmutSnapshot struct{}

// NewImmutSnapshot returns the analyzer.
func NewImmutSnapshot() *ImmutSnapshot { return &ImmutSnapshot{} }

// Name implements Analyzer.
func (*ImmutSnapshot) Name() string { return "immutsnapshot" }

// Doc implements Analyzer.
func (*ImmutSnapshot) Doc() string {
	return "//atis:immutable types must not be mutated outside their build phase"
}

// RunProgram implements ProgramAnalyzer.
func (a *ImmutSnapshot) RunProgram(p *Program) []Diagnostic {
	if len(p.immutable) == 0 {
		return nil
	}
	s := &immutState{p: p, buildMemo: make(map[buildKey]int), mutators: make(map[*types.Func]*types.TypeName)}
	scans := make([]*immutScan, 0, len(p.Funcs()))
	for _, fi := range p.Funcs() {
		scans = append(scans, s.scanFunc(fi))
	}
	s.computeMutators(scans)

	var diags []Diagnostic
	for _, sc := range scans {
		diags = append(diags, s.report(sc)...)
	}
	return diags
}

// immutWrite is one candidate mutation site.
type immutWrite struct {
	pos     token.Pos
	text    string          // rendered target, for the message
	tn      *types.TypeName // the immutable type written
	nascent bool            // rooted at a value created in this function
	viaRecv bool            // rooted at the method receiver
}

// immutScan is one function's scan result.
type immutScan struct {
	fi     *FuncInfo
	writes []immutWrite
	// recv is the receiver object when fi is a method on an annotated
	// type (possibly through a pointer).
	recv     types.Object
	recvType *types.TypeName
}

type buildKey struct {
	fi *FuncInfo
	tn *types.TypeName
}

type immutState struct {
	p *Program
	// buildMemo: 0 unknown, 1 in progress, 2 build-only, 3 not.
	buildMemo map[buildKey]int
	// mutators maps method objects that mutate their receiver to the
	// annotated receiver type.
	mutators map[*types.Func]*types.TypeName
}

// scanFunc collects the function's candidate writes and nascent values.
func (s *immutState) scanFunc(fi *FuncInfo) *immutScan {
	u := fi.Unit
	sc := &immutScan{fi: fi}
	if fi.Decl.Recv != nil && len(fi.Decl.Recv.List) == 1 && len(fi.Decl.Recv.List[0].Names) == 1 {
		sc.recv = u.Info.Defs[fi.Decl.Recv.List[0].Names[0]]
		if sc.recv != nil {
			sc.recvType = s.annotated(sc.recv.Type())
		}
	}

	// nascent marks locals holding values created in this function (or
	// views into them); alias maps locals extracted from an annotated
	// value (fc := m.fwd.costs) back to the owning type.
	nascent := make(map[types.Object]bool)
	alias := make(map[types.Object]*types.TypeName)

	record := func(lhs ast.Expr, pos token.Pos) {
		tn, root := s.ownerOf(u, lhs, alias)
		if tn == nil {
			return
		}
		sc.writes = append(sc.writes, immutWrite{
			pos:     pos,
			text:    types.ExprString(lhs),
			tn:      tn,
			nascent: root != nil && nascent[root],
			viaRecv: root != nil && root == sc.recv,
		})
	}

	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range st.Lhs {
				if _, ok := ast.Unparen(lhs).(*ast.Ident); ok {
					continue // overwriting a local copy, not a shared value
				}
				record(lhs, lhs.Pos())
			}
			// Track nascent locals and aliases, in textual order.
			if len(st.Lhs) == len(st.Rhs) {
				for i, lhs := range st.Lhs {
					id, ok := ast.Unparen(lhs).(*ast.Ident)
					if !ok {
						continue
					}
					obj := objectOf(u.Info, id)
					if obj == nil {
						continue
					}
					rhs := ast.Unparen(st.Rhs[i])
					created := s.annotatedAllocation(u, rhs)
					tn, root := s.ownerOf(u, rhs, alias)
					switch {
					case created != nil:
						nascent[obj] = true
					case tn != nil:
						alias[obj] = tn
						nascent[obj] = root != nil && nascent[root]
					default:
						delete(alias, obj)
						nascent[obj] = false
					}
				}
			}
		case *ast.IncDecStmt:
			if _, ok := ast.Unparen(st.X).(*ast.Ident); !ok {
				record(st.X, st.X.Pos())
			}
		}
		return true
	})
	return sc
}

// annotatedAllocation reports the annotated type instantiated by the
// expression: &T{...}, T{...}, or new(T).
func (s *immutState) annotatedAllocation(u *Unit, e ast.Expr) *types.TypeName {
	switch x := e.(type) {
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			if lit, ok := ast.Unparen(x.X).(*ast.CompositeLit); ok {
				return s.annotated(typeOfExpr(u, lit))
			}
		}
	case *ast.CompositeLit:
		return s.annotated(typeOfExpr(u, x))
	case *ast.CallExpr:
		if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok && len(x.Args) == 1 {
			if b, ok := objectOf(u.Info, id).(*types.Builtin); ok && b.Name() == "new" {
				return s.annotated(typeOfExpr(u, x.Args[0]))
			}
		}
	}
	return nil
}

// ownerOf walks a selector/index/deref chain and returns the annotated
// type it passes through, along with the chain's root object.
func (s *immutState) ownerOf(u *Unit, e ast.Expr, alias map[types.Object]*types.TypeName) (*types.TypeName, types.Object) {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.SelectorExpr:
			if tn := s.annotated(typeOfExpr(u, x.X)); tn != nil {
				return tn, chainRoot(u, x.X)
			}
			e = x.X
		case *ast.IndexExpr:
			if tn := s.annotated(typeOfExpr(u, x.X)); tn != nil {
				return tn, chainRoot(u, x.X)
			}
			e = x.X
		case *ast.StarExpr:
			if tn := s.annotated(typeOfExpr(u, x.X)); tn != nil {
				return tn, chainRoot(u, x.X)
			}
			e = x.X
		case *ast.Ident:
			obj := objectOf(u.Info, x)
			if obj == nil {
				return nil, nil
			}
			if tn := s.annotated(obj.Type()); tn != nil {
				return tn, obj
			}
			if tn := alias[obj]; tn != nil {
				return tn, obj
			}
			return nil, nil
		default:
			return nil, nil
		}
	}
}

// chainRoot resolves the base identifier's object, or nil.
func chainRoot(u *Unit, e ast.Expr) types.Object {
	if id := rootIdent(e); id != nil {
		return objectOf(u.Info, id)
	}
	return nil
}

// annotated returns the //atis:immutable type name behind t (through one
// pointer level), or nil.
func (s *immutState) annotated(t types.Type) *types.TypeName {
	if t == nil {
		return nil
	}
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	if n, ok := t.(*types.Named); ok && s.p.immutable[n.Obj()] {
		return n.Obj()
	}
	return nil
}

// computeMutators runs the fixpoint marking methods that mutate their
// annotated receiver, directly or by calling another mutator on it.
func (s *immutState) computeMutators(scans []*immutScan) {
	for _, sc := range scans {
		if sc.recvType == nil {
			continue
		}
		for _, w := range sc.writes {
			if w.viaRecv {
				s.mutators[sc.fi.Obj] = sc.recvType
				break
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, sc := range scans {
			if sc.recvType == nil || s.mutators[sc.fi.Obj] != nil {
				continue
			}
			for _, site := range sc.fi.Calls {
				if site.Kind != CallStatic || site.Callee == nil || s.mutators[site.Callee] == nil {
					continue
				}
				sel, ok := ast.Unparen(site.Call.Fun).(*ast.SelectorExpr)
				if !ok || chainRoot(sc.fi.Unit, sel.X) != sc.recv {
					continue
				}
				s.mutators[sc.fi.Obj] = sc.recvType
				changed = true
				break
			}
		}
	}
}

// report emits the diagnostics for one function: non-nascent writes and
// mutating-method calls outside the type's build phase.
func (s *immutState) report(sc *immutScan) []Diagnostic {
	u := sc.fi.Unit
	var diags []Diagnostic
	for _, w := range sc.writes {
		if w.nascent || s.buildOnly(sc.fi, w.tn) {
			continue
		}
		diags = append(diags, Diagnostic{
			Pos:      u.Position(w.pos),
			Analyzer: "immutsnapshot",
			Message: "write to " + w.text + " mutates //atis:immutable " + w.tn.Name() +
				" outside its build phase (" + shortFuncName(sc.fi.Obj) + " is not build-only)",
		})
	}
	for _, site := range sc.fi.Calls {
		if site.Kind != CallStatic || site.Callee == nil {
			continue
		}
		tn := s.mutators[site.Callee]
		if tn == nil || site.Callee == sc.fi.Obj || s.buildOnly(sc.fi, tn) {
			continue
		}
		diags = append(diags, Diagnostic{
			Pos:      u.Position(site.Call.Pos()),
			Analyzer: "immutsnapshot",
			Message: "call to mutating method " + shortFuncName(site.Callee) + " of //atis:immutable " +
				tn.Name() + " outside its build phase (" + shortFuncName(sc.fi.Obj) + " is not build-only)",
		})
	}
	return diags
}

// buildOnly reports whether every static path to fi starts at a build root
// for tn. Cycles resolve to false: a recursive helper cannot prove it is
// only ever part of construction.
func (s *immutState) buildOnly(fi *FuncInfo, tn *types.TypeName) bool {
	k := buildKey{fi, tn}
	switch s.buildMemo[k] {
	case 2:
		return true
	case 1, 3:
		return false
	}
	s.buildMemo[k] = 1
	res := false
	if s.isBuildRoot(fi, tn) {
		res = true
	} else if callers := s.p.Callers(fi.Obj); len(callers) > 0 {
		res = true
		for _, caller := range callers {
			if !s.buildOnly(caller, tn) {
				res = false
				break
			}
		}
	}
	if res {
		s.buildMemo[k] = 2
	} else {
		s.buildMemo[k] = 3
	}
	return res
}

// buildPrefixes are the constructor naming conventions that mark a build
// root when the function lives in the annotated type's package.
var buildPrefixes = []string{"New", "new", "Build", "build", "Make", "make", "Customize", "customize", "Freeze", "freeze", "Init", "init"}

// isBuildRoot reports whether fi is constructor-named in the type's
// package. A function that merely *creates* the type is deliberately not a
// root: its writes to the fresh value are already allowed through nascent
// tracking, and blessing the whole function would also bless writes to
// other, already-published values of the type (a rebuild function poking
// the snapshot it is replacing).
func (s *immutState) isBuildRoot(fi *FuncInfo, tn *types.TypeName) bool {
	if fi.Obj.Pkg() != tn.Pkg() {
		return false
	}
	name := fi.Obj.Name()
	for _, prefix := range buildPrefixes {
		if name == prefix || (len(name) > len(prefix) && name[:len(prefix)] == prefix) {
			return true
		}
	}
	return false
}

// typeOfExpr resolves an expression's type from the unit's info. For
// new(T) arguments the expression is a type, so Types carries it too.
func typeOfExpr(u *Unit, e ast.Expr) types.Type {
	if tv, ok := u.Info.Types[e]; ok {
		return tv.Type
	}
	return nil
}
