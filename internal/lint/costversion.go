package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// CostVersion flags writes to a graph's edge-cost storage that do not bump
// the cost version in the same mutator. graph.ReverseView and the route
// cache key their snapshots on CostVersion(); a mutator that changes
// g.costs without g.costVersion.Add(1) silently serves stale reverse
// graphs and stale cached routes — a correctness bug with no crash to
// point at it.
//
// The pattern is structural so the fixture tests and any future
// cost-versioned store are covered alike: a struct that declares both a
// slice field named "costs" and a counter field named "costVersion" is a
// cost-versioned store, and every function that writes (assigns, appends
// to, clears, or copies into) the costs field of such a struct must also
// call costVersion.Add on the same receiver. Construction through
// composite literals (Builder.Build, Clone) does not trip the analyzer —
// a literal initialises, it does not mutate.
type CostVersion struct{}

// NewCostVersion returns the analyzer.
func NewCostVersion() *CostVersion { return &CostVersion{} }

// Name implements Analyzer.
func (*CostVersion) Name() string { return "costversion" }

// Doc implements Analyzer.
func (*CostVersion) Doc() string {
	return "writes to versioned edge-cost storage must bump costVersion in the same mutator"
}

// Run implements Analyzer.
func (a *CostVersion) Run(u *Unit) []Diagnostic {
	costsFields := a.collectCostsFields(u)
	if len(costsFields) == 0 {
		return nil
	}
	var diags []Diagnostic
	for _, f := range u.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			diags = append(diags, a.checkFunc(u, fd, costsFields)...)
		}
	}
	return diags
}

// collectCostsFields finds the costs field of every struct that pairs it
// with a costVersion field.
func (a *CostVersion) collectCostsFields(u *Unit) map[*types.Var]bool {
	out := make(map[*types.Var]bool)
	for _, f := range u.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok || st.Fields == nil {
				return true
			}
			var costs []*types.Var
			hasVersion := false
			for _, field := range st.Fields.List {
				for _, name := range field.Names {
					switch name.Name {
					case "costs":
						v, ok := u.Info.Defs[name].(*types.Var)
						if !ok {
							continue
						}
						if _, isSlice := v.Type().Underlying().(*types.Slice); isSlice {
							costs = append(costs, v)
						}
					case "costVersion":
						hasVersion = true
					}
				}
			}
			if hasVersion {
				for _, v := range costs {
					out[v] = true
				}
			}
			return true
		})
	}
	return out
}

// costWrite is one detected mutation of a costs field.
type costWrite struct {
	sel  *ast.SelectorExpr
	root string // receiver expression ("g")
}

// checkFunc reports costs writes in fd that lack a matching
// costVersion.Add on the same receiver.
func (a *CostVersion) checkFunc(u *Unit, fd *ast.FuncDecl, costsFields map[*types.Var]bool) []Diagnostic {
	var writes []costWrite
	bumped := make(map[string]bool) // receiver expressions with costVersion.Add calls

	// costsSelector resolves e (possibly through indexing/slicing) to a
	// selector of a tracked costs field.
	costsSelector := func(e ast.Expr) *ast.SelectorExpr {
		for {
			switch x := e.(type) {
			case *ast.IndexExpr:
				e = x.X
			case *ast.SliceExpr:
				e = x.X
			case *ast.ParenExpr:
				e = x.X
			case *ast.SelectorExpr:
				sel, ok := u.Info.Selections[x]
				if !ok || sel.Kind() != types.FieldVal {
					return nil
				}
				if v, ok := sel.Obj().(*types.Var); ok && costsFields[v] {
					return x
				}
				return nil
			default:
				return nil
			}
		}
	}
	record := func(e ast.Expr) {
		if sel := costsSelector(e); sel != nil {
			writes = append(writes, costWrite{sel: sel, root: types.ExprString(sel.X)})
		}
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				record(lhs)
			}
		case *ast.IncDecStmt:
			record(x.X)
		case *ast.CallExpr:
			if id, ok := x.Fun.(*ast.Ident); ok {
				switch id.Name {
				case "clear":
					if len(x.Args) == 1 {
						record(x.Args[0])
					}
				case "copy":
					if len(x.Args) == 2 {
						record(x.Args[0])
					}
				}
			}
			// costVersion.Add(...) — note the receiver it bumps.
			if sel, ok := x.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Add" {
				if inner, ok := sel.X.(*ast.SelectorExpr); ok && inner.Sel.Name == "costVersion" {
					bumped[types.ExprString(inner.X)] = true
				}
			}
		}
		return true
	})

	var diags []Diagnostic
	for _, w := range writes {
		if bumped[w.root] {
			continue
		}
		diags = append(diags, Diagnostic{
			Pos:      u.Position(w.sel.Sel.Pos()),
			Analyzer: "costversion",
			Message: fmt.Sprintf("write to %s without a %s.costVersion.Add bump in this mutator; ReverseView and the route cache would serve stale results",
				types.ExprString(w.sel), w.root),
		})
	}
	return diags
}
