package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// CostVersion flags writes to a graph's edge-cost storage that do not bump
// the cost version in the same mutator. graph.ReverseView and the route
// cache key their snapshots on CostVersion(); a mutator that changes
// g.costs without g.costVersion.Add(1) silently serves stale reverse
// graphs and stale cached routes — a correctness bug with no crash to
// point at it.
//
// The pattern is structural so the fixture tests and any future
// cost-versioned store are covered alike: a struct that declares both a
// slice field named "costs" and a counter field named "costVersion" is a
// cost-versioned store, and every function that writes (assigns, appends
// to, clears, or copies into) the costs field of such a struct must also
// bump costVersion on the same receiver — via Add on an atomic counter,
// or ++/assignment on a plain one. Construction through composite
// literals (Builder.Build, Clone) does not trip the analyzer — a literal
// initialises, it does not mutate.
//
// The pairing also reaches one level of nesting, for index-shaped stores
// like ch.Metric where the version stamp lives on the owner while the
// priced arrays sit inside embedded halves: a struct declaring
// costVersion next to a field whose struct type carries a costs slice
// versions that nested slice too, and a write through it must bump the
// owner's counter. Those frozen slices are exactly where a stale write
// would desynchronise the hierarchy from the version gate with no crash
// to point at it.
//
// Tracking follows slice headers through local aliases: after
// cs := m.fwd.costs, a write cs[i] = v mutates the same backing array the
// store serves from, so it is held to the same bump-the-owner rule — the
// customization kernels hoist exactly these aliases for speed. A local
// built fresh (cs := make(...), append, a composite literal) is a new
// slice, not the store's, and stays untracked; rebinding a tracked alias
// to anything untracked clears it.
type CostVersion struct{}

// NewCostVersion returns the analyzer.
func NewCostVersion() *CostVersion { return &CostVersion{} }

// Name implements Analyzer.
func (*CostVersion) Name() string { return "costversion" }

// Doc implements Analyzer.
func (*CostVersion) Doc() string {
	return "writes to versioned edge-cost storage must bump costVersion in the same mutator"
}

// Run implements Analyzer.
func (a *CostVersion) Run(u *Unit) []Diagnostic {
	costsFields := a.collectCostsFields(u)
	if len(costsFields) == 0 {
		return nil
	}
	var diags []Diagnostic
	for _, f := range u.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			diags = append(diags, a.checkFunc(u, fd, costsFields)...)
		}
	}
	return diags
}

// Depth of a tracked costs field relative to its costVersion owner:
// sameStruct pairs both fields in one struct; nested pairs a costVersion
// owner with a costs slice one struct level down (the ch.Index shape),
// where the bump belongs on the outer receiver.
const (
	sameStruct = iota
	nested
)

// collectCostsFields finds the costs field of every struct that pairs it
// with a costVersion field, directly or through one nested struct field,
// mapping each to its pairing depth.
func (a *CostVersion) collectCostsFields(u *Unit) map[*types.Var]int {
	out := make(map[*types.Var]int)
	for _, f := range u.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok || st.Fields == nil {
				return true
			}
			var costs []*types.Var
			var inner []*types.Var // costs slices inside struct-typed fields
			hasVersion := false
			for _, field := range st.Fields.List {
				for _, name := range field.Names {
					switch name.Name {
					case "costs":
						v, ok := u.Info.Defs[name].(*types.Var)
						if !ok {
							continue
						}
						if _, isSlice := v.Type().Underlying().(*types.Slice); isSlice {
							costs = append(costs, v)
						}
					case "costVersion":
						hasVersion = true
					default:
						v, ok := u.Info.Defs[name].(*types.Var)
						if !ok {
							continue
						}
						if cv := nestedCostsField(v.Type()); cv != nil {
							inner = append(inner, cv)
						}
					}
				}
			}
			if hasVersion {
				for _, v := range costs {
					out[v] = sameStruct
				}
				for _, v := range inner {
					if _, seen := out[v]; !seen {
						out[v] = nested
					}
				}
			}
			return true
		})
	}
	return out
}

// nestedCostsField returns the costs slice field of t if t is (a pointer
// to) a struct declaring one without its own costVersion — a half-store
// whose version lives on whoever embeds it. A struct carrying its own
// costVersion is a complete store and is handled by the same-struct rule.
func nestedCostsField(t types.Type) *types.Var {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	var costs *types.Var
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		switch f.Name() {
		case "costVersion":
			return nil
		case "costs":
			if _, isSlice := f.Type().Underlying().(*types.Slice); isSlice {
				costs = f
			}
		}
	}
	return costs
}

// costWrite is one detected mutation of a costs field, directly or
// through a local alias of its slice header.
type costWrite struct {
	pos  token.Pos
	expr string // the written expression, for the message
	root string // expression owning the version counter ("g", "ix")
}

// checkFunc reports costs writes in fd that lack a matching costVersion
// bump on the same receiver.
func (a *CostVersion) checkFunc(u *Unit, fd *ast.FuncDecl, costsFields map[*types.Var]int) []Diagnostic {
	var writes []costWrite
	bumped := make(map[string]bool)    // receiver expressions with costVersion bumps
	aliases := make(map[string]string) // local name → owner whose costVersion it must bump

	// costsSelector resolves e (possibly through indexing/slicing) to a
	// selector of a tracked costs field, plus its pairing depth.
	costsSelector := func(e ast.Expr) (*ast.SelectorExpr, int) {
		for {
			switch x := e.(type) {
			case *ast.IndexExpr:
				e = x.X
			case *ast.SliceExpr:
				e = x.X
			case *ast.ParenExpr:
				e = x.X
			case *ast.SelectorExpr:
				sel, ok := u.Info.Selections[x]
				if !ok || sel.Kind() != types.FieldVal {
					return nil, 0
				}
				if v, ok := sel.Obj().(*types.Var); ok {
					if depth, tracked := costsFields[v]; tracked {
						return x, depth
					}
				}
				return nil, 0
			default:
				return nil, 0
			}
		}
	}
	// ownerOf names the expression whose costVersion a write through sel
	// must bump. For a nested half (ix.fwd.costs) the counter sits one
	// level up, on the owner (ix.costVersion) — peel one selector off the
	// path to name it.
	ownerOf := func(sel *ast.SelectorExpr, depth int) string {
		owner := ast.Expr(sel.X)
		if depth == nested {
			if outer, ok := ast.Unparen(owner).(*ast.SelectorExpr); ok {
				owner = outer.X
			}
		}
		return types.ExprString(owner)
	}
	// baseIdent peels indexing/slicing/parens off e down to a plain
	// identifier, if that is what anchors it.
	baseIdent := func(e ast.Expr) *ast.Ident {
		for {
			switch x := e.(type) {
			case *ast.IndexExpr:
				e = x.X
			case *ast.SliceExpr:
				e = x.X
			case *ast.ParenExpr:
				e = x.X
			case *ast.Ident:
				return x
			default:
				return nil
			}
		}
	}
	// record flags e as a store mutation when it resolves to a tracked
	// costs field or to a local alias of one. A *bare* aliased identifier
	// only mutates at clear/copy call sites (bareAliasMutates); as an
	// assignment target it merely rebinds the local.
	record := func(e ast.Expr, bareAliasMutates bool) {
		if sel, depth := costsSelector(e); sel != nil {
			writes = append(writes, costWrite{
				pos: sel.Sel.Pos(), expr: types.ExprString(sel), root: ownerOf(sel, depth),
			})
			return
		}
		id := baseIdent(e)
		if id == nil {
			return
		}
		if _, bare := ast.Unparen(e).(*ast.Ident); bare && !bareAliasMutates {
			return
		}
		if root, ok := aliases[id.Name]; ok {
			writes = append(writes, costWrite{pos: id.Pos(), expr: types.ExprString(e), root: root})
		}
	}

	// noteBump records e as a version bump when it is a selector of a
	// costVersion field — the target of an assignment, ++, or the receiver
	// of an atomic Add below.
	noteBump := func(e ast.Expr) {
		if sel, ok := ast.Unparen(e).(*ast.SelectorExpr); ok && sel.Sel.Name == "costVersion" {
			bumped[types.ExprString(sel.X)] = true
		}
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			// Alias tracking: a local assigned from a tracked costs field
			// (or from another tracked alias) inherits the tracking and the
			// owner to bump; one assigned anything else sheds it. Inspect
			// visits statements in source order, so later writes see the
			// binding in force where they occur.
			if len(x.Lhs) == len(x.Rhs) {
				for i, rhs := range x.Rhs {
					id, ok := x.Lhs[i].(*ast.Ident)
					if !ok || id.Name == "_" {
						continue
					}
					if sel, depth := costsSelector(rhs); sel != nil {
						aliases[id.Name] = ownerOf(sel, depth)
						continue
					}
					if rid, ok := ast.Unparen(rhs).(*ast.Ident); ok {
						if root, tracked := aliases[rid.Name]; tracked {
							aliases[id.Name] = root
							continue
						}
					}
					delete(aliases, id.Name)
				}
			}
			for _, lhs := range x.Lhs {
				record(lhs, false)
				noteBump(lhs) // plain-counter stores: ix.costVersion = v
			}
		case *ast.IncDecStmt:
			record(x.X, false)
			noteBump(x.X) // plain-counter stores: ix.costVersion++
		case *ast.CallExpr:
			if id, ok := x.Fun.(*ast.Ident); ok {
				switch id.Name {
				case "clear":
					if len(x.Args) == 1 {
						record(x.Args[0], true)
					}
				case "copy":
					if len(x.Args) == 2 {
						record(x.Args[0], true)
					}
				}
			}
			// costVersion.Add(...) — note the receiver it bumps.
			if sel, ok := x.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Add" {
				if inner, ok := sel.X.(*ast.SelectorExpr); ok && inner.Sel.Name == "costVersion" {
					bumped[types.ExprString(inner.X)] = true
				}
			}
		}
		return true
	})

	var diags []Diagnostic
	for _, w := range writes {
		if bumped[w.root] {
			continue
		}
		diags = append(diags, Diagnostic{
			Pos:      u.Position(w.pos),
			Analyzer: "costversion",
			Message: fmt.Sprintf("write to %s without a %s.costVersion bump in this mutator; version-gated consumers (ReverseView, the route cache, the CH index) would serve stale results",
				w.expr, w.root),
		})
	}
	return diags
}
