package lint

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files from current analyzer output")

// runFixture loads the fixture module under testdata/<name>/src and runs
// the single analyzer over it, returning the rendered findings with
// file paths reduced to basenames.
func runFixture(t *testing.T, name string, a Analyzer) []string {
	t.Helper()
	loader, err := NewLoader(filepath.Join("testdata", name, "src"))
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	units, err := loader.LoadAll()
	if err != nil {
		t.Fatalf("type-checking fixture: %v", err)
	}
	if len(units) == 0 {
		t.Fatal("fixture loaded zero packages")
	}
	var lines []string
	for _, d := range Run(units, []Analyzer{a}) {
		lines = append(lines, fmt.Sprintf("%s:%d:%d: %s: %s",
			filepath.Base(d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message))
	}
	return lines
}

// TestAnalyzerGolden compares each analyzer's findings on its fixture —
// which reproduces the analyzer's motivating bug class, including the
// PR 2 exporter race for lockscope — against the checked-in golden file.
// Run with -update to regenerate the goldens after changing an analyzer.
func TestAnalyzerGolden(t *testing.T) {
	for _, a := range Analyzers() {
		a := a
		t.Run(a.Name(), func(t *testing.T) {
			got := strings.Join(runFixture(t, a.Name(), a), "\n") + "\n"
			goldenPath := filepath.Join("testdata", a.Name()+".golden")
			if *update {
				if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
					t.Fatalf("writing golden: %v", err)
				}
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("reading golden (run `go test ./internal/lint -update` to create): %v", err)
			}
			if got != string(want) {
				t.Errorf("findings diverge from %s\n--- got ---\n%s--- want ---\n%s", goldenPath, got, want)
			}
		})
	}
}

// TestAnalyzersFire guards against an analyzer silently matching nothing:
// every fixture must produce at least one finding, and every fixture
// carries at least one suppressed violation proving the //lint:ignore
// escape hatch filters findings (the goldens must not contain the word
// "blessed", the marker naming suppressed functions).
func TestAnalyzersFire(t *testing.T) {
	for _, a := range Analyzers() {
		lines := runFixture(t, a.Name(), a)
		if len(lines) == 0 {
			t.Errorf("%s: fixture produced no findings; the analyzer is inert", a.Name())
		}
		src, err := os.ReadFile(filepath.Join("testdata", a.Name(), "src", "fixture.go"))
		if err != nil {
			t.Fatalf("reading fixture: %v", err)
		}
		if !strings.Contains(string(src), "//lint:ignore "+a.Name()+" ") {
			t.Errorf("%s: fixture has no //lint:ignore directive to exercise suppression", a.Name())
		}
	}
}

// TestRepoClean runs the full suite over this repository: the tree must
// stay lint-clean (the same gate as `make lint`). Skipped with -short —
// type-checking the module plus its stdlib imports takes a few seconds.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module type check; skipped in -short mode")
	}
	loader, err := NewLoader(filepath.Join("..", ".."))
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	units, err := loader.LoadAll()
	if err != nil {
		t.Fatalf("type-checking module: %v", err)
	}
	if len(units) < 20 {
		t.Fatalf("loaded only %d packages; the loader is missing most of the module", len(units))
	}
	for _, d := range Run(units, Analyzers()) {
		t.Errorf("%s", d)
	}
}

// TestIgnoreRequiresReason verifies a reason-less directive is inert.
func TestIgnoreRequiresReason(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), "module fixture\n\ngo 1.22\n")
	writeFile(t, filepath.Join(dir, "fixture.go"), `package fixture

import "sync"

type s struct {
	mu sync.Mutex
	m  map[int]int
}

func (x *s) bad() int {
	//lint:ignore lockscope
	return len(x.m)
}
`)
	loader, err := NewLoader(dir)
	if err != nil {
		t.Fatal(err)
	}
	units, err := loader.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(units, []Analyzer{NewLockScope()})
	if len(diags) != 1 {
		t.Fatalf("want 1 finding despite the reason-less ignore, got %d: %v", len(diags), diags)
	}
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}
