package lint

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files from current analyzer output")

// runFixture loads the fixture module under testdata/<name>/src and runs
// the single analyzer over it, returning the rendered findings with
// file paths reduced to basenames.
func runFixture(t *testing.T, name string, a Analyzer) []string {
	t.Helper()
	loader, err := NewLoader(filepath.Join("testdata", name, "src"))
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	units, err := loader.LoadAll()
	if err != nil {
		t.Fatalf("type-checking fixture: %v", err)
	}
	if len(units) == 0 {
		t.Fatal("fixture loaded zero packages")
	}
	var lines []string
	for _, d := range Run(units, []Analyzer{a}) {
		lines = append(lines, fmt.Sprintf("%s:%d:%d: %s: %s",
			filepath.Base(d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message))
	}
	return lines
}

// TestAnalyzerGolden compares each analyzer's findings on its fixture —
// which reproduces the analyzer's motivating bug class, including the
// PR 2 exporter race for lockscope — against the checked-in golden file.
// Run with -update to regenerate the goldens after changing an analyzer.
func TestAnalyzerGolden(t *testing.T) {
	for _, a := range Analyzers() {
		a := a
		t.Run(a.Name(), func(t *testing.T) {
			got := strings.Join(runFixture(t, a.Name(), a), "\n") + "\n"
			goldenPath := filepath.Join("testdata", a.Name()+".golden")
			if *update {
				if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
					t.Fatalf("writing golden: %v", err)
				}
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("reading golden (run `go test ./internal/lint -update` to create): %v", err)
			}
			if got != string(want) {
				t.Errorf("findings diverge from %s\n--- got ---\n%s--- want ---\n%s", goldenPath, got, want)
			}
		})
	}
}

// TestAnalyzersFire guards against an analyzer silently matching nothing:
// every fixture must produce at least one finding, and every fixture
// carries at least one suppressed violation proving the //lint:ignore
// escape hatch filters findings (the goldens must not contain the word
// "blessed", the marker naming suppressed functions).
func TestAnalyzersFire(t *testing.T) {
	for _, a := range Analyzers() {
		lines := runFixture(t, a.Name(), a)
		if len(lines) == 0 {
			t.Errorf("%s: fixture produced no findings; the analyzer is inert", a.Name())
		}
		src, err := os.ReadFile(filepath.Join("testdata", a.Name(), "src", "fixture.go"))
		if err != nil {
			t.Fatalf("reading fixture: %v", err)
		}
		if !strings.Contains(string(src), "//lint:ignore "+a.Name()+" ") {
			t.Errorf("%s: fixture has no //lint:ignore directive to exercise suppression", a.Name())
		}
	}
}

// TestRepoClean runs the full suite over this repository: the tree must
// stay lint-clean (the same gate as `make lint`). Each of the eight
// analyzers runs as its own subtest so a regression names the invariant
// it broke, not just "lint failed". Skipped with -short — type-checking
// the module plus its stdlib imports takes a few seconds.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module type check; skipped in -short mode")
	}
	loader, err := NewLoader(filepath.Join("..", ".."))
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	units, err := loader.LoadAll()
	if err != nil {
		t.Fatalf("type-checking module: %v", err)
	}
	if len(units) < 20 {
		t.Fatalf("loaded only %d packages; the loader is missing most of the module", len(units))
	}
	analyzers := Analyzers()
	if len(analyzers) != 8 {
		t.Fatalf("Analyzers() returned %d analyzers, want 8; update this test with the new invariant", len(analyzers))
	}
	for _, a := range analyzers {
		a := a
		t.Run(a.Name(), func(t *testing.T) {
			for _, d := range Run(units, []Analyzer{a}) {
				t.Errorf("%s", d)
			}
		})
	}
}

// TestIgnoreRequiresReason verifies a reason-less directive is inert.
func TestIgnoreRequiresReason(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), "module fixture\n\ngo 1.22\n")
	writeFile(t, filepath.Join(dir, "fixture.go"), `package fixture

import "sync"

type s struct {
	mu sync.Mutex
	m  map[int]int
}

func (x *s) bad() int {
	//lint:ignore lockscope
	return len(x.m)
}
`)
	loader, err := NewLoader(dir)
	if err != nil {
		t.Fatal(err)
	}
	units, err := loader.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(units, []Analyzer{NewLockScope()})
	if len(diags) != 1 {
		t.Fatalf("want 1 finding despite the reason-less ignore, got %d: %v", len(diags), diags)
	}
}

// TestIgnoreMultipleAnalyzers verifies the comma-separated directive
// form: one //lint:ignore line naming two analyzers suppresses both
// analyzers' findings on the next line.
func TestIgnoreMultipleAnalyzers(t *testing.T) {
	const body = `package fixture

import "sync"

type s struct {
	mu sync.Mutex
	m  map[int]int
}

//atis:hotpath
func (x *s) seed() {
	%sx.m[0] = len(x.m)
}
`
	load := func(t *testing.T, directive string) []Diagnostic {
		dir := t.TempDir()
		writeFile(t, filepath.Join(dir, "go.mod"), "module fixture\n\ngo 1.22\n")
		writeFile(t, filepath.Join(dir, "fixture.go"), fmt.Sprintf(body, directive))
		loader, err := NewLoader(dir)
		if err != nil {
			t.Fatal(err)
		}
		units, err := loader.LoadAll()
		if err != nil {
			t.Fatal(err)
		}
		return Run(units, []Analyzer{NewLockScope(), NewHotPath()})
	}

	// Without the directive both analyzers fire on the same line.
	bare := load(t, "")
	var analyzers []string
	for _, d := range bare {
		analyzers = append(analyzers, d.Analyzer)
	}
	if len(bare) < 2 || !strings.Contains(strings.Join(analyzers, " "), "lockscope") ||
		!strings.Contains(strings.Join(analyzers, " "), "hotpath") {
		t.Fatalf("baseline fixture must trip both analyzers, got %v", bare)
	}

	// One comma-list directive silences both.
	suppressed := load(t, "//lint:ignore lockscope,hotpath startup-time seeding, single-threaded and cold\n\t")
	if len(suppressed) != 0 {
		t.Errorf("comma-list ignore left %d finding(s): %v", len(suppressed), suppressed)
	}

	// Naming only one analyzer leaves the other's finding standing.
	partial := load(t, "//lint:ignore lockscope startup-time seeding, single-threaded\n\t")
	if len(partial) == 0 {
		t.Error("single-name ignore must not suppress the other analyzer's finding")
	}
	for _, d := range partial {
		if d.Analyzer == "lockscope" {
			t.Errorf("lockscope finding survived its own ignore: %v", d)
		}
	}
}

// TestIgnoreUnknownAnalyzerWarns verifies a typo'd analyzer name in a
// directive produces a warning diagnostic instead of silently suppressing
// nothing.
func TestIgnoreUnknownAnalyzerWarns(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), "module fixture\n\ngo 1.22\n")
	writeFile(t, filepath.Join(dir, "fixture.go"), `package fixture

import "sync"

type s struct {
	mu sync.Mutex
	m  map[int]int
}

func (x *s) bad() int {
	//lint:ignore lockscpoe typo: the analyzer is called lockscope
	return len(x.m)
}
`)
	loader, err := NewLoader(dir)
	if err != nil {
		t.Fatal(err)
	}
	units, err := loader.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(units, []Analyzer{NewLockScope()})
	var lockscope, warnings int
	for _, d := range diags {
		switch d.Analyzer {
		case "lockscope":
			lockscope++
		case "ignore":
			warnings++
			if !strings.Contains(d.Message, `unknown analyzer "lockscpoe"`) {
				t.Errorf("warning does not name the bad analyzer: %s", d.Message)
			}
		}
	}
	if lockscope != 1 {
		t.Errorf("typo'd directive must not suppress the finding; lockscope findings = %d", lockscope)
	}
	if warnings != 1 {
		t.Errorf("want exactly one unknown-analyzer warning, got %d: %v", warnings, diags)
	}
}

// BenchmarkLintModule times the full eight-analyzer run over the loaded
// module (type-checking excluded), the `make bench-lint` figure that keeps
// the interprocedural pass honest as the call graph grows.
func BenchmarkLintModule(b *testing.B) {
	loader, err := NewLoader(filepath.Join("..", ".."))
	if err != nil {
		b.Fatalf("loading module: %v", err)
	}
	units, err := loader.LoadAll()
	if err != nil {
		b.Fatalf("type-checking module: %v", err)
	}
	analyzers := Analyzers()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if diags := Run(units, analyzers); len(diags) != 0 {
			b.Fatalf("module not lint-clean: %v", diags)
		}
	}
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}
