package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// loadProgram loads the named fixture module and builds its Program.
func loadProgram(t *testing.T, name string) *Program {
	t.Helper()
	loader, err := NewLoader(filepath.Join("testdata", name, "src"))
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	units, err := loader.LoadAll()
	if err != nil {
		t.Fatalf("type-checking fixture: %v", err)
	}
	return NewProgram(units)
}

// TestCallGraphGolden pins the call-graph resolution rules: direct calls
// and concrete-receiver method calls become static edges (including across
// packages), interface and func-value calls are recorded without edges,
// and builtins/conversions do not appear at all.
func TestCallGraphGolden(t *testing.T) {
	p := loadProgram(t, "callgraph")
	var lines []string
	for _, fi := range p.Funcs() {
		for _, site := range fi.Calls {
			callee := "(func value)"
			if site.Callee != nil {
				callee = shortFuncName(site.Callee)
			}
			lines = append(lines, fmt.Sprintf("%s -> %s [%s]", shortFuncName(fi.Obj), callee, site.Kind))
		}
	}
	sort.Strings(lines)
	got := strings.Join(lines, "\n") + "\n"

	goldenPath := filepath.Join("testdata", "callgraph.golden")
	if *update {
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatalf("writing golden: %v", err)
		}
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading golden (run `go test ./internal/lint -update` to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("call graph diverges from %s\n--- got ---\n%s--- want ---\n%s", goldenPath, got, want)
	}
}

// TestCallGraphCallers checks the reverse index the interprocedural
// analyzers walk upward.
func TestCallGraphCallers(t *testing.T) {
	p := loadProgram(t, "callgraph")
	callersOf := func(short string) []string {
		t.Helper()
		for _, fi := range p.Funcs() {
			if shortFuncName(fi.Obj) != short {
				continue
			}
			var names []string
			for _, c := range p.Callers(fi.Obj) {
				names = append(names, shortFuncName(c.Obj))
			}
			sort.Strings(names)
			return names
		}
		t.Fatalf("function %s not indexed", short)
		return nil
	}
	if got := callersOf("fixture.helperFn"); !equalStrings(got, []string{"fixture.Direct"}) {
		t.Errorf("callers of helperFn = %v, want [fixture.Direct]", got)
	}
	if got := callersOf("leaf.Incr"); !equalStrings(got, []string{"fixture.Worker.Step"}) {
		t.Errorf("callers of leaf.Incr = %v, want [fixture.Worker.Step]", got)
	}
	// The interface call must NOT register Dynamic as a caller of Step.
	if got := callersOf("fixture.Worker.Step"); !equalStrings(got, []string{"fixture.Method"}) {
		t.Errorf("callers of Worker.Step = %v, want [fixture.Method] only (interface call adds no edge)", got)
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
