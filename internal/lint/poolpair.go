package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// PoolPair flags acquisitions from a workspace pool that are not matched
// by a deferred release in the same function. The search kernels recycle
// epoch-stamped workspaces through a sync.Pool; a Get without a Put leaks
// the workspace on every early return and error path, and after warm-up
// the pool degenerates to per-query allocation — the exact storage-
// management cost the pooling exists to remove (the paper's conclusion:
// storage management, not search, dominates single-pair cost).
//
// Two acquisition shapes are tracked:
//
//   - project pairs by name: acquireWorkspace(...) must be matched by
//     defer releaseWorkspace(ws);
//   - generic sync.Pool: p.Get() must be matched by defer p.Put(v).
//
// The release must be deferred — a plain trailing release leaks on every
// early return and panic — and must name the acquired variable. A function
// that returns the acquired value transfers ownership to its caller and is
// exempt (acquireWorkspace itself does this with workspacePool.Get).
type PoolPair struct {
	// pairs maps acquire-function names to their release counterparts.
	pairs map[string]string
}

// NewPoolPair returns the analyzer with the project's pair table.
func NewPoolPair() *PoolPair {
	return &PoolPair{pairs: map[string]string{
		"acquireWorkspace": "releaseWorkspace",
	}}
}

// Name implements Analyzer.
func (*PoolPair) Name() string { return "poolpair" }

// Doc implements Analyzer.
func (*PoolPair) Doc() string {
	return "pool Get / workspace acquire must be matched by a deferred Put / release on every return path"
}

// acquisition is one tracked Get.
type acquisition struct {
	call    *ast.CallExpr
	varObj  types.Object // variable the result is bound to (nil if unbound)
	release string       // expected release description for the message
	// matched is satisfied by a defer of the paired release naming varObj.
	matched bool
	// returned marks ownership transfer to the caller.
	returned bool
}

// Run implements Analyzer.
func (a *PoolPair) Run(u *Unit) []Diagnostic {
	var diags []Diagnostic
	for _, f := range u.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			diags = append(diags, a.checkFunc(u, fd)...)
		}
	}
	return diags
}

// acquireCall classifies call as an acquisition, returning the expected
// release function name ("releaseWorkspace" or "Put on <pool>").
func (a *PoolPair) acquireCall(u *Unit, call *ast.CallExpr) (release string, generic bool, poolExpr string, ok bool) {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if rel, isPair := a.pairs[fun.Name]; isPair {
			return rel, false, "", true
		}
	case *ast.SelectorExpr:
		if fun.Sel.Name == "Get" && len(call.Args) == 0 {
			if t := u.Info.TypeOf(fun.X); t != nil && isSyncPool(t) {
				return "Put", true, types.ExprString(fun.X), true
			}
		}
	}
	return "", false, "", false
}

// checkFunc scans one function for unpaired acquisitions.
func (a *PoolPair) checkFunc(u *Unit, fd *ast.FuncDecl) []Diagnostic {
	var acqs []*acquisition
	byVar := make(map[types.Object][]*acquisition)
	var diags []Diagnostic

	// unwrapAssert strips a type assertion: ws := pool.Get().(*Workspace).
	unwrapAssert := func(e ast.Expr) ast.Expr {
		if ta, ok := e.(*ast.TypeAssertExpr); ok {
			return ta.X
		}
		return e
	}

	// Pass 1: find acquisitions and where their results are bound.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		st, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		if len(st.Lhs) != len(st.Rhs) {
			return true
		}
		for i, rhs := range st.Rhs {
			call, isCall := unwrapAssert(rhs).(*ast.CallExpr)
			if !isCall {
				continue
			}
			release, generic, poolExpr, isAcq := a.acquireCall(u, call)
			if !isAcq {
				continue
			}
			if generic {
				release = fmt.Sprintf("%s.Put", poolExpr)
			}
			acq := &acquisition{call: call, release: release}
			if id, isIdent := st.Lhs[i].(*ast.Ident); isIdent && id.Name != "_" {
				if obj := objectOf(u.Info, id); obj != nil {
					acq.varObj = obj
					byVar[obj] = append(byVar[obj], acq)
				}
			}
			acqs = append(acqs, acq)
		}
		return true
	})

	// Unbound acquisitions (expression statements, discarded results).
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		release, generic, poolExpr, isAcq := a.acquireCall(u, call)
		if !isAcq {
			return true
		}
		if generic {
			release = fmt.Sprintf("%s.Put", poolExpr)
		}
		for _, acq := range acqs {
			if acq.call == call {
				return true // already bound
			}
		}
		diags = append(diags, Diagnostic{
			Pos:      u.Position(call.Pos()),
			Analyzer: "poolpair",
			Message:  fmt.Sprintf("acquired value is not bound to a variable, so it can never be released with %s", release),
		})
		return true
	})

	// Pass 2: find deferred releases and returns of acquired variables.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.DeferStmt:
			a.markDeferred(u, st.Call, byVar)
		case *ast.ReturnStmt:
			for _, res := range st.Results {
				if id, ok := res.(*ast.Ident); ok {
					if obj := objectOf(u.Info, id); obj != nil {
						for _, acq := range byVar[obj] {
							acq.returned = true
						}
					}
				}
			}
		}
		return true
	})

	for _, acq := range acqs {
		if acq.varObj == nil || acq.matched || acq.returned {
			continue
		}
		diags = append(diags, Diagnostic{
			Pos:      u.Position(acq.call.Pos()),
			Analyzer: "poolpair",
			Message: fmt.Sprintf("acquisition is not matched by `defer %s(%s)`; early returns and panics leak the pooled value",
				acq.release, acq.varObj.Name()),
		})
	}
	return diags
}

// markDeferred satisfies acquisitions whose variable is released by this
// deferred call — directly (defer release(v)) or inside a deferred closure.
func (a *PoolPair) markDeferred(u *Unit, call *ast.CallExpr, byVar map[types.Object][]*acquisition) {
	mark := func(c *ast.CallExpr) {
		isRelease := false
		switch fun := c.Fun.(type) {
		case *ast.Ident:
			for _, rel := range a.pairs {
				if fun.Name == rel {
					isRelease = true
				}
			}
		case *ast.SelectorExpr:
			if fun.Sel.Name == "Put" {
				if t := u.Info.TypeOf(fun.X); t != nil && isSyncPool(t) {
					isRelease = true
				}
			}
		}
		if !isRelease {
			return
		}
		for _, arg := range c.Args {
			if id, ok := arg.(*ast.Ident); ok {
				if obj := objectOf(u.Info, id); obj != nil {
					for _, acq := range byVar[obj] {
						acq.matched = true
					}
				}
			}
		}
	}
	mark(call)
	if lit, ok := call.Fun.(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if c, ok := n.(*ast.CallExpr); ok {
				mark(c)
			}
			return true
		})
	}
}
