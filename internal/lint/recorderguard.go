package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// RecorderGuard enforces the telemetry fast path in the search kernels:
// the package recorder is advertised as zero-cost when disabled — one
// atomic load and a nil check per query — and that contract holds only if
// every call site consumes activeRecorder() through the guard idiom
//
//	if rec := activeRecorder(); rec != nil { … }
//
// (or binds it and nil-checks in the immediately following statement).
// A bare activeRecorder().ObserveSearch(...) both panics when telemetry is
// disabled and, once "fixed" with scattered ad-hoc checks, invites
// timestamp-taking and allocation outside the guard — the regression the
// bench-telemetry gate (<2% overhead) exists to catch after the fact.
// This analyzer catches it before.
//
// The provider set is structural: any package-level function named
// activeRecorder whose single result is an interface type. Callers that
// receive an already-checked recorder as a parameter (observeRun) are not
// flagged — the guard obligation sits where the nilable value enters.
type RecorderGuard struct {
	// providers are function names whose results require the guard.
	providers map[string]bool
}

// NewRecorderGuard returns the analyzer with the project's provider set.
func NewRecorderGuard() *RecorderGuard {
	return &RecorderGuard{providers: map[string]bool{"activeRecorder": true}}
}

// Name implements Analyzer.
func (*RecorderGuard) Name() string { return "recorderguard" }

// Doc implements Analyzer.
func (*RecorderGuard) Doc() string {
	return "activeRecorder() must be consumed through the `if rec := activeRecorder(); rec != nil` fast-path guard"
}

// Run implements Analyzer.
func (a *RecorderGuard) Run(u *Unit) []Diagnostic {
	providerObjs := make(map[types.Object]bool)
	for _, f := range u.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv != nil || !a.providers[fd.Name.Name] {
				continue
			}
			obj := u.Info.Defs[fd.Name]
			if obj == nil {
				continue
			}
			sig, ok := obj.Type().(*types.Signature)
			if !ok || sig.Results().Len() != 1 {
				continue
			}
			if _, isIface := sig.Results().At(0).Type().Underlying().(*types.Interface); isIface {
				providerObjs[obj] = true
			}
		}
	}
	if len(providerObjs) == 0 {
		return nil
	}

	var diags []Diagnostic
	for _, f := range u.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if a.providers[fd.Name.Name] && fd.Recv == nil {
				continue // the provider's own body
			}
			diags = append(diags, a.checkFunc(u, fd, providerObjs)...)
		}
	}
	return diags
}

// checkFunc walks fd with parent tracking and validates each provider
// call site.
func (a *RecorderGuard) checkFunc(u *Unit, fd *ast.FuncDecl, providers map[types.Object]bool) []Diagnostic {
	var diags []Diagnostic
	var stack []ast.Node
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		id, ok := call.Fun.(*ast.Ident)
		if !ok {
			return true
		}
		obj := objectOf(u.Info, id)
		if obj == nil || !providers[obj] {
			return true
		}
		if !a.guarded(u, call, stack) {
			diags = append(diags, Diagnostic{
				Pos:      u.Position(call.Pos()),
				Analyzer: "recorderguard",
				Message: fmt.Sprintf("result of %s() may be nil and must flow through the fast-path guard `if rec := %s(); rec != nil { … }`",
					id.Name, id.Name),
			})
		}
		return true
	})
	return diags
}

// guarded reports whether the provider call sits in an accepted idiom:
//
//	if v := provider(); v != nil { … }          (if-init guard)
//	v := provider(); if v != nil { … }          (adjacent-statement guard)
func (a *RecorderGuard) guarded(u *Unit, call *ast.CallExpr, stack []ast.Node) bool {
	// The call must be the sole RHS of a define binding one variable.
	if len(stack) < 2 {
		return false
	}
	asg, ok := stack[len(stack)-2].(*ast.AssignStmt)
	if !ok || asg.Tok != token.DEFINE || len(asg.Lhs) != 1 || len(asg.Rhs) != 1 || asg.Rhs[0] != ast.Expr(call) {
		return false
	}
	id, ok := asg.Lhs[0].(*ast.Ident)
	if !ok || id.Name == "_" {
		return false
	}
	obj := u.Info.Defs[id]
	if obj == nil {
		return false
	}

	if len(stack) < 3 {
		return false
	}
	switch parent := stack[len(stack)-3].(type) {
	case *ast.IfStmt:
		// if v := provider(); v != nil { … }
		return parent.Init == ast.Stmt(asg) && isNilCheck(u, parent.Cond, obj)
	case *ast.BlockStmt:
		// v := provider()
		// if v != nil { … }
		for i, st := range parent.List {
			if st != ast.Stmt(asg) {
				continue
			}
			if i+1 < len(parent.List) {
				if next, ok := parent.List[i+1].(*ast.IfStmt); ok && next.Init == nil && isNilCheck(u, next.Cond, obj) {
					return true
				}
			}
			return false
		}
	}
	return false
}

// isNilCheck reports whether cond contains `v != nil` for the given
// object (possibly conjoined with other conditions).
func isNilCheck(u *Unit, cond ast.Expr, v types.Object) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || be.Op != token.NEQ {
			return true
		}
		isV := func(e ast.Expr) bool {
			id, ok := e.(*ast.Ident)
			return ok && objectOf(u.Info, id) == v
		}
		isNil := func(e ast.Expr) bool {
			id, ok := e.(*ast.Ident)
			return ok && id.Name == "nil"
		}
		if (isV(be.X) && isNil(be.Y)) || (isV(be.Y) && isNil(be.X)) {
			found = true
			return false
		}
		return true
	})
	return found
}
