package lint

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// hotpathGates maps every //atis:hotpath function in the module to the
// AllocsPerRun == 0 gate test that pins its guarantee at runtime. The
// static analyzer proves allocation-freedom over the call graph; the gate
// test proves the annotations match what the toolchain actually emits.
// Annotating a new function without registering its gate here fails this
// test.
var hotpathGates = map[string]struct {
	dir  string // package directory relative to this one
	test string // Test function asserting AllocsPerRun == 0
}{
	"search.IterativeCtx":            {"../search", "TestHotpathKernelsZeroAlloc"},
	"search.BestFirstCtx":            {"../search", "TestHotpathKernelsZeroAlloc"},
	"search.BidirectionalCtx":        {"../search", "TestHotpathKernelsZeroAlloc"},
	"ch.Index.QueryCtx":              {"../ch", "TestQueryCtxUnreachableZeroAlloc"},
	"pqueue.Indexed.PushTie":         {"../pqueue", "TestIndexedHotOpsZeroAlloc"},
	"pqueue.Indexed.UpdateTie":       {"../pqueue", "TestIndexedHotOpsZeroAlloc"},
	"pqueue.Indexed.PushOrUpdateTie": {"../pqueue", "TestIndexedHotOpsZeroAlloc"},
	"pqueue.Indexed.Peek":            {"../pqueue", "TestIndexedHotOpsZeroAlloc"},
	"pqueue.Indexed.PopMin":          {"../pqueue", "TestIndexedHotOpsZeroAlloc"},
	"pqueue.Indexed.Reset":           {"../pqueue", "TestIndexedHotOpsZeroAlloc"},
	"admission.Gate.admitOrPark":     {"../admission", "TestGateFastPathsZeroAlloc"},
	"admission.Gate.release":         {"../admission", "TestGateFastPathsZeroAlloc"},
	"tracing.Start":                  {"../tracing", "TestDisabledZeroAlloc"},
	"tracing.FromContext":            {"../tracing", "TestDisabledZeroAlloc"},
	"tracing.Span.End":               {"../tracing", "TestDisabledZeroAlloc"},
	"tracing.Span.SetStr":            {"../tracing", "TestDisabledZeroAlloc"},
	"tracing.Span.SetInt":            {"../tracing", "TestDisabledZeroAlloc"},
	"tracing.Span.SetFloat":          {"../tracing", "TestDisabledZeroAlloc"},
	"tracing.Span.SetBool":           {"../tracing", "TestDisabledZeroAlloc"},
	"route.Service.Snapshot":         {"../route", "TestSnapshotReadPathZeroAlloc"},
	"route.Service.CostGeneration":   {"../route", "TestSnapshotReadPathZeroAlloc"},
	"route.Snapshot.Graph":           {"../route", "TestSnapshotReadPathZeroAlloc"},
	"route.Snapshot.CH":              {"../route", "TestSnapshotReadPathZeroAlloc"},
	"route.Snapshot.CostGeneration":  {"../route", "TestSnapshotReadPathZeroAlloc"},
	"route.Snapshot.Generation":      {"../route", "TestSnapshotReadPathZeroAlloc"},
	"route.Snapshot.CostVersion":     {"../route", "TestSnapshotReadPathZeroAlloc"},
}

// TestHotpathGateRegistry walks the module's //atis:hotpath annotations
// and checks each one against hotpathGates, then verifies the named gate
// tests actually exist in their packages' test files.
func TestHotpathGateRegistry(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module")
	}
	loader, err := NewLoader(filepath.Join("..", ".."))
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	units, err := loader.LoadAll()
	if err != nil {
		t.Fatalf("type-checking module: %v", err)
	}
	p := NewProgram(units)

	annotated := make(map[string]bool)
	for _, fi := range p.Funcs() {
		if !fi.Hotpath {
			continue
		}
		name := shortFuncName(fi.Obj)
		annotated[name] = true
		if _, ok := hotpathGates[name]; !ok {
			t.Errorf("//atis:hotpath function %s has no gate entry; add it to hotpathGates with an AllocsPerRun == 0 test", name)
		}
	}
	if len(annotated) == 0 {
		t.Fatal("no //atis:hotpath functions found in the module; the annotations were removed without updating this test")
	}
	for name, gate := range hotpathGates {
		if !annotated[name] {
			t.Errorf("hotpathGates entry %s does not match any //atis:hotpath function; stale entry?", name)
			continue
		}
		if !testFuncExists(t, gate.dir, gate.test) {
			t.Errorf("gate test %s for %s not found in %s", gate.test, name, gate.dir)
		}
	}
}

// testFuncExists reports whether a top-level test function with the given
// name is declared in some _test.go file of dir.
func testFuncExists(t *testing.T, dir, name string) bool {
	t.Helper()
	pattern := regexp.MustCompile(`(?m)^func ` + regexp.QuoteMeta(name) + `\(`)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading %s: %v", dir, err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		src, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatalf("reading %s: %v", e.Name(), err)
		}
		if pattern.Match(src) {
			return true
		}
	}
	return false
}
