package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"path"
)

// SpanEnd enforces the tracing span lifecycle: every span obtained from
// tracing.Start must be ended in the function (or function literal) that
// started it, either with the canonical
//
//	ctx, sp := tracing.Start(ctx, "phase")
//	defer sp.End()
//
// or with an explicit sp.End() on every return path. A span that is never
// ended stays open in its trace forever: the phase appears to run until
// the request finishes, its duration is garbage, and — because End is
// where attributes become immutable — late setters race the capture.
// Discarding the span return entirely is the same bug in a cheaper
// costume: the child span is created (and allocated, when tracing is on)
// but nothing can ever close it.
//
// The provider set is structural: any function named Start, defined in a
// package whose import path ends in "tracing", returning
// (context.Context, *Span). The check is scoped per function literal —
// a span started inside a closure must End inside that closure, since
// the closure may outlive the enclosing frame (goroutines, handlers).
type SpanEnd struct{}

// NewSpanEnd returns the analyzer.
func NewSpanEnd() *SpanEnd { return &SpanEnd{} }

// Name implements Analyzer.
func (*SpanEnd) Name() string { return "spanend" }

// Doc implements Analyzer.
func (*SpanEnd) Doc() string {
	return "every span from tracing.Start must be ended via `defer sp.End()` or an End on all return paths"
}

// Run implements Analyzer.
func (a *SpanEnd) Run(u *Unit) []Diagnostic {
	var diags []Diagnostic
	for _, f := range u.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			diags = append(diags, a.checkScope(u, fd.Body)...)
		}
	}
	return diags
}

// checkScope validates every tracing.Start call whose innermost enclosing
// function is body's owner. Nested function literals are separate scopes:
// their bodies are recursed into with a fresh check, and statements inside
// them do not count toward the enclosing scope's End coverage.
func (a *SpanEnd) checkScope(u *Unit, body *ast.BlockStmt) []Diagnostic {
	var diags []Diagnostic

	// Recurse into nested closures first, each as its own scope.
	inspectScope(body, func(n ast.Node) {
		if fl, ok := n.(*ast.FuncLit); ok && fl.Body != nil {
			diags = append(diags, a.checkScope(u, fl.Body)...)
		}
	})

	// Find the Start calls belonging to this scope, with parent tracking.
	// FuncLit prunes before pushing, so the push/pop stack stays balanced.
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false // separate scope, handled above; no pop expected
		}
		stack = append(stack, n)
		call, ok := n.(*ast.CallExpr)
		if !ok || !isTracingStart(u, call) {
			return true
		}
		if d, flagged := a.checkStart(u, body, call, stack); flagged {
			diags = append(diags, d)
		}
		return true
	})
	return diags
}

// checkStart validates one Start call site: the span result must be bound
// to a named variable and that variable must be ended.
func (a *SpanEnd) checkStart(u *Unit, scope *ast.BlockStmt, call *ast.CallExpr, stack []ast.Node) (Diagnostic, bool) {
	pos := u.Position(call.Pos())
	fail := func(msg string) (Diagnostic, bool) {
		return Diagnostic{Pos: pos, Analyzer: "spanend", Message: msg}, true
	}

	// The call must be the sole RHS of an assignment binding two names.
	if len(stack) < 2 {
		return fail("result of tracing.Start is discarded; the span can never be ended")
	}
	asg, ok := stack[len(stack)-2].(*ast.AssignStmt)
	if !ok || len(asg.Rhs) != 1 || asg.Rhs[0] != ast.Expr(call) || len(asg.Lhs) != 2 {
		return fail("result of tracing.Start is discarded; the span can never be ended")
	}
	spanID, ok := asg.Lhs[1].(*ast.Ident)
	if !ok || spanID.Name == "_" {
		return fail("span from tracing.Start is assigned to _; bind it and `defer sp.End()`")
	}
	obj := objectOf(u.Info, spanID)
	if obj == nil {
		return fail("span from tracing.Start is not bound to a local; bind it and `defer sp.End()`")
	}

	cov := endCoverage(u, scope, obj)
	switch {
	case cov.deferred:
		return Diagnostic{}, false
	case len(cov.ends) == 0:
		return fail(fmt.Sprintf("span %s is never ended: add `defer %s.End()` after tracing.Start", spanID.Name, spanID.Name))
	case !cov.allPaths:
		return fail(fmt.Sprintf("span %s is not ended on every return path; prefer `defer %s.End()`", spanID.Name, spanID.Name))
	}
	return Diagnostic{}, false
}

// coverage summarises how a span variable is ended within one scope.
type coverage struct {
	deferred bool            // a defer runs End (directly or via closure)
	ends     []*ast.ExprStmt // plain End statements
	allPaths bool            // every return path is preceded by an End
}

// endCoverage inspects scope for End calls on obj and, absent a defer,
// checks the all-paths property: every return statement's immediately
// preceding sibling is an End, and a scope that can fall off its end
// finishes with one. This is a lexical approximation, not a CFG — the
// canonical defer form is always accepted and always preferred.
func endCoverage(u *Unit, scope *ast.BlockStmt, obj types.Object) coverage {
	var cov coverage

	isEndCall := func(e ast.Expr) bool {
		c, ok := e.(*ast.CallExpr)
		if !ok {
			return false
		}
		sel, ok := c.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "End" {
			return false
		}
		id, ok := sel.X.(*ast.Ident)
		return ok && objectOf(u.Info, id) == obj
	}

	inspectScope(scope, func(n ast.Node) {
		switch st := n.(type) {
		case *ast.DeferStmt:
			if isEndCall(st.Call) {
				cov.deferred = true
			}
			// defer func() { …; sp.End(); … }() also discharges the
			// obligation — the closure runs at frame exit like a direct
			// defer.
			if fl, ok := st.Call.Fun.(*ast.FuncLit); ok && fl.Body != nil {
				ast.Inspect(fl.Body, func(m ast.Node) bool {
					if es, ok := m.(*ast.ExprStmt); ok && isEndCall(es.X) {
						cov.deferred = true
					}
					return true
				})
			}
		case *ast.ExprStmt:
			if isEndCall(st.X) {
				cov.ends = append(cov.ends, st)
			}
		}
	})
	if cov.deferred || len(cov.ends) == 0 {
		return cov
	}

	// All-paths check: each return's preceding sibling must be an End,
	// and if the scope's last statement is not a return, it must be an
	// End (the fall-off-the-end path of a void function).
	endSet := make(map[*ast.ExprStmt]bool, len(cov.ends))
	for _, e := range cov.ends {
		endSet[e] = true
	}
	covered := true
	var checkBlock func(list []ast.Stmt)
	precededByEnd := func(list []ast.Stmt, i int) bool {
		if i == 0 {
			return false
		}
		es, ok := list[i-1].(*ast.ExprStmt)
		return ok && endSet[es]
	}
	checkBlock = func(list []ast.Stmt) {
		for i, st := range list {
			if _, ok := st.(*ast.ReturnStmt); ok && !precededByEnd(list, i) {
				covered = false
			}
		}
	}
	inspectScope(scope, func(n ast.Node) {
		if bl, ok := n.(*ast.BlockStmt); ok {
			checkBlock(bl.List)
		}
		if cc, ok := n.(*ast.CaseClause); ok {
			checkBlock(cc.Body)
		}
	})
	if n := len(scope.List); n > 0 {
		last := scope.List[n-1]
		_, isReturn := last.(*ast.ReturnStmt)
		es, isExpr := last.(*ast.ExprStmt)
		if !isReturn && !(isExpr && endSet[es]) {
			covered = false
		}
	}
	cov.allPaths = covered
	return cov
}

// inspectScope walks the body without descending into nested function
// literals — those are independent scopes with their own obligations.
func inspectScope(body *ast.BlockStmt, fn func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			return true
		}
		if _, ok := n.(*ast.FuncLit); ok {
			fn(n) // report the literal itself, but not its contents
			return false
		}
		fn(n)
		return true
	})
}

// isTracingStart reports whether call invokes a span provider: a function
// named Start from a package whose import path ends in "tracing",
// returning (context.Context, *Span).
func isTracingStart(u *Unit, call *ast.CallExpr) bool {
	var id *ast.Ident
	switch f := call.Fun.(type) {
	case *ast.Ident:
		id = f
	case *ast.SelectorExpr:
		id = f.Sel
	default:
		return false
	}
	fn, ok := objectOf(u.Info, id).(*types.Func)
	if !ok || fn.Name() != "Start" {
		return false
	}
	pkg := fn.Pkg()
	if pkg == nil || path.Base(pkg.Path()) != "tracing" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() != 2 {
		return false
	}
	first, ok := sig.Results().At(0).Type().(*types.Named)
	if !ok || first.Obj().Name() != "Context" || first.Obj().Pkg() == nil || first.Obj().Pkg().Path() != "context" {
		return false
	}
	ptr, ok := sig.Results().At(1).Type().(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	return ok && named.Obj().Name() == "Span"
}
