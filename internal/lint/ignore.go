package lint

import (
	"strings"
)

// The suppression escape hatch: a comment of the form
//
//	//lint:ignore <analyzer> <reason>
//
// on the same line as a finding, or on the line directly above it,
// suppresses that analyzer's findings there. The reason is mandatory —
// an ignore without a justification is itself not honoured — because the
// directive is a reviewed assertion ("caller holds d.mu") that replaces
// the mechanical proof the analyzer could not complete. <analyzer> may be
// a single name or "all".

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	file     string
	line     int
	analyzer string // name or "all"
	reason   string
}

// ignoreSet indexes a unit's directives by file and line.
type ignoreSet map[string]map[int][]ignoreDirective

// collectIgnores parses every //lint:ignore directive in the unit.
func collectIgnores(u *Unit) ignoreSet {
	set := make(ignoreSet)
	for _, f := range u.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:ignore")
				if !ok {
					continue
				}
				fields := strings.Fields(text)
				if len(fields) < 2 {
					continue // no reason given: directive is inert
				}
				pos := u.Position(c.Pos())
				d := ignoreDirective{
					file:     pos.Filename,
					line:     pos.Line,
					analyzer: fields[0],
					reason:   strings.Join(fields[1:], " "),
				}
				if set[d.file] == nil {
					set[d.file] = make(map[int][]ignoreDirective)
				}
				set[d.file][d.line] = append(set[d.file][d.line], d)
			}
		}
	}
	return set
}

// suppresses reports whether a directive covers the diagnostic: matching
// analyzer (or "all") on the diagnostic's line or the line above.
func (s ignoreSet) suppresses(d Diagnostic) bool {
	lines := s[d.Pos.Filename]
	if lines == nil {
		return false
	}
	for _, ln := range []int{d.Pos.Line, d.Pos.Line - 1} {
		for _, dir := range lines[ln] {
			if dir.analyzer == "all" || dir.analyzer == d.Analyzer {
				return true
			}
		}
	}
	return false
}
