package lint

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// The suppression escape hatch: a comment of the form
//
//	//lint:ignore <analyzer>[,<analyzer>...] <reason>
//
// on the same line as a finding, or on the line directly above it,
// suppresses the named analyzers' findings there. The reason is mandatory —
// an ignore without a justification is itself not honoured — because the
// directive is a reviewed assertion ("caller holds d.mu") that replaces
// the mechanical proof the analyzer could not complete. The analyzer list
// is comma-separated with no spaces; "all" suppresses every analyzer.
// Directives naming an analyzer outside the known suite are reported as
// findings themselves (analyzer "ignore"): a misspelled suppression that
// silently does nothing is worse than no suppression at all.

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	pos       token.Position
	analyzers []string // names, possibly including "all"
	reason    string
}

// ignoreSet indexes directives by file and line.
type ignoreSet map[string]map[int][]ignoreDirective

// collectIgnores parses every //lint:ignore directive in the unit.
func collectIgnores(u *Unit) ignoreSet {
	set := make(ignoreSet)
	collectIgnoresInto(set, u)
	return set
}

// collectIgnoresInto parses the unit's directives into an existing set, so
// the driver can merge directives across all units of a program.
func collectIgnoresInto(set ignoreSet, u *Unit) {
	for _, f := range u.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:ignore")
				if !ok {
					continue
				}
				fields := strings.Fields(text)
				if len(fields) < 2 {
					continue // no reason given: directive is inert
				}
				pos := u.Position(c.Pos())
				d := ignoreDirective{
					pos:       pos,
					analyzers: strings.Split(fields[0], ","),
					reason:    strings.Join(fields[1:], " "),
				}
				if set[pos.Filename] == nil {
					set[pos.Filename] = make(map[int][]ignoreDirective)
				}
				set[pos.Filename][pos.Line] = append(set[pos.Filename][pos.Line], d)
			}
		}
	}
}

// names reports whether the directive covers the analyzer.
func (d ignoreDirective) names(analyzer string) bool {
	for _, a := range d.analyzers {
		if a == "all" || a == analyzer {
			return true
		}
	}
	return false
}

// suppresses reports whether a directive covers the diagnostic: a matching
// analyzer name (or "all") on the diagnostic's line or the line above.
func (s ignoreSet) suppresses(d Diagnostic) bool {
	return s.covers(d.Pos.Filename, d.Pos.Line, d.Analyzer)
}

// covers reports whether an ignore for the analyzer is in effect at
// file:line. hotpath also consults this directly: an ignored call-site line
// prunes propagation through that edge.
func (s ignoreSet) covers(file string, line int, analyzer string) bool {
	lines := s[file]
	if lines == nil {
		return false
	}
	for _, ln := range []int{line, line - 1} {
		for _, dir := range lines[ln] {
			if dir.names(analyzer) {
				return true
			}
		}
	}
	return false
}

// unknownWarnings returns one diagnostic per directive entry naming an
// analyzer outside the known set.
func (s ignoreSet) unknownWarnings(known map[string]bool) []Diagnostic {
	var out []Diagnostic
	for _, lines := range s {
		for _, dirs := range lines {
			for _, d := range dirs {
				for _, name := range d.analyzers {
					if name == "all" || known[name] {
						continue
					}
					out = append(out, Diagnostic{
						Pos:      d.pos,
						Analyzer: "ignore",
						Message:  fmt.Sprintf("//lint:ignore names unknown analyzer %q; the suppression has no effect (known: %s)", name, knownNames(known)),
					})
				}
			}
		}
	}
	return out
}

// knownNames renders the known analyzer set for the warning message.
func knownNames(known map[string]bool) string {
	names := make([]string, 0, len(known))
	for n := range known {
		names = append(names, n)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}
