package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// This file is the whole-program layer of the framework. Per-unit analyzers
// (UnitAnalyzer) see one type-checked package at a time; interprocedural
// analyzers (ProgramAnalyzer) see a Program: every module package loaded
// together, plus a static call graph over them. The graph is a deliberate
// under-approximation — see CallKind — chosen so that "everything reachable
// through static edges" is a set the analyzers can reason about soundly
// without whole-program pointer analysis.

// Annotation directives recognised on declarations. Like //go: directives
// they attach to the doc comment with no space after the slashes.
const (
	// hotpathDirective marks a function whose body — and everything it
	// transitively calls through static edges — must be allocation-free.
	hotpathDirective = "//atis:hotpath"
	// immutableDirective marks a type whose values must not be written
	// outside their build phase.
	immutableDirective = "//atis:immutable"
)

// CallKind classifies how a call site was resolved.
type CallKind int

const (
	// CallStatic is a direct call to a known function or a method call
	// through a concrete receiver type: the callee is exact.
	CallStatic CallKind = iota
	// CallInterface is a method call through an interface value. The
	// concrete callee is unknowable without pointer analysis, so the graph
	// records the site but adds no edge: interface boundaries stop
	// propagation.
	CallInterface
	// CallFuncValue is a call through a function-typed variable, field, or
	// parameter. Treated like CallInterface: recorded, no edge.
	CallFuncValue
)

// String renders the kind for goldens and diagnostics.
func (k CallKind) String() string {
	switch k {
	case CallStatic:
		return "static"
	case CallInterface:
		return "interface"
	case CallFuncValue:
		return "func-value"
	}
	return "unknown"
}

// CallSite is one call expression inside a module function, with its
// resolution. Calls inside nested function literals are attributed to the
// enclosing declared function: the literal runs on that function's paths.
type CallSite struct {
	Call   *ast.CallExpr
	Caller *FuncInfo
	// Callee is the exact target for CallStatic, the interface method
	// object for CallInterface, and nil for CallFuncValue.
	Callee *types.Func
	Kind   CallKind
}

// FuncInfo is one declared function of the module with a body.
type FuncInfo struct {
	Obj   *types.Func
	Decl  *ast.FuncDecl
	Unit  *Unit
	Calls []CallSite
	// Hotpath records a //atis:hotpath directive on the declaration.
	Hotpath bool
}

// Program is the whole-module view: every unit, every declared function,
// and the static call graph between them.
type Program struct {
	Units []*Unit

	funcs map[*types.Func]*FuncInfo
	// order lists the functions in load order (units, then files, then
	// declarations) so analyzers emit deterministic output.
	order   []*FuncInfo
	callers map[*types.Func][]*FuncInfo
	// immutable holds the type names annotated //atis:immutable.
	immutable map[*types.TypeName]bool
}

// NewProgram indexes the units and builds the call graph.
func NewProgram(units []*Unit) *Program {
	p := &Program{
		Units:     units,
		funcs:     make(map[*types.Func]*FuncInfo),
		callers:   make(map[*types.Func][]*FuncInfo),
		immutable: make(map[*types.TypeName]bool),
	}
	for _, u := range units {
		for _, f := range u.Files {
			for _, decl := range f.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					p.indexFunc(u, d)
				case *ast.GenDecl:
					p.indexTypes(u, d)
				}
			}
		}
	}
	for _, u := range units {
		for _, f := range u.Files {
			for _, decl := range f.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
					p.collectCalls(u, fd)
				}
			}
		}
	}
	return p
}

func (p *Program) indexFunc(u *Unit, fd *ast.FuncDecl) {
	if fd.Body == nil {
		return
	}
	obj, ok := u.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return
	}
	fi := &FuncInfo{
		Obj:     obj,
		Decl:    fd,
		Unit:    u,
		Hotpath: hasDirective(fd.Doc, hotpathDirective),
	}
	p.funcs[obj] = fi
	p.order = append(p.order, fi)
}

func (p *Program) indexTypes(u *Unit, gd *ast.GenDecl) {
	for _, spec := range gd.Specs {
		ts, ok := spec.(*ast.TypeSpec)
		if !ok {
			continue
		}
		// The directive may sit on the type spec or, for single-spec
		// declarations, on the enclosing GenDecl.
		if !hasDirective(ts.Doc, immutableDirective) &&
			!(len(gd.Specs) == 1 && hasDirective(gd.Doc, immutableDirective)) {
			continue
		}
		if tn, ok := u.Info.Defs[ts.Name].(*types.TypeName); ok {
			p.immutable[tn] = true
		}
	}
}

// collectCalls records every call site in fd's body, including those inside
// nested function literals.
func (p *Program) collectCalls(u *Unit, fd *ast.FuncDecl) {
	fi := p.funcs[u.Info.Defs[fd.Name].(*types.Func)]
	if fi == nil {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		site, ok := p.resolveCall(u, call)
		if !ok {
			return true
		}
		site.Caller = fi
		fi.Calls = append(fi.Calls, site)
		if site.Kind == CallStatic && site.Callee != nil {
			if callee := p.funcs[site.Callee]; callee != nil {
				p.callers[site.Callee] = append(p.callers[site.Callee], fi)
			}
		}
		return true
	})
}

// resolveCall classifies one call expression. Conversions and builtins are
// not calls in the graph sense and return ok=false.
func (p *Program) resolveCall(u *Unit, call *ast.CallExpr) (CallSite, bool) {
	fun := ast.Unparen(call.Fun)
	if tv, ok := u.Info.Types[fun]; ok && tv.IsType() {
		return CallSite{}, false // conversion
	}
	switch f := fun.(type) {
	case *ast.Ident:
		switch obj := objectOf(u.Info, f).(type) {
		case *types.Builtin:
			return CallSite{}, false
		case *types.Func:
			return CallSite{Call: call, Callee: obj, Kind: CallStatic}, true
		case *types.Var:
			return CallSite{Call: call, Kind: CallFuncValue}, true
		case *types.Nil:
			return CallSite{}, false
		}
		return CallSite{}, false
	case *ast.SelectorExpr:
		if sel, ok := u.Info.Selections[f]; ok {
			if sel.Kind() != types.MethodVal {
				// Method expressions/field func values called later are
				// func-value calls at their call sites; a field of func
				// type selected and called here is dynamic.
				return CallSite{Call: call, Kind: CallFuncValue}, true
			}
			m, ok := sel.Obj().(*types.Func)
			if !ok {
				return CallSite{Call: call, Kind: CallFuncValue}, true
			}
			if types.IsInterface(sel.Recv()) {
				return CallSite{Call: call, Callee: m, Kind: CallInterface}, true
			}
			return CallSite{Call: call, Callee: m, Kind: CallStatic}, true
		}
		// No selection: a package-qualified reference.
		switch obj := objectOf(u.Info, f.Sel).(type) {
		case *types.Func:
			return CallSite{Call: call, Callee: obj, Kind: CallStatic}, true
		case *types.Var:
			return CallSite{Call: call, Kind: CallFuncValue}, true
		}
		return CallSite{}, false
	case *ast.IndexExpr, *ast.IndexListExpr:
		// Generic instantiation: resolve through the index expression.
		var inner ast.Expr
		if ix, ok := fun.(*ast.IndexExpr); ok {
			inner = ix.X
		} else {
			inner = fun.(*ast.IndexListExpr).X
		}
		if id, ok := ast.Unparen(inner).(*ast.Ident); ok {
			if fn, ok := objectOf(u.Info, id).(*types.Func); ok {
				return CallSite{Call: call, Callee: fn, Kind: CallStatic}, true
			}
		}
		return CallSite{Call: call, Kind: CallFuncValue}, true
	default:
		// Calling a func literal, a call result, a type assertion, etc.
		return CallSite{Call: call, Kind: CallFuncValue}, true
	}
}

// FuncOf returns the module function info for obj, or nil when obj is not a
// module function with a body (stdlib, interface method, bodiless decl).
func (p *Program) FuncOf(obj *types.Func) *FuncInfo { return p.funcs[obj] }

// Funcs returns every module function in deterministic load order.
func (p *Program) Funcs() []*FuncInfo { return p.order }

// Callers returns the module functions holding a static call edge to obj.
func (p *Program) Callers(obj *types.Func) []*FuncInfo { return p.callers[obj] }

// Immutable reports whether the named type carries //atis:immutable.
func (p *Program) Immutable(tn *types.TypeName) bool { return p.immutable[tn] }

// hasDirective reports whether the comment group carries the directive as a
// standalone comment line (exact match or directive followed by a space).
func hasDirective(doc *ast.CommentGroup, directive string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if c.Text == directive || strings.HasPrefix(c.Text, directive+" ") {
			return true
		}
	}
	return false
}

// shortFuncName renders a function for diagnostics: pkg.Func for top-level
// functions, pkg.Type.Method for methods.
func shortFuncName(f *types.Func) string {
	name := f.Name()
	sig, ok := f.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := types.Unalias(t).(*types.Named); ok {
			name = named.Obj().Name() + "." + name
		}
	}
	if f.Pkg() != nil {
		name = f.Pkg().Name() + "." + name
	}
	return name
}
