// Package lint is the project-specific static-analysis framework behind
// cmd/atislint. It exists because the engine's correctness rests on a small
// set of concurrency and hot-path invariants — lock scope, cost-version
// bumps, pool Get/Put pairing, the telemetry fast-path guard — that code
// review keeps almost catching (the PR 2 Prometheus exporter iterated
// mutex-guarded maps after dropping the lock, a fatal race only visible
// under concurrent scrapes). Invariants of that kind must be enforced by
// tooling, not vigilance.
//
// The framework is deliberately small and built only on the standard
// library (go/parser, go/ast, go/types): the main module stays
// dependency-free. A UnitAnalyzer inspects one type-checked package (a
// Unit) and reports Diagnostics; a ProgramAnalyzer inspects the whole
// module at once through a Program — all units type-checked together plus
// a static call graph (program.go) — which is how the interprocedural
// checks (hotpath, immutsnapshot) follow an annotated kernel into its
// helpers. The loader in loader.go type-checks every package of the
// module, and ignore.go implements the
// `//lint:ignore <analyzer>[,<analyzer>...] <reason>` escape hatch.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Diagnostic is one finding: a position, the analyzer that produced it, and
// a message stating the violated invariant.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the diagnostic in the file:line:col style editors parse.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Unit is one type-checked package: the parse trees, the type information,
// and the package object. Test files are excluded — the invariants guard
// production code paths, and tests routinely poke at internals without
// locks.
type Unit struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
	// Dir is the package directory relative to the module root ("." for
	// the root package).
	Dir string
}

// Position resolves a token.Pos against the unit's file set.
func (u *Unit) Position(pos token.Pos) token.Position { return u.Fset.Position(pos) }

// Analyzer is one invariant checker. Every analyzer also implements either
// UnitAnalyzer (per-package inspection) or ProgramAnalyzer (whole-program,
// interprocedural inspection over the static call graph).
type Analyzer interface {
	// Name is the identifier used on the command line and in
	// //lint:ignore directives.
	Name() string
	// Doc is a one-line description of the invariant the analyzer guards.
	Doc() string
}

// UnitAnalyzer inspects one type-checked package at a time.
type UnitAnalyzer interface {
	Analyzer
	// Run inspects the unit and returns its findings. Suppression is the
	// driver's job; analyzers report everything they see.
	Run(u *Unit) []Diagnostic
}

// ProgramAnalyzer inspects the whole module at once: all units plus the
// static call graph. The driver builds the Program lazily, once, and shares
// it between program analyzers.
type ProgramAnalyzer interface {
	Analyzer
	// RunProgram inspects the program and returns its findings. As with
	// Run, suppression is the driver's job — except for hotpath's
	// edge-pruning reading of call-site ignores, which is documented on
	// that analyzer.
	RunProgram(p *Program) []Diagnostic
}

// Analyzers returns the full suite in stable order.
func Analyzers() []Analyzer {
	return []Analyzer{
		NewLockScope(),
		NewCostVersion(),
		NewPoolPair(),
		NewRecorderGuard(),
		NewCtxCheck(),
		NewSpanEnd(),
		NewHotPath(),
		NewImmutSnapshot(),
	}
}

// Run applies every analyzer to the units, filters suppressed findings via
// the //lint:ignore directives in the units' files, and returns the
// remaining diagnostics sorted by position. Directives naming an analyzer
// outside the known suite produce their own "ignore" diagnostics: a typo in
// a suppression must not silently leave the finding live while looking
// handled.
func Run(units []*Unit, analyzers []Analyzer) []Diagnostic {
	known := make(map[string]bool)
	for _, a := range Analyzers() {
		known[a.Name()] = true
	}
	for _, a := range analyzers {
		known[a.Name()] = true
	}

	ignores := make(ignoreSet)
	for _, u := range units {
		collectIgnoresInto(ignores, u)
	}

	var prog *Program
	var out []Diagnostic
	for _, a := range analyzers {
		var diags []Diagnostic
		switch impl := a.(type) {
		case ProgramAnalyzer:
			if prog == nil {
				prog = NewProgram(units)
			}
			diags = impl.RunProgram(prog)
		case UnitAnalyzer:
			for _, u := range units {
				diags = append(diags, impl.Run(u)...)
			}
		}
		for _, d := range diags {
			if ignores.suppresses(d) {
				continue
			}
			out = append(out, d)
		}
	}
	out = append(out, ignores.unknownWarnings(known)...)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}

// --- shared type helpers -------------------------------------------------

// mutexKind reports whether t is sync.Mutex or sync.RWMutex (possibly
// through a pointer); rw is true for RWMutex.
func mutexKind(t types.Type) (rw, ok bool) {
	if p, isPtr := t.Underlying().(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed {
		return false, false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false, false
	}
	switch obj.Name() {
	case "Mutex":
		return false, true
	case "RWMutex":
		return true, true
	}
	return false, false
}

// isSyncPool reports whether t is sync.Pool or *sync.Pool.
func isSyncPool(t types.Type) bool {
	if p, isPtr := t.Underlying().(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "Pool"
}

// rootIdent strips selector/index/star/paren chains down to the base
// identifier of an expression, or nil when the base is not an identifier
// (for example a call result).
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// objectOf resolves an identifier to its object, looking in both Uses and
// Defs.
func objectOf(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Uses[id]; o != nil {
		return o
	}
	return info.Defs[id]
}
