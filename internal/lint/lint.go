// Package lint is the project-specific static-analysis framework behind
// cmd/atislint. It exists because the engine's correctness rests on a small
// set of concurrency and hot-path invariants — lock scope, cost-version
// bumps, pool Get/Put pairing, the telemetry fast-path guard — that code
// review keeps almost catching (the PR 2 Prometheus exporter iterated
// mutex-guarded maps after dropping the lock, a fatal race only visible
// under concurrent scrapes). Invariants of that kind must be enforced by
// tooling, not vigilance.
//
// The framework is deliberately small and built only on the standard
// library (go/parser, go/ast, go/types): the main module stays
// dependency-free. An Analyzer inspects one type-checked package (a Unit)
// and reports Diagnostics; the loader in loader.go type-checks every
// package of the module, and ignore.go implements the
// `//lint:ignore <analyzer> <reason>` escape hatch.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Diagnostic is one finding: a position, the analyzer that produced it, and
// a message stating the violated invariant.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the diagnostic in the file:line:col style editors parse.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Unit is one type-checked package: the parse trees, the type information,
// and the package object. Test files are excluded — the invariants guard
// production code paths, and tests routinely poke at internals without
// locks.
type Unit struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
	// Dir is the package directory relative to the module root ("." for
	// the root package).
	Dir string
}

// Position resolves a token.Pos against the unit's file set.
func (u *Unit) Position(pos token.Pos) token.Position { return u.Fset.Position(pos) }

// Analyzer is one invariant checker.
type Analyzer interface {
	// Name is the identifier used on the command line and in
	// //lint:ignore directives.
	Name() string
	// Doc is a one-line description of the invariant the analyzer guards.
	Doc() string
	// Run inspects the unit and returns its findings. Suppression is the
	// driver's job; analyzers report everything they see.
	Run(u *Unit) []Diagnostic
}

// Analyzers returns the full suite in stable order.
func Analyzers() []Analyzer {
	return []Analyzer{
		NewLockScope(),
		NewCostVersion(),
		NewPoolPair(),
		NewRecorderGuard(),
		NewCtxCheck(),
		NewSpanEnd(),
	}
}

// Run applies every analyzer to every unit, filters suppressed findings via
// the //lint:ignore directives in the units' files, and returns the
// remaining diagnostics sorted by position.
func Run(units []*Unit, analyzers []Analyzer) []Diagnostic {
	var out []Diagnostic
	for _, u := range units {
		ignores := collectIgnores(u)
		for _, a := range analyzers {
			for _, d := range a.Run(u) {
				if ignores.suppresses(d) {
					continue
				}
				out = append(out, d)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}

// --- shared type helpers -------------------------------------------------

// mutexKind reports whether t is sync.Mutex or sync.RWMutex (possibly
// through a pointer); rw is true for RWMutex.
func mutexKind(t types.Type) (rw, ok bool) {
	if p, isPtr := t.Underlying().(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed {
		return false, false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false, false
	}
	switch obj.Name() {
	case "Mutex":
		return false, true
	case "RWMutex":
		return true, true
	}
	return false, false
}

// isSyncPool reports whether t is sync.Pool or *sync.Pool.
func isSyncPool(t types.Type) bool {
	if p, isPtr := t.Underlying().(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "Pool"
}

// rootIdent strips selector/index/star/paren chains down to the base
// identifier of an expression, or nil when the base is not an identifier
// (for example a call result).
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// objectOf resolves an identifier to its object, looking in both Uses and
// Defs.
func objectOf(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Uses[id]; o != nil {
		return o
	}
	return info.Defs[id]
}
