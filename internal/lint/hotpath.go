package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// HotPath enforces allocation-freedom on the engine's warm paths. A
// function annotated
//
//	//atis:hotpath
//
// must not allocate — and neither may anything it transitively calls
// through *static* call edges (direct calls and concrete-receiver method
// calls). Interface and func-value calls are dynamic: the callee is
// unknowable without pointer analysis, so propagation stops there and the
// call itself is not flagged. That under-approximation is deliberate — the
// kernels' dynamic seams (frontier interface, estimator func field,
// telemetry recorder) are exactly the places where cold implementations
// are allowed to allocate.
//
// Flagged constructs, per the allocation sources of the gc toolchain:
// make/new, slice and map composite literals, address-taken composite
// literals, append without a preallocated-capacity proof (the base slice
// was created fresh in this function), string concatenation and
// string<->[]byte/[]rune conversions, interface boxing at call sites and
// assignments, capturing closures that may escape, map writes, variadic
// calls that materialise an argument slice, and calls into stdlib packages
// that allocate by contract (fmt, strconv, strings, bytes, sort, encoding,
// reflect, regexp) plus context.WithValue/WithCancel/... and
// errors.New/Join. Expressions inside panic arguments are exempt: a panic
// is already off the hot path.
//
// Escape hatch: `//lint:ignore hotpath <reason>` on a finding's line
// suppresses it, and on a *call-site* line it additionally prunes
// propagation through that edge — the reviewed assertion is "this callee
// runs cold" (pool refill, error path, result materialisation), so its body
// is not held to the hot-path standard.
type HotPath struct{}

// NewHotPath returns the analyzer.
func NewHotPath() *HotPath { return &HotPath{} }

// Name implements Analyzer.
func (*HotPath) Name() string { return "hotpath" }

// Doc implements Analyzer.
func (*HotPath) Doc() string {
	return "//atis:hotpath functions and their static callees must be allocation-free"
}

// RunProgram implements ProgramAnalyzer.
func (a *HotPath) RunProgram(p *Program) []Diagnostic {
	ignores := make(ignoreSet)
	for _, u := range p.Units {
		collectIgnoresInto(ignores, u)
	}

	// Seed with the annotated functions, then propagate through static
	// edges into module functions. An ignored call-site line prunes the
	// edge. hot maps each reached function to the annotated root that
	// first reached it, for diagnostics.
	hot := make(map[*FuncInfo]*FuncInfo)
	var queue []*FuncInfo
	for _, fi := range p.Funcs() {
		if fi.Hotpath {
			hot[fi] = fi
			queue = append(queue, fi)
		}
	}
	for len(queue) > 0 {
		fi := queue[0]
		queue = queue[1:]
		root := hot[fi]
		for _, site := range fi.Calls {
			if site.Kind != CallStatic || site.Callee == nil {
				continue
			}
			callee := p.FuncOf(site.Callee)
			if callee == nil {
				continue // stdlib or bodiless: no body to check
			}
			pos := fi.Unit.Position(site.Call.Pos())
			if ignores.covers(pos.Filename, pos.Line, "hotpath") {
				continue // reviewed cold edge: do not propagate
			}
			if _, seen := hot[callee]; seen {
				continue
			}
			hot[callee] = root
			queue = append(queue, callee)
		}
	}

	var diags []Diagnostic
	for _, fi := range p.Funcs() {
		if root, ok := hot[fi]; ok {
			diags = append(diags, a.checkFunc(p, fi, root)...)
		}
	}
	return diags
}

// checkFunc inspects one hot function's body for allocation sources.
func (a *HotPath) checkFunc(p *Program, fi, root *FuncInfo) []Diagnostic {
	c := &hotChecker{
		p:       p,
		fi:      fi,
		root:    root,
		u:       fi.Unit,
		origins: make(map[*types.Var]bool),
		handled: make(map[ast.Node]bool),
	}
	c.collectOrigins(fi.Decl.Body)
	c.collectPanicRanges(fi.Decl.Body)

	var stack []ast.Node
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		c.visit(n, stack)
		return true
	})
	return c.diags
}

// hotChecker carries the per-function state of one hot-path body scan.
type hotChecker struct {
	p    *Program
	fi   *FuncInfo
	root *FuncInfo
	u    *Unit
	// origins marks local slice variables whose backing array was created
	// fresh in this function without a capacity argument — appending to
	// them cannot be proven growth-free.
	origins map[*types.Var]bool
	// handled suppresses double-reporting (a composite literal already
	// reported through its enclosing &-expression).
	handled map[ast.Node]bool
	// panics holds the source ranges of panic arguments, which are exempt.
	panics []posRange
	diags  []Diagnostic
}

type posRange struct{ lo, hi token.Pos }

// stdSizes matches the gc toolchain's layout for the boxing zero-size
// exemption (a zero-size value boxes to the shared runtime.zerobase, no
// allocation).
var stdSizes = types.SizesFor("gc", "amd64")

// denyPkgs are stdlib packages whose exported API allocates by contract.
var denyPkgs = []string{"fmt", "strconv", "strings", "bytes", "sort", "encoding", "reflect", "regexp"}

// denyFuncs are individual stdlib functions that always allocate.
var denyFuncs = map[string]bool{
	"context.WithValue":    true,
	"context.WithCancel":   true,
	"context.WithTimeout":  true,
	"context.WithDeadline": true,
	"errors.New":           true,
	"errors.Join":          true,
}

func (c *hotChecker) flag(pos token.Pos, format string, args ...any) {
	if c.inPanic(pos) {
		return
	}
	msg := fmt.Sprintf(format, args...)
	if c.fi == c.root {
		msg += " in //atis:hotpath function " + shortFuncName(c.fi.Obj)
	} else {
		msg += fmt.Sprintf(" in %s, on the hot path of //atis:hotpath %s",
			shortFuncName(c.fi.Obj), shortFuncName(c.root.Obj))
	}
	c.diags = append(c.diags, Diagnostic{
		Pos:      c.u.Position(pos),
		Analyzer: "hotpath",
		Message:  msg,
	})
}

func (c *hotChecker) inPanic(pos token.Pos) bool {
	for _, r := range c.panics {
		if pos >= r.lo && pos < r.hi {
			return true
		}
	}
	return false
}

// collectPanicRanges records the argument ranges of panic calls: a
// panicking path is already catastrophic, its Sprintf is not a hot-path
// allocation.
func (c *hotChecker) collectPanicRanges(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if b, ok := objectOf(c.u.Info, id).(*types.Builtin); ok && b.Name() == "panic" {
				c.panics = append(c.panics, posRange{call.Pos(), call.End()})
			}
		}
		return true
	})
}

// collectOrigins builds the fresh-slice map in textual order. "Fresh"
// means the backing array was created here with no capacity reserve: a
// slice literal, a nil `var s []T`, or an append chain rooted at one.
// Parameters, struct fields, and make results (the make is flagged on its
// own) are exempt bases.
func (c *hotChecker) collectOrigins(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if len(st.Lhs) != len(st.Rhs) {
				return true
			}
			for i, lhs := range st.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				if v, ok := objectOf(c.u.Info, id).(*types.Var); ok && isSliceType(v.Type()) {
					c.origins[v] = c.freshExpr(st.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			fresh := len(st.Values) == 0
			for i, name := range st.Names {
				v, ok := objectOf(c.u.Info, name).(*types.Var)
				if !ok || !isSliceType(v.Type()) {
					continue
				}
				if fresh {
					c.origins[v] = true
				} else if i < len(st.Values) {
					c.origins[v] = c.freshExpr(st.Values[i])
				}
			}
		}
		return true
	})
}

// freshExpr reports whether the expression denotes a slice with a fresh,
// capacity-unproven backing array.
func (c *hotChecker) freshExpr(e ast.Expr) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		return isSliceType(c.typeOf(x))
	case *ast.Ident:
		if v, ok := objectOf(c.u.Info, x).(*types.Var); ok {
			return c.origins[v]
		}
	case *ast.SliceExpr:
		return c.freshExpr(x.X)
	case *ast.CallExpr:
		if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok {
			if b, ok := objectOf(c.u.Info, id).(*types.Builtin); ok && b.Name() == "append" && len(x.Args) > 0 {
				return c.freshExpr(x.Args[0])
			}
		}
	}
	return false
}

func (c *hotChecker) typeOf(e ast.Expr) types.Type {
	if tv, ok := c.u.Info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// visit dispatches the allocation checks for one node.
func (c *hotChecker) visit(n ast.Node, stack []ast.Node) {
	switch x := n.(type) {
	case *ast.CallExpr:
		c.checkCall(x)
	case *ast.CompositeLit:
		c.checkComposite(x)
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			if lit, ok := ast.Unparen(x.X).(*ast.CompositeLit); ok {
				c.handled[lit] = true
				c.flag(x.Pos(), "address-taken composite literal allocates")
			}
		}
	case *ast.BinaryExpr:
		if x.Op == token.ADD {
			if t := c.typeOf(x); t != nil && isStringType(t) {
				if tv, ok := c.u.Info.Types[x]; !ok || tv.Value == nil {
					c.flag(x.Pos(), "string concatenation allocates")
				}
			}
		}
	case *ast.AssignStmt:
		c.checkAssign(x)
	case *ast.IncDecStmt:
		if ix, ok := ast.Unparen(x.X).(*ast.IndexExpr); ok && isMapType(c.typeOf(ix.X)) {
			c.flag(x.Pos(), "map write may allocate")
		}
	case *ast.ValueSpec:
		for i, name := range x.Names {
			if i >= len(x.Values) {
				break
			}
			if v := objectOf(c.u.Info, name); v != nil {
				c.checkBoxing(x.Values[i], v.Type(), "assignment")
			}
		}
	case *ast.FuncLit:
		c.checkFuncLit(x, stack)
	}
}

// checkComposite flags slice and map literals; struct and array value
// literals live on the stack and pass. Literals already reported through
// an enclosing &-expression are skipped.
func (c *hotChecker) checkComposite(lit *ast.CompositeLit) {
	if c.handled[lit] {
		return
	}
	t := c.typeOf(lit)
	switch {
	case isSliceType(t):
		c.flag(lit.Pos(), "slice literal allocates")
	case isMapType(t):
		c.flag(lit.Pos(), "map literal allocates")
	}
}

// checkCall handles builtins, conversions, denylisted stdlib calls,
// variadic materialisation, and argument boxing.
func (c *hotChecker) checkCall(call *ast.CallExpr) {
	fun := ast.Unparen(call.Fun)

	// Conversions.
	if tv, ok := c.u.Info.Types[fun]; ok && tv.IsType() {
		c.checkConversion(call, tv.Type)
		return
	}

	// Builtins.
	if id, ok := fun.(*ast.Ident); ok {
		if b, ok := objectOf(c.u.Info, id).(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				c.flag(call.Pos(), "make allocates")
			case "new":
				c.flag(call.Pos(), "new allocates")
			case "append":
				if len(call.Args) > 1 && c.freshExpr(call.Args[0]) {
					c.flag(call.Pos(), "append to a freshly created slice has no preallocated-capacity proof")
				}
			}
			return
		}
	}

	// Denylisted stdlib calls (static resolution only).
	if site, ok := c.p.resolveCall(c.u, call); ok && site.Kind == CallStatic && site.Callee != nil {
		if c.p.FuncOf(site.Callee) == nil && site.Callee.Pkg() != nil {
			pkgPath := site.Callee.Pkg().Path()
			qualified := pkgPath + "." + site.Callee.Name()
			if denyFuncs[qualified] {
				c.flag(call.Pos(), "call to %s allocates", qualified)
			} else {
				for _, deny := range denyPkgs {
					if pkgPath == deny || strings.HasPrefix(pkgPath, deny+"/") {
						c.flag(call.Pos(), "call into allocating stdlib package %s (%s)", pkgPath, qualified)
						break
					}
				}
			}
		}
	}

	// Variadic materialisation and argument boxing need the signature.
	sig, ok := c.typeOf(fun).(*types.Signature)
	if !ok {
		return
	}
	np := sig.Params().Len()
	if sig.Variadic() && !call.Ellipsis.IsValid() && len(call.Args) > np-1 {
		c.flag(call.Pos(), "variadic call materialises its argument slice")
	}
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= np-1:
			if call.Ellipsis.IsValid() {
				pt = sig.Params().At(np - 1).Type()
			} else if sl, ok := sig.Params().At(np - 1).Type().Underlying().(*types.Slice); ok {
				pt = sl.Elem()
			}
		case i < np:
			pt = sig.Params().At(i).Type()
		}
		if pt != nil {
			c.checkBoxing(arg, pt, "argument")
		}
	}
}

// checkConversion flags the conversions that copy: string<->[]byte/[]rune,
// integer-to-string, and conversions into interface types (boxing).
func (c *hotChecker) checkConversion(call *ast.CallExpr, dst types.Type) {
	if len(call.Args) != 1 {
		return
	}
	src := c.typeOf(call.Args[0])
	if src == nil || isUntypedNil(src) {
		return
	}
	switch {
	case types.IsInterface(dst):
		c.checkBoxing(call.Args[0], dst, "conversion")
	case isStringType(dst) && (isByteOrRuneSlice(src) || isIntegerType(src)):
		c.flag(call.Pos(), "conversion %s -> %s allocates", src, dst)
	case isByteOrRuneSlice(dst) && isStringType(src):
		c.flag(call.Pos(), "conversion %s -> %s allocates", src, dst)
	}
}

// checkAssign flags map writes and interface boxing on assignment.
func (c *hotChecker) checkAssign(asg *ast.AssignStmt) {
	for _, lhs := range asg.Lhs {
		if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok && isMapType(c.typeOf(ix.X)) {
			c.flag(lhs.Pos(), "map write may allocate")
		}
	}
	if len(asg.Lhs) != len(asg.Rhs) {
		return
	}
	for i, lhs := range asg.Lhs {
		lt := c.typeOf(lhs)
		if lt == nil {
			if id, ok := lhs.(*ast.Ident); ok {
				if obj := objectOf(c.u.Info, id); obj != nil {
					lt = obj.Type()
				}
			}
		}
		if lt != nil {
			c.checkBoxing(asg.Rhs[i], lt, "assignment")
		}
	}
}

// checkBoxing flags a concrete value converted to an interface type. The
// gc runtime stores pointer-shaped values directly in the interface word
// and shares runtime.zerobase for zero-size values; everything else heap-
// allocates the boxed copy.
func (c *hotChecker) checkBoxing(val ast.Expr, target types.Type, what string) {
	if !types.IsInterface(target) {
		return
	}
	vt := c.typeOf(val)
	if vt == nil || types.IsInterface(vt) || isUntypedNil(vt) || isPointerShaped(vt) {
		return
	}
	if stdSizes != nil && stdSizes.Sizeof(vt) == 0 {
		return
	}
	c.flag(val.Pos(), "%s boxes %s into interface %s", what, vt, target)
}

// checkFuncLit flags capturing closures unless they provably do not
// escape: passed to a static module callee that only ever calls the
// parameter, bound to a local that is only ever called, or deferred.
func (c *hotChecker) checkFuncLit(lit *ast.FuncLit, stack []ast.Node) {
	captured := c.captures(lit)
	if len(captured) == 0 {
		return // non-capturing literals are static, no allocation
	}
	if len(stack) >= 2 {
		switch parent := stack[len(stack)-2].(type) {
		case *ast.CallExpr:
			if ast.Unparen(parent.Fun) == ast.Expr(lit) {
				// Immediately invoked (or deferred) in-frame: fine. Through
				// a go statement the closure outlives the frame: flagged.
				if len(stack) >= 3 {
					if _, isGo := stack[len(stack)-3].(*ast.GoStmt); isGo {
						c.flag(lit.Pos(), "goroutine closure captures %s and escapes to the heap", strings.Join(captured, ", "))
					}
				}
				return
			}
			for i, arg := range parent.Args {
				if ast.Unparen(arg) != ast.Expr(lit) {
					continue
				}
				if site, ok := c.p.resolveCall(c.u, parent); ok && site.Kind == CallStatic && site.Callee != nil {
					if callee := c.p.FuncOf(site.Callee); callee != nil && paramOnlyCalled(callee, i) {
						return // callback never escapes the callee
					}
				}
			}
		case *ast.AssignStmt:
			for _, lhs := range parent.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				if obj := objectOf(c.u.Info, id); obj != nil && c.onlyCalledLocally(obj) {
					return // local closure invoked directly: stack-allocated
				}
			}
		}
	}
	c.flag(lit.Pos(), "closure captures %s and may escape to the heap", strings.Join(captured, ", "))
}

// captures lists the enclosing function's variables referenced by the
// literal (declared outside the literal but inside the enclosing
// declaration, receiver and parameters included).
func (c *hotChecker) captures(lit *ast.FuncLit) []string {
	decl := c.fi.Decl
	seen := make(map[*types.Var]bool)
	var names []string
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := c.u.Info.Uses[id].(*types.Var)
		if !ok || v.IsField() || seen[v] {
			return true
		}
		if v.Pos() >= lit.Pos() && v.Pos() < lit.End() {
			return true // declared inside the literal
		}
		if v.Pos() < decl.Pos() || v.Pos() >= decl.End() {
			return true // package-level or foreign
		}
		seen[v] = true
		names = append(names, v.Name())
		return true
	})
	return names
}

// onlyCalledLocally reports whether every use of obj in the enclosing
// function is as the operand of a direct call.
func (c *hotChecker) onlyCalledLocally(obj types.Object) bool {
	ok := true
	var stack []ast.Node
	ast.Inspect(c.fi.Decl.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		id, isIdent := n.(*ast.Ident)
		if !isIdent || c.u.Info.Uses[id] != obj {
			return true
		}
		if len(stack) < 2 {
			ok = false
			return true
		}
		call, isCall := stack[len(stack)-2].(*ast.CallExpr)
		if !isCall || ast.Unparen(call.Fun) != ast.Expr(id) {
			ok = false
		}
		return true
	})
	return ok
}

// paramOnlyCalled reports whether parameter idx of the function is only
// ever used in call position inside its body — the callback cannot be
// stored or re-passed, so a closure argument does not escape through it.
func paramOnlyCalled(fi *FuncInfo, idx int) bool {
	var obj types.Object
	i := 0
	for _, field := range fi.Decl.Type.Params.List {
		if len(field.Names) == 0 {
			if i == idx {
				return true // unnamed: the callee cannot use it at all
			}
			i++
			continue
		}
		for _, name := range field.Names {
			if i == idx {
				obj = fi.Unit.Info.Defs[name]
			}
			i++
		}
	}
	if obj == nil {
		return false
	}
	ok := true
	var stack []ast.Node
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		id, isIdent := n.(*ast.Ident)
		if !isIdent || fi.Unit.Info.Uses[id] != obj {
			return true
		}
		if len(stack) < 2 {
			ok = false
			return true
		}
		call, isCall := stack[len(stack)-2].(*ast.CallExpr)
		if !isCall || ast.Unparen(call.Fun) != ast.Expr(id) {
			ok = false
		}
		return true
	})
	return ok
}

// --- type predicates -----------------------------------------------------

func isSliceType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Slice)
	return ok
}

func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isIntegerType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Uint8 || b.Kind() == types.Rune || b.Kind() == types.Int32)
}

func isUntypedNil(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Kind() == types.UntypedNil
}

// isPointerShaped reports whether the gc runtime stores the value directly
// in an interface's data word (no boxing allocation).
func isPointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return t.Underlying().(*types.Basic).Kind() == types.UnsafePointer
	}
	return false
}
