package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// LockScope flags reads and writes of mutex-guarded map and slice fields
// performed outside the guarding lock's scope — the PR 2 exporter bug
// class, where WriteText copied family names under RLock but iterated the
// live series maps after RUnlock, a fatal concurrent map read/write under
// racing scrapes.
//
// Guarded fields are inferred from the standard Go layout convention: in a
// struct, a sync.Mutex or sync.RWMutex field guards the map- and
// slice-typed fields declared after it in the same field group (a group
// ends at a blank line or a doc comment). Pointer and scalar fields are
// not tracked — scalars race benignly through the race detector's eyes
// only, and pointer-typed structures cannot be proven by a local scan —
// so the analyzer concentrates on the aliasing containers whose races
// corrupt memory.
//
// Within each function the analyzer walks statements in source order,
// tracking the lock state of each holder expression (`r.mu`,
// `c.shards[i].mu`, …): Lock/RLock set it, Unlock/RUnlock clear it, and a
// deferred unlock holds it to function exit. A guarded access requires the
// lock held (a write under an RWMutex requires the exclusive Lock, not
// RLock). Accesses rooted at values constructed locally (`c :=
// &routeCache{…}`) are exempt: an unpublished value cannot be shared yet.
// Helpers whose contract is "caller holds mu" carry a
// `//lint:ignore lockscope caller holds …` directive.
type LockScope struct{}

// NewLockScope returns the analyzer.
func NewLockScope() *LockScope { return &LockScope{} }

// Name implements Analyzer.
func (*LockScope) Name() string { return "lockscope" }

// Doc implements Analyzer.
func (*LockScope) Doc() string {
	return "mutex-guarded map/slice fields must only be accessed while the guarding lock is held"
}

// guardInfo describes the mutex guarding one field.
type guardInfo struct {
	muName string // name of the mutex field in the same struct
	rw     bool   // guarding mutex is an RWMutex
}

// Run implements Analyzer.
func (a *LockScope) Run(u *Unit) []Diagnostic {
	guards := a.collectGuards(u)
	if len(guards) == 0 {
		return nil
	}
	var diags []Diagnostic
	for _, f := range u.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			s := &lockScanner{unit: u, guards: guards, state: make(map[string]*lockState), unpublished: make(map[types.Object]bool)}
			s.scanStmt(fd.Body)
			diags = append(diags, s.diags...)
		}
	}
	return diags
}

// collectGuards maps each guarded field object to its guarding mutex,
// applying the field-group convention.
func (a *LockScope) collectGuards(u *Unit) map[*types.Var]guardInfo {
	guards := make(map[*types.Var]guardInfo)
	for _, f := range u.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok || st.Fields == nil {
				return true
			}
			var cur *guardInfo // mutex of the current field group, if any
			var prevEnd token.Pos
			for _, field := range st.Fields.List {
				// A doc comment or a blank line starts a new group: the
				// convention is that a mutex guards the fields directly
				// beneath it.
				if prevEnd.IsValid() {
					gap := u.Position(field.Pos()).Line - u.Position(prevEnd).Line
					if field.Doc != nil || gap > 1 {
						cur = nil
					}
				}
				prevEnd = field.End()
				if len(field.Names) == 0 {
					continue // embedded field; not part of the convention
				}
				ft := u.Info.TypeOf(field.Type)
				if ft == nil {
					continue
				}
				if rw, isMu := mutexKind(ft); isMu {
					cur = &guardInfo{muName: field.Names[0].Name, rw: rw}
					continue
				}
				if cur == nil {
					continue
				}
				switch ft.Underlying().(type) {
				case *types.Map, *types.Slice:
					for _, name := range field.Names {
						if v, ok := u.Info.Defs[name].(*types.Var); ok {
							guards[v] = *cur
						}
					}
				}
			}
			return true
		})
	}
	return guards
}

// lockState is the tracked state of one holder expression ("r.mu").
type lockState struct {
	mode   int  // 0 = unlocked, 1 = read-locked, 2 = write-locked
	sticky bool // a deferred unlock pins the mode until function exit
}

const (
	lockNone = iota
	lockRead
	lockWrite
)

// lockScanner walks one function body in source order.
type lockScanner struct {
	unit        *Unit
	guards      map[*types.Var]guardInfo
	state       map[string]*lockState // holder expression → state
	unpublished map[types.Object]bool // locals still private to this function
	diags       []Diagnostic
}

func (s *lockScanner) stateFor(key string) *lockState {
	st, ok := s.state[key]
	if !ok {
		st = &lockState{}
		s.state[key] = st
	}
	return st
}

// lockCall recognises m.Lock / m.RLock / m.Unlock / m.RUnlock / m.TryLock /
// m.TryRLock calls on a sync mutex and returns the holder key and the
// transition.
func (s *lockScanner) lockCall(call *ast.CallExpr) (key, method string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock", "TryLock", "TryRLock":
	default:
		return "", "", false
	}
	t := s.unit.Info.TypeOf(sel.X)
	if t == nil {
		return "", "", false
	}
	if _, isMu := mutexKind(t); !isMu {
		return "", "", false
	}
	return types.ExprString(sel.X), sel.Sel.Name, true
}

// scanStmt processes one statement, updating lock state and checking
// guarded accesses, in source order.
func (s *lockScanner) scanStmt(stmt ast.Stmt) {
	switch st := stmt.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, inner := range st.List {
			s.scanStmt(inner)
		}
	case *ast.ExprStmt:
		if call, ok := st.X.(*ast.CallExpr); ok {
			if key, method, isLock := s.lockCall(call); isLock {
				s.transition(key, method, false)
				return
			}
		}
		s.checkExpr(st.X, false)
	case *ast.DeferStmt:
		if key, method, isLock := s.lockCall(st.Call); isLock {
			s.transition(key, method, true)
			return
		}
		s.checkExpr(st.Call, false)
	case *ast.AssignStmt:
		for _, rhs := range st.Rhs {
			s.checkExpr(rhs, false)
		}
		for _, lhs := range st.Lhs {
			s.checkExpr(lhs, true)
		}
		s.trackUnpublished(st)
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						s.checkExpr(v, false)
					}
					s.trackUnpublishedSpec(vs)
				}
			}
		}
	case *ast.IfStmt:
		s.scanStmt(st.Init)
		s.checkExpr(st.Cond, false)
		s.scanStmt(st.Body)
		s.scanStmt(st.Else)
	case *ast.ForStmt:
		s.scanStmt(st.Init)
		if st.Cond != nil {
			s.checkExpr(st.Cond, false)
		}
		s.scanStmt(st.Body)
		s.scanStmt(st.Post)
	case *ast.RangeStmt:
		s.checkExpr(st.X, false)
		s.scanStmt(st.Body)
	case *ast.SwitchStmt:
		s.scanStmt(st.Init)
		if st.Tag != nil {
			s.checkExpr(st.Tag, false)
		}
		s.scanStmt(st.Body)
	case *ast.TypeSwitchStmt:
		s.scanStmt(st.Init)
		s.scanStmt(st.Assign)
		s.scanStmt(st.Body)
	case *ast.CaseClause:
		for _, e := range st.List {
			s.checkExpr(e, false)
		}
		for _, inner := range st.Body {
			s.scanStmt(inner)
		}
	case *ast.SelectStmt:
		s.scanStmt(st.Body)
	case *ast.CommClause:
		s.scanStmt(st.Comm)
		for _, inner := range st.Body {
			s.scanStmt(inner)
		}
	case *ast.ReturnStmt:
		for _, e := range st.Results {
			s.checkExpr(e, false)
		}
	case *ast.GoStmt:
		// A goroutine launched here runs after the current lock region may
		// have ended: scan its body against an empty lock state.
		saved := s.state
		s.state = make(map[string]*lockState)
		s.checkExpr(st.Call, false)
		s.state = saved
	case *ast.SendStmt:
		s.checkExpr(st.Chan, false)
		s.checkExpr(st.Value, false)
	case *ast.IncDecStmt:
		s.checkExpr(st.X, true)
	case *ast.LabeledStmt:
		s.scanStmt(st.Stmt)
	case *ast.BranchStmt, *ast.EmptyStmt:
	default:
		// Anything unanticipated: conservatively check contained
		// expressions as reads.
		ast.Inspect(stmt, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok {
				s.checkExpr(e, false)
				return false
			}
			return true
		})
	}
}

// transition applies one lock call to the holder's state.
func (s *lockScanner) transition(key, method string, deferred bool) {
	st := s.stateFor(key)
	switch method {
	case "Lock", "TryLock":
		st.mode = lockWrite
	case "RLock", "TryRLock":
		st.mode = lockRead
	case "Unlock", "RUnlock":
		if deferred {
			// defer mu.Unlock(): held until function exit.
			st.sticky = true
		} else if !st.sticky {
			st.mode = lockNone
		}
	}
}

// trackUnpublished records locals bound to freshly constructed values:
// accesses through them need no lock until the value escapes.
func (s *lockScanner) trackUnpublished(st *ast.AssignStmt) {
	if st.Tok != token.DEFINE {
		return
	}
	for i, lhs := range st.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || i >= len(st.Rhs) {
			continue
		}
		if isFreshValue(st.Rhs[i]) {
			if obj := s.unit.Info.Defs[id]; obj != nil {
				s.unpublished[obj] = true
			}
		}
	}
}

func (s *lockScanner) trackUnpublishedSpec(vs *ast.ValueSpec) {
	for i, name := range vs.Names {
		if i < len(vs.Values) && isFreshValue(vs.Values[i]) {
			if obj := s.unit.Info.Defs[name]; obj != nil {
				s.unpublished[obj] = true
			}
		}
	}
}

// isFreshValue reports whether e constructs a brand-new value: a composite
// literal, &composite literal, or new(T).
func isFreshValue(e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			_, isLit := x.X.(*ast.CompositeLit)
			return isLit
		}
	case *ast.CallExpr:
		if id, ok := x.Fun.(*ast.Ident); ok && id.Name == "new" {
			return true
		}
	}
	return false
}

// checkExpr inspects an expression tree for guarded-field accesses. write
// marks the outermost expression as the target of an assignment.
func (s *lockScanner) checkExpr(e ast.Expr, write bool) {
	if e == nil {
		return
	}
	switch x := e.(type) {
	case *ast.SelectorExpr:
		s.checkAccess(x, write)
		s.checkExpr(x.X, false)
	case *ast.IndexExpr:
		// Writing x.f[k] mutates the container f itself for maps and
		// element storage for slices; both require the write lock.
		s.checkExpr(x.X, write)
		s.checkExpr(x.Index, false)
	case *ast.StarExpr:
		s.checkExpr(x.X, write)
	case *ast.ParenExpr:
		s.checkExpr(x.X, write)
	case *ast.UnaryExpr:
		s.checkExpr(x.X, write || x.Op == token.AND)
	case *ast.BinaryExpr:
		s.checkExpr(x.X, false)
		s.checkExpr(x.Y, false)
	case *ast.CallExpr:
		// delete(x.f, k) and append-into writes arrive via AssignStmt;
		// delete is the one builtin that mutates through a call.
		if id, ok := x.Fun.(*ast.Ident); ok && id.Name == "delete" && len(x.Args) == 2 {
			s.checkExpr(x.Args[0], true)
			s.checkExpr(x.Args[1], false)
			return
		}
		s.checkExpr(x.Fun, false)
		for _, arg := range x.Args {
			s.checkExpr(arg, false)
		}
	case *ast.CompositeLit:
		for _, elt := range x.Elts {
			s.checkExpr(elt, false)
		}
	case *ast.KeyValueExpr:
		s.checkExpr(x.Value, false)
	case *ast.SliceExpr:
		s.checkExpr(x.X, write)
		s.checkExpr(x.Low, false)
		s.checkExpr(x.High, false)
		s.checkExpr(x.Max, false)
	case *ast.TypeAssertExpr:
		s.checkExpr(x.X, false)
	case *ast.FuncLit:
		// Function literals execute with whatever lock state holds when
		// they run; for synchronous callbacks (sort.Slice, g.Neighbors)
		// that is the current state, which we inherit. Goroutine bodies
		// are handled separately in scanStmt.
		s.scanStmt(x.Body)
	case *ast.Ident, *ast.BasicLit:
	default:
		ast.Inspect(e, func(n ast.Node) bool {
			if n == e {
				return true
			}
			if inner, ok := n.(ast.Expr); ok {
				s.checkExpr(inner, false)
				return false
			}
			return true
		})
	}
}

// checkAccess validates one selector against the guard table.
func (s *lockScanner) checkAccess(sel *ast.SelectorExpr, write bool) {
	selection, ok := s.unit.Info.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return
	}
	field, ok := selection.Obj().(*types.Var)
	if !ok {
		return
	}
	guard, guarded := s.guards[field]
	if !guarded {
		return
	}
	if root := rootIdent(sel.X); root != nil {
		if obj := objectOf(s.unit.Info, root); obj != nil && s.unpublished[obj] {
			return
		}
	}
	key := types.ExprString(sel.X) + "." + guard.muName
	st := s.state[key]
	mode := lockNone
	if st != nil {
		mode = st.mode
	}
	pos := s.unit.Position(sel.Sel.Pos())
	access := "read"
	if write {
		access = "write"
	}
	switch {
	case mode == lockNone:
		s.diags = append(s.diags, Diagnostic{
			Pos:      pos,
			Analyzer: "lockscope",
			Message: fmt.Sprintf("%s of %s, which is guarded by %s, outside the locked region",
				access, types.ExprString(sel), key),
		})
	case write && mode == lockRead && guard.rw:
		s.diags = append(s.diags, Diagnostic{
			Pos:      pos,
			Analyzer: "lockscope",
			Message: fmt.Sprintf("write to %s while holding only %s.RLock; writes require the exclusive Lock",
				types.ExprString(sel), key),
		})
	}
}
