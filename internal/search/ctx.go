package search

import (
	"context"
	"errors"
)

// CheckInterval is the number of lifecycle polls between actual
// context checks in the kernels' hot loops. The search loops call
// lifecycle.poll once per frontier pop (Iterative: once per node
// expansion); most calls cost one increment, one mask, and one
// predictable branch, and only every CheckInterval-th call pays the
// ctx.Err() read. 1024 keeps the amortised cost under the 2% hot-path
// budget (see BENCH_PR5.json) while bounding cancellation latency to
// the time of ~1024 expansions — tens of microseconds on the 100x100
// grid, far inside the 10ms serving target. Must be a power of two.
const CheckInterval = 1024

// Lifecycle errors. Kernels return them with the partial Trace
// accumulated so far, so callers can account for abandoned work.
var (
	// ErrCanceled reports that the request's context was canceled
	// mid-search (typically: the client hung up).
	ErrCanceled = errors.New("search: canceled")
	// ErrDeadline reports that the request's context deadline expired
	// mid-search (the server-side budget ran out).
	ErrDeadline = errors.New("search: deadline exceeded")
	// ErrBudget reports that the request exhausted its expansion budget
	// (see WithBudget) before reaching the destination.
	ErrBudget = errors.New("search: expansion budget exhausted")
)

// FromContextErr maps a context error onto the package's typed
// lifecycle errors: context.DeadlineExceeded becomes ErrDeadline,
// context.Canceled becomes ErrCanceled, nil stays nil, and anything
// else passes through unchanged. Kernels outside this package (the
// contraction-hierarchy engine) return raw context errors; the planner
// normalises them with this so every layer above sees one error
// vocabulary.
func FromContextErr(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, context.DeadlineExceeded):
		return ErrDeadline
	case errors.Is(err, context.Canceled):
		return ErrCanceled
	}
	return err
}

// ctxErr polls ctx and maps its error onto the typed lifecycle errors.
func ctxErr(ctx context.Context) error {
	return FromContextErr(ctx.Err())
}

// budgetKey carries the per-request expansion budget through a context.
type budgetKey struct{}

// WithBudget returns a context carrying an expansion budget: a kernel
// running under the returned context stops with ErrBudget once it has
// expanded max nodes. max <= 0 means unlimited. The admission layer
// derives budgets per algorithm class — the Iterative transitive-closure
// kernel, whose work is insensitive to path length, gets the tightest.
func WithBudget(ctx context.Context, max int) context.Context {
	return context.WithValue(ctx, budgetKey{}, max)
}

// BudgetFrom returns the expansion budget carried by ctx, 0 (unlimited)
// when none was set.
func BudgetFrom(ctx context.Context) int {
	max, _ := ctx.Value(budgetKey{}).(int)
	return max
}

// lifecycle is the per-query cancellation state each kernel polls from
// its main loop. The context value lookup happens once at construction,
// never per pop.
type lifecycle struct {
	ctx    context.Context
	budget int    // max expansions; <=0 unlimited
	calls  uint32 // poll calls since the query started
}

// newLifecycle prepares the poller and performs the entry check, so a
// context that is already dead fails before any search work. The
// returned error, if non-nil, is the typed lifecycle error to surface.
func newLifecycle(ctx context.Context) (lifecycle, error) {
	return lifecycle{ctx: ctx, budget: BudgetFrom(ctx)}, ctxErr(ctx)
}

// poll is the amortised lifecycle check: callers invoke it once per
// frontier pop with their running expansion count. The expansion budget
// is an integer compare on every call (exact, cheap); the context is
// consulted only every CheckInterval-th call.
func (lc *lifecycle) poll(expansions int) error {
	if lc.budget > 0 && expansions >= lc.budget {
		return ErrBudget
	}
	lc.calls++
	if lc.calls&(CheckInterval-1) != 0 {
		return nil
	}
	return ctxErr(lc.ctx)
}
