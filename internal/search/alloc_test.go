package search

import (
	"context"
	"testing"

	"repro/internal/estimator"
	"repro/internal/graph"
)

// chainWithIsland builds a ten-node directed chain plus one isolated node.
// A query toward the island drives the full warm search loop — frontier
// churn, label stamping, heap traffic — and returns "not found" without
// materialising a result path, isolating the steady-state loop from the
// one deliberate result allocation the //lint:ignore directives bless.
func chainWithIsland(t *testing.T) (g *graph.Graph, s, island graph.NodeID) {
	t.Helper()
	b := graph.NewBuilder(11, 10)
	for i := 0; i < 11; i++ {
		b.AddNode(float64(i), 0)
	}
	for i := 0; i < 9; i++ {
		b.AddEdge(graph.NodeID(i), graph.NodeID(i+1), 1)
	}
	b.AddEdge(9, 0, 1)
	built, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return built, 0, 10
}

// TestHotpathKernelsZeroAlloc is the gate test behind the //atis:hotpath
// annotations on IterativeCtx, BestFirstCtx, and BidirectionalCtx: after
// the workspace pool is warm, a full search that finds no path performs
// zero allocations per run. atislint's hotpath analyzer proves the same
// property statically; this test pins it against the runtime.
func TestHotpathKernelsZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("the race detector defeats sync.Pool caching, so allocs/op is not meaningful under -race")
	}
	g, s, island := chainWithIsland(t)
	ctx := context.Background()
	zero := estimator.Zero()

	// Warm the workspace pool, the reverse-view cache, and every scratch
	// slice each kernel grows on its first run.
	for i := 0; i < 4; i++ {
		if _, err := IterativeCtx(ctx, g, s, island); err != nil {
			t.Fatal(err)
		}
		if _, err := BestFirstCtx(ctx, g, s, island, Options{Estimator: zero}); err != nil {
			t.Fatal(err)
		}
		if _, err := BidirectionalCtx(ctx, g, s, island); err != nil {
			t.Fatal(err)
		}
	}

	kernels := []struct {
		name string
		run  func() (Result, error)
	}{
		{"IterativeCtx", func() (Result, error) { return IterativeCtx(ctx, g, s, island) }},
		{"BestFirstCtx", func() (Result, error) { return BestFirstCtx(ctx, g, s, island, Options{Estimator: zero}) }},
		{"BidirectionalCtx", func() (Result, error) { return BidirectionalCtx(ctx, g, s, island) }},
	}
	for _, k := range kernels {
		t.Run(k.name, func(t *testing.T) {
			allocs := testing.AllocsPerRun(100, func() {
				res, err := k.run()
				if err != nil || res.Found {
					t.Errorf("unexpected outcome: found=%v err=%v", res.Found, err)
				}
			})
			if allocs != 0 {
				t.Errorf("warm %s allocates %.1f times per run, want 0", k.name, allocs)
			}
		})
	}
}
