package search

import (
	"math"
	"reflect"
	"sync"
	"testing"

	"repro/internal/estimator"
	"repro/internal/graph"
	"repro/internal/gridgen"
)

// runners exercises every algorithm that draws on the workspace pool.
func workspaceRunners() map[string]func(g *graph.Graph, s, d graph.NodeID) (Result, error) {
	return map[string]func(g *graph.Graph, s, d graph.NodeID) (Result, error){
		"dijkstra": Dijkstra,
		"astar-euclidean": func(g *graph.Graph, s, d graph.NodeID) (Result, error) {
			return AStar(g, s, d, estimator.Euclidean())
		},
		"astar-manhattan": func(g *graph.Graph, s, d graph.NodeID) (Result, error) {
			return AStar(g, s, d, estimator.Manhattan())
		},
		"iterative":     Iterative,
		"bidirectional": Bidirectional,
		"scan-frontier": func(g *graph.Graph, s, d graph.NodeID) (Result, error) {
			return BestFirst(g, s, d, Options{Estimator: estimator.Zero(), Frontier: FrontierScan})
		},
		"dup-frontier": func(g *graph.Graph, s, d graph.NodeID) (Result, error) {
			return BestFirst(g, s, d, Options{Estimator: estimator.Zero(), Frontier: FrontierDuplicates})
		},
	}
}

// TestWorkspaceReuseDeterministic re-runs every algorithm many times on the
// same pair: pooled workspaces must not leak any state between queries, so
// every run — including runs that recycle a dirty workspace — must return
// byte-identical results and traces.
func TestWorkspaceReuseDeterministic(t *testing.T) {
	g := gridgen.MustGenerate(gridgen.Config{K: 12, Model: gridgen.Variance, Seed: 7})
	s, d := gridgen.Pair(12, gridgen.Diagonal, 7)
	for name, run := range workspaceRunners() {
		first, err := run(g, s, d)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !first.Found {
			t.Fatalf("%s: no path found", name)
		}
		for i := 0; i < 10; i++ {
			got, err := run(g, s, d)
			if err != nil {
				t.Fatalf("%s run %d: %v", name, i, err)
			}
			if !reflect.DeepEqual(got, first) {
				t.Fatalf("%s run %d differs from first:\n got %+v\nwant %+v", name, i, got, first)
			}
		}
	}
}

// TestWorkspaceAcrossGraphSizes interleaves queries over graphs of different
// sizes so recycled workspaces must both grow and (logically) shrink; stale
// labels from the larger graph must never bleed into the smaller one.
func TestWorkspaceAcrossGraphSizes(t *testing.T) {
	big := gridgen.MustGenerate(gridgen.Config{K: 15, Model: gridgen.Variance, Seed: 3})
	small := gridgen.MustGenerate(gridgen.Config{K: 4, Model: gridgen.Uniform, Seed: 3})
	bs, bd := gridgen.Pair(15, gridgen.Diagonal, 3)

	wantBig, err := Dijkstra(big, bs, bd)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		gotBig, err := Dijkstra(big, bs, bd)
		if err != nil {
			t.Fatal(err)
		}
		if gotBig.Cost != wantBig.Cost {
			t.Fatalf("big cost drifted to %v, want %v", gotBig.Cost, wantBig.Cost)
		}
		gotSmall, err := Dijkstra(small, 0, 15)
		if err != nil {
			t.Fatal(err)
		}
		if gotSmall.Cost != 6 { // corner to corner on a 4×4 unit grid
			t.Fatalf("small cost = %v, want 6", gotSmall.Cost)
		}
	}
}

// TestWorkspaceConcurrentQueries hammers the pool from many goroutines (the
// race detector makes this a real concurrency test under `go test -race`).
// Every goroutine must see exactly the single-threaded result.
func TestWorkspaceConcurrentQueries(t *testing.T) {
	g := gridgen.MustGenerate(gridgen.Config{K: 10, Model: gridgen.Variance, Seed: 11})
	s, d := gridgen.Pair(10, gridgen.Diagonal, 11)
	runners := workspaceRunners()

	want := map[string]Result{}
	for name, run := range runners {
		res, err := run(g, s, d)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		want[name] = res
	}

	var wg sync.WaitGroup
	errs := make(chan error, 1)
	for name, run := range runners {
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func(name string, run func(*graph.Graph, graph.NodeID, graph.NodeID) (Result, error)) {
				defer wg.Done()
				for i := 0; i < 25; i++ {
					got, err := run(g, s, d)
					if err != nil || !reflect.DeepEqual(got, want[name]) {
						select {
						case errs <- errOrMismatch(name, err):
						default:
						}
						return
					}
				}
			}(name, run)
		}
	}
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
}

func errOrMismatch(name string, err error) error {
	if err != nil {
		return err
	}
	return &mismatchError{name}
}

type mismatchError struct{ name string }

func (e *mismatchError) Error() string {
	return e.name + ": concurrent run diverged from single-threaded result"
}

// TestWorkspaceWithinAndSingleSource covers the non-Result entry points'
// pooled state: Within's labels and SingleSource's heap.
func TestWorkspaceWithinAndSingleSource(t *testing.T) {
	g := gridgen.MustGenerate(gridgen.Config{K: 8, Model: gridgen.Uniform, Seed: 5})
	wantReach, err := Within(g, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	wantDist, _ := SingleSource(g, 0)
	for i := 0; i < 5; i++ {
		reach, err := Within(g, 0, 3)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(reach, wantReach) {
			t.Fatalf("Within drifted on run %d", i)
		}
		dist, _ := SingleSource(g, 0)
		if !reflect.DeepEqual(dist, wantDist) {
			t.Fatalf("SingleSource drifted on run %d", i)
		}
	}
	// SingleSource's returned slices must be caller-owned, not pooled.
	dist1, prev1 := SingleSource(g, 0)
	dist2, prev2 := SingleSource(g, 7)
	if &dist1[0] == &dist2[0] || &prev1[0] == &prev2[0] {
		t.Fatal("SingleSource returned aliased slices across calls")
	}
	if math.IsInf(dist1[0], 1) || dist1[0] != 0 {
		t.Fatalf("dist1[0] = %v, want 0", dist1[0])
	}
}
