//go:build race

package search

// raceEnabled reports whether this test binary was built with the race
// detector, which deliberately bypasses sync.Pool caching to widen race
// windows — making allocs-per-op assertions meaningless under -race.
const raceEnabled = true
