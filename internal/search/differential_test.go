package search

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/ch"
	"repro/internal/estimator"
	"repro/internal/graph"
	"repro/internal/gridgen"
)

// differential_test.go cross-checks the search kernels against each
// other: on any graph, Iterative, Dijkstra, A* with an admissible
// estimator, Bidirectional, and the contraction-hierarchy engine must
// agree on reachability and on the shortest-path cost (paths may differ
// when ties exist, but never costs). A metamorphic pass then scales every
// edge cost by a constant λ and asserts the optimal cost scales by exactly
// λ. Run under -race via `make check`, this doubles as a concurrency
// shakeout of the pooled workspaces the kernels share.

const costTol = 1e-9

type kernel struct {
	name string
	run  func(g *graph.Graph, s, d graph.NodeID) (Result, error)
}

// chIndexes caches one contraction hierarchy per graph for the CH pseudo-
// kernel below, rebuilt whenever the graph's cost version has moved — the
// same staleness rule the route service applies, exercised here every time
// a metamorphic test mutates costs between runs. sync.Map because the
// differential harness also runs under -race with concurrent subtests.
var chIndexes sync.Map // *graph.Graph → *ch.Index

// runCH adapts the contraction-hierarchy engine to the kernel signature,
// (re)preprocessing on demand. Its settled/relaxed counters map onto the
// trace's expansion counters like every other kernel's.
func runCH(g *graph.Graph, s, d graph.NodeID) (Result, error) {
	want := g.CostVersion()
	ix, ok := func() (*ch.Index, bool) {
		v, loaded := chIndexes.Load(g)
		if !loaded {
			return nil, false
		}
		ix := v.(*ch.Index)
		return ix, ix.CostVersion() == want
	}()
	if !ok {
		var err error
		ix, err = ch.Build(g, ch.Options{})
		if err != nil {
			return Result{}, err
		}
		chIndexes.Store(g, ix)
	}
	res, err := ix.Query(s, d)
	if err != nil {
		return Result{}, err
	}
	return Result{
		Found: res.Found,
		Path:  res.Path,
		Cost:  res.Cost,
		Trace: Trace{
			Iterations:  res.Settled,
			Expansions:  res.Settled,
			Relaxations: res.Relaxed,
		},
	}, nil
}

// kernelsWith enumerates the implementations under differential test,
// with A* using the given estimator. The Skewed cost model is
// deliberately absent from the generated graphs: its 0.1-cost skewed
// arcs undercut geometric length, which would make the Euclidean
// estimator inadmissible and exempt A* from optimality.
func kernelsWith(est *estimator.Estimator) []kernel {
	return []kernel{
		{"iterative", Iterative},
		{"dijkstra", Dijkstra},
		{"astar-" + est.String(), func(g *graph.Graph, s, d graph.NodeID) (Result, error) {
			return AStar(g, s, d, est)
		}},
		{"bidirectional", Bidirectional},
		{"ch", runCH},
	}
}

// checkPath validates a reported path end-to-end: endpoints, edge
// existence, and that the summed arc costs reproduce the reported cost.
func checkPath(t *testing.T, g *graph.Graph, s, d graph.NodeID, res Result) {
	t.Helper()
	nodes := res.Path.Nodes
	if len(nodes) == 0 || nodes[0] != s || nodes[len(nodes)-1] != d {
		t.Fatalf("path endpoints %v do not span %d→%d", nodes, s, d)
	}
	sum := 0.0
	for i := 0; i+1 < len(nodes); i++ {
		c, ok := g.ArcCost(nodes[i], nodes[i+1])
		if !ok {
			t.Fatalf("path uses nonexistent edge %d→%d", nodes[i], nodes[i+1])
		}
		sum += c
	}
	if math.Abs(sum-res.Cost) > costTol*(1+math.Abs(res.Cost)) {
		t.Fatalf("path cost %v does not match reported cost %v", sum, res.Cost)
	}
}

// runAll executes every kernel on (s, d) and asserts pairwise agreement
// on Found and Cost, returning the agreed optimal cost. est is the
// admissible estimator handed to A* — callers scaling edge costs below
// geometric length must scale the estimator down to match.
func runAll(t *testing.T, g *graph.Graph, s, d graph.NodeID, est *estimator.Estimator) (found bool, cost float64) {
	t.Helper()
	type outcome struct {
		name string
		res  Result
	}
	var outs []outcome
	for _, k := range kernelsWith(est) {
		res, err := k.run(g, s, d)
		if err != nil {
			t.Fatalf("%s(%d,%d): %v", k.name, s, d, err)
		}
		if res.Found {
			checkPath(t, g, s, d, res)
		}
		outs = append(outs, outcome{k.name, res})
	}
	base := outs[0]
	for _, o := range outs[1:] {
		if o.res.Found != base.res.Found {
			t.Fatalf("%d→%d: %s Found=%v but %s Found=%v",
				s, d, base.name, base.res.Found, o.name, o.res.Found)
		}
		if base.res.Found {
			diff := math.Abs(o.res.Cost - base.res.Cost)
			if diff > costTol*(1+math.Abs(base.res.Cost)) {
				t.Fatalf("%d→%d: %s cost %v disagrees with %s cost %v",
					s, d, base.name, base.res.Cost, o.name, o.res.Cost)
			}
		}
	}
	return base.res.Found, base.res.Cost
}

// TestKernelsAgreeOnRandomGrids is the differential harness proper:
// randomized endpoint pairs over Uniform and Variance grids of several
// sizes, all kernels in lockstep.
func TestKernelsAgreeOnRandomGrids(t *testing.T) {
	cases := []struct {
		k     int
		model gridgen.CostModel
		seed  int64
	}{
		{4, gridgen.Uniform, 1},
		{7, gridgen.Uniform, 2},
		{7, gridgen.Variance, 3},
		{11, gridgen.Variance, 4},
		{13, gridgen.Variance, 5},
	}
	pairs := 12
	if testing.Short() {
		pairs = 4
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.model.String(), func(t *testing.T) {
			g, err := gridgen.Generate(gridgen.Config{K: tc.k, Model: tc.model, Seed: tc.seed})
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(tc.seed * 7919))
			n := g.NumNodes()
			for i := 0; i < pairs; i++ {
				s := graph.NodeID(rng.Intn(n))
				d := graph.NodeID(rng.Intn(n))
				found, _ := runAll(t, g, s, d, estimator.Euclidean())
				if !found {
					t.Fatalf("%d→%d unreachable on a connected grid", s, d)
				}
			}
			// Degenerate pair: s == d must cost zero everywhere.
			s := graph.NodeID(rng.Intn(n))
			if found, cost := runAll(t, g, s, s, estimator.Euclidean()); !found || cost != 0 {
				t.Fatalf("%d→%d: want found at cost 0, got found=%v cost=%v", s, s, found, cost)
			}
		})
	}
}

// TestCHAgreesAfterRandomMutations interleaves random SetArcCost mutations
// with full-kernel agreement rounds. Every mutation bumps the graph's cost
// version, so the CH pseudo-kernel's cached hierarchy goes stale and must
// rebuild before its next answer — if the staleness check ever consulted
// the wrong version, the stale hierarchy would answer with costs from a
// retired round and the agreement assertion would catch it.
func TestCHAgreesAfterRandomMutations(t *testing.T) {
	base, err := gridgen.Generate(gridgen.Config{K: 9, Model: gridgen.Variance, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	g := base.Clone()
	rng := rand.New(rand.NewSource(77))
	n := g.NumNodes()
	edges := g.Edges()
	rounds, pairs, mutations := 5, 6, 8
	if testing.Short() {
		rounds = 2
	}
	for round := 0; round < rounds; round++ {
		for i := 0; i < pairs; i++ {
			s := graph.NodeID(rng.Intn(n))
			d := graph.NodeID(rng.Intn(n))
			runAll(t, g, s, d, estimator.Zero())
		}
		// Mutate: costs may rise or fall but stay ≥ 0.1 so the graph stays
		// valid. The estimator above is Zero (always admissible), because
		// lowered costs would break Euclidean's admissibility.
		for i := 0; i < mutations; i++ {
			e := edges[rng.Intn(len(edges))]
			cur, _ := g.ArcCost(e.Tail, e.Head)
			factor := 0.5 + rng.Float64()*1.5
			if _, err := g.SetArcCost(e.Tail, e.Head, math.Max(0.1, cur*factor)); err != nil {
				t.Fatalf("mutating %d→%d: %v", e.Tail, e.Head, err)
			}
		}
	}
}

// TestMetamorphicCostScaling checks the scaling relation: multiplying
// every edge cost by λ must multiply the optimal cost by exactly λ,
// for every kernel. The scaled graph is a Clone mutated through
// SetArcCost, which also exercises the costVersion bump path that
// invalidates ReverseView — Bidirectional on the clone would silently
// reuse a stale reverse adjacency if that bump were ever lost.
func TestMetamorphicCostScaling(t *testing.T) {
	g, err := gridgen.Generate(gridgen.Config{K: 9, Model: gridgen.Variance, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	for _, lambda := range []float64{0.25, 3} {
		scaled := g.Clone()
		for _, e := range g.Edges() {
			if _, err := scaled.SetArcCost(e.Tail, e.Head, e.Cost*lambda); err != nil {
				t.Fatalf("scaling edge %d→%d: %v", e.Tail, e.Head, err)
			}
		}
		// Euclidean is admissible on the base grid because every edge
		// costs at least its unit geometric length; after scaling by
		// λ < 1 that no longer holds, so A* on the scaled graph gets the
		// estimator scaled by min(1, λ) to stay admissible.
		scaledEst := estimator.Euclidean()
		if lambda < 1 {
			scaledEst = estimator.Scaled(estimator.Euclidean(), lambda)
		}
		rng := rand.New(rand.NewSource(int64(lambda * 1000)))
		n := g.NumNodes()
		for i := 0; i < 8; i++ {
			s := graph.NodeID(rng.Intn(n))
			d := graph.NodeID(rng.Intn(n))
			_, base := runAll(t, g, s, d, estimator.Euclidean())
			_, got := runAll(t, scaled, s, d, scaledEst)
			want := base * lambda
			if math.Abs(got-want) > costTol*(1+math.Abs(want)) {
				t.Fatalf("λ=%v %d→%d: scaled cost %v, want %v (base %v)", lambda, s, d, got, want, base)
			}
		}
	}
}
