package search

import (
	"sync"
	"sync/atomic"

	"repro/internal/telemetry"
)

// Recorder observes completed search runs. The contract is deliberately
// coarse: the kernels accumulate their work accounting in the per-query
// Trace exactly as before, and a single ObserveSearch call delivers it when
// the run finishes — nothing is recorded per node or per edge, so the hot
// loops carry no instrumentation cost at all.
//
// Zero-cost-when-disabled contract: with no recorder installed (the
// default), each entry point pays one atomic load and a nil check per
// query; no timestamps are taken and no allocations happen. The telemetry
// overhead benchmark (make bench-telemetry) holds this under 2%.
type Recorder interface {
	// ObserveSearch is called once per completed run with the algorithm
	// label (for example "dijkstra" or "astar-euclidean"), the wall time of
	// the run in seconds, and its Trace.
	ObserveSearch(algo string, seconds float64, tr Trace)
	// ObserveWorkspace is called on every workspace acquisition; pooled is
	// false when the pool had to allocate a fresh workspace.
	ObserveWorkspace(pooled bool)
}

// recorderBox wraps the interface in a concrete type so atomic.Value never
// sees inconsistently typed stores.
type recorderBox struct{ r Recorder }

var recorder atomic.Value // recorderBox

// SetRecorder installs r as the package's recorder; nil disables recording.
// Installation is atomic and may happen while queries are in flight —
// runs that already loaded the previous recorder finish against it.
func SetRecorder(r Recorder) { recorder.Store(recorderBox{r: r}) }

// activeRecorder returns the installed recorder, or nil when disabled.
func activeRecorder() Recorder {
	if b, ok := recorder.Load().(recorderBox); ok {
		return b.r
	}
	return nil
}

// EnableTelemetry installs a RegistryRecorder writing to reg and returns
// it. Call SetRecorder(nil) to disable again.
func EnableTelemetry(reg *telemetry.Registry) *RegistryRecorder {
	r := NewRegistryRecorder(reg)
	SetRecorder(r)
	return r
}

// RegistryRecorder is the standard Recorder: it forwards every observation
// into a telemetry.Registry under the atis_search_* and atis_workspace_*
// metric families, labelled by algorithm.
type RegistryRecorder struct {
	reg *telemetry.Registry

	mu      sync.RWMutex
	byAlgo  map[string]*algoInstruments
	pooled  *telemetry.Counter
	fresh   *telemetry.Counter
	buckets []float64
}

// algoInstruments caches one algorithm label's instrument set so the
// per-query path is a map read, not a registry lookup per counter.
type algoInstruments struct {
	runs         *telemetry.Counter
	expansions   *telemetry.Counter
	relaxations  *telemetry.Counter
	improvements *telemetry.Counter
	reopens      *telemetry.Counter
	heapPushes   *telemetry.Counter
	heapPops     *telemetry.Counter
	frontierPeak *telemetry.Gauge
	seconds      *telemetry.Histogram
}

// NewRegistryRecorder builds a recorder over reg without installing it.
func NewRegistryRecorder(reg *telemetry.Registry) *RegistryRecorder {
	return &RegistryRecorder{
		reg:    reg,
		byAlgo: make(map[string]*algoInstruments),
		pooled: reg.Counter("atis_search_workspace_acquires_total",
			"Search workspace acquisitions by pool outcome.", telemetry.L("result", "pooled")),
		fresh: reg.Counter("atis_search_workspace_acquires_total",
			"Search workspace acquisitions by pool outcome.", telemetry.L("result", "fresh")),
	}
}

// instruments returns (building on first use) the instrument set for algo.
func (r *RegistryRecorder) instruments(algo string) *algoInstruments {
	r.mu.RLock()
	ins, ok := r.byAlgo[algo]
	r.mu.RUnlock()
	if ok {
		return ins
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if ins, ok = r.byAlgo[algo]; ok {
		return ins
	}
	l := telemetry.L("algo", algo)
	ins = &algoInstruments{
		runs:         r.reg.Counter("atis_search_runs_total", "Completed search-kernel runs.", l),
		expansions:   r.reg.Counter("atis_search_expansions_total", "Nodes expanded (adjacency fetches).", l),
		relaxations:  r.reg.Counter("atis_search_relaxations_total", "Edges examined.", l),
		improvements: r.reg.Counter("atis_search_improvements_total", "Label decreases (path revisions).", l),
		reopens:      r.reg.Counter("atis_search_reopens_total", "Closed nodes reopened after a label improvement.", l),
		heapPushes:   r.reg.Counter("atis_search_heap_pushes_total", "Frontier insertions.", l),
		heapPops:     r.reg.Counter("atis_search_heap_pops_total", "Frontier removals.", l),
		frontierPeak: r.reg.Gauge("atis_search_frontier_peak", "High-water mark of the frontier size across runs.", l),
		seconds:      r.reg.Histogram("atis_search_seconds", "Search-kernel wall time per run.", nil, l),
	}
	r.byAlgo[algo] = ins
	return ins
}

// ObserveSearch implements Recorder.
func (r *RegistryRecorder) ObserveSearch(algo string, seconds float64, tr Trace) {
	ins := r.instruments(algo)
	ins.runs.Inc()
	ins.expansions.Add(uint64(tr.Expansions))
	ins.relaxations.Add(uint64(tr.Relaxations))
	ins.improvements.Add(uint64(tr.Improvements))
	ins.reopens.Add(uint64(tr.Reopens))
	ins.heapPushes.Add(tr.HeapPushes)
	ins.heapPops.Add(tr.HeapPops)
	ins.frontierPeak.SetMax(int64(tr.MaxFrontier))
	ins.seconds.Observe(seconds)
}

// ObserveWorkspace implements Recorder.
func (r *RegistryRecorder) ObserveWorkspace(pooled bool) {
	if pooled {
		r.pooled.Inc()
	} else {
		r.fresh.Inc()
	}
}
