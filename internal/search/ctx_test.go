package search

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/gridgen"
)

// countdownCtx is a context whose Err() starts failing after a fixed
// number of calls — a deterministic stand-in for "the client hung up
// mid-search". The kernels consult Err() once at entry and then every
// CheckInterval-th poll, so arming it to fail on the second call proves
// a kernel notices cancellation within one check interval of its main
// loop, with no goroutines or wall-clock in the test.
type countdownCtx struct {
	context.Context
	mu         sync.Mutex
	calls      int
	after      int
	canceledAt time.Time // when Err() first reported Canceled
}

func newCountdownCtx(after int) *countdownCtx {
	return &countdownCtx{Context: context.Background(), after: after}
}

func (c *countdownCtx) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.calls++
	if c.calls > c.after {
		if c.canceledAt.IsZero() {
			c.canceledAt = time.Now()
		}
		return context.Canceled
	}
	return nil
}

func lifecycleGrid(t testing.TB, k int) *graph.Graph {
	t.Helper()
	g, err := gridgen.Generate(gridgen.Config{K: k, Model: gridgen.Variance, Seed: 1993})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// kernelsUnderTest enumerates every ctx-taking kernel entry point so the
// lifecycle contract is asserted uniformly.
func kernelsUnderTest() map[string]func(context.Context, *graph.Graph, graph.NodeID, graph.NodeID) (Result, error) {
	return map[string]func(context.Context, *graph.Graph, graph.NodeID, graph.NodeID) (Result, error){
		"iterative": IterativeCtx,
		"dijkstra":  DijkstraCtx,
		"bidirectional": func(ctx context.Context, g *graph.Graph, s, d graph.NodeID) (Result, error) {
			return BidirectionalCtx(ctx, g, s, d)
		},
	}
}

func TestKernelsFailFastOnDeadCtx(t *testing.T) {
	g := lifecycleGrid(t, 10)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for name, kernel := range kernelsUnderTest() {
		res, err := kernel(ctx, g, 0, graph.NodeID(g.NumNodes()-1))
		if !errors.Is(err, ErrCanceled) {
			t.Errorf("%s on dead ctx: err = %v, want ErrCanceled", name, err)
		}
		if res.Trace.Expansions != 0 {
			t.Errorf("%s on dead ctx expanded %d nodes before checking", name, res.Trace.Expansions)
		}
	}
}

func TestKernelsMapDeadlineToErrDeadline(t *testing.T) {
	g := lifecycleGrid(t, 10)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	for name, kernel := range kernelsUnderTest() {
		if _, err := kernel(ctx, g, 0, graph.NodeID(g.NumNodes()-1)); !errors.Is(err, ErrDeadline) {
			t.Errorf("%s on expired ctx: err = %v, want ErrDeadline", name, err)
		}
	}
}

// TestMidSearchCancelWithinOneInterval arms the context to die on its
// second Err() call — the first in-loop check after the entry check —
// and asserts each kernel stops within one CheckInterval of expansions,
// returning ErrCanceled with the partial trace of the abandoned work.
func TestMidSearchCancelWithinOneInterval(t *testing.T) {
	g := lifecycleGrid(t, 100)
	for name, kernel := range kernelsUnderTest() {
		ctx := newCountdownCtx(1)
		res, err := kernel(ctx, g, 0, graph.NodeID(g.NumNodes()-1))
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("%s: err = %v, want ErrCanceled", name, err)
		}
		// The kernel saw a live context once (entry), so it performed at
		// least one poll's worth of work — and at most one check
		// interval's worth before noticing the cancellation. The
		// bidirectional kernel runs two frontiers, hence the factor two.
		if res.Trace.Expansions == 0 {
			t.Errorf("%s: canceled before doing any work; want a partial trace", name)
		}
		if res.Trace.Expansions > 2*CheckInterval {
			t.Errorf("%s: %d expansions after cancel; want ≤ %d (one interval per frontier)",
				name, res.Trace.Expansions, 2*CheckInterval)
		}
	}
}

// TestIterativeCancelLatency measures the acceptance criterion: an
// in-flight Iterative run on the 100x100 grid must return within 10ms
// of its cancellation becoming observable. The countdown context dies on
// its fourth Err() call — expansion ~3·CheckInterval of ~10000, solidly
// mid-search — and records the instant it first reported Canceled; the
// latency under test is from that instant to the kernel's return. (A
// goroutine-and-cancel version of this test cannot interleave on a
// single-core machine: the whole 400µs search outruns the scheduler's
// preemption quantum. The countdown form is deterministic everywhere,
// and TestMidSearchCancelWithinOneInterval separately bounds the
// between-checks gap in expansions.)
func TestIterativeCancelLatency(t *testing.T) {
	g := lifecycleGrid(t, 100)
	ctx := newCountdownCtx(3)
	res, err := IterativeCtx(ctx, g, 0, graph.NodeID(g.NumNodes()-1))
	returned := time.Now()
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if res.Trace.Expansions == 0 || res.Trace.Expansions >= g.NumNodes() {
		t.Fatalf("expansions = %d; cancellation did not land mid-search", res.Trace.Expansions)
	}
	if ctx.canceledAt.IsZero() {
		t.Fatal("countdown never fired")
	}
	if latency := returned.Sub(ctx.canceledAt); latency > 10*time.Millisecond {
		t.Fatalf("kernel returned %v after cancel became observable; want < 10ms", latency)
	}
}

func TestExpansionBudget(t *testing.T) {
	g := lifecycleGrid(t, 50)
	const budget = 100
	ctx := WithBudget(context.Background(), budget)
	for name, kernel := range kernelsUnderTest() {
		res, err := kernel(ctx, g, 0, graph.NodeID(g.NumNodes()-1))
		if !errors.Is(err, ErrBudget) {
			t.Errorf("%s: err = %v, want ErrBudget", name, err)
			continue
		}
		// poll runs before each expansion, so the overshoot is at most
		// one frontier's in-flight pop per direction.
		if res.Trace.Expansions > budget+2 {
			t.Errorf("%s: %d expansions under budget %d", name, res.Trace.Expansions, budget)
		}
	}
}

func TestBudgetZeroMeansUnlimited(t *testing.T) {
	g := lifecycleGrid(t, 10)
	ctx := WithBudget(context.Background(), 0)
	if _, err := DijkstraCtx(ctx, g, 0, graph.NodeID(g.NumNodes()-1)); err != nil {
		t.Fatalf("unlimited budget: %v", err)
	}
}

// TestCanceledRunsRecycleWorkspaces interleaves canceled and completed
// searches across goroutines: aborted runs must release their pooled
// workspaces in a reusable state (run under -race to catch retention
// bugs in the abort paths).
func TestCanceledRunsRecycleWorkspaces(t *testing.T) {
	// 60x60: Iterative pops ≥3600 nodes, so the first in-loop context
	// check (poll call 1024) is guaranteed to run and abort.
	g := lifecycleGrid(t, 60)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				if i%2 == 0 {
					ctx := newCountdownCtx(1)
					if _, err := IterativeCtx(ctx, g, 0, graph.NodeID(g.NumNodes()-1)); err == nil {
						t.Errorf("countdown cancel did not abort the run")
					}
					continue
				}
				res, err := DijkstraCtx(context.Background(), g, 0, graph.NodeID(g.NumNodes()-1))
				if err != nil || !res.Found {
					t.Errorf("clean run after aborts: found=%v err=%v", res.Found, err)
				}
			}
		}()
	}
	wg.Wait()
}

// TestKShortestCtxCancel covers the composite kernel: Yen's spur loop
// must propagate a mid-search cancellation from its inner Dijkstras.
func TestKShortestCtxCancel(t *testing.T) {
	g := lifecycleGrid(t, 30)
	ctx := newCountdownCtx(1)
	if _, err := KShortestCtx(ctx, g, 0, graph.NodeID(g.NumNodes()-1), 3); !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
}

// TestWithinCtxCancel covers the isochrone kernel.
func TestWithinCtxCancel(t *testing.T) {
	g := lifecycleGrid(t, 50)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := WithinCtx(ctx, g, 0, 1e9); !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
}
