package search

import (
	"math"

	"repro/internal/pqueue"
)

// frontier abstracts "the frontierSet" so BestFirst can run with any of the
// management strategies of Section 4: an indexed heap (decrease-key), a
// linear-scan open list (the relational analogue), or a duplicate-tolerant
// heap. Entries carry a primary priority (f = dist + estimate) and a
// secondary tie-break key (−dist): among equal f the deeper node is
// selected, keeping plateau behaviour deterministic and sensible.
type frontier interface {
	push(item int, priority, tie float64)
	pushOrUpdate(item int, priority, tie float64)
	popMin() (item int, ok bool)
	len() int
	// ops reports insertions and removals performed so far this query, for
	// Trace.HeapPushes/HeapPops.
	ops() (pushes, pops uint64)
}

func newFrontier(kind FrontierKind, capacity int) frontier {
	switch kind {
	case FrontierScan:
		return newScanFrontier(capacity)
	case FrontierDuplicates:
		return &dupFrontier{h: pqueue.NewPlain(capacity)}
	default:
		return &heapFrontier{h: pqueue.NewIndexed(capacity)}
	}
}

// heapFrontier: indexed heap with decrease-key.
type heapFrontier struct {
	h *pqueue.Indexed
}

func (f *heapFrontier) push(item int, priority, tie float64) {
	f.h.PushTie(item, priority, tie)
}
func (f *heapFrontier) pushOrUpdate(item int, priority, tie float64) {
	f.h.PushOrUpdateTie(item, priority, tie)
}
func (f *heapFrontier) len() int { return f.h.Len() }
func (f *heapFrontier) popMin() (int, bool) {
	item, _, ok := f.h.PopMin()
	return item, ok
}
func (f *heapFrontier) ops() (uint64, uint64) {
	st := f.h.OpStats()
	return st.Pushes, st.Pops
}

// scanFrontier keeps priorities in a dense array and selects the minimum by
// scanning the open members, the way a relational scan over status = "open"
// tuples does. Selection is O(frontier size); membership and update are
// O(1). Ties break by (tie, node id) like the heap, so all frontier kinds
// expand the same node sequence.
type scanFrontier struct {
	prio    []float64
	tie     []float64
	open    []bool
	members []int // unordered open list with lazy deletion markers in open[]
	n       int   // live member count
	pushes  uint64
	pops    uint64
}

func newScanFrontier(capacity int) *scanFrontier {
	return &scanFrontier{
		prio: make([]float64, capacity),
		tie:  make([]float64, capacity),
		open: make([]bool, capacity),
	}
}

func (f *scanFrontier) push(item int, priority, tie float64) {
	if f.open[item] {
		f.prio[item] = priority
		f.tie[item] = tie
		return
	}
	f.open[item] = true
	f.prio[item] = priority
	f.tie[item] = tie
	f.members = append(f.members, item)
	f.n++
	f.pushes++
}

func (f *scanFrontier) pushOrUpdate(item int, priority, tie float64) {
	f.push(item, priority, tie)
}

func (f *scanFrontier) len() int { return f.n }

func (f *scanFrontier) popMin() (int, bool) {
	if f.n == 0 {
		return 0, false
	}
	// Compact dead entries while scanning for the minimum.
	best, bestTie, bestItem := math.Inf(1), math.Inf(1), -1
	live := f.members[:0]
	for _, m := range f.members {
		if !f.open[m] {
			continue
		}
		live = append(live, m)
		better := f.prio[m] < best ||
			(f.prio[m] == best && f.tie[m] < bestTie) ||
			(f.prio[m] == best && f.tie[m] == bestTie && m < bestItem)
		if better {
			best, bestTie, bestItem = f.prio[m], f.tie[m], m
		}
	}
	f.members = live
	if bestItem < 0 {
		f.n = 0
		return 0, false
	}
	f.open[bestItem] = false
	f.n--
	f.pops++
	return bestItem, true
}

func (f *scanFrontier) ops() (uint64, uint64) { return f.pushes, f.pops }

// dupFrontier allows duplicates; pushOrUpdate degrades to push, creating the
// redundant entries Section 4 warns about. Stale pops are filtered by the
// caller via its closed[] set.
type dupFrontier struct {
	h      *pqueue.Plain
	pushes uint64
	pops   uint64
}

func (f *dupFrontier) push(item int, priority, tie float64) {
	f.h.PushTie(item, priority, tie)
	f.pushes++
}
func (f *dupFrontier) pushOrUpdate(item int, priority, tie float64) {
	f.h.PushTie(item, priority, tie)
	f.pushes++
}
func (f *dupFrontier) len() int { return f.h.Len() }
func (f *dupFrontier) popMin() (int, bool) {
	e, ok := f.h.PopMin()
	if ok {
		f.pops++
	}
	return e.Item, ok
}
func (f *dupFrontier) ops() (uint64, uint64) { return f.pushes, f.pops }
