package search

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/gridgen"
	"repro/internal/telemetry"
)

// testRecorder captures observations for assertions.
type testRecorder struct {
	mu     sync.Mutex
	runs   []Trace
	algos  []string
	pooled int
	fresh  int
}

func (r *testRecorder) ObserveSearch(algo string, seconds float64, tr Trace) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if seconds < 0 {
		panic("negative duration")
	}
	r.algos = append(r.algos, algo)
	r.runs = append(r.runs, tr)
}

func (r *testRecorder) ObserveWorkspace(pooled bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if pooled {
		r.pooled++
	} else {
		r.fresh++
	}
}

func TestRecorderObservesRuns(t *testing.T) {
	g := gridgen.MustGenerate(gridgen.Config{K: 8, Model: gridgen.Uniform, Seed: 1})
	s, d := gridgen.Pair(8, gridgen.Diagonal, 1)

	rec := &testRecorder{}
	SetRecorder(rec)
	defer SetRecorder(nil)

	if _, err := Dijkstra(g, s, d); err != nil {
		t.Fatal(err)
	}
	if _, err := Iterative(g, s, d); err != nil {
		t.Fatal(err)
	}
	if _, err := Bidirectional(g, s, d); err != nil {
		t.Fatal(err)
	}

	if got, want := rec.algos, []string{"dijkstra", "iterative", "bidirectional"}; len(got) != 3 ||
		got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Fatalf("observed algos %v, want %v", got, want)
	}
	for i, tr := range rec.runs {
		if tr.Expansions == 0 {
			t.Errorf("%s: zero expansions recorded", rec.algos[i])
		}
		if tr.HeapPushes == 0 || tr.HeapPops == 0 {
			t.Errorf("%s: heap ops not recorded: pushes=%d pops=%d", rec.algos[i], tr.HeapPushes, tr.HeapPops)
		}
		if tr.HeapPops > tr.HeapPushes {
			t.Errorf("%s: more pops than pushes: %d > %d", rec.algos[i], tr.HeapPops, tr.HeapPushes)
		}
	}
	if rec.pooled+rec.fresh != 3 {
		t.Errorf("workspace acquisitions = %d, want 3", rec.pooled+rec.fresh)
	}
}

// TestRecorderDisabledByDefault asserts the zero-cost contract's visible
// half: with no recorder installed nothing is observed, and SetRecorder(nil)
// turns an installed recorder back off.
func TestRecorderDisabledByDefault(t *testing.T) {
	g := gridgen.MustGenerate(gridgen.Config{K: 4, Model: gridgen.Uniform, Seed: 1})
	s, d := gridgen.Pair(4, gridgen.Diagonal, 1)

	rec := &testRecorder{}
	SetRecorder(rec)
	SetRecorder(nil)
	if _, err := Dijkstra(g, s, d); err != nil {
		t.Fatal(err)
	}
	if len(rec.runs) != 0 {
		t.Fatalf("disabled recorder still observed %d runs", len(rec.runs))
	}
}

// TestHeapOpsMatchAcrossFrontiers checks every frontier kind reports
// plausible, consistent heap work for the same query.
func TestHeapOpsMatchAcrossFrontiers(t *testing.T) {
	g := gridgen.MustGenerate(gridgen.Config{K: 10, Model: gridgen.Uniform, Seed: 7})
	s, d := gridgen.Pair(10, gridgen.Diagonal, 7)
	for _, kind := range []FrontierKind{FrontierHeap, FrontierScan, FrontierDuplicates} {
		res, err := BestFirst(g, s, d, Options{Frontier: kind})
		if err != nil {
			t.Fatal(err)
		}
		tr := res.Trace
		if tr.HeapPushes == 0 {
			t.Errorf("%v: no pushes recorded", kind)
		}
		if tr.HeapPops > tr.HeapPushes {
			t.Errorf("%v: pops %d exceed pushes %d", kind, tr.HeapPops, tr.HeapPushes)
		}
	}
}

func TestRegistryRecorderExport(t *testing.T) {
	g := gridgen.MustGenerate(gridgen.Config{K: 8, Model: gridgen.Uniform, Seed: 1})
	s, d := gridgen.Pair(8, gridgen.Diagonal, 1)

	reg := telemetry.NewRegistry()
	EnableTelemetry(reg)
	defer SetRecorder(nil)

	for i := 0; i < 3; i++ {
		if _, err := Dijkstra(g, s, d); err != nil {
			t.Fatal(err)
		}
	}

	if got := reg.Counter("atis_search_runs_total", "", telemetry.L("algo", "dijkstra")).Value(); got != 3 {
		t.Fatalf("atis_search_runs_total{algo=dijkstra} = %d, want 3", got)
	}
	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`atis_search_runs_total{algo="dijkstra"} 3`,
		`atis_search_expansions_total{algo="dijkstra"}`,
		`atis_search_heap_pushes_total{algo="dijkstra"}`,
		`atis_search_heap_pops_total{algo="dijkstra"}`,
		`atis_search_seconds_count{algo="dijkstra"} 3`,
		`atis_search_workspace_acquires_total`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("export missing %q\nexport:\n%s", want, out)
		}
	}
}
