package search

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/estimator"
	"repro/internal/graph"
	"repro/internal/gridgen"
)

// diamond builds the classic 4-node graph where greedy-by-edge fails:
// 0→1 (1), 0→2 (4), 1→3 (5), 2→3 (1), and the direct 0→3 (7).
// Shortest 0→3 is 0→2→3 with cost 5.
func diamond(t *testing.T) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(4, 5)
	b.AddNode(0, 0)
	b.AddNode(1, 1)
	b.AddNode(1, -1)
	b.AddNode(2, 0)
	b.AddEdge(0, 1, 1)
	b.AddEdge(0, 2, 4)
	b.AddEdge(1, 3, 5)
	b.AddEdge(2, 3, 1)
	b.AddEdge(0, 3, 7)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// allAlgorithms runs every algorithm on (g, s, d) and returns named results.
func allAlgorithms(t *testing.T, g *graph.Graph, s, d graph.NodeID) map[string]Result {
	t.Helper()
	out := make(map[string]Result)
	run := func(name string, r Result, err error) {
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out[name] = r
	}
	r, err := Iterative(g, s, d)
	run("iterative", r, err)
	r, err = Dijkstra(g, s, d)
	run("dijkstra", r, err)
	r, err = AStar(g, s, d, estimator.Euclidean())
	run("astar-euclidean", r, err)
	r, err = Bidirectional(g, s, d)
	run("bidirectional", r, err)
	r, err = BestFirst(g, s, d, Options{Frontier: FrontierScan})
	run("dijkstra-scan", r, err)
	r, err = BestFirst(g, s, d, Options{Frontier: FrontierDuplicates})
	run("dijkstra-dup", r, err)
	return out
}

func TestDiamondShortest(t *testing.T) {
	g := diamond(t)
	for name, r := range allAlgorithms(t, g, 0, 3) {
		if !r.Found {
			t.Errorf("%s: not found", name)
			continue
		}
		if math.Abs(r.Cost-5) > 1e-12 {
			t.Errorf("%s: cost = %v, want 5", name, r.Cost)
		}
		want := []graph.NodeID{0, 2, 3}
		if len(r.Path.Nodes) != 3 {
			t.Errorf("%s: path = %v, want %v", name, r.Path.Nodes, want)
			continue
		}
		for i := range want {
			if r.Path.Nodes[i] != want[i] {
				t.Errorf("%s: path = %v, want %v", name, r.Path.Nodes, want)
				break
			}
		}
		if !r.Path.ValidIn(g) {
			t.Errorf("%s: path invalid", name)
		}
	}
}

func TestSourceEqualsDestination(t *testing.T) {
	g := diamond(t)
	for name, r := range allAlgorithms(t, g, 2, 2) {
		if !r.Found || r.Cost != 0 {
			t.Errorf("%s: s==d gave found=%v cost=%v", name, r.Found, r.Cost)
		}
		if r.Path.Len() != 0 || r.Path.Source() != 2 {
			t.Errorf("%s: s==d path = %v", name, r.Path.Nodes)
		}
	}
}

func TestNoPath(t *testing.T) {
	// Two disconnected components: 0-1 and 2-3.
	b := graph.NewBuilder(4, 2)
	for i := 0; i < 4; i++ {
		b.AddNode(float64(i), 0)
	}
	b.AddEdge(0, 1, 1)
	b.AddEdge(2, 3, 1)
	g := b.MustBuild()
	for name, r := range allAlgorithms(t, g, 0, 3) {
		if r.Found {
			t.Errorf("%s: found a path across components", name)
		}
		if !math.IsInf(r.Cost, 1) {
			t.Errorf("%s: cost = %v, want +Inf", name, r.Cost)
		}
		if len(r.Path.Nodes) != 0 {
			t.Errorf("%s: path = %v, want empty", name, r.Path.Nodes)
		}
	}
}

func TestDirectedness(t *testing.T) {
	// One-way street: 0→1 exists, 1→0 does not.
	b := graph.NewBuilder(2, 1)
	b.AddNode(0, 0)
	b.AddNode(1, 0)
	b.AddEdge(0, 1, 2)
	g := b.MustBuild()
	r, err := Dijkstra(g, 0, 1)
	if err != nil || !r.Found || r.Cost != 2 {
		t.Errorf("forward: %v %v", r, err)
	}
	r, err = Dijkstra(g, 1, 0)
	if err != nil || r.Found {
		t.Errorf("backward found=%v, want no path on a one-way edge", r.Found)
	}
}

func TestInvalidEndpoints(t *testing.T) {
	g := diamond(t)
	if _, err := Dijkstra(g, -1, 0); err == nil {
		t.Error("negative source accepted")
	}
	if _, err := Dijkstra(g, 0, 99); err == nil {
		t.Error("out-of-range destination accepted")
	}
	if _, err := Iterative(g, 99, 0); err == nil {
		t.Error("iterative out-of-range source accepted")
	}
	if _, err := Bidirectional(g, 0, -2); err == nil {
		t.Error("bidirectional invalid destination accepted")
	}
}

// Oracle property: on random connected-ish digraphs, every algorithm agrees
// with exhaustive single-source Dijkstra on both reachability and cost.
func TestAgreementOnRandomGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(60)
		b := graph.NewBuilder(n, 4*n)
		for i := 0; i < n; i++ {
			b.AddNode(rng.Float64()*100, rng.Float64()*100)
		}
		m := n + rng.Intn(3*n)
		for e := 0; e < m; e++ {
			u := graph.NodeID(rng.Intn(n))
			v := graph.NodeID(rng.Intn(n))
			b.AddEdge(u, v, rng.Float64()*10)
		}
		g := b.MustBuild()
		s := graph.NodeID(rng.Intn(n))
		d := graph.NodeID(rng.Intn(n))
		dist, _ := SingleSource(g, s)

		for name, r := range allAlgorithms(t, g, s, d) {
			if name == "astar-euclidean" {
				// Euclidean is not admissible here (random costs unrelated
				// to geometry): only require a valid path, checked below.
				if r.Found {
					if c, err := r.Path.CostIn(g); err != nil || math.Abs(c-r.Cost) > 1e-9 {
						t.Errorf("trial %d %s: reported cost %v but path costs %v (%v)", trial, name, r.Cost, c, err)
					}
				}
				continue
			}
			if r.Found != !math.IsInf(dist[d], 1) {
				t.Fatalf("trial %d %s: found=%v but oracle dist=%v", trial, name, r.Found, dist[d])
			}
			if r.Found {
				if math.Abs(r.Cost-dist[d]) > 1e-9 {
					t.Errorf("trial %d %s: cost %v, oracle %v", trial, name, r.Cost, dist[d])
				}
				if c, err := r.Path.CostIn(g); err != nil || math.Abs(c-r.Cost) > 1e-9 {
					t.Errorf("trial %d %s: path cost %v (%v) != reported %v", trial, name, c, err, r.Cost)
				}
			}
		}
	}
}

// On geometric graphs (costs = euclidean edge lengths) A*-euclidean is
// admissible and must be optimal, expanding no more nodes than Dijkstra.
func TestAStarOptimalAndFocusedOnGeometricGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		n := 10 + rng.Intn(80)
		pts := make([]graph.Point, n)
		b := graph.NewBuilder(n, 6*n)
		for i := 0; i < n; i++ {
			pts[i] = graph.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}
			b.AddNode(pts[i].X, pts[i].Y)
		}
		for e := 0; e < 5*n; e++ {
			u := rng.Intn(n)
			v := rng.Intn(n)
			if u == v {
				continue
			}
			b.AddUndirectedEdge(graph.NodeID(u), graph.NodeID(v), pts[u].EuclideanDistance(pts[v]))
		}
		g := b.MustBuild()
		s := graph.NodeID(rng.Intn(n))
		d := graph.NodeID(rng.Intn(n))

		dij, err := Dijkstra(g, s, d)
		if err != nil {
			t.Fatal(err)
		}
		ast, err := AStar(g, s, d, estimator.Euclidean())
		if err != nil {
			t.Fatal(err)
		}
		if dij.Found != ast.Found {
			t.Fatalf("trial %d: found mismatch", trial)
		}
		if !dij.Found {
			continue
		}
		if math.Abs(dij.Cost-ast.Cost) > 1e-9 {
			t.Errorf("trial %d: A* cost %v != Dijkstra %v (admissible estimator must be optimal)", trial, ast.Cost, dij.Cost)
		}
		if ast.Trace.Iterations > dij.Trace.Iterations {
			t.Errorf("trial %d: A* expanded %d > Dijkstra %d", trial, ast.Trace.Iterations, dij.Trace.Iterations)
		}
		if ast.Trace.Reopens != 0 {
			t.Errorf("trial %d: admissible+consistent estimator reopened %d nodes", trial, ast.Trace.Reopens)
		}
	}
}

// Iteration semantics on uniform grids — the quantities behind the paper's
// Tables 5 and 6.
func TestIterationCountsUniformGrid(t *testing.T) {
	for _, k := range []int{10, 20, 30} {
		g := gridgen.MustGenerate(gridgen.Config{K: k, Model: gridgen.Uniform})
		s, d := gridgen.Pair(k, gridgen.Diagonal, 0)

		// Iterative: rounds = grid diameter + 1 (19 / 39 / 59 in Table 5).
		it, err := Iterative(g, s, d)
		if err != nil {
			t.Fatal(err)
		}
		if want := 2*(k-1) + 1; it.Trace.Iterations != want {
			t.Errorf("k=%d: iterative rounds = %d, want %d", k, it.Trace.Iterations, want)
		}
		if it.Cost != float64(2*(k-1)) {
			t.Errorf("k=%d: iterative diagonal cost = %v, want %d", k, it.Cost, 2*(k-1))
		}

		// Dijkstra: every non-destination node is expanded (99/399/899).
		dij, err := Dijkstra(g, s, d)
		if err != nil {
			t.Fatal(err)
		}
		if want := k*k - 1; dij.Trace.Iterations != want {
			t.Errorf("k=%d: dijkstra expansions = %d, want %d", k, dij.Trace.Iterations, want)
		}

		// A* with the perfect (manhattan) estimator and deeper-first
		// tie-break walks straight to the corner: L expansions.
		ast, err := AStar(g, s, d, estimator.Manhattan())
		if err != nil {
			t.Fatal(err)
		}
		if want := 2 * (k - 1); ast.Trace.Iterations != want {
			t.Errorf("k=%d: A*-manhattan expansions = %d, want %d", k, ast.Trace.Iterations, want)
		}
		if ast.Cost != dij.Cost {
			t.Errorf("k=%d: A* cost %v != dijkstra %v", k, ast.Cost, dij.Cost)
		}
	}
}

// With 20% cost variance the counts shift the way Table 5 reports: A* is
// slightly below Dijkstra, both near n−1 for the diagonal worst case.
func TestIterationCountsVarianceGrid(t *testing.T) {
	for _, k := range []int{10, 20, 30} {
		g := gridgen.MustGenerate(gridgen.Config{K: k, Model: gridgen.Variance, Seed: 1993})
		s, d := gridgen.Pair(k, gridgen.Diagonal, 0)
		n := k * k

		dij, err := Dijkstra(g, s, d)
		if err != nil {
			t.Fatal(err)
		}
		if dij.Trace.Iterations < n-5 || dij.Trace.Iterations > n-1 {
			t.Errorf("k=%d: dijkstra expansions = %d, want ≈ %d", k, dij.Trace.Iterations, n-1)
		}

		ast, err := AStar(g, s, d, estimator.Manhattan())
		if err != nil {
			t.Fatal(err)
		}
		if ast.Trace.Iterations > dij.Trace.Iterations {
			t.Errorf("k=%d: A* %d > dijkstra %d", k, ast.Trace.Iterations, dij.Trace.Iterations)
		}
		// Variance forces backtracking: far more work than the perfect case.
		if ast.Trace.Iterations < 2*(k-1) {
			t.Errorf("k=%d: A* expansions = %d, suspiciously few under variance", k, ast.Trace.Iterations)
		}

		it, err := Iterative(g, s, d)
		if err != nil {
			t.Fatal(err)
		}
		if it.Trace.Iterations < 2*(k-1)+1 || it.Trace.Iterations > 2*(k-1)+6 {
			t.Errorf("k=%d: iterative rounds = %d, want ≈ %d", k, it.Trace.Iterations, 2*(k-1)+1)
		}
		// Iterative and Dijkstra agree on cost; manhattan stays admissible
		// here (all edges cost ≥ 1, estimate counts edges).
		if math.Abs(it.Cost-dij.Cost) > 1e-9 || math.Abs(ast.Cost-dij.Cost) > 1e-9 {
			t.Errorf("k=%d: costs disagree: it=%v dij=%v a*=%v", k, it.Cost, dij.Cost, ast.Cost)
		}
	}
}

// Path-length sensitivity (Table 6): A* expansions grow with path length
// while Iterative rounds stay constant.
func TestPathLengthSensitivity(t *testing.T) {
	const k = 30
	g := gridgen.MustGenerate(gridgen.Config{K: k, Model: gridgen.Variance, Seed: 1993})

	var astIters, dijIters [3]int
	var itRounds [3]int
	kinds := []gridgen.PairKind{gridgen.Horizontal, gridgen.SemiDiagonal, gridgen.Diagonal}
	for i, kind := range kinds {
		s, d := gridgen.Pair(k, kind, 0)
		ast, err := AStar(g, s, d, estimator.Manhattan())
		if err != nil {
			t.Fatal(err)
		}
		dij, err := Dijkstra(g, s, d)
		if err != nil {
			t.Fatal(err)
		}
		it, err := Iterative(g, s, d)
		if err != nil {
			t.Fatal(err)
		}
		astIters[i], dijIters[i], itRounds[i] = ast.Trace.Iterations, dij.Trace.Iterations, it.Trace.Iterations
	}
	if !(astIters[0] < astIters[1] && astIters[1] < astIters[2]) {
		t.Errorf("A* expansions not increasing with path length: %v", astIters)
	}
	if !(dijIters[0] < dijIters[1] && dijIters[1] < dijIters[2]) {
		t.Errorf("Dijkstra expansions not increasing with path length: %v", dijIters)
	}
	if itRounds[0] != itRounds[1] || itRounds[1] != itRounds[2] {
		t.Errorf("Iterative rounds vary with destination: %v (must be insensitive)", itRounds)
	}
	// Horizontal: A* beats Dijkstra by an order of magnitude (29 vs 488 in
	// the paper).
	if astIters[0]*5 > dijIters[0] {
		t.Errorf("horizontal: A* %d not ≪ Dijkstra %d", astIters[0], dijIters[0])
	}
}

// Skewed costs eliminate backtracking (Table 7): both Dijkstra and A* drop
// far below the diagonal worst case.
func TestSkewedCostModel(t *testing.T) {
	const k = 20
	gU := gridgen.MustGenerate(gridgen.Config{K: k, Model: gridgen.Uniform})
	gS := gridgen.MustGenerate(gridgen.Config{K: k, Model: gridgen.Skewed})
	s, d := gridgen.Pair(k, gridgen.Diagonal, 0)

	dijU, _ := Dijkstra(gU, s, d)
	dijS, _ := Dijkstra(gS, s, d)
	if dijS.Trace.Iterations*4 > dijU.Trace.Iterations {
		t.Errorf("skewed dijkstra %d not ≪ uniform %d", dijS.Trace.Iterations, dijU.Trace.Iterations)
	}
	astS, _ := AStar(gS, s, d, estimator.Manhattan())
	// The cheap corridor has 2(k−1) edges; A* should track it closely.
	if astS.Trace.Iterations > 3*(k-1) {
		t.Errorf("skewed A* expansions = %d, want ≈ %d", astS.Trace.Iterations, 2*(k-1))
	}
	if math.Abs(astS.Cost-dijS.Cost) > 1e-9 {
		t.Errorf("skewed A* cost %v != dijkstra %v", astS.Cost, dijS.Cost)
	}
	// The optimal route is the corridor: cost 2(k−1)·0.1.
	if want := 2 * float64(k-1) * 0.1; math.Abs(dijS.Cost-want) > 1e-9 {
		t.Errorf("skewed optimal cost %v, want %v", dijS.Cost, want)
	}
}

// All frontier kinds must agree on cost; the duplicates frontier may take
// extra iterations (Section 4's "redundant iterations").
func TestFrontierKindsAgree(t *testing.T) {
	g := gridgen.MustGenerate(gridgen.Config{K: 12, Model: gridgen.Variance, Seed: 5})
	s, d := gridgen.Pair(12, gridgen.SemiDiagonal, 0)
	heap, err := BestFirst(g, s, d, Options{Frontier: FrontierHeap})
	if err != nil {
		t.Fatal(err)
	}
	scan, err := BestFirst(g, s, d, Options{Frontier: FrontierScan})
	if err != nil {
		t.Fatal(err)
	}
	dup, err := BestFirst(g, s, d, Options{Frontier: FrontierDuplicates})
	if err != nil {
		t.Fatal(err)
	}
	if heap.Cost != scan.Cost || heap.Cost != dup.Cost {
		t.Errorf("costs: heap=%v scan=%v dup=%v", heap.Cost, scan.Cost, dup.Cost)
	}
	if heap.Trace.Iterations != scan.Trace.Iterations {
		t.Errorf("heap and scan frontiers expanded different counts: %d vs %d",
			heap.Trace.Iterations, scan.Trace.Iterations)
	}
	if dup.Trace.Iterations < heap.Trace.Iterations {
		t.Errorf("duplicates frontier expanded fewer (%d) than heap (%d)",
			dup.Trace.Iterations, heap.Trace.Iterations)
	}
}

func TestFrontierKindString(t *testing.T) {
	if FrontierHeap.String() != "heap" || FrontierScan.String() != "scan" ||
		FrontierDuplicates.String() != "duplicates" {
		t.Error("FrontierKind names wrong")
	}
	if FrontierKind(9).String() != "FrontierKind(9)" {
		t.Errorf("unknown kind = %q", FrontierKind(9).String())
	}
}

// An inadmissible estimator may reopen nodes but must still return a valid
// path; weighted A* cost inflation is bounded by the weight.
func TestWeightedAStarInflation(t *testing.T) {
	g := gridgen.MustGenerate(gridgen.Config{K: 15, Model: gridgen.Variance, Seed: 11})
	s, d := gridgen.Pair(15, gridgen.Diagonal, 0)
	opt, err := Dijkstra(g, s, d)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []float64{1.5, 2, 4} {
		r, err := AStar(g, s, d, estimator.Scaled(estimator.Manhattan(), w))
		if err != nil {
			t.Fatal(err)
		}
		if !r.Found {
			t.Fatalf("w=%v: no path", w)
		}
		if !r.Path.ValidIn(g) {
			t.Fatalf("w=%v: invalid path", w)
		}
		if r.Cost < opt.Cost-1e-9 {
			t.Errorf("w=%v: cost %v below optimum %v", w, r.Cost, opt.Cost)
		}
		if r.Cost > w*opt.Cost+1e-9 {
			t.Errorf("w=%v: cost %v exceeds %v × optimum %v", w, r.Cost, w, opt.Cost)
		}
		if r.Trace.Iterations > opt.Trace.Iterations {
			t.Errorf("w=%v: weighted A* expanded %d > dijkstra %d", w, r.Trace.Iterations, opt.Trace.Iterations)
		}
	}
}

func TestBidirectionalMatchesDijkstraOnGrids(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	g := gridgen.MustGenerate(gridgen.Config{K: 20, Model: gridgen.Variance, Seed: 77})
	for trial := 0; trial < 40; trial++ {
		s := graph.NodeID(rng.Intn(400))
		d := graph.NodeID(rng.Intn(400))
		bi, err := Bidirectional(g, s, d)
		if err != nil {
			t.Fatal(err)
		}
		dij, err := Dijkstra(g, s, d)
		if err != nil {
			t.Fatal(err)
		}
		if bi.Found != dij.Found {
			t.Fatalf("trial %d: found mismatch", trial)
		}
		if !bi.Found {
			continue
		}
		if math.Abs(bi.Cost-dij.Cost) > 1e-9 {
			t.Errorf("trial %d: bidirectional %v != dijkstra %v", trial, bi.Cost, dij.Cost)
		}
		if !bi.Path.ValidIn(g) {
			t.Errorf("trial %d: stitched path invalid: %v", trial, bi.Path.Nodes)
		}
		if c, _ := bi.Path.CostIn(g); math.Abs(c-bi.Cost) > 1e-9 {
			t.Errorf("trial %d: stitched path costs %v, reported %v", trial, c, bi.Cost)
		}
	}
}

func TestBidirectionalExpandsFewerOnLongPaths(t *testing.T) {
	g := gridgen.MustGenerate(gridgen.Config{K: 30, Model: gridgen.Variance, Seed: 4})
	s, d := gridgen.Pair(30, gridgen.Diagonal, 0)
	bi, _ := Bidirectional(g, s, d)
	dij, _ := Dijkstra(g, s, d)
	if bi.Trace.Iterations >= dij.Trace.Iterations {
		t.Errorf("bidirectional %d >= dijkstra %d on the diagonal", bi.Trace.Iterations, dij.Trace.Iterations)
	}
}

func TestSingleSourceUnreachableAndInvalid(t *testing.T) {
	b := graph.NewBuilder(3, 1)
	b.AddNode(0, 0)
	b.AddNode(1, 0)
	b.AddNode(2, 0)
	b.AddEdge(0, 1, 1)
	g := b.MustBuild()
	dist, prev := SingleSource(g, 0)
	if dist[0] != 0 || dist[1] != 1 || !math.IsInf(dist[2], 1) {
		t.Errorf("dist = %v", dist)
	}
	if prev[1] != 0 || prev[2] != graph.Invalid {
		t.Errorf("prev = %v", prev)
	}
	dist, _ = SingleSource(g, -1)
	for i, v := range dist {
		if !math.IsInf(v, 1) {
			t.Errorf("invalid source: dist[%d] = %v", i, v)
		}
	}
}

func TestVerifyAdmissible(t *testing.T) {
	// Manhattan is a perfect (hence admissible) estimator on a uniform grid.
	g := gridgen.MustGenerate(gridgen.Config{K: 8, Model: gridgen.Uniform})
	_, d := gridgen.Pair(8, gridgen.Diagonal, 0)
	if v := VerifyAdmissible(g, estimator.Manhattan(), d, 1e-9); len(v) != 0 {
		t.Errorf("manhattan inadmissible on uniform grid: %v", v[0])
	}
	if v := VerifyAdmissible(g, estimator.Euclidean(), d, 1e-9); len(v) != 0 {
		t.Errorf("euclidean inadmissible on uniform grid: %v", v[0])
	}

	// Add a cheap diagonal shortcut: manhattan now overestimates across it.
	b := graph.NewBuilder(3, 3)
	b.AddNode(0, 0)
	b.AddNode(1, 1)
	b.AddNode(2, 2)
	b.AddEdge(0, 1, 0.5) // manhattan(0,1) = 2 > 0.5
	b.AddEdge(1, 2, 0.5)
	sg := b.MustBuild()
	if v := VerifyAdmissible(sg, estimator.Manhattan(), 2, 1e-9); len(v) == 0 {
		t.Error("manhattan admissible across a diagonal shortcut: impossible")
	}
	// The zero estimator is admissible everywhere.
	if v := VerifyAdmissible(sg, estimator.Zero(), 2, 1e-9); len(v) != 0 {
		t.Errorf("zero estimator inadmissible: %v", v[0])
	}
}

// The reopening mechanism: with an aggressively inadmissible estimator on a
// graph designed to mislead it, A* (Figure 3 semantics) reopens closed nodes
// yet still terminates with a valid path.
func TestAStarReopensUnderInadmissibleEstimator(t *testing.T) {
	// Geometry lies: node 1 looks far from the goal but is on the cheap
	// route; a huge weight makes A* close nodes prematurely.
	b := graph.NewBuilder(4, 4)
	b.AddNode(0, 0)  // s
	b.AddNode(0, 10) // detour that is actually cheap
	b.AddNode(1, 0)  // looks close, actually expensive to leave
	b.AddNode(2, 0)  // d
	b.AddEdge(0, 1, 0.1)
	b.AddEdge(0, 2, 0.1)
	b.AddEdge(2, 3, 10)
	b.AddEdge(1, 3, 0.1)
	g := b.MustBuild()
	r, err := AStar(g, 0, 3, estimator.Scaled(estimator.Euclidean(), 10))
	if err != nil {
		t.Fatal(err)
	}
	if !r.Found || !r.Path.ValidIn(g) {
		t.Fatalf("result: %+v", r)
	}
	// Optimal is 0→1→3 = 0.2. Weighted A* may or may not find it, but must
	// never return something invalid or better than optimal.
	if r.Cost < 0.2-1e-12 {
		t.Errorf("cost %v below optimum", r.Cost)
	}
}

func TestTraceCounters(t *testing.T) {
	g := diamond(t)
	r, err := Dijkstra(g, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	tr := r.Trace
	if tr.Iterations == 0 || tr.Expansions != tr.Iterations {
		t.Errorf("iterations/expansions: %+v", tr)
	}
	if tr.Relaxations < tr.Improvements {
		t.Errorf("relaxations %d < improvements %d", tr.Relaxations, tr.Improvements)
	}
	if tr.MaxFrontier < 1 {
		t.Errorf("max frontier %d", tr.MaxFrontier)
	}
	it, err := Iterative(g, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if it.Trace.Iterations == 0 || it.Trace.Expansions < it.Trace.Iterations {
		t.Errorf("iterative trace: %+v", it.Trace)
	}
}

// The defining contrast of the paper: Iterative explores everything always;
// Dijkstra and A* stop early on short paths.
func TestEarlyTerminationContrast(t *testing.T) {
	const k = 30
	g := gridgen.MustGenerate(gridgen.Config{K: k, Model: gridgen.Variance, Seed: 9})
	// Short hop: two adjacent nodes in the middle.
	s := gridgen.NodeAt(k, 15, 15)
	d := gridgen.NodeAt(k, 15, 16)
	dij, _ := Dijkstra(g, s, d)
	ast, _ := AStar(g, s, d, estimator.Manhattan())
	it, _ := Iterative(g, s, d)
	if ast.Trace.Expansions > 4 {
		t.Errorf("A* expanded %d nodes for an adjacent pair", ast.Trace.Expansions)
	}
	if dij.Trace.Expansions > 10 {
		t.Errorf("Dijkstra expanded %d nodes for an adjacent pair", dij.Trace.Expansions)
	}
	// Iterative still settles the whole graph.
	if it.Trace.Expansions < k*k {
		t.Errorf("Iterative expanded only %d nodes; must explore everything", it.Trace.Expansions)
	}
}
