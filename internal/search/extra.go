package search

import (
	"context"
	"fmt"
	"math"
	"time"

	"repro/internal/estimator"
	"repro/internal/graph"
)

// SingleSource computes shortest-path costs from s to every node of g with
// Dijkstra's algorithm run to exhaustion (no early termination). The
// returned dist slice holds +Inf at unreachable nodes; prev is the
// shortest-path tree. This is the single-source primitive the paper
// contrasts the single-pair algorithms against, and the oracle used by the
// property tests and by VerifyAdmissible.
func SingleSource(g *graph.Graph, s graph.NodeID) (dist []float64, prev []graph.NodeID) {
	n := g.NumNodes()
	dist = make([]float64, n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	prev = make([]graph.NodeID, n)
	for i := range prev {
		prev[i] = graph.Invalid
	}
	if s < 0 || int(s) >= n {
		return dist, prev
	}
	// dist and prev escape to the caller and must be fresh allocations; the
	// heap does not, so it comes from the workspace pool.
	ws := acquireWorkspace(n)
	defer releaseWorkspace(ws)
	h := ws.heap
	dist[s] = 0
	h.Push(int(s), 0)
	for {
		ui, du, ok := h.PopMin()
		if !ok {
			return dist, prev
		}
		u := graph.NodeID(ui)
		g.Neighbors(u, func(a graph.Arc) {
			nd := du + a.Cost
			if nd < dist[a.Head] {
				dist[a.Head] = nd
				prev[a.Head] = u
				h.PushOrUpdate(int(a.Head), nd)
			}
		})
	}
}

// Bidirectional runs Dijkstra simultaneously from the source (forward) and
// from the destination (backward over the reverse graph), stopping when the
// frontiers' combined radius exceeds the best meeting cost. It returns the
// same optimal cost as Dijkstra while typically expanding far fewer nodes on
// long paths — one of the future-work speedups the paper's conclusion
// gestures at. Trace.Iterations counts expansions across both directions.
func Bidirectional(g *graph.Graph, s, d graph.NodeID) (Result, error) {
	return BidirectionalCtx(context.Background(), g, s, d)
}

// BidirectionalCtx is Bidirectional under a request lifecycle: the
// combined loop polls ctx once per expansion (amortised, see
// lifecycle.poll) and stops with a typed lifecycle error plus the
// partial Trace when the context dies or the expansion budget runs out.
//
//atis:hotpath
func BidirectionalCtx(ctx context.Context, g *graph.Graph, s, d graph.NodeID) (res Result, err error) {
	if err := validatePair(g, s, d); err != nil {
		return Result{}, err
	}
	lc, err := newLifecycle(ctx)
	if err != nil {
		return Result{}, err
	}
	if rec := activeRecorder(); rec != nil {
		defer observeRun(rec, "bidirectional", time.Now(), &res, &err)
	}
	if s == d {
		//lint:ignore hotpath trivial same-node answer: one two-word slice on a path that does no search work
		return Result{Found: true, Path: graph.Path{Nodes: []graph.NodeID{s}}, Cost: 0}, nil
	}
	// ReverseView caches the reverse graph keyed on the cost version, so a
	// stream of queries under stable traffic shares one reverse instead of
	// paying an O(m) rebuild per call (the last per-query O(m) allocation).
	//lint:ignore hotpath the reverse view is cached per cost version; the O(m) rebuild runs once per traffic batch
	rg := g.ReverseView()
	n := g.NumNodes()

	ws := acquireWorkspace(n)
	defer releaseWorkspace(ws)
	ws.ensureBackward(n)
	// Forward labels: lbF.prev is the shortest-path tree from s. Backward
	// labels: lbB.prev holds the successor toward d in the original graph.
	lbF, lbB := &ws.fwd, &ws.bwd

	hf := ws.heap
	hb := ws.bh
	lbF.touch(s)
	lbF.dist[s] = 0
	hf.Push(int(s), 0)
	lbB.touch(d)
	lbB.dist[d] = 0
	hb.Push(int(d), 0)

	best := math.Inf(1)
	meet := graph.Invalid
	var tr Trace

	update := func(v graph.NodeID) {
		if total := lbF.distAt(v) + lbB.distAt(v); total < best {
			best = total
			meet = v
		}
	}

	for hf.Len() > 0 || hb.Len() > 0 {
		if err := lc.poll(tr.Expansions); err != nil {
			fs, bs := hf.OpStats(), hb.OpStats()
			tr.HeapPushes = fs.Pushes + bs.Pushes
			tr.HeapPops = fs.Pops + bs.Pops
			return notFound(tr), err
		}
		if combined := hf.Len() + hb.Len(); combined > tr.MaxFrontier {
			tr.MaxFrontier = combined
		}
		// Termination: once the smallest keys on both sides sum to at least
		// the best meeting cost, no better path remains.
		_, pf, okf := hf.Peek()
		_, pb, okb := hb.Peek()
		if !okf {
			pf = math.Inf(1)
		}
		if !okb {
			pb = math.Inf(1)
		}
		if pf+pb >= best {
			break
		}
		// Expand the side with the smaller key (balanced growth).
		if pf <= pb {
			ui, du, _ := hf.PopMin()
			u := graph.NodeID(ui)
			lbF.flags[u] |= flagClosed
			tr.Iterations++
			tr.Expansions++
			g.Neighbors(u, func(a graph.Arc) {
				tr.Relaxations++
				v := a.Head
				lbF.touch(v)
				if lbF.flags[v]&flagClosed != 0 {
					return
				}
				nd := du + a.Cost
				if nd < lbF.dist[v] {
					lbF.dist[v] = nd
					lbF.prev[v] = u
					tr.Improvements++
					hf.PushOrUpdate(int(v), nd)
					update(v)
				}
			})
			update(u)
		} else {
			ui, du, _ := hb.PopMin()
			u := graph.NodeID(ui)
			lbB.flags[u] |= flagClosed
			tr.Iterations++
			tr.Expansions++
			rg.Neighbors(u, func(a graph.Arc) {
				tr.Relaxations++
				v := a.Head
				lbB.touch(v)
				if lbB.flags[v]&flagClosed != 0 {
					return
				}
				nd := du + a.Cost
				if nd < lbB.dist[v] {
					lbB.dist[v] = nd
					lbB.prev[v] = u
					tr.Improvements++
					hb.PushOrUpdate(int(v), nd)
					update(v)
				}
			})
			update(u)
		}
	}

	fs, bs := hf.OpStats(), hb.OpStats()
	tr.HeapPushes = fs.Pushes + bs.Pushes
	tr.HeapPops = fs.Pops + bs.Pops

	if meet == graph.Invalid || math.IsInf(best, 1) {
		return notFound(tr), nil
	}
	// Stitch: s → … → meet from the forward tree, then meet → … → d from the
	// backward tree's successor pointers. Every node on the winning path was
	// touched this query, so the pooled label arrays are safe to follow.
	//lint:ignore hotpath result materialisation: the stitched path is the query's one allocation
	forward := graph.BuildPath(lbF.prev, s, meet)
	nodes := append([]graph.NodeID(nil), forward.Nodes...)
	for at := lbB.prev[meet]; at != graph.Invalid; {
		nodes = append(nodes, at)
		if at == d {
			break
		}
		at = lbB.prev[at]
	}
	if len(nodes) == 0 || nodes[len(nodes)-1] != d || nodes[0] != s {
		return notFound(tr), nil
	}
	return Result{Found: true, Path: graph.Path{Nodes: nodes}, Cost: best, Trace: tr}, nil
}

// Within computes the budget-bounded reachable set: every node whose
// shortest-path cost from s is at most budget, with those costs. It is
// Dijkstra cut off at the budget — the isochrone ("everywhere within 15
// minutes") query an ATIS answers for trip planning, and a direct payoff of
// early-terminating single-source search: work is proportional to the
// region size, not the map size.
func Within(g *graph.Graph, s graph.NodeID, budget float64) (map[graph.NodeID]float64, error) {
	return WithinCtx(context.Background(), g, s, budget)
}

// WithinCtx is Within under a request lifecycle: the Dijkstra loop polls
// ctx once per pop (amortised) and stops with a typed lifecycle error —
// discarding the partial reachable set, which is not meaningful when
// truncated — when the context dies or the expansion budget runs out.
func WithinCtx(ctx context.Context, g *graph.Graph, s graph.NodeID, budget float64) (map[graph.NodeID]float64, error) {
	if s < 0 || int(s) >= g.NumNodes() {
		return nil, fmt.Errorf("search: source %d out of range [0,%d)", s, g.NumNodes())
	}
	if budget < 0 || math.IsNaN(budget) {
		return nil, fmt.Errorf("search: budget %v must be non-negative", budget)
	}
	lc, err := newLifecycle(ctx)
	if err != nil {
		return nil, err
	}
	n := g.NumNodes()
	ws := acquireWorkspace(n)
	defer releaseWorkspace(ws)
	lb := &ws.fwd
	h := ws.heap
	lb.touch(s)
	lb.dist[s] = 0
	h.Push(int(s), 0)
	out := make(map[graph.NodeID]float64)
	expansions := 0
	for {
		if err := lc.poll(expansions); err != nil {
			return nil, err
		}
		expansions++
		ui, du, ok := h.PopMin()
		if !ok || du > budget {
			return out, nil
		}
		u := graph.NodeID(ui)
		out[u] = du
		g.Neighbors(u, func(a graph.Arc) {
			v := a.Head
			lb.touch(v)
			nd := du + a.Cost
			if nd < lb.dist[v] && nd <= budget {
				lb.dist[v] = nd
				h.PushOrUpdate(int(v), nd)
			}
		})
	}
}

// VerifyAdmissible checks an estimator empirically against destination d: it
// computes the true remaining cost h*(u) for every node u (one backward
// Dijkstra over the reverse graph) and returns every node whose estimate
// exceeds h*(u) by more than eps. An empty slice means the estimator is
// admissible for this destination; the paper's Section 5.3 observation that
// manhattan distance is inadmissible on the Minneapolis map is reproduced by
// this check.
func VerifyAdmissible(g *graph.Graph, est *estimator.Estimator, d graph.NodeID, eps float64) []estimator.Violation {
	rg := g.ReverseView()
	trueCost, _ := SingleSource(rg, d)
	var out []estimator.Violation
	for u := graph.NodeID(0); int(u) < g.NumNodes(); u++ {
		if math.IsInf(trueCost[u], 1) {
			continue // unreachable: any finite estimate is fine
		}
		e := est.Estimate(g, u, d)
		if e > trueCost[u]+eps {
			out = append(out, estimator.Violation{U: u, D: d, Estimate: e, TrueCost: trueCost[u]})
		}
	}
	return out
}
