package search

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/graph"
	"repro/internal/pqueue"
)

// KShortest returns up to k loopless paths from s to d in increasing cost
// order, using Yen's algorithm over restricted Dijkstra runs. Alternate
// routes are a staple ATIS feature — the traveller picks among the best few
// routes, trading distance against familiarity — and a natural extension of
// the paper's single-pair computation.
//
// The result is empty when no path exists. Ties are returned in a
// deterministic order.
func KShortest(g *graph.Graph, s, d graph.NodeID, k int) ([]Result, error) {
	return KShortestCtx(context.Background(), g, s, d, k)
}

// KShortestCtx is KShortest under a request lifecycle: every spur-path
// Dijkstra run polls ctx (see BestFirstCtx), so a Yen's iteration — a
// whole family of restricted searches per accepted path — stops with a
// typed lifecycle error as soon as the context dies.
func KShortestCtx(ctx context.Context, g *graph.Graph, s, d graph.NodeID, k int) ([]Result, error) {
	if err := validatePair(g, s, d); err != nil {
		return nil, err
	}
	if k <= 0 {
		return nil, fmt.Errorf("search: k = %d, want at least 1", k)
	}
	first, err := DijkstraCtx(ctx, g, s, d)
	if err != nil {
		return nil, err
	}
	if !first.Found {
		return nil, nil
	}

	accepted := []Result{first}
	seen := map[string]bool{pathKey(first.Path): true}
	var candidates []Result

	for len(accepted) < k {
		prev := accepted[len(accepted)-1].Path.Nodes
		// Each node of the previous path except the destination serves as a
		// spur node.
		for j := 0; j+1 < len(prev); j++ {
			spur := prev[j]
			root := prev[:j+1]

			// Ban the outgoing edges that previously-accepted paths with
			// the same root take from the spur node, and the root's interior
			// nodes, forcing a genuinely new continuation.
			bannedEdges := map[[2]graph.NodeID]bool{}
			for _, a := range accepted {
				nodes := a.Path.Nodes
				if len(nodes) > j+1 && equalPrefix(nodes, root) {
					bannedEdges[[2]graph.NodeID{nodes[j], nodes[j+1]}] = true
				}
			}
			bannedNodes := make([]bool, g.NumNodes())
			for _, u := range root[:len(root)-1] {
				bannedNodes[u] = true
			}

			spurRes, err := restrictedDijkstra(ctx, g, spur, d, bannedNodes, bannedEdges)
			if err != nil {
				return nil, err
			}
			if !spurRes.Found {
				continue
			}
			rootCost, err := (graph.Path{Nodes: append([]graph.NodeID(nil), root...)}).CostIn(g)
			if err != nil {
				return nil, err
			}
			total := append(append([]graph.NodeID(nil), root[:len(root)-1]...), spurRes.Path.Nodes...)
			cand := Result{
				Found: true,
				Path:  graph.Path{Nodes: total},
				Cost:  rootCost + spurRes.Cost,
			}
			key := pathKey(cand.Path)
			if !seen[key] {
				seen[key] = true
				candidates = append(candidates, cand)
			}
		}
		if len(candidates) == 0 {
			break
		}
		// Deterministic extraction: cheapest candidate, ties by node
		// sequence.
		sort.Slice(candidates, func(i, j int) bool {
			if candidates[i].Cost != candidates[j].Cost {
				return candidates[i].Cost < candidates[j].Cost
			}
			return pathKey(candidates[i].Path) < pathKey(candidates[j].Path)
		})
		accepted = append(accepted, candidates[0])
		candidates = candidates[1:]
	}
	return accepted, nil
}

// pathKey canonicalises a path for dedup.
func pathKey(p graph.Path) string {
	var sb strings.Builder
	for _, u := range p.Nodes {
		fmt.Fprintf(&sb, "%d,", u)
	}
	return sb.String()
}

func equalPrefix(nodes, prefix []graph.NodeID) bool {
	if len(nodes) < len(prefix) {
		return false
	}
	for i := range prefix {
		if nodes[i] != prefix[i] {
			return false
		}
	}
	return true
}

// restrictedDijkstra is Dijkstra that may not enter banned nodes nor take
// banned edges. The source is allowed even if marked banned (spur nodes are
// never banned by the caller, but defensive anyway). The loop polls ctx
// like every other kernel loop; a non-nil error is a typed lifecycle
// error.
func restrictedDijkstra(ctx context.Context, g *graph.Graph, s, d graph.NodeID, bannedNodes []bool, bannedEdges map[[2]graph.NodeID]bool) (Result, error) {
	lc, err := newLifecycle(ctx)
	if err != nil {
		return Result{}, err
	}
	n := g.NumNodes()
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	prev := make([]graph.NodeID, n)
	for i := range prev {
		prev[i] = graph.Invalid
	}
	closed := make([]bool, n)
	h := pqueue.NewIndexed(n)
	dist[s] = 0
	h.Push(int(s), 0)
	var tr Trace
	for {
		if err := lc.poll(tr.Iterations); err != nil {
			return notFound(tr), err
		}
		ui, du, ok := h.PopMin()
		if !ok {
			return notFound(tr), nil
		}
		u := graph.NodeID(ui)
		closed[u] = true
		if u == d {
			return Result{Found: true, Path: graph.BuildPath(prev, s, d), Cost: du, Trace: tr}, nil
		}
		tr.Iterations++
		g.Neighbors(u, func(a graph.Arc) {
			v := a.Head
			if closed[v] || bannedNodes[v] || bannedEdges[[2]graph.NodeID{u, v}] {
				return
			}
			nd := du + a.Cost
			if nd < dist[v] {
				dist[v] = nd
				prev[v] = u
				h.PushOrUpdate(int(v), nd)
			}
		})
	}
}
