package search

import (
	"math"
	"sync"

	"repro/internal/graph"
	"repro/internal/pqueue"
)

// labelSet is one epoch-stamped set of per-node search labels (cost label,
// tree pointer, status flags). Stamping replaces the O(n) per-query clear the
// paper's storage-management analysis charges every run with: a label is
// valid only when its stamp equals the set's current epoch, so "clearing" the
// whole array is a single counter increment and each node is lazily
// initialised the first time a query touches it. Work per query becomes
// proportional to the nodes the search visits, not to the graph size.
type labelSet struct {
	epoch uint64
	stamp []uint64
	dist  []float64
	prev  []graph.NodeID
	flags []uint8
}

const (
	flagClosed   uint8 = 1 << 0 // node settled (Dijkstra/A* closed set)
	flagFrontier uint8 = 1 << 1 // node queued in Iterative's frontier
)

// reset prepares the set for a fresh query over n nodes. Growth reallocates;
// otherwise the arrays are retained and only the epoch advances.
func (l *labelSet) reset(n int) {
	if cap(l.stamp) < n {
		l.stamp = make([]uint64, n)
		l.dist = make([]float64, n)
		l.prev = make([]graph.NodeID, n)
		l.flags = make([]uint8, n)
		l.epoch = 0
	}
	l.stamp = l.stamp[:n]
	l.dist = l.dist[:n]
	l.prev = l.prev[:n]
	l.flags = l.flags[:n]
	l.epoch++
}

// touch brings node u's label into the current epoch, lazily initialising it
// to the unlabeled state (+Inf cost, no tree pointer, no flags). Every write
// path and every read that may precede a write must touch first.
func (l *labelSet) touch(u graph.NodeID) {
	if l.stamp[u] != l.epoch {
		l.stamp[u] = l.epoch
		l.dist[u] = math.Inf(1)
		l.prev[u] = graph.Invalid
		l.flags[u] = 0
	}
}

// distAt reads node u's cost label without stamping: +Inf when the label is
// stale (untouched this query).
func (l *labelSet) distAt(u graph.NodeID) float64 {
	if l.stamp[u] != l.epoch {
		return math.Inf(1)
	}
	return l.dist[u]
}

// Workspace bundles the per-query mutable state of every algorithm in this
// package: two label sets (forward, and backward for bidirectional search),
// two indexed heaps, and the frontier scratch slices of the Iterative
// algorithm. Workspaces are recycled through an internal sync.Pool, so a
// steady stream of queries over the same graph reuses the same arrays and
// performs zero O(n) allocations or clears after warm-up — the direct answer
// to the paper's conclusion that storage management, not algorithmic search,
// dominates single-pair cost.
//
// A Workspace is owned by exactly one query at a time; the pool hands each
// concurrent query its own instance, which makes all package entry points
// safe for concurrent use on an immutable graph without any locking.
type Workspace struct {
	fwd  labelSet
	bwd  labelSet
	heap *pqueue.Indexed
	hf   heapFrontier // reusable frontier adapter around heap
	bh   *pqueue.Indexed

	frontier []graph.NodeID
	next     []graph.NodeID

	fresh bool // set by the pool's New; cleared on first acquisition
}

var workspacePool = sync.Pool{New: func() any { return &Workspace{fresh: true} }}

// acquireWorkspace returns a workspace ready for a query over n nodes, with
// the forward label set and main heap prepared. Backward state is prepared
// lazily by ensureBackward.
func acquireWorkspace(n int) *Workspace {
	ws := workspacePool.Get().(*Workspace)
	if rec := activeRecorder(); rec != nil {
		rec.ObserveWorkspace(!ws.fresh)
	}
	ws.fresh = false
	//lint:ignore hotpath label storage reallocates only when the graph grows; steady state is an epoch bump
	ws.fwd.reset(n)
	if ws.heap == nil {
		//lint:ignore hotpath first acquisition builds the heap; every later query reuses it from the pool
		ws.heap = pqueue.NewIndexed(n)
		ws.hf.h = ws.heap
	} else {
		ws.heap.Grow(n)
		ws.heap.Reset()
	}
	return ws
}

// ensureBackward prepares the backward label set and heap (bidirectional
// search only).
func (ws *Workspace) ensureBackward(n int) {
	//lint:ignore hotpath label storage reallocates only when the graph grows; steady state is an epoch bump
	ws.bwd.reset(n)
	if ws.bh == nil {
		//lint:ignore hotpath first acquisition builds the heap; every later query reuses it from the pool
		ws.bh = pqueue.NewIndexed(n)
	} else {
		ws.bh.Grow(n)
		ws.bh.Reset()
	}
}

// releaseWorkspace returns ws to the pool. The caller must not retain any
// reference into the workspace's arrays (results are built before release).
func releaseWorkspace(ws *Workspace) { workspacePool.Put(ws) }

// frontierFor returns the frontier implementation for kind. The default
// heap frontier reuses the workspace's pooled indexed heap; the scan and
// duplicate-tolerant ablation variants allocate per query, as before — they
// exist to measure the paper's design alternatives, not to serve traffic.
func (ws *Workspace) frontierFor(kind FrontierKind, n int) frontier {
	if kind == FrontierHeap {
		return &ws.hf
	}
	//lint:ignore hotpath ablation frontiers allocate per query by design; they measure alternatives, not serve traffic
	return newFrontier(kind, n)
}
