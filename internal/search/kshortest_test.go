package search

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/gridgen"
)

func TestKShortestSimple(t *testing.T) {
	// Two disjoint routes 0→3: via 1 (cost 2) and via 2 (cost 3), plus the
	// direct edge (cost 4).
	b := graph.NewBuilder(4, 5)
	for i := 0; i < 4; i++ {
		b.AddNode(float64(i), 0)
	}
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 3, 1)
	b.AddEdge(0, 2, 1.5)
	b.AddEdge(2, 3, 1.5)
	b.AddEdge(0, 3, 4)
	g := b.MustBuild()

	paths, err := KShortest(g, 0, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 3 {
		t.Fatalf("got %d paths, want 3", len(paths))
	}
	wantCosts := []float64{2, 3, 4}
	for i, p := range paths {
		if math.Abs(p.Cost-wantCosts[i]) > 1e-12 {
			t.Errorf("path %d cost %v, want %v", i, p.Cost, wantCosts[i])
		}
		if !p.Path.ValidIn(g) {
			t.Errorf("path %d invalid: %v", i, p.Path.Nodes)
		}
	}
}

func TestKShortestFirstIsOptimal(t *testing.T) {
	g := gridgen.MustGenerate(gridgen.Config{K: 10, Model: gridgen.Variance, Seed: 4})
	s, d := gridgen.Pair(10, gridgen.SemiDiagonal, 0)
	opt, _ := Dijkstra(g, s, d)
	paths, err := KShortest(g, s, d, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 4 {
		t.Fatalf("got %d paths", len(paths))
	}
	if math.Abs(paths[0].Cost-opt.Cost) > 1e-12 {
		t.Errorf("first path cost %v != optimal %v", paths[0].Cost, opt.Cost)
	}
}

func TestKShortestOrderedDistinctLoopless(t *testing.T) {
	g := gridgen.MustGenerate(gridgen.Config{K: 8, Model: gridgen.Variance, Seed: 9})
	s, d := gridgen.Pair(8, gridgen.Diagonal, 0)
	paths, err := KShortest(g, s, d, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 8 {
		t.Fatalf("got %d paths", len(paths))
	}
	seen := map[string]bool{}
	for i, p := range paths {
		if i > 0 && p.Cost < paths[i-1].Cost-1e-12 {
			t.Errorf("path %d cost %v below previous %v", i, p.Cost, paths[i-1].Cost)
		}
		key := pathKey(p.Path)
		if seen[key] {
			t.Errorf("duplicate path %v", p.Path.Nodes)
		}
		seen[key] = true
		// Loopless: no repeated nodes.
		nodes := map[graph.NodeID]bool{}
		for _, u := range p.Path.Nodes {
			if nodes[u] {
				t.Errorf("path %d revisits node %d", i, u)
			}
			nodes[u] = true
		}
		if c, err := p.Path.CostIn(g); err != nil || math.Abs(c-p.Cost) > 1e-9 {
			t.Errorf("path %d reported cost %v but costs %v (%v)", i, p.Cost, c, err)
		}
	}
}

func TestKShortestNoPath(t *testing.T) {
	b := graph.NewBuilder(2, 0)
	b.AddNode(0, 0)
	b.AddNode(1, 0)
	g := b.MustBuild()
	paths, err := KShortest(g, 0, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 0 {
		t.Errorf("got %d paths across a disconnection", len(paths))
	}
}

func TestKShortestExhaustsAlternatives(t *testing.T) {
	// A path graph has exactly one loopless route.
	b := graph.NewBuilder(3, 2)
	for i := 0; i < 3; i++ {
		b.AddNode(float64(i), 0)
	}
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 1)
	g := b.MustBuild()
	paths, err := KShortest(g, 0, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 1 {
		t.Errorf("got %d paths on a line, want 1", len(paths))
	}
}

func TestKShortestValidation(t *testing.T) {
	g := gridgen.MustGenerate(gridgen.Config{K: 3})
	if _, err := KShortest(g, 0, 8, 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := KShortest(g, -1, 2, 1); err == nil {
		t.Error("bad source accepted")
	}
	// k=1 equals Dijkstra.
	paths, err := KShortest(g, 0, 8, 1)
	if err != nil || len(paths) != 1 {
		t.Fatalf("k=1: %v %d", err, len(paths))
	}
	dij, _ := Dijkstra(g, 0, 8)
	if paths[0].Cost != dij.Cost {
		t.Errorf("k=1 cost %v != dijkstra %v", paths[0].Cost, dij.Cost)
	}
}

// Oracle property: on small random graphs, KShortest(k) must return the k
// cheapest of all loopless paths found by brute-force enumeration.
func TestKShortestAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 25; trial++ {
		n := 4 + rng.Intn(4)
		b := graph.NewBuilder(n, n*n)
		for i := 0; i < n; i++ {
			b.AddNode(rng.Float64(), rng.Float64())
		}
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if u != v && rng.Float64() < 0.5 {
					b.AddEdge(graph.NodeID(u), graph.NodeID(v), 0.1+rng.Float64())
				}
			}
		}
		g := b.MustBuild()
		s, d := graph.NodeID(0), graph.NodeID(n-1)

		// Brute force: DFS enumerating all loopless paths.
		var all []float64
		var dfs func(u graph.NodeID, visited map[graph.NodeID]bool, cost float64)
		dfs = func(u graph.NodeID, visited map[graph.NodeID]bool, cost float64) {
			if u == d {
				all = append(all, cost)
				return
			}
			g.Neighbors(u, func(a graph.Arc) {
				if visited[a.Head] {
					return
				}
				visited[a.Head] = true
				dfs(a.Head, visited, cost+a.Cost)
				delete(visited, a.Head)
			})
		}
		dfs(s, map[graph.NodeID]bool{s: true}, 0)
		sortFloats(all)

		const k = 4
		paths, err := KShortest(g, s, d, k)
		if err != nil {
			t.Fatal(err)
		}
		wantLen := k
		if len(all) < k {
			wantLen = len(all)
		}
		if len(paths) != wantLen {
			t.Fatalf("trial %d: got %d paths, brute force says %d (of %d total)", trial, len(paths), wantLen, len(all))
		}
		for i, p := range paths {
			if math.Abs(p.Cost-all[i]) > 1e-9 {
				t.Fatalf("trial %d: path %d cost %v, brute force %v", trial, i, p.Cost, all[i])
			}
		}
	}
}

func sortFloats(xs []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
