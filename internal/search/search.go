// Package search implements the in-memory single-pair path-computation
// algorithms of Section 3 of the paper:
//
//   - Iterative — the breadth-first, label-correcting transitive-closure
//     style algorithm of Figure 1. It cannot terminate before exploring the
//     whole reachable graph and its work is insensitive to path length.
//   - Dijkstra — Figure 2: partial transitive closure with one-edge
//     lookahead. Terminates as soon as the destination is selected from the
//     frontier (Lemma 2).
//   - A* — Figure 3: best-first search ordered by actual cost plus an
//     estimator f(u, d). Terminates when the destination is selected; with
//     an admissible estimator the returned path is optimal (Lemma 3).
//
// Beyond the paper's three candidates, the package provides bidirectional
// Dijkstra and weighted A* (via a scaled estimator) as the
// optimality/speed-tradeoff extensions the paper's conclusion proposes, plus
// the frontier-management variants (linear-scan selection, duplicates
// allowed) from the design-decision analysis of Sections 4 and 5.3.
//
// All algorithms return a Result carrying the path, its cost, and a Trace
// with the iteration counts the paper reports: Iterations is frontier
// *rounds* for Iterative and *expansions* (selections of a non-destination
// node) for Dijkstra and A*, matching Tables 5–8.
package search

import (
	"context"
	"fmt"
	"math"
	"time"

	"repro/internal/estimator"
	"repro/internal/graph"
)

// Trace records the work an algorithm performed; the experiment harness
// compares these counters against the paper's tables.
type Trace struct {
	// Iterations is the paper's headline counter: frontier rounds for the
	// Iterative algorithm, node expansions for Dijkstra and A*.
	Iterations int
	// Expansions counts adjacency-list fetches (every node whose neighbours
	// were examined). For Dijkstra/A* it equals Iterations.
	Expansions int
	// Relaxations counts examined edges.
	Relaxations int
	// Improvements counts label decreases (path revisions).
	Improvements int
	// Reopens counts closed nodes whose label later improved — the
	// "backtracking" the paper attributes varying costs to. Non-zero only
	// for label-correcting search or A* with an inadmissible estimator.
	Reopens int
	// MaxFrontier is the high-water mark of the frontier set size.
	MaxFrontier int
	// HeapPushes counts frontier insertions (heap pushes for the best-first
	// algorithms, next-round appends for Iterative).
	HeapPushes uint64
	// HeapPops counts frontier removals (heap pops / round consumption).
	HeapPops uint64
}

// Result is the outcome of a single-pair computation.
type Result struct {
	// Found reports whether any path from source to destination exists.
	Found bool
	// Path is the discovered path (empty when !Found).
	Path graph.Path
	// Cost is the cost of Path; +Inf when !Found.
	Cost float64
	// Trace is the work accounting for this run.
	Trace Trace
}

// validatePair checks endpoints before a run.
func validatePair(g *graph.Graph, s, d graph.NodeID) error {
	n := graph.NodeID(g.NumNodes())
	if s < 0 || s >= n {
		//lint:ignore hotpath cold validation error path: a rejected request never reaches the loop
		return fmt.Errorf("search: source %d out of range [0,%d)", s, n)
	}
	if d < 0 || d >= n {
		//lint:ignore hotpath cold validation error path: a rejected request never reaches the loop
		return fmt.Errorf("search: destination %d out of range [0,%d)", d, n)
	}
	return nil
}

// notFound builds the canonical "no path" result.
func notFound(tr Trace) Result {
	return Result{Found: false, Cost: math.Inf(1), Trace: tr}
}

// observeRun forwards a completed run to rec. Callers obtain rec once via
// activeRecorder before starting the clock so a recorder installed mid-run
// never sees half a query, and skip the call entirely (taking no
// timestamps) when recording is disabled.
func observeRun(rec Recorder, algo string, start time.Time, res *Result, err *error) {
	if *err == nil {
		rec.ObserveSearch(algo, time.Since(start).Seconds(), res.Trace)
	}
}

// Iterative runs the breadth-first label-correcting algorithm of Figure 1.
// Every round removes the whole frontier, fetches each member's adjacency
// list, relaxes the out-edges, and inserts improved neighbours into the next
// frontier (duplicate avoidance, the strategy the paper prefers in
// Section 4). The algorithm terminates when the frontier empties, i.e. it
// settles shortest paths from the source to every reachable node, then
// reports the one to d. Requires non-negative edge costs (Lemma 1).
func Iterative(g *graph.Graph, s, d graph.NodeID) (Result, error) {
	return IterativeCtx(context.Background(), g, s, d)
}

// IterativeCtx is Iterative under a request lifecycle: the run polls ctx
// every CheckInterval expansions (amortised, see lifecycle.poll) and
// stops with ErrCanceled, ErrDeadline, or ErrBudget — carrying the
// partial Trace of the abandoned work — as soon as the context dies or
// the expansion budget (WithBudget) runs out. Because the algorithm
// cannot terminate before exploring the whole reachable graph, it is the
// kernel that profits most from a bounded lifecycle.
//
//atis:hotpath
func IterativeCtx(ctx context.Context, g *graph.Graph, s, d graph.NodeID) (res Result, err error) {
	if err := validatePair(g, s, d); err != nil {
		return Result{}, err
	}
	lc, err := newLifecycle(ctx)
	if err != nil {
		return Result{}, err
	}
	if rec := activeRecorder(); rec != nil {
		defer observeRun(rec, "iterative", time.Now(), &res, &err)
	}
	ws := acquireWorkspace(g.NumNodes())
	defer releaseWorkspace(ws)
	lb := &ws.fwd

	lb.touch(s)
	lb.dist[s] = 0
	lb.flags[s] |= flagFrontier
	// Two frontier buffers ping-pong across rounds; the workspace retains
	// their grown backing arrays for the next query.
	frontier := append(ws.frontier[:0], s)
	next := ws.next[:0]

	var tr Trace
	tr.HeapPushes++ // the seed node
	for len(frontier) > 0 {
		tr.Iterations++
		if len(frontier) > tr.MaxFrontier {
			tr.MaxFrontier = len(frontier)
		}
		tr.HeapPops += uint64(len(frontier)) // rounds consume the frontier wholesale
		next = next[:0]
		for _, u := range frontier {
			if err := lc.poll(tr.Expansions); err != nil {
				ws.frontier, ws.next = frontier, next
				return notFound(tr), err
			}
			lb.flags[u] &^= flagFrontier
			tr.Expansions++
			g.Neighbors(u, func(a graph.Arc) {
				tr.Relaxations++
				lb.touch(a.Head)
				nd := lb.dist[u] + a.Cost
				if nd < lb.dist[a.Head] {
					if !math.IsInf(lb.dist[a.Head], 1) && lb.flags[a.Head]&flagFrontier == 0 {
						tr.Reopens++
					}
					lb.dist[a.Head] = nd
					lb.prev[a.Head] = u
					tr.Improvements++
					if lb.flags[a.Head]&flagFrontier == 0 {
						lb.flags[a.Head] |= flagFrontier
						next = append(next, a.Head)
						tr.HeapPushes++
					}
				}
			})
		}
		frontier, next = next, frontier
	}
	ws.frontier, ws.next = frontier, next

	if math.IsInf(lb.distAt(d), 1) {
		return notFound(tr), nil
	}
	return Result{
		Found: true,
		//lint:ignore hotpath result materialisation: the returned path is the query's one allocation
		Path:  graph.BuildPath(lb.prev, s, d),
		Cost:  lb.dist[d],
		Trace: tr,
	}, nil
}

// Dijkstra runs the algorithm of Figure 2 with early termination: the run
// stops as soon as the destination is selected from the frontier, at which
// point its label is the shortest-path cost (Lemma 2). Closed nodes are
// never reopened, which is sound for non-negative costs.
func Dijkstra(g *graph.Graph, s, d graph.NodeID) (Result, error) {
	return BestFirst(g, s, d, Options{Estimator: estimator.Zero(), Label: "dijkstra"})
}

// DijkstraCtx is Dijkstra under a request lifecycle (see BestFirstCtx).
func DijkstraCtx(ctx context.Context, g *graph.Graph, s, d graph.NodeID) (Result, error) {
	return BestFirstCtx(ctx, g, s, d, Options{Estimator: estimator.Zero(), Label: "dijkstra"})
}

// AStar runs the best-first algorithm of Figure 3 with the given estimator.
// Following the paper's pseudo-code, a closed node whose label improves is
// reopened (re-enters the frontier); with admissible estimators this never
// happens and the result is optimal, with inadmissible ones (manhattan on a
// road map) it bounds the damage while still not guaranteeing optimality.
func AStar(g *graph.Graph, s, d graph.NodeID, est *estimator.Estimator) (Result, error) {
	return BestFirst(g, s, d, Options{Estimator: est, AllowReopen: true, Label: "astar"})
}

// AStarCtx is AStar under a request lifecycle (see BestFirstCtx).
func AStarCtx(ctx context.Context, g *graph.Graph, s, d graph.NodeID, est *estimator.Estimator) (Result, error) {
	return BestFirstCtx(ctx, g, s, d, Options{Estimator: est, AllowReopen: true, Label: "astar"})
}

// FrontierKind selects the data structure behind "select u from frontierSet
// with minimum cost" — the implementation decision Section 5.3 studies.
type FrontierKind int

const (
	// FrontierHeap uses an indexed binary heap with decrease-key: the
	// efficient main-memory choice.
	FrontierHeap FrontierKind = iota
	// FrontierScan keeps frontier members in a dense array and selects the
	// minimum by a full scan, mirroring the relational implementation where
	// selection is a scan of the open tuples (paper Section 5.3).
	FrontierScan
	// FrontierDuplicates allows duplicate frontier entries (no
	// decrease-key); stale entries are skipped at selection time. This is
	// the "allowing duplicates leads to redundant iterations" strategy of
	// Section 4, kept for the ablation bench.
	FrontierDuplicates
)

// String names the kind for reports.
func (k FrontierKind) String() string {
	switch k {
	case FrontierHeap:
		return "heap"
	case FrontierScan:
		return "scan"
	case FrontierDuplicates:
		return "duplicates"
	default:
		return fmt.Sprintf("FrontierKind(%d)", int(k))
	}
}

// Options configures BestFirst.
type Options struct {
	// Estimator orders the frontier by dist + estimate. nil means the zero
	// estimator, i.e. Dijkstra.
	Estimator *estimator.Estimator
	// Frontier selects the frontier data structure; default FrontierHeap.
	Frontier FrontierKind
	// AllowReopen permits a closed node whose label improves to re-enter
	// the frontier (paper Figure 3 semantics). Dijkstra (Figure 2) keeps it
	// false: its insertion guard checks frontier ∪ explored.
	AllowReopen bool
	// Label names the run for the telemetry Recorder ("dijkstra",
	// "astar-euclidean", …). Empty means "best-first". It has no effect on
	// the computation.
	Label string
}

// BestFirst is the engine behind Dijkstra and AStar: repeatedly select the
// frontier node minimising dist(u) + f(u, d), close it, stop if it is the
// destination, otherwise relax its out-edges.
func BestFirst(g *graph.Graph, s, d graph.NodeID, opts Options) (Result, error) {
	return BestFirstCtx(context.Background(), g, s, d, opts)
}

// BestFirstCtx is BestFirst under a request lifecycle: the run polls ctx
// once per frontier pop (amortised to one ctx.Err() read every
// CheckInterval pops) and stops with ErrCanceled, ErrDeadline, or
// ErrBudget plus the partial Trace as soon as the context dies or the
// expansion budget (WithBudget) runs out.
//
//atis:hotpath
func BestFirstCtx(ctx context.Context, g *graph.Graph, s, d graph.NodeID, opts Options) (res Result, err error) {
	if err := validatePair(g, s, d); err != nil {
		return Result{}, err
	}
	lc, err := newLifecycle(ctx)
	if err != nil {
		return Result{}, err
	}
	if rec := activeRecorder(); rec != nil {
		algo := opts.Label
		if algo == "" {
			algo = "best-first"
		}
		defer observeRun(rec, algo, time.Now(), &res, &err)
	}
	n := g.NumNodes()
	ws := acquireWorkspace(n)
	defer releaseWorkspace(ws)
	lb := &ws.fwd

	front := ws.frontierFor(opts.Frontier, n)
	est := opts.Estimator

	lb.touch(s)
	lb.dist[s] = 0
	front.push(int(s), est.Estimate(g, s, d), 0)

	var tr Trace
	for {
		if err := lc.poll(tr.Expansions); err != nil {
			tr.HeapPushes, tr.HeapPops = front.ops()
			return notFound(tr), err
		}
		if front.len() > tr.MaxFrontier {
			tr.MaxFrontier = front.len()
		}
		ui, ok := front.popMin()
		if !ok {
			tr.HeapPushes, tr.HeapPops = front.ops()
			return notFound(tr), nil
		}
		u := graph.NodeID(ui)
		if lb.flags[u]&flagClosed != 0 && !opts.AllowReopen {
			// Stale duplicate entry (FrontierDuplicates without reopening).
			continue
		}
		lb.flags[u] |= flagClosed
		if u == d {
			tr.HeapPushes, tr.HeapPops = front.ops()
			return Result{
				Found: true,
				//lint:ignore hotpath result materialisation: the returned path is the query's one allocation
				Path:  graph.BuildPath(lb.prev, s, d),
				Cost:  lb.dist[d],
				Trace: tr,
			}, nil
		}
		tr.Iterations++
		tr.Expansions++
		g.Neighbors(u, func(a graph.Arc) {
			tr.Relaxations++
			v := a.Head
			lb.touch(v)
			nd := lb.dist[u] + a.Cost
			if nd >= lb.dist[v] {
				return
			}
			if lb.flags[v]&flagClosed != 0 {
				if !opts.AllowReopen {
					return // Figure 2: never revisit explored nodes
				}
				lb.flags[v] &^= flagClosed
				tr.Reopens++
			}
			lb.dist[v] = nd
			lb.prev[v] = u
			tr.Improvements++
			// Tie-break by −dist: among equal f the deeper node wins, so a
			// perfect estimator walks straight to the destination instead of
			// flooding the f-plateau.
			front.pushOrUpdate(int(v), nd+est.Estimate(g, v, d), -nd)
		})
	}
}
