package optimizer

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/join"
)

func TestDefaultParamsMatchTable4A(t *testing.T) {
	p := DefaultParams()
	if p.TRead != 0.035 || p.TWrite != 0.05 || p.TUpdate != 0.085 {
		t.Errorf("latencies: %+v", p)
	}
	if p.ISAMLevels != 3 || p.BlockSize != 4096 {
		t.Errorf("levels/block: %+v", p)
	}
	if p.BfS != 128 || p.BfR != 256 || p.BfRS != 86 {
		t.Errorf("blocking factors: %+v", p)
	}
	if p.CreateCost != 0.5 || p.DeleteCost != 0.5 {
		t.Errorf("create/delete: %+v", p)
	}
}

func TestNestedLoopFormula(t *testing.T) {
	// The paper's example: F = B1·t_read + B1·B2·t_read + B3·t_write.
	p := DefaultParams()
	in := JoinInput{B1: 2, B2: 28, B3: 1}
	got, err := JoinCost(join.NestedLoop, p, in)
	if err != nil {
		t.Fatal(err)
	}
	want := 2*0.035 + 2*28*0.035 + 1*0.05
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("nested loop = %v, want %v", got, want)
	}
}

func TestHashBeatsNestedLoopOnLargeInputs(t *testing.T) {
	p := DefaultParams()
	in := JoinInput{B1: 50, B2: 50, B3: 10, OuterTuples: 50 * p.BfR}
	nl, _ := JoinCost(join.NestedLoop, p, in)
	h, _ := JoinCost(join.Hash, p, in)
	if h >= nl {
		t.Errorf("hash %v not below nested loop %v on large inputs", h, nl)
	}
}

func TestPrimaryKeyWinsForSingleTupleOuter(t *testing.T) {
	// One current node probing a 28-block edge relation: the index join
	// must win — this is why the DB algorithms fetch adjacency by index.
	p := DefaultParams()
	in := JoinInput{B1: 1, B2: 28, B3: 1, OuterTuples: 1}
	choice, err := Choose(p, in)
	if err != nil {
		t.Fatal(err)
	}
	if choice.Strategy != join.PrimaryKey {
		t.Errorf("chose %v (costs %v)", choice.Strategy, choice.All)
	}
	if len(choice.All) != 4 {
		t.Errorf("breakdown has %d strategies", len(choice.All))
	}
}

func TestChooseIsArgmin(t *testing.T) {
	p := DefaultParams()
	cases := []JoinInput{
		{B1: 1, B2: 1, B3: 1, OuterTuples: 1},
		{B1: 4, B2: 28, B3: 1, OuterTuples: 1000},
		{B1: 100, B2: 100, B3: 50, OuterTuples: 25000},
		{B1: 0, B2: 0, B3: 0, OuterTuples: 0},
	}
	for _, in := range cases {
		choice, err := Choose(p, in)
		if err != nil {
			t.Fatal(err)
		}
		for s, c := range choice.All {
			if c < choice.Cost {
				t.Errorf("input %+v: %v costs %v < chosen %v", in, s, c, choice.Cost)
			}
		}
		if choice.All[choice.Strategy] != choice.Cost {
			t.Errorf("input %+v: chosen cost inconsistent", in)
		}
	}
}

func TestExplain(t *testing.T) {
	p := DefaultParams()
	choice, err := Choose(p, JoinInput{B1: 1, B2: 28, B3: 1, OuterTuples: 1})
	if err != nil {
		t.Fatal(err)
	}
	out := choice.Explain()
	for _, want := range []string{"->", "nested-loop", "hash", "sort-merge", "primary-key", "units"} {
		if !containsStr(out, want) {
			t.Errorf("Explain missing %q:\n%s", want, out)
		}
	}
}

func containsStr(haystack, needle string) bool {
	for i := 0; i+len(needle) <= len(haystack); i++ {
		if haystack[i:i+len(needle)] == needle {
			return true
		}
	}
	return false
}

func TestFEqualsChooseCost(t *testing.T) {
	p := DefaultParams()
	in := JoinInput{B1: 3, B2: 17, B3: 2, OuterTuples: 40}
	choice, _ := Choose(p, in)
	if F(p, in) != choice.Cost {
		t.Error("F and Choose disagree")
	}
}

func TestNegativeInputsRejected(t *testing.T) {
	p := DefaultParams()
	if _, err := JoinCost(join.Hash, p, JoinInput{B1: -1}); err == nil {
		t.Error("negative B1 accepted")
	}
	if _, err := Choose(p, JoinInput{B3: -2}); err == nil {
		t.Error("negative B3 accepted by Choose")
	}
	if _, err := JoinCost(join.Strategy(7), p, JoinInput{}); err == nil {
		t.Error("unknown strategy accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("F did not panic on negative input")
		}
	}()
	F(p, JoinInput{B1: -1})
}

func TestSortMergeZeroBlocksIsFinite(t *testing.T) {
	p := DefaultParams()
	c, err := JoinCost(join.SortMerge, p, JoinInput{})
	if err != nil || math.IsNaN(c) || math.IsInf(c, 0) || c != 0 {
		t.Errorf("sort-merge on empty = %v, %v", c, err)
	}
	// Single-block inputs need no sort passes.
	c, _ = JoinCost(join.SortMerge, p, JoinInput{B1: 1, B2: 1, B3: 1})
	want := 2*p.TRead + p.TWrite
	if math.Abs(c-want) > 1e-12 {
		t.Errorf("single-block sort-merge = %v, want %v", c, want)
	}
}

func TestBlocks(t *testing.T) {
	cases := []struct{ tuples, bf, want int }{
		{0, 10, 0},
		{1, 10, 1},
		{10, 10, 1},
		{11, 10, 2},
		{900, 256, 4},
		{3480, 128, 28},
		{5, 0, 0},
		{-3, 10, 0},
	}
	for _, c := range cases {
		if got := Blocks(c.tuples, c.bf); got != c.want {
			t.Errorf("Blocks(%d,%d) = %d, want %d", c.tuples, c.bf, got, c.want)
		}
	}
}

func TestSelectCost(t *testing.T) {
	p := DefaultParams()
	if got, want := SelectCost(p, 10, true), 4*0.035; math.Abs(got-want) > 1e-12 {
		t.Errorf("indexed select = %v, want %v", got, want)
	}
	if got, want := SelectCost(p, 10, false), 10*0.035; math.Abs(got-want) > 1e-12 {
		t.Errorf("scan select = %v, want %v", got, want)
	}
}

// Property: costs are non-negative and monotone in each block count.
func TestCostMonotonicityProperty(t *testing.T) {
	p := DefaultParams()
	f := func(b1, b2, b3, extra uint8) bool {
		base := JoinInput{B1: int(b1), B2: int(b2), B3: int(b3), OuterTuples: int(b1) * p.BfR}
		bigger := base
		bigger.B2 += int(extra)
		bigger.OuterTuples = bigger.B1 * p.BfR
		for _, s := range join.Strategies() {
			c0, err := JoinCost(s, p, base)
			if err != nil || c0 < 0 {
				return false
			}
			c1, err := JoinCost(s, p, bigger)
			if err != nil || c1+1e-9 < c0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
