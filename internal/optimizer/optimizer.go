// Package optimizer implements the query-optimizer simulation of Section 4:
// algebraic I/O-cost formulas for the four join strategies and the chooser
// F(B1, B2, B3) that "uses the input parameters to choose the cheapest join
// strategy from among four viable choices". The paper implemented this
// simulation in C to predict INGRES execution within ten percent; here the
// same formulas both drive the engine's runtime strategy choice and feed the
// analytical cost model of the costmodel package.
//
// All costs are in the paper's abstract time units (Table 4A): a block read
// costs TRead, a block write TWrite, and a tuple update TUpdate.
package optimizer

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/join"
)

// Params carries the device and layout constants of Table 4A.
type Params struct {
	// TRead is the time to read one block (0.035 units).
	TRead float64
	// TWrite is the time to write one block (0.05 units).
	TWrite float64
	// TUpdate is the time to update one tuple (t_read + t_write = 0.085).
	TUpdate float64
	// ISAMLevels is the node-relation index depth I_l (3).
	ISAMLevels int
	// CreateCost is I, the cost of creating a temporary relation (0.5).
	CreateCost float64
	// DeleteCost is D_t, the cost of deleting all tuples of a temporary
	// relation (0.5).
	DeleteCost float64
	// BlockSize is B in bytes (4096).
	BlockSize int
	// BfS, BfR, BfRS are the blocking factors of the edge relation, the
	// node relation and their concatenation (128, 256, 86 records/block).
	BfS, BfR, BfRS int
}

// DefaultParams returns the Table 4A values.
func DefaultParams() Params {
	return Params{
		TRead:      0.035,
		TWrite:     0.05,
		TUpdate:    0.085,
		ISAMLevels: 3,
		CreateCost: 0.5,
		DeleteCost: 0.5,
		BlockSize:  4096,
		BfS:        128,
		BfR:        256,
		BfRS:       86,
	}
}

// JoinInput describes one join instance for costing: block counts of the
// outer input (B1), inner input (B2) and result (B3), plus the outer tuple
// count (index strategies pay per probe, not per block).
type JoinInput struct {
	B1, B2, B3  int
	OuterTuples int
}

func (in JoinInput) validate() error {
	if in.B1 < 0 || in.B2 < 0 || in.B3 < 0 || in.OuterTuples < 0 {
		return fmt.Errorf("optimizer: negative join input %+v", in)
	}
	return nil
}

// JoinCost returns the estimated cost of executing the join with the given
// strategy.
func JoinCost(s join.Strategy, p Params, in JoinInput) (float64, error) {
	if err := in.validate(); err != nil {
		return 0, err
	}
	b1, b2, b3 := float64(in.B1), float64(in.B2), float64(in.B3)
	switch s {
	case join.NestedLoop:
		// The paper's example formula: read the outer once, the inner once
		// per outer block, write the result.
		return b1*p.TRead + b1*b2*p.TRead + b3*p.TWrite, nil
	case join.Hash:
		// One pass over each input to build and probe, write the result.
		return b1*p.TRead + b2*p.TRead + b3*p.TWrite, nil
	case join.SortMerge:
		// Sort each input (log passes of read+write), then a merging pass.
		sortCost := func(b float64) float64 {
			if b <= 1 {
				return 0
			}
			return b * math.Ceil(math.Log2(b)) * (p.TRead + p.TWrite)
		}
		return sortCost(b1) + sortCost(b2) + (b1+b2)*p.TRead + b3*p.TWrite, nil
	case join.PrimaryKey:
		// Read the outer, then per outer tuple descend the inner's index
		// (I_l page reads) and fetch the tuple page.
		probes := float64(in.OuterTuples)
		return b1*p.TRead + probes*float64(p.ISAMLevels+1)*p.TRead + b3*p.TWrite, nil
	default:
		return 0, fmt.Errorf("optimizer: unknown strategy %v", s)
	}
}

// Choice is the chooser's result: the winning strategy, its cost, and the
// full per-strategy breakdown for explain output.
type Choice struct {
	Strategy join.Strategy
	Cost     float64
	All      map[join.Strategy]float64
}

// Choose evaluates all four strategies and returns the cheapest — the
// paper's function F. Ties go to the earlier strategy in Strategies()
// order, keeping plans deterministic.
func Choose(p Params, in JoinInput) (Choice, error) {
	c := Choice{Cost: math.Inf(1), All: make(map[join.Strategy]float64, 4)}
	for _, s := range join.Strategies() {
		cost, err := JoinCost(s, p, in)
		if err != nil {
			return Choice{}, err
		}
		c.All[s] = cost
		if cost < c.Cost {
			c.Cost = cost
			c.Strategy = s
		}
	}
	return c, nil
}

// Explain renders the per-strategy cost breakdown with the winner marked,
// for trace output and the CLI tools.
func (c Choice) Explain() string {
	var sb strings.Builder
	for _, s := range join.Strategies() {
		marker := "  "
		if s == c.Strategy {
			marker = "->"
		}
		fmt.Fprintf(&sb, "%s %-12s %10.3f units\n", marker, s, c.All[s])
	}
	return sb.String()
}

// F is the paper's join cost function: the cost of the cheapest strategy
// for the given block counts. It panics only on negative inputs, which are
// caller bugs.
func F(p Params, in JoinInput) float64 {
	c, err := Choose(p, in)
	if err != nil {
		panic(err)
	}
	return c.Cost
}

// Blocks converts a tuple count to blocks under a blocking factor, the
// ⌈n/Bf⌉ computation used throughout the cost tables.
func Blocks(tuples, blockingFactor int) int {
	if tuples <= 0 || blockingFactor <= 0 {
		return 0
	}
	return (tuples + blockingFactor - 1) / blockingFactor
}

// SelectCost estimates retrieving tuples matching a key predicate:
// via the primary index if hasIndex (I_l descent plus one tuple page), else
// a full scan of the relation's blocks.
func SelectCost(p Params, relationBlocks int, hasIndex bool) float64 {
	if hasIndex {
		return float64(p.ISAMLevels+1) * p.TRead
	}
	return float64(relationBlocks) * p.TRead
}
