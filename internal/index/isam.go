package index

import (
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/relation"
	"repro/internal/storage"
)

const (
	isamLeafEntrySize     = 12 // key int32, page int32, slot (4)
	isamInternalEntrySize = 8  // separator key int32, child page int32
	isamHeaderSize        = 2  // count uint16
)

// ISAM is a static multi-level index over unique int32 keys, built once
// from a sorted posting list — the classic INGRES primary index structure
// the paper assumes on the node relation. Its level count is the I_l
// parameter of the cost model: a lookup reads exactly Levels() pages.
//
// ISAM is immutable after construction. The node relation is preloaded with
// every node before the search begins (cost step "Indexing and Sorting the
// node-relation", C_3 of Table 2), and tuples are updated in place
// afterwards, so their rids — and hence this index — never change.
type ISAM struct {
	name    string
	pool    *storage.BufferPool
	root    storage.PageID
	pages   []storage.PageID // every page of the index, for reclamation
	levels  int              // number of page reads per lookup (≥ 1); 0 for empty index
	entries int
}

// BuildISAM constructs the index from postings, which it sorts by key.
// Duplicate keys are rejected: the node relation's node-id is unique.
func BuildISAM(name string, pool *storage.BufferPool, postings []Entry) (*ISAM, error) {
	sorted := append([]Entry(nil), postings...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	for i := 1; i < len(sorted); i++ {
		if sorted[i].Key == sorted[i-1].Key {
			return nil, fmt.Errorf("index %s: duplicate key %d", name, sorted[i].Key)
		}
	}
	ix := &ISAM{name: name, pool: pool, root: storage.InvalidPage, entries: len(sorted)}
	if len(sorted) == 0 {
		return ix, nil
	}

	pageSize := pool.Disk().PageSize()
	leafPer := (pageSize - isamHeaderSize) / isamLeafEntrySize
	internalPer := (pageSize - isamHeaderSize) / isamInternalEntrySize
	if leafPer <= 0 || internalPer <= 1 {
		return nil, fmt.Errorf("index %s: page size %d too small", name, pageSize)
	}

	// Leaf level.
	type levelEntry struct {
		firstKey int32
		page     storage.PageID
	}
	var level []levelEntry
	for start := 0; start < len(sorted); start += leafPer {
		end := start + leafPer
		if end > len(sorted) {
			end = len(sorted)
		}
		frame, err := pool.NewPage()
		if err != nil {
			return nil, err
		}
		ix.pages = append(ix.pages, frame.ID())
		data := frame.Data()
		binary.LittleEndian.PutUint16(data, uint16(end-start))
		for i, e := range sorted[start:end] {
			off := isamHeaderSize + i*isamLeafEntrySize
			binary.LittleEndian.PutUint32(data[off:], uint32(e.Key))
			binary.LittleEndian.PutUint32(data[off+4:], uint32(int32(e.RID.Page)))
			binary.LittleEndian.PutUint32(data[off+8:], uint32(e.RID.Slot))
		}
		frame.MarkDirty()
		level = append(level, levelEntry{firstKey: sorted[start].Key, page: frame.ID()})
		pool.Unpin(frame)
	}
	ix.levels = 1

	// Internal levels until a single root remains.
	for len(level) > 1 {
		var parent []levelEntry
		for start := 0; start < len(level); start += internalPer {
			end := start + internalPer
			if end > len(level) {
				end = len(level)
			}
			frame, err := pool.NewPage()
			if err != nil {
				return nil, err
			}
			ix.pages = append(ix.pages, frame.ID())
			data := frame.Data()
			binary.LittleEndian.PutUint16(data, uint16(end-start))
			for i, c := range level[start:end] {
				off := isamHeaderSize + i*isamInternalEntrySize
				binary.LittleEndian.PutUint32(data[off:], uint32(c.firstKey))
				binary.LittleEndian.PutUint32(data[off+4:], uint32(int32(c.page)))
			}
			frame.MarkDirty()
			parent = append(parent, levelEntry{firstKey: level[start].firstKey, page: frame.ID()})
			pool.Unpin(frame)
		}
		level = parent
		ix.levels++
	}
	ix.root = level[0].page
	return ix, nil
}

// Levels returns the number of page reads a lookup performs — the cost
// model's I_l. An empty index has zero levels.
func (ix *ISAM) Levels() int { return ix.levels }

// NumEntries returns the number of indexed keys.
func (ix *ISAM) NumEntries() int { return ix.entries }

// Pages returns the ids of every page of the index, for storage reclamation
// when the index is dropped.
func (ix *ISAM) Pages() []storage.PageID {
	return append([]storage.PageID(nil), ix.pages...)
}

// Lookup finds the rid for key, reporting whether the key exists.
func (ix *ISAM) Lookup(key int32) (relation.RID, bool, error) {
	if ix.root == storage.InvalidPage {
		return relation.RID{}, false, nil
	}
	page := ix.root
	for depth := ix.levels; depth > 1; depth-- {
		frame, err := ix.pool.Get(page)
		if err != nil {
			return relation.RID{}, false, err
		}
		data := frame.Data()
		n := int(binary.LittleEndian.Uint16(data))
		// Largest child whose first key ≤ key; keys below the first
		// separator cannot exist (the first separator is the global min).
		child := storage.InvalidPage
		for i := n - 1; i >= 0; i-- {
			off := isamHeaderSize + i*isamInternalEntrySize
			first := int32(binary.LittleEndian.Uint32(data[off:]))
			if first <= key {
				child = storage.PageID(int32(binary.LittleEndian.Uint32(data[off+4:])))
				break
			}
		}
		ix.pool.Unpin(frame)
		if child == storage.InvalidPage {
			return relation.RID{}, false, nil
		}
		page = child
	}
	frame, err := ix.pool.Get(page)
	if err != nil {
		return relation.RID{}, false, err
	}
	defer ix.pool.Unpin(frame)
	data := frame.Data()
	n := int(binary.LittleEndian.Uint16(data))
	lo, hi := 0, n-1
	for lo <= hi {
		mid := (lo + hi) / 2
		off := isamHeaderSize + mid*isamLeafEntrySize
		k := int32(binary.LittleEndian.Uint32(data[off:]))
		switch {
		case k == key:
			return relation.RID{
				Page: storage.PageID(int32(binary.LittleEndian.Uint32(data[off+4:]))),
				Slot: uint16(binary.LittleEndian.Uint32(data[off+8:])),
			}, true, nil
		case k < key:
			lo = mid + 1
		default:
			hi = mid - 1
		}
	}
	return relation.RID{}, false, nil
}
