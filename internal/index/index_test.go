package index

import (
	"math/rand"
	"testing"

	"repro/internal/relation"
	"repro/internal/storage"
)

func newPool(pageSize, frames int) *storage.BufferPool {
	return storage.NewBufferPool(storage.NewDisk(pageSize), frames)
}

func rid(p, s int) relation.RID {
	return relation.RID{Page: storage.PageID(p), Slot: uint16(s)}
}

func TestHashInsertLookup(t *testing.T) {
	h, err := NewHash("s_begin", newPool(256, 8), 16)
	if err != nil {
		t.Fatal(err)
	}
	// Edge relation style: several postings per key.
	h.Insert(5, rid(0, 1))
	h.Insert(5, rid(0, 2))
	h.Insert(7, rid(1, 0))
	if h.NumEntries() != 3 {
		t.Errorf("entries = %d", h.NumEntries())
	}
	var got []relation.RID
	err = h.Lookup(5, func(r relation.RID) (bool, error) {
		got = append(got, r)
		return true, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("lookup(5) = %v", got)
	}
	var miss int
	h.Lookup(99, func(relation.RID) (bool, error) { miss++; return true, nil })
	if miss != 0 {
		t.Errorf("lookup(99) visited %d postings", miss)
	}
}

func TestHashLookupEarlyStop(t *testing.T) {
	h, _ := NewHash("x", newPool(256, 8), 4)
	for i := 0; i < 10; i++ {
		h.Insert(1, rid(0, i))
	}
	count := 0
	h.Lookup(1, func(relation.RID) (bool, error) {
		count++
		return count < 3, nil
	})
	if count != 3 {
		t.Errorf("visited %d, want 3", count)
	}
}

func TestHashPageOverflow(t *testing.T) {
	// Tiny pages force chains: (64-6)/12 = 4 entries per page.
	h, _ := NewHash("x", newPool(64, 8), 1) // single bucket: worst case chain
	const n = 50
	for i := 0; i < n; i++ {
		if err := h.Insert(int32(i%5), rid(i, 0)); err != nil {
			t.Fatal(err)
		}
	}
	total := 0
	for k := int32(0); k < 5; k++ {
		h.Lookup(k, func(relation.RID) (bool, error) { total++; return true, nil })
	}
	if total != n {
		t.Errorf("found %d postings, want %d", total, n)
	}
}

func TestHashDelete(t *testing.T) {
	h, _ := NewHash("x", newPool(256, 8), 4)
	h.Insert(1, rid(0, 0))
	h.Insert(1, rid(0, 1))
	ok, err := h.Delete(1, rid(0, 0))
	if err != nil || !ok {
		t.Fatalf("Delete = %v, %v", ok, err)
	}
	if ok, _ := h.Delete(1, rid(0, 0)); ok {
		t.Error("double delete reported found")
	}
	if ok, _ := h.Delete(9, rid(0, 0)); ok {
		t.Error("delete of absent key reported found")
	}
	var got []relation.RID
	h.Lookup(1, func(r relation.RID) (bool, error) { got = append(got, r); return true, nil })
	if len(got) != 1 || got[0] != rid(0, 1) {
		t.Errorf("after delete: %v", got)
	}
	if h.NumEntries() != 1 {
		t.Errorf("entries = %d", h.NumEntries())
	}
}

func TestHashValidation(t *testing.T) {
	if _, err := NewHash("x", newPool(256, 8), 0); err == nil {
		t.Error("zero buckets accepted")
	}
	if _, err := NewHash("x", newPool(8, 8), 4); err == nil {
		t.Error("page too small accepted")
	}
}

func TestHashManyKeysDistribution(t *testing.T) {
	h, _ := NewHash("x", newPool(4096, 64), 32)
	const n = 2000
	for i := 0; i < n; i++ {
		if err := h.Insert(int32(i), rid(i/100, i%100)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		found := false
		h.Lookup(int32(i), func(r relation.RID) (bool, error) {
			if r == rid(i/100, i%100) {
				found = true
			}
			return true, nil
		})
		if !found {
			t.Fatalf("key %d lost", i)
		}
	}
	if h.NumBuckets() != 32 {
		t.Errorf("buckets = %d", h.NumBuckets())
	}
}

func TestISAMEmpty(t *testing.T) {
	ix, err := BuildISAM("r_id", newPool(256, 8), nil)
	if err != nil {
		t.Fatal(err)
	}
	if ix.Levels() != 0 || ix.NumEntries() != 0 {
		t.Errorf("levels=%d entries=%d", ix.Levels(), ix.NumEntries())
	}
	if _, ok, err := ix.Lookup(3); ok || err != nil {
		t.Errorf("lookup on empty = %v, %v", ok, err)
	}
}

func TestISAMSingleLevel(t *testing.T) {
	var postings []Entry
	for i := 0; i < 10; i++ {
		postings = append(postings, Entry{Key: int32(i * 2), RID: rid(i, 0)})
	}
	ix, err := BuildISAM("r_id", newPool(4096, 8), postings)
	if err != nil {
		t.Fatal(err)
	}
	if ix.Levels() != 1 {
		t.Errorf("levels = %d, want 1", ix.Levels())
	}
	for i := 0; i < 10; i++ {
		r, ok, err := ix.Lookup(int32(i * 2))
		if err != nil || !ok || r != rid(i, 0) {
			t.Errorf("lookup(%d) = %v,%v,%v", i*2, r, ok, err)
		}
		if _, ok, _ := ix.Lookup(int32(i*2 + 1)); ok {
			t.Errorf("lookup(%d) found a ghost", i*2+1)
		}
	}
	// Keys below the minimum and above the maximum.
	if _, ok, _ := ix.Lookup(-5); ok {
		t.Error("lookup(-5) found a ghost")
	}
	if _, ok, _ := ix.Lookup(100); ok {
		t.Error("lookup(100) found a ghost")
	}
}

func TestISAMMultiLevel(t *testing.T) {
	// Page size 64: leaves hold (64-2)/12 = 5 entries, internal pages
	// (64-2)/8 = 7 children. 1000 keys → 200 leaves → 29 internal → 5 → 1:
	// 4 levels.
	var postings []Entry
	const n = 1000
	for i := 0; i < n; i++ {
		postings = append(postings, Entry{Key: int32(i), RID: rid(i/7, i%7)})
	}
	ix, err := BuildISAM("r_id", newPool(64, 16), postings)
	if err != nil {
		t.Fatal(err)
	}
	if ix.Levels() < 3 {
		t.Errorf("levels = %d, want a genuinely multi-level index", ix.Levels())
	}
	if ix.NumEntries() != n {
		t.Errorf("entries = %d", ix.NumEntries())
	}
	for i := 0; i < n; i++ {
		r, ok, err := ix.Lookup(int32(i))
		if err != nil {
			t.Fatal(err)
		}
		if !ok || r != rid(i/7, i%7) {
			t.Fatalf("lookup(%d) = %v, %v", i, r, ok)
		}
	}
	if _, ok, _ := ix.Lookup(n); ok {
		t.Error("lookup past max found a ghost")
	}
}

func TestISAMUnsortedInputAndDuplicates(t *testing.T) {
	// Input arrives unsorted; BuildISAM must sort it.
	postings := []Entry{{Key: 5, RID: rid(5, 0)}, {Key: 1, RID: rid(1, 0)}, {Key: 3, RID: rid(3, 0)}}
	ix, err := BuildISAM("x", newPool(256, 8), postings)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int32{1, 3, 5} {
		if _, ok, _ := ix.Lookup(k); !ok {
			t.Errorf("lookup(%d) missed", k)
		}
	}
	// Duplicates are an error: node ids are unique.
	if _, err := BuildISAM("x", newPool(256, 8), []Entry{{Key: 1}, {Key: 1}}); err == nil {
		t.Error("duplicate keys accepted")
	}
}

func TestISAMLookupCostsLevelsReads(t *testing.T) {
	var postings []Entry
	for i := 0; i < 500; i++ {
		postings = append(postings, Entry{Key: int32(i), RID: rid(i, 0)})
	}
	pool := newPool(64, 4) // tiny pool: every page access goes to disk-ish
	ix, err := BuildISAM("x", pool, postings)
	if err != nil {
		t.Fatal(err)
	}
	// With a pool too small to cache the index, each lookup reads ≈ Levels
	// pages. Measure an average over fresh keys.
	disk := pool.Disk()
	before := disk.Stats().Reads
	const probes = 100
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < probes; i++ {
		if _, ok, err := ix.Lookup(int32(rng.Intn(500))); err != nil || !ok {
			t.Fatal("probe failed")
		}
	}
	reads := disk.Stats().Reads - before
	perLookup := float64(reads) / probes
	if perLookup > float64(ix.Levels())+0.5 {
		t.Errorf("%.2f reads per lookup for %d levels", perLookup, ix.Levels())
	}
}

// Property: ISAM agrees with a map oracle on 3000 random unique keys.
func TestISAMRandomOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	oracle := map[int32]relation.RID{}
	var postings []Entry
	for len(oracle) < 3000 {
		k := int32(rng.Intn(1 << 20))
		if _, dup := oracle[k]; dup {
			continue
		}
		r := rid(rng.Intn(1000), rng.Intn(64))
		oracle[k] = r
		postings = append(postings, Entry{Key: k, RID: r})
	}
	ix, err := BuildISAM("x", newPool(512, 64), postings)
	if err != nil {
		t.Fatal(err)
	}
	for k, want := range oracle {
		got, ok, err := ix.Lookup(k)
		if err != nil || !ok || got != want {
			t.Fatalf("lookup(%d) = %v,%v,%v; want %v", k, got, ok, err, want)
		}
	}
	// Probe absent keys.
	for i := 0; i < 500; i++ {
		k := int32(rng.Intn(1<<20)) | (1 << 21) // outside the inserted range
		if _, ok, _ := ix.Lookup(k); ok {
			t.Fatalf("ghost key %d found", k)
		}
	}
}
