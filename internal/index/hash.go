// Package index provides the two access methods of the paper's physical
// design (Section 4): a random-hash primary index on the edge relation's
// Begin-node field — the structure behind "fetch(u.adjacencyList)" — and a
// multi-level static ISAM index on the node relation's node-id field, whose
// level count is the I_l parameter of the cost model (Table 4A: 3 levels).
//
// Both indexes are page-backed on the simulated disk, so index traversal
// shows up in the block-I/O accounting exactly as the cost model charges it.
package index

import (
	"encoding/binary"
	"fmt"

	"repro/internal/relation"
	"repro/internal/storage"
)

// Entry is one index posting: a key and the rid of the tuple holding it.
type Entry struct {
	Key int32
	RID relation.RID
}

const (
	hashEntrySize  = 12 // key int32, page int32, slot uint16 (padded to 4)
	hashHeaderSize = 6  // count uint16, next page int32
)

// Hash is a static-bucket chained hash index over int32 keys. Keys may
// repeat (the edge relation has one posting per out-edge). Buckets are
// chains of pages; the bucket directory is memory-resident like the
// relation catalog.
type Hash struct {
	name    string
	pool    *storage.BufferPool
	buckets []storage.PageID
	pages   []storage.PageID // every page ever allocated, for reclamation
	entries int
	perPage int
}

// NewHash creates an empty hash index with the given bucket count.
func NewHash(name string, pool *storage.BufferPool, numBuckets int) (*Hash, error) {
	if numBuckets <= 0 {
		return nil, fmt.Errorf("index %s: bucket count %d must be positive", name, numBuckets)
	}
	perPage := (pool.Disk().PageSize() - hashHeaderSize) / hashEntrySize
	if perPage <= 0 {
		return nil, fmt.Errorf("index %s: page size %d too small", name, pool.Disk().PageSize())
	}
	buckets := make([]storage.PageID, numBuckets)
	for i := range buckets {
		buckets[i] = storage.InvalidPage
	}
	return &Hash{name: name, pool: pool, buckets: buckets, perPage: perPage}, nil
}

// NumEntries returns the number of postings.
func (h *Hash) NumEntries() int { return h.entries }

// NumBuckets returns the directory size.
func (h *Hash) NumBuckets() int { return len(h.buckets) }

// Pages returns the ids of every page the index has allocated, for storage
// reclamation when the index is dropped.
func (h *Hash) Pages() []storage.PageID {
	return append([]storage.PageID(nil), h.pages...)
}

// bucketOf maps a key to its bucket. Multiplicative hashing scrambles
// sequential node ids across buckets ("random hash" in the paper).
func (h *Hash) bucketOf(key int32) int {
	x := uint32(key) * 2654435761 // Knuth's multiplicative constant
	return int(x % uint32(len(h.buckets)))
}

func hashPageCount(data []byte) int { return int(binary.LittleEndian.Uint16(data)) }
func setHashPageCount(data []byte, n int) {
	binary.LittleEndian.PutUint16(data, uint16(n))
}
func hashPageNext(data []byte) storage.PageID {
	return storage.PageID(int32(binary.LittleEndian.Uint32(data[2:])))
}
func setHashPageNext(data []byte, id storage.PageID) {
	binary.LittleEndian.PutUint32(data[2:], uint32(int32(id)))
}

func putHashEntry(data []byte, i int, e Entry) {
	off := hashHeaderSize + i*hashEntrySize
	binary.LittleEndian.PutUint32(data[off:], uint32(e.Key))
	binary.LittleEndian.PutUint32(data[off+4:], uint32(int32(e.RID.Page)))
	binary.LittleEndian.PutUint32(data[off+8:], uint32(e.RID.Slot))
}

func getHashEntry(data []byte, i int) Entry {
	off := hashHeaderSize + i*hashEntrySize
	return Entry{
		Key: int32(binary.LittleEndian.Uint32(data[off:])),
		RID: relation.RID{
			Page: storage.PageID(int32(binary.LittleEndian.Uint32(data[off+4:]))),
			Slot: uint16(binary.LittleEndian.Uint32(data[off+8:])),
		},
	}
}

// Insert adds a posting. Duplicate keys are allowed; duplicate (key, rid)
// pairs are the caller's concern.
func (h *Hash) Insert(key int32, rid relation.RID) error {
	b := h.bucketOf(key)
	// Insert at the head page if it has room; otherwise prepend a page.
	if h.buckets[b] != storage.InvalidPage {
		frame, err := h.pool.Get(h.buckets[b])
		if err != nil {
			return err
		}
		data := frame.Data()
		if n := hashPageCount(data); n < h.perPage {
			putHashEntry(data, n, Entry{Key: key, RID: rid})
			setHashPageCount(data, n+1)
			frame.MarkDirty()
			h.pool.Unpin(frame)
			h.entries++
			return nil
		}
		h.pool.Unpin(frame)
	}
	frame, err := h.pool.NewPage()
	if err != nil {
		return err
	}
	h.pages = append(h.pages, frame.ID())
	data := frame.Data()
	setHashPageNext(data, h.buckets[b])
	putHashEntry(data, 0, Entry{Key: key, RID: rid})
	setHashPageCount(data, 1)
	frame.MarkDirty()
	h.buckets[b] = frame.ID()
	h.pool.Unpin(frame)
	h.entries++
	return nil
}

// Lookup visits every posting whose key equals key. fn returns false to
// stop early.
func (h *Hash) Lookup(key int32, fn func(rid relation.RID) (bool, error)) error {
	page := h.buckets[h.bucketOf(key)]
	for page != storage.InvalidPage {
		frame, err := h.pool.Get(page)
		if err != nil {
			return err
		}
		data := frame.Data()
		n := hashPageCount(data)
		for i := 0; i < n; i++ {
			e := getHashEntry(data, i)
			if e.Key != key {
				continue
			}
			cont, err := fn(e.RID)
			if err != nil || !cont {
				h.pool.Unpin(frame)
				return err
			}
		}
		next := hashPageNext(data)
		h.pool.Unpin(frame)
		page = next
	}
	return nil
}

// Delete removes one posting matching (key, rid) exactly, reporting whether
// it was found. The slot is backfilled from the page's last entry.
func (h *Hash) Delete(key int32, rid relation.RID) (bool, error) {
	page := h.buckets[h.bucketOf(key)]
	for page != storage.InvalidPage {
		frame, err := h.pool.Get(page)
		if err != nil {
			return false, err
		}
		data := frame.Data()
		n := hashPageCount(data)
		for i := 0; i < n; i++ {
			e := getHashEntry(data, i)
			if e.Key == key && e.RID == rid {
				putHashEntry(data, i, getHashEntry(data, n-1))
				setHashPageCount(data, n-1)
				frame.MarkDirty()
				h.pool.Unpin(frame)
				h.entries--
				return true, nil
			}
		}
		next := hashPageNext(data)
		h.pool.Unpin(frame)
		page = next
	}
	return false, nil
}
