package quel

import (
	"strings"
	"testing"

	"repro/internal/dbms"
	"repro/internal/tuple"
)

func newSession(t *testing.T) *Session {
	t.Helper()
	db := dbms.New(dbms.Options{})
	_, err := db.CreateRelation("edges", tuple.MustSchema(
		tuple.Field{Name: "begin", Kind: tuple.Int32},
		tuple.Field{Name: "end", Kind: tuple.Int32},
		tuple.Field{Name: "cost", Kind: tuple.Float64},
	))
	if err != nil {
		t.Fatal(err)
	}
	return NewSession(db)
}

func mustExec(t *testing.T, s *Session, stmt string) Result {
	t.Helper()
	res, err := s.Execute(stmt)
	if err != nil {
		t.Fatalf("%s: %v", stmt, err)
	}
	return res
}

func seed(t *testing.T, s *Session) {
	t.Helper()
	mustExec(t, s, "RANGE OF e IS edges")
	mustExec(t, s, "APPEND TO edges (begin = 1, end = 2, cost = 1.5)")
	mustExec(t, s, "APPEND TO edges (begin = 1, end = 3, cost = 2.5)")
	mustExec(t, s, "APPEND TO edges (begin = 2, end = 3, cost = 0.5)")
}

func TestRangeAndRetrieveAll(t *testing.T) {
	s := newSession(t)
	seed(t, s)
	res := mustExec(t, s, "RETRIEVE (e.all)")
	if res.Count != 3 || len(res.Rows) != 3 {
		t.Fatalf("count = %d", res.Count)
	}
	if len(res.Columns) != 3 || res.Columns[0] != "begin" {
		t.Errorf("columns = %v", res.Columns)
	}
}

func TestRetrieveProjectionAndWhere(t *testing.T) {
	s := newSession(t)
	seed(t, s)
	res := mustExec(t, s, "RETRIEVE (e.end, e.cost) WHERE e.begin = 1")
	if res.Count != 2 {
		t.Fatalf("count = %d", res.Count)
	}
	if res.Columns[0] != "end" || res.Columns[1] != "cost" {
		t.Errorf("columns = %v", res.Columns)
	}
	res = mustExec(t, s, "RETRIEVE (e.all) WHERE e.begin = 1 AND e.cost > 2.0")
	if res.Count != 1 || res.Rows[0][1].Int() != 3 {
		t.Errorf("conjunction: %+v", res)
	}
	res = mustExec(t, s, "RETRIEVE (e.all) WHERE e.cost <= 1.5")
	if res.Count != 2 {
		t.Errorf("<= matched %d", res.Count)
	}
	res = mustExec(t, s, "RETRIEVE (e.all) WHERE e.begin != 1")
	if res.Count != 1 {
		t.Errorf("!= matched %d", res.Count)
	}
	res = mustExec(t, s, "RETRIEVE (e.all) WHERE e.cost >= 2.5")
	if res.Count != 1 {
		t.Errorf(">= matched %d", res.Count)
	}
	res = mustExec(t, s, "RETRIEVE (e.all) WHERE e.cost < 0.1")
	if res.Count != 0 {
		t.Errorf("empty match returned %d", res.Count)
	}
}

func TestReplace(t *testing.T) {
	s := newSession(t)
	seed(t, s)
	res := mustExec(t, s, "REPLACE e (cost = 9.0) WHERE e.begin = 1")
	if res.Count != 2 {
		t.Fatalf("replaced %d", res.Count)
	}
	check := mustExec(t, s, "RETRIEVE (e.all) WHERE e.cost >= 9.0")
	if check.Count != 2 {
		t.Errorf("after replace: %d rows at 9.0", check.Count)
	}
	// Unqualified REPLACE hits everything.
	res = mustExec(t, s, "REPLACE e (end = 7)")
	if res.Count != 3 {
		t.Errorf("unqualified replace hit %d", res.Count)
	}
}

func TestDelete(t *testing.T) {
	s := newSession(t)
	seed(t, s)
	res := mustExec(t, s, "DELETE e WHERE e.begin = 1")
	if res.Count != 2 {
		t.Fatalf("deleted %d", res.Count)
	}
	if left := mustExec(t, s, "RETRIEVE (e.all)"); left.Count != 1 {
		t.Errorf("left %d rows", left.Count)
	}
	// Unqualified DELETE empties the relation.
	mustExec(t, s, "DELETE e")
	if left := mustExec(t, s, "RETRIEVE (e.all)"); left.Count != 0 {
		t.Errorf("after delete all: %d rows", left.Count)
	}
}

func TestCaseInsensitiveKeywords(t *testing.T) {
	s := newSession(t)
	mustExec(t, s, "range of e is edges")
	mustExec(t, s, "append to edges (begin = 1, end = 2, cost = 1.0)")
	res := mustExec(t, s, "retrieve (e.all) where e.begin = 1")
	if res.Count != 1 {
		t.Errorf("count = %d", res.Count)
	}
}

func TestNegativeLiterals(t *testing.T) {
	s := newSession(t)
	mustExec(t, s, "RANGE OF e IS edges")
	mustExec(t, s, "APPEND TO edges (begin = -1, end = 2, cost = 1.0)")
	res := mustExec(t, s, "RETRIEVE (e.all) WHERE e.begin = -1")
	if res.Count != 1 {
		t.Errorf("count = %d", res.Count)
	}
}

func TestErrors(t *testing.T) {
	s := newSession(t)
	seed(t, s)
	cases := []struct {
		name, stmt string
	}{
		{"undeclared range var", "RETRIEVE (x.all)"},
		{"unknown relation", "RANGE OF z IS ghosts"},
		{"unknown field", "RETRIEVE (e.ghost)"},
		{"unknown field in where", "RETRIEVE (e.all) WHERE e.ghost = 1"},
		{"float into int field", "APPEND TO edges (begin = 1.5, end = 2, cost = 1)"},
		{"missing fields in append", "APPEND TO edges (begin = 1)"},
		{"duplicate assign", "APPEND TO edges (begin = 1, begin = 2, cost = 1)"},
		{"trailing garbage", "RETRIEVE (e.all) nonsense"},
		{"wrong range var in where", "RETRIEVE (e.all) WHERE f.begin = 1"},
		{"two range vars", "RETRIEVE (e.begin, f.end)"},
		{"bad operator in assign", "REPLACE e (cost < 2)"},
		{"unknown statement", "FROBNICATE e"},
		{"stray bang", "RETRIEVE (e.all) WHERE e.begin ! 1"},
		{"stray dash", "RETRIEVE (e.all) WHERE e.begin = -"},
		{"unterminated list", "RETRIEVE (e.all"},
		{"unexpected char", "RETRIEVE (e.all) WHERE e.begin = 1 ; drop"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := s.Execute(tc.stmt); err == nil {
				t.Errorf("%q executed without error", tc.stmt)
			}
		})
	}
}

func TestParseShapes(t *testing.T) {
	st, err := Parse("REPLACE n (status = 2, pathcost = 1.5) WHERE n.id = 7")
	if err != nil {
		t.Fatal(err)
	}
	rep, ok := st.(ReplaceStmt)
	if !ok {
		t.Fatalf("parsed %T", st)
	}
	if rep.Var != "n" || len(rep.Assigns) != 2 || len(rep.Where) != 1 {
		t.Errorf("parsed %+v", rep)
	}
	if rep.Assigns[0].Field != "status" || !rep.Assigns[0].IsInt {
		t.Errorf("assign 0 = %+v", rep.Assigns[0])
	}
	if rep.Assigns[1].IsInt {
		t.Error("1.5 parsed as int")
	}
	if rep.Where[0].Op != "=" || rep.Where[0].Value != 7 {
		t.Errorf("where = %+v", rep.Where[0])
	}
}

// The EQUEL flavour of the paper's inner loop, runnable end to end: mark a
// node current, fetch its neighbours, relax one, close it.
func TestPaperStyleProgram(t *testing.T) {
	db := dbms.New(dbms.Options{})
	if _, err := db.CreateRelation("r", tuple.MustSchema(
		tuple.Field{Name: "id", Kind: tuple.Int32},
		tuple.Field{Name: "status", Kind: tuple.Int32},
		tuple.Field{Name: "pathcost", Kind: tuple.Float64},
	)); err != nil {
		t.Fatal(err)
	}
	s := NewSession(db)
	mustExec(t, s, "RANGE OF n IS r")
	for i := 0; i < 4; i++ {
		mustExec(t, s, strings.ReplaceAll("APPEND TO r (id = X, status = 0, pathcost = 999.0)", "X", string(rune('0'+i))))
	}
	mustExec(t, s, "REPLACE n (status = 3, pathcost = 0.0) WHERE n.id = 0")
	res := mustExec(t, s, "RETRIEVE (n.id) WHERE n.status = 3")
	if res.Count != 1 || res.Rows[0][0].Int() != 0 {
		t.Fatalf("current selection: %+v", res)
	}
	mustExec(t, s, "REPLACE n (status = 1, pathcost = 1.0) WHERE n.id = 1")
	mustExec(t, s, "REPLACE n (status = 2) WHERE n.id = 0")
	open := mustExec(t, s, "RETRIEVE (n.id, n.pathcost) WHERE n.status = 1")
	if open.Count != 1 || open.Rows[0][1].Float() != 1.0 {
		t.Errorf("open set: %+v", open)
	}
}
