package quel

import (
	"fmt"
	"strconv"
	"strings"
)

// This file renders parsed statements back to QUEL text. Printing is
// canonical (upper-case keywords, single spaces), and Parse∘String is the
// identity on the AST — the property test relies on it.

func formatLiteral(v float64, isInt bool) string {
	if isInt {
		return strconv.FormatInt(int64(v), 10)
	}
	s := strconv.FormatFloat(v, 'g', -1, 64)
	// Ensure the literal round-trips as a float: it must contain a '.'
	// (the lexer has no exponent support, and IsInt detection is
	// dot-based).
	if !strings.Contains(s, ".") {
		s += ".0"
	}
	return s
}

func formatAssigns(assigns []Assignment) string {
	parts := make([]string, len(assigns))
	for i, a := range assigns {
		parts[i] = fmt.Sprintf("%s = %s", a.Field, formatLiteral(a.Value, a.IsInt))
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

func formatWhere(rangeVar string, where []Comparison) string {
	if len(where) == 0 {
		return ""
	}
	parts := make([]string, len(where))
	for i, c := range where {
		parts[i] = fmt.Sprintf("%s.%s %s %s", rangeVar, c.Field, c.Op, formatLiteral(c.Value, c.IsInt))
	}
	return " WHERE " + strings.Join(parts, " AND ")
}

// String renders RANGE OF v IS relation.
func (s RangeStmt) String() string {
	return fmt.Sprintf("RANGE OF %s IS %s", s.Var, s.Relation)
}

// String renders RETRIEVE (…) [WHERE …].
func (s RetrieveStmt) String() string {
	var targets []string
	if s.All {
		targets = append(targets, s.Var+".all")
	}
	for _, f := range s.Fields {
		targets = append(targets, s.Var+"."+f)
	}
	return fmt.Sprintf("RETRIEVE (%s)%s", strings.Join(targets, ", "), formatWhere(s.Var, s.Where))
}

// String renders APPEND TO relation (…).
func (s AppendStmt) String() string {
	return fmt.Sprintf("APPEND TO %s %s", s.Relation, formatAssigns(s.Assigns))
}

// String renders REPLACE v (…) [WHERE …].
func (s ReplaceStmt) String() string {
	return fmt.Sprintf("REPLACE %s %s%s", s.Var, formatAssigns(s.Assigns), formatWhere(s.Var, s.Where))
}

// String renders DELETE v [WHERE …].
func (s DeleteStmt) String() string {
	return fmt.Sprintf("DELETE %s%s", s.Var, formatWhere(s.Var, s.Where))
}
