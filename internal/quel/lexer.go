// Package quel implements a small subset of QUEL, the query language of
// INGRES that the paper's EQUEL host programs embedded (Section 5.3 quotes
// QUEL's REPLACE, APPEND and DELETE by name). The subset covers what the
// path-computation programs use:
//
//	RANGE OF e IS edges
//	RETRIEVE (e.begin, e.cost) WHERE e.begin = 3 AND e.cost < 2.5
//	RETRIEVE (e.all)
//	APPEND TO edges (begin = 1, end = 2, cost = 1.5)
//	REPLACE e (status = 2) WHERE e.id = 17
//	DELETE e WHERE e.status = 1
//	EXPLAIN RETRIEVE (e.all) WHERE e.begin = 3
//
// Statements address one range variable (single-relation predicates); the
// engine's join machinery is exercised through the dbms package directly.
package quel

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexer output.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokLParen
	tokRParen
	tokComma
	tokDot
	tokOp // = != < <= > >=
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

// lex splits src into tokens. Keywords are returned as tokIdent; the parser
// matches them case-insensitively.
func lex(src string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(src) {
		c := rune(src[i])
		switch {
		case unicode.IsSpace(c):
			i++
		case c == '(':
			toks = append(toks, token{tokLParen, "(", i})
			i++
		case c == ')':
			toks = append(toks, token{tokRParen, ")", i})
			i++
		case c == ',':
			toks = append(toks, token{tokComma, ",", i})
			i++
		case c == '.':
			toks = append(toks, token{tokDot, ".", i})
			i++
		case c == '=':
			toks = append(toks, token{tokOp, "=", i})
			i++
		case c == '!':
			if i+1 < len(src) && src[i+1] == '=' {
				toks = append(toks, token{tokOp, "!=", i})
				i += 2
			} else {
				return nil, fmt.Errorf("quel: stray '!' at %d", i)
			}
		case c == '<' || c == '>':
			op := string(c)
			if i+1 < len(src) && src[i+1] == '=' {
				op += "="
				i++
			}
			toks = append(toks, token{tokOp, op, i})
			i++
		case unicode.IsDigit(c) || c == '-':
			start := i
			i++
			for i < len(src) && (unicode.IsDigit(rune(src[i])) || src[i] == '.') {
				i++
			}
			text := src[start:i]
			if text == "-" {
				return nil, fmt.Errorf("quel: stray '-' at %d", start)
			}
			toks = append(toks, token{tokNumber, text, start})
		case unicode.IsLetter(c) || c == '_':
			start := i
			for i < len(src) && (unicode.IsLetter(rune(src[i])) || unicode.IsDigit(rune(src[i])) || src[i] == '_') {
				i++
			}
			toks = append(toks, token{tokIdent, src[start:i], start})
		default:
			return nil, fmt.Errorf("quel: unexpected character %q at %d", c, i)
		}
	}
	toks = append(toks, token{tokEOF, "", len(src)})
	return toks, nil
}

// isKeyword matches an identifier token against a keyword,
// case-insensitively.
func (t token) isKeyword(kw string) bool {
	return t.kind == tokIdent && strings.EqualFold(t.text, kw)
}
