package quel

import (
	"fmt"

	"repro/internal/dbms"
	"repro/internal/optimizer"
	"repro/internal/relation"
	"repro/internal/tuple"
)

// Result is the outcome of executing one statement: projected rows for
// RETRIEVE, an affected-tuple count for the mutating statements, a plan
// description for EXPLAIN.
type Result struct {
	Columns []string
	Rows    [][]tuple.Value
	Count   int
	Plan    string
}

// Session executes statements against one database, tracking range-variable
// declarations across statements the way an EQUEL program's preamble does.
type Session struct {
	db     *dbms.Database
	ranges map[string]string // range var -> relation name
}

// NewSession opens a session on db.
func NewSession(db *dbms.Database) *Session {
	return &Session{db: db, ranges: make(map[string]string)}
}

// Execute parses and runs one statement.
func (s *Session) Execute(src string) (Result, error) {
	st, err := Parse(src)
	if err != nil {
		return Result{}, err
	}
	return s.Run(st)
}

// Run executes a parsed statement.
func (s *Session) Run(st Statement) (Result, error) {
	switch st := st.(type) {
	case RangeStmt:
		if _, err := s.db.Relation(st.Relation); err != nil {
			return Result{}, err
		}
		s.ranges[st.Var] = st.Relation
		return Result{}, nil
	case RetrieveStmt:
		return s.runRetrieve(st)
	case AppendStmt:
		return s.runAppend(st)
	case ReplaceStmt:
		return s.runReplace(st)
	case DeleteStmt:
		return s.runDelete(st)
	case ExplainStmt:
		return s.runExplain(st)
	default:
		return Result{}, fmt.Errorf("quel: unhandled statement %T", st)
	}
}

// runExplain describes the access path runRetrieve would take, with the
// optimizer's cost estimate for it, without touching tuple pages.
func (s *Session) runExplain(st ExplainStmt) (Result, error) {
	ret, ok := st.Target.(RetrieveStmt)
	if !ok {
		return Result{}, fmt.Errorf("quel: EXPLAIN supports RETRIEVE, got %T", st.Target)
	}
	relName, r, err := s.resolve(ret.Var)
	if err != nil {
		return Result{}, err
	}
	// Validate the statement exactly as execution would.
	if _, err := compile(r.Schema(), ret.Where); err != nil {
		return Result{}, err
	}
	for _, f := range ret.Fields {
		if _, err := r.Schema().Index(f); err != nil {
			return Result{}, err
		}
	}
	params := s.db.Params()
	var plan string
	if _, probe, rest := s.indexableEquality(relName, r.Schema(), ret.Where); probe != nil {
		cost := optimizer.SelectCost(params, r.Blocks(), true)
		plan = fmt.Sprintf("index probe on %s (est. %.3f units, %d residual predicates)", relName, cost, len(rest))
	} else {
		cost := optimizer.SelectCost(params, r.Blocks(), false)
		plan = fmt.Sprintf("full scan of %s (%d blocks, est. %.3f units)", relName, r.Blocks(), cost)
	}
	return Result{Plan: plan}, nil
}

// resolve maps a range variable to its relation.
func (s *Session) resolve(rangeVar string) (string, *relation.Relation, error) {
	relName, ok := s.ranges[rangeVar]
	if !ok {
		return "", nil, fmt.Errorf("quel: range variable %q not declared (use RANGE OF %s IS <relation>)", rangeVar, rangeVar)
	}
	r, err := s.db.Relation(relName)
	if err != nil {
		return "", nil, err
	}
	return relName, r, nil
}

// compile turns a qualification into a tuple predicate, validating fields
// against the schema.
func compile(sch *tuple.Schema, where []Comparison) (func([]tuple.Value) bool, error) {
	type test struct {
		col int
		op  string
		val tuple.Value
	}
	var tests []test
	for _, c := range where {
		col, err := sch.Index(c.Field)
		if err != nil {
			return nil, err
		}
		v, err := literalFor(sch.Field(col).Kind, c.Value, c.IsInt)
		if err != nil {
			return nil, fmt.Errorf("quel: field %q: %w", c.Field, err)
		}
		tests = append(tests, test{col: col, op: c.Op, val: v})
	}
	return func(vals []tuple.Value) bool {
		for _, t := range tests {
			got := vals[t.col]
			var ok bool
			switch t.op {
			case "=":
				ok = got.Equal(t.val)
			case "!=":
				ok = !got.Equal(t.val)
			case "<":
				ok = got.Less(t.val)
			case "<=":
				ok = got.Less(t.val) || got.Equal(t.val)
			case ">":
				ok = t.val.Less(got)
			case ">=":
				ok = t.val.Less(got) || got.Equal(t.val)
			}
			if !ok {
				return false
			}
		}
		return true
	}, nil
}

// literalFor coerces a parsed numeric literal to the field's kind. Integer
// literals widen to float; float literals must not target int32 fields.
func literalFor(kind tuple.Kind, v float64, isInt bool) (tuple.Value, error) {
	switch kind {
	case tuple.Int32:
		if !isInt {
			return tuple.Value{}, fmt.Errorf("float literal %v for int32 field", v)
		}
		return tuple.I32(int32(v)), nil
	default:
		return tuple.F64(v), nil
	}
}

func (s *Session) runRetrieve(st RetrieveStmt) (Result, error) {
	relName, r, err := s.resolve(st.Var)
	if err != nil {
		return Result{}, err
	}
	sch := r.Schema()
	pred, err := compile(sch, st.Where)
	if err != nil {
		return Result{}, err
	}
	var cols []int
	var names []string
	if st.All {
		for i := 0; i < sch.NumFields(); i++ {
			cols = append(cols, i)
			names = append(names, sch.Field(i).Name)
		}
	}
	for _, f := range st.Fields {
		col, err := sch.Index(f)
		if err != nil {
			return Result{}, err
		}
		cols = append(cols, col)
		names = append(names, f)
	}
	res := Result{Columns: names}
	project := func(vals []tuple.Value) {
		row := make([]tuple.Value, len(cols))
		for i, c := range cols {
			row[i] = vals[c]
		}
		res.Rows = append(res.Rows, row)
	}

	// Access-path selection: an equality predicate on an indexed int32
	// column is answered by an index probe instead of a scan — the select
	// strategy choice of the paper's optimizer simulation (SelectCost).
	if key, probe, rest := s.indexableEquality(relName, sch, st.Where); probe != nil {
		restPred, err := compile(sch, rest)
		if err != nil {
			return Result{}, err
		}
		err = probe(key, func(rid relation.RID) (bool, error) {
			vals, err := r.Get(rid)
			if err != nil {
				return false, err
			}
			if restPred(vals) {
				project(vals)
			}
			return true, nil
		})
		res.Count = len(res.Rows)
		return res, err
	}

	err = r.Scan(func(_ relation.RID, vals []tuple.Value) (bool, error) {
		if pred(vals) {
			project(vals)
		}
		return true, nil
	})
	res.Count = len(res.Rows)
	return res, err
}

// probeFunc visits the rids matching an index key.
type probeFunc func(key int32, fn func(relation.RID) (bool, error)) error

// indexableEquality finds the first `field = literal` comparison whose
// column has a hash or ISAM index, returning the probe key, the probe
// function, and the remaining comparisons to apply as a residual filter.
// It returns a nil probe when no index applies.
func (s *Session) indexableEquality(relName string, sch *tuple.Schema, where []Comparison) (int32, probeFunc, []Comparison) {
	for i, c := range where {
		if c.Op != "=" || !c.IsInt {
			continue
		}
		col, err := sch.Index(c.Field)
		if err != nil || sch.Field(col).Kind != tuple.Int32 {
			continue
		}
		rest := append(append([]Comparison(nil), where[:i]...), where[i+1:]...)
		if h, err := s.db.HashIndex(relName, c.Field); err == nil {
			return int32(c.Value), h.Lookup, rest
		}
		if ix, err := s.db.ISAM(relName, c.Field); err == nil {
			probe := func(key int32, fn func(relation.RID) (bool, error)) error {
				rid, ok, err := ix.Lookup(key)
				if err != nil || !ok {
					return err
				}
				_, err = fn(rid)
				return err
			}
			return int32(c.Value), probe, rest
		}
	}
	return 0, nil, nil
}

func (s *Session) runAppend(st AppendStmt) (Result, error) {
	r, err := s.db.Relation(st.Relation)
	if err != nil {
		return Result{}, err
	}
	sch := r.Schema()
	if len(st.Assigns) != sch.NumFields() {
		return Result{}, fmt.Errorf("quel: APPEND sets %d of %d fields of %s (all fields are required)",
			len(st.Assigns), sch.NumFields(), st.Relation)
	}
	vals := make([]tuple.Value, sch.NumFields())
	seen := make(map[int]bool)
	for _, a := range st.Assigns {
		col, err := sch.Index(a.Field)
		if err != nil {
			return Result{}, err
		}
		if seen[col] {
			return Result{}, fmt.Errorf("quel: field %q assigned twice", a.Field)
		}
		seen[col] = true
		v, err := literalFor(sch.Field(col).Kind, a.Value, a.IsInt)
		if err != nil {
			return Result{}, fmt.Errorf("quel: field %q: %w", a.Field, err)
		}
		vals[col] = v
	}
	if _, err := s.db.Insert(st.Relation, vals); err != nil {
		return Result{}, err
	}
	return Result{Count: 1}, nil
}

func (s *Session) runReplace(st ReplaceStmt) (Result, error) {
	relName, r, err := s.resolve(st.Var)
	if err != nil {
		return Result{}, err
	}
	sch := r.Schema()
	pred, err := compile(sch, st.Where)
	if err != nil {
		return Result{}, err
	}
	type change struct {
		col int
		val tuple.Value
	}
	var changes []change
	for _, a := range st.Assigns {
		col, err := sch.Index(a.Field)
		if err != nil {
			return Result{}, err
		}
		v, err := literalFor(sch.Field(col).Kind, a.Value, a.IsInt)
		if err != nil {
			return Result{}, fmt.Errorf("quel: field %q: %w", a.Field, err)
		}
		changes = append(changes, change{col: col, val: v})
	}
	// Collect matches first: mutating while scanning the same pages is
	// safe for in-place REPLACE but collecting keeps semantics obvious.
	type match struct {
		rid  relation.RID
		vals []tuple.Value
	}
	var matches []match
	err = r.Scan(func(rid relation.RID, vals []tuple.Value) (bool, error) {
		if pred(vals) {
			matches = append(matches, match{rid, append([]tuple.Value(nil), vals...)})
		}
		return true, nil
	})
	if err != nil {
		return Result{}, err
	}
	for _, m := range matches {
		for _, c := range changes {
			m.vals[c.col] = c.val
		}
		if err := s.db.Update(relName, m.rid, m.vals); err != nil {
			return Result{}, err
		}
	}
	return Result{Count: len(matches)}, nil
}

func (s *Session) runDelete(st DeleteStmt) (Result, error) {
	relName, r, err := s.resolve(st.Var)
	if err != nil {
		return Result{}, err
	}
	pred, err := compile(r.Schema(), st.Where)
	if err != nil {
		return Result{}, err
	}
	var rids []relation.RID
	err = r.Scan(func(rid relation.RID, vals []tuple.Value) (bool, error) {
		if pred(vals) {
			rids = append(rids, rid)
		}
		return true, nil
	})
	if err != nil {
		return Result{}, err
	}
	for _, rid := range rids {
		if err := s.db.Delete(relName, rid); err != nil {
			return Result{}, err
		}
	}
	return Result{Count: len(rids)}, nil
}
