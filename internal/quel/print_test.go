package quel

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

func TestStringForms(t *testing.T) {
	cases := []string{
		"RANGE OF e IS edges",
		"RETRIEVE (e.all)",
		"RETRIEVE (e.begin, e.cost) WHERE e.begin = 3 AND e.cost < 2.5",
		"APPEND TO edges (begin = 1, end = 2, cost = 1.5)",
		"REPLACE n (status = 2) WHERE n.id = 17",
		"DELETE n WHERE n.status = 1",
		"DELETE n",
	}
	for _, src := range cases {
		st, err := Parse(src)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		printed := fmt.Sprint(st)
		if printed != src {
			t.Errorf("Parse(%q).String() = %q", src, printed)
		}
	}
}

// Property: printing a random statement and re-parsing it reproduces the
// same AST.
func TestPrintParseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	fields := []string{"id", "status", "pathcost", "begin", "x2"}
	ops := []string{"=", "!=", "<", "<=", ">", ">="}

	randLiteral := func() (float64, bool) {
		if rng.Intn(2) == 0 {
			return float64(rng.Intn(2001) - 1000), true
		}
		// Floats restricted to representable short decimals.
		return float64(rng.Intn(1000)) + 0.25, false
	}
	randWhere := func(n int) []Comparison {
		var out []Comparison
		for i := 0; i < n; i++ {
			v, isInt := randLiteral()
			out = append(out, Comparison{
				Field: fields[rng.Intn(len(fields))],
				Op:    ops[rng.Intn(len(ops))],
				Value: v,
				IsInt: isInt,
			})
		}
		return out
	}
	randAssigns := func(n int) []Assignment {
		var out []Assignment
		for i := 0; i < n; i++ {
			v, isInt := randLiteral()
			out = append(out, Assignment{
				Field: fields[rng.Intn(len(fields))],
				Value: v,
				IsInt: isInt,
			})
		}
		return out
	}

	for trial := 0; trial < 300; trial++ {
		var st Statement
		switch rng.Intn(5) {
		case 0:
			st = RangeStmt{Var: "v", Relation: "rel"}
		case 1:
			rs := RetrieveStmt{Var: "v", Where: randWhere(rng.Intn(3))}
			if rng.Intn(2) == 0 {
				rs.All = true
			} else {
				for i := 0; i <= rng.Intn(3); i++ {
					rs.Fields = append(rs.Fields, fields[rng.Intn(len(fields))])
				}
			}
			st = rs
		case 2:
			st = AppendStmt{Relation: "rel", Assigns: randAssigns(1 + rng.Intn(3))}
		case 3:
			st = ReplaceStmt{Var: "v", Assigns: randAssigns(1 + rng.Intn(3)), Where: randWhere(rng.Intn(3))}
		default:
			st = DeleteStmt{Var: "v", Where: randWhere(rng.Intn(3))}
		}
		printed := fmt.Sprint(st)
		back, err := Parse(printed)
		if err != nil {
			t.Fatalf("trial %d: Parse(%q): %v", trial, printed, err)
		}
		if !reflect.DeepEqual(st, back) {
			t.Fatalf("trial %d: round trip changed AST:\n in: %#v\nout: %#v\ntext: %s", trial, st, back, printed)
		}
	}
}

// Robustness: Parse must return errors, never panic, on arbitrary input.
func TestParseNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	alphabet := "RETRIVApndlcwho e.()=!<>,0123456789_ \t"
	for trial := 0; trial < 2000; trial++ {
		n := rng.Intn(40)
		buf := make([]byte, n)
		for i := range buf {
			buf[i] = alphabet[rng.Intn(len(alphabet))]
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("Parse(%q) panicked: %v", buf, r)
				}
			}()
			_, _ = Parse(string(buf)) //nolint:errcheck // errors expected
		}()
	}
}
