package quel

import "testing"

// FuzzParse exercises the lexer and parser on arbitrary input: they must
// return errors, never panic or hang. `go test` runs the seed corpus; `go
// test -fuzz=FuzzParse ./internal/quel` explores further.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"RANGE OF e IS edges",
		"RETRIEVE (e.all)",
		"RETRIEVE (e.begin, e.cost) WHERE e.begin = 3 AND e.cost < 2.5",
		"APPEND TO edges (begin = 1, end = 2, cost = 1.5)",
		"REPLACE n (status = 2) WHERE n.id = 17",
		"DELETE n WHERE n.status = 1",
		"",
		"((((",
		"RETRIEVE (e.all) WHERE",
		"APPEND TO t (a = -,)",
		"delete x where x.y != -0.5",
		"RANGE RANGE RANGE",
		"REPLACE e () WHERE e.a = 1",
		"RETRIEVE (e.all) WHERE e.a = 1 AND",
		"!!!",
		"RETRIEVE (e.a) WHERE e.b >= 99999999999999999999",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		st, err := Parse(src)
		if err != nil {
			return
		}
		// Parsed statements must print and re-parse to the same AST.
		printed, ok := st.(interface{ String() string })
		if !ok {
			t.Fatalf("statement %T has no String", st)
		}
		if _, err := Parse(printed.String()); err != nil {
			t.Fatalf("re-parse of %q (from %q) failed: %v", printed.String(), src, err)
		}
	})
}
