package quel

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/dbms"
	"repro/internal/tuple"
)

// bigSession loads a multi-page relation with a hash index on begin and an
// ISAM on a unique id column.
func bigSession(t *testing.T) (*Session, *dbms.Database) {
	t.Helper()
	db := dbms.New(dbms.Options{PageSize: 512, PoolFrames: 64})
	_, err := db.CreateRelation("edges", tuple.MustSchema(
		tuple.Field{Name: "id", Kind: tuple.Int32},
		tuple.Field{Name: "begin", Kind: tuple.Int32},
		tuple.Field{Name: "cost", Kind: tuple.Float64},
	))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateHashIndex("edges", "begin", 16); err != nil {
		t.Fatal(err)
	}
	for i := int32(0); i < 600; i++ {
		if _, err := db.Insert("edges", []tuple.Value{
			tuple.I32(i), tuple.I32(i % 50), tuple.F64(float64(i) / 10),
		}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := db.BuildISAM("edges", "id"); err != nil {
		t.Fatal(err)
	}
	s := NewSession(db)
	if _, err := s.Execute("RANGE OF e IS edges"); err != nil {
		t.Fatal(err)
	}
	return s, db
}

func pageRequests(db *dbms.Database) int64 {
	st := db.Pool().Stats()
	return st.Hits + st.Misses
}

func TestIndexedEqualityUsesHashProbe(t *testing.T) {
	s, db := bigSession(t)
	// Hash-indexed equality: must answer without a full scan.
	before := pageRequests(db)
	res := mustExec(t, s, "RETRIEVE (e.all) WHERE e.begin = 7")
	probeReqs := pageRequests(db) - before
	if res.Count != 12 { // 600 tuples, 50 begin values
		t.Fatalf("count = %d, want 12", res.Count)
	}

	// Unindexed predicate with the same selectivity: full scan.
	before = pageRequests(db)
	res2 := mustExec(t, s, "RETRIEVE (e.all) WHERE e.cost < 1.2")
	scanReqs := pageRequests(db) - before
	if res2.Count != 12 {
		t.Fatalf("scan count = %d, want 12", res2.Count)
	}
	if probeReqs >= scanReqs {
		t.Errorf("indexed probe used %d page requests, scan %d: probe must be cheaper", probeReqs, scanReqs)
	}
}

func TestIndexedEqualityViaISAM(t *testing.T) {
	s, db := bigSession(t)
	before := pageRequests(db)
	res := mustExec(t, s, "RETRIEVE (e.cost) WHERE e.id = 123")
	reqs := pageRequests(db) - before
	if res.Count != 1 || res.Rows[0][0].Float() != 12.3 {
		t.Fatalf("result: %+v", res)
	}
	// ISAM descent + tuple fetch: a handful of pages, not a 600-tuple scan.
	if reqs > 6 {
		t.Errorf("ISAM-backed retrieve used %d page requests", reqs)
	}
}

func TestIndexedEqualityWithResidualPredicate(t *testing.T) {
	s, _ := bigSession(t)
	// begin = 7 selects ids {7, 57, 107, …}; the residual keeps cost > 20,
	// i.e. ids > 200.
	res := mustExec(t, s, "RETRIEVE (e.id) WHERE e.begin = 7 AND e.cost > 20.0")
	if res.Count != 8 {
		t.Fatalf("count = %d, want 8", res.Count)
	}
	for _, row := range res.Rows {
		if row[0].Int() <= 200 || row[0].Int()%50 != 7 {
			t.Errorf("row %v fails the combined predicate", row)
		}
	}
}

func TestExplain(t *testing.T) {
	s, _ := bigSession(t)
	res := mustExec(t, s, "EXPLAIN RETRIEVE (e.all) WHERE e.begin = 7")
	if !strings.Contains(res.Plan, "index probe") {
		t.Errorf("plan = %q, want an index probe", res.Plan)
	}
	res = mustExec(t, s, "EXPLAIN RETRIEVE (e.all) WHERE e.cost < 1.2")
	if !strings.Contains(res.Plan, "full scan") {
		t.Errorf("plan = %q, want a full scan", res.Plan)
	}
	// Residual predicates are reported.
	res = mustExec(t, s, "EXPLAIN RETRIEVE (e.id) WHERE e.begin = 7 AND e.cost > 2.0")
	if !strings.Contains(res.Plan, "1 residual") {
		t.Errorf("plan = %q, want residual count", res.Plan)
	}
	// EXPLAIN must not execute: no rows come back.
	if res.Count != 0 || len(res.Rows) != 0 {
		t.Errorf("EXPLAIN produced rows: %+v", res)
	}
	// Only RETRIEVE is explainable; errors still validate fields.
	if _, err := s.Execute("EXPLAIN DELETE e"); err == nil {
		t.Error("EXPLAIN DELETE accepted")
	}
	if _, err := s.Execute("EXPLAIN RETRIEVE (e.ghost)"); err == nil {
		t.Error("EXPLAIN with ghost field accepted")
	}
}

func TestIndexedEqualityMissingKey(t *testing.T) {
	s, _ := bigSession(t)
	res := mustExec(t, s, "RETRIEVE (e.all) WHERE e.id = 999999")
	if res.Count != 0 {
		t.Errorf("ghost key matched %d rows", res.Count)
	}
}

// The probe and scan paths must agree on every qualification shape.
func TestProbeAndScanAgree(t *testing.T) {
	s, _ := bigSession(t)
	for _, q := range []string{
		"RETRIEVE (e.id) WHERE e.begin = 3",
		"RETRIEVE (e.id) WHERE e.begin = 3 AND e.cost >= 10.0",
		"RETRIEVE (e.id) WHERE e.id = 40",
	} {
		indexed := mustExec(t, s, q)
		// Force the scan path by inverting the comparison order with a
		// tautology the scanner ignores... simpler: compare against the
		// equivalent filter evaluated client-side over e.all.
		all := mustExec(t, s, "RETRIEVE (e.all)")
		want := 0
		for _, row := range all.Rows {
			id, begin, cost := row[0].Int(), row[1].Int(), row[2].Float()
			switch q {
			case "RETRIEVE (e.id) WHERE e.begin = 3":
				if begin == 3 {
					want++
				}
			case "RETRIEVE (e.id) WHERE e.begin = 3 AND e.cost >= 10.0":
				if begin == 3 && cost >= 10.0 {
					want++
				}
			default:
				if id == 40 {
					want++
				}
			}
		}
		if indexed.Count != want {
			t.Errorf("%s: %d rows, brute force %d", q, indexed.Count, want)
		}
	}
}

func BenchmarkRetrieveIndexedVsScan(b *testing.B) {
	db := dbms.New(dbms.Options{PageSize: 512, PoolFrames: 64})
	db.CreateRelation("edges", tuple.MustSchema(
		tuple.Field{Name: "id", Kind: tuple.Int32},
		tuple.Field{Name: "begin", Kind: tuple.Int32},
		tuple.Field{Name: "cost", Kind: tuple.Float64},
	))
	db.CreateHashIndex("edges", "begin", 16)
	for i := int32(0); i < 2000; i++ {
		if _, err := db.Insert("edges", []tuple.Value{tuple.I32(i), tuple.I32(i % 50), tuple.F64(1)}); err != nil {
			b.Fatal(err)
		}
	}
	s := NewSession(db)
	if _, err := s.Execute("RANGE OF e IS edges"); err != nil {
		b.Fatal(err)
	}
	b.Run("indexed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := s.Execute(fmt.Sprintf("RETRIEVE (e.id) WHERE e.begin = %d", i%50)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("scan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := s.Execute(fmt.Sprintf("RETRIEVE (e.id) WHERE e.cost = %d.5", i%50)); err != nil {
				b.Fatal(err)
			}
		}
	})
}
