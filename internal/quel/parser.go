package quel

import (
	"fmt"
	"strconv"
)

// Statement is the parsed form of one QUEL statement.
type Statement interface{ stmt() }

// RangeStmt declares a range variable: RANGE OF e IS edges.
type RangeStmt struct {
	Var      string
	Relation string
}

// RetrieveStmt projects columns of one range variable with an optional
// qualification: RETRIEVE (e.f1, e.f2) WHERE …. All=true means (e.all).
type RetrieveStmt struct {
	Var    string
	Fields []string
	All    bool
	Where  []Comparison
}

// AppendStmt inserts a tuple: APPEND TO edges (f = v, …).
type AppendStmt struct {
	Relation string
	Assigns  []Assignment
}

// ReplaceStmt updates qualifying tuples in place: REPLACE e (f = v) WHERE ….
type ReplaceStmt struct {
	Var     string
	Assigns []Assignment
	Where   []Comparison
}

// DeleteStmt removes qualifying tuples: DELETE e WHERE ….
type DeleteStmt struct {
	Var   string
	Where []Comparison
}

// ExplainStmt describes the access path a statement would use without
// executing it: EXPLAIN RETRIEVE (…) WHERE ….
type ExplainStmt struct {
	Target Statement
}

func (RangeStmt) stmt()    {}
func (RetrieveStmt) stmt() {}
func (AppendStmt) stmt()   {}
func (ReplaceStmt) stmt()  {}
func (DeleteStmt) stmt()   {}
func (ExplainStmt) stmt()  {}

// Assignment sets a field to a numeric literal.
type Assignment struct {
	Field string
	Value float64
	IsInt bool
}

// Comparison qualifies tuples: var.field OP literal. Conjunction only (AND),
// like the paper's programs.
type Comparison struct {
	Field string
	Op    string
	Value float64
	IsInt bool
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) peek() token { return p.toks[p.i] }
func (p *parser) next() token {
	t := p.toks[p.i]
	if t.kind != tokEOF {
		p.i++
	}
	return t
}

func (p *parser) expectKeyword(kw string) error {
	t := p.next()
	if !t.isKeyword(kw) {
		return fmt.Errorf("quel: expected %q at %d, got %q", kw, t.pos, t.text)
	}
	return nil
}

func (p *parser) expectKind(k tokenKind, what string) (token, error) {
	t := p.next()
	if t.kind != k {
		return t, fmt.Errorf("quel: expected %s at %d, got %q", what, t.pos, t.text)
	}
	return t, nil
}

// Parse parses one statement.
func Parse(src string) (Statement, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	head := p.next()
	var st Statement
	switch {
	case head.isKeyword("explain"):
		inner := p.next()
		if !inner.isKeyword("retrieve") {
			return nil, fmt.Errorf("quel: EXPLAIN supports RETRIEVE, got %q", inner.text)
		}
		var target Statement
		target, err = p.parseRetrieve()
		if err == nil {
			st = ExplainStmt{Target: target}
		}
	case head.isKeyword("range"):
		st, err = p.parseRange()
	case head.isKeyword("retrieve"):
		st, err = p.parseRetrieve()
	case head.isKeyword("append"):
		st, err = p.parseAppend()
	case head.isKeyword("replace"):
		st, err = p.parseReplace()
	case head.isKeyword("delete"):
		st, err = p.parseDelete()
	default:
		return nil, fmt.Errorf("quel: unknown statement %q", head.text)
	}
	if err != nil {
		return nil, err
	}
	if t := p.next(); t.kind != tokEOF {
		return nil, fmt.Errorf("quel: trailing input %q at %d", t.text, t.pos)
	}
	return st, nil
}

func (p *parser) parseRange() (Statement, error) {
	if err := p.expectKeyword("of"); err != nil {
		return nil, err
	}
	v, err := p.expectKind(tokIdent, "range variable")
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("is"); err != nil {
		return nil, err
	}
	rel, err := p.expectKind(tokIdent, "relation name")
	if err != nil {
		return nil, err
	}
	return RangeStmt{Var: v.text, Relation: rel.text}, nil
}

func (p *parser) parseRetrieve() (Statement, error) {
	if _, err := p.expectKind(tokLParen, "'('"); err != nil {
		return nil, err
	}
	st := RetrieveStmt{}
	for {
		v, err := p.expectKind(tokIdent, "range variable")
		if err != nil {
			return nil, err
		}
		if st.Var == "" {
			st.Var = v.text
		} else if st.Var != v.text {
			return nil, fmt.Errorf("quel: multiple range variables %q and %q (subset supports one)", st.Var, v.text)
		}
		if _, err := p.expectKind(tokDot, "'.'"); err != nil {
			return nil, err
		}
		f, err := p.expectKind(tokIdent, "field name")
		if err != nil {
			return nil, err
		}
		if f.isKeyword("all") {
			st.All = true
		} else {
			st.Fields = append(st.Fields, f.text)
		}
		if p.peek().kind == tokComma {
			p.next()
			continue
		}
		break
	}
	if _, err := p.expectKind(tokRParen, "')'"); err != nil {
		return nil, err
	}
	where, err := p.parseOptionalWhere(st.Var)
	if err != nil {
		return nil, err
	}
	st.Where = where
	return st, nil
}

func (p *parser) parseAppend() (Statement, error) {
	if err := p.expectKeyword("to"); err != nil {
		return nil, err
	}
	rel, err := p.expectKind(tokIdent, "relation name")
	if err != nil {
		return nil, err
	}
	assigns, err := p.parseAssignments()
	if err != nil {
		return nil, err
	}
	return AppendStmt{Relation: rel.text, Assigns: assigns}, nil
}

func (p *parser) parseReplace() (Statement, error) {
	v, err := p.expectKind(tokIdent, "range variable")
	if err != nil {
		return nil, err
	}
	assigns, err := p.parseAssignments()
	if err != nil {
		return nil, err
	}
	where, err := p.parseOptionalWhere(v.text)
	if err != nil {
		return nil, err
	}
	return ReplaceStmt{Var: v.text, Assigns: assigns, Where: where}, nil
}

func (p *parser) parseDelete() (Statement, error) {
	v, err := p.expectKind(tokIdent, "range variable")
	if err != nil {
		return nil, err
	}
	where, err := p.parseOptionalWhere(v.text)
	if err != nil {
		return nil, err
	}
	return DeleteStmt{Var: v.text, Where: where}, nil
}

func (p *parser) parseAssignments() ([]Assignment, error) {
	if _, err := p.expectKind(tokLParen, "'('"); err != nil {
		return nil, err
	}
	var out []Assignment
	for {
		f, err := p.expectKind(tokIdent, "field name")
		if err != nil {
			return nil, err
		}
		op, err := p.expectKind(tokOp, "'='")
		if err != nil {
			return nil, err
		}
		if op.text != "=" {
			return nil, fmt.Errorf("quel: assignment needs '=', got %q at %d", op.text, op.pos)
		}
		v, isInt, err := p.parseNumber()
		if err != nil {
			return nil, err
		}
		out = append(out, Assignment{Field: f.text, Value: v, IsInt: isInt})
		if p.peek().kind == tokComma {
			p.next()
			continue
		}
		break
	}
	if _, err := p.expectKind(tokRParen, "')'"); err != nil {
		return nil, err
	}
	return out, nil
}

func (p *parser) parseOptionalWhere(rangeVar string) ([]Comparison, error) {
	if !p.peek().isKeyword("where") {
		return nil, nil
	}
	p.next()
	var out []Comparison
	for {
		v, err := p.expectKind(tokIdent, "range variable")
		if err != nil {
			return nil, err
		}
		if v.text != rangeVar {
			return nil, fmt.Errorf("quel: qualification uses %q but statement ranges over %q", v.text, rangeVar)
		}
		if _, err := p.expectKind(tokDot, "'.'"); err != nil {
			return nil, err
		}
		f, err := p.expectKind(tokIdent, "field name")
		if err != nil {
			return nil, err
		}
		op, err := p.expectKind(tokOp, "comparison operator")
		if err != nil {
			return nil, err
		}
		val, isInt, err := p.parseNumber()
		if err != nil {
			return nil, err
		}
		out = append(out, Comparison{Field: f.text, Op: op.text, Value: val, IsInt: isInt})
		if p.peek().isKeyword("and") {
			p.next()
			continue
		}
		break
	}
	return out, nil
}

func (p *parser) parseNumber() (float64, bool, error) {
	t, err := p.expectKind(tokNumber, "numeric literal")
	if err != nil {
		return 0, false, err
	}
	v, err := strconv.ParseFloat(t.text, 64)
	if err != nil {
		return 0, false, fmt.Errorf("quel: bad number %q at %d", t.text, t.pos)
	}
	isInt := true
	for _, c := range t.text {
		if c == '.' {
			isInt = false
			break
		}
	}
	return v, isInt, nil
}
