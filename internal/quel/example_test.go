package quel_test

import (
	"fmt"

	"repro/internal/dbms"
	"repro/internal/quel"
	"repro/internal/tuple"
)

// ExampleSession runs the QUEL subset end to end: declare a range variable,
// append tuples, qualify a retrieve, replace in place.
func ExampleSession() {
	db := dbms.New(dbms.Options{})
	if _, err := db.CreateRelation("edges", tuple.MustSchema(
		tuple.Field{Name: "begin", Kind: tuple.Int32},
		tuple.Field{Name: "end", Kind: tuple.Int32},
		tuple.Field{Name: "cost", Kind: tuple.Float64},
	)); err != nil {
		fmt.Println("error:", err)
		return
	}
	s := quel.NewSession(db)
	for _, stmt := range []string{
		"RANGE OF e IS edges",
		"APPEND TO edges (begin = 1, end = 2, cost = 1.5)",
		"APPEND TO edges (begin = 1, end = 3, cost = 4.0)",
		"REPLACE e (cost = 2.0) WHERE e.end = 3",
	} {
		if _, err := s.Execute(stmt); err != nil {
			fmt.Println("error:", err)
			return
		}
	}
	res, err := s.Execute("RETRIEVE (e.end, e.cost) WHERE e.begin = 1 AND e.cost < 3.0")
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	for _, row := range res.Rows {
		fmt.Printf("end=%s cost=%s\n", row[0], row[1])
	}
	// Output:
	// end=2 cost=1.5
	// end=3 cost=2
}
