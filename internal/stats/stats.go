// Package stats provides the small set of descriptive statistics the
// experiment harness needs: the paper repeats each measurement "a number of
// times to arrive at average execution times", so runs aggregate into a
// Summary with mean and spread.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary describes a sample of float64 observations.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
	Median float64
}

// Summarize computes the summary of xs. An empty sample yields a zero
// Summary with N = 0.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	if len(xs) > 1 {
		s.StdDev = math.Sqrt(ss / float64(len(xs)-1))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		s.Median = sorted[mid]
	} else {
		s.Median = (sorted[mid-1] + sorted[mid]) / 2
	}
	return s
}

// String renders "mean ± stddev (n=N)".
func (s Summary) String() string {
	return fmt.Sprintf("%.3f ± %.3f (n=%d)", s.Mean, s.StdDev, s.N)
}

// Sample accumulates observations incrementally.
type Sample struct {
	xs []float64
}

// Add records one observation.
func (s *Sample) Add(x float64) { s.xs = append(s.xs, x) }

// N returns the number of observations.
func (s *Sample) N() int { return len(s.xs) }

// Summary computes the current summary.
func (s *Sample) Summary() Summary { return Summarize(s.xs) }

// Values returns a copy of the observations.
func (s *Sample) Values() []float64 { return append([]float64(nil), s.xs...) }
