package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 || s.StdDev != 0 {
		t.Errorf("empty summary = %+v", s)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{5})
	if s.N != 1 || s.Mean != 5 || s.StdDev != 0 || s.Min != 5 || s.Max != 5 || s.Median != 5 {
		t.Errorf("single summary = %+v", s)
	}
}

func TestSummarizeKnownValues(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.Mean != 5 {
		t.Errorf("mean = %v", s.Mean)
	}
	// Sample stddev of this classic set is sqrt(32/7).
	if want := math.Sqrt(32.0 / 7.0); math.Abs(s.StdDev-want) > 1e-12 {
		t.Errorf("stddev = %v, want %v", s.StdDev, want)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Errorf("min/max = %v/%v", s.Min, s.Max)
	}
	if s.Median != 4.5 {
		t.Errorf("median = %v", s.Median)
	}
}

func TestMedianOdd(t *testing.T) {
	s := Summarize([]float64{9, 1, 5})
	if s.Median != 5 {
		t.Errorf("median = %v", s.Median)
	}
}

func TestSample(t *testing.T) {
	var smp Sample
	for i := 1; i <= 4; i++ {
		smp.Add(float64(i))
	}
	if smp.N() != 4 {
		t.Errorf("N = %d", smp.N())
	}
	if got := smp.Summary().Mean; got != 2.5 {
		t.Errorf("mean = %v", got)
	}
	vals := smp.Values()
	vals[0] = 99
	if smp.Summary().Mean != 2.5 {
		t.Error("Values returned live slice")
	}
}

func TestSummaryString(t *testing.T) {
	s := Summarize([]float64{1, 2, 3})
	if got := s.String(); got != "2.000 ± 1.000 (n=3)" {
		t.Errorf("String = %q", got)
	}
}

// Properties: min ≤ median ≤ max, min ≤ mean ≤ max, stddev ≥ 0.
func TestSummaryInvariants(t *testing.T) {
	f := func(xs []float64) bool {
		for _, x := range xs {
			if math.IsNaN(x) || math.Abs(x) > 1e150 {
				return true // overflow territory, out of scope
			}
		}
		s := Summarize(xs)
		if s.N == 0 {
			return len(xs) == 0
		}
		return s.Min <= s.Median+1e-9 && s.Median <= s.Max+1e-9 &&
			s.Min <= s.Mean+1e-9 && s.Mean <= s.Max+1e-9 &&
			s.StdDev >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
