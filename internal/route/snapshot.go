package route

import (
	"context"
	"time"

	"repro/internal/ch"
	"repro/internal/core"
	"repro/internal/graph"
)

// Snapshot is the immutable read view of the road network that the
// Service publishes through one atomic pointer. It bundles everything a
// query needs — the graph at a fixed set of edge costs, a Planner bound
// to it, the contraction-hierarchy metric customized for exactly those
// costs, and the snapshot's identity — so a reader loads the pointer
// once and then never coordinates with mutators at all: no lock, no
// version re-check, no torn state. Mutators never touch a published
// Snapshot; they build the next one off to the side and swap the
// pointer (see Service.installLocked).
//
// Invariant: ch, when non-nil, was customized for graph's exact costs —
// ch.CostVersion() == graph.CostVersion() — because both are frozen
// into the same publish. The CH read path therefore needs no freshness
// check; a nil ch (cold start, hierarchy never warmed) is the only
// fallback case.
//
//atis:immutable
type Snapshot struct {
	graph   *graph.Graph
	planner *core.Planner
	ch      *ch.Index // nil until the hierarchy is warmed

	// gen is the cost generation: it increases by one with every traffic
	// mutation and keys the route cache, so entries priced under retired
	// costs stop matching without a scan.
	gen uint64
	// seq is the publish sequence: it increases by one with every
	// snapshot swap, including cost-neutral ones (EnableCH installing an
	// index). It is the identity a gateway uses for snapshot-version-
	// aware fan-out (X-ATIS-Snapshot, GET /v1/snapshot).
	seq         uint64
	publishedAt time.Time
}

// newSnapshot freezes g (plus its customized index, which may be nil)
// into a publishable Snapshot. Callers pass a graph no other goroutine
// can still mutate: a fresh clone, or the graph of an already-published
// snapshot (immutable by this type's contract).
func newSnapshot(g *graph.Graph, ix *ch.Index, gen, seq uint64) *Snapshot {
	return &Snapshot{
		graph:       g,
		planner:     core.MustNew(g),
		ch:          ix,
		gen:         gen,
		seq:         seq,
		publishedAt: time.Now(),
	}
}

// Graph returns the snapshot's road network. Its edge costs are frozen;
// treat it as read-only.
//
//atis:hotpath
func (sn *Snapshot) Graph() *graph.Graph { return sn.graph }

// Reverse returns the reverse view of the snapshot's graph, built
// lazily on first use and cached inside the graph. The snapshot's costs
// never change, so the cached reverse stays valid for the snapshot's
// whole lifetime; concurrent first callers may race to build it, and
// either result is correct.
func (sn *Snapshot) Reverse() *graph.Graph { return sn.graph.ReverseView() }

// CH returns the contraction-hierarchy index customized for this
// snapshot's costs, or nil while the hierarchy is cold.
//
//atis:hotpath
func (sn *Snapshot) CH() *ch.Index { return sn.ch }

// CostGeneration is the snapshot's cost generation — bumped by every
// traffic mutation, stable across cost-neutral publishes.
//
//atis:hotpath
func (sn *Snapshot) CostGeneration() uint64 { return sn.gen }

// Generation is the snapshot's publish sequence number — bumped by
// every swap, the identity clients see as X-ATIS-Snapshot.
//
//atis:hotpath
func (sn *Snapshot) Generation() uint64 { return sn.seq }

// CostVersion is the underlying graph's cost-mutation counter, the
// version CH metrics and reverse views are keyed on.
//
//atis:hotpath
func (sn *Snapshot) CostVersion() uint64 { return sn.graph.CostVersion() }

// PublishedAt is when the snapshot was swapped in.
func (sn *Snapshot) PublishedAt() time.Time { return sn.publishedAt }

// Snapshot returns the currently published read view. Queries load it
// once and serve entirely from it; two loads may return different
// snapshots if a mutator published in between, which is exactly the
// consistency the service promises (each request sees one complete
// world, not necessarily the same world as the next request).
//
//atis:hotpath
func (s *Service) Snapshot() *Snapshot { return s.snap.Load() }

// installLocked publishes next as the current snapshot. Callers hold
// writeMu, so publishes are totally ordered; readers observe the swap
// through the atomic pointer's release/acquire pairing — every write
// that built the snapshot (graph costs, CH metric arrays) happens
// before the Store, so a reader that Loads the new pointer sees the
// snapshot fully built. A publish carrying an index closes any open
// stale-serving window.
func (s *Service) installLocked(next *Snapshot) {
	s.snap.Store(next)
	if next.ch != nil {
		if since := s.chStaleSince.Swap(0); since != 0 {
			s.chLastStaleNanos.Store(time.Now().UnixNano() - since)
		}
	}
}

// publishMutationLocked is the common tail of every traffic mutator,
// with writeMu held and next holding the just-mutated clone: count the
// event, re-customize the hierarchy's metric for the new costs (with a
// topology in hand this is the entire price of keeping CH fresh — one
// bottom-up triangle pass, no contraction), and swap the new world in.
// The previous snapshot is untouched throughout; readers that loaded it
// keep a complete, internally consistent view until they finish.
func (s *Service) publishMutationLocked(ctx context.Context, cur *Snapshot, next *graph.Graph) {
	s.trafficUpdates.Inc()
	ix := s.customizeFor(ctx, next)
	s.installLocked(newSnapshot(next, ix, cur.gen+1, cur.seq+1))
}

// customizeFor re-derives the hierarchy's metric for g's costs, or
// returns nil when the hierarchy was never warmed (no topology yet —
// the structural build never runs under writeMu). A nil return means
// the published snapshot serves CH requests by Dijkstra fallback until
// the background build completes.
func (s *Service) customizeFor(ctx context.Context, g *graph.Graph) *ch.Index {
	topo := s.chTopo.Load()
	if topo == nil || !topo.Matches(g) {
		return nil
	}
	ix, err := s.customizeTopo(ctx, topo, g)
	if err != nil {
		return nil // unreachable while Matches holds; queries fall back
	}
	return ix
}
