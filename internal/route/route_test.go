package route

import (
	"math"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/gridgen"
	"repro/internal/mpls"
)

func gridService(t *testing.T, k int) *Service {
	t.Helper()
	return NewService(gridgen.MustGenerate(gridgen.Config{K: k, Model: gridgen.Uniform}))
}

func TestComputeBasic(t *testing.T) {
	s := gridService(t, 6)
	r, err := s.Compute(0, 35, core.Options{})
	if err != nil || !r.Found {
		t.Fatalf("Compute: %v found=%v", err, r.Found)
	}
	if r.Cost != 10 { // corner to corner on a 6×6 unit grid
		t.Errorf("cost = %v, want 10", r.Cost)
	}
}

func TestServiceSnapshotsCallerGraph(t *testing.T) {
	g := gridgen.MustGenerate(gridgen.Config{K: 4})
	s := NewService(g)
	if _, err := s.ApplyCongestion(0, 1, 5); err != nil {
		t.Fatal(err)
	}
	if c, _ := g.ArcCost(0, 1); c != 1 {
		t.Error("service mutated the caller's graph")
	}
}

func TestEvaluate(t *testing.T) {
	s := gridService(t, 5)
	r, err := s.Compute(0, 4, core.Options{}) // along the bottom row
	if err != nil {
		t.Fatal(err)
	}
	ev, err := s.Evaluate(r.Path)
	if err != nil {
		t.Fatal(err)
	}
	if !ev.Valid || ev.Hops != 4 {
		t.Errorf("evaluation = %+v", ev)
	}
	if math.Abs(ev.Distance-4) > 1e-9 {
		t.Errorf("distance = %v, want 4", ev.Distance)
	}
	if ev.CongestionRatio != 1 || ev.CongestedHops != 0 {
		t.Errorf("free flow evaluation = %+v", ev)
	}
	if math.Abs(ev.BaseCost-ev.CurrentCost) > 1e-12 {
		t.Errorf("base %v != current %v under free flow", ev.BaseCost, ev.CurrentCost)
	}
}

func TestEvaluateRejectsNonPath(t *testing.T) {
	s := gridService(t, 5)
	_, err := s.Evaluate(graph.Path{Nodes: []graph.NodeID{0, 7}})
	if err == nil {
		t.Error("non-path accepted")
	}
}

func TestCongestionChangesRoutesAndEvaluation(t *testing.T) {
	s := gridService(t, 5)
	before, err := s.Compute(0, 4, core.Options{Algorithm: core.Dijkstra})
	if err != nil {
		t.Fatal(err)
	}
	// Congest the bottom row heavily.
	for col := 0; col < 4; col++ {
		u := gridgen.NodeAt(5, 0, col)
		v := gridgen.NodeAt(5, 0, col+1)
		if ok, err := s.ApplyCongestion(u, v, 10); err != nil || !ok {
			t.Fatalf("congestion: %v %v", ok, err)
		}
	}
	// The old route is now expensive…
	ev, err := s.Evaluate(before.Path)
	if err != nil {
		t.Fatal(err)
	}
	if ev.CongestionRatio < 9.9 || ev.CongestedHops != 4 {
		t.Errorf("evaluation after congestion = %+v", ev)
	}
	// …and recomputation routes around it.
	after, err := s.Compute(0, 4, core.Options{Algorithm: core.Dijkstra})
	if err != nil {
		t.Fatal(err)
	}
	if after.Cost >= before.Cost*10 {
		t.Errorf("recomputed cost %v did not avoid congestion", after.Cost)
	}
	same := len(after.Path.Nodes) == len(before.Path.Nodes)
	if same {
		for i := range after.Path.Nodes {
			if after.Path.Nodes[i] != before.Path.Nodes[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("route unchanged despite 10× congestion on it")
	}
	// Reset restores free flow.
	s.ResetTraffic()
	reset, _ := s.Compute(0, 4, core.Options{Algorithm: core.Dijkstra})
	if math.Abs(reset.Cost-before.Cost) > 1e-9 {
		t.Errorf("after reset cost = %v, want %v", reset.Cost, before.Cost)
	}
}

func TestApplyCongestionMissingEdge(t *testing.T) {
	s := gridService(t, 4)
	ok, err := s.ApplyCongestion(0, 15, 2) // opposite corners: no edge
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("congestion applied to a non-edge")
	}
	if _, err := s.ApplyCongestion(0, 1, -1); err == nil {
		t.Error("negative factor accepted")
	}
}

func TestApplyRegionCongestion(t *testing.T) {
	s := gridService(t, 7)
	n, err := s.ApplyRegionCongestion(graph.Point{X: 3, Y: 3}, 1.5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("region congestion affected nothing")
	}
	// An edge at the centre tripled; an edge at the corner did not.
	c, _ := s.Graph().ArcCost(gridgen.NodeAt(7, 3, 3), gridgen.NodeAt(7, 3, 4))
	if c != 3 {
		t.Errorf("centre edge cost = %v, want 3", c)
	}
	c, _ = s.Graph().ArcCost(0, 1)
	if c != 1 {
		t.Errorf("corner edge cost = %v, want 1", c)
	}
	if _, err := s.ApplyRegionCongestion(graph.Point{}, 1, -2); err == nil {
		t.Error("negative factor accepted")
	}
}

func TestDisplayShowsRouteAndLandmarks(t *testing.T) {
	s := NewService(mpls.MustGenerate(mpls.Config{}))
	r, err := s.ComputeByName("G", "D", core.Options{})
	if err != nil || !r.Found {
		t.Fatalf("route G→D: %v found=%v", err, r.Found)
	}
	out := s.Display(r.Path, 66, 33)
	for _, want := range []string{"S", "D", "o", "."} {
		if !strings.Contains(out, want) {
			t.Errorf("display missing %q", want)
		}
	}
	// Landmarks not on the route still render.
	if !strings.Contains(out, "A") {
		t.Error("display missing landmark A")
	}
}

func TestComputeByNameUnknown(t *testing.T) {
	s := gridService(t, 4)
	if _, err := s.ComputeByName("X", "Y", core.Options{}); err == nil {
		t.Error("unknown landmarks accepted")
	}
}

func TestConcurrentComputeAndTraffic(t *testing.T) {
	s := NewService(mpls.MustGenerate(mpls.Config{}))
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				if i%2 == 0 {
					r, err := s.ComputeByName("C", "D", core.Options{})
					if err != nil || !r.Found {
						t.Errorf("compute: %v", err)
						return
					}
				} else {
					if _, err := s.ApplyRegionCongestion(graph.Point{X: 16, Y: 16}, 4, 1.1); err != nil {
						t.Errorf("congestion: %v", err)
						return
					}
				}
			}
		}(i)
	}
	wg.Wait()
}
