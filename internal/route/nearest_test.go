package route

import (
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/gridgen"
	"repro/internal/mpls"
)

func TestNearestOnGrid(t *testing.T) {
	s := gridService(t, 5)
	u, ok := s.Nearest(2.2, 3.4)
	if !ok {
		t.Fatal("no road node found")
	}
	if u != gridgen.NodeAt(5, 3, 2) { // coords are (col, row) = (x, y)
		t.Errorf("Nearest(2.2, 3.4) = %d, want node at row 3 col 2", u)
	}
	// Exactly on a node.
	u, _ = s.Nearest(0, 0)
	if u != 0 {
		t.Errorf("Nearest(0,0) = %d", u)
	}
	// Far outside the map snaps to the closest corner.
	u, _ = s.Nearest(100, 100)
	if u != gridgen.NodeAt(5, 4, 4) {
		t.Errorf("Nearest(100,100) = %d", u)
	}
}

func TestNearestSkipsIsolatedNodes(t *testing.T) {
	// Lake nodes have no roads; snapping near a lake centre must return a
	// shoreline road node, not the underwater one.
	s := NewService(mpls.MustGenerate(mpls.Config{}))
	u, ok := s.Nearest(6, 6) // lake centre
	if !ok {
		t.Fatal("no road node")
	}
	if s.Graph().OutDegree(u) == 0 {
		t.Errorf("Nearest snapped to isolated node %d", u)
	}
}

func TestNearestEmptyNetwork(t *testing.T) {
	s := NewService(graph.NewBuilder(0, 0).MustBuild())
	if _, ok := s.Nearest(0, 0); ok {
		t.Error("empty network returned a node")
	}
	// A network of only isolated nodes has no roads either.
	b := graph.NewBuilder(2, 0)
	b.AddNode(0, 0)
	b.AddNode(1, 1)
	s2 := NewService(b.MustBuild())
	if _, ok := s2.Nearest(0, 0); ok {
		t.Error("isolated-only network returned a node")
	}
}

// The end-to-end ATIS flow: snap a position, snap a destination, route.
func TestSnapAndRoute(t *testing.T) {
	s := NewService(mpls.MustGenerate(mpls.Config{}))
	from, ok := s.Nearest(1.8, 2.1) // near landmark C
	if !ok {
		t.Fatal("snap failed")
	}
	to, ok := s.Nearest(30.2, 29.8) // near landmark D
	if !ok {
		t.Fatal("snap failed")
	}
	r, err := s.Compute(from, to, core.Options{})
	if err != nil || !r.Found {
		t.Fatalf("route: %v found=%v", err, r.Found)
	}
}
