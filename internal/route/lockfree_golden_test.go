package route

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// queryPathFuncs are the Service methods of the read path. The golden
// check below parses this package's sources and fails if any of them —
// or the Service struct itself — regresses to lock-based serving.
var queryPathFuncs = map[string]bool{
	"Snapshot": true, "CostGeneration": true, "CacheStats": true,
	"Graph": true, "Compute": true, "ComputeCtx": true, "computeSnap": true,
	"cacheLookup": true, "routeSnap": true, "chQuery": true,
	"ComputeDegraded": true, "CHStats": true, "ComputeByName": true,
	"ComputeVia": true, "ComputeViaCtx": true, "ComputeBatch": true,
	"ComputeBatchCtx": true, "Evaluate": true, "Display": true,
	"Alternates": true, "AlternatesCtx": true, "Nearest": true,
	"Reachable": true, "ReachableCtx": true, "DisplayReachable": true,
	"Directions": true,
}

// TestQueryPathAcquiresNoServiceLock is the ISSUE's lockscope/golden
// acceptance check: no query-path function may acquire the Service's
// writer lock (or any reader lock — the type must not even have one).
// The read path's only synchronization is the atomic snapshot load.
func TestQueryPathAcquiresNoServiceLock(t *testing.T) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, ".", nil, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	pkg, ok := pkgs["route"]
	if !ok {
		t.Fatal("package route not parsed")
	}

	for fname, f := range pkg.Files {
		if strings.HasSuffix(fname, "_test.go") {
			continue
		}
		// (a) Service must not carry a sync.RWMutex — readers have nothing
		// to share-lock, so a slow writer cannot convoy them.
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok || ts.Name.Name != "Service" {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				if sel, ok := field.Type.(*ast.SelectorExpr); ok {
					if id, ok := sel.X.(*ast.Ident); ok && id.Name == "sync" && sel.Sel.Name == "RWMutex" {
						t.Errorf("%s: Service regained a sync.RWMutex field (%v); serve from the published snapshot instead",
							fname, field.Names)
					}
				}
			}
			return false
		})

		// (b) No query-path method may mention the writer lock or any
		// RLock/RUnlock call.
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil || !queryPathFuncs[fd.Name.Name] {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				switch sel.Sel.Name {
				case "writeMu":
					t.Errorf("%s: query-path %s touches writeMu; the read path must be lock-free",
						fname, fd.Name.Name)
				case "RLock", "RUnlock", "Lock", "Unlock":
					// The route cache's shard locks are inside cache.go's own
					// methods, not visible here; any direct lock call in a
					// query-path body is a regression.
					t.Errorf("%s: query-path %s calls %s; the read path must be lock-free",
						fname, fd.Name.Name, sel.Sel.Name)
				}
				return true
			})
		}
	}
}

// TestSnapshotCarriesImmutableAnnotation pins the //atis:immutable
// contract: the immutsnapshot analyzer only enforces what is annotated,
// so losing the marker silently turns off the build-phase-only check.
func TestSnapshotCarriesImmutableAnnotation(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "snapshot.go", nil, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.TYPE {
			continue
		}
		for _, spec := range gd.Specs {
			ts, ok := spec.(*ast.TypeSpec)
			if !ok || ts.Name.Name != "Snapshot" {
				continue
			}
			if gd.Doc != nil {
				for _, c := range gd.Doc.List {
					if strings.Contains(c.Text, "atis:immutable") {
						return
					}
				}
			}
			t.Fatal("route.Snapshot lost its //atis:immutable annotation")
		}
	}
	t.Fatal("type Snapshot not found in snapshot.go")
}
