package route

import (
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
)

func TestCacheHitOnRepeatedQuery(t *testing.T) {
	s := gridService(t, 8)
	r1, err := s.Compute(0, 63, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	hits0, misses0, _ := s.CacheStats()
	if hits0 != 0 || misses0 != 1 {
		t.Fatalf("after first query: hits=%d misses=%d, want 0/1", hits0, misses0)
	}
	r2, err := s.Compute(0, 63, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	hits1, _, entries := s.CacheStats()
	if hits1 != 1 {
		t.Fatalf("after repeat query: hits=%d, want 1", hits1)
	}
	if entries != 1 {
		t.Fatalf("entries = %d, want 1", entries)
	}
	if r2.Cost != r1.Cost || len(r2.Path.Nodes) != len(r1.Path.Nodes) {
		t.Fatalf("cached route differs: %+v vs %+v", r2, r1)
	}
	// A cache hit must hand back a private copy, never the resident slice.
	r2.Path.Nodes[0] = 99
	r3, _ := s.Compute(0, 63, core.Options{})
	if r3.Path.Nodes[0] == 99 {
		t.Fatal("caller mutation leaked into the cache")
	}
}

func TestCacheKeyedByOptions(t *testing.T) {
	s := gridService(t, 8)
	if _, err := s.Compute(0, 63, core.Options{Algorithm: core.Dijkstra}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Compute(0, 63, core.Options{Algorithm: core.AStarEuclidean}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Compute(0, 63, core.Options{Algorithm: core.AStarEuclidean, Weight: 2}); err != nil {
		t.Fatal(err)
	}
	hits, misses, _ := s.CacheStats()
	if hits != 0 || misses != 3 {
		t.Fatalf("distinct options must not share entries: hits=%d misses=%d", hits, misses)
	}
}

// TestCacheGenerationInvalidation is the core correctness property: a
// traffic mutation bumps the cost generation, so a cached pre-mutation route
// must never be served afterwards.
func TestCacheGenerationInvalidation(t *testing.T) {
	s := gridService(t, 8)
	if g := s.CostGeneration(); g != 0 {
		t.Fatalf("initial generation = %d, want 0", g)
	}
	base, err := s.Compute(0, 63, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s.Compute(0, 63, core.Options{}) // warm the cache

	// Double every edge: generation bumps, best path cost exactly doubles.
	min, max := s.Graph().Bounds()
	center := graph.Point{X: (min.X + max.X) / 2, Y: (min.Y + max.Y) / 2}
	n, err := s.ApplyRegionCongestion(center, 1e9, 2)
	if err != nil || n == 0 {
		t.Fatalf("ApplyRegionCongestion: n=%d err=%v", n, err)
	}
	if g := s.CostGeneration(); g != 1 {
		t.Fatalf("generation after mutation = %d, want 1", g)
	}
	congested, err := s.Compute(0, 63, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if congested.Cost != 2*base.Cost {
		t.Fatalf("post-mutation cost = %v, want %v (stale cache entry served?)", congested.Cost, 2*base.Cost)
	}

	s.ResetTraffic()
	if g := s.CostGeneration(); g != 2 {
		t.Fatalf("generation after reset = %d, want 2", g)
	}
	restored, err := s.Compute(0, 63, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if restored.Cost != base.Cost {
		t.Fatalf("post-reset cost = %v, want %v", restored.Cost, base.Cost)
	}
}

func TestCacheNoBumpWhenNothingChanged(t *testing.T) {
	s := gridService(t, 4)
	g0 := s.CostGeneration()
	// Congestion on a region holding no edges changes nothing.
	if n, err := s.ApplyRegionCongestion(graph.Point{X: -100, Y: -100}, 0.1, 3); err != nil || n != 0 {
		t.Fatalf("n=%d err=%v", n, err)
	}
	if g := s.CostGeneration(); g != g0 {
		t.Fatalf("generation bumped to %d by a no-op mutation", g)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := newRouteCache(cacheShardCount) // minimum: one entry per shard
	k1 := cacheKey{from: 1, to: 2}
	k2 := cacheKey{from: 3, to: 4}
	c.put(k1, core.Route{Cost: 1})
	c.put(k2, core.Route{Cost: 2})
	total := c.len()
	if total < 1 || total > 2 {
		t.Fatalf("len = %d, want 1..2", total)
	}
	if k1.hash()%cacheShardCount == k2.hash()%cacheShardCount && total != 1 {
		t.Fatalf("same shard at capacity 1 must evict: len = %d", total)
	}
}

func TestComputeBatch(t *testing.T) {
	s := gridService(t, 8)
	pairs := []Pair{
		{From: 0, To: 63},
		{From: 7, To: 56},
		{From: 0, To: 63},  // duplicate: served from cache
		{From: 0, To: 999}, // out of range: per-pair error
	}
	results := s.ComputeBatch(pairs, core.Options{})
	if len(results) != len(pairs) {
		t.Fatalf("got %d results, want %d", len(results), len(pairs))
	}
	if results[0].Err != nil || !results[0].Route.Found {
		t.Fatalf("pair 0: %+v", results[0])
	}
	if results[0].Route.Cost != results[2].Route.Cost {
		t.Fatalf("duplicate pair costs differ: %v vs %v", results[0].Route.Cost, results[2].Route.Cost)
	}
	if results[3].Err == nil {
		t.Fatal("out-of-range pair must carry an error")
	}
	if results[1].Err != nil || !results[1].Route.Found {
		t.Fatalf("pair 1: %+v", results[1])
	}
}

func TestComputeBatchEmpty(t *testing.T) {
	s := gridService(t, 4)
	if got := s.ComputeBatch(nil, core.Options{}); len(got) != 0 {
		t.Fatalf("empty batch returned %d results", len(got))
	}
}
