package route

import (
	"math"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/gridgen"
	"repro/internal/mpls"
)

func TestDirectionsStraightLine(t *testing.T) {
	s := gridService(t, 6)
	// Along the bottom row: east, no turns.
	p := graph.Path{Nodes: []graph.NodeID{0, 1, 2, 3, 4, 5}}
	ins, err := s.Directions(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(ins) != 2 {
		t.Fatalf("instructions: %v", ins)
	}
	dep := ins[0]
	if dep.Action != "depart" || dep.Heading != "east" || dep.Segments != 5 {
		t.Errorf("depart = %+v", dep)
	}
	if math.Abs(dep.Distance-5) > 1e-9 {
		t.Errorf("distance = %v", dep.Distance)
	}
	if ins[1].Action != "arrive" || ins[1].At != 5 {
		t.Errorf("arrive = %+v", ins[1])
	}
}

func TestDirectionsLShape(t *testing.T) {
	const k = 6
	s := gridService(t, k)
	// East along the bottom row, then north up the last column: one left
	// turn (grid rows grow northward with our convention y = row).
	nodes := []graph.NodeID{}
	for col := 0; col < k; col++ {
		nodes = append(nodes, gridgen.NodeAt(k, 0, col))
	}
	for row := 1; row < k; row++ {
		nodes = append(nodes, gridgen.NodeAt(k, row, k-1))
	}
	ins, err := s.Directions(graph.Path{Nodes: nodes})
	if err != nil {
		t.Fatal(err)
	}
	if len(ins) != 3 {
		t.Fatalf("instructions: %v", ins)
	}
	if ins[0].Heading != "east" {
		t.Errorf("depart heading %q", ins[0].Heading)
	}
	if ins[1].Action != "turn left" || ins[1].Heading != "north" {
		t.Errorf("turn = %+v", ins[1])
	}
	if ins[1].At != gridgen.NodeAt(k, 0, k-1) {
		t.Errorf("turn at %d", ins[1].At)
	}
}

func TestDirectionsRightAndUTurn(t *testing.T) {
	// Custom geometry: east, then south (right turn), then back west-north
	// (u-turn-ish).
	b := graph.NewBuilder(4, 3)
	b.AddNode(0, 0)
	b.AddNode(1, 0)
	b.AddNode(1, -1)
	b.AddNode(1.05, 0.05) // nearly reversing the previous hop
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 1)
	b.AddEdge(2, 3, 1.1)
	g := b.MustBuild()
	s := NewService(g)
	ins, err := s.Directions(graph.Path{Nodes: []graph.NodeID{0, 1, 2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if len(ins) != 4 {
		t.Fatalf("instructions: %v", ins)
	}
	if ins[1].Action != "turn right" || ins[1].Heading != "south" {
		t.Errorf("expected right turn south, got %+v", ins[1])
	}
	if ins[2].Action != "u-turn" {
		t.Errorf("expected u-turn, got %+v", ins[2])
	}
}

func TestDirectionsValidation(t *testing.T) {
	s := gridService(t, 4)
	if _, err := s.Directions(graph.Path{Nodes: []graph.NodeID{0, 9}}); err == nil {
		t.Error("non-path accepted")
	}
	if _, err := s.Directions(graph.Path{}); err == nil {
		t.Error("empty path accepted")
	}
	ins, err := s.Directions(graph.Path{Nodes: []graph.NodeID{3}})
	if err != nil || len(ins) != 1 || ins[0].Action != "arrive" {
		t.Errorf("single-node path: %v %v", ins, err)
	}
}

func TestDirectionsCoverRealRoute(t *testing.T) {
	s := NewService(mpls.MustGenerate(mpls.Config{}))
	r, err := s.ComputeByName("C", "D", core.Options{})
	if err != nil || !r.Found {
		t.Fatalf("route: %v", err)
	}
	ins, err := s.Directions(r.Path)
	if err != nil {
		t.Fatal(err)
	}
	if len(ins) < 3 {
		t.Fatalf("real route produced %d instructions", len(ins))
	}
	// Distances must sum to the route's geometric length.
	var total float64
	var segs int
	for _, in := range ins {
		total += in.Distance
		segs += in.Segments
	}
	ev, _ := s.Evaluate(r.Path)
	if math.Abs(total-ev.Distance) > 1e-9 {
		t.Errorf("instruction distances sum to %v, route length %v", total, ev.Distance)
	}
	if segs != r.Path.Len() {
		t.Errorf("instruction segments sum to %d, route has %d", segs, r.Path.Len())
	}
	if ins[0].Action != "depart" || ins[len(ins)-1].Action != "arrive" {
		t.Error("missing depart/arrive bookends")
	}
	out := FormatDirections(ins)
	if !strings.Contains(out, "1. depart") || !strings.Contains(out, "arrive at node") {
		t.Errorf("formatted directions:\n%s", out)
	}
}

func TestCompassAndTurnHelpers(t *testing.T) {
	compass := map[float64]string{
		0: "east", 45: "northeast", 90: "north", 135: "northwest",
		180: "west", -180: "west", -90: "south", -45: "southeast", 360: "east",
	}
	for deg, want := range compass {
		if got := compass8(deg); got != want {
			t.Errorf("compass8(%v) = %q, want %q", deg, got, want)
		}
	}
	turns := map[float64]string{
		0: "continue", 10: "continue", -20: "continue",
		40: "bear left", -40: "bear right",
		90: "turn left", -90: "turn right",
		150: "sharp left", -150: "sharp right",
		180: "u-turn", -179: "u-turn",
	}
	for delta, want := range turns {
		if got := classifyTurn(delta); got != want {
			t.Errorf("classifyTurn(%v) = %q, want %q", delta, got, want)
		}
	}
	if d := turnDelta(170, -170); math.Abs(d-20) > 1e-9 {
		t.Errorf("turnDelta wraparound = %v, want 20", d)
	}
	if d := turnDelta(-170, 170); math.Abs(d+20) > 1e-9 {
		t.Errorf("turnDelta wraparound = %v, want -20", d)
	}
}
