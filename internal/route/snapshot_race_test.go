package route

import (
	"context"
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/gridgen"
)

// TestSnapshotsCompleteUnderMutationStream is the mutate-while-querying
// guarantee of snapshot publication, run under -race: a sustained
// ApplyTrafficBatch stream publishes new worlds while readers hammer the
// query paths, and every snapshot a reader loads must be complete — its
// CH metric customized for exactly its graph's costs, never a torn
// pairing of new costs with an old metric. On a warmed service the
// stream must also produce zero stale fallbacks: every published
// snapshot carries an index.
func TestSnapshotsCompleteUnderMutationStream(t *testing.T) {
	g := gridgen.MustGenerate(gridgen.Config{K: 10, Model: gridgen.Variance, Seed: 11})
	s := NewService(g)
	if err := s.EnableCH(); err != nil {
		t.Fatal(err)
	}
	edges := g.Edges()
	n := g.NumNodes()
	stop := make(chan struct{})
	var mutWg, wg sync.WaitGroup

	// Mutator: a sustained traffic stream, one batch per iteration.
	mutWg.Add(1)
	go func() {
		defer mutWg.Done()
		rng := rand.New(rand.NewSource(7))
		for {
			select {
			case <-stop:
				return
			default:
			}
			batch := make([]graph.EdgeCostChange, 0, 8)
			for i := 0; i < 8; i++ {
				e := edges[rng.Intn(len(edges))]
				batch = append(batch, graph.EdgeCostChange{
					Tail: e.Tail, Head: e.Head, Cost: e.Cost * (0.5 + 2.5*rng.Float64()),
				})
			}
			if _, err := s.ApplyTrafficBatch(batch); err != nil {
				t.Errorf("ApplyTrafficBatch: %v", err)
				return
			}
		}
	}()

	// Invariant watchers: load snapshots as fast as possible and check
	// each one is internally consistent — the CH metric's cost version
	// always agrees with the graph's, and the publish sequence never runs
	// behind the cost generation.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lastSeq, lastGen uint64
			for i := 0; i < 4000; i++ {
				sn := s.Snapshot()
				ix := sn.CH()
				if ix == nil {
					t.Error("warmed service published a snapshot without an index")
					return
				}
				if ix.CostVersion() != sn.CostVersion() {
					t.Errorf("torn snapshot: ch metric version %d, graph cost version %d",
						ix.CostVersion(), sn.CostVersion())
					return
				}
				if sn.Generation() < lastSeq || sn.CostGeneration() < lastGen {
					t.Errorf("snapshot identity went backwards: seq %d→%d, gen %d→%d",
						lastSeq, sn.Generation(), lastGen, sn.CostGeneration())
					return
				}
				lastSeq, lastGen = sn.Generation(), sn.CostGeneration()
			}
		}()
	}

	// Query readers: ComputeCtx with CH against whatever snapshot each
	// request loads; a CH answer must agree exactly with Dijkstra run
	// against the *same* snapshot — the strongest form of "complete
	// snapshots only", immune to a mutation landing between the two runs.
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			ctx := context.Background()
			for i := 0; i < 80; i++ {
				from := graph.NodeID(rng.Intn(n))
				to := graph.NodeID(rng.Intn(n))
				sn := s.Snapshot()
				chRt, err := s.computeSnap(ctx, sn, from, to, core.Options{Algorithm: core.CH})
				if err != nil {
					t.Errorf("ch %d→%d: %v", from, to, err)
					return
				}
				if chRt.Algorithm != core.CH {
					t.Errorf("%d→%d: warmed snapshot served %v, want ch", from, to, chRt.Algorithm)
					return
				}
				dij, err := s.computeSnap(ctx, sn, from, to, core.Options{Algorithm: core.Dijkstra})
				if err != nil {
					t.Errorf("dijkstra %d→%d: %v", from, to, err)
					return
				}
				if math.Abs(chRt.Cost-dij.Cost) > 1e-9*(1+dij.Cost) {
					t.Errorf("%d→%d: ch %v vs dijkstra %v on one snapshot", from, to, chRt.Cost, dij.Cost)
					return
				}
			}
		}(int64(w + 1))
	}

	// Batch readers: every pair of a batch is priced under one snapshot.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(5))
		for i := 0; i < 20; i++ {
			pairs := make([]Pair, 8)
			for j := range pairs {
				pairs[j] = Pair{From: graph.NodeID(rng.Intn(n)), To: graph.NodeID(rng.Intn(n))}
			}
			for j, res := range s.ComputeBatch(pairs, core.Options{Algorithm: core.CH}) {
				if res.Err != nil {
					t.Errorf("batch pair %d: %v", j, res.Err)
					return
				}
				if res.Route.Algorithm != core.CH {
					t.Errorf("batch pair %d served by %v, want ch", j, res.Route.Algorithm)
					return
				}
			}
		}
	}()

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("snapshot mutation-stream stress did not finish in 60s")
	}
	close(stop)
	mutWg.Wait()

	if st := s.CHStats(); st.StaleFallbacks != 0 {
		t.Fatalf("mutation stream produced %d stale fallbacks on a warmed service, want 0: %+v",
			st.StaleFallbacks, st)
	}
}

// TestStatsNeverBlockBehindWriter pins the satellite fix: CacheStats,
// CHStats, and Snapshot must stay serviceable while a writer holds the
// publish lock mid-customization. The old RWMutex design made a stats
// scrape queue behind every pending writer; the snapshot design reads
// only counters and the atomic pointer.
func TestStatsNeverBlockBehindWriter(t *testing.T) {
	g := gridgen.MustGenerate(gridgen.Config{K: 8, Model: gridgen.Variance, Seed: 3})
	s := NewService(g)
	if err := s.EnableCH(); err != nil {
		t.Fatal(err)
	}
	// Hold the writer lock, as a slow mutator mid-publish would.
	s.writeMu.Lock()
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, _, _ = s.CacheStats()
		_ = s.CHStats()
		_ = s.Snapshot()
		_ = s.CostGeneration()
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("stats reads blocked behind the writer lock")
	}
	s.writeMu.Unlock()
}
