package route

import (
	"context"

	"repro/internal/core"
	"repro/internal/graph"
)

// Querier is the read half of the service: every method serves from one
// atomic load of the published Snapshot and never blocks behind a
// mutator. A replica or gateway tier that only answers traveller
// requests depends on this interface alone.
type Querier interface {
	// Snapshot identity — what a gateway needs for version-aware fan-out.
	Snapshot() *Snapshot
	CostGeneration() uint64
	Graph() *graph.Graph

	// Route computation.
	Compute(from, to graph.NodeID, opts core.Options) (core.Route, error)
	ComputeCtx(ctx context.Context, from, to graph.NodeID, opts core.Options) (core.Route, error)
	ComputeByName(from, to string, opts core.Options) (core.Route, error)
	ComputeVia(stops []graph.NodeID, opts core.Options) (core.Route, error)
	ComputeViaCtx(ctx context.Context, stops []graph.NodeID, opts core.Options) (core.Route, error)
	ComputeBatch(pairs []Pair, opts core.Options) []BatchResult
	ComputeBatchCtx(ctx context.Context, pairs []Pair, opts core.Options) []BatchResult
	ComputeDegraded(from, to graph.NodeID, opts core.Options) (core.Route, bool)
	Alternates(from, to graph.NodeID, k int) ([]core.Route, error)
	AlternatesCtx(ctx context.Context, from, to graph.NodeID, k int) ([]core.Route, error)

	// Route evaluation and display.
	Evaluate(path graph.Path) (Evaluation, error)
	Display(path graph.Path, width, height int) string
	Directions(p graph.Path) ([]Instruction, error)
	Nearest(x, y float64) (graph.NodeID, bool)
	Reachable(from graph.NodeID, budget float64) (map[graph.NodeID]float64, error)
	ReachableCtx(ctx context.Context, from graph.NodeID, budget float64) (map[graph.NodeID]float64, error)
	DisplayReachable(from graph.NodeID, budget float64, width, height int) (string, error)

	// Serving-state introspection — lock-free, safe to scrape while a
	// writer customizes.
	CacheStats() (hits, misses uint64, entries int)
	CHStats() CHStats
}

// Mutator is the write half of the service: every method serializes on
// the writer lock, builds the next snapshot off to the side, and swaps
// it in. The traffic-ingestion tier depends on this interface alone.
type Mutator interface {
	ApplyCongestion(from, to graph.NodeID, factor float64) (bool, error)
	ApplyCongestionCtx(ctx context.Context, from, to graph.NodeID, factor float64) (bool, error)
	ApplyRegionCongestion(center graph.Point, radius, factor float64) (int, error)
	ApplyRegionCongestionCtx(ctx context.Context, center graph.Point, radius, factor float64) (int, error)
	ApplyTrafficBatch(changes []graph.EdgeCostChange) (int, error)
	ApplyTrafficBatchCtx(ctx context.Context, changes []graph.EdgeCostChange) (int, error)
	ResetTraffic()
	ResetTrafficCtx(ctx context.Context)
	EnableCH() error
}

// Service implements both halves; callers that need only one should
// declare the narrower dependency.
var (
	_ Querier = (*Service)(nil)
	_ Mutator = (*Service)(nil)
)
