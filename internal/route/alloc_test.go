package route

import (
	"testing"

	"repro/internal/gridgen"
)

// TestSnapshotReadPathZeroAlloc is the runtime gate behind the
// //atis:hotpath annotations on the snapshot-load read path: loading the
// published snapshot and reading its identity must not allocate, because
// every query — and the per-request X-ATIS-Snapshot header — pays this
// path before any search work.
func TestSnapshotReadPathZeroAlloc(t *testing.T) {
	g := gridgen.MustGenerate(gridgen.Config{K: 6, Model: gridgen.Variance, Seed: 1})
	s := NewService(g)
	if err := s.EnableCH(); err != nil {
		t.Fatal(err)
	}

	var sink uint64
	allocs := testing.AllocsPerRun(200, func() {
		sn := s.Snapshot()
		sink += sn.CostGeneration() + sn.Generation() + sn.CostVersion()
		sink += s.CostGeneration()
		if sn.Graph() == nil || sn.CH() == nil {
			t.Fatal("warmed snapshot missing graph or index")
		}
	})
	if allocs != 0 {
		t.Fatalf("snapshot read path allocated %.1f times per run, want 0", allocs)
	}
	_ = sink
}
