package route

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/graph"
)

// Instruction is one turn-by-turn step of a route — the paper's route
// display facility ("effectively communicate the optimal route to the
// traveller") rendered as guidance rather than a map.
type Instruction struct {
	// Action is "depart", "continue", "bear/turn/sharp left|right",
	// "u-turn", or "arrive".
	Action string
	// Heading is the 8-way compass direction of travel after the action
	// (empty for "arrive").
	Heading string
	// Distance is the geometric length travelled until the next
	// instruction.
	Distance float64
	// Segments is the number of road segments covered by this instruction.
	Segments int
	// At is the node where the action happens.
	At graph.NodeID
}

// String renders the instruction as one guidance line.
func (in Instruction) String() string {
	switch in.Action {
	case "arrive":
		return fmt.Sprintf("arrive at node %d", in.At)
	case "depart":
		return fmt.Sprintf("depart heading %s for %.2f units (%d segments)", in.Heading, in.Distance, in.Segments)
	default:
		return fmt.Sprintf("%s onto heading %s for %.2f units (%d segments)", in.Action, in.Heading, in.Distance, in.Segments)
	}
}

// FormatDirections renders instructions as a numbered list.
func FormatDirections(ins []Instruction) string {
	var sb strings.Builder
	for i, in := range ins {
		fmt.Fprintf(&sb, "%2d. %s\n", i+1, in.String())
	}
	return sb.String()
}

// bearingDeg returns the travel bearing of hop u→v in degrees, with 0 =
// east, 90 = north (mathematical convention).
func bearingDeg(g *graph.Graph, u, v graph.NodeID) float64 {
	p, q := g.Point(u), g.Point(v)
	return math.Atan2(q.Y-p.Y, q.X-p.X) * 180 / math.Pi
}

// compass8 maps a bearing to an 8-way compass name.
func compass8(deg float64) string {
	names := []string{"east", "northeast", "north", "northwest", "west", "southwest", "south", "southeast"}
	idx := int(math.Round(normDeg(deg)/45)) % 8
	return names[idx]
}

// normDeg normalises an angle to [0, 360).
func normDeg(d float64) float64 {
	d = math.Mod(d, 360)
	if d < 0 {
		d += 360
	}
	return d
}

// turnDelta returns the signed change of bearing in (−180, 180]: positive
// is a left (counterclockwise) turn.
func turnDelta(from, to float64) float64 {
	d := math.Mod(to-from, 360)
	if d > 180 {
		d -= 360
	}
	if d <= -180 {
		d += 360
	}
	return d
}

// classifyTurn names the manoeuvre for a bearing change.
func classifyTurn(delta float64) string {
	abs := math.Abs(delta)
	side := "left"
	if delta < 0 {
		side = "right"
	}
	switch {
	case abs < 25:
		return "continue"
	case abs < 60:
		return "bear " + side
	case abs < 135:
		return "turn " + side
	case abs < 170:
		return "sharp " + side
	default:
		return "u-turn"
	}
}

// Directions converts a path into turn-by-turn guidance. Consecutive hops
// whose bearing changes by less than the continue threshold merge into one
// instruction. A path with fewer than two nodes yields only an arrival.
func (s *Service) Directions(p graph.Path) ([]Instruction, error) {
	g := s.snap.Load().graph
	if !p.ValidIn(g) {
		return nil, fmt.Errorf("route: not a path of the network: %s", p)
	}
	if len(p.Nodes) == 0 {
		return nil, fmt.Errorf("route: empty path")
	}
	if len(p.Nodes) == 1 {
		return []Instruction{{Action: "arrive", At: p.Nodes[0]}}, nil
	}

	hopLen := func(i int) float64 {
		return g.Point(p.Nodes[i]).EuclideanDistance(g.Point(p.Nodes[i+1]))
	}

	var out []Instruction
	cur := Instruction{
		Action:   "depart",
		Heading:  compass8(bearingDeg(g, p.Nodes[0], p.Nodes[1])),
		Distance: hopLen(0),
		Segments: 1,
		At:       p.Nodes[0],
	}
	prevBearing := bearingDeg(g, p.Nodes[0], p.Nodes[1])
	for i := 1; i+1 < len(p.Nodes); i++ {
		b := bearingDeg(g, p.Nodes[i], p.Nodes[i+1])
		action := classifyTurn(turnDelta(prevBearing, b))
		if action == "continue" {
			cur.Distance += hopLen(i)
			cur.Segments++
		} else {
			out = append(out, cur)
			cur = Instruction{
				Action:   action,
				Heading:  compass8(b),
				Distance: hopLen(i),
				Segments: 1,
				At:       p.Nodes[i],
			}
		}
		prevBearing = b
	}
	out = append(out, cur)
	out = append(out, Instruction{Action: "arrive", At: p.Nodes[len(p.Nodes)-1]})
	return out, nil
}
