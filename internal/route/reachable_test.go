package route

import (
	"math"
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/gridgen"
	"repro/internal/search"
)

func TestWithinBasics(t *testing.T) {
	g := gridgen.MustGenerate(gridgen.Config{K: 7}) // unit costs
	center := gridgen.NodeAt(7, 3, 3)
	reach, err := search.Within(g, center, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Manhattan ball of radius 2 in an infinite grid has 13 nodes; the 7×7
	// grid contains it fully around the centre.
	if len(reach) != 13 {
		t.Errorf("|ball(2)| = %d, want 13", len(reach))
	}
	if reach[center] != 0 {
		t.Errorf("centre cost %v", reach[center])
	}
	for u, c := range reach {
		if c > 2 {
			t.Errorf("node %d at cost %v exceeds budget", u, c)
		}
		// Cross-check against full Dijkstra.
		r, _ := search.Dijkstra(g, center, u)
		if math.Abs(r.Cost-c) > 1e-12 {
			t.Errorf("node %d: within cost %v, dijkstra %v", u, c, r.Cost)
		}
	}
}

func TestWithinZeroBudget(t *testing.T) {
	g := gridgen.MustGenerate(gridgen.Config{K: 4})
	reach, err := search.Within(g, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(reach) != 1 || reach[5] != 0 {
		t.Errorf("zero budget reach = %v", reach)
	}
}

func TestWithinValidation(t *testing.T) {
	g := gridgen.MustGenerate(gridgen.Config{K: 4})
	if _, err := search.Within(g, -1, 3); err == nil {
		t.Error("bad source accepted")
	}
	if _, err := search.Within(g, 0, -2); err == nil {
		t.Error("negative budget accepted")
	}
	if _, err := search.Within(g, 0, math.NaN()); err == nil {
		t.Error("NaN budget accepted")
	}
}

func TestWithinRespectsCongestion(t *testing.T) {
	s := gridService(t, 6)
	origin := gridgen.NodeAt(6, 0, 0)
	before, err := s.Reachable(origin, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Congest everything 3×: the same budget reaches far less.
	if _, err := s.ApplyRegionCongestion(graph.Point{X: 2.5, Y: 2.5}, 100, 3); err != nil {
		t.Fatal(err)
	}
	after, err := s.Reachable(origin, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) >= len(before) {
		t.Errorf("congestion did not shrink the isochrone: %d → %d", len(before), len(after))
	}
}

func TestDisplayReachable(t *testing.T) {
	s := gridService(t, 8)
	out, err := s.DisplayReachable(gridgen.NodeAt(8, 4, 4), 2, 40, 20)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"S", "o", "."} {
		if !strings.Contains(out, want) {
			t.Errorf("isochrone display missing %q", want)
		}
	}
	if _, err := s.DisplayReachable(-1, 2, 40, 20); err == nil {
		t.Error("bad origin accepted")
	}
}
