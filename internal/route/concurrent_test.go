package route

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/gridgen"
)

// TestConcurrentQueriesAndTraffic hammers the service with parallel route
// queries (cache hits and misses) interleaved with traffic mutations, under
// the invariant that the writer only ever toggles the network between
// free-flow and everything-doubled. Any served route must therefore cost
// exactly base or 2×base on the same node sequence — a stale cache entry
// (route priced under a generation that no longer matches the costs that
// produced it in a way that breaks the toggle invariant) or a torn read
// would break the assertion, and `go test -race` checks the memory model.
func TestConcurrentQueriesAndTraffic(t *testing.T) {
	const k = 10
	s := NewService(gridgen.MustGenerate(gridgen.Config{K: k, Model: gridgen.Variance, Seed: 42}))

	type pair struct{ from, to graph.NodeID }
	pairs := []pair{
		{0, graph.NodeID(k*k - 1)},
		{graph.NodeID(k - 1), graph.NodeID(k * (k - 1))},
		{0, graph.NodeID(k * (k - 1))},
		{graph.NodeID(k / 2), graph.NodeID(k*k - 1)},
	}
	baseCost := map[pair]float64{}
	for _, p := range pairs {
		r, err := s.Compute(p.from, p.to, core.Options{Algorithm: core.Dijkstra})
		if err != nil || !r.Found {
			t.Fatalf("baseline %v: %v found=%v", p, err, r.Found)
		}
		baseCost[p] = r.Cost
	}

	min, max := s.Graph().Bounds()
	center := graph.Point{X: (min.X + max.X) / 2, Y: (min.Y + max.Y) / 2}

	const (
		readers      = 8
		queriesEach  = 200
		writerRounds = 50
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	fail := make(chan string, 1)
	report := func(msg string) {
		select {
		case fail <- msg:
		default:
		}
	}

	// Single writer toggling free-flow ↔ everything ×2. One writer keeps the
	// network state space to exactly two generations' worth of costs, which
	// is what makes the readers' assertion exact.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		for i := 0; i < writerRounds; i++ {
			if _, err := s.ApplyRegionCongestion(center, 1e9, 2); err != nil {
				report("writer: " + err.Error())
				return
			}
			s.ResetTraffic()
		}
	}()

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < queriesEach; i++ {
				p := pairs[(seed+i)%len(pairs)]
				rt, err := s.Compute(p.from, p.to, core.Options{Algorithm: core.Dijkstra})
				if err != nil {
					report("reader: " + err.Error())
					return
				}
				if !rt.Found {
					report("reader: route vanished")
					return
				}
				want := baseCost[p]
				if rt.Cost != want && rt.Cost != 2*want {
					report("reader: impossible cost (stale cache?)")
					return
				}
			}
		}(r)
	}
	wg.Wait()
	select {
	case msg := <-fail:
		t.Fatal(msg)
	default:
	}

	// After the writer's final ResetTraffic the network is at free flow:
	// every pair must price at exactly base cost, never a stale doubled one.
	<-stop
	for _, p := range pairs {
		rt, err := s.Compute(p.from, p.to, core.Options{Algorithm: core.Dijkstra})
		if err != nil || rt.Cost != baseCost[p] {
			t.Fatalf("final state %v: cost=%v err=%v, want %v", p, rt.Cost, err, baseCost[p])
		}
	}
}

// TestConcurrentBatchAndTraffic exercises ComputeBatch's worker pool while
// traffic mutates underneath it.
func TestConcurrentBatchAndTraffic(t *testing.T) {
	const k = 8
	s := NewService(gridgen.MustGenerate(gridgen.Config{K: k, Model: gridgen.Uniform, Seed: 9}))
	pairs := make([]Pair, 0, 32)
	for i := 0; i < 32; i++ {
		pairs = append(pairs, Pair{From: graph.NodeID(i % (k * k)), To: graph.NodeID((i * 7) % (k * k))})
	}

	min, max := s.Graph().Bounds()
	center := graph.Point{X: (min.X + max.X) / 2, Y: (min.Y + max.Y) / 2}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			if _, err := s.ApplyRegionCongestion(center, 1e9, 1.5); err != nil {
				t.Error(err)
				return
			}
			s.ResetTraffic()
		}
	}()
	for i := 0; i < 10; i++ {
		for _, res := range s.ComputeBatch(pairs, core.Options{}) {
			if res.Err != nil {
				t.Fatal(res.Err)
			}
			if !res.Route.Found {
				t.Fatal("batch route not found")
			}
		}
	}
	wg.Wait()
}
