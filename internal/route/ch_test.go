package route

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/gridgen"
)

// chTestService builds a service over a k×k Variance grid.
func chTestService(t *testing.T, k int, seed int64) (*Service, *graph.Graph) {
	t.Helper()
	g, err := gridgen.Generate(gridgen.Config{K: k, Model: gridgen.Variance, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return NewService(g), g
}

// waitForFreshCH spins until the service's hierarchy matches the live cost
// version (background rebuilds are asynchronous).
func waitForFreshCH(t *testing.T, s *Service, within time.Duration) {
	t.Helper()
	deadline := time.Now().Add(within)
	for {
		if st := s.CHStats(); st.Ready && st.Fresh {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("hierarchy did not become fresh within %v: %+v", within, s.CHStats())
		}
		time.Sleep(time.Millisecond)
	}
}

func TestCHServedFromIndexAfterEnable(t *testing.T) {
	s, g := chTestService(t, 12, 1)
	if err := s.EnableCH(); err != nil {
		t.Fatal(err)
	}
	st := s.CHStats()
	if !st.Ready || !st.Fresh || st.Rebuilds != 1 {
		t.Fatalf("after EnableCH: %+v", st)
	}
	from, to := graph.NodeID(0), graph.NodeID(g.NumNodes()-1)
	rt, err := s.Compute(from, to, core.Options{Algorithm: core.CH})
	if err != nil {
		t.Fatal(err)
	}
	if rt.Algorithm != core.CH {
		t.Fatalf("served by %v, want ch", rt.Algorithm)
	}
	dij, err := s.Compute(from, to, core.Options{Algorithm: core.Dijkstra})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rt.Cost-dij.Cost) > 1e-9*(1+dij.Cost) {
		t.Fatalf("ch cost %v disagrees with dijkstra %v", rt.Cost, dij.Cost)
	}
	if st := s.CHStats(); st.Queries != 1 || st.StaleFallbacks != 0 {
		t.Fatalf("expected one index-served query, got %+v", st)
	}
}

func TestCHColdServiceFallsBackThenConverges(t *testing.T) {
	s, g := chTestService(t, 10, 2)
	from, to := graph.NodeID(0), graph.NodeID(g.NumNodes()-1)
	// No index yet: the request must still succeed (Dijkstra fallback,
	// honestly labeled) and trigger a background build.
	rt, err := s.Compute(from, to, core.Options{Algorithm: core.CH})
	if err != nil {
		t.Fatal(err)
	}
	if rt.Algorithm != core.Dijkstra {
		t.Fatalf("cold CH request served by %v, want dijkstra fallback", rt.Algorithm)
	}
	if st := s.CHStats(); st.StaleFallbacks != 1 {
		t.Fatalf("fallback not counted: %+v", st)
	}
	waitForFreshCH(t, s, 10*time.Second)
	rt2, err := s.Compute(from, to, core.Options{Algorithm: core.CH})
	if err != nil {
		t.Fatal(err)
	}
	if rt2.Algorithm != core.CH {
		t.Fatalf("post-rebuild request served by %v, want ch", rt2.Algorithm)
	}
	if math.Abs(rt.Cost-rt2.Cost) > 1e-9*(1+rt.Cost) {
		t.Fatalf("index cost %v disagrees with fallback cost %v", rt2.Cost, rt.Cost)
	}
}

// TestCHMutationRecustomizesSynchronously is the tentpole guarantee of the
// topology/metric split: a traffic mutation no longer stales the index at
// all. The mutator re-customizes the metric before returning, so the very
// next CH request is index-served with the congested costs — no Dijkstra
// fallback, no waiting for a background rebuild.
func TestCHMutationRecustomizesSynchronously(t *testing.T) {
	s, g := chTestService(t, 10, 3)
	if err := s.EnableCH(); err != nil {
		t.Fatal(err)
	}
	before := s.CHStats()
	if _, err := s.ApplyCongestion(0, 1, 5); err != nil {
		t.Fatal(err)
	}
	st := s.CHStats()
	if !st.Fresh {
		t.Fatalf("index stale after a mutation; customization should run under the mutator's lock: %+v", st)
	}
	if st.Customizations <= before.Customizations {
		t.Fatalf("mutation did not run a customization pass: before %d, after %d",
			before.Customizations, st.Customizations)
	}
	if st.Rebuilds != before.Rebuilds {
		t.Fatalf("mutation triggered a structural rebuild (%d → %d); only the metric should refresh",
			before.Rebuilds, st.Rebuilds)
	}
	from, to := graph.NodeID(0), graph.NodeID(g.NumNodes()-1)
	rt, err := s.Compute(from, to, core.Options{Algorithm: core.CH})
	if err != nil {
		t.Fatal(err)
	}
	if rt.Algorithm != core.CH {
		t.Fatalf("post-mutation request served by %v, want the re-customized index", rt.Algorithm)
	}
	dij, err := s.Compute(from, to, core.Options{Algorithm: core.Dijkstra})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rt.Cost-dij.Cost) > 1e-9*(1+dij.Cost) {
		t.Fatalf("index cost %v disagrees with dijkstra %v under congestion", rt.Cost, dij.Cost)
	}
	if st := s.CHStats(); st.StaleFallbacks != 0 {
		t.Fatalf("mutation opened a stale window: %+v", st)
	}
}

// TestSustainedMutationStreamZeroStaleFallbacks drives a warm service with
// a stream of batched traffic updates interleaved with CH queries: every
// query must be index-served (zero Dijkstra fallbacks) and agree exactly
// with Dijkstra under the same costs — the ISSUE's sustained-stream
// acceptance bar.
func TestSustainedMutationStreamZeroStaleFallbacks(t *testing.T) {
	s, g := chTestService(t, 12, 6)
	if err := s.EnableCH(); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(61))
	edges := g.Edges()
	n := g.NumNodes()
	rounds := 40
	if testing.Short() {
		rounds = 8
	}
	for round := 0; round < rounds; round++ {
		batch := make([]graph.EdgeCostChange, 0, 16)
		for i := 0; i < 16; i++ {
			e := edges[rng.Intn(len(edges))]
			batch = append(batch, graph.EdgeCostChange{
				Tail: e.Tail, Head: e.Head, Cost: e.Cost * (0.5 + 2.5*rng.Float64()),
			})
		}
		if _, err := s.ApplyTrafficBatch(batch); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			from := graph.NodeID(rng.Intn(n))
			to := graph.NodeID(rng.Intn(n))
			rt, err := s.ComputeVia([]graph.NodeID{from, to}, core.Options{Algorithm: core.CH})
			if err != nil {
				t.Fatal(err)
			}
			if rt.Algorithm != core.CH {
				t.Fatalf("round %d: stream query served by %v", round, rt.Algorithm)
			}
			dij, err := s.ComputeVia([]graph.NodeID{from, to}, core.Options{Algorithm: core.Dijkstra})
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(rt.Cost-dij.Cost) > 1e-9*(1+dij.Cost) {
				t.Fatalf("round %d %d→%d: ch %v vs dijkstra %v", round, from, to, rt.Cost, dij.Cost)
			}
		}
	}
	st := s.CHStats()
	if st.StaleFallbacks != 0 {
		t.Fatalf("sustained stream hit %d stale fallbacks, want 0: %+v", st.StaleFallbacks, st)
	}
	if st.Rebuilds != 1 {
		t.Fatalf("sustained stream forced %d structural builds, want the initial 1", st.Rebuilds)
	}
	if st.Customizations < uint64(rounds) {
		t.Fatalf("customizations %d < %d mutation rounds", st.Customizations, rounds)
	}
}

// TestCHNeverDisagreesUnderConcurrentMutation is the -race guarantee of the
// version gate: query workers hammer algo=ch while a mutator applies and
// resets congestion. Every CH answer — index-served or fallback — must match
// a Dijkstra computed through the same Compute path (same lock scope), so a
// stale hierarchy can never leak a cost from retired edge weights.
func TestCHNeverDisagreesUnderConcurrentMutation(t *testing.T) {
	s, g := chTestService(t, 9, 4)
	if err := s.EnableCH(); err != nil {
		t.Fatal(err)
	}
	n := g.NumNodes()
	stop := make(chan struct{})
	var mutWg, wg sync.WaitGroup

	mutWg.Add(1)
	go func() { // mutator; runs until stop closes, after the workers finish
		defer mutWg.Done()
		rng := rand.New(rand.NewSource(99))
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if i%4 == 3 {
				s.ResetTraffic()
			} else {
				e := g.Edges()[rng.Intn(g.NumEdges())]
				if _, err := s.ApplyCongestion(e.Tail, e.Head, 1+rng.Float64()); err != nil {
					t.Errorf("ApplyCongestion: %v", err)
					return
				}
			}
			time.Sleep(time.Millisecond)
		}
	}()

	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 60; i++ {
				from := graph.NodeID(rng.Intn(n))
				to := graph.NodeID(rng.Intn(n))
				genBefore := s.CostGeneration()
				chRt, err := s.ComputeVia([]graph.NodeID{from, to}, core.Options{Algorithm: core.CH})
				if err != nil {
					t.Errorf("ch %d→%d: %v", from, to, err)
					return
				}
				dij, err := s.ComputeVia([]graph.NodeID{from, to}, core.Options{Algorithm: core.Dijkstra})
				if err != nil {
					t.Errorf("dijkstra %d→%d: %v", from, to, err)
					return
				}
				// The two computations may straddle a mutation; the costs
				// are only comparable when the generation held still across
				// both. (ComputeVia bypasses the route cache, so neither
				// answer can come from a previous generation's entry.)
				if s.CostGeneration() == genBefore && math.Abs(chRt.Cost-dij.Cost) > 1e-9*(1+dij.Cost) {
					t.Errorf("%d→%d: ch cost %v, dijkstra %v", from, to, chRt.Cost, dij.Cost)
					return
				}
			}
		}(int64(w + 1))
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("concurrent CH stress did not finish in 60s")
	}
	close(stop)
	mutWg.Wait()
}

// TestCHVersionedAgreementAfterEachMutation alternates mutation and strict
// agreement: after every congestion step it waits for the rebuild, then
// requires the index-served cost to equal Dijkstra's exactly.
func TestCHVersionedAgreementAfterEachMutation(t *testing.T) {
	s, g := chTestService(t, 8, 5)
	if err := s.EnableCH(); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	n := g.NumNodes()
	for round := 0; round < 5; round++ {
		e := g.Edges()[rng.Intn(g.NumEdges())]
		if _, err := s.ApplyCongestion(e.Tail, e.Head, 1.5+rng.Float64()); err != nil {
			t.Fatal(err)
		}
		// Fire a CH request to trigger the background rebuild, then wait.
		if _, err := s.Compute(0, graph.NodeID(n-1), core.Options{Algorithm: core.CH}); err != nil {
			t.Fatal(err)
		}
		waitForFreshCH(t, s, 10*time.Second)
		for i := 0; i < 10; i++ {
			from := graph.NodeID(rng.Intn(n))
			to := graph.NodeID(rng.Intn(n))
			chRt, err := s.Compute(from, to, core.Options{Algorithm: core.CH})
			if err != nil {
				t.Fatal(err)
			}
			if chRt.Algorithm != core.CH {
				t.Fatalf("round %d: fresh index not serving (%v)", round, chRt.Algorithm)
			}
			dij, err := s.Compute(from, to, core.Options{Algorithm: core.Dijkstra})
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(chRt.Cost-dij.Cost) > 1e-9*(1+dij.Cost) {
				t.Fatalf("round %d %d→%d: ch %v vs dijkstra %v", round, from, to, chRt.Cost, dij.Cost)
			}
		}
	}
}
