package route

import (
	"container/list"
	"math"
	"sync"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/search"
	"repro/internal/telemetry"
)

// cacheKey identifies one cached route computation. The cost generation is
// part of the key: every traffic mutation bumps the Service's generation
// counter, so entries computed under old costs simply stop matching — O(1)
// implicit invalidation with no scan, no per-entry timestamps, and no risk
// of serving a route priced under stale traffic. Superseded entries age out
// of the LRU naturally.
type cacheKey struct {
	from, to graph.NodeID
	algo     core.Algorithm
	weight   float64
	frontier search.FrontierKind
	gen      uint64
}

// hash mixes the key fields (fnv-style multiply-xor) to pick a shard.
func (k cacheKey) hash() uint64 {
	h := uint64(14695981039346656037)
	mix := func(v uint64) {
		h ^= v
		h *= 1099511628211
	}
	mix(uint64(uint32(k.from)))
	mix(uint64(uint32(k.to)))
	mix(uint64(k.algo))
	mix(math.Float64bits(k.weight))
	mix(uint64(k.frontier))
	mix(k.gen)
	return h
}

// cacheEntry is one resident route. Entries are immutable once linked
// into a shard: an update replaces the element's entry wholesale rather
// than editing the resident route, so a concurrent get cloning the old
// entry never observes a half-written value.
//
//atis:immutable
type cacheEntry struct {
	key   cacheKey
	route core.Route
}

// cacheShard is an independently locked LRU segment; sharding keeps lock
// hold times short so parallel readers rarely contend on the same shard.
type cacheShard struct {
	mu    sync.Mutex
	table map[cacheKey]*list.Element
	order *list.List // front = most recently used
	cap   int
}

// routeCache is the sharded LRU behind Service.Compute.
type routeCache struct {
	shards [cacheShardCount]cacheShard
	// evictions, when set, counts LRU evictions for the telemetry layer.
	evictions *telemetry.Counter
}

const (
	cacheShardCount = 16
	// defaultCacheCapacity bounds total resident routes across all shards.
	defaultCacheCapacity = 4096
)

func newRouteCache(capacity int) *routeCache {
	if capacity < cacheShardCount {
		capacity = cacheShardCount
	}
	c := &routeCache{}
	per := capacity / cacheShardCount
	for i := range c.shards {
		c.shards[i].table = make(map[cacheKey]*list.Element)
		c.shards[i].order = list.New()
		c.shards[i].cap = per
	}
	return c
}

func (c *routeCache) shard(k cacheKey) *cacheShard {
	return &c.shards[k.hash()%cacheShardCount]
}

// get returns a private copy of the cached route for k, if resident.
func (c *routeCache) get(k cacheKey) (core.Route, bool) {
	s := c.shard(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.table[k]
	if !ok {
		return core.Route{}, false
	}
	s.order.MoveToFront(el)
	return cloneRoute(el.Value.(*cacheEntry).route), true
}

// put stores a private copy of rt under k, evicting the shard's least
// recently used entry when full.
func (c *routeCache) put(k cacheKey, rt core.Route) {
	s := c.shard(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.table[k]; ok {
		el.Value = &cacheEntry{key: k, route: cloneRoute(rt)}
		s.order.MoveToFront(el)
		return
	}
	for s.order.Len() >= s.cap {
		oldest := s.order.Back()
		s.order.Remove(oldest)
		delete(s.table, oldest.Value.(*cacheEntry).key)
		if c.evictions != nil {
			c.evictions.Inc()
		}
	}
	s.table[k] = s.order.PushFront(&cacheEntry{key: k, route: cloneRoute(rt)})
}

// len reports total resident entries (tests and stats).
func (c *routeCache) len() int {
	n := 0
	for i := range c.shards {
		c.shards[i].mu.Lock()
		n += c.shards[i].order.Len()
		c.shards[i].mu.Unlock()
	}
	return n
}

// cloneRoute deep-copies the route's path so cache residents and caller
// results never alias each other's node slices.
func cloneRoute(rt core.Route) core.Route {
	if rt.Path.Nodes != nil {
		rt.Path.Nodes = append([]graph.NodeID(nil), rt.Path.Nodes...)
	}
	return rt
}
