// Package route provides the three ATIS facilities of the paper's
// introduction (Section 1.1) on top of the core planner:
//
//   - route computation — "locate a connected sequence of road segments
//     from current location to destination",
//   - route evaluation — "find the attributes of a given route between two
//     points … travel time and traffic congestion information",
//   - route display — "effectively communicate the optimal route to the
//     traveller".
//
// It also models the real-time traffic feed the paper motivates ("an
// effective navigation system with static route selection, coupled with
// real-time traffic information"): congestion updates build a fresh
// immutable Snapshot off to the side and publish it atomically, and
// recomputation picks up the new costs through the next snapshot load.
//
// The package's concurrency surface splits into two interfaces: Querier
// (the read path — lock-free, served entirely from one Snapshot load)
// and Mutator (the write path — serialized, clone-apply-publish).
// Service implements both and is safe for concurrent use.
package route

import (
	"context"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/asciichart"
	"repro/internal/ch"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/search"
	"repro/internal/telemetry"
	"repro/internal/tracing"
)

// Service owns the mutable world of a road network — traffic ingestion,
// CH customization, cache invalidation — and serves the three ATIS
// facilities from immutable snapshots of it.
//
// Concurrency discipline: there is no readers–writer lock. The service
// publishes its entire read state as one *Snapshot behind an atomic
// pointer; every query path (Compute, Evaluate, Display, Alternates,
// Nearest, Reachable, Directions, batch, …) loads the pointer once and
// runs to completion against that frozen view, so arbitrarily many
// queries proceed with zero coordination — no query ever blocks behind a
// mutator, however long the mutator's customization pass runs. The
// traffic mutators (ApplyCongestion, ApplyRegionCongestion,
// ApplyTrafficBatch, ResetTraffic) and the CH publishers (EnableCH, the
// background rebuild) serialize on writeMu, clone the current graph,
// apply their changes to the clone, re-customize the hierarchy's metric
// for the new costs, and swap the finished Snapshot in. The route cache
// is keyed on (endpoints, options, snapshot cost generation) and has its
// own per-shard locks; a publish retires every stale entry at once by
// changing the generation new requests key on.
type Service struct {
	base *graph.Graph // pristine costs, for congestion ratios and reset

	// snap is the published read view; see Snapshot. writeMu serializes
	// everyone who publishes a successor (traffic mutators, EnableCH, the
	// background CH rebuild). Readers never touch writeMu.
	snap    atomic.Pointer[Snapshot]
	writeMu sync.Mutex

	cache *routeCache

	// chTopo holds the metric-independent contraction topology
	// (contraction order, shortcut skeleton, triangle lists) — built once
	// off-lock, valid until the graph's structure changes, which the
	// graph model never does after construction. The customized metric
	// itself lives inside each Snapshot. chMu + chBuilding singleflight
	// the cold-start background build — the one case that still pays a
	// full contraction.
	chMu       sync.Mutex
	chBuilding bool
	chTopo     atomic.Pointer[ch.Topology]

	// chStaleSince is the UnixNano timestamp at which the current
	// stale-serving window opened (first fallback after a CH request
	// found no index); 0 while the published snapshot carries an index.
	// chLastStaleNanos holds the duration of the most recently closed
	// window.
	chStaleSince     atomic.Int64
	chLastStaleNanos atomic.Int64

	// Telemetry. The registry is the single source of truth for every
	// service counter: CacheStats and the legacy /stats payload read the
	// same instruments /metrics exports, so the two cannot disagree.
	reg            *telemetry.Registry
	cacheHits      *telemetry.Counter
	cacheMiss      *telemetry.Counter
	computeSeconds map[core.Algorithm]*telemetry.Histogram
	batchRequests  *telemetry.Counter
	batchPairs     *telemetry.Counter
	trafficUpdates *telemetry.Counter

	chQuerySeconds     *telemetry.Histogram
	chRebuildSeconds   *telemetry.Histogram
	chCustomizeSeconds *telemetry.Histogram
	chSettled          *telemetry.Counter
	chQueries          *telemetry.Counter
	chStaleFallbacks   *telemetry.Counter
	chRebuilds         *telemetry.Counter
	chCustomizations   *telemetry.Counter
	trafficBatches     *telemetry.Counter

	// tracer, when set, gives background work (the singleflight CH
	// rebuild) its own traces; request-path spans ride the caller's
	// context and need no tracer here. A nil pointer is a disabled
	// tracer — every tracing call below is nil-safe.
	tracer atomic.Pointer[tracing.Tracer]
}

// NewService snapshots g (deep copies) so traffic updates never touch the
// caller's graph. The service records its metrics into a private registry;
// use NewServiceWithRegistry to share one.
func NewService(g *graph.Graph) *Service {
	return NewServiceWithRegistry(g, telemetry.NewRegistry())
}

// NewServiceWithRegistry is NewService recording into reg.
func NewServiceWithRegistry(g *graph.Graph, reg *telemetry.Registry) *Service {
	s := &Service{
		base:  g.Clone(),
		cache: newRouteCache(defaultCacheCapacity),

		reg: reg,
		cacheHits: reg.Counter("atis_route_cache_requests_total",
			"Route computations by cache outcome.", telemetry.L("result", "hit")),
		cacheMiss: reg.Counter("atis_route_cache_requests_total",
			"Route computations by cache outcome.", telemetry.L("result", "miss")),
		computeSeconds: make(map[core.Algorithm]*telemetry.Histogram),
		batchRequests: reg.Counter("atis_route_batch_requests_total",
			"ComputeBatch invocations."),
		batchPairs: reg.Counter("atis_route_batch_pairs_total",
			"Origin-destination pairs fanned out by ComputeBatch."),
		trafficUpdates: reg.Counter("atis_traffic_updates_total",
			"Traffic mutations applied (congestion, region congestion, reset)."),

		chQuerySeconds: reg.Histogram("atis_ch_query_seconds",
			"Wall time of queries served by the contraction hierarchy.", nil),
		chRebuildSeconds: reg.Histogram("atis_ch_rebuild_seconds",
			"Wall time of contraction-hierarchy (re)builds.", nil),
		chSettled: reg.Counter("atis_ch_settled_nodes_total",
			"Nodes settled across all CH queries (both directions)."),
		chQueries: reg.Counter("atis_ch_queries_total",
			"Queries served by the contraction hierarchy."),
		chStaleFallbacks: reg.Counter("atis_ch_stale_fallbacks_total",
			"CH requests served by Dijkstra because the index was absent or stale."),
		chRebuilds: reg.Counter("atis_ch_rebuilds_total",
			"Structural topology builds completed (cold start or structural change)."),
		chCustomizeSeconds: reg.Histogram("atis_ch_customize_seconds",
			"Wall time of metric customization passes over the CH topology.", nil),
		chCustomizations: reg.Counter("atis_ch_customizations_total",
			"Metric customizations completed (cost-only updates, no re-contraction)."),
		trafficBatches: reg.Counter("atis_traffic_batches_total",
			"Batched traffic updates applied through ApplyTrafficBatch."),
	}
	// The first snapshot is published before the service escapes the
	// constructor, so Snapshot() never returns nil and the gauges below
	// can read through it unconditionally.
	s.snap.Store(newSnapshot(g.Clone(), nil, 0, 1))
	s.cache.evictions = reg.Counter("atis_route_cache_evictions_total",
		"Routes evicted from the LRU cache.")
	for _, a := range core.Algorithms() {
		s.computeSeconds[a] = reg.Histogram("atis_route_compute_seconds",
			"Wall time of uncached route computations.", nil, telemetry.L("algo", a.String()))
	}
	reg.GaugeFunc("atis_route_cache_entries",
		"Routes resident in the cache.", func() float64 { return float64(s.cache.len()) })
	reg.GaugeFunc("atis_traffic_generation",
		"Current cost generation (bumps on every traffic mutation).",
		func() float64 { return float64(s.CostGeneration()) })
	reg.GaugeFunc("atis_snapshot_generation",
		"Publish sequence of the current snapshot (bumps on every swap).",
		func() float64 { return float64(s.snap.Load().seq) })
	reg.GaugeFunc("atis_ch_shortcuts",
		"Shortcut arcs in the current contraction hierarchy (0 until built).",
		func() float64 {
			if ix := s.snap.Load().ch; ix != nil {
				return float64(ix.Shortcuts())
			}
			return 0
		})
	reg.GaugeFunc("atis_ch_stale_window_seconds",
		"Seconds the current stale-serving window has been open (0 while the hierarchy serves).",
		func() float64 {
			if since := s.chStaleSince.Load(); since != 0 {
				return time.Since(time.Unix(0, since)).Seconds()
			}
			return 0
		})
	reg.GaugeFunc("atis_ch_last_stale_window_seconds",
		"Duration of the most recently closed stale-serving window.",
		func() float64 { return time.Duration(s.chLastStaleNanos.Load()).Seconds() })
	return s
}

// Registry returns the registry holding the service's metrics.
func (s *Service) Registry() *telemetry.Registry { return s.reg }

// SetTracer attaches a tracer so the service's background work (the
// singleflight CH rebuild) produces traces of its own. Request-path
// spans need no tracer here — they attach to the span already in the
// caller's context.
func (s *Service) SetTracer(t *tracing.Tracer) { s.tracer.Store(t) }

// CostGeneration returns the published snapshot's cost generation. It
// starts at zero and increases by one on every traffic mutation; two equal
// generations imply identical edge costs.
//
//atis:hotpath
func (s *Service) CostGeneration() uint64 {
	return s.snap.Load().gen
}

// CacheStats reports route-cache hits, misses, and resident entries since
// the service was created. The values are read from the same telemetry
// instruments /metrics exports; nothing here can block behind a writer.
func (s *Service) CacheStats() (hits, misses uint64, entries int) {
	return s.cacheHits.Value(), s.cacheMiss.Value(), s.cache.len()
}

// Graph returns the published snapshot's graph. Callers must treat it as
// read-only; use the traffic methods to change costs. Prefer Snapshot for
// multi-step reads that must see one consistent world.
func (s *Service) Graph() *graph.Graph {
	return s.snap.Load().graph
}

// Compute runs route computation between nodes, consulting the
// generation-keyed cache first: repeated queries for the same endpoints and
// options under unchanged traffic are served from memory without touching
// the search engine. A traffic mutation bumps the cost generation, which
// implicitly invalidates every cached route at once.
func (s *Service) Compute(from, to graph.NodeID, opts core.Options) (core.Route, error) {
	return s.ComputeCtx(context.Background(), from, to, opts)
}

// ComputeCtx is Compute under a request lifecycle: the underlying kernel
// polls ctx from its main loop and the call returns a typed lifecycle
// error (search.ErrCanceled, search.ErrDeadline, search.ErrBudget) as
// soon as the context dies or the expansion budget (search.WithBudget)
// runs out. Cache hits are served regardless of the context's state —
// the answer is already in hand. Lifecycle-aborted computations are
// never cached.
func (s *Service) ComputeCtx(ctx context.Context, from, to graph.NodeID, opts core.Options) (core.Route, error) {
	return s.computeSnap(ctx, s.snap.Load(), from, to, opts)
}

// computeSnap is ComputeCtx pinned to one already-loaded snapshot — the
// shared entry for single requests and batch workers, which load the
// snapshot once and serve every pair from the same world.
func (s *Service) computeSnap(ctx context.Context, snap *Snapshot, from, to graph.NodeID, opts core.Options) (core.Route, error) {
	key := cacheKey{
		from: from, to: to,
		algo: opts.Algorithm, weight: opts.Weight, frontier: opts.Frontier,
		gen: snap.gen,
	}
	if rt, ok := s.cacheLookup(ctx, key); ok {
		s.cacheHits.Inc()
		return rt, nil
	}
	start := time.Now()
	rt, err := s.routeSnap(ctx, snap, from, to, opts)
	s.cacheMiss.Inc()
	if err != nil {
		return rt, err
	}
	if h, ok := s.computeSeconds[opts.Algorithm]; ok {
		h.Observe(time.Since(start).Seconds())
	}
	// Stored under the snapshot's generation: if a mutation published
	// meanwhile, the entry sits under the old generation and will never be
	// served. Stored under the algorithm that actually served it: a CH
	// request answered by the Dijkstra fallback is cached as a Dijkstra
	// route, so once the warmed hierarchy publishes, the next CH request
	// reaches the index instead of replaying the fallback.
	key.algo = rt.Algorithm
	s.cache.put(key, rt)
	return rt, nil
}

// cacheLookup consults the route cache, recording the outcome as a
// "route.cache" span when a trace is active — a cache hit explains an
// anomalously fast request exactly as a miss explains a slow one.
func (s *Service) cacheLookup(ctx context.Context, key cacheKey) (core.Route, bool) {
	_, sp := tracing.Start(ctx, "route.cache")
	defer sp.End()
	rt, ok := s.cache.get(key)
	sp.SetBool("hit", ok)
	return rt, ok
}

// routeSnap computes one route against snap, dispatching CH requests to
// the snapshot's index. The index, when present, was customized for the
// snapshot's exact costs when the snapshot was built — no freshness check
// is needed or possible to fail. A snapshot without an index (cold start)
// falls back to Dijkstra — the result is labeled with the algorithm that
// actually ran — and triggers the background build.
func (s *Service) routeSnap(ctx context.Context, snap *Snapshot, from, to graph.NodeID, opts core.Options) (core.Route, error) {
	if opts.Algorithm != core.CH {
		return snap.planner.RouteCtx(ctx, from, to, opts)
	}
	if ix := snap.ch; ix != nil {
		return s.chQuery(ctx, ix, from, to)
	}
	s.chStaleFallbacks.Inc()
	s.chStaleSince.CompareAndSwap(0, time.Now().UnixNano())
	s.scheduleCHRebuild()
	// A trace of a fallback-served request must say so: the traveller
	// asked for CH and got a Dijkstra answer with Dijkstra's latency.
	tracing.FromContext(ctx).SetBool("ch.staleFallback", true)
	fb := opts
	fb.Algorithm = core.Dijkstra
	return snap.planner.RouteCtx(ctx, from, to, fb)
}

// chQuery serves one request from a snapshot's hierarchy index, wrapping
// the query in a "kernel" span (the CH counterpart of the planner's)
// under which the index nests its search and unpack phases.
func (s *Service) chQuery(ctx context.Context, ix *ch.Index, from, to graph.NodeID) (core.Route, error) {
	ctx, sp := tracing.Start(ctx, "kernel")
	defer sp.End()
	sp.SetStr("algo", "ch")
	start := time.Now()
	res, err := ix.QueryCtx(ctx, from, to)
	if err != nil {
		return core.Route{}, search.FromContextErr(err)
	}
	s.chQuerySeconds.Observe(time.Since(start).Seconds())
	s.chQueries.Inc()
	s.chSettled.Add(uint64(res.Settled))
	sp.SetBool("found", res.Found)
	sp.SetInt("iterations", int64(res.Settled))
	sp.SetInt("expansions", int64(res.Settled))
	return core.Route{
		Found:     res.Found,
		Path:      res.Path,
		Cost:      res.Cost,
		Algorithm: core.CH,
		Trace: search.Trace{
			Iterations:  res.Settled,
			Expansions:  res.Settled,
			Relaxations: res.Relaxed,
		},
	}, nil
}

// ComputeDegraded answers a route request without running a search — the
// load-shedding escape hatch the admission layer uses when the server is
// saturated. It consults, in order: the route cache under the snapshot's
// cost generation (exact key only, no search, and no hit/miss counter
// bumps — degraded answers must not skew cache telemetry), then the
// snapshot's contraction-hierarchy index, whose per-query work is
// near-constant and far below any kernel's. It reports ok=false when
// neither source can answer — the caller sheds the request for real.
func (s *Service) ComputeDegraded(from, to graph.NodeID, opts core.Options) (core.Route, bool) {
	snap := s.snap.Load()
	key := cacheKey{
		from: from, to: to,
		algo: opts.Algorithm, weight: opts.Weight, frontier: opts.Frontier,
		gen: snap.gen,
	}
	if rt, ok := s.cache.get(key); ok {
		return rt, true
	}
	ix := snap.ch
	if ix == nil {
		return core.Route{}, false
	}
	start := time.Now()
	res, err := ix.Query(from, to)
	if err != nil {
		return core.Route{}, false
	}
	s.chQuerySeconds.Observe(time.Since(start).Seconds())
	s.chQueries.Inc()
	s.chSettled.Add(uint64(res.Settled))
	return core.Route{
		Found:     res.Found,
		Path:      res.Path,
		Cost:      res.Cost,
		Algorithm: core.CH,
		Trace: search.Trace{
			Iterations:  res.Settled,
			Expansions:  res.Settled,
			Relaxations: res.Relaxed,
		},
	}, true
}

// scheduleCHRebuild starts a background hierarchy build unless one is
// already running (singleflight). Safe to call from query paths: the
// builder goroutine does all heavy work against immutable snapshots and
// only takes writeMu for the final publish.
func (s *Service) scheduleCHRebuild() {
	s.chMu.Lock()
	if s.chBuilding {
		s.chMu.Unlock()
		return
	}
	s.chBuilding = true
	s.chMu.Unlock()
	go s.rebuildCH()
}

// rebuildCH readies a hierarchy for the published snapshot's graph — the
// structural contraction runs entirely off-lock against the immutable
// snapshot, so queries and traffic mutations proceed unhindered — then
// publishes a successor snapshot carrying the customized index. If a
// mutation published meanwhile, the final customization under writeMu
// re-prices for whatever graph is current then; the index in a published
// snapshot always matches that snapshot's costs by construction.
func (s *Service) rebuildCH() {
	defer func() {
		s.chMu.Lock()
		s.chBuilding = false
		s.chMu.Unlock()
	}()
	// Background rebuilds get their own trace (always captured when the
	// tracer is enabled): a rebuild is rare, structural, and exactly what
	// an operator staring at a stale-fallback spike wants to see timed.
	tracer := s.tracer.Load()
	ctx, tr := tracer.StartBackground("ch.rebuild")
	defer tracer.Finish(tr)
	if _, err := s.ensureTopology(ctx, s.snap.Load().graph); err != nil {
		return // only possible on an empty graph, which has nothing to serve
	}
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	cur := s.snap.Load()
	if cur.ch != nil {
		return // a mutator's synchronous customization published first
	}
	ix := s.customizeFor(ctx, cur.graph)
	if ix == nil {
		return
	}
	s.installLocked(newSnapshot(cur.graph, ix, cur.gen, cur.seq+1))
}

// ensureTopology returns a topology matching g's structure, building one
// — the expensive, cold-start-only structural contraction — if none is
// cached. Callers must not hold writeMu: the build is seconds of work at
// scale, and g is immutable, so no lock is needed to read it.
func (s *Service) ensureTopology(ctx context.Context, g *graph.Graph) (*ch.Topology, error) {
	if topo := s.chTopo.Load(); topo != nil && topo.Matches(g) {
		return topo, nil
	}
	t, err := s.buildTopology(ctx, g)
	if err != nil {
		return nil, err
	}
	s.chTopo.Store(t)
	return t, nil
}

// buildTopology runs the structural contraction — the expensive,
// cold-start-only phase — as a "ch.topology" span.
func (s *Service) buildTopology(ctx context.Context, g *graph.Graph) (*ch.Topology, error) {
	_, sp := tracing.Start(ctx, "ch.topology")
	defer sp.End()
	start := time.Now()
	t, err := ch.BuildTopology(g, ch.Options{})
	if err != nil {
		return nil, err
	}
	s.chRebuildSeconds.Observe(time.Since(start).Seconds())
	s.chRebuilds.Inc()
	return t, nil
}

// customizeTopo re-prices topo's shortcuts for g's current costs — the
// millisecond "ch.customize" phase that runs inside every traffic
// mutator and at the tail of every rebuild.
func (s *Service) customizeTopo(ctx context.Context, topo *ch.Topology, g *graph.Graph) (*ch.Index, error) {
	_, sp := tracing.Start(ctx, "ch.customize")
	defer sp.End()
	start := time.Now()
	ix, err := topo.NewIndex(g)
	if err != nil {
		return nil, err
	}
	s.chCustomizeSeconds.Observe(time.Since(start).Seconds())
	s.chCustomizations.Inc()
	sp.SetInt("shortcuts", int64(ix.Shortcuts()))
	return ix, nil
}

// EnableCH readies the contraction hierarchy synchronously so the first
// algo=ch query is served by the index instead of falling back while a
// background build warms up. Servers call it once at startup; it is not
// required — the first CH query triggers a build on its own. After the
// topology exists, every traffic mutation re-customizes as part of its
// publish, so calling EnableCH again is cheap (one customization pass)
// and only useful to force-publish a fresh snapshot outside the mutator
// paths.
func (s *Service) EnableCH() error {
	ctx := context.Background()
	if _, err := s.ensureTopology(ctx, s.snap.Load().graph); err != nil {
		return fmt.Errorf("route: building contraction hierarchy: %w", err)
	}
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	// Customize for whatever graph is current *now*: a mutation may have
	// published between the off-lock build and taking writeMu. Structure
	// never changes, so the topology still matches.
	cur := s.snap.Load()
	ix, err := s.customizeTopo(ctx, s.chTopo.Load(), cur.graph)
	if err != nil {
		return fmt.Errorf("route: customizing contraction hierarchy: %w", err)
	}
	s.installLocked(newSnapshot(cur.graph, ix, cur.gen, cur.seq+1))
	return nil
}

// CHStats describes the contraction hierarchy's serving state.
type CHStats struct {
	// Ready reports whether the published snapshot carries an index.
	Ready bool `json:"ready"`
	// Fresh reports whether the index matches the snapshot's cost
	// version. Under snapshot publication this is Ready by construction —
	// an index is customized for its snapshot's exact costs before the
	// swap — and the field remains for API compatibility.
	Fresh bool `json:"fresh"`
	// Shortcuts is the shortcut-arc count of the current index.
	Shortcuts int `json:"shortcuts"`
	// Queries counts requests served by the hierarchy itself.
	Queries uint64 `json:"queries"`
	// StaleFallbacks counts CH requests served by Dijkstra instead.
	StaleFallbacks uint64 `json:"staleFallbacks"`
	// Rebuilds counts completed structural topology builds (cold start or
	// structural change) — not metric refreshes.
	Rebuilds uint64 `json:"rebuilds"`
	// Customizations counts completed metric customizations: the
	// millisecond passes that keep the index fresh across cost mutations.
	Customizations uint64 `json:"customizations"`
	// StaleWindowSeconds is how long the current stale-serving window has
	// been open; 0 while CH requests are served by the index.
	StaleWindowSeconds float64 `json:"staleWindowSeconds"`
	// LastStaleWindowSeconds is the duration of the most recently closed
	// stale-serving window (the cold-start build, in a healthy service).
	LastStaleWindowSeconds float64 `json:"lastStaleWindowSeconds"`
}

// CHStats reports the hierarchy's serving state, read from the published
// snapshot and the same instruments /metrics exports. It takes no lock,
// so a stats scrape can never block behind a writer.
func (s *Service) CHStats() CHStats {
	st := CHStats{
		Queries:                s.chQueries.Value(),
		StaleFallbacks:         s.chStaleFallbacks.Value(),
		Rebuilds:               s.chRebuilds.Value(),
		Customizations:         s.chCustomizations.Value(),
		LastStaleWindowSeconds: time.Duration(s.chLastStaleNanos.Load()).Seconds(),
	}
	if since := s.chStaleSince.Load(); since != 0 {
		st.StaleWindowSeconds = time.Since(time.Unix(0, since)).Seconds()
	}
	ix := s.snap.Load().ch
	if ix == nil {
		return st
	}
	st.Ready = true
	st.Fresh = true // snapshot invariant: the index matches its graph's costs
	st.Shortcuts = ix.Shortcuts()
	return st
}

// ComputeByName runs route computation between named landmarks. Name
// resolution uses the immutable graph structure, so the call shares
// Compute's cache.
func (s *Service) ComputeByName(from, to string, opts core.Options) (core.Route, error) {
	snap := s.snap.Load()
	f, ok := snap.graph.Lookup(from)
	if !ok {
		return core.Route{}, fmt.Errorf("route: unknown landmark %q", from)
	}
	t, ok := snap.graph.Lookup(to)
	if !ok {
		return core.Route{}, fmt.Errorf("route: unknown landmark %q", to)
	}
	return s.computeSnap(context.Background(), snap, f, t, opts)
}

// ComputeVia plans a route that visits every stop in order — the errand run
// (home → school → work) an ATIS serves routinely. The result is the
// concatenation of the per-leg routes: its cost is the sum of the leg costs
// and its trace accumulates the legs' work. Found is false when any leg is
// unreachable.
func (s *Service) ComputeVia(stops []graph.NodeID, opts core.Options) (core.Route, error) {
	return s.ComputeViaCtx(context.Background(), stops, opts)
}

// ComputeViaCtx is ComputeVia under a request lifecycle: each leg's
// kernel polls ctx, so a multi-stop plan stops between (or within) legs
// with a typed lifecycle error as soon as the context dies. All legs are
// computed against one snapshot, so a traffic mutation mid-plan cannot
// price different legs under different costs.
func (s *Service) ComputeViaCtx(ctx context.Context, stops []graph.NodeID, opts core.Options) (core.Route, error) {
	if len(stops) < 2 {
		return core.Route{}, fmt.Errorf("route: ComputeVia needs at least 2 stops, got %d", len(stops))
	}
	snap := s.snap.Load()
	combined := core.Route{
		Found:     true,
		Algorithm: opts.Algorithm,
		Path:      graph.Path{Nodes: []graph.NodeID{stops[0]}},
	}
	for i := 0; i+1 < len(stops); i++ {
		leg, err := s.routeSnap(ctx, snap, stops[i], stops[i+1], opts)
		if err != nil {
			return core.Route{}, fmt.Errorf("route: leg %d (%d→%d): %w", i, stops[i], stops[i+1], err)
		}
		if !leg.Found {
			return core.Route{Found: false, Algorithm: opts.Algorithm, Cost: math.Inf(1)}, nil
		}
		combined.Cost += leg.Cost
		combined.Path.Nodes = append(combined.Path.Nodes, leg.Path.Nodes[1:]...)
		combined.Trace.Iterations += leg.Trace.Iterations
		combined.Trace.Expansions += leg.Trace.Expansions
		combined.Trace.Relaxations += leg.Trace.Relaxations
		combined.Trace.Improvements += leg.Trace.Improvements
		combined.Trace.Reopens += leg.Trace.Reopens
		if leg.Trace.MaxFrontier > combined.Trace.MaxFrontier {
			combined.Trace.MaxFrontier = leg.Trace.MaxFrontier
		}
	}
	return combined, nil
}

// Evaluation is the attribute set of a given route (the paper's route
// evaluation: "useful for selecting travel time by a familiar path").
type Evaluation struct {
	// Valid reports whether the node sequence is a path of the network.
	Valid bool
	// Hops is the number of road segments.
	Hops int
	// Distance is the geometric length (sum of straight-line segment
	// lengths).
	Distance float64
	// BaseCost is the route's cost under free-flow (pristine) edge costs.
	BaseCost float64
	// CurrentCost is the route's cost under live (congested) edge costs —
	// the travel-time attribute.
	CurrentCost float64
	// CongestionRatio is CurrentCost / BaseCost (1 = free flow).
	CongestionRatio float64
	// CongestedHops counts segments whose live cost exceeds base cost.
	CongestedHops int
}

// Evaluate computes the attributes of path under the published snapshot's
// costs. base is read-only after construction, so comparing it with the
// snapshot needs no coordination.
func (s *Service) Evaluate(path graph.Path) (Evaluation, error) {
	cur := s.snap.Load().graph
	ev := Evaluation{Hops: path.Len()}
	if !path.ValidIn(cur) {
		return ev, fmt.Errorf("route: not a path of the network: %s", path)
	}
	ev.Valid = true
	for i := 0; i+1 < len(path.Nodes); i++ {
		u, v := path.Nodes[i], path.Nodes[i+1]
		ev.Distance += cur.Point(u).EuclideanDistance(cur.Point(v))
		curCost, _ := cur.ArcCost(u, v)
		baseCost, _ := s.base.ArcCost(u, v)
		ev.CurrentCost += curCost
		ev.BaseCost += baseCost
		if curCost > baseCost {
			ev.CongestedHops++
		}
	}
	if ev.BaseCost > 0 {
		ev.CongestionRatio = ev.CurrentCost / ev.BaseCost
	} else {
		ev.CongestionRatio = 1
	}
	return ev, nil
}

// Display renders the network with the route overlaid: road nodes as dots,
// route nodes as 'o', endpoints as 'S' and 'D', landmarks by their names.
func (s *Service) Display(path graph.Path, width, height int) string {
	g := s.snap.Load().graph
	var pts []asciichart.Point
	for u := graph.NodeID(0); int(u) < g.NumNodes(); u++ {
		if g.OutDegree(u) == 0 {
			continue // isolated (lake) nodes are water, not roads
		}
		p := g.Point(u)
		pts = append(pts, asciichart.Point{X: p.X, Y: p.Y, Glyph: '.'})
	}
	for name, u := range g.NamedNodes() {
		p := g.Point(u)
		pts = append(pts, asciichart.Point{X: p.X, Y: p.Y, Glyph: name[0]})
	}
	for i, u := range path.Nodes {
		p := g.Point(u)
		glyph := byte('o')
		if i == 0 {
			glyph = 'S'
		} else if i == len(path.Nodes)-1 {
			glyph = 'D'
		}
		pts = append(pts, asciichart.Point{X: p.X, Y: p.Y, Glyph: glyph})
	}
	return asciichart.Map(pts, asciichart.Options{Width: width, Height: height})
}

// Alternates returns up to k loopless routes from from to to in increasing
// cost order under live costs (Yen's algorithm) — the "offer the traveller
// a choice" feature.
func (s *Service) Alternates(from, to graph.NodeID, k int) ([]core.Route, error) {
	return s.AlternatesCtx(context.Background(), from, to, k)
}

// AlternatesCtx is Alternates under a request lifecycle: Yen's algorithm
// runs a family of restricted Dijkstras, every one of which polls ctx.
// The whole family runs against one snapshot, so all k alternatives are
// priced under the same costs.
func (s *Service) AlternatesCtx(ctx context.Context, from, to graph.NodeID, k int) ([]core.Route, error) {
	g := s.snap.Load().graph
	results, err := search.KShortestCtx(ctx, g, from, to, k)
	if err != nil {
		return nil, err
	}
	out := make([]core.Route, 0, len(results))
	for _, r := range results {
		out = append(out, core.Route{
			Found:     true,
			Path:      r.Path,
			Cost:      r.Cost,
			Algorithm: core.Dijkstra,
			Trace:     r.Trace,
		})
	}
	return out, nil
}

// Nearest returns the road node closest to the point (x, y) — the map
// matching step between a traveller's position (GPS, in a modern ATIS) and
// the network. Isolated nodes (no roads) are skipped; ok is false when the
// network has no road nodes at all.
func (s *Service) Nearest(x, y float64) (graph.NodeID, bool) {
	g := s.snap.Load().graph
	p := graph.Point{X: x, Y: y}
	best := graph.Invalid
	bestDist := math.Inf(1)
	for u := graph.NodeID(0); int(u) < g.NumNodes(); u++ {
		if g.OutDegree(u) == 0 {
			continue
		}
		if d := g.Point(u).EuclideanDistance(p); d < bestDist {
			best, bestDist = u, d
		}
	}
	return best, best != graph.Invalid
}

// Reachable returns every node within the given travel budget of from,
// under live costs, with the cost of reaching each — the isochrone query
// ("what can I reach in 15 minutes?").
func (s *Service) Reachable(from graph.NodeID, budget float64) (map[graph.NodeID]float64, error) {
	return s.ReachableCtx(context.Background(), from, budget)
}

// ReachableCtx is Reachable under a request lifecycle: the bounded
// Dijkstra polls ctx and aborts with a typed lifecycle error rather than
// returning a truncated (and therefore wrong) isochrone.
func (s *Service) ReachableCtx(ctx context.Context, from graph.NodeID, budget float64) (map[graph.NodeID]float64, error) {
	return search.WithinCtx(ctx, s.snap.Load().graph, from, budget)
}

// DisplayReachable renders the isochrone: reachable nodes as 'o', the
// origin as 'S', the rest of the network as dots. The isochrone and the
// rendering read the same snapshot, so the picture cannot mix costs from
// two generations.
func (s *Service) DisplayReachable(from graph.NodeID, budget float64, width, height int) (string, error) {
	g := s.snap.Load().graph
	reach, err := search.WithinCtx(context.Background(), g, from, budget)
	if err != nil {
		return "", err
	}
	var pts []asciichart.Point
	for u := graph.NodeID(0); int(u) < g.NumNodes(); u++ {
		if g.OutDegree(u) == 0 {
			continue
		}
		p := g.Point(u)
		glyph := byte('.')
		if _, ok := reach[u]; ok {
			glyph = 'o'
		}
		pts = append(pts, asciichart.Point{X: p.X, Y: p.Y, Glyph: glyph})
	}
	p := g.Point(from)
	pts = append(pts, asciichart.Point{X: p.X, Y: p.Y, Glyph: 'S'})
	return asciichart.Map(pts, asciichart.Options{Width: width, Height: height}), nil
}

// ApplyCongestion scales the live cost of the directed segment (from, to)
// and its reverse (if present) by factor ≥ 0; factor 2 doubles travel time.
// It reports whether any edge changed.
func (s *Service) ApplyCongestion(from, to graph.NodeID, factor float64) (bool, error) {
	return s.ApplyCongestionCtx(context.Background(), from, to, factor)
}

// ApplyCongestionCtx is ApplyCongestion carrying the caller's context,
// so the CH customization inside the publish shows up as a span of the
// mutating request's trace.
func (s *Service) ApplyCongestionCtx(ctx context.Context, from, to graph.NodeID, factor float64) (bool, error) {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	cur := s.snap.Load()
	next := cur.graph.Clone()
	n, err := next.ApplyBatch([]graph.EdgeCostChange{
		{Tail: from, Head: to, Cost: factor, Scale: true},
		{Tail: to, Head: from, Cost: factor, Scale: true},
	})
	if err != nil {
		return false, err
	}
	if n > 0 {
		s.publishMutationLocked(ctx, cur, next)
	}
	return n > 0, nil
}

// ApplyRegionCongestion scales every edge with both endpoints within radius
// of center — a congested downtown at rush hour. It returns the number of
// directed edges affected. The whole region lands as one publish: one
// cost-generation bump, one cache invalidation, one customization pass.
func (s *Service) ApplyRegionCongestion(center graph.Point, radius, factor float64) (int, error) {
	return s.ApplyRegionCongestionCtx(context.Background(), center, radius, factor)
}

// ApplyRegionCongestionCtx is ApplyRegionCongestion carrying the
// caller's context for span attribution.
func (s *Service) ApplyRegionCongestionCtx(ctx context.Context, center graph.Point, radius, factor float64) (int, error) {
	if factor < 0 {
		return 0, fmt.Errorf("route: negative congestion factor %v", factor)
	}
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	cur := s.snap.Load()
	var changes []graph.EdgeCostChange
	for _, e := range cur.graph.Edges() {
		// The scan precedes any mutation, so honouring a cancel here
		// keeps the batch atomic: either every regional edge changes or
		// none does.
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		if cur.graph.Point(e.Tail).EuclideanDistance(center) <= radius &&
			cur.graph.Point(e.Head).EuclideanDistance(center) <= radius {
			changes = append(changes, graph.EdgeCostChange{Tail: e.Tail, Head: e.Head, Cost: e.Cost * factor})
		}
	}
	if len(changes) == 0 {
		return 0, nil
	}
	next := cur.graph.Clone()
	affected, err := next.ApplyBatch(changes)
	if err != nil {
		return 0, err
	}
	if affected > 0 {
		s.publishMutationLocked(ctx, cur, next)
	}
	return affected, nil
}

// ApplyTrafficBatch applies a burst of edge-cost changes as one traffic
// event — the entry point for traffic-feed streams. However many edges the
// batch touches, the service pays one publish: one cost-generation bump,
// one route-cache invalidation, and one customization pass; applying the
// same changes through per-edge mutators would pay all three per edge.
func (s *Service) ApplyTrafficBatch(changes []graph.EdgeCostChange) (int, error) {
	return s.ApplyTrafficBatchCtx(context.Background(), changes)
}

// ApplyTrafficBatchCtx is ApplyTrafficBatch carrying the caller's
// context, so a traced POST /v1/traffic/batch shows the customization
// pass it paid for.
func (s *Service) ApplyTrafficBatchCtx(ctx context.Context, changes []graph.EdgeCostChange) (int, error) {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	cur := s.snap.Load()
	next := cur.graph.Clone()
	affected, err := next.ApplyBatch(changes)
	if err != nil {
		return 0, err
	}
	if affected > 0 {
		s.trafficBatches.Inc()
		s.publishMutationLocked(ctx, cur, next)
	}
	return affected, nil
}

// ResetTraffic restores every edge to its free-flow cost.
func (s *Service) ResetTraffic() {
	s.ResetTrafficCtx(context.Background())
}

// ResetTrafficCtx is ResetTraffic carrying the caller's context for span
// attribution. It always publishes, even when costs were already
// pristine — a reset is an explicit traffic event and bumps the
// generation like any other.
func (s *Service) ResetTrafficCtx(ctx context.Context) {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	cur := s.snap.Load()
	next := cur.graph.Clone()
	edges := s.base.Edges()
	changes := make([]graph.EdgeCostChange, len(edges))
	for i, e := range edges {
		changes[i] = graph.EdgeCostChange{Tail: e.Tail, Head: e.Head, Cost: e.Cost}
	}
	// base and the snapshot share structure; the batch cannot fail here.
	if _, err := next.ApplyBatch(changes); err != nil {
		panic(fmt.Sprintf("route: snapshot structure diverged: %v", err))
	}
	s.publishMutationLocked(ctx, cur, next)
}
