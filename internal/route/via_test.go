package route

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/gridgen"
)

func TestComputeVia(t *testing.T) {
	s := gridService(t, 6)
	stops := []graph.NodeID{
		gridgen.NodeAt(6, 0, 0),
		gridgen.NodeAt(6, 0, 5),
		gridgen.NodeAt(6, 5, 5),
	}
	r, err := s.ComputeVia(stops, core.Options{Algorithm: core.Dijkstra})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Found {
		t.Fatal("not found")
	}
	// Two legs of 5 unit edges each.
	if r.Cost != 10 {
		t.Errorf("cost = %v, want 10", r.Cost)
	}
	if !r.Path.ValidIn(s.Graph()) {
		t.Fatalf("combined path invalid: %v", r.Path.Nodes)
	}
	if r.Path.Source() != stops[0] || r.Path.Destination() != stops[2] {
		t.Errorf("endpoints %d..%d", r.Path.Source(), r.Path.Destination())
	}
	// The path passes through the middle stop.
	via := false
	for _, u := range r.Path.Nodes {
		if u == stops[1] {
			via = true
		}
	}
	if !via {
		t.Error("route skipped the intermediate stop")
	}
	if c, err := r.Path.CostIn(s.Graph()); err != nil || math.Abs(c-r.Cost) > 1e-9 {
		t.Errorf("path costs %v (%v), reported %v", c, err, r.Cost)
	}
	if r.Trace.Iterations == 0 {
		t.Error("trace not accumulated")
	}
}

func TestComputeViaRoundTripReturnsToStart(t *testing.T) {
	s := gridService(t, 5)
	a := gridgen.NodeAt(5, 0, 0)
	b := gridgen.NodeAt(5, 4, 4)
	r, err := s.ComputeVia([]graph.NodeID{a, b, a}, core.Options{})
	if err != nil || !r.Found {
		t.Fatalf("%v found=%v", err, r.Found)
	}
	if r.Path.Source() != a || r.Path.Destination() != a {
		t.Error("round trip does not return to start")
	}
	if r.Cost != 16 { // 8 out + 8 back on a unit grid
		t.Errorf("round-trip cost %v, want 16", r.Cost)
	}
}

func TestComputeViaValidation(t *testing.T) {
	s := gridService(t, 4)
	if _, err := s.ComputeVia([]graph.NodeID{0}, core.Options{}); err == nil {
		t.Error("single stop accepted")
	}
	if _, err := s.ComputeVia(nil, core.Options{}); err == nil {
		t.Error("no stops accepted")
	}
	if _, err := s.ComputeVia([]graph.NodeID{0, 99}, core.Options{}); err == nil {
		t.Error("out-of-range stop accepted")
	}
}

func TestComputeViaUnreachableLeg(t *testing.T) {
	// Disconnected graph: 0-1 and 2-3.
	b := graph.NewBuilder(4, 2)
	for i := 0; i < 4; i++ {
		b.AddNode(float64(i), 0)
	}
	b.AddEdge(0, 1, 1)
	b.AddEdge(2, 3, 1)
	s := NewService(b.MustBuild())
	r, err := s.ComputeVia([]graph.NodeID{0, 1, 3}, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Found {
		t.Error("found a route across a disconnection")
	}
	if !math.IsInf(r.Cost, 1) {
		t.Errorf("cost = %v, want +Inf", r.Cost)
	}
}
