package route

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/mpls"
	"repro/internal/telemetry"
)

// TestStatsAndRegistryAgree is the fold-the-legacy-/stats guarantee:
// CacheStats and the Prometheus export read the same instruments, so the
// two views can never drift apart.
func TestStatsAndRegistryAgree(t *testing.T) {
	g := mpls.MustGenerate(mpls.Config{Seed: 1})
	svc := NewService(g)
	a, _ := g.Lookup("A")
	b, _ := g.Lookup("B")

	if _, err := svc.Compute(a, b, core.Options{}); err != nil { // miss
		t.Fatal(err)
	}
	if _, err := svc.Compute(a, b, core.Options{}); err != nil { // hit
		t.Fatal(err)
	}
	hits, misses, _ := svc.CacheStats()
	if hits != 1 || misses != 1 {
		t.Fatalf("CacheStats = %d hits, %d misses; want 1, 1", hits, misses)
	}

	reg := svc.Registry()
	if got := reg.Counter("atis_route_cache_requests_total", "", telemetry.L("result", "hit")).Value(); got != hits {
		t.Fatalf("registry hit counter %d != CacheStats hits %d", got, hits)
	}
	if got := reg.Counter("atis_route_cache_requests_total", "", telemetry.L("result", "miss")).Value(); got != misses {
		t.Fatalf("registry miss counter %d != CacheStats misses %d", got, misses)
	}

	var sb strings.Builder
	if err := reg.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`atis_route_cache_requests_total{result="hit"} 1`,
		`atis_route_cache_requests_total{result="miss"} 1`,
		`atis_route_compute_seconds_count{algo="astar-euclidean"} 1`,
		"atis_route_cache_entries 1",
		"atis_traffic_generation 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("export missing %q\nexport:\n%s", want, out)
		}
	}
}

func TestTrafficUpdateCounterAndGenerationGauge(t *testing.T) {
	g := mpls.MustGenerate(mpls.Config{Seed: 1})
	svc := NewService(g)
	if _, err := svc.ApplyRegionCongestion(graph.Point{X: 16, Y: 16}, 50, 2); err != nil {
		t.Fatal(err)
	}
	svc.ResetTraffic()
	if got := svc.Registry().Counter("atis_traffic_updates_total", "").Value(); got != 2 {
		t.Fatalf("atis_traffic_updates_total = %d, want 2", got)
	}
	var sb strings.Builder
	if err := svc.Registry().WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "atis_traffic_generation 2") {
		t.Errorf("export missing generation gauge at 2:\n%s", sb.String())
	}
}

// TestEvictionCounter overflows a single-entry-per-shard cache and checks
// every LRU eviction is accounted.
func TestEvictionCounter(t *testing.T) {
	c := newRouteCache(cacheShardCount) // one entry per shard
	reg := telemetry.NewRegistry()
	c.evictions = reg.Counter("atis_route_cache_evictions_total", "LRU evictions.")
	// Enough distinct keys that some shard sees a second insert.
	for i := 0; i < 64; i++ {
		c.put(cacheKey{from: graph.NodeID(i), to: graph.NodeID(i + 1)}, core.Route{Cost: float64(i)})
	}
	inserted, resident := uint64(64), uint64(c.len())
	if got := c.evictions.Value(); got != inserted-resident {
		t.Fatalf("evictions = %d, want inserted-resident = %d", got, inserted-resident)
	}
	if c.evictions.Value() == 0 {
		t.Fatal("64 keys over 16 single-entry shards must evict at least once")
	}
}

func TestBatchCounters(t *testing.T) {
	g := mpls.MustGenerate(mpls.Config{Seed: 1})
	svc := NewService(g)
	pairs := []Pair{{From: 0, To: 1}, {From: 1, To: 2}, {From: 2, To: 3}}
	svc.ComputeBatch(pairs, core.Options{Algorithm: core.Dijkstra})
	reg := svc.Registry()
	if got := reg.Counter("atis_route_batch_requests_total", "").Value(); got != 1 {
		t.Fatalf("batch requests = %d, want 1", got)
	}
	if got := reg.Counter("atis_route_batch_pairs_total", "").Value(); got != 3 {
		t.Fatalf("batch pairs = %d, want 3", got)
	}
}
