package route

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/graph"
)

// Pair is one origin–destination request of a batch.
type Pair struct {
	From, To graph.NodeID
}

// BatchResult is the outcome for one pair of a batch; Err is per-pair so a
// single bad endpoint does not fail the rest of the batch.
type BatchResult struct {
	Route core.Route
	Err   error
}

// ComputeBatch computes a route for every pair under opts, fanning the
// pairs across a GOMAXPROCS-bounded worker pool. Results are positionally
// aligned with pairs. Each worker query goes through Compute, so the batch
// both profits from and feeds the route cache — a fleet of vehicles asking
// for overlapping commutes is the paper's "millions of users" workload in
// miniature. Workers claim pairs from a shared atomic counter, so skewed
// per-pair costs stay balanced.
func (s *Service) ComputeBatch(pairs []Pair, opts core.Options) []BatchResult {
	out := make([]BatchResult, len(pairs))
	if len(pairs) == 0 {
		return out
	}
	s.batchRequests.Inc()
	s.batchPairs.Add(uint64(len(pairs)))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(pairs) {
		workers = len(pairs)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(pairs) {
					return
				}
				rt, err := s.Compute(pairs[i].From, pairs[i].To, opts)
				out[i] = BatchResult{Route: rt, Err: err}
			}
		}()
	}
	wg.Wait()
	return out
}
