package route

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/search"
)

// Pair is one origin–destination request of a batch.
type Pair struct {
	From, To graph.NodeID
}

// BatchResult is the outcome for one pair of a batch; Err is per-pair so a
// single bad endpoint does not fail the rest of the batch.
type BatchResult struct {
	Route core.Route
	Err   error
}

// ComputeBatch computes a route for every pair under opts, fanning the
// pairs across a GOMAXPROCS-bounded worker pool. Results are positionally
// aligned with pairs. Each worker query goes through Compute, so the batch
// both profits from and feeds the route cache — a fleet of vehicles asking
// for overlapping commutes is the paper's "millions of users" workload in
// miniature. Workers claim pairs from a shared atomic counter, so skewed
// per-pair costs stay balanced.
func (s *Service) ComputeBatch(pairs []Pair, opts core.Options) []BatchResult {
	return s.ComputeBatchCtx(context.Background(), pairs, opts)
}

// ComputeBatchCtx is ComputeBatch under a request lifecycle. Workers
// check ctx before claiming each pair, so a dead context stops the
// fan-out at pair granularity; the pair in flight when the context dies
// is cut short by its own kernel's ctx poll. Unprocessed pairs carry the
// context's lifecycle error so callers can tell "not computed" from "no
// route". Results remain positionally aligned with pairs.
//
// The snapshot is loaded once for the whole batch: every pair is priced
// under the same costs, so a fleet query straddling a traffic mutation
// returns one consistent answer set instead of a mix of generations.
func (s *Service) ComputeBatchCtx(ctx context.Context, pairs []Pair, opts core.Options) []BatchResult {
	out := make([]BatchResult, len(pairs))
	if len(pairs) == 0 {
		return out
	}
	s.batchRequests.Inc()
	s.batchPairs.Add(uint64(len(pairs)))
	snap := s.snap.Load()
	workers := runtime.GOMAXPROCS(0)
	if workers > len(pairs) {
		workers = len(pairs)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(pairs) {
					return
				}
				if err := ctx.Err(); err != nil {
					out[i] = BatchResult{Err: search.FromContextErr(err)}
					continue
				}
				rt, err := s.computeSnap(ctx, snap, pairs[i].From, pairs[i].To, opts)
				out[i] = BatchResult{Route: rt, Err: err}
			}
		}()
	}
	wg.Wait()
	return out
}
