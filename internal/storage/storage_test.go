package storage

import (
	"bytes"
	"testing"
)

func TestDiskAllocateReadWrite(t *testing.T) {
	d := NewDisk(128)
	if d.PageSize() != 128 {
		t.Fatalf("PageSize = %d", d.PageSize())
	}
	id := d.Allocate()
	if id != 0 || d.NumPages() != 1 {
		t.Fatalf("first allocation: id=%d pages=%d", id, d.NumPages())
	}
	buf := make([]byte, 128)
	if err := d.Read(id, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, make([]byte, 128)) {
		t.Error("fresh page not zeroed")
	}
	copy(buf, "hello")
	if err := d.Write(id, buf); err != nil {
		t.Fatal(err)
	}
	out := make([]byte, 128)
	if err := d.Read(id, out); err != nil {
		t.Fatal(err)
	}
	if string(out[:5]) != "hello" {
		t.Errorf("read back %q", out[:5])
	}
	st := d.Stats()
	if st.Reads != 2 || st.Writes != 1 {
		t.Errorf("stats = %+v, want 2 reads 1 write", st)
	}
	d.ResetStats()
	if st := d.Stats(); st.Reads != 0 || st.Writes != 0 {
		t.Errorf("after reset: %+v", st)
	}
}

func TestDiskDefaultPageSize(t *testing.T) {
	if NewDisk(0).PageSize() != PageSize {
		t.Error("default page size not applied")
	}
}

func TestDiskErrors(t *testing.T) {
	d := NewDisk(64)
	buf := make([]byte, 64)
	if err := d.Read(0, buf); err == nil {
		t.Error("read of unallocated page succeeded")
	}
	if err := d.Write(5, buf); err == nil {
		t.Error("write of unallocated page succeeded")
	}
	d.Allocate()
	if err := d.Read(0, make([]byte, 10)); err == nil {
		t.Error("short read buffer accepted")
	}
	if err := d.Write(0, make([]byte, 10)); err == nil {
		t.Error("short write buffer accepted")
	}
	if err := d.Read(-1, buf); err == nil {
		t.Error("negative page id accepted")
	}
}

func TestDiskStatsArithmetic(t *testing.T) {
	a := DiskStats{Reads: 10, Writes: 4}
	b := DiskStats{Reads: 3, Writes: 1}
	diff := a.Sub(b)
	if diff.Reads != 7 || diff.Writes != 3 {
		t.Errorf("Sub = %+v", diff)
	}
	if u := diff.TimeUnits(0.035, 0.05); u != 7*0.035+3*0.05 {
		t.Errorf("TimeUnits = %v", u)
	}
}

func TestPoolBasicPinUnpin(t *testing.T) {
	d := NewDisk(64)
	bp := NewBufferPool(d, 4)
	f, err := bp.NewPage()
	if err != nil {
		t.Fatal(err)
	}
	copy(f.Data(), "abc")
	f.MarkDirty()
	id := f.ID()
	bp.Unpin(f)
	if err := bp.FlushAll(); err != nil {
		t.Fatal(err)
	}
	// Read back through a fresh pool to prove the bytes reached disk.
	bp2 := NewBufferPool(d, 4)
	g, err := bp2.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	if string(g.Data()[:3]) != "abc" {
		t.Errorf("read back %q", g.Data()[:3])
	}
	bp2.Unpin(g)
}

func TestPoolHitMissCounting(t *testing.T) {
	d := NewDisk(64)
	bp := NewBufferPool(d, 4)
	f, _ := bp.NewPage()
	id := f.ID()
	bp.Unpin(f)
	g, _ := bp.Get(id) // cached: hit
	bp.Unpin(g)
	st := bp.Stats()
	if st.Hits != 1 || st.Misses != 0 {
		t.Errorf("stats = %+v, want 1 hit", st)
	}
}

func TestPoolEvictionLRU(t *testing.T) {
	d := NewDisk(64)
	bp := NewBufferPool(d, 2)
	var ids []PageID
	for i := 0; i < 3; i++ {
		f, err := bp.NewPage()
		if err != nil {
			t.Fatal(err)
		}
		f.Data()[0] = byte(i + 1)
		f.MarkDirty()
		ids = append(ids, f.ID())
		bp.Unpin(f)
	}
	// Capacity 2: creating page 2 evicted page 0 (LRU) and flushed it.
	st := bp.Stats()
	if st.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", st.Evictions)
	}
	reads0 := d.Stats().Reads
	f, err := bp.Get(ids[0]) // must fault back in with its data intact
	if err != nil {
		t.Fatal(err)
	}
	if f.Data()[0] != 1 {
		t.Errorf("evicted page lost data: %d", f.Data()[0])
	}
	bp.Unpin(f)
	if d.Stats().Reads != reads0+1 {
		t.Error("fault-in did not hit disk")
	}
}

func TestPoolAllPinnedExhaustion(t *testing.T) {
	d := NewDisk(64)
	bp := NewBufferPool(d, 2)
	a, _ := bp.NewPage()
	c, _ := bp.NewPage()
	if _, err := bp.NewPage(); err == nil {
		t.Error("pool handed out a frame beyond capacity with all pinned")
	}
	bp.Unpin(a)
	if _, err := bp.NewPage(); err != nil {
		t.Errorf("pool failed after unpin: %v", err)
	}
	_ = c
}

func TestPoolUnpinPanicsWhenUnpinned(t *testing.T) {
	d := NewDisk(64)
	bp := NewBufferPool(d, 2)
	f, _ := bp.NewPage()
	bp.Unpin(f)
	defer func() {
		if recover() == nil {
			t.Error("double unpin did not panic")
		}
	}()
	bp.Unpin(f)
}

func TestPoolRepin(t *testing.T) {
	d := NewDisk(64)
	bp := NewBufferPool(d, 2)
	f, _ := bp.NewPage()
	id := f.ID()
	bp.Unpin(f)
	// Re-pin the same cached page twice; one unpin must keep it pinned.
	g1, _ := bp.Get(id)
	g2, _ := bp.Get(id)
	if g1 != g2 {
		t.Fatal("same page produced distinct frames")
	}
	bp.Unpin(g1)
	// Still pinned once: filling the pool must not evict it.
	h, err := bp.NewPage()
	if err != nil {
		t.Fatal(err)
	}
	bp.Unpin(h)
	h2, err := bp.NewPage()
	if err != nil {
		t.Fatal(err)
	}
	bp.Unpin(h2)
	if _, ok := bp.frames[id]; !ok {
		t.Error("pinned page was evicted")
	}
	bp.Unpin(g2)
}

func TestPoolDirtyWritebackOnEviction(t *testing.T) {
	d := NewDisk(64)
	bp := NewBufferPool(d, 1)
	f, _ := bp.NewPage()
	copy(f.Data(), "xyz")
	f.MarkDirty()
	id := f.ID()
	bp.Unpin(f)
	g, _ := bp.NewPage() // evicts and flushes page 0
	bp.Unpin(g)
	buf := make([]byte, 64)
	if err := d.Read(id, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf[:3]) != "xyz" {
		t.Errorf("dirty page not written back: %q", buf[:3])
	}
}

func TestPoolDefaultCapacity(t *testing.T) {
	bp := NewBufferPool(NewDisk(64), 0)
	if bp.Capacity() != 64 {
		t.Errorf("default capacity = %d", bp.Capacity())
	}
}
