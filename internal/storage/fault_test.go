package storage

import (
	"errors"
	"testing"
)

func TestInjectedReadFault(t *testing.T) {
	d := NewDisk(64)
	id := d.Allocate()
	buf := make([]byte, 64)
	d.InjectFaults(1, -1)
	if err := d.Read(id, buf); err != nil {
		t.Fatalf("first read within budget failed: %v", err)
	}
	err := d.Read(id, buf)
	if !errors.Is(err, ErrInjectedFault) {
		t.Fatalf("second read: %v, want injected fault", err)
	}
	// Disarm: reads flow again.
	d.InjectFaults(-1, -1)
	if err := d.Read(id, buf); err != nil {
		t.Fatalf("read after disarm: %v", err)
	}
}

func TestInjectedWriteFault(t *testing.T) {
	d := NewDisk(64)
	id := d.Allocate()
	buf := make([]byte, 64)
	d.InjectFaults(-1, 0)
	if err := d.Write(id, buf); !errors.Is(err, ErrInjectedFault) {
		t.Fatalf("write: %v, want injected fault", err)
	}
	if st := d.Stats(); st.Writes != 0 {
		t.Errorf("failed write counted: %+v", st)
	}
}

// Eviction must surface the flush failure to the caller that needed the
// frame, not swallow it.
func TestPoolEvictionFlushFaultPropagates(t *testing.T) {
	d := NewDisk(64)
	bp := NewBufferPool(d, 1)
	f, err := bp.NewPage()
	if err != nil {
		t.Fatal(err)
	}
	f.Data()[0] = 1
	f.MarkDirty()
	bp.Unpin(f)

	d.InjectFaults(-1, 0)
	_, err = bp.NewPage() // must evict and flush the dirty page
	if !errors.Is(err, ErrInjectedFault) {
		t.Fatalf("NewPage over faulted flush: %v", err)
	}
	// After the fault clears, the pool is usable again and the dirty page
	// still holds its data (the failed flush must not have corrupted it).
	d.InjectFaults(-1, -1)
	g, err := bp.NewPage()
	if err != nil {
		t.Fatalf("NewPage after disarm: %v", err)
	}
	bp.Unpin(g)
	h, err := bp.Get(f.ID())
	if err != nil {
		t.Fatalf("reload original page: %v", err)
	}
	if h.Data()[0] != 1 {
		t.Errorf("dirty data lost through failed flush: %d", h.Data()[0])
	}
	bp.Unpin(h)
}

func TestPoolGetReadFaultPropagates(t *testing.T) {
	d := NewDisk(64)
	bp := NewBufferPool(d, 2)
	f, _ := bp.NewPage()
	id := f.ID()
	f.MarkDirty()
	bp.Unpin(f)
	if err := bp.FlushAll(); err != nil {
		t.Fatal(err)
	}
	// Evict it by filling the pool.
	a, _ := bp.NewPage()
	bp.Unpin(a)
	b, _ := bp.NewPage()
	bp.Unpin(b)

	d.InjectFaults(0, -1)
	if _, err := bp.Get(id); !errors.Is(err, ErrInjectedFault) {
		t.Fatalf("Get over faulted read: %v", err)
	}
	// The failed fault-in must not leave a zombie frame behind.
	d.InjectFaults(-1, -1)
	g, err := bp.Get(id)
	if err != nil {
		t.Fatalf("Get after disarm: %v", err)
	}
	bp.Unpin(g)
}

func TestFlushAllFaultPropagates(t *testing.T) {
	d := NewDisk(64)
	bp := NewBufferPool(d, 4)
	f, _ := bp.NewPage()
	f.MarkDirty()
	bp.Unpin(f)
	d.InjectFaults(-1, 0)
	if err := bp.FlushAll(); !errors.Is(err, ErrInjectedFault) {
		t.Fatalf("FlushAll: %v", err)
	}
}
