// Package storage provides the block-storage substrate the relational
// engine runs on: a simulated disk of fixed-size pages with read/write
// accounting, and an LRU buffer pool with pin/unpin semantics.
//
// The paper's cost model (Section 4) is denominated in block reads and
// writes against 4 KiB blocks (Table 4A: B = 4096, t_read = 0.035,
// t_write = 0.05 time units). The simulated disk counts physical block
// transfers so the experiment harness can convert an execution trace into
// the same time units, and the buffer pool reproduces the caching behaviour
// a real DBMS would add on top.
package storage

import (
	"fmt"
	"sync"
)

// PageSize is the default block size in bytes, matching Table 4A's B.
const PageSize = 4096

// PageID identifies a page on a Disk. Valid ids are dense from 0.
type PageID int32

// InvalidPage is the sentinel for "no page", used in page-chain links.
const InvalidPage PageID = -1

// DiskStats counts physical block transfers.
type DiskStats struct {
	Reads  int64 // blocks read
	Writes int64 // blocks written
}

// Sub returns the difference s − o, for measuring an interval between two
// snapshots.
func (s DiskStats) Sub(o DiskStats) DiskStats {
	return DiskStats{Reads: s.Reads - o.Reads, Writes: s.Writes - o.Writes}
}

// TimeUnits converts the transfer counts into the paper's cost-model time
// units given per-block read and write costs (Table 4A: 0.035 and 0.05).
func (s DiskStats) TimeUnits(tRead, tWrite float64) float64 {
	return float64(s.Reads)*tRead + float64(s.Writes)*tWrite
}

// Disk is an in-memory simulated block device. It is safe for concurrent
// use; the engine above it is single-threaded per database but the route
// server may host several databases.
type Disk struct {
	mu       sync.Mutex
	pageSize int
	pages    [][]byte
	free     []PageID // freed page ids available for reuse
	isFree   map[PageID]bool
	stats    DiskStats

	// Fault injection (simulated devices get to fail on demand): when a
	// budget is ≥ 0, it counts down per operation and the operation that
	// would take it below zero fails.
	readBudget  int64
	writeBudget int64
}

// NewDisk returns an empty disk with the given page size; pageSize ≤ 0
// selects the default PageSize.
func NewDisk(pageSize int) *Disk {
	if pageSize <= 0 {
		pageSize = PageSize
	}
	return &Disk{pageSize: pageSize, isFree: make(map[PageID]bool), readBudget: -1, writeBudget: -1}
}

// InjectFaults arms fault injection: the disk serves the next `reads` block
// reads and `writes` block writes, then fails every further one with
// ErrInjectedFault. Pass -1 to leave a direction unlimited. Arming with
// (−1, −1) disarms. Fault injection is how the tests exercise the error
// paths a real device exposes — flush failures during eviction, partial
// loads, the crash the journal recovers from.
func (d *Disk) InjectFaults(reads, writes int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.readBudget = reads
	d.writeBudget = writes
}

// ErrInjectedFault is returned by operations beyond an injected fault
// budget.
var ErrInjectedFault = fmt.Errorf("storage: injected device fault")

// spend consumes one unit from a fault budget, reporting whether the
// operation may proceed. Caller holds d.mu.
func spend(budget *int64) bool {
	if *budget < 0 {
		return true
	}
	if *budget == 0 {
		return false
	}
	*budget--
	return true
}

// PageSize returns the disk's block size in bytes.
func (d *Disk) PageSize() int { return d.pageSize }

// NumPages returns the number of allocated pages.
func (d *Disk) NumPages() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.pages)
}

// Allocate returns a zeroed page, reusing a freed page when one exists and
// extending the device otherwise. Allocation itself is not counted as I/O;
// the first write is.
func (d *Disk) Allocate() PageID {
	d.mu.Lock()
	defer d.mu.Unlock()
	if n := len(d.free); n > 0 {
		id := d.free[n-1]
		d.free = d.free[:n-1]
		delete(d.isFree, id)
		clear(d.pages[id])
		return id
	}
	d.pages = append(d.pages, make([]byte, d.pageSize))
	return PageID(len(d.pages) - 1)
}

// Free returns a page to the allocator. Freeing an unallocated or
// already-free page is an error; the page's contents become undefined.
func (d *Disk) Free(id PageID) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if id < 0 || int(id) >= len(d.pages) {
		return fmt.Errorf("storage: free of unallocated page %d", id)
	}
	if d.isFree[id] {
		return fmt.Errorf("storage: double free of page %d", id)
	}
	d.free = append(d.free, id)
	d.isFree[id] = true
	return nil
}

// FreePages returns how many pages sit on the free list.
func (d *Disk) FreePages() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.free)
}

// Read copies page id into buf (which must be at least one page long) and
// counts one block read.
func (d *Disk) Read(id PageID, buf []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if id < 0 || int(id) >= len(d.pages) {
		return fmt.Errorf("storage: read of unallocated page %d", id)
	}
	if len(buf) < d.pageSize {
		return fmt.Errorf("storage: read buffer %d bytes < page size %d", len(buf), d.pageSize)
	}
	if !spend(&d.readBudget) {
		return fmt.Errorf("read page %d: %w", id, ErrInjectedFault)
	}
	copy(buf, d.pages[id])
	d.stats.Reads++
	return nil
}

// Write stores buf as the contents of page id and counts one block write.
func (d *Disk) Write(id PageID, buf []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if id < 0 || int(id) >= len(d.pages) {
		return fmt.Errorf("storage: write of unallocated page %d", id)
	}
	if len(buf) < d.pageSize {
		return fmt.Errorf("storage: write buffer %d bytes < page size %d", len(buf), d.pageSize)
	}
	if !spend(&d.writeBudget) {
		return fmt.Errorf("write page %d: %w", id, ErrInjectedFault)
	}
	copy(d.pages[id], buf)
	d.stats.Writes++
	return nil
}

// Stats returns a snapshot of the transfer counters.
func (d *Disk) Stats() DiskStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// ResetStats zeroes the transfer counters (between experiment phases).
func (d *Disk) ResetStats() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.stats = DiskStats{}
}
