package storage

import (
	"container/list"
	"fmt"
)

// PoolStats counts buffer-pool activity. Physical I/O is on the Disk's
// counters; these record cache behaviour.
type PoolStats struct {
	Hits      int64 // page found in the pool
	Misses    int64 // page faulted in from disk
	Evictions int64 // frames reclaimed
	Flushes   int64 // dirty pages written back
}

// Frame is a pinned page in the buffer pool. Callers read and mutate the
// page through Data, call MarkDirty after mutating, and must Unpin the frame
// when done; a pinned frame is never evicted.
type Frame struct {
	id      PageID
	data    []byte
	dirty   bool
	pins    int
	lruElem *list.Element // position in the unpinned LRU list, nil while pinned
}

// ID returns the page id held by this frame.
func (f *Frame) ID() PageID { return f.id }

// Data returns the page contents. The slice aliases pool memory and is valid
// only while the frame is pinned.
func (f *Frame) Data() []byte { return f.data }

// MarkDirty records that the page was modified so the pool writes it back
// before eviction (or on FlushAll).
func (f *Frame) MarkDirty() { f.dirty = true }

// BufferPool caches disk pages in a bounded set of frames with LRU
// replacement of unpinned pages. It is not safe for concurrent use; each
// database owns one pool, mirroring the paper's single-user INGRES setup
// ("we used Ingres in single-user mode to reduce overhead").
type BufferPool struct {
	disk     *Disk
	capacity int
	frames   map[PageID]*Frame
	lru      *list.List // front = most recently unpinned
	stats    PoolStats
}

// NewBufferPool returns a pool of the given capacity (frames) over disk.
// Capacity ≤ 0 selects 64 frames, a deliberately small default so block I/O
// is observable on the paper's graph sizes.
func NewBufferPool(disk *Disk, capacity int) *BufferPool {
	if capacity <= 0 {
		capacity = 64
	}
	return &BufferPool{
		disk:     disk,
		capacity: capacity,
		frames:   make(map[PageID]*Frame, capacity),
		lru:      list.New(),
	}
}

// Capacity returns the number of frames.
func (bp *BufferPool) Capacity() int { return bp.capacity }

// Stats returns a snapshot of the pool counters.
func (bp *BufferPool) Stats() PoolStats { return bp.stats }

// Disk exposes the underlying device (for stats snapshots).
func (bp *BufferPool) Disk() *Disk { return bp.disk }

// Get pins page id, faulting it in from disk if needed, and returns its
// frame. Every Get must be paired with an Unpin.
func (bp *BufferPool) Get(id PageID) (*Frame, error) {
	if f, ok := bp.frames[id]; ok {
		bp.stats.Hits++
		bp.pin(f)
		return f, nil
	}
	bp.stats.Misses++
	f, err := bp.allocateFrame(id)
	if err != nil {
		return nil, err
	}
	if err := bp.disk.Read(id, f.data); err != nil {
		delete(bp.frames, id)
		return nil, err
	}
	bp.pin(f)
	return f, nil
}

// NewPage allocates a fresh zeroed page on disk and returns it pinned. The
// frame starts dirty so the page reaches disk even if never written again.
func (bp *BufferPool) NewPage() (*Frame, error) {
	id := bp.disk.Allocate()
	f, err := bp.allocateFrame(id)
	if err != nil {
		return nil, err
	}
	f.dirty = true
	bp.pin(f)
	return f, nil
}

// Unpin releases one pin on the frame. Fully unpinned frames become eligible
// for eviction. Unpinning an unpinned frame is a caller bug and panics.
func (bp *BufferPool) Unpin(f *Frame) {
	if f.pins <= 0 {
		panic(fmt.Sprintf("storage: unpin of unpinned page %d", f.id))
	}
	f.pins--
	if f.pins == 0 {
		f.lruElem = bp.lru.PushFront(f)
	}
}

// Discard drops the cached frame for page id, if any, without writing it
// back — used when the page is about to be freed. Discarding a pinned page
// is a caller bug and returns an error.
func (bp *BufferPool) Discard(id PageID) error {
	f, ok := bp.frames[id]
	if !ok {
		return nil
	}
	if f.pins > 0 {
		return fmt.Errorf("storage: discard of pinned page %d", id)
	}
	if f.lruElem != nil {
		bp.lru.Remove(f.lruElem)
	}
	delete(bp.frames, id)
	return nil
}

// FlushAll writes every dirty cached page back to disk. Pinned pages are
// flushed too (they stay cached and pinned).
func (bp *BufferPool) FlushAll() error {
	for _, f := range bp.frames {
		if err := bp.flush(f); err != nil {
			return err
		}
	}
	return nil
}

func (bp *BufferPool) flush(f *Frame) error {
	if !f.dirty {
		return nil
	}
	if err := bp.disk.Write(f.id, f.data); err != nil {
		return err
	}
	f.dirty = false
	bp.stats.Flushes++
	return nil
}

func (bp *BufferPool) pin(f *Frame) {
	if f.pins == 0 && f.lruElem != nil {
		bp.lru.Remove(f.lruElem)
		f.lruElem = nil
	}
	f.pins++
}

// allocateFrame finds room for page id: reuse capacity if available,
// otherwise evict the least recently used unpinned frame.
func (bp *BufferPool) allocateFrame(id PageID) (*Frame, error) {
	if len(bp.frames) >= bp.capacity {
		victimElem := bp.lru.Back()
		if victimElem == nil {
			return nil, fmt.Errorf("storage: buffer pool exhausted: all %d frames pinned", bp.capacity)
		}
		victim := victimElem.Value.(*Frame)
		if err := bp.flush(victim); err != nil {
			return nil, err
		}
		bp.lru.Remove(victimElem)
		delete(bp.frames, victim.id)
		bp.stats.Evictions++
	}
	f := &Frame{id: id, data: make([]byte, bp.disk.PageSize())}
	bp.frames[id] = f
	return f, nil
}
