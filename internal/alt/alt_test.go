package alt

import (
	"math"
	"testing"

	"repro/internal/estimator"
	"repro/internal/graph"
	"repro/internal/gridgen"
	"repro/internal/mpls"
	"repro/internal/search"
)

func TestPreprocessValidation(t *testing.T) {
	g := gridgen.MustGenerate(gridgen.Config{K: 4})
	if _, err := Preprocess(g, nil); err == nil {
		t.Error("no landmarks accepted")
	}
	if _, err := Preprocess(g, []graph.NodeID{99}); err == nil {
		t.Error("out-of-range landmark accepted")
	}
	a, err := Preprocess(g, []graph.NodeID{0, 15})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Landmarks()) != 2 {
		t.Errorf("landmarks = %v", a.Landmarks())
	}
}

// The core property: ALT is admissible for every (u, d) pair, by the
// triangle inequality, on any cost metric.
func TestALTAdmissibleEverywhere(t *testing.T) {
	g := gridgen.MustGenerate(gridgen.Config{K: 8, Model: gridgen.Variance, Seed: 6})
	lm, err := SelectLandmarks(g, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Preprocess(g, lm)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range []graph.NodeID{0, 13, 63} {
		if v := search.VerifyAdmissible(g, a.Estimator(), d, 1e-9); len(v) != 0 {
			t.Errorf("dest %d: ALT inadmissible: %v", d, v[0])
		}
	}
}

// ALT on the road map: admissible where manhattan is not, and A* with it is
// optimal while expanding no more nodes than Dijkstra.
func TestALTOnRoadMap(t *testing.T) {
	g := mpls.MustGenerate(mpls.Config{})
	lm, err := SelectLandmarks(g, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Preprocess(g, lm)
	if err != nil {
		t.Fatal(err)
	}
	est := a.Estimator()
	d, _ := g.Lookup("D")
	if v := search.VerifyAdmissible(g, est, d, 1e-9); len(v) != 0 {
		t.Fatalf("ALT inadmissible on road map: %v", v[0])
	}
	for _, pp := range mpls.PaperPaths() {
		s, _ := g.Lookup(pp.From)
		dd, _ := g.Lookup(pp.To)
		dij, _ := search.Dijkstra(g, s, dd)
		ast, err := search.AStar(g, s, dd, est)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(ast.Cost-dij.Cost) > 1e-9 {
			t.Errorf("%s: ALT A* cost %v != optimal %v", pp.Name, ast.Cost, dij.Cost)
		}
		if ast.Trace.Iterations > dij.Trace.Iterations {
			t.Errorf("%s: ALT A* expanded %d > dijkstra %d", pp.Name, ast.Trace.Iterations, dij.Trace.Iterations)
		}
	}
}

// On a travel-time metric (costs unrelated to coordinates), the geometric
// estimators carry no information, but ALT still focuses the search.
func TestALTBeatsGeometryOnNonGeometricCosts(t *testing.T) {
	// Grid whose costs are all 10× distance except a fast corridor: scale
	// every edge ×10, then make the bottom row and right column fast.
	g := gridgen.MustGenerate(gridgen.Config{K: 12, Model: gridgen.Skewed, SkewCost: 0.5})
	for _, e := range g.Edges() {
		if _, err := g.SetArcCost(e.Tail, e.Head, e.Cost*10); err != nil {
			t.Fatal(err)
		}
	}
	s, d := gridgen.Pair(12, gridgen.Diagonal, 0)
	lm, err := SelectLandmarks(g, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Preprocess(g, lm)
	if err != nil {
		t.Fatal(err)
	}
	dij, _ := search.Dijkstra(g, s, d)
	alt, err := search.AStar(g, s, d, a.Estimator())
	if err != nil {
		t.Fatal(err)
	}
	euc, _ := search.AStar(g, s, d, estimator.Euclidean())
	if math.Abs(alt.Cost-dij.Cost) > 1e-9 {
		t.Fatalf("ALT suboptimal: %v vs %v", alt.Cost, dij.Cost)
	}
	if alt.Trace.Iterations >= euc.Trace.Iterations {
		t.Errorf("ALT expanded %d, euclidean %d: landmarks should dominate weak geometry",
			alt.Trace.Iterations, euc.Trace.Iterations)
	}
}

func TestEstimateSelfIsZero(t *testing.T) {
	g := gridgen.MustGenerate(gridgen.Config{K: 5})
	a, err := Preprocess(g, []graph.NodeID{0})
	if err != nil {
		t.Fatal(err)
	}
	for u := graph.NodeID(0); int(u) < g.NumNodes(); u++ {
		if e := a.Estimate(u, u); e != 0 {
			t.Errorf("Estimate(%d,%d) = %v, want 0 (f(d,d)=0 per Lemma 3)", u, u, e)
		}
	}
}

func TestSelectLandmarks(t *testing.T) {
	g := gridgen.MustGenerate(gridgen.Config{K: 6})
	lm, err := SelectLandmarks(g, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(lm) != 4 {
		t.Fatalf("got %d landmarks", len(lm))
	}
	seen := map[graph.NodeID]bool{}
	for _, l := range lm {
		if seen[l] {
			t.Errorf("duplicate landmark %d", l)
		}
		seen[l] = true
	}
	// Validation.
	if _, err := SelectLandmarks(g, 0, 1); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := SelectLandmarks(g, 99, 1); err == nil {
		t.Error("k>n accepted")
	}
	if _, err := SelectLandmarks(graph.NewBuilder(0, 0).MustBuild(), 1, 1); err == nil {
		t.Error("empty graph accepted")
	}
	// Determinism per seed.
	lm2, _ := SelectLandmarks(g, 4, 2)
	for i := range lm {
		if lm[i] != lm2[i] {
			t.Error("landmark selection not deterministic")
		}
	}
}

func TestMoreLandmarksNeverHurtEstimate(t *testing.T) {
	g := gridgen.MustGenerate(gridgen.Config{K: 7, Model: gridgen.Variance, Seed: 5})
	a1, err := Preprocess(g, []graph.NodeID{0})
	if err != nil {
		t.Fatal(err)
	}
	a2, err := Preprocess(g, []graph.NodeID{0, 48, 6})
	if err != nil {
		t.Fatal(err)
	}
	for u := graph.NodeID(0); int(u) < g.NumNodes(); u++ {
		for _, d := range []graph.NodeID{3, 24, 48} {
			if a2.Estimate(u, d) < a1.Estimate(u, d)-1e-12 {
				t.Fatalf("superset of landmarks weakened the bound at (%d,%d)", u, d)
			}
		}
	}
}
