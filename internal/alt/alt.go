// Package alt implements the landmark (ALT) estimator family: precomputed
// shortest-path distances to a few landmark nodes give, via the triangle
// inequality, an admissible and consistent estimator for A* on any
// non-negative cost metric — including travel times, where the paper's
// geometric estimators (euclidean, manhattan) either underestimate badly or
// lose admissibility.
//
// The paper's Section 5.3 closes with "choosing a good estimator is of the
// utmost importance"; ALT is the now-standard answer for road networks and
// slots directly into this library's estimator interface.
//
// Preprocessing runs two single-source computations per landmark (forward
// and on the reverse graph), so it costs O(k·(m + n log n)) once per cost
// snapshot; estimates are O(k) per node.
package alt

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"

	"repro/internal/estimator"
	"repro/internal/graph"
	"repro/internal/search"
)

// ALT holds the precomputed landmark distance tables.
type ALT struct {
	landmarks []graph.NodeID
	// from[i][u] = dist(L_i → u); to[i][u] = dist(u → L_i).
	from [][]float64
	to   [][]float64
}

// Preprocess computes the distance tables for the given landmarks over g's
// current edge costs. Costs captured here are baked into the estimator; if
// traffic updates change the graph, re-preprocess (or accept that estimates
// may lose admissibility exactly as manhattan does in the paper).
//
// The 2·k single-source computations (forward per landmark, and on the
// reverse graph per landmark) are independent, so they run across a
// GOMAXPROCS-bounded worker pool: on multicore hardware preprocessing
// wall-time shrinks roughly k-fold, which is what makes re-preprocessing
// after a traffic epoch affordable. The graph is only read; each task writes
// a distinct table slot, so no locking is needed.
func Preprocess(g *graph.Graph, landmarks []graph.NodeID) (*ALT, error) {
	if len(landmarks) == 0 {
		return nil, fmt.Errorf("alt: no landmarks")
	}
	for _, l := range landmarks {
		if l < 0 || int(l) >= g.NumNodes() {
			return nil, fmt.Errorf("alt: landmark %d out of range", l)
		}
	}
	rg := g.Reverse()
	k := len(landmarks)
	a := &ALT{
		landmarks: append([]graph.NodeID(nil), landmarks...),
		from:      make([][]float64, k),
		to:        make([][]float64, k),
	}

	type task struct {
		graph *graph.Graph
		src   graph.NodeID
		slot  *[]float64
	}
	tasks := make(chan task)
	var wg sync.WaitGroup
	workers := runtime.GOMAXPROCS(0)
	if workers > 2*k {
		workers = 2 * k
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for t := range tasks {
				dist, _ := search.SingleSource(t.graph, t.src)
				*t.slot = dist
			}
		}()
	}
	for i, l := range landmarks {
		tasks <- task{graph: g, src: l, slot: &a.from[i]}
		tasks <- task{graph: rg, src: l, slot: &a.to[i]}
	}
	close(tasks)
	wg.Wait()
	return a, nil
}

// Landmarks returns the landmark set.
func (a *ALT) Landmarks() []graph.NodeID {
	return append([]graph.NodeID(nil), a.landmarks...)
}

// Estimate returns the ALT lower bound on the cost from u to d:
//
//	max_i  max( to[i][u] − to[i][d],  from[i][d] − from[i][u] )
//
// clamped at zero. Unreachable table entries contribute nothing.
func (a *ALT) Estimate(u, d graph.NodeID) float64 {
	best := 0.0
	for i := range a.landmarks {
		if tu, td := a.to[i][u], a.to[i][d]; !math.IsInf(tu, 1) && !math.IsInf(td, 1) {
			if v := tu - td; v > best {
				best = v
			}
		}
		if fu, fd := a.from[i][u], a.from[i][d]; !math.IsInf(fu, 1) && !math.IsInf(fd, 1) {
			if v := fd - fu; v > best {
				best = v
			}
		}
	}
	return best
}

// Estimator adapts the tables to the search package's estimator interface.
// The returned estimator ignores the graph argument's costs (they were
// captured at Preprocess time) but uses its node ids.
func (a *ALT) Estimator() *estimator.Estimator {
	return &estimator.Estimator{
		Name: fmt.Sprintf("alt-%d", len(a.landmarks)),
		F: func(_ *graph.Graph, u, d graph.NodeID) float64 {
			return a.Estimate(u, d)
		},
	}
}

// SelectLandmarks picks k landmarks with the farthest-point heuristic: start
// from a random reachable node, then repeatedly take the node maximising the
// minimum shortest-path distance to the chosen set. Good landmarks sit on
// the periphery; this classic heuristic gets there cheaply.
func SelectLandmarks(g *graph.Graph, k int, seed int64) ([]graph.NodeID, error) {
	n := g.NumNodes()
	if n == 0 {
		return nil, fmt.Errorf("alt: empty graph")
	}
	if k <= 0 || k > n {
		return nil, fmt.Errorf("alt: k = %d out of range [1,%d]", k, n)
	}
	rng := rand.New(rand.NewSource(seed))
	first := graph.NodeID(rng.Intn(n))
	// Prefer a node with outgoing edges so its distance table is useful.
	for tries := 0; tries < n && g.OutDegree(first) == 0; tries++ {
		first = graph.NodeID(rng.Intn(n))
	}
	chosen := []graph.NodeID{first}

	minDist := make([]float64, n)
	for i := range minDist {
		minDist[i] = math.Inf(1)
	}
	update := func(l graph.NodeID) {
		dist, _ := search.SingleSource(g, l)
		for i, dv := range dist {
			if dv < minDist[i] {
				minDist[i] = dv
			}
		}
	}
	update(first)
	for len(chosen) < k {
		bestNode, bestVal := graph.Invalid, -1.0
		for i, dv := range minDist {
			if math.IsInf(dv, 1) || g.OutDegree(graph.NodeID(i)) == 0 {
				continue // unreachable or isolated: useless landmark
			}
			if dv > bestVal {
				bestVal = dv
				bestNode = graph.NodeID(i)
			}
		}
		if bestNode == graph.Invalid || bestVal == 0 {
			break // graph exhausted
		}
		chosen = append(chosen, bestNode)
		update(bestNode)
	}
	return chosen, nil
}
