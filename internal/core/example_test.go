package core_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/gridgen"
)

// ExamplePlanner shows the minimal routing flow: build a map, wrap it in a
// planner, compute a route.
func ExamplePlanner() {
	g := gridgen.MustGenerate(gridgen.Config{K: 5, Model: gridgen.Uniform})
	planner := core.MustNew(g)
	from, to := gridgen.Pair(5, gridgen.Diagonal, 0)

	route, err := planner.Route(from, to, core.Options{})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("found=%v cost=%.0f segments=%d\n", route.Found, route.Cost, route.Path.Len())
	// Output: found=true cost=8 segments=8
}

// ExamplePlanner_algorithms compares the paper's algorithm classes on the
// same pair: A* explores the least, Iterative the whole graph.
func ExamplePlanner_algorithms() {
	g := gridgen.MustGenerate(gridgen.Config{K: 10, Model: gridgen.Uniform})
	planner := core.MustNew(g)
	from, to := gridgen.Pair(10, gridgen.Horizontal, 0)

	for _, algo := range []core.Algorithm{core.AStarManhattan, core.Dijkstra, core.Iterative} {
		r, err := planner.Route(from, to, core.Options{Algorithm: algo})
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		fmt.Printf("%-16s cost=%.0f iterations=%d\n", algo, r.Cost, r.Trace.Iterations)
	}
	// Output:
	// astar-manhattan  cost=9 iterations=9
	// dijkstra         cost=9 iterations=45
	// iterative        cost=9 iterations=19
}

// ExampleParseAlgorithm resolves user-facing algorithm names.
func ExampleParseAlgorithm() {
	a, err := core.ParseAlgorithm("dijkstra")
	fmt.Println(a, err)
	// Output: dijkstra <nil>
}
